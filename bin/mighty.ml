(* MIGhty — the command-line tool of the paper (§V.A.1): reads a
   flattened combinational circuit (BLIF or structural Verilog),
   optimizes it as an MIG, and writes/reports the result. *)

open Cmdliner

let read_input path =
  try
    if Filename.check_suffix path ".blif" then Logic_io.Blif.read_file path
    else if Filename.check_suffix path ".v" then Logic_io.Verilog.read_file path
    else failwith "mighty: input must be .blif or .v"
  with Logic_io.Io_error.Parse_error { line; msg } ->
    prerr_endline (Logic_io.Io_error.to_string ~filename:path line msg);
    exit 2

let write_output path net =
  if Filename.check_suffix path ".blif" then Logic_io.Blif.write_file path net
  else if Filename.check_suffix path ".v" then
    Logic_io.Verilog.write_file path net
  else failwith "mighty: output must be .blif or .v"

let input_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"INPUT" ~doc:"Input circuit (.blif or .v, flattened).")

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"OUTPUT"
        ~doc:"Write the optimized circuit to this file (.blif or .v).")

let effort_arg =
  Arg.(
    value & opt int 2
    & info [ "e"; "effort" ] ~docv:"N"
        ~doc:"Optimization effort (reshape/eliminate cycles).")

let goal_arg =
  let goals = [ ("size", `Size); ("depth", `Depth); ("activity", `Activity) ] in
  Arg.(
    value
    & opt (enum goals) `Depth
    & info [ "g"; "goal" ] ~docv:"GOAL"
        ~doc:"Optimization goal: $(b,size), $(b,depth) or $(b,activity).")

(* The engine-backed subcommands additionally understand [search]:
   orchestrated beam search over optimization moves instead of a fixed
   script (Flow.Orchestrate). *)
let opt_goal_arg =
  let goals =
    [
      ("size", `Size); ("depth", `Depth); ("activity", `Activity);
      ("search", `Search);
    ]
  in
  Arg.(
    value
    & opt (enum goals) `Depth
    & info [ "g"; "goal" ] ~docv:"GOAL"
        ~doc:
          "Optimization goal: $(b,size), $(b,depth), $(b,activity), or \
           $(b,search) (beam search over optimization moves, scored by the \
           size*depth product).")

let verify_arg =
  Arg.(
    value & flag
    & info [ "verify" ]
        ~doc:"Check the optimized MIG against the input by simulation.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Collect and print per-pass telemetry (wall-clock, nodes/depth in \
           and out, rewrites, strash hits).  Equivalent to setting \
           $(b,MIG_STATS=1).")

let cache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"PATH"
        ~doc:
          "Persistent optimization cache (NPN rewrite entries and PO-cone \
           fingerprints), loaded before and saved after the run.  Defaults \
           to $(b,MIG_CACHE); omit both for a cold, cache-less run.")

(* A corrupt store file must not kill the run: the cache is an
   accelerator, so warn and start cold at the same path (the save at
   exit replaces the bad file). *)
let cache_of_cli flag env =
  match (match flag with Some _ as p -> p | None -> env.Lsutil.Env.cache) with
  | None -> None
  | Some path -> (
      match Flow.Cache.load path with
      | Ok c -> Some c
      | Error msg ->
          Printf.eprintf "mighty: cache %s: %s (starting cold)\n%!" path msg;
          Some (Flow.Cache.empty_at path))

let save_cache = function
  | None -> ()
  | Some c -> (
      match Flow.Cache.save c with
      | Ok () ->
          Option.iter
            (fun p ->
              let rw, cones = Flow.Cache.sizes c in
              Format.printf "cache: wrote %s (%d rewrites, %d cones)@." p rw
                cones)
            (Flow.Cache.path c)
      | Error msg -> prerr_endline ("mighty: cache save: " ^ msg))

(* One context per invocation, built from the environment exactly once
   and adjusted by CLI flags; a malformed [MIG_FAULT] is a usage error
   here, not something to drop silently. *)
let env_or_die () =
  match Lsutil.Env.load_result () with
  | Ok e -> e
  | Error msg ->
      prerr_endline ("mighty: MIG_FAULT: " ^ msg);
      exit 2

let ctx_of_cli ?(stats = false) ?(check = false) ?fault () =
  let e = env_or_die () in
  let fault = match fault with Some _ as f -> f | None -> e.Lsutil.Env.fault in
  Lsutil.Ctx.create
    ~stats:(stats || e.Lsutil.Env.stats)
    ~check:(check || e.Lsutil.Env.check)
    ?fault ~seed:e.Lsutil.Env.seed ~san:e.Lsutil.Env.san ()

let parse_fault_arg = function
  | None -> None
  | Some spec -> (
      match Lsutil.Fault.parse spec with
      | Ok sp -> Some sp
      | Error e ->
          prerr_endline ("mighty: --fault: " ^ e);
          exit 2)

let report g label =
  Format.printf "%-10s size = %d, depth = %d, activity = %.2f@." label
    (Mig.Graph.size g) (Mig.Graph.depth g) (Mig.Activity.total g)

let optimize input output effort goal verify stats =
  let ctx = ctx_of_cli ~stats () in
  let net = read_input input in
  Format.printf "read %s: %a@." input Network.Graph.pp_stats net;
  let m = Mig.Convert.of_network ~ctx net in
  report m "initial";
  let t0 = Unix.gettimeofday () in
  let opt, span =
    Lsutil.Telemetry.capture (Lsutil.Ctx.stats ctx) "optimize" (fun () ->
        match goal with
        | `Size -> Mig.Opt_size.run ~effort m
        | `Depth -> Mig.Opt_depth.run ~effort:(max effort 3) m
        | `Activity -> Mig.Opt_activity.run ~effort m)
  in
  report opt "optimized";
  Format.printf "time: %.2fs@." (Unix.gettimeofday () -. t0);
  Option.iter (Format.printf "%a@." Lsutil.Telemetry.pp) span;
  if verify then begin
    let ok = Mig.Equiv.to_network_equiv ~seed:0xda14 opt net in
    Format.printf "verification: %s@." (if ok then "PASS" else "FAIL");
    if not ok then exit 2
  end;
  match output with
  | Some path ->
      write_output path (Mig.Convert.to_network opt);
      Format.printf "wrote %s@." path
  | None -> ()

let optimize_cmd =
  let doc = "optimize a circuit through the MIG flow" in
  Cmd.v
    (Cmd.info "optimize" ~doc)
    Term.(
      const optimize $ input_arg $ output_arg $ effort_arg $ goal_arg
      $ verify_arg $ stats_arg)

(* The fault-tolerant engine behind a dedicated subcommand: the same
   scripts as [optimize], but budgeted, checkpointed and isolated pass
   by pass.  Exit codes: 0 clean, 2 usage/input error, 3 degraded
   (some pass timed out, failed or was skipped — the output is still a
   valid best-so-far circuit). *)
let opt_run input output effort goal stats timeout max_nodes fault json cache
    par_jobs beam traj =
  (* the fault plan targets the optimization run: reject a bad spec up
     front, but arm it only around [Engine.run] so the reader/converter
     and the output writer stay outside the blast radius *)
  let env = env_or_die () in
  let plan =
    match parse_fault_arg fault with
    | Some _ as p -> p
    | None -> env.Lsutil.Env.fault
  in
  (* the ctx starts with no fault armed, so the reader/converter and
     the output writer stay outside the blast radius *)
  let ctx =
    Lsutil.Ctx.create
      ~stats:(stats || env.Lsutil.Env.stats)
      ~check:env.Lsutil.Env.check ~seed:env.Lsutil.Env.seed
      ~san:env.Lsutil.Env.san ()
  in
  let flt = Lsutil.Ctx.fault ctx in
  (* SIGTERM/SIGINT turn into a sticky budget interrupt: the engine
     finishes by degrading to its best verified checkpoint, the cache
     delta is still saved, and the exit code says "interrupted" (4).
     The handler only flips flags — async-signal-safe. *)
  let interrupted = ref false in
  let stop_handler =
    Sys.Signal_handle
      (fun _ ->
        interrupted := true;
        Lsutil.Budget.interrupt (Lsutil.Ctx.budget ctx))
  in
  Sys.set_signal Sys.sigterm stop_handler;
  Sys.set_signal Sys.sigint stop_handler;
  (* region-parallel rewriting: --par-jobs beats MIG_PAR_JOBS; both are
     capped by the hardware domain count (Flow.Par takes the value
     literally so tests can oversubscribe deliberately) *)
  let par_jobs =
    match (par_jobs, env.Lsutil.Env.par_jobs) with
    | Some n, _ | None, Some n ->
        Some (min n (max 1 (Domain.recommended_domain_count ())))
    | None, None -> None
  in
  let par_goal =
    match (par_jobs, goal) with
    | None, _ -> None
    | Some j, ((`Size | `Depth) as pg) -> Some (j, pg)
    | Some _, `Activity ->
        prerr_endline
          "mighty: --par-jobs supports the size and depth goals only";
        exit 2
    | Some _, `Search ->
        prerr_endline "mighty: --par-jobs is not supported with --goal search";
        exit 2
  in
  (match (par_goal, cache) with
  | Some _, Some _ ->
      prerr_endline "mighty: --par-jobs and --cache are mutually exclusive";
      exit 2
  | _ -> ());
  let store = cache_of_cli cache env in
  let net = read_input input in
  Format.printf "read %s: %a@." input Network.Graph.pp_stats net;
  let m = Mig.Convert.of_network ~ctx (Network.Graph.flatten_aoig net) in
  report m "initial";
  let t0 = Unix.gettimeofday () in
  let opt, rep =
    (match plan with Some sp -> Lsutil.Fault.arm flt sp | None -> ());
    Fun.protect
      ~finally:(fun () -> Lsutil.Fault.disarm flt)
      (fun () ->
        match goal with
        | `Search ->
            (* orchestrated beam search over the move vocabulary: the
               spec's rounds scale with --effort, and --cache feeds its
               rewrite store to the refactoring moves (no cone cutoff —
               the move sequence isn't known up front) *)
            let rwh =
              Option.map (fun c -> Mig.Rwcache.fork (Flow.Cache.rw c)) store
            in
            let spec =
              {
                Flow.Orchestrate.goal = `Size;
                beam;
                rounds = 2 * effort;
                seed = 0xda14;
                timeout_s = timeout;
                max_nodes;
              }
            in
            let out, rep, tr =
              Flow.Orchestrate.run ?cache:rwh ?traj
                ~circuit:(Filename.basename input) ~spec m
            in
            Format.printf "search: explored %d moves, verdict %s@."
              tr.Flow.Traj.explored tr.Flow.Traj.verdict;
            (match (store, rwh) with
            | Some c, Some h ->
                Flow.Cache.absorb_rw c [ Mig.Rwcache.delta h ];
                Format.printf "cache: rewrites %d hit / %d miss@."
                  (Mig.Rwcache.hits h) (Mig.Rwcache.misses h)
            | _ -> ());
            (out, rep)
        | (`Size | `Depth | `Activity) as goal -> (
            match store with
            | None ->
                let passes =
                  match par_goal with
                  | Some (jobs, pg) ->
                      Flow.Par.passes ~jobs
                        ~spec:{ Flow.Par.default_spec with goal = pg; effort }
                        ()
                  | None -> Flow.Engine.of_goal ~effort goal
                in
                Flow.Engine.run ?timeout_s:timeout ?max_nodes
                  ~cost:(Flow.Engine.cost_of_goal goal)
                  ~seed:0xda14 ~passes m
            | Some c ->
            (* cache-accelerated: the rewrite handle feeds the engine's
               refactoring passes, and the cone store lets unchanged
               outputs skip optimization entirely (dune-style cutoff) *)
            let rwh = Mig.Rwcache.fork (Flow.Cache.rw c) in
            let salt =
              Flow.Batch.salt_of_spec
                {
                  Flow.Batch.goal;
                  effort;
                  timeout_s = timeout;
                  max_nodes;
                  verify = None;
                  seed = 0xda14;
                }
            in
            let passes = Flow.Engine.of_goal ~effort ~cache:rwh goal in
            let optimize g =
              Flow.Engine.run ?timeout_s:timeout ?max_nodes
                ~cost:(Flow.Engine.cost_of_goal goal)
                ~seed:0xda14 ~passes g
            in
            let r =
              Flow.Cutoff.run ~salt ~store:(Flow.Cache.cones c) ~optimize
                ~seed:0xda14 m
            in
            Flow.Cache.absorb_rw c [ Mig.Rwcache.delta rwh ];
            Flow.Cache.absorb_cones c [ r.Flow.Cutoff.delta ];
            Format.printf
              "cache: rewrites %d hit / %d miss, cones %d reused / %d \
               re-optimized%s@."
              (Mig.Rwcache.hits rwh) (Mig.Rwcache.misses rwh)
              r.Flow.Cutoff.reused r.Flow.Cutoff.reoptimized
              (if r.Flow.Cutoff.fallback then " [fallback]" else "");
            (r.Flow.Cutoff.graph, r.Flow.Cutoff.report)))
  in
  report opt "optimized";
  Format.printf "time: %.2fs@." (Unix.gettimeofday () -. t0);
  Format.printf "%a@." Flow.Engine.pp_report rep;
  save_cache store;
  (* a partial (interrupted) report is still a complete, schema-stable
     JSON document — it just says so *)
  let report_json () =
    match Flow.Engine.report_to_json rep with
    | Lsutil.Json.Obj fields when !interrupted ->
        Lsutil.Json.Obj (("interrupted", Lsutil.Json.Bool true) :: fields)
    | j -> j
  in
  (match json with
  | Some "-" -> Format.printf "%a@." Lsutil.Json.pp (report_json ())
  | Some path ->
      let oc = open_out path in
      output_string oc (Lsutil.Json.to_string (report_json ()));
      output_char oc '\n';
      close_out oc;
      Format.printf "wrote %s@." path
  | None -> ());
  (match output with
  | Some path ->
      write_output path (Mig.Convert.to_network opt);
      Format.printf "wrote %s@." path
  | None -> ());
  if !interrupted then begin
    Format.printf "interrupted: returning best-so-far result@.";
    exit 4
  end;
  if rep.Flow.Engine.degraded then exit 3

let opt_cmd =
  let doc =
    "optimize under a resource budget with checkpoint/rollback (the \
     fault-tolerant pass engine)"
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SEC"
          ~doc:
            "Wall-clock budget in seconds.  When it expires mid-pass the \
             engine rolls back to the last verified checkpoint and returns \
             the best result so far (exit code 3).")
  in
  let max_nodes =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-nodes" ] ~docv:"N"
          ~doc:
            "Node-allocation budget shared by every arena (MIG, AIG, BDD) \
             used while optimizing.")
  in
  let fault =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault" ] ~docv:"SPEC"
          ~doc:
            "Arm deterministic fault injection, e.g. \
             $(b,seed=7:rate=0.05:kind=any:sites=transform,strash).  \
             Defaults to the $(b,MIG_FAULT) environment variable; see \
             DESIGN.md \xc2\xa712 for the grammar.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:
            "Write the engine report (per-pass outcomes, rollbacks, \
             verification) as JSON to $(docv), or to stdout for $(b,-).")
  in
  let par_jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "par-jobs" ] ~docv:"N"
          ~doc:
            "Optimize fanout-closed regions of the graph on $(docv) worker \
             domains (region-parallel rewriting; size/depth goals only, \
             mutually exclusive with $(b,--cache)).  The result is \
             bit-identical at any job count.  Defaults to the \
             $(b,MIG_PAR_JOBS) environment variable; capped by the \
             hardware domain count.")
  in
  let beam =
    Arg.(
      value & opt int 2
      & info [ "beam" ] ~docv:"K"
          ~doc:
            "Beam width for $(b,--goal search): how many best-scoring \
             candidates survive each search round ($(b,1) = greedy).")
  in
  let traj =
    Arg.(
      value
      & opt (some string) None
      & info [ "traj" ] ~docv:"PATH"
          ~doc:
            "Append the search trajectory (one $(b,mighty-traj/1) JSON \
             record per run, NDJSON) to $(docv).  Only meaningful with \
             $(b,--goal search).")
  in
  Cmd.v
    (Cmd.info "opt" ~doc)
    Term.(
      const opt_run $ input_arg $ output_arg $ effort_arg $ opt_goal_arg
      $ stats_arg $ timeout $ max_nodes $ fault $ json $ cache_arg
      $ par_jobs $ beam $ traj)

let map_cmd =
  let doc = "optimize and map onto the 22nm-style cell library" in
  let run input effort no_maj =
    let ctx = ctx_of_cli () in
    let net = read_input input in
    let m =
      Mig.Opt_depth.run ~effort:(max effort 3)
        (Mig.Convert.of_network ~ctx net)
    in
    let lib = if no_maj then Tech.Cells.no_majority else Tech.Cells.full in
    let r = Tech.Mapper.map_network ~ctx ~lib (Mig.Convert.to_network m) in
    Format.printf "%a@." Tech.Mapper.pp_result r;
    List.iter
      (fun (cell, count) -> Format.printf "  %-6s x %d@." cell count)
      r.Tech.Mapper.cell_counts
  in
  let no_maj =
    Arg.(
      value & flag
      & info [ "no-majority-cells" ]
          ~doc:"Map without the MAJ-3/MIN-3 cells (ablation).")
  in
  Cmd.v (Cmd.info "map" ~doc)
    Term.(const run $ input_arg $ effort_arg $ no_maj)

let stats_cmd =
  let doc = "print size/depth/activity of a circuit" in
  let run input =
    let net = read_input input in
    Format.printf "%a, depth = %d, activity = %.2f@." Network.Graph.pp_stats
      net
      (Network.Metrics.depth net)
      (Network.Metrics.activity net)
  in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const run $ input_arg)

let bench_cmd =
  let doc = "emit a named benchmark circuit from the built-in suite" in
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME"
          ~doc:
            (Printf.sprintf "One of: %s, compress"
               (String.concat ", " Benchmarks.Suite.names)))
  in
  let out_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"OUTPUT" ~doc:"Output file (.blif or .v).")
  in
  let run name out =
    let net =
      if name = "compress" then Benchmarks.Suite.compression ()
      else (Benchmarks.Suite.find name).Benchmarks.Suite.build ()
    in
    write_output out net;
    Format.printf "wrote %s: %a@." out Network.Graph.pp_stats net
  in
  Cmd.v (Cmd.info "bench" ~doc) Term.(const run $ name_arg $ out_arg)

(* Multi-domain batch driver over the built-in suite (or named subset):
   one worker domain per job, one private execution context per
   circuit, results merged in input order.  Exit codes as [opt]: 0
   clean, 3 if any circuit degraded. *)
let batch_run names jobs goal effort timeout max_nodes fault stats check json
    cache =
  let env = env_or_die () in
  let plan =
    match parse_fault_arg fault with
    | Some _ as p -> p
    | None -> env.Lsutil.Env.fault
  in
  let items =
    let pick =
      match names with
      | [] -> Benchmarks.Suite.all
      | names ->
          List.map
            (fun n ->
              try Benchmarks.Suite.find n
              with Not_found ->
                prerr_endline ("mighty batch: unknown circuit " ^ n);
                exit 2)
            names
    in
    List.map
      (fun e ->
        {
          Flow.Batch.name = e.Benchmarks.Suite.name;
          build = e.Benchmarks.Suite.build;
        })
      pick
  in
  let spec =
    {
      Flow.Batch.goal;
      effort;
      timeout_s = timeout;
      max_nodes;
      verify = None;
      seed = env.Lsutil.Env.seed;
    }
  in
  let make_ctx _ _ =
    Lsutil.Ctx.create
      ~stats:(stats || env.Lsutil.Env.stats)
      ~check:(check || env.Lsutil.Env.check)
      ?fault:plan ~seed:env.Lsutil.Env.seed ~san:env.Lsutil.Env.san ()
  in
  let store = cache_of_cli cache env in
  (* SIGTERM/SIGINT stop workers from claiming new circuits;
     in-flight ones finish, so every reported outcome is whole and
     verified.  Cache deltas of completed items are saved, the JSON
     report is emitted with an "interrupted" marker, exit code 4. *)
  let stop = Atomic.make false in
  let stop_handler = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
  Sys.set_signal Sys.sigterm stop_handler;
  Sys.set_signal Sys.sigint stop_handler;
  let t0 = Unix.gettimeofday () in
  let outcomes =
    Flow.Batch.run ~jobs ~spec ~make_ctx ?cache:store ~stop items
  in
  let dt = Unix.gettimeofday () -. t0 in
  let interrupted = Atomic.get stop in
  List.iter (Format.printf "%a@." Flow.Batch.pp_outcome) outcomes;
  Format.printf "batch: %d circuit(s), %d job(s), %.3fs%s@."
    (List.length outcomes) jobs dt
    (if interrupted then
       Printf.sprintf "  [interrupted: %d of %d done]" (List.length outcomes)
         (List.length items)
     else "");
  (match store with
  | Some _ ->
      let h, m, reused, reopt =
        List.fold_left
          (fun (h, m, r, o) out ->
            match out.Flow.Batch.cache with
            | Some u ->
                ( h + u.Flow.Batch.rw_hits,
                  m + u.Flow.Batch.rw_misses,
                  r + u.Flow.Batch.reused_pos,
                  o + u.Flow.Batch.reopt_pos )
            | None -> (h, m, r, o))
          (0, 0, 0, 0) outcomes
      in
      Format.printf
        "cache: rewrites %d hit / %d miss, cones %d reused / %d re-optimized@."
        h m reused reopt
  | None -> ());
  save_cache store;
  (match json with
  | Some "-" ->
      Format.printf "%a@." Lsutil.Json.pp
        (Flow.Batch.to_json ~interrupted ~jobs outcomes)
  | Some path ->
      let oc = open_out path in
      output_string oc
        (Lsutil.Json.to_string (Flow.Batch.to_json ~interrupted ~jobs outcomes));
      output_char oc '\n';
      close_out oc;
      Format.printf "wrote %s@." path
  | None -> ());
  if interrupted then exit 4;
  if List.exists (fun o -> o.Flow.Batch.report.Flow.Engine.degraded) outcomes
  then exit 3

let batch_cmd =
  let doc =
    "optimize many circuits concurrently (one engine pipeline per worker \
     domain, one private context per circuit)"
  in
  let names_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"NAME"
          ~doc:
            (Printf.sprintf
               "Circuits from the built-in suite (default: all of %s)."
               (String.concat ", " Benchmarks.Suite.names)))
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains (clamped to the circuit count and the hardware \
             parallelism).  Results are bit-identical for any value.")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SEC"
          ~doc:"Per-circuit wall-clock budget in seconds.")
  in
  let max_nodes =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-nodes" ] ~docv:"N"
          ~doc:"Per-circuit node-allocation budget.")
  in
  let fault =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault" ] ~docv:"SPEC"
          ~doc:
            "Arm deterministic fault injection in every circuit's private \
             context (same grammar as $(b,mighty opt --fault)).")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Run every pipeline under the transform guard (equivalent to \
             $(b,MIG_CHECK=1)).")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:
            "Write per-circuit outcomes (sizes, depths, engine reports, \
             telemetry when $(b,--stats)) as JSON to $(docv), or stdout for \
             $(b,-).")
  in
  Cmd.v (Cmd.info "batch" ~doc)
    Term.(
      const batch_run $ names_arg $ jobs $ goal_arg $ effort_arg $ timeout
      $ max_nodes $ fault $ stats_arg $ check $ json $ cache_arg)

let check_cmd =
  let doc =
    "lint a circuit against the structural invariants (MIG/AIG/NET rules)"
  in
  let list_rules =
    Arg.(
      value & flag
      & info [ "list-rules" ] ~doc:"Print the rule catalog and exit.")
  in
  let guard =
    Arg.(
      value & flag
      & info [ "guard" ]
          ~doc:
            "Also run a guarded depth optimization on the MIG: pre/post \
             lint plus a simulation miter with counterexample reporting.")
  in
  let input =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"INPUT" ~doc:"Input circuit (.blif or .v, flattened).")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:
            "Write the findings as a mighty-check/1 JSON document to \
             $(docv), or stdout for $(b,-).")
  in
  let run list_rules guard json input =
    if list_rules then begin
      Format.printf "%a@." Check.Rules.pp_catalog ();
      exit 0
    end;
    match input with
    | None ->
        prerr_endline "mighty check: INPUT argument required";
        exit 2
    | Some path ->
        let net =
          try read_input path
          with e ->
            Format.eprintf "mighty check: cannot read %s: %s@." path
              (Printexc.to_string e);
            exit 2
        in
        let ctx = ctx_of_cli () in
        let m = Mig.Convert.of_network ~ctx net in
        let a = Aig.Convert.of_network ~ctx net in
        let reports =
          [
            Network.Check.lint ~subject:"network" net;
            Mig.Check.lint ~subject:"mig" m;
            Aig.Check.lint ~subject:"aig" a;
            (* runtime-sanitizer findings (empty unless MIG_SAN=1 saw a
               violation while building the graphs above) *)
            Check.San.report (Lsutil.Ctx.san ctx);
          ]
        in
        (match json with
        | Some "-" ->
            Format.printf "%a@." Lsutil.Json.pp
              (Check.Report.reports_to_json reports)
        | Some out ->
            let oc = open_out out in
            output_string oc
              (Lsutil.Json.to_string (Check.Report.reports_to_json reports));
            output_char oc '\n';
            close_out oc
        | None ->
            List.iter
              (fun r -> Format.printf "%a@." Check.Report.pp r)
              reports);
        (if guard then
           match
             Mig.Check.guarded ~enabled:true ~name:"opt_depth"
               (Mig.Opt_depth.run ~check:false ~effort:2)
               m
           with
           | _ -> Format.printf "guard: opt_depth PASS@."
           | exception Check.Guard.Failed f ->
               Format.printf "%a@." Check.Guard.pp_failure f;
               exit 1);
        let nerr =
          List.fold_left
            (fun acc r -> acc + List.length (Check.Report.errors r))
            0 reports
        in
        if nerr > 0 then begin
          if json = None then Format.printf "%d error(s)@." nerr;
          exit 1
        end
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(const run $ list_rules $ guard $ json $ input)

let equiv_cmd =
  let doc = "check two circuits for functional equivalence" in
  let a_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"A" ~doc:"First circuit.")
  in
  let b_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"B" ~doc:"Second circuit.")
  in
  let run a b =
    let na = read_input a and nb = read_input b in
    let ok = Network.Simulate.equivalent ~seed:0xe9 na nb in
    Format.printf "%s@." (if ok then "EQUIVALENT" else "NOT EQUIVALENT");
    if not ok then exit 1
  in
  Cmd.v (Cmd.info "equiv" ~doc) Term.(const run $ a_arg $ b_arg)

(* ----- the optimization daemon and its clients ----- *)

let port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT"
        ~doc:
          "TCP port (server: 0 picks an ephemeral port).  Defaults to \
           $(b,MIG_SERVE_PORT).")

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST"
        ~doc:"Address to bind / connect to (default 127.0.0.1).")

let unix_socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "unix-socket" ] ~docv:"PATH"
        ~doc:"Use a Unix-domain socket instead of TCP.")

let resolve_addr env port host unix_socket =
  match (unix_socket, port, env.Lsutil.Env.serve_port) with
  | Some path, _, _ -> `Unix path
  | None, Some p, _ | None, None, Some p -> `Tcp (host, p)
  | None, None, None ->
      prerr_endline "mighty: need --port, --unix-socket or MIG_SERVE_PORT";
      exit 2

let serve_run port host unix_socket queue workers timeout cache check =
  let env = env_or_die () in
  let addr = resolve_addr env port host unix_socket in
  let store = cache_of_cli cache env in
  let dc = Serve.Server.default_config ~env addr in
  let cfg =
    {
      dc with
      Serve.Server.queue_capacity =
        (match queue with
        | Some q -> q
        | None -> dc.Serve.Server.queue_capacity);
      workers =
        (match workers with Some w -> w | None -> dc.Serve.Server.workers);
      default_timeout_s =
        (match timeout with
        | Some _ as t -> t
        | None -> dc.Serve.Server.default_timeout_s);
      cache = store;
      check = check || dc.Serve.Server.check;
    }
  in
  (match addr with
  | `Tcp (h, p) ->
      Format.printf "serve: listening on %s:%d (%d workers, queue %d)@." h p
        cfg.Serve.Server.workers cfg.Serve.Server.queue_capacity
  | `Unix p ->
      Format.printf "serve: listening on %s (%d workers, queue %d)@." p
        cfg.Serve.Server.workers cfg.Serve.Server.queue_capacity);
  (* blocks until SIGTERM/SIGINT completes the graceful drain:
     accepting stops, in-flight requests finish, the cache delta is
     flushed, and we fall through to a clean exit 0 *)
  Serve.Server.run cfg;
  Format.printf "serve: drained, exiting@."

let serve_cmd =
  let doc =
    "run the long-lived optimization daemon (newline-delimited JSON over \
     TCP or a Unix socket; graceful SIGTERM/SIGINT drain)"
  in
  let queue =
    Arg.(
      value
      & opt (some int) None
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Admission-queue capacity; a full queue rejects new connections \
             with a structured $(i,overloaded) error carrying \
             retry_after_ms.  Defaults to $(b,MIG_SERVE_QUEUE) or 64.")
  in
  let workers =
    Arg.(
      value
      & opt (some int) None
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Worker domains (default: hardware parallelism minus one; 0 is \
             a test hook that admits but never serves).")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SEC"
          ~doc:
            "Per-request deadline cap in seconds (default 30); requests \
             asking for more are clamped, requests that hit it degrade to \
             their best verified checkpoint.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Run every request under the transform guard (equivalent to \
             $(b,MIG_CHECK=1)).")
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const serve_run $ port_arg $ host_arg $ unix_socket_arg $ queue
      $ workers $ timeout $ cache_arg $ check)

let ping_run port host unix_socket =
  let env = env_or_die () in
  let addr = resolve_addr env port host unix_socket in
  match Serve.Client.connect addr with
  | Error e ->
      prerr_endline ("mighty ping: " ^ e);
      exit 1
  | Ok conn -> (
      let r = Serve.Client.ping conn in
      Serve.Client.close conn;
      match r with
      | Ok body -> Format.printf "%a@." Lsutil.Json.pp body
      | Error e ->
          prerr_endline ("mighty ping: " ^ e);
          exit 1)

let ping_cmd =
  let doc = "ping a running daemon and print its status record" in
  Cmd.v (Cmd.info "ping" ~doc)
    Term.(const ping_run $ port_arg $ host_arg $ unix_socket_arg)

let serve_load_run port host unix_socket clients requests names goal effort
    timeout fault_every fault json =
  let open Serve.Load in
  let env = env_or_die () in
  let addr = resolve_addr env port host unix_socket in
  let circuits =
    match names with
    | [] -> default_options.circuits
    | ns ->
        List.map
          (fun n ->
            if List.mem n Benchmarks.Suite.names then Serve.Protocol.Bench n
            else begin
              prerr_endline ("mighty serve-load: unknown circuit " ^ n);
              exit 2
            end)
          ns
  in
  let opts =
    {
      clients;
      requests_per_client = requests;
      circuits;
      goal;
      effort;
      timeout_s = timeout;
      fault_every;
      fault_spec =
        (match fault with Some s -> s | None -> default_options.fault_spec);
      seed = env.Lsutil.Env.seed;
    }
  in
  let stats = run addr opts in
  Format.printf
    "serve-load: %d sent, %d ok (%d degraded), %d server errors, %d \
     failures@."
    stats.sent stats.ok stats.degraded stats.server_errors
    (List.length stats.failures);
  List.iter (Format.printf "  failure: %s@.") stats.failures;
  Format.printf "latency: p50 %.1f ms, p99 %.1f ms, max %.1f ms (%.2fs wall)@."
    stats.p50_ms stats.p99_ms stats.max_ms stats.wall_s;
  (match json with
  | Some "-" -> Format.printf "%a@." Lsutil.Json.pp (stats_to_json stats)
  | Some path ->
      let oc = open_out path in
      output_string oc (Lsutil.Json.to_string (stats_to_json stats));
      output_char oc '\n';
      close_out oc;
      Format.printf "wrote %s@." path
  | None -> ());
  (* transport/validation failures are CI-fatal; pure rejection storms
     (ok = 0) are too, so a misconfigured run can't pass silently *)
  if stats.failures <> [] || (stats.sent > 0 && stats.ok = 0) then exit 1

let serve_load_cmd =
  let doc =
    "drive a running daemon with concurrent clients and report p50/p99 \
     latency (the CI smoke/chaos load)"
  in
  let clients =
    Arg.(
      value & opt int 8
      & info [ "clients" ] ~docv:"N" ~doc:"Concurrent client domains.")
  in
  let requests =
    Arg.(
      value & opt int 4
      & info [ "requests" ] ~docv:"N" ~doc:"Requests per client.")
  in
  let names_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"NAME"
          ~doc:"Suite circuits to request round-robin (default b9, count, \
                cla).")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) (Some 20.)
      & info [ "timeout" ] ~docv:"SEC" ~doc:"Per-request budget sent along.")
  in
  let fault_every =
    Arg.(
      value
      & opt (some int) None
      & info [ "fault-every" ] ~docv:"N"
          ~doc:
            "Chaos mode: every $(docv)-th request of each client carries \
             the --fault spec, so faults fire in-flight while healthy \
             requests keep streaming.")
  in
  let fault =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault" ] ~docv:"SPEC"
          ~doc:"Fault spec for --fault-every requests.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:"Write the load statistics as JSON to $(docv) ($(b,-): stdout).")
  in
  Cmd.v (Cmd.info "serve-load" ~doc)
    Term.(
      const serve_load_run $ port_arg $ host_arg $ unix_socket_arg $ clients
      $ requests $ names_arg $ opt_goal_arg $ effort_arg $ timeout
      $ fault_every $ fault $ json)

let () =
  let doc = "MIG-based logic optimization (Amaru et al., DAC'14)" in
  let info = Cmd.info "mighty" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            optimize_cmd; opt_cmd; batch_cmd; map_cmd; stats_cmd; bench_cmd;
            check_cmd; equiv_cmd; serve_cmd; ping_cmd; serve_load_cmd;
          ]))
