(* Datapath optimization: the workload class the paper's introduction
   motivates ("MIGs open the opportunity for efficient synthesis of
   datapath circuits, where majority logic is dominant").

   Builds three arithmetic datapaths, optimizes each with the MIG flow
   and the AIG (resyn2-style) baseline, and prints the depth/size
   comparison.

   Run with:  dune exec examples/datapath.exe *)

module N = Network.Graph

(* one explicit execution context for the whole example *)
let ctx = Lsutil.Ctx.default ()

let compare_flows name net =
  let flat = N.flatten_aoig net in
  let mig, mr = Flow.mig_opt ctx net in
  let aig, ar = Flow.aig_opt ctx net in
  assert (Mig.Equiv.to_network_equiv ~seed:7 mig flat);
  assert (
    Network.Simulate.equivalent ~seed:8 (Aig.Convert.to_network aig) flat);
  Format.printf
    "%-24s | MIG %5d nodes %3d levels | AIG %5d nodes %3d levels | depth %+.0f%%@."
    name mr.Flow.size mr.Flow.depth ar.Flow.size ar.Flow.depth
    ((float_of_int mr.Flow.depth /. float_of_int ar.Flow.depth -. 1.) *. 100.);
  (mr, ar)

let () =
  Format.printf "Datapath circuits, MIG vs AIG optimization:@.@.";
  let results =
    [
      compare_flows "32-bit ripple adder" (Benchmarks.Arith.ripple_adder 32);
      compare_flows "64-bit carry-lookahead" (Benchmarks.Arith.cla_adder 64);
      compare_flows "8x8 array multiplier" (Benchmarks.Arith.array_multiplier 8);
      compare_flows "24-bit counter" (Benchmarks.Arith.counter_next 24);
      compare_flows "min/max of 4x16-bit"
        (Benchmarks.Arith.minmax ~width:16 ~words:4);
    ]
  in
  let avg f =
    List.fold_left (fun acc r -> acc +. f r) 0.0 results
    /. float_of_int (List.length results)
  in
  let ratio =
    avg (fun ((m : Flow.opt_result), (a : Flow.opt_result)) ->
        float_of_int m.Flow.depth /. float_of_int a.Flow.depth)
  in
  Format.printf "@.average depth: %.0f%% of the AIG baseline@."
    (ratio *. 100.);
  Format.printf
    "(carry chains become log-depth majority trees under Ω.D/Ω.A push-up)@."
