(* A complete optimization-mapping synthesis flow (§V.B): read a
   flattened circuit from BLIF, optimize it as an MIG, map it onto the
   standard-cell library, compare against the AIG flow and the
   commercial-tool proxy, and write the optimized netlist back as
   Verilog.

   Run with:  dune exec examples/synthesis_flow.exe *)

let () =
  (* produce an input file the way a user would (any .blif works) *)
  let input = Filename.temp_file "dalu" ".blif" in
  let output = Filename.temp_file "dalu_opt" ".v" in
  Logic_io.Blif.write_file input
    ((Benchmarks.Suite.find "dalu").Benchmarks.Suite.build ());
  Format.printf "wrote input circuit to %s@." input;

  (* read it back — the file is plain two-level BLIF logic *)
  let net = Logic_io.Blif.read_file input in
  Format.printf "read: %a@." Network.Graph.pp_stats net;

  (* the three synthesis flows of Table I (bottom), all under one
     explicit execution context *)
  let ctx = Lsutil.Ctx.default () in
  let mig = Flow.mig_synth ctx net in
  let aig = Flow.aig_synth ctx net in
  let cst = Flow.cst_synth ctx net in
  Format.printf "@.%-22s %10s %9s %10s@." "flow" "area(um2)" "delay(ns)"
    "power(uW)";
  let row name (r : Flow.syn_result) =
    Format.printf "%-22s %10.2f %9.3f %10.2f@." name r.Flow.area r.Flow.delay
      r.Flow.power
  in
  row "MIG + mapping" mig;
  row "AIG + mapping" aig;
  row "commercial proxy" cst;
  Format.printf "@.MIG vs best counterpart: delay %+.1f%%@."
    ((mig.Flow.delay /. Float.min aig.Flow.delay cst.Flow.delay -. 1.) *. 100.);

  (* write the optimized logic back as flattened Verilog *)
  let opt, _ = Flow.mig_opt (Lsutil.Ctx.default ()) net in
  Logic_io.Verilog.write_file output (Mig.Convert.to_network opt);
  Format.printf "wrote optimized netlist to %s@." output;

  (* prove the written file still computes the original function *)
  let reread = Logic_io.Verilog.read_file output in
  assert (
    Network.Simulate.equivalent ~seed:3
      (Network.Graph.flatten_aoig net)
      reread);
  Format.printf "round-trip equivalence: verified@.";
  Sys.remove input;
  Sys.remove output
