(* Quickstart: build a small function three ways, optimize it as an
   MIG, and verify the result.

   Run with:  dune exec examples/quickstart.exe *)

module N = Network.Graph
module M = Mig.Graph
module S = Network.Signal

let () =
  (* 1. Describe a circuit with the generic network builders:
        a full adder (sum and carry of three inputs). *)
  let net = N.create () in
  let a = N.add_pi net "a" and b = N.add_pi net "b" and cin = N.add_pi net "cin" in
  N.add_po net "sum" (N.xor_ net (N.xor_ net a b) cin);
  N.add_po net "carry" (N.maj net a b cin);
  Format.printf "network: %a@." N.pp_stats net;

  (* 2. Flatten to AND/OR/INV — the paper's input format — and
        transpose into a Majority-Inverter Graph (Theorem 3.1). *)
  let flat = N.flatten_aoig net in
  let mig = Mig.Convert.of_network flat in
  Format.printf "transposed MIG: %a@." M.pp_stats mig;

  (* 3. Optimize for depth (Algorithm 2) and for size (Algorithm 1). *)
  let fast = Mig.Opt_depth.run mig in
  let small = Mig.Opt_size.run mig in
  Format.printf "depth-optimized: %a@." M.pp_stats fast;
  Format.printf "size-optimized:  %a@." M.pp_stats small;

  (* 4. Every transformation is function-preserving; check it. *)
  assert (Mig.Equiv.to_network_equiv ~seed:42 fast flat);
  assert (Mig.Equiv.to_network_equiv ~seed:43 small flat);
  Format.printf "equivalence: verified@.";

  (* 5. Inspect the result symbolically: the carry output is a single
        majority node, M(a,b,cin). *)
  (match M.pos fast with
  | _ :: ("carry", s) :: _ | ("carry", s) :: _ ->
      Format.printf "carry = %a@." Mig.Algebra.pp (Mig.Algebra.of_signal fast s)
  | _ -> ());

  (* 6. And map it onto the 22nm-style standard-cell library. *)
  let mapped = Tech.Mapper.map_network (Mig.Convert.to_network fast) in
  Format.printf "mapped: %a@." Tech.Mapper.pp_result mapped;
  List.iter
    (fun (cell, n) -> Format.printf "  %-6s x %d@." cell n)
    mapped.Tech.Mapper.cell_counts
