(* Majority-native technologies (the paper's §I motivation): in
   several beyond-CMOS technologies — QCA, spin-wave devices,
   resonant-tunneling diodes — the majority gate is the *primitive*,
   so an MIG is the natural intermediate form.

   This example optimizes datapath circuits and reports how much of
   the mapped netlist lands in native majority cells, with and without
   MAJ-3/MIN-3 in the library (the DESIGN.md §6 mapping ablation). *)

let cell_fraction result names =
  let total =
    List.fold_left (fun acc (_, n) -> acc + n) 0
      result.Tech.Mapper.cell_counts
  in
  let matching =
    List.fold_left
      (fun acc (cell, n) -> if List.mem cell names then acc + n else acc)
      0 result.Tech.Mapper.cell_counts
  in
  100.0 *. float_of_int matching /. float_of_int (max 1 total)

let () =
  Format.printf
    "Majority-native mapping (MAJ-3/MIN-3 as first-class cells):@.@.";
  Format.printf "%-22s %9s %9s %11s %11s@." "circuit" "delay(ns)"
    "delay(ns)" "MAJ cells" "area ratio";
  Format.printf "%-22s %9s %9s %11s %11s@." "" "full lib" "no MAJ" "(full)" "(no/full)";
  List.iter
    (fun (name, net) ->
      let sub =
        Mig.Convert.to_network
          (Mig.Opt_depth.run
             (Mig.Convert.of_network (Network.Graph.flatten_aoig net)))
      in
      let full, ok1 = Tech.Mapper.map_and_verify ~seed:1 sub in
      let nomaj, ok2 =
        Tech.Mapper.map_and_verify ~lib:Tech.Cells.no_majority ~seed:2 sub
      in
      assert (ok1 && ok2);
      Format.printf "%-22s %9.3f %9.3f %10.1f%% %11.2f@." name
        full.Tech.Mapper.delay nomaj.Tech.Mapper.delay
        (cell_fraction full [ "MAJ3"; "MIN3" ])
        (nomaj.Tech.Mapper.area /. full.Tech.Mapper.area))
    [
      ("16-bit adder", Benchmarks.Arith.ripple_adder 16);
      ("8x8 multiplier", Benchmarks.Arith.array_multiplier 8);
      ("16-bit counter", Benchmarks.Arith.counter_next 16);
      ("32-bit CLA", Benchmarks.Arith.cla_adder 32);
    ];
  Format.printf
    "@.Without native majority cells every M(a,b,c) costs several\n\
     NAND/NOR/INV cells; with them the MIG structure maps one-to-one —\n\
     the reason the paper argues MIGs are the natural synthesis target\n\
     for majority-based nanotechnologies.@."
