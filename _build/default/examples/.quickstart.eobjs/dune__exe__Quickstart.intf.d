examples/quickstart.mli:
