examples/quickstart.ml: Format List Mig Network Tech
