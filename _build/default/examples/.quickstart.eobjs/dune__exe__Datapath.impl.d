examples/datapath.ml: Aig Benchmarks Flow Format List Mig Network
