examples/datapath.mli:
