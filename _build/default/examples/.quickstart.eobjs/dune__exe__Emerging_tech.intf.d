examples/emerging_tech.mli:
