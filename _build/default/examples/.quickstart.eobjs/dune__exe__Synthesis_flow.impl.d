examples/synthesis_flow.ml: Benchmarks Filename Float Flow Format Logic_io Mig Network Sys
