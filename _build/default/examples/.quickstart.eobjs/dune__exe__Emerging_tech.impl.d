examples/emerging_tech.ml: Benchmarks Format List Mig Network Tech
