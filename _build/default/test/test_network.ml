module N = Network.Graph
module S = Network.Signal
module T = Truthtable

let tt = Helpers.check_tt

(* ----- signals ----- *)

let test_signal () =
  let s = S.make 5 true in
  Alcotest.(check int) "node" 5 (S.node s);
  Alcotest.(check bool) "complement" true (S.is_complement s);
  Alcotest.(check bool) "not flips" false (S.is_complement (S.not_ s));
  Alcotest.(check int) "not keeps node" 5 (S.node (S.not_ s));
  Alcotest.(check bool) "regular" false (S.is_complement (S.regular s));
  Alcotest.(check bool) "xor_complement true" true
    (S.is_complement (S.xor_complement (S.make 3 false) true));
  Alcotest.(check bool) "equal" true (S.equal s (S.make 5 true))

(* ----- builder folding ----- *)

let test_folding () =
  let n = N.create () in
  let a = N.add_pi n "a" and b = N.add_pi n "b" in
  Alcotest.(check bool) "a&a = a" true (S.equal a (N.and_ n a a));
  Alcotest.(check bool) "a&a' = 0" true (S.equal (N.const0 n) (N.and_ n a (S.not_ a)));
  Alcotest.(check bool) "a&1 = a" true (S.equal a (N.and_ n a (N.const1 n)));
  Alcotest.(check bool) "a|0 = a" true (S.equal a (N.or_ n a (N.const0 n)));
  Alcotest.(check bool) "a^a = 0" true (S.equal (N.const0 n) (N.xor_ n a a));
  Alcotest.(check bool) "a^1 = a'" true (S.equal (S.not_ a) (N.xor_ n a (N.const1 n)));
  Alcotest.(check bool) "maj(a,a,b) = a" true (S.equal a (N.maj n a a b));
  Alcotest.(check bool) "maj(a,a',b) = b" true (S.equal b (N.maj n a (S.not_ a) b));
  Alcotest.(check bool) "maj(a,b,0) = a&b" true
    (S.equal (N.and_ n a b) (N.maj n a b (N.const0 n)));
  Alcotest.(check bool) "maj(a,b,1) = a|b" true
    (S.equal (N.or_ n a b) (N.maj n a b (N.const1 n)));
  Alcotest.(check bool) "mux(1,t,e) = t" true (S.equal a (N.mux n (N.const1 n) a b));
  Alcotest.(check bool) "mux(s,t,t) = t" true (S.equal b (N.mux n a b b));
  Alcotest.(check bool) "mux(s,e',e) = s^e" true
    (S.equal (N.xor_ n a b) (N.mux n a (S.not_ b) b))

let test_strash () =
  let n = N.create () in
  let a = N.add_pi n "a" and b = N.add_pi n "b" in
  let x = N.and_ n a b and y = N.and_ n b a in
  Alcotest.(check bool) "commutative sharing" true (S.equal x y);
  Alcotest.(check int) "one gate" 1 (N.size n);
  let p = N.xor_ n a (S.not_ b) and q = N.xor_ n (S.not_ a) b in
  Alcotest.(check bool) "xor complement normalization" true (S.equal p q)

let test_nary () =
  let n = N.create () in
  let xs = List.init 7 (fun i -> N.add_pi n (Printf.sprintf "x%d" i)) in
  N.add_po n "and" (N.and_n n xs);
  N.add_po n "or" (N.or_n n xs);
  N.add_po n "xor" (N.xor_n n xs);
  Alcotest.(check bool) "and_n [] = 1" true (S.equal (N.const1 n) (N.and_n n []));
  Alcotest.(check bool) "or_n [] = 0" true (S.equal (N.const0 n) (N.or_n n []));
  let tts = Network.Simulate.truthtables n in
  let expect_and =
    List.fold_left T.and_ (T.const1 7) (List.init 7 (T.var 7))
  in
  Alcotest.check tt "and_n function" expect_and (List.assoc "and" tts);
  let expect_xor =
    List.fold_left T.xor_ (T.const0 7) (List.init 7 (T.var 7))
  in
  Alcotest.check tt "xor_n function" expect_xor (List.assoc "xor" tts);
  (* balanced: depth is log-ish *)
  Alcotest.(check bool) "and_n balanced" true (Network.Metrics.depth n <= 6)

let test_cleanup () =
  let n = N.create () in
  let a = N.add_pi n "a" and b = N.add_pi n "b" and c = N.add_pi n "c" in
  let used = N.and_ n a b in
  let _dead = N.xor_ n b c in
  N.add_po n "y" used;
  let n' = N.cleanup n in
  Alcotest.(check int) "dead gate removed" 1 (N.size n');
  Alcotest.(check int) "PIs preserved" 3 (N.num_pis n');
  Alcotest.(check bool) "function preserved" true
    (Network.Simulate.equivalent ~seed:1 n n')

let test_flatten_aoig () =
  let n = Helpers.random_network ~seed:77 ~inputs:8 ~gates:60 ~outputs:4 in
  let flat = N.flatten_aoig n in
  (* only And/Or gates remain *)
  let ok = ref true in
  N.iter_gates flat (fun _ fn _ ->
      match fn with N.And | N.Or -> () | _ -> ok := false);
  Alcotest.(check bool) "only AND/OR gates" true !ok;
  Alcotest.(check bool) "function preserved" true
    (Network.Simulate.equivalent ~seed:2 n flat)

(* ----- metrics ----- *)

let test_depth () =
  let n = N.create () in
  let a = N.add_pi n "a" and b = N.add_pi n "b" and c = N.add_pi n "c" in
  N.add_po n "y" (N.and_ n (N.and_ n a b) c);
  Alcotest.(check int) "chain depth" 2 (Network.Metrics.depth n);
  Alcotest.(check int) "custom cost" 4
    (Network.Metrics.depth ~cost:(fun _ -> 2) n)

let test_probabilities () =
  let n = N.create () in
  let a = N.add_pi n "a" and b = N.add_pi n "b" in
  let x = N.and_ n a b in
  N.add_po n "y" x;
  let p = Network.Metrics.probabilities n in
  Alcotest.(check (float 1e-9)) "p(and) = 1/4" 0.25 p.(S.node x);
  let p' = Network.Metrics.probabilities ~pi_prob:(fun _ -> 0.1) n in
  Alcotest.(check (float 1e-9)) "p(and) skewed" 0.01 p'.(S.node x);
  (* complement handling through a PO on a complemented edge *)
  let act = Network.Metrics.activity n in
  Alcotest.(check (float 1e-9)) "activity of one AND" (0.25 *. 0.75) act

let test_maj_probability () =
  let n = N.create () in
  let a = N.add_pi n "a" and b = N.add_pi n "b" and c = N.add_pi n "c" in
  let m = N.maj n a b c in
  N.add_po n "y" m;
  let p = Network.Metrics.probabilities n in
  Alcotest.(check (float 1e-9)) "p(maj) = 1/2" 0.5 p.(S.node m)

(* ----- simulation ----- *)

let test_simulate_exact_vs_random () =
  let n = Helpers.random_network ~seed:5 ~inputs:10 ~gates:80 ~outputs:5 in
  Alcotest.(check bool) "network equivalent to itself" true
    (Network.Simulate.equivalent ~seed:3 n n);
  let n2 = Helpers.random_network ~seed:6 ~inputs:10 ~gates:80 ~outputs:5 in
  Alcotest.(check bool) "different seeds differ" false
    (Network.Simulate.equivalent ~seed:4 n n2)

let test_simulate_stim () =
  let n = N.create () in
  let a = N.add_pi n "a" and b = N.add_pi n "b" in
  N.add_po n "y" (N.xor_ n a b);
  let out = Network.Simulate.run n (function "a" -> 0xF0L | _ -> 0xCCL) in
  Alcotest.(check int64) "bitwise xor" (Int64.of_int 0x3C)
    (List.assoc "y" out)

let prop_maj_gate_semantics =
  Helpers.qtest ~count:100 "qcheck: network gates match truth tables"
    (Helpers.gen_term ~vars:[ "a"; "b"; "c"; "d" ] ~depth:4)
    (fun t ->
      let net = Helpers.network_of_terms ~vars:[ "a"; "b"; "c"; "d" ] [ t ] in
      Helpers.net_matches_fn net (fun env ->
          [ ("y0", Mig.Algebra.eval t env) ]))

let () =
  Alcotest.run "network"
    [
      ( "signal",
        [ Alcotest.test_case "packing" `Quick test_signal ] );
      ( "builders",
        [
          Alcotest.test_case "constant folding" `Quick test_folding;
          Alcotest.test_case "structural hashing" `Quick test_strash;
          Alcotest.test_case "n-ary trees" `Quick test_nary;
        ] );
      ( "transform",
        [
          Alcotest.test_case "cleanup" `Quick test_cleanup;
          Alcotest.test_case "flatten to AOIG" `Quick test_flatten_aoig;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "depth" `Quick test_depth;
          Alcotest.test_case "probabilities/activity" `Quick test_probabilities;
          Alcotest.test_case "majority probability" `Quick test_maj_probability;
        ] );
      ( "simulate",
        [
          Alcotest.test_case "equivalence checks" `Quick test_simulate_exact_vs_random;
          Alcotest.test_case "bit-parallel stimulus" `Quick test_simulate_stim;
          prop_maj_gate_semantics;
        ] );
    ]
