module A = Mig.Algebra

let vars = [ "x"; "y"; "z"; "u"; "v" ]
let gen = Helpers.gen_term ~vars ~depth:4

(* Apply a rule everywhere it matches in a term, recursively, and
   check that every successful application preserves the function. *)
let rule_sound rule t =
  let ok = ref true in
  let rec go t =
    (match rule t with
    | Some t' -> if not (A.equivalent t t') then ok := false
    | None -> ());
    match t with
    | A.Const _ | A.Var _ -> ()
    | A.Not t -> go t
    | A.Maj (a, b, c) ->
        go a;
        go b;
        go c
  in
  go t;
  !ok

let prop name rule = Helpers.qtest ~count:300 name gen (rule_sound rule)

let prop_commute =
  Helpers.qtest ~count:300 "qcheck: Ω.C sound"
    QCheck2.Gen.(triple gen (int_bound 2) (int_bound 2))
    (fun (t, i, j) ->
      match A.commute i j t with
      | Some t' -> A.equivalent t t'
      | None -> true)

let prop_substitution =
  Helpers.qtest ~count:200 "qcheck: Ψ.S sound"
    QCheck2.Gen.(
      triple gen (int_bound (List.length vars - 1)) (int_bound (List.length vars - 1)))
    (fun (t, vi, ui) ->
      let v = A.Var (List.nth vars vi) and u = A.Var (List.nth vars ui) in
      if vi = ui then true
      else A.equivalent t (A.substitution ~v ~u t))

let prop_simplify =
  Helpers.qtest ~count:400 "qcheck: simplify sound and no bigger" gen
    (fun t -> A.equivalent t (A.simplify t) && A.size (A.simplify t) <= A.size t)

let prop_replace_self =
  Helpers.qtest ~count:200 "qcheck: replace x by x is identity" gen (fun t ->
      A.replace t ~old_:(A.Var "x") ~by:(A.Var "x") = t
      || A.equivalent t (A.replace t ~old_:(A.Var "x") ~by:(A.Var "x")))

let prop_eval_tt_agree =
  Helpers.qtest ~count:200 "qcheck: eval agrees with truth table" gen
    (fun t ->
      let vs, tt = A.to_truthtable t in
      let n = List.length vs in
      let ok = ref true in
      for m = 0 to (1 lsl n) - 1 do
        let env v =
          let rec idx i = function
            | [] -> assert false
            | x :: _ when x = v -> i
            | _ :: r -> idx (i + 1) r
          in
          m land (1 lsl idx 0 vs) <> 0
        in
        if A.eval t env <> Truthtable.get_bit tt m then ok := false
      done;
      !ok)

(* specific written-form checks, matching eq. (1) and (2) *)

let x = A.Var "x"
let y = A.Var "y"
let z = A.Var "z"
let u = A.Var "u"
let v = A.Var "v"

let term = Alcotest.testable A.pp (fun a b -> a = b)

let test_majority_rule () =
  Alcotest.(check (option term)) "M(x,x,z) = x" (Some x)
    (A.majority (A.Maj (x, x, z)));
  Alcotest.(check (option term)) "M(x,x',z) = z" (Some z)
    (A.majority (A.Maj (x, A.Not x, z)));
  Alcotest.(check (option term)) "no match" None (A.majority (A.Maj (x, y, z)))

let test_associativity_rule () =
  let t = A.Maj (x, u, A.Maj (y, u, z)) in
  Alcotest.(check (option term)) "Ω.A written form"
    (Some (A.Maj (z, u, A.Maj (y, u, x))))
    (A.associativity t);
  Alcotest.(check (option term)) "Ω.A needs shared operand" None
    (A.associativity (A.Maj (x, u, A.Maj (y, v, z))))

let test_distributivity_rules () =
  let t = A.Maj (x, y, A.Maj (u, v, z)) in
  let d = A.Maj (A.Maj (x, y, u), A.Maj (x, y, v), z) in
  Alcotest.(check (option term)) "Ω.D L->R" (Some d) (A.distributivity_lr t);
  Alcotest.(check (option term)) "Ω.D R->L" (Some t) (A.distributivity_rl d);
  Alcotest.(check bool) "roundtrip equivalence" true (A.equivalent t d)

let test_inverter_propagation_rule () =
  let t = A.Not (A.Maj (x, y, z)) in
  Alcotest.(check (option term)) "Ω.I"
    (Some (A.Maj (A.Not x, A.Not y, A.Not z)))
    (A.inverter_propagation t)

let test_relevance_rule () =
  (* M(x, y, M(x, u, v)) -> x replaced by y' in the third operand *)
  let t = A.Maj (x, y, A.Maj (x, u, v)) in
  Alcotest.(check (option term)) "Ψ.R"
    (Some (A.Maj (x, y, A.Maj (A.Not y, u, v))))
    (A.relevance t);
  (* complemented occurrences are substituted with the complement *)
  let t2 = A.Maj (x, y, A.Maj (A.Not x, u, v)) in
  Alcotest.(check (option term)) "Ψ.R complement occurrence"
    (Some (A.Maj (x, y, A.Maj (y, u, v))))
    (A.relevance t2)

let test_compl_assoc_rule () =
  let t = A.Maj (x, u, A.Maj (y, A.Not u, z)) in
  Alcotest.(check (option term)) "Ψ.C"
    (Some (A.Maj (x, u, A.Maj (y, x, z))))
    (A.complementary_associativity t)

let test_substitution_shape () =
  let k = A.Maj (x, y, z) in
  let s = A.substitution ~v:x ~u:y k in
  Alcotest.(check bool) "Ψ.S equivalent" true (A.equivalent k s);
  Alcotest.(check bool) "Ψ.S inflates" true (A.size s > A.size k)

let test_interop () =
  let g = Mig.Graph.create () in
  let pa = Mig.Graph.add_pi g "a" and pb = Mig.Graph.add_pi g "b" in
  let pc = Mig.Graph.add_pi g "c" in
  let s = Mig.Graph.maj g pa (Network.Signal.not_ pb) pc in
  let t = A.of_signal g s in
  Alcotest.(check bool) "term matches MIG cone" true
    (A.equivalent t (A.Maj (A.Var "a", A.Not (A.Var "b"), A.Var "c")));
  (* build back *)
  let pi = function "a" -> pa | "b" -> pb | _ -> pc in
  let s2 = A.build g pi t in
  Alcotest.(check bool) "rebuild shares the node" true
    (Network.Signal.equal s s2)

let () =
  Alcotest.run "algebra"
    [
      ( "written forms",
        [
          Alcotest.test_case "Ω.M" `Quick test_majority_rule;
          Alcotest.test_case "Ω.A" `Quick test_associativity_rule;
          Alcotest.test_case "Ω.D both directions" `Quick test_distributivity_rules;
          Alcotest.test_case "Ω.I" `Quick test_inverter_propagation_rule;
          Alcotest.test_case "Ψ.R" `Quick test_relevance_rule;
          Alcotest.test_case "Ψ.C" `Quick test_compl_assoc_rule;
          Alcotest.test_case "Ψ.S" `Quick test_substitution_shape;
        ] );
      ( "soundness (Theorems 3.4/3.7)",
        [
          prop_commute;
          prop "qcheck: Ω.M sound" A.majority;
          prop "qcheck: Ω.A sound" A.associativity;
          prop "qcheck: Ω.D L->R sound" A.distributivity_lr;
          prop "qcheck: Ω.D R->L sound" A.distributivity_rl;
          prop "qcheck: Ω.I sound" A.inverter_propagation;
          prop "qcheck: Ψ.R sound" A.relevance;
          prop "qcheck: Ψ.C sound" A.complementary_associativity;
          prop_substitution;
          prop_simplify;
          prop_replace_self;
          prop_eval_tt_agree;
        ] );
      ( "interop",
        [ Alcotest.test_case "term <-> MIG" `Quick test_interop ] );
    ]
