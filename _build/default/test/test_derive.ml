module A = Mig.Algebra
module D = Mig.Derive

let x = A.Var "x"
let y = A.Var "y"
let z = A.Var "z"
let w = A.Var "w"

let term = Alcotest.testable A.pp (fun a b -> a = b)

let test_fig2a_script () =
  (* h = M(x, M(x,z',w), M(x,y,z)) derives to x, as in Fig. 2(a) *)
  let h =
    A.Maj (x, A.Maj (x, A.Not z, w), A.Maj (x, y, z))
  in
  let script =
    [
      (* bring the shared x into Ω.A position *)
      { D.path = []; rule = D.Commute (0, 2) };
      { D.path = []; rule = D.Commute (1, 2) };
      { D.path = [ 2 ]; rule = D.Commute (0, 1) };
      { D.path = []; rule = D.Associativity };
      (* Ψ.R inside the third operand *)
      { D.path = [ 2 ]; rule = D.Relevance };
      { D.path = []; rule = D.Simplify };
    ]
  in
  let result = D.run h script in
  Alcotest.check term "derives to x" x result

let test_fig2b_script () =
  let aoig_xor a b =
    A.Maj
      ( A.Maj (a, A.Not b, A.Const false),
        A.Maj (A.Not a, b, A.Const false),
        A.Const true )
  in
  let f = aoig_xor (aoig_xor x y) z in
  let result =
    D.run f
      [
        { D.path = []; rule = D.Substitution ("x", "y") };
        { D.path = []; rule = D.Simplify };
      ]
  in
  Alcotest.(check int) "three nodes" 3 (A.size result);
  Alcotest.(check int) "two levels" 2 (A.depth result);
  Alcotest.(check bool) "still the parity" true (A.equivalent f result)

let test_step_mismatch () =
  let t = A.Maj (x, y, z) in
  Alcotest.(check bool) "Ω.A cannot apply to flat majority" true
    (try
       ignore (D.apply t { D.path = []; rule = D.Associativity });
       false
     with D.Step_failed _ -> true)

let test_bad_path () =
  let t = A.Maj (x, y, z) in
  Alcotest.(check bool) "path into a leaf fails" true
    (try
       ignore (D.apply t { D.path = [ 0; 1 ]; rule = D.Majority });
       false
     with D.Step_failed _ -> true)

let test_distributivity_roundtrip_script () =
  let t = A.Maj (x, y, A.Maj (w, z, A.Maj (x, y, z))) in
  let there = D.apply t { D.path = []; rule = D.Distributivity_lr } in
  let back = D.apply there { D.path = []; rule = D.Distributivity_rl } in
  Alcotest.check term "L->R then R->L is identity" t back

let prop_random_scripts =
  (* random steps on random terms either fail cleanly or preserve the
     function — Derive.apply re-checks equivalence itself, so this
     exercises the checker on many shapes *)
  Helpers.qtest ~count:300 "qcheck: every applicable step is sound"
    QCheck2.Gen.(
      pair
        (Helpers.gen_term ~vars:[ "x"; "y"; "z"; "u" ] ~depth:3)
        (int_bound 8))
    (fun (t, pick) ->
      let rule =
        match pick with
        | 0 -> D.Commute (0, 2)
        | 1 -> D.Majority
        | 2 -> D.Associativity
        | 3 -> D.Distributivity_lr
        | 4 -> D.Distributivity_rl
        | 5 -> D.Inverter
        | 6 -> D.Relevance
        | 7 -> D.Complementary_associativity
        | _ -> D.Substitution ("x", "y")
      in
      match D.apply t { D.path = []; rule } with
      | t' -> A.equivalent t t'
      | exception D.Step_failed (_, msg) ->
          (* a rule mismatch is fine; an unsoundness report is not *)
          not (String.length msg > 0 && msg.[0] = 's'))

let () =
  Alcotest.run "derive"
    [
      ( "scripts",
        [
          Alcotest.test_case "Fig. 2(a) derivation" `Quick test_fig2a_script;
          Alcotest.test_case "Fig. 2(b) derivation" `Quick test_fig2b_script;
          Alcotest.test_case "distributivity roundtrip" `Quick
            test_distributivity_roundtrip_script;
        ] );
      ( "checking",
        [
          Alcotest.test_case "rule mismatch reported" `Quick test_step_mismatch;
          Alcotest.test_case "bad path reported" `Quick test_bad_path;
          prop_random_scripts;
        ] );
    ]
