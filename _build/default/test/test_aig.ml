module A = Aig.Graph
module N = Network.Graph
module S = Network.Signal


let equiv_nets a b seed = Network.Simulate.equivalent ~seed a b

let test_builders () =
  let g = A.create () in
  let a = A.add_pi g "a" and b = A.add_pi g "b" in
  Alcotest.(check bool) "a&a = a" true (S.equal a (A.and_ g a a));
  Alcotest.(check bool) "a&a' = 0" true
    (S.equal (A.const0 g) (A.and_ g a (S.not_ a)));
  Alcotest.(check bool) "a&1 = a" true (S.equal a (A.and_ g a (A.const1 g)));
  Alcotest.(check bool) "a&0 = 0" true
    (S.equal (A.const0 g) (A.and_ g a (A.const0 g)));
  let x = A.and_ g a b and y = A.and_ g b a in
  Alcotest.(check bool) "strash commutative" true (S.equal x y);
  Alcotest.(check int) "xor costs three ands" 4
    (let _ = A.xor_ g a b in
     A.size g);
  Alcotest.(check (option (module struct
                            type t = S.t

                            let equal = S.equal
                            let pp = S.pp
                          end)))
    "find_and hit" (Some x) (A.find_and g a b)

let test_levels () =
  let g = A.create () in
  let a = A.add_pi g "a" and b = A.add_pi g "b" and c = A.add_pi g "c" in
  let ab = A.and_ g a b in
  let abc = A.and_ g ab c in
  A.add_po g "y" abc;
  Alcotest.(check int) "depth 2" 2 (A.depth g);
  let lv = A.levels g in
  Alcotest.(check int) "pi level 0" 0 lv.(S.node a);
  Alcotest.(check int) "inner level" 1 lv.(S.node ab)

let test_cleanup_aig () =
  let g = A.create () in
  let a = A.add_pi g "a" and b = A.add_pi g "b" in
  let keep = A.and_ g a b in
  let _dead = A.and_ g a (S.not_ b) in
  A.add_po g "y" keep;
  let g' = A.cleanup g in
  Alcotest.(check int) "dead removed" 1 (A.size g');
  Alcotest.(check int) "pis kept" 2 (A.num_pis g')

let test_convert_roundtrip () =
  let net = Helpers.random_network ~seed:42 ~inputs:9 ~gates:70 ~outputs:4 in
  let g = Aig.Convert.of_network net in
  let back = Aig.Convert.to_network g in
  Alcotest.(check bool) "roundtrip equivalence" true (equiv_nets net back 7)

let test_balance () =
  (* a long AND chain balances to logarithmic depth *)
  let g = A.create () in
  let xs = List.init 16 (fun i -> A.add_pi g (Printf.sprintf "x%d" i)) in
  let chain = List.fold_left (fun acc x -> A.and_ g acc x) (List.hd xs) (List.tl xs) in
  A.add_po g "y" chain;
  Alcotest.(check int) "chain depth" 15 (A.depth g);
  let b = Aig.Balance.run g in
  Alcotest.(check int) "balanced depth" 4 (A.depth b);
  Alcotest.(check bool) "function preserved" true
    (equiv_nets (Aig.Convert.to_network g) (Aig.Convert.to_network b) 8)

let test_balance_never_deepens () =
  List.iter
    (fun seed ->
      let net = Helpers.random_network ~seed ~inputs:10 ~gates:90 ~outputs:5 in
      let g = Aig.Convert.of_network net in
      let b = Aig.Balance.run g in
      Alcotest.(check bool)
        (Printf.sprintf "balance no deeper (seed %d)" seed)
        true
        (A.depth b <= A.depth g);
      Alcotest.(check bool)
        (Printf.sprintf "balance equivalent (seed %d)" seed)
        true
        (equiv_nets (Aig.Convert.to_network g) (Aig.Convert.to_network b) seed))
    [ 1; 2; 3; 4 ]

let test_cut_enumeration () =
  let g = A.create () in
  let a = A.add_pi g "a" and b = A.add_pi g "b" and c = A.add_pi g "c" in
  let ab = A.and_ g a b in
  let abc = A.and_ g ab c in
  A.add_po g "y" abc;
  let cuts = Aig.Cut.enumerate ~k:4 ~max_cuts:8 g in
  let root = S.node abc in
  (* the cut {a,b,c} must exist and its function is the conjunction *)
  let full_cut =
    List.find_opt
      (fun cut -> Array.to_list cut = List.sort compare [ S.node a; S.node b; S.node c ])
      cuts.(root)
  in
  (match full_cut with
  | None -> Alcotest.fail "missing 3-leaf cut"
  | Some cut ->
      let tt = Aig.Cut.cut_function g root cut in
      Alcotest.check Helpers.check_tt "cut function = and3"
        (Truthtable.and_
           (Truthtable.and_ (Truthtable.var 3 0) (Truthtable.var 3 1))
           (Truthtable.var 3 2))
        tt);
  (* MFFC of the root over that cut frees both AND nodes *)
  let fanout = A.fanout_counts g in
  Alcotest.(check int) "mffc size" 2
    (Aig.Cut.mffc_size g ~fanout root [| S.node a; S.node b; S.node c |])

let test_rewrite_refactor_preserve () =
  List.iter
    (fun seed ->
      let net = Helpers.random_network ~seed ~inputs:10 ~gates:120 ~outputs:6 in
      let g = Aig.Convert.of_network net in
      let r = Aig.Rewrite.run g in
      Alcotest.(check bool)
        (Printf.sprintf "rewrite no bigger (seed %d)" seed)
        true (A.size r <= A.size g);
      Alcotest.(check bool)
        (Printf.sprintf "rewrite equivalent (seed %d)" seed)
        true
        (equiv_nets (Aig.Convert.to_network g) (Aig.Convert.to_network r) seed);
      let f = Aig.Refactor.run g in
      Alcotest.(check bool)
        (Printf.sprintf "refactor no bigger (seed %d)" seed)
        true (A.size f <= A.size g);
      Alcotest.(check bool)
        (Printf.sprintf "refactor equivalent (seed %d)" seed)
        true
        (equiv_nets (Aig.Convert.to_network g) (Aig.Convert.to_network f) seed))
    [ 11; 22; 33 ]

let test_resyn_adder () =
  let net = N.flatten_aoig (Benchmarks.Arith.ripple_adder 8) in
  let g = Aig.Convert.of_network net in
  let opt = Aig.Resyn.run g in
  Alcotest.(check bool) "resyn equivalent" true
    (equiv_nets net (Aig.Convert.to_network opt) 55);
  Alcotest.(check bool) "resyn no bigger" true (A.size opt <= A.size g);
  Alcotest.(check bool) "resyn no deeper" true (A.depth opt <= A.depth g)

let test_size_only_script () =
  let net = Benchmarks.Control.pla_like ~seed:3 ~inputs:10 ~outputs:6 ~cubes:60 ~max_lits:6 in
  let flat = N.flatten_aoig net in
  let g = Aig.Convert.of_network flat in
  let opt = Aig.Resyn.size_only g in
  Alcotest.(check bool) "size_only equivalent" true
    (equiv_nets flat (Aig.Convert.to_network opt) 77);
  Alcotest.(check bool) "size_only smaller" true (A.size opt <= A.size g)

let () =
  Alcotest.run "aig"
    [
      ( "graph",
        [
          Alcotest.test_case "builders and strash" `Quick test_builders;
          Alcotest.test_case "levels" `Quick test_levels;
          Alcotest.test_case "cleanup" `Quick test_cleanup_aig;
          Alcotest.test_case "network roundtrip" `Quick test_convert_roundtrip;
        ] );
      ( "balance",
        [
          Alcotest.test_case "chain balancing" `Quick test_balance;
          Alcotest.test_case "monotone and sound" `Quick test_balance_never_deepens;
        ] );
      ( "cuts",
        [ Alcotest.test_case "enumeration and mffc" `Quick test_cut_enumeration ] );
      ( "optimization",
        [
          Alcotest.test_case "rewrite/refactor sound" `Quick
            test_rewrite_refactor_preserve;
          Alcotest.test_case "resyn on adder" `Quick test_resyn_adder;
          Alcotest.test_case "area script" `Quick test_size_only_script;
        ] );
    ]
