module T = Truthtable
module C = Sop.Cube
module Cov = Sop.Cover
module F = Sop.Factor

let tt = Helpers.check_tt

(* ----- cubes ----- *)

let test_cube_basic () =
  let c = C.of_literals [ (0, true); (2, false) ] in
  Alcotest.(check int) "size" 2 (C.size c);
  Alcotest.(check bool) "has 0" true (C.has_var c 0);
  Alcotest.(check bool) "has 1" false (C.has_var c 1);
  Alcotest.(check (option bool)) "pol 0" (Some true) (C.polarity c 0);
  Alcotest.(check (option bool)) "pol 2" (Some false) (C.polarity c 2);
  Alcotest.(check (option bool)) "pol absent" None (C.polarity c 1);
  let lits = C.literals c in
  Alcotest.(check int) "two literals" 2 (List.length lits)

let test_cube_conflict () =
  Alcotest.check_raises "polarity conflict"
    (Invalid_argument "Cube.add_literal: polarity conflict") (fun () ->
      ignore (C.of_literals [ (1, true); (1, false) ]))

let test_cube_containment () =
  let big = C.of_literals [ (0, true) ] in
  let small = C.of_literals [ (0, true); (1, false) ] in
  Alcotest.(check bool) "x contains xy'" true (C.contains big small);
  Alcotest.(check bool) "xy' not contains x" false (C.contains small big);
  Alcotest.(check bool) "universal contains all" true (C.contains C.universal small);
  let other = C.of_literals [ (0, false); (1, false) ] in
  Alcotest.(check bool) "wrong polarity" false (C.contains big other)

let test_cube_eval_tt () =
  let c = C.of_literals [ (0, true); (1, false) ] in
  Alcotest.(check bool) "eval sat" true (C.eval c (fun v -> v = 0));
  Alcotest.(check bool) "eval unsat" false (C.eval c (fun _ -> true));
  Alcotest.check tt "tt of x0 x1'" (T.and_ (T.var 2 0) (T.not_ (T.var 2 1)))
    (C.to_truthtable 2 c)

let test_cube_drop () =
  let c = C.of_literals [ (0, true); (1, false) ] in
  let d = C.drop_var c 1 in
  Alcotest.(check int) "size after drop" 1 (C.size d);
  Alcotest.(check bool) "var gone" false (C.has_var d 1)

(* ----- covers ----- *)

let test_cover_metrics () =
  let c =
    Cov.of_cubes 3
      [ C.of_literals [ (0, true) ]; C.of_literals [ (1, true); (2, false) ] ]
  in
  Alcotest.(check int) "cubes" 2 (Cov.num_cubes c);
  Alcotest.(check int) "literals" 3 (Cov.num_literals c)

let test_cover_scc () =
  let c =
    Cov.of_cubes 2
      [ C.of_literals [ (0, true) ]; C.of_literals [ (0, true); (1, true) ] ]
  in
  let r = Cov.single_cube_containment c in
  Alcotest.(check int) "contained cube removed" 1 (Cov.num_cubes r);
  Alcotest.check tt "function preserved" (Cov.to_truthtable c)
    (Cov.to_truthtable r)

let test_cover_irredundant () =
  (* x + x'y + y : the middle cube is redundant *)
  let c =
    Cov.of_cubes 2
      [
        C.of_literals [ (0, true) ];
        C.of_literals [ (0, false); (1, true) ];
        C.of_literals [ (1, true) ];
      ]
  in
  let r = Cov.irredundant c in
  Alcotest.(check bool) "fewer cubes" true (Cov.num_cubes r < 3);
  Alcotest.check tt "function preserved" (Cov.to_truthtable c)
    (Cov.to_truthtable r)

(* ----- isop ----- *)

let prop_isop_exact =
  Helpers.qtest ~count:300 "qcheck: ISOP computes the function"
    (Helpers.gen_tt 6)
    (fun f -> T.equal f (Cov.to_truthtable (Sop.Isop.compute f)))

let prop_isop_interval =
  Helpers.qtest ~count:200 "qcheck: ISOP respects don't-care intervals"
    QCheck2.Gen.(pair (Helpers.gen_tt 5) (Helpers.gen_tt 5))
    (fun (a, b) ->
      let lower = T.and_ a b and upper = T.or_ a b in
      let g = Cov.to_truthtable (Sop.Isop.compute_interval ~lower ~upper) in
      T.is_const0 (T.and_ lower (T.not_ g))
      && T.is_const0 (T.and_ g (T.not_ upper)))

let prop_isop_irredundant =
  Helpers.qtest ~count:100 "qcheck: ISOP cover is irredundant"
    (Helpers.gen_tt 5)
    (fun f ->
      let cov = Sop.Isop.compute f in
      Cov.num_cubes (Cov.irredundant cov) = Cov.num_cubes cov)

let test_isop_corner () =
  Alcotest.(check int) "const0 has no cubes" 0
    (Cov.num_cubes (Sop.Isop.compute (T.const0 4)));
  let one = Sop.Isop.compute (T.const1 4) in
  Alcotest.(check int) "const1 is one cube" 1 (Cov.num_cubes one);
  Alcotest.(check int) "tautology cube empty" 0 (Cov.num_literals one);
  let maj = Sop.Isop.compute (T.of_hex 3 "e8") in
  Alcotest.(check int) "maj has 3 cubes" 3 (Cov.num_cubes maj)

(* ----- factoring ----- *)

let prop_factor_exact =
  Helpers.qtest ~count:300 "qcheck: factoring preserves the function"
    (Helpers.gen_tt 6)
    (fun f ->
      let form = F.factor (Sop.Isop.compute f) in
      T.equal f (F.to_truthtable 6 form))

let prop_factor_no_worse =
  Helpers.qtest ~count:200 "qcheck: factored literals <= SOP literals"
    (Helpers.gen_tt 5)
    (fun f ->
      let cov = Sop.Isop.compute f in
      F.literal_count (F.factor cov) <= max 1 (Cov.num_literals cov))

let test_factor_shares () =
  (* xy + xz factors into x(y+z): 3 literals instead of 4 *)
  let cov =
    Cov.of_cubes 3
      [
        C.of_literals [ (0, true); (1, true) ];
        C.of_literals [ (0, true); (2, true) ];
      ]
  in
  let form = F.factor cov in
  Alcotest.(check int) "3 literals" 3 (F.literal_count form);
  Alcotest.check tt "function kept" (Cov.to_truthtable cov)
    (F.to_truthtable 3 form)

(* ----- minimize (espresso-lite) ----- *)

let prop_minimize_exact =
  Helpers.qtest ~count:200 "qcheck: minimize preserves the function"
    (Helpers.gen_tt 6)
    (fun f ->
      let cov = Sop.Isop.compute f in
      T.equal f (Cov.to_truthtable (Sop.Minimize.minimize cov)))

let prop_minimize_no_worse =
  Helpers.qtest ~count:200 "qcheck: minimize never adds cubes or literals"
    (Helpers.gen_tt 5)
    (fun f ->
      let cov = Sop.Isop.compute f in
      let m = Sop.Minimize.minimize cov in
      Cov.num_cubes m <= Cov.num_cubes cov
      && Cov.num_literals m <= Cov.num_literals cov)

let test_minimize_shrinks_redundant () =
  (* xy + xy' + x'y = x + y : three 2-literal cubes to two 1-literal *)
  let cov =
    Cov.of_cubes 2
      [
        C.of_literals [ (0, true); (1, true) ];
        C.of_literals [ (0, true); (1, false) ];
        C.of_literals [ (0, false); (1, true) ];
      ]
  in
  let m = Sop.Minimize.minimize cov in
  Alcotest.(check int) "two cubes" 2 (Cov.num_cubes m);
  Alcotest.(check int) "two literals" 2 (Cov.num_literals m);
  Alcotest.check tt "function kept" (Cov.to_truthtable cov)
    (Cov.to_truthtable m)

let test_expand_cube () =
  (* f = x: the cube xy expands to x against the off-set x' *)
  let offset = T.not_ (T.var 2 0) in
  let c = C.of_literals [ (0, true); (1, true) ] in
  let e = Sop.Minimize.expand_cube ~offset c in
  Alcotest.(check int) "one literal left" 1 (C.size e);
  Alcotest.(check (option bool)) "kept x" (Some true) (C.polarity e 0)

let test_factor_depth_eval () =
  let form = F.And [ F.Lit (0, true); F.Or [ F.Lit (1, true); F.Lit (2, false) ] ] in
  Alcotest.(check int) "depth" 2 (F.depth form);
  Alcotest.(check bool) "eval" true (F.eval form (fun v -> v = 0 || v = 1));
  Alcotest.(check bool) "eval f" false (F.eval form (fun v -> v = 1))

let () =
  Alcotest.run "sop"
    [
      ( "cube",
        [
          Alcotest.test_case "basics" `Quick test_cube_basic;
          Alcotest.test_case "conflict" `Quick test_cube_conflict;
          Alcotest.test_case "containment" `Quick test_cube_containment;
          Alcotest.test_case "eval and tt" `Quick test_cube_eval_tt;
          Alcotest.test_case "drop_var" `Quick test_cube_drop;
        ] );
      ( "cover",
        [
          Alcotest.test_case "metrics" `Quick test_cover_metrics;
          Alcotest.test_case "single-cube containment" `Quick test_cover_scc;
          Alcotest.test_case "irredundant" `Quick test_cover_irredundant;
        ] );
      ( "isop",
        [
          Alcotest.test_case "corner cases" `Quick test_isop_corner;
          prop_isop_exact;
          prop_isop_interval;
          prop_isop_irredundant;
        ] );
      ( "minimize",
        [
          Alcotest.test_case "expand" `Quick test_expand_cube;
          Alcotest.test_case "redundant cover" `Quick
            test_minimize_shrinks_redundant;
          prop_minimize_exact;
          prop_minimize_no_worse;
        ] );
      ( "factor",
        [
          Alcotest.test_case "sharing" `Quick test_factor_shares;
          Alcotest.test_case "depth and eval" `Quick test_factor_depth_eval;
          prop_factor_exact;
          prop_factor_no_worse;
        ] );
    ]
