(* Cross-tool fuzzing: the same random function is pushed through all
   optimizers and representations, then every result is compared
   pairwise — by exact BDD equivalence where feasible.  This is the
   strongest end-to-end soundness net in the suite. *)

module N = Network.Graph

let exact_equal net_a net_b =
  (* build both in one manager with the same order, compare roots *)
  let man = Bdd.Robdd.manager ~node_limit:1_000_000 () in
  let order = Bdd.Builder.dfs_order net_a in
  let name_of = Array.map (N.pi_name net_a) order in
  let order_b =
    let tbl = Hashtbl.create 32 in
    List.iter (fun id -> Hashtbl.replace tbl (N.pi_name net_b id) id) (N.pis net_b);
    Array.map (fun n -> Hashtbl.find tbl n) name_of
  in
  let ra = Bdd.Builder.of_network man ~order net_a in
  let rb = Bdd.Builder.of_network man ~order:order_b net_b in
  let sort = List.sort compare in
  List.for_all2 (fun (n1, b1) (n2, b2) -> n1 = n2 && b1 = b2) (sort ra) (sort rb)

let crosscheck seed =
  let net =
    N.flatten_aoig
      (Helpers.random_network ~seed ~inputs:10 ~gates:110 ~outputs:5)
  in
  let results = ref [ ("input", net) ] in
  let add name n = results := (name, n) :: !results in
  (* MIG flows *)
  let m = Mig.Convert.of_network net in
  add "mig-depth" (Mig.Convert.to_network (Mig.Opt_depth.run ~effort:2 m));
  add "mig-size" (Mig.Convert.to_network (Mig.Opt_size.run m));
  add "mig-activity" (Mig.Convert.to_network (Mig.Opt_activity.run ~effort:1 m));
  (* AIG flows *)
  let a = Aig.Convert.of_network net in
  add "aig-resyn" (Aig.Convert.to_network (Aig.Resyn.run ~effort:1 a));
  add "aig-area" (Aig.Convert.to_network (Aig.Resyn.size_only ~effort:1 a));
  (* BDS *)
  (match Bdd.Decompose.run ~seed net with
  | Some d -> add "bds" d
  | None -> ());
  (* round-trips through the file formats *)
  add "blif"
    (Logic_io.Blif.read (Format.asprintf "%a" (fun f n -> Logic_io.Blif.write f n) net));
  add "verilog"
    (Logic_io.Verilog.read
       (Format.asprintf "%a" (fun f n -> Logic_io.Verilog.write f n) net));
  (* pairwise against the input *)
  List.iter
    (fun (name, n) ->
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: %s == input (exact)" seed name)
        true (exact_equal net n))
    !results

let () =
  Alcotest.run "crosscheck"
    [
      ( "all optimizers, exact BDD equivalence",
        List.map
          (fun seed ->
            Alcotest.test_case (Printf.sprintf "seed %d" seed) `Quick
              (fun () -> crosscheck seed))
          [ 1001; 2002; 3003; 4004; 5005; 6006 ] );
    ]
