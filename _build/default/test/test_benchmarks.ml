module N = Network.Graph

(* drive a network with integer operand values and read integer buses *)
let run_ints net (ins : (string * int) list) =
  let stim name =
    (* bus-style names: prefix + index; also plain names *)
    if List.mem_assoc name ins then
      if List.assoc name ins <> 0 then -1L else 0L
    else
      let matches (prefix, value) =
        let pl = String.length prefix in
        if
          String.length name > pl
          && String.sub name 0 pl = prefix
          && String.for_all
               (fun c -> c >= '0' && c <= '9')
               (String.sub name pl (String.length name - pl))
        then
          let bit = int_of_string (String.sub name pl (String.length name - pl)) in
          Some (if value land (1 lsl bit) <> 0 then -1L else 0L)
        else None
      in
      match List.find_map matches ins with
      | Some v -> v
      | None -> 0L
  in
  let outs = Network.Simulate.run net stim in
  fun prefix width ->
    match List.assoc_opt prefix outs with
    | Some bits when width = 1 -> Int64.to_int (Int64.logand bits 1L)
    | _ ->
        let v = ref 0 in
        for bit = 0 to width - 1 do
          let name = Printf.sprintf "%s%d" prefix bit in
          match List.assoc_opt name outs with
          | Some bits ->
              if Int64.logand bits 1L <> 0L then v := !v lor (1 lsl bit)
          | None -> ()
        done;
        !v

let test_ripple_adder () =
  let net = Benchmarks.Arith.ripple_adder 8 in
  List.iter
    (fun (a, b, cin) ->
      let read = run_ints net [ ("a", a); ("b", b); ("cin", cin) ] in
      let sum = read "s" 8 and cout = read "cout" 1 in
      let expect = a + b + cin in
      Alcotest.(check int)
        (Printf.sprintf "%d+%d+%d sum" a b cin)
        (expect land 0xff) sum;
      Alcotest.(check int) "carry" (expect lsr 8) cout)
    [ (0, 0, 0); (1, 1, 0); (255, 1, 0); (200, 100, 1); (127, 128, 1) ]

let test_cla_matches_ripple () =
  let cla = Benchmarks.Arith.cla_adder 32 in
  let rca = Benchmarks.Arith.ripple_adder 32 in
  Alcotest.(check bool) "cla == ripple (random sim)" true
    (Network.Simulate.equivalent_random ~seed:0x61 cla rca)

let test_multiplier () =
  let net = Benchmarks.Arith.array_multiplier 8 in
  List.iter
    (fun (a, b) ->
      let read = run_ints net [ ("a", a); ("b", b) ] in
      Alcotest.(check int) (Printf.sprintf "%d*%d" a b) (a * b) (read "p" 16))
    [ (0, 0); (1, 1); (3, 5); (255, 255); (100, 200); (17, 19) ]

let test_counter () =
  let net = Benchmarks.Arith.counter_next 8 in
  (* enable=1: increments *)
  let read = run_ints net [ ("q", 41); ("enable", 1) ] in
  Alcotest.(check int) "increment" 42 (read "n" 8);
  (* load wins *)
  let read = run_ints net [ ("q", 41); ("d", 7); ("load", 1); ("enable", 1) ] in
  Alcotest.(check int) "load" 7 (read "n" 8);
  (* clear wins over everything *)
  let read =
    run_ints net [ ("q", 41); ("d", 7); ("load", 1); ("enable", 1); ("clear", 1) ]
  in
  Alcotest.(check int) "clear" 0 (read "n" 8);
  (* wrap-around *)
  let read = run_ints net [ ("q", 255); ("enable", 1) ] in
  Alcotest.(check int) "wrap" 0 (read "n" 8)

let test_minmax () =
  let net = Benchmarks.Arith.minmax ~width:8 ~words:4 in
  let read =
    run_ints net
      [ ("w0_", 12); ("w1_", 200); ("w2_", 1); ("w3_", 77) ]
  in
  Alcotest.(check int) "min" 1 (read "min" 8);
  Alcotest.(check int) "max" 200 (read "max" 8)

let test_dalu_ops () =
  let net = Benchmarks.Arith.dedicated_alu () in
  let a = 1000 and b = 234 in
  let fold v = (v land 0xffff) lxor ((v lsr 16) land 0xffff) in
  (* op1=0, op0=0 selects XOR *)
  let read = run_ints net [ ("a", a); ("b", b) ] in
  Alcotest.(check int) "dalu xor" (fold (a lxor b)) (read "r" 16);
  (* op1=1, op0=1 selects ADD *)
  let read = run_ints net [ ("a", a); ("b", b); ("op", 3) ] in
  Alcotest.(check int) "dalu add" (fold (a + b)) (read "r" 16);
  (* op1=1, op0=0 selects AND *)
  let read = run_ints net [ ("a", a); ("b", b); ("op", 2) ] in
  Alcotest.(check int) "dalu and" (fold (a land b)) (read "r" 16)

let test_ecc_corrects () =
  (* The corrector flips the data bit selected by the syndrome: with
     received data equal to sent data and an injected check-bit
     difference, outputs must equal inputs when enable=0. *)
  let net = Benchmarks.Ecc.single_error_corrector ~data:32 in
  let read = run_ints net [ ("d", 0xDEAD); ("en", 0) ] in
  Alcotest.(check int) "disabled corrector passes data" 0xDEAD (read "o" 32);
  (* single-bit error injection: flipping data bit k with the matching
     syndrome restores the original word *)
  let k = 5 in
  let sent = 0xDEAD in
  let received = sent lxor (1 lsl k) in
  (* check bits of received word differ from stored ones in exactly
     the bits of (k+1); we drive the check inputs with the syndrome of
     the *sent* word by computing parity over covered positions *)
  let parity j w =
    let p = ref 0 in
    for i = 0 to 31 do
      if (i + 1) land (1 lsl j) <> 0 && w land (1 lsl i) <> 0 then p := !p lxor 1
    done;
    !p
  in
  let checks = List.init 8 (fun j -> (Printf.sprintf "c%d" j, parity j sent)) in
  let read = run_ints net ((("d", received) :: ("en", 1) :: checks)) in
  Alcotest.(check int) "single-bit error corrected" sent (read "o" 32)

let test_determinism () =
  let a = Benchmarks.Control.random_logic ~seed:123 ~inputs:20 ~outputs:8 ~gates:200 () in
  let b = Benchmarks.Control.random_logic ~seed:123 ~inputs:20 ~outputs:8 ~gates:200 () in
  Alcotest.(check int) "same size" (N.size a) (N.size b);
  Alcotest.(check bool) "same function" true
    (Network.Simulate.equivalent ~seed:1 a b);
  let c = Benchmarks.Control.random_logic ~seed:124 ~inputs:20 ~outputs:8 ~gates:200 () in
  Alcotest.(check bool) "different seed differs" false
    (Network.Simulate.equivalent ~seed:2 a c)

let test_suite_io_counts () =
  List.iter
    (fun e ->
      let net = e.Benchmarks.Suite.build () in
      let pi, po = e.Benchmarks.Suite.paper_io in
      Alcotest.(check int) (e.Benchmarks.Suite.name ^ " PIs") pi (N.num_pis net);
      Alcotest.(check int) (e.Benchmarks.Suite.name ^ " POs") po (N.num_pos net))
    Benchmarks.Suite.all

let test_compress_scales () =
  let small = Benchmarks.Compress.create ~window:8 in
  let big = Benchmarks.Compress.create ~window:16 in
  Alcotest.(check bool) "bigger window, more logic" true
    (N.size big > N.size small);
  Alcotest.(check bool) "estimate within 3x" true
    (let est = Benchmarks.Compress.approx_nodes ~window:16 in
     let real = N.size big in
     real < 3 * est && est < 3 * real)

let test_pla_like_two_level () =
  let net =
    Benchmarks.Control.pla_like ~seed:9 ~inputs:8 ~outputs:4 ~cubes:20 ~max_lits:4
  in
  Alcotest.(check int) "io" 8 (N.num_pis net);
  (* depth of a two-level PLA with balanced trees stays small *)
  Alcotest.(check bool) "shallow" true (Network.Metrics.depth net <= 8)

let () =
  Alcotest.run "benchmarks"
    [
      ( "arithmetic",
        [
          Alcotest.test_case "ripple adder adds" `Quick test_ripple_adder;
          Alcotest.test_case "cla == ripple" `Quick test_cla_matches_ripple;
          Alcotest.test_case "multiplier multiplies" `Quick test_multiplier;
          Alcotest.test_case "counter increments" `Quick test_counter;
          Alcotest.test_case "minmax" `Quick test_minmax;
          Alcotest.test_case "dedicated ALU" `Quick test_dalu_ops;
        ] );
      ( "ecc",
        [ Alcotest.test_case "single-error correction" `Quick test_ecc_corrects ] );
      ( "generators",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "paper I/O counts" `Quick test_suite_io_counts;
          Alcotest.test_case "compression scaling" `Quick test_compress_scales;
          Alcotest.test_case "pla shape" `Quick test_pla_like_two_level;
        ] );
    ]
