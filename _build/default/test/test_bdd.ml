module B = Bdd.Robdd
module N = Network.Graph
module T = Truthtable

let tt = Helpers.check_tt

let test_constants () =
  let m = B.manager () in
  Alcotest.(check bool) "zero const" true (B.is_const B.zero);
  Alcotest.(check bool) "one const" true (B.is_const B.one);
  Alcotest.(check int) "not zero = one" B.one (B.not_ m B.zero);
  Alcotest.(check int) "nothing allocated" 0 (B.num_allocated m)

let test_var_structure () =
  let m = B.manager () in
  let x = B.var m 3 in
  Alcotest.(check int) "topvar" 3 (B.topvar m x);
  Alcotest.(check int) "low" B.zero (B.low m x);
  Alcotest.(check int) "high" B.one (B.high m x);
  Alcotest.(check int) "var is hash-consed" x (B.var m 3)

let test_canonicity () =
  let m = B.manager () in
  let x = B.var m 0 and y = B.var m 1 and z = B.var m 2 in
  (* same function built two ways yields the same node *)
  let f1 = B.or_ m (B.and_ m x y) (B.and_ m x z) in
  let f2 = B.and_ m x (B.or_ m y z) in
  Alcotest.(check int) "x(y+z) canonical" f1 f2;
  let g1 = B.xor_ m x (B.xor_ m y z) in
  let g2 = B.xor_ m (B.xor_ m x y) z in
  Alcotest.(check int) "xor associativity canonical" g1 g2

let test_ite_terminal_cases () =
  let m = B.manager () in
  let x = B.var m 0 and y = B.var m 1 in
  Alcotest.(check int) "ite(1,g,h)=g" x (B.ite m B.one x y);
  Alcotest.(check int) "ite(0,g,h)=h" y (B.ite m B.zero x y);
  Alcotest.(check int) "ite(f,g,g)=g" y (B.ite m x y y);
  Alcotest.(check int) "ite(f,1,0)=f" x (B.ite m x B.one B.zero)

let test_to_truthtable () =
  let m = B.manager () in
  let x = B.var m 0 and y = B.var m 1 and z = B.var m 2 in
  Alcotest.check tt "maj tt" (T.of_hex 3 "e8")
    (B.to_truthtable m ~nvars:3 (B.maj m x y z))

let prop_ops_match_tt =
  Helpers.qtest ~count:200 "qcheck: BDD ops agree with truth tables"
    QCheck2.Gen.(pair (Helpers.gen_term ~vars:["a";"b";"c";"d";"e"] ~depth:4) unit)
    (fun (term, ()) ->
      let m = B.manager () in
      let vars = [ "a"; "b"; "c"; "d"; "e" ] in
      let index v =
        let rec go i = function
          | [] -> assert false
          | x :: _ when x = v -> i
          | _ :: r -> go (i + 1) r
        in
        go 0 vars
      in
      let rec build t =
        match t with
        | Mig.Algebra.Const false -> B.zero
        | Mig.Algebra.Const true -> B.one
        | Mig.Algebra.Var v -> B.var m (index v)
        | Mig.Algebra.Not t -> B.not_ m (build t)
        | Mig.Algebra.Maj (a, b, c) -> B.maj m (build a) (build b) (build c)
      in
      let bdd = build term in
      let direct =
        T.of_bits 5 (fun mt ->
            Mig.Algebra.eval term (fun v -> mt land (1 lsl index v) <> 0))
      in
      T.equal direct (B.to_truthtable m ~nvars:5 bdd))

let prop_canonicity_random =
  Helpers.qtest ~count:150 "qcheck: equivalent terms share BDD nodes"
    QCheck2.Gen.(
      pair
        (Helpers.gen_term ~vars:["a";"b";"c"] ~depth:3)
        (Helpers.gen_term ~vars:["a";"b";"c"] ~depth:3))
    (fun (t1, t2) ->
      let m = B.manager () in
      let index = function "a" -> 0 | "b" -> 1 | _ -> 2 in
      let rec build t =
        match t with
        | Mig.Algebra.Const false -> B.zero
        | Mig.Algebra.Const true -> B.one
        | Mig.Algebra.Var v -> B.var m (index v)
        | Mig.Algebra.Not t -> B.not_ m (build t)
        | Mig.Algebra.Maj (a, b, c) -> B.maj m (build a) (build b) (build c)
      in
      let b1 = build t1 and b2 = build t2 in
      Mig.Algebra.equivalent t1 t2 = (b1 = b2)
      || (* equivalent requires shared variable universe; recheck *)
      let u1 = B.to_truthtable m ~nvars:3 b1 in
      let u2 = B.to_truthtable m ~nvars:3 b2 in
      T.equal u1 u2 = (b1 = b2))

let test_support_size () =
  let m = B.manager () in
  let x = B.var m 0 and z = B.var m 2 in
  let f = B.xor_ m x z in
  Alcotest.(check (list int)) "support" [ 0; 2 ] (B.support m f);
  Alcotest.(check int) "xor of 2 vars has 3 nodes" 3 (B.size m [ f ])

let test_count_minterms () =
  let m = B.manager () in
  let x = B.var m 0 and y = B.var m 1 and z = B.var m 2 in
  Alcotest.(check (float 1e-9)) "maj has 4 minterms" 4.0
    (B.count_minterms m ~nvars:3 (B.maj m x y z))

let test_node_limit () =
  let m = B.manager ~node_limit:4 () in
  Alcotest.check_raises "limit raises" B.Node_limit_exceeded (fun () ->
      let xs = List.init 6 (B.var m) in
      ignore (List.fold_left (B.xor_ m) B.zero xs))

let test_builder_and_eval () =
  let net = Benchmarks.Arith.ripple_adder 4 in
  let m = B.manager () in
  let order = Bdd.Builder.dfs_order net in
  let outs = Bdd.Builder.of_network m ~order net in
  (* evaluate 2 + 3 + 1 = 6 through the BDDs *)
  let env =
    let assignments =
      [ ("a1", true); ("b0", true); ("b1", true); ("cin", true) ]
    in
    fun level ->
      let pi = order.(level) in
      let name = N.pi_name net pi in
      List.mem_assoc name assignments
  in
  let value name = B.eval m (List.assoc name outs) env in
  Alcotest.(check bool) "s0 of 2+3+1" false (value "s0");
  Alcotest.(check bool) "s1 of 2+3+1" true (value "s1");
  Alcotest.(check bool) "s2 of 2+3+1" true (value "s2");
  Alcotest.(check bool) "s3" false (value "s3");
  Alcotest.(check bool) "cout" false (value "cout")

let test_decompose_equivalence () =
  List.iter
    (fun seed ->
      let net = Helpers.random_network ~seed ~inputs:12 ~gates:120 ~outputs:6 in
      match Bdd.Decompose.run ~seed net with
      | Some d ->
          Alcotest.(check bool)
            (Printf.sprintf "decompose equivalent (seed %d)" seed)
            true
            (Network.Simulate.equivalent ~seed:(seed + 1) net d);
          Alcotest.(check int)
            (Printf.sprintf "interface preserved (seed %d)" seed)
            (N.num_pis net) (N.num_pis d)
      | None -> Alcotest.fail "unexpected node-limit blowup")
    [ 101; 202; 303 ]

let test_decompose_blowup_returns_none () =
  let net = N.flatten_aoig (Benchmarks.Arith.array_multiplier 12) in
  match Bdd.Decompose.run ~node_limit:5_000 ~seed:1 net with
  | None -> ()
  | Some _ -> Alcotest.fail "multiplier should exceed a 5k node budget"

let test_window_refine () =
  (* a deliberately interleaving-hostile order on an adder improves *)
  let net = Benchmarks.Arith.ripple_adder 8 in
  let module NG = Network.Graph in
  (* worst-case static order: all of a, then all of b *)
  let bad = Array.of_list (NG.pis net) in
  let cost order =
    let man = B.manager ~node_limit:2_000_000 () in
    let roots = Bdd.Builder.of_network man ~order net in
    B.size man (List.map snd roots)
  in
  let refined = Bdd.Reorder.window_refine ~max_sweeps:2 net bad in
  Alcotest.(check bool) "refinement does not hurt" true
    (cost refined <= cost bad);
  (* still a permutation *)
  Alcotest.(check (list int)) "permutation"
    (List.sort compare (NG.pis net))
    (List.sort compare (Array.to_list refined))

let test_reorder_picks_feasible () =
  let net = Benchmarks.Arith.ripple_adder 8 in
  let order = Bdd.Reorder.best_order ~seed:5 net in
  Alcotest.(check int) "order covers all PIs" (N.num_pis net)
    (Array.length order);
  (* a valid permutation of PI ids *)
  let sorted = List.sort compare (Array.to_list order) in
  Alcotest.(check (list int)) "permutation" (N.pis net) sorted

let () =
  Alcotest.run "bdd"
    [
      ( "core",
        [
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "variables" `Quick test_var_structure;
          Alcotest.test_case "canonicity" `Quick test_canonicity;
          Alcotest.test_case "ite terminal cases" `Quick test_ite_terminal_cases;
          Alcotest.test_case "to_truthtable" `Quick test_to_truthtable;
          Alcotest.test_case "support and size" `Quick test_support_size;
          Alcotest.test_case "count_minterms" `Quick test_count_minterms;
          Alcotest.test_case "node limit" `Quick test_node_limit;
          prop_ops_match_tt;
          prop_canonicity_random;
        ] );
      ( "builder",
        [ Alcotest.test_case "network to BDD eval" `Quick test_builder_and_eval ] );
      ( "decompose",
        [
          Alcotest.test_case "equivalence" `Quick test_decompose_equivalence;
          Alcotest.test_case "blow-up returns N.A." `Quick
            test_decompose_blowup_returns_none;
        ] );
      ( "reorder",
        [
          Alcotest.test_case "valid orders" `Quick test_reorder_picks_feasible;
          Alcotest.test_case "window refinement" `Quick test_window_refine;
        ] );
    ]
