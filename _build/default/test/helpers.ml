(* Shared generators and utilities for the test-suite. *)

module N = Network.Graph
module S = Network.Signal

let check_tt = Alcotest.testable Truthtable.pp Truthtable.equal

(* ----- random truth tables ----- *)

let gen_tt nvars =
  QCheck2.Gen.(
    map
      (fun bits -> Truthtable.of_bits nvars (fun m -> List.nth bits m))
      (list_repeat (1 lsl nvars) bool))

(* ----- random algebra terms ----- *)

let gen_term ~vars ~depth =
  let open QCheck2.Gen in
  let var = map (fun i -> Mig.Algebra.Var (List.nth vars i)) (int_bound (List.length vars - 1)) in
  fix
    (fun self d ->
      if d = 0 then
        oneof [ var; map (fun b -> Mig.Algebra.Const b) bool ]
      else
        frequency
          [
            (2, var);
            (1, map (fun t -> Mig.Algebra.Not t) (self (d - 1)));
            ( 4,
              map3
                (fun a b c -> Mig.Algebra.Maj (a, b, c))
                (self (d - 1)) (self (d - 1)) (self (d - 1)) );
          ])
    depth

(* ----- random networks ----- *)

(* A deterministic random network over [inputs] PIs. *)
let random_network ~seed ~inputs ~gates ~outputs =
  Benchmarks.Control.random_logic ~seed ~inputs ~outputs ~gates ()

(* Build a network from a generated term list: one PO per term. *)
let network_of_terms ~vars terms =
  let net = N.create () in
  let pis = List.map (fun v -> (v, N.add_pi net v)) vars in
  let rec build t =
    match t with
    | Mig.Algebra.Const false -> N.const0 net
    | Mig.Algebra.Const true -> N.const1 net
    | Mig.Algebra.Var v -> List.assoc v pis
    | Mig.Algebra.Not t -> S.not_ (build t)
    | Mig.Algebra.Maj (a, b, c) -> N.maj net (build a) (build b) (build c)
  in
  List.iteri (fun i t -> N.add_po net (Printf.sprintf "y%d" i) (build t)) terms;
  net

(* Equivalence of a network against a reference boolean function list *)
let net_matches_fn net fn =
  (* fn : (string -> bool) -> (string * bool) list *)
  let rng = Lsutil.Rng.create 0x7357 in
  let ok = ref true in
  for _ = 1 to 200 do
    if !ok then begin
      let tbl = Hashtbl.create 16 in
      let env name =
        match Hashtbl.find_opt tbl name with
        | Some v -> v
        | None ->
            let v = Lsutil.Rng.bool rng in
            Hashtbl.add tbl name v;
            v
      in
      let expect = fn env in
      let stim name = if env name then -1L else 0L in
      let got = Network.Simulate.run net stim in
      List.iter
        (fun (name, v) ->
          match List.assoc_opt name got with
          | Some bits -> if Int64.logand bits 1L <> 0L <> v then ok := false
          | None -> ok := false)
        expect
    end
  done;
  !ok

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)
