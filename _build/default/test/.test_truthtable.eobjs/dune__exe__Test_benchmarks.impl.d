test/test_benchmarks.ml: Alcotest Benchmarks Int64 List Network Printf String
