test/test_truthtable.mli:
