test/test_io.ml: Alcotest Benchmarks Format List Logic_io Network String Truthtable
