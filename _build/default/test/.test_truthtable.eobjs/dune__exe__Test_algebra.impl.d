test/test_algebra.ml: Alcotest Helpers List Mig Network QCheck2 Truthtable
