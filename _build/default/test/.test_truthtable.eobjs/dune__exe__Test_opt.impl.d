test/test_opt.ml: Alcotest Benchmarks Flow Helpers List Mig Network Printf QCheck2
