test/test_tech.ml: Alcotest Array Benchmarks Flow Helpers List Network Tech Truthtable
