test/test_util.ml: Alcotest List Lsutil
