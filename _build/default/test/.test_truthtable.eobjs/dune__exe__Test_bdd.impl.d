test/test_bdd.ml: Alcotest Array Bdd Benchmarks Helpers List Mig Network Printf QCheck2 Truthtable
