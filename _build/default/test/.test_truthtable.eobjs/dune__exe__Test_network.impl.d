test/test_network.ml: Alcotest Array Helpers Int64 List Mig Network Printf Truthtable
