test/test_edge_cases.ml: Alcotest Flow Format Logic_io Mig Network Tech
