test/test_aig.ml: Aig Alcotest Array Benchmarks Helpers List Network Printf Truthtable
