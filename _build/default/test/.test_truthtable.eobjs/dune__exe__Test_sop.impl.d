test/test_sop.ml: Alcotest Helpers List QCheck2 Sop Truthtable
