test/test_crosscheck.ml: Aig Alcotest Array Bdd Format Hashtbl Helpers List Logic_io Mig Network Printf
