test/test_derive.ml: Alcotest Helpers Mig QCheck2 String
