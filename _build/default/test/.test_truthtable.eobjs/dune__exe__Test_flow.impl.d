test/test_flow.ml: Aig Alcotest Benchmarks Flow List Mig Network
