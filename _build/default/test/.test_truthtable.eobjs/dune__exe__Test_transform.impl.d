test/test_transform.ml: Alcotest Helpers Mig Network Printf QCheck2
