test/test_truthtable.ml: Alcotest Helpers List Printf QCheck2 Truthtable
