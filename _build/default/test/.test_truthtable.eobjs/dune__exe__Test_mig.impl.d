test/test_mig.ml: Aig Alcotest Array Helpers List Mig Network QCheck2 Truthtable
