test/helpers.ml: Alcotest Benchmarks Hashtbl Int64 List Lsutil Mig Network Printf QCheck2 QCheck_alcotest Truthtable
