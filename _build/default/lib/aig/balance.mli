(** Delay-oriented AIG balancing (the [balance] step of the resyn
    script).

    Maximal AND-trees are collected by descending through regular
    (non-complemented) edges and rebuilt bottom-up, always combining
    the two shallowest operands first (Huffman order), which minimizes
    the depth of each tree. *)

val run : Graph.t -> Graph.t
