lib/aig/rewrite.mli: Cut Graph Sop
