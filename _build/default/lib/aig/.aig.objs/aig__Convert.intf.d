lib/aig/convert.mli: Graph Network
