lib/aig/balance.ml: Array Graph Hashtbl List Network Option
