lib/aig/refactor.mli: Cut Graph
