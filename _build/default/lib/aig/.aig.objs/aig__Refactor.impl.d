lib/aig/refactor.ml: Array Cut Graph Hashtbl Int List Network Rewrite Set Sop
