lib/aig/graph.mli: Format Network
