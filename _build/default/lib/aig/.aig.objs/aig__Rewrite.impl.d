lib/aig/rewrite.ml: Array Cut Graph Hashtbl List Network Option Sop
