lib/aig/convert.ml: Array Graph List Network
