lib/aig/cut.mli: Graph Truthtable
