lib/aig/resyn.ml: Balance Refactor Rewrite
