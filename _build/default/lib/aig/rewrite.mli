(** DAG-aware cut rewriting (the [rewrite] step of the resyn script).

    Every node's k-feasible cuts are resynthesized through ISOP +
    algebraic factoring; a node is marked for replacement when the
    factored implementation is estimated cheaper than the logic it
    frees (its cut-limited MFFC).  A demand-driven rebuild then
    applies all accepted replacements at once, and the result is kept
    only if it is actually smaller. *)

type candidate = {
  root : int;
  leaves : Cut.t;
  form : Sop.Factor.form;  (** literals index into [leaves] *)
}

val form_cost : Sop.Factor.form -> int
(** 2-input gate count of a factored form, ignoring sharing. *)

val rebuild : Graph.t -> (int -> candidate option) -> Graph.t
(** [rebuild g plan] copies [g], substituting each node for which
    [plan] returns a candidate by the candidate's factored form built
    over its (rebuilt) leaves.  Unreferenced logic is swept. *)

val run : ?k:int -> ?max_cuts:int -> Graph.t -> Graph.t
(** One rewriting pass; never returns a larger graph. *)
