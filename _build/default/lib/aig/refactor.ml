module G = Graph
module S = Network.Signal
module F = Sop.Factor

let collect_cone g ~fanout ~max_leaves root =
  (* Greedy expansion: keep a leaf set, repeatedly pull in the leaf
     whose expansion grows the set least, preferring single-fanout AND
     leaves (their logic is exclusive to this cone). *)
  let module IS = Set.Make (Int) in
  let expandable id = G.is_and g id in
  let fanins id = [ S.node (G.fanin0 g id); S.node (G.fanin1 g id) ] in
  let leaves = ref (IS.of_list (List.filter (fun i -> i <> 0) (fanins root))) in
  let continue_ = ref true in
  while !continue_ do
    let candidates =
      IS.elements !leaves
      |> List.filter expandable
      |> List.map (fun id ->
             let after =
               IS.union (IS.remove id !leaves)
                 (IS.of_list (List.filter (fun i -> i <> 0) (fanins id)))
             in
             (id, after))
      |> List.filter (fun (_, after) -> IS.cardinal after <= max_leaves)
    in
    (* best = prefers single-fanout leaves, then smallest growth *)
    let score (id, after) =
      ((if fanout.(id) = 1 then 0 else 1), IS.cardinal after)
    in
    match List.sort (fun a b -> compare (score a) (score b)) candidates with
    | [] -> continue_ := false
    | (_, after) :: _ -> leaves := after
  done;
  Array.of_list (IS.elements !leaves)

let run ?(max_leaves = 10) g =
  let fanout = G.fanout_counts g in
  let plan_tbl = Hashtbl.create 256 in
  for id = 0 to G.num_nodes g - 1 do
    if G.is_and g id then begin
      let cut = collect_cone g ~fanout ~max_leaves id in
      if Array.length cut >= 2 && Array.length cut <= max_leaves then begin
        let tt = Cut.cut_function g id cut in
        let form = F.factor (Sop.Isop.compute tt) in
        let cost = Rewrite.form_cost form in
        let freed = Cut.mffc_size g ~fanout id cut in
        if freed > cost then
          Hashtbl.replace plan_tbl id
            { Rewrite.root = id; leaves = cut; form }
      end
    end
  done;
  let result = Rewrite.rebuild g (Hashtbl.find_opt plan_tbl) in
  if G.size result <= G.size g then result else G.cleanup g
