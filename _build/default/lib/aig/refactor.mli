(** Refactoring (the [refactor] step of the resyn script).

    Collects a larger reconvergence-driven cone per node (up to
    [max_leaves] leaves, preferring to absorb single-fanout fanins),
    collapses it to a truth table and resynthesizes it with ISOP +
    factoring; accepted when the factored form is estimated cheaper
    than the cone's MFFC. *)

val collect_cone : Graph.t -> fanout:int array -> max_leaves:int -> int -> Cut.t
(** The cone's leaf set for a node. *)

val run : ?max_leaves:int -> Graph.t -> Graph.t
(** One refactoring pass; never returns a larger graph. *)
