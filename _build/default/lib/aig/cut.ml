module G = Graph
module S = Network.Signal

type t = int array

(* Merge two sorted duplicate-free arrays into one. *)
let merge_sorted a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (la + lb) 0 in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  let push v =
    out.(!k) <- v;
    incr k
  in
  while !i < la && !j < lb do
    if a.(!i) < b.(!j) then (push a.(!i); incr i)
    else if a.(!i) > b.(!j) then (push b.(!j); incr j)
    else (push a.(!i); incr i; incr j)
  done;
  while !i < la do push a.(!i); incr i done;
  while !j < lb do push b.(!j); incr j done;
  Array.sub out 0 !k

let enumerate ~k ~max_cuts g =
  let n = G.num_nodes g in
  let cuts : t list array = Array.make n [] in
  for i = 0 to n - 1 do
    if i = 0 then cuts.(i) <- [ [||] ]
    else if G.is_pi g i then cuts.(i) <- [ [| i |] ]
    else begin
      let a = S.node (G.fanin0 g i) and b = S.node (G.fanin1 g i) in
      let merged = ref [] in
      List.iter
        (fun ca ->
          List.iter
            (fun cb ->
              let m = merge_sorted ca cb in
              if Array.length m <= k then merged := m :: !merged)
            cuts.(b))
        cuts.(a);
      (* dedup, prefer small cuts, keep the trivial cut *)
      let dedup =
        List.sort_uniq compare !merged
        |> List.sort (fun x y -> compare (Array.length x) (Array.length y))
      in
      let rec take n = function
        | [] -> []
        | _ when n = 0 -> []
        | x :: rest -> x :: take (n - 1) rest
      in
      cuts.(i) <- [| i |] :: take (max_cuts - 1) dedup
    end
  done;
  cuts

let cut_function g root cut =
  let module T = Truthtable in
  let nv = Array.length cut in
  let memo = Hashtbl.create 64 in
  Array.iteri (fun idx leaf -> Hashtbl.replace memo leaf (T.var nv idx)) cut;
  let rec go id =
    match Hashtbl.find_opt memo id with
    | Some tt -> tt
    | None ->
        if id = 0 then T.const0 nv
        else begin
          assert (G.is_and g id);
          let value s =
            let tt = go (S.node s) in
            if S.is_complement s then T.not_ tt else tt
          in
          let tt = T.and_ (value (G.fanin0 g id)) (value (G.fanin1 g id)) in
          Hashtbl.replace memo id tt;
          tt
        end
  in
  go root

let cone g root cut =
  let in_cut = Hashtbl.create 8 in
  Array.iter (fun l -> Hashtbl.replace in_cut l ()) cut;
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let rec go id =
    if (not (Hashtbl.mem in_cut id)) && (not (Hashtbl.mem seen id)) && G.is_and g id
    then begin
      Hashtbl.replace seen id ();
      acc := id :: !acc;
      go (S.node (G.fanin0 g id));
      go (S.node (G.fanin1 g id))
    end
  in
  go root;
  !acc

let mffc_size g ~fanout root cut =
  let nodes = cone g root cut in
  (* process in descending id order (reverse topological) *)
  let nodes = List.sort (fun a b -> compare b a) nodes in
  let mffc = Hashtbl.create 16 in
  let refs_from_mffc = Hashtbl.create 16 in
  let bump id =
    Hashtbl.replace refs_from_mffc id
      (1 + Option.value ~default:0 (Hashtbl.find_opt refs_from_mffc id))
  in
  List.iter
    (fun id ->
      let inside =
        id = root
        || Option.value ~default:0 (Hashtbl.find_opt refs_from_mffc id)
           = fanout.(id)
      in
      if inside then begin
        Hashtbl.replace mffc id ();
        bump (S.node (G.fanin0 g id));
        bump (S.node (G.fanin1 g id))
      end)
    nodes;
  Hashtbl.length mffc
