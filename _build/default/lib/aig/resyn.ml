let run ?(effort = 2) g =
  let step g =
    let g = Balance.run g in
    let g = Rewrite.run g in
    let g = Refactor.run g in
    let g = Balance.run g in
    let g = Rewrite.run g in
    Balance.run g
  in
  let rec go n g = if n = 0 then g else go (n - 1) (step g) in
  go effort g

let balance_only g = Balance.run g

let size_only ?(effort = 2) g =
  let step g = Refactor.run (Rewrite.run g) in
  let rec go n g = if n = 0 then g else go (n - 1) (step g) in
  go effort g
