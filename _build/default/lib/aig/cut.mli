(** K-feasible cut enumeration and cut utilities on AIGs. *)

type t = int array
(** A cut: sorted array of leaf node ids. *)

val enumerate : k:int -> max_cuts:int -> Graph.t -> t list array
(** [enumerate ~k ~max_cuts g] computes, per node, up to [max_cuts]
    cuts with at most [k] leaves each.  The trivial cut [{node}] is
    always included.  Constants never appear as leaves. *)

val cut_function : Graph.t -> int -> t -> Truthtable.t
(** [cut_function g root cut] is the function of [root] expressed over
    the cut leaves; leaf [cut.(i)] becomes truth-table variable [i].
    The cut must actually cut the cone of [root]. *)

val cone : Graph.t -> int -> t -> int list
(** AND nodes strictly between the leaves and the root, root
    included, in no particular order. *)

val mffc_size : Graph.t -> fanout:int array -> int -> t -> int
(** Number of cone nodes that would become dangling if [root] were
    replaced by fresh logic on the leaves: nodes all of whose fanouts
    stay inside the maximal fanout-free cone. *)
