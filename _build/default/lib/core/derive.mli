(** Checked derivations in the MIG algebra.

    Theorem 3.6 says any two equivalent MIGs are connected by a
    sequence of Ω transformations.  This module makes such sequences
    first-class: a {!step} names a rule and a position (a path into
    the term), {!apply} executes it, and {!run} executes a whole
    script, verifying after every step that the function is unchanged
    — a proof trace in the paper's own notation.  The Fig. 2(a)
    derivation in the benchmark harness is expressed this way. *)

type rule =
  | Commute of int * int  (** Ω.C: swap operands i and j *)
  | Majority  (** Ω.M left-to-right *)
  | Associativity  (** Ω.A *)
  | Distributivity_lr  (** Ω.D, left to right *)
  | Distributivity_rl  (** Ω.D, right to left *)
  | Inverter  (** Ω.I *)
  | Relevance  (** Ψ.R *)
  | Complementary_associativity  (** Ψ.C *)
  | Substitution of string * string  (** Ψ.S with variables (v, u) *)
  | Simplify  (** exhaustive Ω.M / inverter cancellation *)

type step = { path : int list; rule : rule }
(** [path] walks into majority operands: [[]] is the root, [[2]] the
    third operand, [[2; 0]] its first operand, and so on. *)

exception Step_failed of step * string
(** Raised when a rule does not match at its position, or — the case
    that must never happen — when a step changes the function. *)

val apply : Algebra.term -> step -> Algebra.term
(** Apply one step; checks equivalence of the result.
    @raise Step_failed *)

val run : ?trace:Format.formatter -> Algebra.term -> step list -> Algebra.term
(** Apply a script in order, optionally printing each intermediate
    term.  The result is guaranteed equivalent to the input. *)

val pp_rule : Format.formatter -> rule -> unit
