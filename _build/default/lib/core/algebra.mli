(** The MIG Boolean algebra (B, M, ', 0, 1) on symbolic terms (§III.B).

    This module is the paper's axiomatic system made executable: the
    five primitive rules Ω (eq. 1) and the three derived rules Ψ
    (eq. 2) as term rewrites.  Each function returns [None] when the
    term is not of the rule's shape; applications never change the
    represented Boolean function (Theorems 3.4–3.7).

    The rewrites match the written form of each axiom literally; use
    {!commute} to bring operands into position first, exactly as the
    paper's derivations do. *)

type term =
  | Const of bool
  | Var of string
  | Not of term
  | Maj of term * term * term

(** {1 Semantics} *)

val eval : term -> (string -> bool) -> bool
val vars : term -> string list
(** Free variables, each once, in first-occurrence order. *)

val to_truthtable : term -> string list * Truthtable.t
(** Truth table over [vars], variable [i] = [List.nth (vars t) i]. *)

val equivalent : term -> term -> bool
(** Semantic equality (truth tables over the union of variables). *)

val size : term -> int
(** Number of majority operators. *)

val depth : term -> int
(** Nesting depth of majority operators. *)

val simplify : term -> term
(** Normalize by applying Ω.M and inverter cancellation bottom-up. *)

val pp : Format.formatter -> term -> unit

(** {1 The primitive rules Ω (eq. 1)} *)

val commute : int -> int -> term -> term option
(** [commute i j t] swaps operands [i] and [j] (0-based) of a
    majority root: Ω.C. *)

val majority : term -> term option
(** Ω.M left-to-right: [M(x,x,z) = x] and [M(x,x',z) = z].
    Operands are compared structurally after inverter cancellation. *)

val associativity : term -> term option
(** Ω.A: [M(x,u,M(y,u,z)) -> M(z,u,M(y,u,x))].  The shared operand
    must be the second of both the outer and inner majority. *)

val distributivity_lr : term -> term option
(** Ω.D left-to-right:
    [M(x,y,M(u,v,z)) -> M(M(x,y,u),M(x,y,v),z)]. *)

val distributivity_rl : term -> term option
(** Ω.D right-to-left:
    [M(M(x,y,u),M(x,y,v),z) -> M(x,y,M(u,v,z))].  The first two
    operands of the two inner majorities must match structurally. *)

val inverter_propagation : term -> term option
(** Ω.I: [M'(x,y,z) -> M(x',y',z')]. *)

(** {1 The derived rules Ψ (eq. 2)} *)

val relevance : term -> term option
(** Ψ.R: [M(x,y,z) -> M(x,y,z_{x/y'})]: replaces every occurrence of
    the first operand inside the third by the complement of the
    second. *)

val complementary_associativity : term -> term option
(** Ψ.C: [M(x,u,M(y,u',z)) -> M(x,u,M(y,x,z))]. *)

val substitution : v:term -> u:term -> term -> term
(** Ψ.S: [k -> M(v, M(v',k_{v/u},u), M(v',k_{v/u'},u'))], the
    variable-replacement rule that temporarily inflates the
    representation. *)

val replace : term -> old_:term -> by:term -> term
(** [replace t ~old_ ~by] substitutes every structural occurrence
    (the [z_{x/y}] notation); complemented occurrences are replaced by
    the complement of [by]. *)

(** {1 MIG interop} *)

val of_signal : Graph.t -> Network.Signal.t -> term
(** Expand the cone of a signal into a term (PIs become variables). *)

val build : Graph.t -> (string -> Network.Signal.t) -> term -> Network.Signal.t
(** Build a term into an MIG; [pi] resolves variable names. *)
