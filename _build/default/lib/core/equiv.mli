(** Equivalence checking for MIGs.

    Used throughout the test-suite and the benchmark harness to
    assert that every optimization preserves the represented Boolean
    function (Theorem 3.6 guarantees the rules do; this verifies the
    implementation). *)

val to_network_equiv : seed:int -> Graph.t -> Network.Graph.t -> bool
(** MIG vs network: exact truth tables for small PI counts, random
    bit-parallel simulation otherwise. *)

val migs : seed:int -> Graph.t -> Graph.t -> bool
(** MIG vs MIG. *)

val by_bdd : ?node_limit:int -> Graph.t -> Graph.t -> bool
(** Exact check through a shared BDD manager; raises
    {!Bdd.Robdd.Node_limit_exceeded} on blow-up. *)
