(** K-feasible cuts on MIGs (used by the derived-identity rewriting
    pass of {!Transform}). *)

type t = int array
(** Sorted array of leaf node ids. *)

val enumerate : k:int -> max_cuts:int -> Graph.t -> t list array
(** Per-node cuts; the trivial cut is included; constants are never
    leaves. *)

val cut_function : Graph.t -> int -> t -> Truthtable.t
(** Function of [root] over the cut leaves (leaf [i] = variable [i]),
    padded to 3 variables when the cut is smaller. *)

val cone : Graph.t -> int -> t -> int list
(** Majority nodes strictly inside the cut (root included). *)

val mffc_size : Graph.t -> fanout:int array -> int -> t -> int
(** Number of cone nodes freed if the root were re-expressed directly
    on the leaves (maximal fanout-free cone w.r.t. the cut). *)
