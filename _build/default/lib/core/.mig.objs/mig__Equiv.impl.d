lib/core/equiv.ml: Array Bdd Convert Hashtbl List Network
