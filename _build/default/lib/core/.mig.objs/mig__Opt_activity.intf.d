lib/core/opt_activity.mli: Graph
