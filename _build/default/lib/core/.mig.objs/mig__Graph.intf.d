lib/core/graph.mli: Format Network
