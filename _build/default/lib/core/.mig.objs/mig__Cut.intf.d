lib/core/cut.mli: Graph Truthtable
