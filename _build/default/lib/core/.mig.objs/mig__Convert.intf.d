lib/core/convert.mli: Aig Graph Network
