lib/core/graph.ml: Array Format Hashtbl List Lsutil Network
