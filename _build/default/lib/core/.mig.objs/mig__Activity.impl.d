lib/core/activity.ml: Array Graph Network
