lib/core/equiv.mli: Graph Network
