lib/core/transform.mli: Graph
