lib/core/cut.ml: Array Graph Hashtbl List Network Option Truthtable
