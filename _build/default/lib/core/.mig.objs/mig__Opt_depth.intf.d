lib/core/opt_depth.mli: Graph
