lib/core/derive.mli: Algebra Format
