lib/core/opt_depth.ml: Graph Transform
