lib/core/algebra.ml: Array Format Graph Hashtbl List Network Truthtable
