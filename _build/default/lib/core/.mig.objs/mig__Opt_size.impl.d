lib/core/opt_size.ml: Graph Transform
