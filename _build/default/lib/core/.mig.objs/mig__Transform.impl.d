lib/core/transform.ml: Aig Array Cut Graph Hashtbl Int Lazy List Network Option Seq Set Sop Truthtable
