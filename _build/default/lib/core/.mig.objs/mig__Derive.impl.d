lib/core/derive.ml: Algebra Format List Option
