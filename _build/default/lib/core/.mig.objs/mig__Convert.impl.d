lib/core/convert.ml: Aig Array Graph List Network
