lib/core/activity.mli: Graph
