lib/core/opt_size.mli: Graph
