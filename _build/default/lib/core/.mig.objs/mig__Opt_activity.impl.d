lib/core/opt_activity.ml: Activity Graph Opt_size Transform
