lib/core/algebra.mli: Format Graph Network Truthtable
