module A = Algebra

type rule =
  | Commute of int * int
  | Majority
  | Associativity
  | Distributivity_lr
  | Distributivity_rl
  | Inverter
  | Relevance
  | Complementary_associativity
  | Substitution of string * string
  | Simplify

type step = { path : int list; rule : rule }

exception Step_failed of step * string

let pp_rule fmt = function
  | Commute (i, j) -> Format.fprintf fmt "Ω.C(%d,%d)" i j
  | Majority -> Format.pp_print_string fmt "Ω.M"
  | Associativity -> Format.pp_print_string fmt "Ω.A"
  | Distributivity_lr -> Format.pp_print_string fmt "Ω.D(L→R)"
  | Distributivity_rl -> Format.pp_print_string fmt "Ω.D(R→L)"
  | Inverter -> Format.pp_print_string fmt "Ω.I"
  | Relevance -> Format.pp_print_string fmt "Ψ.R"
  | Complementary_associativity -> Format.pp_print_string fmt "Ψ.C"
  | Substitution (v, u) -> Format.fprintf fmt "Ψ.S(%s/%s)" v u
  | Simplify -> Format.pp_print_string fmt "simplify"

let rule_fn = function
  | Commute (i, j) -> A.commute i j
  | Majority -> A.majority
  | Associativity -> A.associativity
  | Distributivity_lr -> A.distributivity_lr
  | Distributivity_rl -> A.distributivity_rl
  | Inverter -> A.inverter_propagation
  | Relevance -> A.relevance
  | Complementary_associativity -> A.complementary_associativity
  | Substitution (v, u) ->
      fun t -> Some (A.substitution ~v:(A.Var v) ~u:(A.Var u) t)
  | Simplify -> fun t -> Some (A.simplify t)

(* rewrite at a path, descending through Not transparently *)
let rec at_path path f t =
  match (path, t) with
  | [], _ -> f t
  | _, A.Not t' -> Option.map (fun r -> A.Not r) (at_path path f t')
  | i :: rest, A.Maj (a, b, c) -> (
      let sub x = at_path rest f x in
      match i with
      | 0 -> Option.map (fun a' -> A.Maj (a', b, c)) (sub a)
      | 1 -> Option.map (fun b' -> A.Maj (a, b', c)) (sub b)
      | 2 -> Option.map (fun c' -> A.Maj (a, b, c')) (sub c)
      | _ -> None)
  | _ -> None

let apply t step =
  match at_path step.path (rule_fn step.rule) t with
  | None ->
      raise
        (Step_failed
           (step, Format.asprintf "%a does not match at position" pp_rule step.rule))
  | Some t' ->
      if not (A.equivalent t t') then
        raise (Step_failed (step, "step changed the function (unsound)"));
      t'

let run ?trace t steps =
  List.fold_left
    (fun t step ->
      let t' = apply t step in
      (match trace with
      | Some fmt ->
          Format.fprintf fmt "  %-10s %a@."
            (Format.asprintf "%a" pp_rule step.rule)
            A.pp t'
      | None -> ());
      t')
    t steps
