(** Signal probabilities and switching activity of an MIG (§IV.C).

    Under the standard temporal-independence model, a node whose
    probability of being logic 1 is [p] has switching activity
    [p (1-p)] (the SW values of Fig. 2(d)); the activity of the MIG is the sum over its majority
    nodes.  Input probabilities default to 0.5 and can be set per PI
    name, as in the example of Fig. 2(d). *)

val probabilities : ?pi_prob:(string -> float) -> Graph.t -> float array
(** Per-node probability of evaluating to 1, assuming independent
    fanins. *)

val node_activity : float -> float
(** [node_activity p = p (1-p)]. *)

val total : ?pi_prob:(string -> float) -> Graph.t -> float
(** Total switching activity of the MIG. *)
