module G = Graph

let cost g = (G.size g, G.depth g)

let better a b = cost a < cost b

let run ?(effort = 2) g =
  let best = ref (G.cleanup g) in
  let cur = ref !best in
  for _cycle = 1 to effort do
    (* collapse AOIG patterns into majority nodes, then eliminate *)
    cur := Transform.rewrite_patterns ~mode:`Size !cur;
    if better !cur !best then best := !cur;
    (* eliminate *)
    cur := Transform.eliminate !cur;
    if better !cur !best then best := !cur;
    (* reshape *)
    cur := Transform.reshape_assoc !cur;
    cur := Transform.relevance !cur;
    cur := Transform.substitution ~on_critical:false !cur;
    (* eliminate *)
    cur := Transform.eliminate !cur;
    cur := Transform.eliminate !cur;
    if better !cur !best then best := !cur;
    (* Boolean size recovery *)
    cur := Transform.refactor !cur;
    cur := Transform.eliminate !cur;
    if better !cur !best then best := !cur
    else
      (* restart the next cycle from the best known point *)
      cur := !best
  done;
  !best
