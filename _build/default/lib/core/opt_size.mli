(** MIG size optimization — Algorithm 1 of the paper.

    Each effort cycle runs elimination (Ω.M left-to-right and Ω.D
    right-to-left), then reshaping (Ω.A/Ψ.C inside the push-up pass,
    relevance Ψ.R, substitution Ψ.S), then elimination again.  The
    best graph seen (fewest nodes, depth as tie-break) is returned, so
    the result is never worse than the input. *)

val run : ?effort:int -> Graph.t -> Graph.t
(** [run ?effort g] (default effort 2). *)
