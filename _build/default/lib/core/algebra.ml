type term =
  | Const of bool
  | Var of string
  | Not of term
  | Maj of term * term * term

let rec eval t env =
  match t with
  | Const b -> b
  | Var v -> env v
  | Not t -> not (eval t env)
  | Maj (a, b, c) ->
      let a = eval a env and b = eval b env and c = eval c env in
      (a && b) || (a && c) || (b && c)

let vars t =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let rec go = function
    | Const _ -> ()
    | Var v ->
        if not (Hashtbl.mem seen v) then begin
          Hashtbl.add seen v ();
          out := v :: !out
        end
    | Not t -> go t
    | Maj (a, b, c) ->
        go a;
        go b;
        go c
  in
  go t;
  List.rev !out

let to_truthtable t =
  let vs = vars t in
  let n = List.length vs in
  let index = Hashtbl.create 8 in
  List.iteri (fun i v -> Hashtbl.replace index v i) vs;
  let tt =
    Truthtable.of_bits n (fun m ->
        eval t (fun v -> m land (1 lsl Hashtbl.find index v) <> 0))
  in
  (vs, tt)

let equivalent a b =
  let vs =
    List.sort_uniq compare (vars a @ vars b)
  in
  let n = List.length vs in
  let index = Hashtbl.create 8 in
  List.iteri (fun i v -> Hashtbl.replace index v i) vs;
  let tt t =
    Truthtable.of_bits n (fun m ->
        eval t (fun v -> m land (1 lsl Hashtbl.find index v) <> 0))
  in
  Truthtable.equal (tt a) (tt b)

let rec size = function
  | Const _ | Var _ -> 0
  | Not t -> size t
  | Maj (a, b, c) -> 1 + size a + size b + size c

let rec depth = function
  | Const _ | Var _ -> 0
  | Not t -> depth t
  | Maj (a, b, c) -> 1 + max (depth a) (max (depth b) (depth c))

(* Structural equality modulo double negation and constant folding. *)
let rec strip = function
  | Not (Not t) -> strip t
  | Not (Const b) -> Const (not b)
  | Not t -> (
      match strip t with
      | Const b -> Const (not b)
      | t' when t' == t -> Not t
      | t' -> strip (Not t'))
  | t -> t

let rec norm t =
  match strip t with
  | Const b -> Const b
  | Var v -> Var v
  | Not t -> Not (norm t)
  | Maj (a, b, c) -> Maj (norm a, norm b, norm c)

let same a b = norm a = norm b
let complement_of a b = same (Not a) b || same a (Not b)

let not_ t = match strip t with Not t -> t | t -> Not t

let rec simplify t =
  match strip t with
  | Const b -> Const b
  | Var v -> Var v
  | Not t -> (
      match simplify t with
      | Const b -> Const (not b)
      | t -> not_ t)
  | Maj (a, b, c) -> (
      let a = simplify a and b = simplify b and c = simplify c in
      let fold x y z =
        if same x y then Some x
        else if complement_of x y then Some z
        else if same x (Const true) && same y (Const false) then Some z
        else None
      in
      match fold a b c with
      | Some t -> t
      | None -> (
          match fold a c b with
          | Some t -> t
          | None -> (
              match fold b c a with
              | Some t -> t
              | None -> Maj (a, b, c))))

let rec pp fmt = function
  | Const b -> Format.pp_print_string fmt (if b then "1" else "0")
  | Var v -> Format.pp_print_string fmt v
  | Not t -> Format.fprintf fmt "%a'" pp_atom t
  | Maj (a, b, c) -> Format.fprintf fmt "M(%a,%a,%a)" pp a pp b pp c

and pp_atom fmt t =
  match t with
  | Const _ | Var _ | Maj _ -> pp fmt t
  | Not _ -> Format.fprintf fmt "(%a)" pp t

(* ----- Ω ----- *)

let commute i j t =
  match t with
  | Maj (a, b, c) ->
      let arr = [| a; b; c |] in
      if i < 0 || i > 2 || j < 0 || j > 2 then None
      else begin
        let tmp = arr.(i) in
        arr.(i) <- arr.(j);
        arr.(j) <- tmp;
        Some (Maj (arr.(0), arr.(1), arr.(2)))
      end
  | _ -> None

let majority t =
  match t with
  | Maj (x, y, z) ->
      if same x y then Some x
      else if complement_of x y then Some z
      else None
  | _ -> None

let associativity t =
  match t with
  | Maj (x, u, Maj (y, u', z)) when same u u' ->
      Some (Maj (z, u, Maj (y, u', x)))
  | _ -> None

let distributivity_lr t =
  match t with
  | Maj (x, y, Maj (u, v, z)) ->
      Some (Maj (Maj (x, y, u), Maj (x, y, v), z))
  | _ -> None

let distributivity_rl t =
  match t with
  | Maj (Maj (x, y, u), Maj (x', y', v), z) when same x x' && same y y' ->
      Some (Maj (x, y, Maj (u, v, z)))
  | _ -> None

let inverter_propagation t =
  match strip t with
  | Not t -> (
      match strip t with
      | Maj (x, y, z) -> Some (Maj (not_ x, not_ y, not_ z))
      | _ -> None)
  | _ -> None

(* ----- Ψ ----- *)

let rec replace t ~old_ ~by =
  if same t old_ then by
  else if same t (Not old_) then not_ by
  else
    match t with
    | Const _ | Var _ -> t
    | Not t' -> not_ (replace t' ~old_ ~by)
    | Maj (a, b, c) ->
        Maj (replace a ~old_ ~by, replace b ~old_ ~by, replace c ~old_ ~by)

let relevance t =
  match t with
  | Maj (x, y, z) -> Some (Maj (x, y, replace z ~old_:x ~by:(not_ y)))
  | _ -> None

let complementary_associativity t =
  match t with
  | Maj (x, u, Maj (y, u', z)) when complement_of u u' ->
      Some (Maj (x, u, Maj (y, x, z)))
  | _ -> None

let substitution ~v ~u k =
  let k_vu = replace k ~old_:v ~by:u in
  let k_vu' = replace k ~old_:v ~by:(not_ u) in
  Maj (v, Maj (not_ v, k_vu, u), Maj (not_ v, k_vu', not_ u))

(* ----- MIG interop ----- *)

module S = Network.Signal
module G = Graph

let of_signal g s =
  let memo = Hashtbl.create 64 in
  let rec node id =
    match Hashtbl.find_opt memo id with
    | Some t -> t
    | None ->
        let t =
          if id = 0 then Const false
          else if G.is_pi g id then Var (G.pi_name g id)
          else begin
            let fs = G.fanins g id in
            let edge e =
              let t = node (S.node e) in
              if S.is_complement e then not_ t else t
            in
            Maj (edge fs.(0), edge fs.(1), edge fs.(2))
          end
        in
        Hashtbl.replace memo id t;
        t
  in
  let t = node (S.node s) in
  if S.is_complement s then not_ t else t

let build g pi t =
  let rec go = function
    | Const false -> G.const0 g
    | Const true -> G.const1 g
    | Var v -> pi v
    | Not t -> S.not_ (go t)
    | Maj (a, b, c) -> G.maj g (go a) (go b) (go c)
  in
  go t
