module N = Network.Graph
module S = Network.Signal
module Rng = Lsutil.Rng

let bus n net prefix = Array.init n (fun i -> N.add_pi net (Printf.sprintf "%s%d" prefix i))

let random_logic ~seed ~inputs ~outputs ~gates ?(locality = 64) () =
  let rng = Rng.create seed in
  let net = N.create () in
  let pool : S.t Lsutil.Vec.t = Lsutil.Vec.create () in
  Array.iter (fun s -> ignore (Lsutil.Vec.push pool s)) (bus inputs net "x");
  let pick () =
    let n = Lsutil.Vec.length pool in
    (* mostly uniform (keeps the DAG shallow), with a mild bias
       towards the most recent [locality] signals for reconvergence *)
    let window = min locality n in
    let idx =
      if Rng.int rng 4 = 0 then n - 1 - Rng.int rng window
      else Rng.int rng n
    in
    let s = Lsutil.Vec.get pool idx in
    if Rng.bool rng then S.not_ s else s
  in
  for _g = 1 to gates do
    let a = pick () and b = pick () in
    let s =
      match Rng.int rng 8 with
      | 0 | 1 | 2 -> N.and_ net a b
      | 3 | 4 | 5 -> N.or_ net a b
      | 6 -> N.xor_ net a b
      | _ -> N.mux net a b (pick ())
    in
    ignore (Lsutil.Vec.push pool s)
  done;
  (* outputs: the freshest signals, spread across the pool's tail *)
  let n = Lsutil.Vec.length pool in
  let stride = max 1 (n / (2 * outputs)) in
  for o = 0 to outputs - 1 do
    let idx = max 0 (n - 1 - (o * stride)) in
    N.add_po net (Printf.sprintf "y%d" o) (Lsutil.Vec.get pool idx)
  done;
  N.cleanup net

let pla_like ~seed ~inputs ~outputs ~cubes ~max_lits =
  let rng = Rng.create seed in
  let net = N.create () in
  let x = bus inputs net "x" in
  let cube () =
    let nlits = 2 + Rng.int rng (max 1 (max_lits - 1)) in
    let lits =
      List.init nlits (fun _ ->
          let v = x.(Rng.int rng inputs) in
          if Rng.bool rng then v else S.not_ v)
    in
    N.and_n net lits
  in
  let all_cubes = Array.init cubes (fun _ -> cube ()) in
  for o = 0 to outputs - 1 do
    let share = 3 + Rng.int rng (max 1 (cubes / 2)) in
    let mine = List.init share (fun _ -> all_cubes.(Rng.int rng cubes)) in
    N.add_po net (Printf.sprintf "y%d" o) (N.or_n net mine)
  done;
  N.cleanup net

(* A seeded 4-bit substitution computed as two-level logic. *)
let sbox net rng (v : S.t array) =
  Array.init 4 (fun _ ->
      let cube () =
        let lits =
          List.init 3 (fun _ ->
              let s = v.(Rng.int rng 4) in
              if Rng.bool rng then s else S.not_ s)
        in
        N.and_n net lits
      in
      N.or_n net (List.init 3 (fun _ -> cube ())))

let key_mixer ~seed ~data ~key ~rounds =
  let rng = Rng.create seed in
  let net = N.create () in
  let d = bus data net "d" in
  let k = bus key net "k" in
  let state = ref (Array.copy d) in
  for _r = 1 to rounds do
    (* xor with a key-derived mask *)
    let mixed =
      Array.mapi
        (fun i s ->
          let k1 = k.(Rng.int rng key) and k2 = k.(Rng.int rng key) in
          N.xor_ net s (N.and_ net k1 (S.xor_complement k2 (i land 1 = 0))))
        !state
    in
    (* 4-bit substitution layer *)
    let next = Array.copy mixed in
    let i = ref 0 in
    while !i + 3 < data do
      let nib = [| mixed.(!i); mixed.(!i + 1); mixed.(!i + 2); mixed.(!i + 3) |] in
      let sub = sbox net rng nib in
      Array.blit sub 0 next !i 4;
      i := !i + 4
    done;
    (* lightweight permutation *)
    let p = Array.length next in
    state := Array.init p (fun i -> next.((i * 7 + 3) mod p))
  done;
  Array.iteri (fun i s -> N.add_po net (Printf.sprintf "y%d" i) s) !state;
  N.cleanup net

let blocks ?limit_outputs ~seed ~block_inputs ~block_outputs ~block_gates ~count () =
  let rng = Rng.create seed in
  let net = N.create () in
  for b = 0 to count - 1 do
    let x = bus block_inputs net (Printf.sprintf "b%d_x" b) in
    let pool : S.t Lsutil.Vec.t = Lsutil.Vec.create () in
    Array.iter (fun s -> ignore (Lsutil.Vec.push pool s)) x;
    let pick () =
      let s = Lsutil.Vec.get pool (Rng.int rng (Lsutil.Vec.length pool)) in
      if Rng.bool rng then S.not_ s else s
    in
    for _g = 1 to block_gates do
      let s =
        match Rng.int rng 7 with
        | 0 | 1 | 2 -> N.and_ net (pick ()) (pick ())
        | 3 | 4 -> N.or_ net (pick ()) (pick ())
        | 5 -> N.xor_ net (pick ()) (pick ())
        | _ -> N.mux net (pick ()) (pick ()) (pick ())
      in
      ignore (Lsutil.Vec.push pool s)
    done;
    let n = Lsutil.Vec.length pool in
    for o = 0 to block_outputs - 1 do
      let total = (b * block_outputs) + o in
      let within =
        match limit_outputs with None -> true | Some l -> total < l
      in
      if within then
        N.add_po net
          (Printf.sprintf "b%d_y%d" b o)
          (Lsutil.Vec.get pool (n - 1 - (o mod n)))
    done
  done;
  N.cleanup net
