(** Seeded generators for the control-dominated benchmarks.

    The MCNC control benchmarks (b9, misex3, alu4, bigkey, clma,
    s38417) are not redistributable; these deterministic generators
    produce circuits with the paper's I/O counts and comparable sizes
    and flavour (see DESIGN.md §2).  Identical seeds give
    byte-identical circuits. *)

val random_logic :
  seed:int ->
  inputs:int ->
  outputs:int ->
  gates:int ->
  ?locality:int ->
  unit ->
  Network.Graph.t
(** Layered random multi-level logic.  Operand choice is biased to
    recently created signals ([locality], default 64), keeping cone
    supports bounded so that the BDS flow stays feasible. *)

val pla_like :
  seed:int ->
  inputs:int ->
  outputs:int ->
  cubes:int ->
  max_lits:int ->
  Network.Graph.t
(** Two-level PLA-style function (the misex3/alu4 proxies): each
    output is a seeded OR of AND cubes. *)

val key_mixer :
  seed:int -> data:int -> key:int -> rounds:int -> Network.Graph.t
(** XOR/MUX key-mixing rounds with 4-bit substitution boxes — the
    bigkey proxy: [data + key] inputs, [data] outputs. *)

val blocks :
  ?limit_outputs:int ->
  seed:int ->
  block_inputs:int ->
  block_outputs:int ->
  block_gates:int ->
  count:int ->
  unit ->
  Network.Graph.t
(** [count] independent random blocks side by side — the s38417
    proxy (a flattened sequential circuit's combinational clouds). *)
