module N = Network.Graph
module S = Network.Signal

let bus n net prefix = Array.init n (fun i -> N.add_pi net (Printf.sprintf "%s%d" prefix i))

let out_bus net prefix sigs =
  Array.iteri (fun i s -> N.add_po net (Printf.sprintf "%s%d" prefix i) s) sigs

let full_adder net a b c =
  let sum = N.xor_ net (N.xor_ net a b) c in
  let carry = N.maj net a b c in
  (sum, carry)

let ripple_adder ?(name_prefix = "") n =
  let net = N.create () in
  let a = bus n net (name_prefix ^ "a") in
  let b = bus n net (name_prefix ^ "b") in
  let c = ref (N.add_pi net (name_prefix ^ "cin")) in
  let sums =
    Array.init n (fun i ->
        let s, c' = full_adder net a.(i) b.(i) !c in
        c := c';
        s)
  in
  out_bus net (name_prefix ^ "s") sums;
  N.add_po net (name_prefix ^ "cout") !c;
  net

let cla_adder n =
  let net = N.create () in
  let a = bus n net "a" and b = bus n net "b" in
  let cin = N.add_pi net "cin" in
  (* bit-level generate/propagate *)
  let g0 = Array.init n (fun i -> N.and_ net a.(i) b.(i)) in
  let p0 = Array.init n (fun i -> N.xor_ net a.(i) b.(i)) in
  (* recursive 4-ary lookahead: given (g, p) pairs and an incoming
     carry, produce the carry entering each position *)
  let rec lookahead gs ps c0 =
    let m = Array.length gs in
    if m <= 4 then begin
      (* flat lookahead within a small block *)
      let carries = Array.make (m + 1) c0 in
      for k = 0 to m - 1 do
        let terms = ref [ gs.(k) ] in
        for j = 0 to k - 1 do
          terms :=
            N.and_n net (gs.(j) :: List.init (k - j) (fun t -> ps.(j + 1 + t)))
            :: !terms
        done;
        terms :=
          N.and_n net (c0 :: List.init (k + 1) (fun t -> ps.(t))) :: !terms;
        carries.(k + 1) <- N.or_n net !terms
      done;
      carries
    end
    else begin
      (* group into blocks of 4, compute block G/P, recurse *)
      let nblk = (m + 3) / 4 in
      let blk_g = Array.make nblk (N.const0 net) in
      let blk_p = Array.make nblk (N.const1 net) in
      for b = 0 to nblk - 1 do
        let lo = b * 4 and hi = min (m - 1) ((b * 4) + 3) in
        let w = hi - lo + 1 in
        (* block generate: g_hi + p_hi g_{hi-1} + ... *)
        let terms = ref [ gs.(hi) ] in
        for j = lo to hi - 1 do
          terms :=
            N.and_n net (gs.(j) :: List.init (hi - j) (fun t -> ps.(j + 1 + t)))
            :: !terms
        done;
        blk_g.(b) <- N.or_n net !terms;
        blk_p.(b) <- N.and_n net (List.init w (fun t -> ps.(lo + t)))
      done;
      let blk_carry = lookahead blk_g blk_p c0 in
      (* expand within each block from its incoming carry *)
      let carries = Array.make (m + 1) c0 in
      for b = 0 to nblk - 1 do
        let lo = b * 4 and hi = min (m - 1) ((b * 4) + 3) in
        let w = hi - lo + 1 in
        let inner =
          lookahead (Array.sub gs lo w) (Array.sub ps lo w) blk_carry.(b)
        in
        Array.blit inner 0 carries lo (w + 1)
      done;
      carries.(m) <- blk_carry.(nblk);
      carries
    end
  in
  let carries = lookahead g0 p0 cin in
  let sums = Array.init n (fun i -> N.xor_ net p0.(i) carries.(i)) in
  out_bus net "s" sums;
  N.add_po net "cout" carries.(n);
  net

let array_multiplier n =
  let net = N.create () in
  let a = bus n net "a" and b = bus n net "b" in
  (* partial products *)
  let pp = Array.init n (fun i -> Array.init n (fun j -> N.and_ net a.(j) b.(i))) in
  (* row-by-row carry-save accumulation, final ripple *)
  let acc = Array.make (2 * n) (N.const0 net) in
  for j = 0 to n - 1 do
    acc.(j) <- pp.(0).(j)
  done;
  for i = 1 to n - 1 do
    let carry = ref (N.const0 net) in
    for j = 0 to n - 1 do
      let pos = i + j in
      let s, c = full_adder net acc.(pos) pp.(i).(j) !carry in
      acc.(pos) <- s;
      carry := c
    done;
    (* propagate the final carry of this row *)
    let pos = ref (i + n) in
    while not (S.equal !carry (N.const0 net)) && !pos < 2 * n do
      let s = N.xor_ net acc.(!pos) !carry in
      let c = N.and_ net acc.(!pos) !carry in
      acc.(!pos) <- s;
      carry := c;
      incr pos
    done
  done;
  out_bus net "p" (Array.sub acc 0 (2 * n));
  net

let counter_next n =
  let net = N.create () in
  let q = bus n net "q" in
  let d = bus n net "d" in
  let load = N.add_pi net "load" in
  let enable = N.add_pi net "enable" in
  let clear = N.add_pi net "clear" in
  (* increment: half-adder ripple *)
  let carry = ref enable in
  let inc =
    Array.init n (fun i ->
        let s = N.xor_ net q.(i) !carry in
        carry := N.and_ net q.(i) !carry;
        s)
  in
  let next =
    Array.init n (fun i ->
        let v = N.mux net load d.(i) inc.(i) in
        N.and_ net v (S.not_ clear))
  in
  out_bus net "n" next;
  net

(* unsigned a < b as a ripple from MSB *)
let less_than net a b =
  let n = Array.length a in
  let lt = ref (N.const0 net) in
  let eq = ref (N.const1 net) in
  for i = n - 1 downto 0 do
    let bit_lt = N.and_ net (S.not_ a.(i)) b.(i) in
    lt := N.or_ net !lt (N.and_ net !eq bit_lt);
    eq := N.and_ net !eq (S.not_ (N.xor_ net a.(i) b.(i)))
  done;
  !lt

let select net c x y = Array.map2 (fun xi yi -> N.mux net c xi yi) x y

let minmax ~width ~words =
  assert (words >= 2);
  let net = N.create () in
  let ws =
    Array.init words (fun w -> bus width net (Printf.sprintf "w%d_" w))
  in
  let sel = Array.init words (fun w -> N.add_pi net (Printf.sprintf "sel%d" w)) in
  let mn = ref ws.(0) and mx = ref ws.(0) in
  for w = 1 to words - 1 do
    let lt = less_than net ws.(w) !mn in
    mn := select net lt ws.(w) !mn;
    let gt = less_than net !mx ws.(w) in
    mx := select net gt ws.(w) !mx
  done;
  out_bus net "min" !mn;
  out_bus net "max" !mx;
  (* pass-throughs gated by the select inputs *)
  for w = 0 to words - 3 do
    let gated = Array.map (fun s -> N.and_ net s sel.(w)) ws.(w) in
    out_bus net (Printf.sprintf "t%d_" w) gated
  done;
  (* consume remaining selects so the interface is stable *)
  ignore sel;
  net

let dedicated_alu () =
  let net = N.create () in
  let a = bus 32 net "a" and b = bus 32 net "b" in
  let op = bus 3 net "op" in
  let mask = bus 8 net "m" in
  (* add *)
  let carry = ref (N.const0 net) in
  let add =
    Array.init 32 (fun i ->
        let s, c = full_adder net a.(i) b.(i) !carry in
        carry := c;
        s)
  in
  let and_v = Array.init 32 (fun i -> N.and_ net a.(i) b.(i)) in
  let or_v = Array.init 32 (fun i -> N.or_ net a.(i) b.(i)) in
  let xor_v = Array.init 32 (fun i -> N.xor_ net a.(i) b.(i)) in
  let pick i =
    let t0 = N.mux net op.(0) add.(i) and_v.(i) in
    let t1 = N.mux net op.(0) or_v.(i) xor_v.(i) in
    N.mux net op.(1) t0 t1
  in
  (* 16 outputs: the low half folded with the high half, so the whole
     datapath stays observable (the paper's dalu is 75/16) *)
  for i = 0 to 15 do
    let v = N.xor_ net (pick i) (pick (i + 16)) in
    let v = N.xor_ net v (N.and_ net op.(2) mask.(i mod 8)) in
    N.add_po net (Printf.sprintf "r%d" i) v
  done;
  net
