type entry = {
  name : string;
  paper_io : int * int;
  build : unit -> Network.Graph.t;
}

let all =
  [
    {
      name = "C1355";
      paper_io = (41, 32);
      build = (fun () -> Ecc.single_error_corrector ~data:32);
    };
    {
      name = "C1908";
      paper_io = (33, 25);
      build = (fun () -> Ecc.secded_codec ~data:16);
    };
    {
      name = "C6288";
      paper_io = (32, 32);
      build = (fun () -> Arith.array_multiplier 16);
    };
    {
      name = "bigkey";
      paper_io = (487, 421);
      build = (fun () -> Control.key_mixer ~seed:0xb16 ~data:421 ~key:66 ~rounds:2);
    };
    {
      name = "my_adder";
      paper_io = (33, 17);
      build = (fun () -> Arith.ripple_adder 16);
    };
    {
      name = "cla";
      paper_io = (129, 65);
      build = (fun () -> Arith.cla_adder 64);
    };
    {
      name = "dalu";
      paper_io = (75, 16);
      build = (fun () -> Arith.dedicated_alu ());
    };
    {
      name = "b9";
      paper_io = (41, 21);
      build =
        (fun () ->
          Control.random_logic ~seed:0xb9 ~inputs:41 ~outputs:21 ~gates:300 ());
    };
    {
      name = "count";
      paper_io = (35, 16);
      build = (fun () -> Arith.counter_next 16);
    };
    {
      name = "alu4";
      paper_io = (14, 8);
      build =
        (fun () ->
          Control.pla_like ~seed:0xa14 ~inputs:14 ~outputs:8 ~cubes:260
            ~max_lits:10);
    };
    {
      name = "clma";
      paper_io = (416, 115);
      build =
        (fun () ->
          Control.random_logic ~seed:0xc1a ~inputs:416 ~outputs:115
            ~gates:52000 ());
    };
    {
      name = "mm30a";
      paper_io = (124, 120);
      build = (fun () -> Arith.minmax ~width:30 ~words:4);
    };
    {
      name = "s38417";
      paper_io = (1494, 1571);
      build =
        (fun () ->
          Control.blocks ~seed:0x38417 ~block_inputs:18 ~block_outputs:19
            ~block_gates:110 ~count:83 ~limit_outputs:1571 ());
    };
    {
      name = "misex3";
      paper_io = (14, 14);
      build =
        (fun () ->
          Control.pla_like ~seed:0x3e3 ~inputs:14 ~outputs:14 ~cubes:230
            ~max_lits:8);
    };
  ]

let names = List.map (fun e -> e.name) all
let find name = List.find (fun e -> e.name = name) all
let compression ?(window = 36) () = Compress.create ~window
