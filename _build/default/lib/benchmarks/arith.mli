(** Structural generators for the arithmetic benchmarks of Table I.

    These circuits' functions are public knowledge, so the real
    structure is built: the paper's headline wins (my_adder, cla,
    count, C6288, mm30a) are all datapath circuits where majority
    logic dominates. *)

val ripple_adder : ?name_prefix:string -> int -> Network.Graph.t
(** [ripple_adder n]: the [my_adder] proxy — n-bit ripple-carry adder
    with carry-in; I/O = 2n+1 / n+1. *)

val cla_adder : int -> Network.Graph.t
(** [cla_adder n]: the [cla] proxy — carry-lookahead adder built from
    4-bit lookahead groups; I/O = 2n+1 / n+1. *)

val array_multiplier : int -> Network.Graph.t
(** [array_multiplier n]: the C6288 proxy — n×n array multiplier of
    AND partial products and full-adder rows; I/O = 2n / 2n. *)

val counter_next : int -> Network.Graph.t
(** [counter_next n]: the [count] proxy — next-state logic of an
    n-bit loadable counter: inputs are the current value, a load
    value, and load/enable/clear controls (2n+3); outputs the next
    value (n). *)

val minmax : width:int -> words:int -> Network.Graph.t
(** [minmax ~width ~words]: the [mm30a] proxy — comparator ladder
    computing the minimum and maximum of [words] unsigned values plus
    selectable pass-throughs; I/O = width*words + words /
    width*(words-2) + 2*width with words=4, width=30 giving 124/120. *)

val dedicated_alu : unit -> Network.Graph.t
(** The [dalu] proxy — a dedicated ALU with two 32-bit operands and
    11 control bits (75 inputs) computing a masked combination of
    add/and/or/xor, truncated to a 16-bit result (16 outputs). *)
