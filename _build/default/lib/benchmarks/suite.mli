(** The benchmark suite of Table I.

    Fourteen deterministic circuits with the paper's I/O counts —
    real structures for the public arithmetic/ECC circuits, seeded
    generators for the control-dominated MCNC circuits (DESIGN.md §2
    documents each substitution). *)

type entry = {
  name : string;
  paper_io : int * int;  (** I/O reported in Table I *)
  build : unit -> Network.Graph.t;
}

val all : entry list
(** The 14 Table I rows, in the paper's order. *)

val find : string -> entry
(** Raises [Not_found] on unknown names. *)

val names : string list

val compression : ?window:int -> unit -> Network.Graph.t
(** The large compression circuit (§V.A.2); default window is scaled
    to tens of thousands of nodes, [~window:110] reaches the paper's
    ~0.3 M. *)
