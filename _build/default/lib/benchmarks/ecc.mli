(** XOR-dominated error-correcting-code circuits: proxies for the
    ISCAS'85 C1355 and C1908 benchmarks (both ECC circuits). *)

val single_error_corrector : data:int -> Network.Graph.t
(** Hamming-style corrector: [data] data bits plus [ceil(log2 (data+1)) + 2]
    check bits and an enable come in; the corrected data bits come
    out.  With [data = 32]: 41 inputs, 32 outputs — the C1355 proxy. *)

val secded_codec : data:int -> Network.Graph.t
(** Encoder/corrector pair with double-error detection.  With
    [data = 16]: 16 data + 16 received + 1 = 33 inputs; 16 corrected +
    8 syndrome/flags + 1 error flag = 25 outputs — the C1908 proxy. *)
