module N = Network.Graph
module S = Network.Signal

let clog2 n =
  let rec go acc v = if v >= n then acc else go (acc + 1) (v * 2) in
  go 0 1

let bus n net prefix = Array.init n (fun i -> N.add_pi net (Printf.sprintf "%s%d" prefix i))

(* Hamming check bit c_j covers the data positions whose (position+1)
   has bit j set. *)
let syndrome net data checks =
  let nchecks = Array.length checks in
  Array.init nchecks (fun j ->
      let covered = ref [] in
      Array.iteri
        (fun i d -> if (i + 1) land (1 lsl j) <> 0 then covered := d :: !covered)
        data;
      N.xor_n net (checks.(j) :: !covered))

let single_error_corrector ~data =
  let net = N.create () in
  let nchecks = clog2 (data + 1) + 2 in
  let d = bus data net "d" in
  let c = bus nchecks net "c" in
  let enable = N.add_pi net "en" in
  let syn = syndrome net d (Array.sub c 0 nchecks) in
  (* decode: data bit i flips when the syndrome equals i+1 *)
  Array.iteri
    (fun i di ->
      let matches =
        Array.to_list
          (Array.mapi
             (fun j s ->
               if (i + 1) land (1 lsl j) <> 0 then s else S.not_ s)
             syn)
      in
      let flip = N.and_ net (N.and_n net matches) enable in
      N.add_po net (Printf.sprintf "o%d" i) (N.xor_ net di flip))
    d;
  net

let secded_codec ~data =
  let net = N.create () in
  let d = bus data net "d" in
  let r = bus data net "r" in
  let en = N.add_pi net "en" in
  let nchecks = clog2 (data + 1) in
  (* encoder: check bits of the sent word *)
  let sent = syndrome net d (Array.make nchecks (N.const0 net)) in
  (* receiver side recomputes over the received word *)
  let recv = syndrome net r (Array.make nchecks (N.const0 net)) in
  let syn = Array.map2 (fun a b -> N.xor_ net a b) sent recv in
  let overall =
    N.xor_ net
      (N.xor_n net (Array.to_list d))
      (N.xor_n net (Array.to_list r))
  in
  Array.iteri
    (fun i ri ->
      let matches =
        Array.to_list
          (Array.mapi
             (fun j s -> if (i + 1) land (1 lsl j) <> 0 then s else S.not_ s)
             syn)
      in
      let flip = N.and_ net (N.and_n net matches) en in
      N.add_po net (Printf.sprintf "o%d" i) (N.xor_ net ri flip))
    r;
  Array.iteri (fun j s -> N.add_po net (Printf.sprintf "syn%d" j) s) syn;
  (* pad the syndrome outputs to 8 with parity combinations *)
  for j = nchecks to 7 do
    N.add_po net
      (Printf.sprintf "syn%d" j)
      (N.xor_ net syn.(j mod nchecks) overall)
  done;
  N.add_po net "derr"
    (N.and_ net (S.not_ overall) (N.or_n net (Array.to_list syn)));
  net
