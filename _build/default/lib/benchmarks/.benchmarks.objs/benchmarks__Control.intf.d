lib/benchmarks/control.mli: Network
