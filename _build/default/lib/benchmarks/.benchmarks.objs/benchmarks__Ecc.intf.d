lib/benchmarks/ecc.mli: Network
