lib/benchmarks/suite.mli: Network
