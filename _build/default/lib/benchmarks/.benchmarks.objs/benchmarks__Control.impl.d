lib/benchmarks/control.ml: Array List Lsutil Network Printf
