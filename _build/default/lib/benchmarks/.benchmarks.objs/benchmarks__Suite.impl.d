lib/benchmarks/suite.ml: Arith Compress Control Ecc List Network
