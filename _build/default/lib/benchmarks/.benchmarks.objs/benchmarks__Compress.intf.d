lib/benchmarks/compress.mli: Network
