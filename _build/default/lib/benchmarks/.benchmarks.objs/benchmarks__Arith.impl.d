lib/benchmarks/arith.ml: Array List Network Printf
