lib/benchmarks/compress.ml: Array Network Printf
