lib/benchmarks/ecc.ml: Array Network Printf
