lib/benchmarks/arith.mli: Network
