type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next rng =
  rng.state <- Int64.add rng.state golden;
  let z = rng.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int rng bound =
  if bound <= 0 then invalid_arg "Rng.int";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next rng) 1) (Int64.of_int bound))

let bool rng = Int64.logand (next rng) 1L = 1L

let float rng =
  Int64.to_float (Int64.shift_right_logical (next rng) 11)
  /. 9007199254740992.0 (* 2^53 *)

let split rng = { state = next rng }
