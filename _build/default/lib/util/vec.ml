type 'a t = { mutable data : 'a array; mutable len : int }

let create ?(capacity = 16) () = { data = Array.make (max capacity 1) (Obj.magic 0); len = 0 }

let length v = v.len

let check v i =
  if i < 0 || i >= v.len then invalid_arg "Vec: index out of bounds"

let get v i =
  check v i;
  v.data.(i)

let set v i x =
  check v i;
  v.data.(i) <- x

let grow v =
  let cap = Array.length v.data in
  let data = Array.make (cap * 2) v.data.(0) in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let push v x =
  if v.len = Array.length v.data then begin
    if v.len = 0 then v.data <- Array.make 16 x else grow v
  end;
  v.data.(v.len) <- x;
  v.len <- v.len + 1;
  v.len - 1

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let to_array v = Array.sub v.data 0 v.len
let of_array a = { data = (if Array.length a = 0 then Array.make 1 (Obj.magic 0) else Array.copy a); len = Array.length a }
let clear v = v.len <- 0
