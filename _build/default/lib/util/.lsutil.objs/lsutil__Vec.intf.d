lib/util/vec.mli:
