lib/util/rng.mli:
