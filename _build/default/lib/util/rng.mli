(** Deterministic pseudo-random generator (splitmix64-based).

    Used by the benchmark generators so that every run of the suite
    produces byte-identical circuits, independent of the global
    [Random] state. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. *)

val int : t -> int -> int
(** [int rng bound] draws uniformly from [0, bound).  [bound > 0]. *)

val bool : t -> bool
val float : t -> float
(** Uniform in [0, 1). *)

val split : t -> t
(** Derive an independent generator (for nested structures). *)
