(** Signals: references to a network node with an optional complement.

    A signal packs a node index and an inversion flag into one
    immediate integer, so signal-heavy code allocates nothing. *)

type t = private int

val make : int -> bool -> t
(** [make id inv] refers to node [id], complemented when [inv]. *)

val unsafe_of_int : int -> t
(** Reinterpret a packed integer as a signal (no validation). *)

val node : t -> int
val is_complement : t -> bool
val not_ : t -> t
val with_complement : t -> bool -> t
(** [with_complement s b] forces the complement flag to [b]. *)

val xor_complement : t -> bool -> t
(** [xor_complement s b] complements [s] when [b]. *)

val regular : t -> t
(** The signal with the complement flag cleared. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
