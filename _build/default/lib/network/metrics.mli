(** Size, depth and switching-activity metrics on logic networks. *)

val size : Graph.t -> int
(** Gate count (alias of {!Graph.size}). *)

val levels : ?cost:(Graph.fn -> int) -> Graph.t -> int array
(** Per-node depth.  PIs and constants are at level 0; a gate's level
    is its cost (default 1 for every primitive) plus the maximum fanin
    level. *)

val depth : ?cost:(Graph.fn -> int) -> Graph.t -> int
(** Depth of the network: maximum PO level. *)

val probabilities : ?pi_prob:(string -> float) -> Graph.t -> float array
(** Per-node probability of evaluating to 1 under the usual
    independence approximation.  [pi_prob] gives the probability of
    each named input (default 0.5). *)

val activity : ?pi_prob:(string -> float) -> Graph.t -> float
(** Total switching activity: sum over gate nodes of [p (1-p)],
    matching the SW convention of the paper's Fig. 2(d). *)
