type t = int

let make id inv =
  assert (id >= 0);
  (id lsl 1) lor (if inv then 1 else 0)

let unsafe_of_int (i : int) : t = i
let node s = s lsr 1
let is_complement s = s land 1 = 1
let not_ s = s lxor 1
let with_complement s b = (s land lnot 1) lor (if b then 1 else 0)
let xor_complement s b = if b then s lxor 1 else s
let regular s = s land lnot 1
let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b
let hash (s : t) = s
let pp fmt s = Format.fprintf fmt "%s%d" (if is_complement s then "~" else "") (node s)
