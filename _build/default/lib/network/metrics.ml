module S = Signal
module G = Graph

let size = G.size

let levels ?(cost = fun _ -> 1) n =
  let lv = Array.make (G.num_nodes n) 0 in
  G.iter_gates n (fun i fn fanins ->
      let m = Array.fold_left (fun acc s -> max acc lv.(S.node s)) 0 fanins in
      lv.(i) <- m + cost fn);
  lv

let depth ?cost n =
  let lv = levels ?cost n in
  List.fold_left (fun acc (_, s) -> max acc lv.(S.node s)) 0 (G.pos n)

let probabilities ?(pi_prob = fun _ -> 0.5) n =
  let p = Array.make (G.num_nodes n) 0.0 in
  let value s =
    let v = p.(S.node s) in
    if S.is_complement s then 1.0 -. v else v
  in
  G.iter_nodes n (fun i nd ->
      match nd with
      | G.Const0 -> p.(i) <- 0.0
      | G.Pi name -> p.(i) <- pi_prob name
      | G.Gate (fn, fs) ->
          let v k = value fs.(k) in
          p.(i) <-
            (match fn with
            | G.And -> v 0 *. v 1
            | G.Or -> v 0 +. v 1 -. (v 0 *. v 1)
            | G.Xor -> (v 0 *. (1.0 -. v 1)) +. (v 1 *. (1.0 -. v 0))
            | G.Maj ->
                (v 0 *. v 1) +. (v 0 *. v 2) +. (v 1 *. v 2)
                -. (2.0 *. v 0 *. v 1 *. v 2)
            | G.Mux -> (v 0 *. v 1) +. ((1.0 -. v 0) *. v 2)));
  p

let activity ?pi_prob n =
  let p = probabilities ?pi_prob n in
  let acc = ref 0.0 in
  G.iter_gates n (fun i _ _ -> acc := !acc +. (p.(i) *. (1.0 -. p.(i))));
  !acc
