lib/network/signal.ml: Format Stdlib
