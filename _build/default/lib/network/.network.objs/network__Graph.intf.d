lib/network/graph.mli: Format Signal
