lib/network/graph.ml: Array Format Hashtbl List Lsutil Signal
