lib/network/metrics.mli: Graph
