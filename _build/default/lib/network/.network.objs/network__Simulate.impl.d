lib/network/simulate.ml: Array Graph Hashtbl Int64 List Lsutil Signal Truthtable
