lib/network/metrics.ml: Array Graph List Signal
