lib/network/simulate.mli: Graph Truthtable
