(** Bit-parallel simulation and exact truth tables for networks. *)

val run : Graph.t -> (string -> int64) -> (string * int64) list
(** [run n stim] evaluates the network on 64 parallel patterns.
    [stim] gives the 64 input bits per named PI; the result lists the
    64 output bits per named PO. *)

val truthtables : Graph.t -> (string * Truthtable.t) list
(** Exact truth table per PO, over the PIs in declaration order
    (PI [k] is truth-table variable [k]).  Only usable when the
    network has at most 20 PIs. *)

val equivalent_random : ?rounds:int -> seed:int -> Graph.t -> Graph.t -> bool
(** Probabilistic equivalence check: both networks must have the same
    PI and PO names; they are driven with the same random patterns and
    compared.  [rounds] batches of 64 patterns (default 64). *)

val equivalent : ?max_exact_pis:int -> seed:int -> Graph.t -> Graph.t -> bool
(** Exact truth-table comparison when the PI count is at most
    [max_exact_pis] (default 14), otherwise falls back to
    {!equivalent_random}. *)
