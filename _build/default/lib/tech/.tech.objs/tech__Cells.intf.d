lib/tech/cells.mli: Truthtable
