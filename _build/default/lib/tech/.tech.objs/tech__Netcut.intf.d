lib/tech/netcut.mli: Network Truthtable
