lib/tech/netcut.ml: Array Hashtbl List Network Truthtable
