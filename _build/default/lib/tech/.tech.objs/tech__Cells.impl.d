lib/tech/cells.ml: List Truthtable
