lib/tech/mapper.mli: Cells Format Network
