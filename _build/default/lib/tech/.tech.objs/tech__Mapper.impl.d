lib/tech/mapper.ml: Array Cells Float Format Hashtbl List Netcut Network Option Truthtable
