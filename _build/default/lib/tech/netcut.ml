module G = Network.Graph
module S = Network.Signal

type t = int array

(* Merge sorted duplicate-free arrays. *)
let merge2 a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (la + lb) 0 in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  let push v =
    out.(!k) <- v;
    incr k
  in
  while !i < la && !j < lb do
    if a.(!i) < b.(!j) then (push a.(!i); incr i)
    else if a.(!i) > b.(!j) then (push b.(!j); incr j)
    else (push a.(!i); incr i; incr j)
  done;
  while !i < la do push a.(!i); incr i done;
  while !j < lb do push b.(!j); incr j done;
  Array.sub out 0 !k

let enumerate ~k ~max_cuts net =
  let n = G.num_nodes net in
  let cuts : t list array = Array.make n [] in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  G.iter_nodes net (fun i nd ->
      match nd with
      | G.Const0 -> cuts.(i) <- [ [||] ]
      | G.Pi _ -> cuts.(i) <- [ [| i |] ]
      | G.Gate (_, fanins) ->
          let fanin_cuts =
            Array.to_list fanins
            |> List.map (fun s -> cuts.(S.node s))
          in
          let merged =
            List.fold_left
              (fun acc cs ->
                List.concat_map
                  (fun m -> List.filter_map
                      (fun c ->
                        let u = merge2 m c in
                        if Array.length u <= k then Some u else None)
                      cs)
                  acc)
              [ [||] ] fanin_cuts
          in
          let dedup =
            List.sort_uniq compare merged
            |> List.sort (fun x y ->
                   compare (Array.length x) (Array.length y))
          in
          cuts.(i) <- [| i |] :: take (max_cuts - 1) dedup);
  cuts

let cut_function net root cut =
  let module T = Truthtable in
  if Array.length cut > 3 then invalid_arg "Netcut.cut_function: cut too wide";
  let memo = Hashtbl.create 32 in
  Array.iteri (fun idx leaf -> Hashtbl.replace memo leaf (T.var 3 idx)) cut;
  let rec go id =
    match Hashtbl.find_opt memo id with
    | Some tt -> tt
    | None ->
        let tt =
          match G.node net id with
          | G.Const0 -> T.const0 3
          | G.Pi _ -> invalid_arg "Netcut.cut_function: PI not in cut"
          | G.Gate (fn, fs) ->
              let value s =
                let t = go (S.node s) in
                if S.is_complement s then T.not_ t else t
              in
              let v k = value fs.(k) in
              (match fn with
              | G.And -> T.and_ (v 0) (v 1)
              | G.Or -> T.or_ (v 0) (v 1)
              | G.Xor -> T.xor_ (v 0) (v 1)
              | G.Maj -> T.maj (v 0) (v 1) (v 2)
              | G.Mux -> T.mux (v 0) (v 1) (v 2))
        in
        Hashtbl.replace memo id tt;
        tt
  in
  go root
