(** K-feasible cut enumeration on the generic network IR (the
    mapper's subject graph). *)

type t = int array
(** Sorted array of leaf node ids. *)

val enumerate : k:int -> max_cuts:int -> Network.Graph.t -> t list array
(** Per-node cuts, the trivial cut included; constants excluded from
    leaf sets. *)

val cut_function : Network.Graph.t -> int -> t -> Truthtable.t
(** Function of a node over the cut leaves, padded to 3 variables
    (leaf [i] = variable [i]).  Cuts must have at most 3 leaves. *)
