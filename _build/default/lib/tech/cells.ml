type t = {
  name : string;
  arity : int;
  tt : Truthtable.t;
  area : float;
  delay : float;
  energy : float;
}

type library = t list

let module_tt n f = Truthtable.of_bits n f

let inv =
  {
    name = "INV";
    arity = 1;
    tt = module_tt 1 (fun m -> m land 1 = 0);
    area = 0.10;
    delay = 0.010;
    energy = 0.30;
  }

let nand2 =
  {
    name = "NAND2";
    arity = 2;
    tt = module_tt 2 (fun m -> not (m land 1 <> 0 && m land 2 <> 0));
    area = 0.15;
    delay = 0.016;
    energy = 0.50;
  }

let nor2 =
  {
    name = "NOR2";
    arity = 2;
    tt = module_tt 2 (fun m -> not (m land 1 <> 0 || m land 2 <> 0));
    area = 0.15;
    delay = 0.018;
    energy = 0.50;
  }

let xor2 =
  {
    name = "XOR2";
    arity = 2;
    tt = module_tt 2 (fun m -> (m land 1 <> 0) <> (m land 2 <> 0));
    area = 0.26;
    delay = 0.030;
    energy = 0.85;
  }

let xnor2 =
  {
    name = "XNOR2";
    arity = 2;
    tt = module_tt 2 (fun m -> (m land 1 <> 0) = (m land 2 <> 0));
    area = 0.26;
    delay = 0.030;
    energy = 0.85;
  }

let count_bits m = (m land 1) + ((m lsr 1) land 1) + ((m lsr 2) land 1)

let maj3 =
  {
    name = "MAJ3";
    arity = 3;
    tt = module_tt 3 (fun m -> count_bits m >= 2);
    area = 0.26;
    delay = 0.031;
    energy = 0.90;
  }

let min3 =
  {
    name = "MIN3";
    arity = 3;
    tt = module_tt 3 (fun m -> count_bits m < 2);
    area = 0.26;
    delay = 0.033;
    energy = 0.90;
  }

let full = [ inv; nand2; nor2; xor2; xnor2; maj3; min3 ]
let no_majority = [ inv; nand2; nor2; xor2; xnor2 ]

let find lib name =
  match List.find_opt (fun c -> c.name = name) lib with
  | Some c -> c
  | None -> invalid_arg ("Cells.find: " ^ name)
