(** Standard-cell library (§V.B methodology).

    The paper characterizes a library of MIN-3, MAJ-3, XOR-2, XNOR-2,
    NAND-2, NOR-2 and INV gates for CMOS 22 nm.  The real
    characterization is proprietary (PTM-based); the constants here
    are plausible stand-ins of the right relative magnitudes — the
    reproduction targets relative flow quality, not absolute µm²/ns/µW
    (see DESIGN.md §2). *)

type t = {
  name : string;
  arity : int;
  tt : Truthtable.t;  (** over [arity] variables *)
  area : float;  (** µm² *)
  delay : float;  (** ns, pin-to-output *)
  energy : float;  (** µW of dynamic power per unit switching activity
                       at the nominal clock *)
}

type library = t list

val inv : t
val nand2 : t
val nor2 : t
val xor2 : t
val xnor2 : t
val maj3 : t
val min3 : t

val full : library
(** The paper's library: all seven cells. *)

val no_majority : library
(** The library stripped of MAJ-3/MIN-3 — used by the
    commercial-synthesis-tool proxy and by the mapping ablation. *)

val find : library -> string -> t
