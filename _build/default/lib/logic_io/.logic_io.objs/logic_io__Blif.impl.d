lib/logic_io/blif.ml: Array Format Hashtbl List Network Printf String
