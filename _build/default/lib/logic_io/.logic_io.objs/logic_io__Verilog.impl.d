lib/logic_io/verilog.ml: Array Format Hashtbl List Network Printf String
