lib/logic_io/verilog.mli: Format Network
