lib/logic_io/blif.mli: Format Network
