lib/bdd/decompose.mli: Network Robdd
