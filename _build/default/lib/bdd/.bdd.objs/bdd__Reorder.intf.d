lib/bdd/reorder.mli: Network
