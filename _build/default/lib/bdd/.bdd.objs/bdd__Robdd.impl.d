lib/bdd/robdd.ml: Hashtbl List Lsutil Truthtable
