lib/bdd/decompose.ml: Array Builder Hashtbl List Network Reorder Robdd
