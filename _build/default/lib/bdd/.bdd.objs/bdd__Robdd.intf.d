lib/bdd/robdd.mli: Truthtable
