lib/bdd/builder.ml: Array Hashtbl List Network Robdd
