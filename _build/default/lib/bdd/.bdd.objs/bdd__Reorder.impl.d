lib/bdd/reorder.ml: Array Builder List Lsutil Network Robdd
