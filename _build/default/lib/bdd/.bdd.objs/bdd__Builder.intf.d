lib/bdd/builder.mli: Network Robdd
