module G = Network.Graph
module S = Network.Signal

let dfs_order n =
  let visited = Array.make (G.num_nodes n) false in
  let order = ref [] in
  let rec go id =
    if not visited.(id) then begin
      visited.(id) <- true;
      match G.node n id with
      | G.Const0 -> ()
      | G.Pi _ -> order := id :: !order
      | G.Gate (_, fanins) -> Array.iter (fun s -> go (S.node s)) fanins
    end
  in
  List.iter (fun (_, s) -> go (S.node s)) (G.pos n);
  (* dangling PIs at the end, in declaration order *)
  List.iter (fun id -> if not visited.(id) then order := id :: !order) (G.pis n);
  Array.of_list (List.rev !order)

let of_network man ~order n =
  let var_of_pi = Hashtbl.create 64 in
  Array.iteri (fun level id -> Hashtbl.add var_of_pi id level) order;
  let bdds = Array.make (G.num_nodes n) Robdd.zero in
  List.iter
    (fun id -> bdds.(id) <- Robdd.var man (Hashtbl.find var_of_pi id))
    (G.pis n);
  let value s =
    let b = bdds.(S.node s) in
    if S.is_complement s then Robdd.not_ man b else b
  in
  G.iter_gates n (fun i fn fs ->
      let v k = value fs.(k) in
      bdds.(i) <-
        (match fn with
        | G.And -> Robdd.and_ man (v 0) (v 1)
        | G.Or -> Robdd.or_ man (v 0) (v 1)
        | G.Xor -> Robdd.xor_ man (v 0) (v 1)
        | G.Maj -> Robdd.maj man (v 0) (v 1) (v 2)
        | G.Mux -> Robdd.ite man (v 0) (v 1) (v 2)));
  List.map (fun (name, s) -> (name, value s)) (G.pos n)
