(** Building BDDs from logic networks. *)

val dfs_order : Network.Graph.t -> int array
(** Variable order produced by a depth-first traversal from the
    outputs: element [i] is the PI node id placed at BDD level [i].
    PIs never visited (dangling) are appended at the end. *)

val of_network :
  Robdd.man ->
  order:int array ->
  Network.Graph.t ->
  (string * Robdd.t) list
(** Build one BDD per primary output, sharing nodes across outputs.
    [order] is as returned by {!dfs_order}.
    @raise Robdd.Node_limit_exceeded when the manager budget is hit. *)
