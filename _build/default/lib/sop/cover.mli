(** Sum-of-products covers: a disjunction of {!Cube.t}. *)

type t = { nvars : int; cubes : Cube.t list }

val const0 : int -> t
val const1 : int -> t
val of_cubes : int -> Cube.t list -> t

val num_cubes : t -> int
val num_literals : t -> int

val eval : t -> (int -> bool) -> bool
val to_truthtable : t -> Truthtable.t

val single_cube_containment : t -> t
(** Remove cubes covered by another single cube of the cover. *)

val irredundant : t -> t
(** Remove cubes covered by the disjunction of the remaining ones
    (checked by truth table; intended for small variable counts). *)

val pp : vars:(int -> string) -> Format.formatter -> t -> unit
