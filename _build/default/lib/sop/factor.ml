type form =
  | Const of bool
  | Lit of int * bool
  | And of form list
  | Or of form list

(* Most frequent literal across the cubes, provided it occurs at least
   twice (otherwise division is pointless). *)
let best_literal cubes =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun c ->
      List.iter
        (fun lit ->
          Hashtbl.replace tbl lit (1 + Option.value ~default:0 (Hashtbl.find_opt tbl lit)))
        (Cube.literals c))
    cubes;
  Hashtbl.fold
    (fun lit n best ->
      match best with
      | Some (_, bn) when bn >= n -> best
      | _ when n >= 2 -> Some (lit, n)
      | _ -> best)
    tbl None

let cube_form c =
  match Cube.literals c with
  | [] -> Const true
  | [ (v, pos) ] -> Lit (v, pos)
  | lits -> And (List.map (fun (v, pos) -> Lit (v, pos)) lits)

let smart_and a b =
  match (a, b) with
  | Const false, _ | _, Const false -> Const false
  | Const true, x | x, Const true -> x
  | And xs, And ys -> And (xs @ ys)
  | And xs, y -> And (xs @ [ y ])
  | x, And ys -> And (x :: ys)
  | x, y -> And [ x; y ]

let smart_or a b =
  match (a, b) with
  | Const true, _ | _, Const true -> Const true
  | Const false, x | x, Const false -> x
  | Or xs, Or ys -> Or (xs @ ys)
  | Or xs, y -> Or (xs @ [ y ])
  | x, Or ys -> Or (x :: ys)
  | x, y -> Or [ x; y ]

let rec factor_cubes cubes =
  match cubes with
  | [] -> Const false
  | [ c ] -> cube_form c
  | _ when List.exists (fun c -> Cube.size c = 0) cubes -> Const true
  | _ -> (
      match best_literal cubes with
      | None -> (
          match List.map cube_form cubes with
          | [] -> Const false
          | [ f ] -> f
          | fs -> Or fs)
      | Some (((v, pos) as _lit), _) ->
          let quotient, remainder =
            List.partition (fun c -> Cube.polarity c v = Some pos) cubes
          in
          let quotient = List.map (fun c -> Cube.drop_var c v) quotient in
          let divided = smart_and (Lit (v, pos)) (factor_cubes quotient) in
          if remainder = [] then divided
          else smart_or divided (factor_cubes remainder))

let factor (c : Cover.t) = factor_cubes c.Cover.cubes

let rec literal_count = function
  | Const _ -> 0
  | Lit _ -> 1
  | And fs | Or fs -> List.fold_left (fun a f -> a + literal_count f) 0 fs

(* ceil(log2 n) for n >= 1 *)
let clog2 n =
  let rec go acc v = if v >= n then acc else go (acc + 1) (v * 2) in
  go 0 1

let rec depth = function
  | Const _ | Lit _ -> 0
  | And fs | Or fs ->
      let d = List.fold_left (fun a f -> max a (depth f)) 0 fs in
      d + clog2 (max 1 (List.length fs))

let rec eval f env =
  match f with
  | Const b -> b
  | Lit (v, pos) -> env v = pos
  | And fs -> List.for_all (fun g -> eval g env) fs
  | Or fs -> List.exists (fun g -> eval g env) fs

let rec to_truthtable n = function
  | Const false -> Truthtable.const0 n
  | Const true -> Truthtable.const1 n
  | Lit (v, pos) ->
      let t = Truthtable.var n v in
      if pos then t else Truthtable.not_ t
  | And fs ->
      List.fold_left
        (fun acc g -> Truthtable.and_ acc (to_truthtable n g))
        (Truthtable.const1 n) fs
  | Or fs ->
      List.fold_left
        (fun acc g -> Truthtable.or_ acc (to_truthtable n g))
        (Truthtable.const0 n) fs

let rec pp ~vars fmt = function
  | Const b -> Format.pp_print_string fmt (if b then "1" else "0")
  | Lit (v, pos) ->
      Format.fprintf fmt "%s%s" (vars v) (if pos then "" else "'")
  | And fs ->
      Format.pp_print_list
        ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "*")
        (pp_atom ~vars) fmt fs
  | Or fs ->
      Format.pp_print_list
        ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " + ")
        (pp ~vars) fmt fs

and pp_atom ~vars fmt f =
  match f with
  | Or _ -> Format.fprintf fmt "(%a)" (pp ~vars) f
  | _ -> pp ~vars fmt f
