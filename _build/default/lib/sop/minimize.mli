(** Espresso-style heuristic two-level minimization.

    A light version of the classic loop: EXPAND each cube against the
    off-set (drop literals while no off-set minterm is covered),
    remove cubes covered by the expansion, make the result
    IRREDUNDANT, and iterate while it improves.  Exact containment is
    checked through truth tables, so this operates on functions of a
    bounded variable count (like the cut/cone functions it is used
    on). *)

val expand_cube : offset:Truthtable.t -> Cube.t -> Cube.t
(** Greedily drop literals from the cube as long as it stays disjoint
    from [offset].  The result covers at least the original cube. *)

val minimize : ?max_iters:int -> Cover.t -> Cover.t
(** Heuristic minimization preserving the function exactly.  The
    result never has more cubes than the input; literals usually
    shrink substantially on unminimized covers. *)
