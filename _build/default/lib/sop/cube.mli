(** Cubes (products of literals) over a fixed variable set.

    A cube stores, per variable, whether the variable appears and with
    which polarity.  Cubes are immutable. *)

type t

val universal : t
(** The cube with no literals (constant true). *)

val of_literals : (int * bool) list -> t
(** [of_literals lits] builds a cube from [(var, positive?)] pairs.
    Raises [Invalid_argument] if a variable appears with both
    polarities. *)

val literals : t -> (int * bool) list
(** Literals in ascending variable order. *)

val add_literal : t -> int -> bool -> t
(** [add_literal c v pos] conjoins literal [v]/[v'] to [c].  Raises
    [Invalid_argument] on polarity conflict. *)

val has_var : t -> int -> bool
val polarity : t -> int -> bool option
(** [polarity c v] is [Some true]/[Some false] when [v] appears
    positively/negatively, [None] when absent. *)

val drop_var : t -> int -> t
val size : t -> int
(** Number of literals. *)

val contains : t -> t -> bool
(** [contains a b] is true when cube [a] covers cube [b], i.e. every
    literal of [a] appears in [b]. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val eval : t -> (int -> bool) -> bool
(** Evaluate under an assignment. *)

val to_truthtable : int -> t -> Truthtable.t
val pp : vars:(int -> string) -> Format.formatter -> t -> unit
