module T = Truthtable

(* Minato-Morreale recursion.  Returns the cube list together with the
   truth table of the cover built so far. *)
let rec isop lower upper n vs =
  if T.is_const0 lower then ([], T.const0 n)
  else if T.is_const1 upper then ([ Cube.universal ], T.const1 n)
  else begin
    match vs with
    | [] ->
        (* [lower] nonzero but no splitting variable left: the residual
           function is constant over the remaining space. *)
        ([ Cube.universal ], T.const1 n)
    | x :: vs' ->
        if not (T.depends_on lower x || T.depends_on upper x) then
          isop lower upper n vs'
        else begin
          let l0 = T.cofactor0 lower x and l1 = T.cofactor1 lower x in
          let u0 = T.cofactor0 upper x and u1 = T.cofactor1 upper x in
          let c0, f0 = isop (T.and_ l0 (T.not_ u1)) u0 n vs' in
          let c1, f1 = isop (T.and_ l1 (T.not_ u0)) u1 n vs' in
          let lnew =
            T.or_ (T.and_ l0 (T.not_ f0)) (T.and_ l1 (T.not_ f1))
          in
          let cs, fs = isop lnew (T.and_ u0 u1) n vs' in
          let xv = T.var n x in
          let cover =
            T.or_ fs
              (T.or_ (T.and_ (T.not_ xv) f0) (T.and_ xv f1))
          in
          let cubes =
            List.map (fun c -> Cube.add_literal c x false) c0
            @ List.map (fun c -> Cube.add_literal c x true) c1
            @ cs
          in
          (cubes, cover)
        end
  end

let compute_interval ~lower ~upper =
  let n = T.nvars lower in
  if T.nvars upper <> n then invalid_arg "Isop: arity mismatch";
  let vs = List.init n (fun i -> i) in
  let cubes, cover = isop lower upper n vs in
  assert (T.is_const0 (T.and_ lower (T.not_ cover)));
  assert (T.is_const0 (T.and_ cover (T.not_ upper)));
  Cover.of_cubes n cubes

let compute f = compute_interval ~lower:f ~upper:f
