(** Irredundant sum-of-products computation (Minato–Morreale).

    Produces an irredundant cover of a completely- or
    incompletely-specified function given as truth tables. *)

val compute : Truthtable.t -> Cover.t
(** [compute f] is an irredundant SOP cover of [f]. *)

val compute_interval : lower:Truthtable.t -> upper:Truthtable.t -> Cover.t
(** [compute_interval ~lower ~upper] is an irredundant cover [g] with
    [lower <= g <= upper]; requires [lower <= upper]. *)
