(** Algebraic factoring of SOP covers into multi-level factored forms. *)

type form =
  | Const of bool
  | Lit of int * bool  (** variable index, positive polarity? *)
  | And of form list
  | Or of form list

val factor : Cover.t -> form
(** Factor a cover using repeated weak division by the most frequent
    literal (quick-factor style).  The result is logically equivalent
    to the cover. *)

val literal_count : form -> int
(** Number of literal leaves in the form. *)

val depth : form -> int
(** Depth of the form counting each 2-input AND/OR level as 1 (n-ary
    gates are costed as balanced binary trees). *)

val eval : form -> (int -> bool) -> bool
val to_truthtable : int -> form -> Truthtable.t
val pp : vars:(int -> string) -> Format.formatter -> form -> unit
