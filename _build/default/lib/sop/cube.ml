(* A cube is a pair of bit sets: [mask] marks present variables, [pol]
   their polarity (bit set = positive).  Bits of [pol] outside [mask]
   are kept at zero so that structural equality is semantic. *)
type t = { mask : int; pol : int }

let universal = { mask = 0; pol = 0 }

let check_var v =
  if v < 0 || v >= 62 then invalid_arg "Cube: variable out of range"

let add_literal c v pos =
  check_var v;
  let bit = 1 lsl v in
  if c.mask land bit <> 0 then begin
    let cur = c.pol land bit <> 0 in
    if cur <> pos then invalid_arg "Cube.add_literal: polarity conflict";
    c
  end
  else { mask = c.mask lor bit; pol = (if pos then c.pol lor bit else c.pol) }

let of_literals lits =
  List.fold_left (fun c (v, pos) -> add_literal c v pos) universal lits

let has_var c v = c.mask land (1 lsl v) <> 0

let polarity c v =
  if has_var c v then Some (c.pol land (1 lsl v) <> 0) else None

let drop_var c v =
  let bit = 1 lsl v in
  { mask = c.mask land lnot bit; pol = c.pol land lnot bit }

let size c =
  let rec pop acc x = if x = 0 then acc else pop (acc + 1) (x land (x - 1)) in
  pop 0 c.mask

let literals c =
  let rec go v =
    if 1 lsl v > c.mask then []
    else if has_var c v then (v, c.pol land (1 lsl v) <> 0) :: go (v + 1)
    else go (v + 1)
  in
  go 0

let contains a b =
  (* every literal of [a] must appear identically in [b] *)
  a.mask land b.mask = a.mask && a.pol = b.pol land a.mask

let equal a b = a.mask = b.mask && a.pol = b.pol
let compare a b = Stdlib.compare (a.mask, a.pol) (b.mask, b.pol)

let eval c env =
  List.for_all (fun (v, pos) -> env v = pos) (literals c)

let to_truthtable n c =
  List.fold_left
    (fun acc (v, pos) ->
      let tv = Truthtable.var n v in
      Truthtable.and_ acc (if pos then tv else Truthtable.not_ tv))
    (Truthtable.const1 n) (literals c)

let pp ~vars fmt c =
  match literals c with
  | [] -> Format.pp_print_string fmt "1"
  | lits ->
      List.iter
        (fun (v, pos) ->
          Format.fprintf fmt "%s%s" (vars v) (if pos then "" else "'"))
        lits
