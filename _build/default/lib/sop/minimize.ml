module T = Truthtable

let expand_cube ~offset cube =
  let n = T.nvars offset in
  (* try dropping literals one at a time, most-binate last would be
     better; simple ascending order works well at small arities *)
  List.fold_left
    (fun cube (v, _) ->
      let candidate = Cube.drop_var cube v in
      let tt = Cube.to_truthtable n candidate in
      if T.is_const0 (T.and_ tt offset) then candidate else cube)
    cube (Cube.literals cube)

let minimize ?(max_iters = 4) cover =
  let n = cover.Cover.nvars in
  let onset = Cover.to_truthtable cover in
  let offset = T.not_ onset in
  let cost c = (Cover.num_cubes c, Cover.num_literals c) in
  let rec loop i best =
    if i >= max_iters then best
    else begin
      (* EXPAND every cube against the off-set *)
      let expanded =
        List.map (expand_cube ~offset) best.Cover.cubes
      in
      (* drop cubes contained in another expanded cube, then make the
         cover irredundant *)
      let c =
        Cover.of_cubes n expanded
        |> Cover.single_cube_containment
        |> Cover.irredundant
      in
      assert (T.equal (Cover.to_truthtable c) onset);
      if cost c < cost best then loop (i + 1) c else best
    end
  in
  let result = loop 0 (Cover.single_cube_containment cover) in
  if cost result <= cost cover then result else cover
