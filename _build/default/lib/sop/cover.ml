type t = { nvars : int; cubes : Cube.t list }

let const0 n = { nvars = n; cubes = [] }
let const1 n = { nvars = n; cubes = [ Cube.universal ] }
let of_cubes n cubes = { nvars = n; cubes }

let num_cubes c = List.length c.cubes

let num_literals c =
  List.fold_left (fun acc cb -> acc + Cube.size cb) 0 c.cubes

let eval c env = List.exists (fun cb -> Cube.eval cb env) c.cubes

let to_truthtable c =
  List.fold_left
    (fun acc cb -> Truthtable.or_ acc (Cube.to_truthtable c.nvars cb))
    (Truthtable.const0 c.nvars)
    c.cubes

let single_cube_containment c =
  let rec keep seen = function
    | [] -> List.rev seen
    | cb :: rest ->
        let covered =
          List.exists (fun o -> Cube.contains o cb) seen
          || List.exists (fun o -> Cube.contains o cb && not (Cube.equal o cb)) rest
        in
        if covered then keep seen rest else keep (cb :: seen) rest
  in
  { c with cubes = keep [] c.cubes }

let irredundant c =
  let full = to_truthtable c in
  let rec go kept = function
    | [] -> List.rev kept
    | cb :: rest ->
        let others =
          to_truthtable { c with cubes = List.rev_append kept rest }
        in
        if Truthtable.equal others full then go kept rest
        else go (cb :: kept) rest
  in
  { c with cubes = go [] (single_cube_containment c).cubes }

let pp ~vars fmt c =
  match c.cubes with
  | [] -> Format.pp_print_string fmt "0"
  | cubes ->
      Format.pp_print_list
        ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " + ")
        (Cube.pp ~vars) fmt cubes
