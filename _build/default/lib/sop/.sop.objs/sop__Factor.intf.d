lib/sop/factor.mli: Cover Format Truthtable
