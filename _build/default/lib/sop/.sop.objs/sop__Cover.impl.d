lib/sop/cover.ml: Cube Format List Truthtable
