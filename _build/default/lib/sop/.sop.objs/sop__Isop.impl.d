lib/sop/isop.ml: Cover Cube List Truthtable
