lib/sop/cube.ml: Format List Stdlib Truthtable
