lib/sop/cube.mli: Format Truthtable
