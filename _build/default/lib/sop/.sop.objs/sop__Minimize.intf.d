lib/sop/minimize.mli: Cover Cube Truthtable
