lib/sop/factor.ml: Cover Cube Format Hashtbl List Option Truthtable
