lib/sop/isop.mli: Cover Truthtable
