lib/sop/cover.mli: Cube Format Truthtable
