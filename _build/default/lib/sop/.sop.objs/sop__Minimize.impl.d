lib/sop/minimize.ml: Cover Cube List Truthtable
