(** The [resyn2]-style optimization script for AIGs.

    Stands in for ABC's `resyn2` in the paper's evaluation: an
    alternation of balancing (depth) and rewriting/refactoring (size)
    passes. *)

val run : ?check:bool -> ?effort:int -> Graph.t -> Graph.t
(** [run ?effort g] applies [effort] rounds (default 2) of
    balance; rewrite; refactor; balance; rewrite; balance.  [check]
    runs the script under {!Check.guarded} (pre/post lint + simulation
    miter); it defaults to the [MIG_CHECK] environment variable. *)

val balance_only : Graph.t -> Graph.t
val size_only : ?check:bool -> ?effort:int -> Graph.t -> Graph.t
(** Rewriting/refactoring without balancing (area-oriented script,
    used by the commercial-synthesis-tool proxy). *)
