(** Structural linter and transform guard for {!Graph} — the AIG0xx
    rules of {!Check_rules}.

    Mirrors [Mig.Check] for the baseline representation: {!lint}
    audits the stored graph against the invariants the constructors
    maintain (topological fanins, strash canonicity, folded trivial
    ANDs), and {!guarded} wraps an AIG pass with pre/post lint plus a
    random-simulation miter. *)

val lint : ?subject:string -> Graph.t -> Check_report.t
(** Run every AIG rule; clean iff no [Error] finding.  Dead nodes are
    [AIG006] warnings. *)

val verify_pre : name:string -> Graph.t -> unit
(** The input-side half of {!guarded}: lint the graph, raising
    {!Check_guard.Failed} on violations.  Exposed so callers timing a
    pass can keep guard overhead out of the reported runtime. *)

val verify_post :
  ?seed:int -> ?rounds:int -> name:string -> Graph.t -> Graph.t -> unit
(** The output-side half of {!guarded}: lint [out] and miter-compare
    it against the input graph. *)

val guarded :
  ?enabled:bool ->
  ?seed:int ->
  ?rounds:int ->
  name:string ->
  (Graph.t -> Graph.t) ->
  Graph.t ->
  Graph.t
(** [guarded ~name pass g] runs [pass g] under the checker: the input
    and output are linted and miter-compared by simulation; on any
    violation {!Check_guard.Failed} is raised with the failing stage,
    lint report and (for equivalence failures) the failing PO plus a
    counterexample input vector.  [enabled] defaults to
    {!Check_env.enabled} ([MIG_CHECK=1]); when false the pass runs
    bare, with zero overhead. *)
