module T = Lsutil.Telemetry

let tel g = Lsutil.Ctx.stats (Graph.ctx g)
let bud g = Lsutil.Ctx.budget (Graph.ctx g)
let flt g = Lsutil.Ctx.fault (Graph.ctx g)

(* AIG passes share the "transform" fault site with the MIG passes;
   there is no cheap silent corruption for an AIG, so [Corrupt]
   degrades to a raise. *)
let fault_transform g =
  match Lsutil.Fault.fire (flt g) "transform" with
  | None -> ()
  | Some Lsutil.Fault.Exhaust -> Lsutil.Budget.exhaust (bud g)
  | Some _ -> raise (Lsutil.Fault.Injected "transform")

(* Per-pass telemetry span: wall-clock plus nodes/depth in → out. *)
let traced name pass g =
  let t = tel g in
  T.span t name (fun () ->
      Lsutil.Budget.poll (bud g);
      if T.enabled t then begin
        T.record_int t "nodes_in" (Graph.size g);
        T.record_int t "depth_in" (Graph.depth g)
      end;
      let out = pass g in
      if Lsutil.Fault.enabled (flt g) then fault_transform g;
      if T.enabled t then begin
        T.record_int t "nodes_out" (Graph.size out);
        T.record_int t "depth_out" (Graph.depth out)
      end;
      out)

let balance = traced "aig:balance" Balance.run
let rewrite = traced "aig:rewrite" Rewrite.run
let refactor = traced "aig:refactor" Refactor.run

let optimize ~effort g =
  T.record_int (tel g) "effort" effort;
  let step g =
    let g = balance g in
    let g = rewrite g in
    let g = refactor g in
    let g = balance g in
    let g = rewrite g in
    balance g
  in
  let rec go n g = if n = 0 then g else go (n - 1) (step g) in
  go effort g

let run ?check ?(effort = 2) g =
  Check.guarded ?enabled:check ~name:"resyn" (traced "resyn" (optimize ~effort)) g

let balance_only g = balance g

let size_only ?check ?(effort = 2) g =
  let step g = refactor (rewrite g) in
  let rec go n g = if n = 0 then g else go (n - 1) (step g) in
  Check.guarded ?enabled:check ~name:"resyn:size_only"
    (traced "resyn:size_only" (go effort))
    g
