let optimize ~effort g =
  let step g =
    let g = Balance.run g in
    let g = Rewrite.run g in
    let g = Refactor.run g in
    let g = Balance.run g in
    let g = Rewrite.run g in
    Balance.run g
  in
  let rec go n g = if n = 0 then g else go (n - 1) (step g) in
  go effort g

let run ?check ?(effort = 2) g =
  Check.guarded ?enabled:check ~name:"resyn" (optimize ~effort) g

let balance_only g = Balance.run g

let size_only ?check ?(effort = 2) g =
  let step g = Refactor.run (Rewrite.run g) in
  let rec go n g = if n = 0 then g else go (n - 1) (step g) in
  Check.guarded ?enabled:check ~name:"resyn:size_only" (go effort) g
