(** AND-Inverter Graphs.

    The baseline representation the paper compares against (ABC's
    data structure): a DAG of two-input AND nodes with complementable
    edges.  Node 0 is the constant 0; primary inputs are nodes without
    fanins.  Structural hashing keeps the graph canonical up to local
    commutativity.  Signals are {!Network.Signal.t} values. *)

type t

module S := Network.Signal

val create : ?ctx:Lsutil.Ctx.t -> unit -> t
(** A fresh empty AIG.  Node allocations charge [ctx]'s budget
    (default: a fresh quiet context). *)

val ctx : t -> Lsutil.Ctx.t
(** The context the graph was created under; derived graphs
    ([cleanup], the resyn rebuilds) inherit it. *)

(** {1 Construction} *)

val const0 : t -> S.t
val const1 : t -> S.t
val add_pi : t -> string -> S.t
val add_po : t -> string -> S.t -> unit

val and_ : t -> S.t -> S.t -> S.t
val or_ : t -> S.t -> S.t -> S.t
val xor_ : t -> S.t -> S.t -> S.t
val mux : t -> S.t -> S.t -> S.t -> S.t
val maj : t -> S.t -> S.t -> S.t -> S.t
val and_n : t -> S.t list -> S.t
val or_n : t -> S.t list -> S.t
val xor_n : t -> S.t list -> S.t

val find_and : t -> S.t -> S.t -> S.t option
(** Structural-hash lookup without insertion. *)

(** {1 Access} *)

val num_nodes : t -> int
val size : t -> int
(** Number of AND nodes. *)

val is_pi : t -> int -> bool
val is_and : t -> int -> bool
val fanin0 : t -> int -> S.t
val fanin1 : t -> int -> S.t
val pis : t -> int list
val num_pis : t -> int
val pos : t -> (string * S.t) list
val num_pos : t -> int
val pi_name : t -> int -> string

val iter_ands : t -> (int -> S.t -> S.t -> unit) -> unit
(** Iterate AND nodes in topological order. *)

val fanout_counts : t -> int array

(** {1 Metrics} *)

val levels : t -> int array
val depth : t -> int

(** {1 Transformation} *)

val cleanup : t -> t
(** Reachable-only copy; all PIs preserved in order. *)

val pp_stats : Format.formatter -> t -> unit

(** {1 Checker support} *)

val strash_count : t -> int
(** Number of strash entries; equal to {!size} on a well-formed
    graph. *)

val san_tag : t -> Lsutil.San.tag
(** The graph's sanitizer tag; see {!Mig.Graph.san_tag}. *)

val raw_fanins : t -> int -> int * int
(** Raw fanin slots: signal integers for AND nodes, [-1] markers for
    PIs, [-2] for the constant node. *)

module Unsafe : sig
  (** Invariant-bypassing mutators for the checker's test-suite; see
      {!Mig.Graph.Unsafe} for the contract. *)

  val push_node : t -> S.t -> S.t -> int
  val push_raw : t -> int -> int -> int
  val strash_add : t -> S.t * S.t -> int -> unit
end
