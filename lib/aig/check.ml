module S = Network.Signal
module G = Graph
module R = Check_report

let lint ?(subject = "aig") g =
  let r = R.create ~subject in
  let nn = G.num_nodes g in
  let in_range id = id >= 0 && id < nn in
  (* node 0 is the constant *)
  (if nn = 0 then R.error r ~rule:"AIG005" "empty graph: no constant node"
   else
     let f0, f1 = G.raw_fanins g 0 in
     if f0 <> -2 || f1 <> -2 then
       R.error r ~node:0 ~rule:"AIG005" "node 0 is not the constant");
  let and_count = ref 0 in
  for id = 1 to nn - 1 do
    let f0, f1 = G.raw_fanins g id in
    if f0 = -2 || f1 = -2 then
      R.error r ~node:id ~rule:"AIG005" "extra constant node"
    else if f0 = -1 || f1 = -1 then begin
      if f0 <> -1 || f1 <> -1 then
        R.error r ~node:id ~rule:"AIG002" "inconsistent PI slot markers"
    end
    else begin
      incr and_count;
      let a = S.unsafe_of_int f0 and b = S.unsafe_of_int f1 in
      let ok = ref true in
      List.iter
        (fun s ->
          let f = S.node s in
          if not (in_range f) then begin
            ok := false;
            R.error r ~node:id ~rule:"AIG002" "dangling fanin id %d" f
          end
          else if f >= id then begin
            ok := false;
            R.error r ~node:id ~rule:"AIG001"
              "fanin %d not topologically before the node" f
          end)
        [ a; b ];
      if !ok then begin
        let foldable =
          if S.node a = 0 || S.node b = 0 then Some "constant fanin"
          else if S.equal a b then Some "equal fanins"
          else if S.equal a (S.not_ b) then Some "complementary fanins"
          else None
        in
        (match foldable with
        | Some why -> R.error r ~node:id ~rule:"AIG004" "collapsible AND: %s" why
        | None ->
            if f0 > f1 then
              R.error r ~node:id ~rule:"AIG004" "fanins not in key order");
        if foldable = None then
          match G.find_and g a b with
          | Some s when S.node s = id && not (S.is_complement s) -> ()
          | Some s ->
              R.error r ~node:id ~rule:"AIG003"
                "strash key maps to node %d (structural duplicate)" (S.node s)
          | None -> R.error r ~node:id ~rule:"AIG003" "node missing from strash"
      end
    end
  done;
  if G.strash_count g <> !and_count then
    R.error r ~rule:"AIG003" "strash has %d entries for %d AND nodes (stale keys)"
      (G.strash_count g) !and_count;
  (* PI integrity *)
  let seen_names = Hashtbl.create 16 in
  List.iter
    (fun id ->
      if not (in_range id) then
        R.error r ~node:id ~rule:"AIG005" "PI list entry out of range"
      else if not (G.is_pi g id) then
        R.error r ~node:id ~rule:"AIG005" "PI list entry is not a PI"
      else
        match G.pi_name g id with
        | name ->
            if Hashtbl.mem seen_names name then
              R.error r ~node:id ~rule:"AIG005" "duplicate PI name %S" name
            else Hashtbl.add seen_names name ()
        | exception Invalid_argument _ ->
            R.error r ~node:id ~rule:"AIG005" "PI without a name")
    (G.pis g);
  let pi_nodes = ref 0 in
  for id = 1 to nn - 1 do
    if G.is_pi g id then incr pi_nodes
  done;
  if !pi_nodes <> G.num_pis g then
    R.error r ~rule:"AIG005" "%d PI nodes but %d PI list entries" !pi_nodes
      (G.num_pis g);
  (* PO integrity *)
  let seen_pos = Hashtbl.create 16 in
  List.iter
    (fun (name, s) ->
      if not (in_range (S.node s)) then
        R.error r ~rule:"AIG002" "PO %S drives dangling id %d" name (S.node s);
      if Hashtbl.mem seen_pos name then
        R.error r ~rule:"AIG005" "duplicate PO name %S" name
      else Hashtbl.add seen_pos name ())
    (G.pos g);
  (* dead-node accounting *)
  let reachable = Array.make (max nn 1) false in
  let rec visit id =
    if in_range id && not reachable.(id) then begin
      reachable.(id) <- true;
      if G.is_and g id then begin
        visit (S.node (G.fanin0 g id));
        visit (S.node (G.fanin1 g id))
      end
    end
  in
  List.iter (fun (_, s) -> visit (S.node s)) (G.pos g);
  let dead = ref 0 in
  for id = 1 to nn - 1 do
    if G.is_and g id && not reachable.(id) then incr dead
  done;
  if !dead > 0 then
    R.warning r ~rule:"AIG006" "%d dead AND node(s); cleanup would remove them"
      !dead;
  r

module T = Lsutil.Telemetry

let tel g = Lsutil.Ctx.stats (G.ctx g)

let verify_pre ~name g =
  let t = tel g in
  T.span t "guard:pre_lint" (fun () ->
      let module Gd = Check_guard in
      let pre = lint ~subject:(Printf.sprintf "aig:pre %s" name) g in
      if not (R.is_clean pre) then begin
        T.count t "guard.fail";
        Gd.fail { name; stage = Gd.Pre_lint; report = Some pre; cex = None }
      end)

let verify_post ?(seed = 0xa16c) ?(rounds = 64) ~name g out =
  let t = tel g in
  T.span t "guard:post" (fun () ->
      let module Gd = Check_guard in
      T.span t "guard:post_lint" (fun () ->
          let post = lint ~subject:(Printf.sprintf "aig:post %s" name) out in
          if not (R.is_clean post) then begin
            T.count t "guard.fail";
            Gd.fail { name; stage = Gd.Post_lint; report = Some post; cex = None }
          end);
      T.span t "guard:miter" (fun () ->
          let na = Convert.to_network g and nb = Convert.to_network out in
          if not (Network.Simulate.same_interface na nb) then begin
            let r = R.create ~subject:(Printf.sprintf "aig:post %s" name) in
            R.error r ~rule:"AIG005" "pass changed the PI/PO interface";
            T.count t "guard.fail";
            Gd.fail { name; stage = Gd.Equivalence; report = Some r; cex = None }
          end;
          if not (Network.Simulate.equivalent ~seed na nb) then begin
            T.count t "guard.fail";
            Gd.fail
              {
                name;
                stage = Gd.Equivalence;
                report = None;
                cex = Network.Simulate.counterexample ~rounds ~seed na nb;
              }
          end);
      T.count t "guard.pass")

let guarded ?enabled ?seed ?rounds ~name pass g =
  if not (Check_env.resolve ~default:(Lsutil.Ctx.check (G.ctx g)) enabled)
  then pass g
  else begin
    verify_pre ~name g;
    let out = pass g in
    verify_post ?seed ?rounds ~name g out;
    out
  end
