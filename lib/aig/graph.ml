module S = Network.Signal
module Vec = Lsutil.Vec

(* fanin0 = -1 marks a PI; fanin0 = -2 marks the constant node. *)
type t = {
  ctx : Lsutil.Ctx.t;
  bud : Lsutil.Budget.t; (* alias into [ctx] for the hot charge site *)
  san : Lsutil.San.tag; (* shared with [f0]/[f1]; immediate when off *)
  f0 : int Vec.t;
  f1 : int Vec.t;
  strash : (int * int, int) Hashtbl.t;
  names : (int, string) Hashtbl.t;
  mutable pi_ids : int list; (* reversed *)
  mutable po_list : (string * S.t) list; (* reversed *)
}

let create ?ctx () =
  let ctx = match ctx with Some c -> c | None -> Lsutil.Ctx.create () in
  let san = Lsutil.San.register (Lsutil.Ctx.san ctx) ~name:"aig.graph" in
  let g =
    {
      ctx;
      bud = Lsutil.Ctx.budget ctx;
      san;
      f0 = Vec.create ~san ();
      f1 = Vec.create ~san ();
      strash = Hashtbl.create 4096;
      names = Hashtbl.create 64;
      pi_ids = [];
      po_list = [];
    }
  in
  ignore (Vec.push g.f0 (-2));
  ignore (Vec.push g.f1 (-2));
  g

let ctx g = g.ctx

let const0 _ = S.make 0 false
let const1 _ = S.make 0 true

let add_pi g name =
  let id = Vec.push g.f0 (-1) in
  ignore (Vec.push g.f1 (-1));
  g.pi_ids <- id :: g.pi_ids;
  Hashtbl.replace g.names id name;
  S.make id false

let add_po g name s = g.po_list <- (name, s) :: g.po_list

let is_c0 s = S.equal s (S.make 0 false)
let is_c1 s = S.equal s (S.make 0 true)

let key a b =
  let a = (a : S.t :> int) and b = (b : S.t :> int) in
  if a <= b then (a, b) else (b, a)

let find_and g a b =
  (* the strash is a Hashtbl, not a sanitized Vec: check it here *)
  Lsutil.San.read_access g.san;
  if is_c0 a || is_c0 b then Some (const0 g)
  else if is_c1 a then Some b
  else if is_c1 b then Some a
  else if S.equal a b then Some a
  else if S.equal a (S.not_ b) then Some (const0 g)
  else
    match Hashtbl.find_opt g.strash (key a b) with
    | Some id -> Some (S.make id false)
    | None -> None

let and_ g a b =
  match find_and g a b with
  | Some s -> s
  | None ->
      (* charge the AIG arena to the owning context's budget, like
         Mig.Graph's push_node (no-op when no budget is installed) *)
      Lsutil.Budget.note_nodes g.bud 1;
      let ka, kb = key a b in
      let id = Vec.push g.f0 ka in
      ignore (Vec.push g.f1 kb);
      Hashtbl.add g.strash (ka, kb) id;
      S.make id false

let or_ g a b = S.not_ (and_ g (S.not_ a) (S.not_ b))

let xor_ g a b =
  (* a(+)b = !( !(a!b) * !( !a b) ) *)
  let p = and_ g a (S.not_ b) in
  let q = and_ g (S.not_ a) b in
  S.not_ (and_ g (S.not_ p) (S.not_ q))

let mux g s t e = or_ g (and_ g s t) (and_ g (S.not_ s) e)

let maj g a b c =
  (* M(a,b,c) = ab + c(a+b): four AND nodes *)
  or_ g (and_ g a b) (and_ g c (or_ g a b))

let rec tree op g = function
  | [] -> invalid_arg "Aig: empty tree"
  | [ x ] -> x
  | xs ->
      let rec pair = function
        | a :: b :: rest -> op g a b :: pair rest
        | rest -> rest
      in
      tree op g (pair xs)

let and_n g = function [] -> const1 g | xs -> tree and_ g xs
let or_n g = function [] -> const0 g | xs -> tree or_ g xs
let xor_n g = function [] -> const0 g | xs -> tree xor_ g xs

let num_nodes g = Vec.length g.f0
let is_pi g i = Vec.get g.f0 i = -1
let is_and g i = Vec.get g.f0 i >= 0
let fanin0 g i = S.unsafe_of_int (Vec.get g.f0 i)
let fanin1 g i = S.unsafe_of_int (Vec.get g.f1 i)
let pis g = List.rev g.pi_ids
let num_pis g = List.length g.pi_ids
let pos g = List.rev g.po_list
let num_pos g = List.length g.po_list

let pi_name g i =
  match Hashtbl.find_opt g.names i with
  | Some n when is_pi g i -> n
  | _ -> invalid_arg "Aig.pi_name: not a PI"

let iter_ands g f =
  for i = 0 to num_nodes g - 1 do
    if is_and g i then f i (fanin0 g i) (fanin1 g i)
  done

let size g =
  let c = ref 0 in
  iter_ands g (fun _ _ _ -> incr c);
  !c

let fanout_counts g =
  let counts = Array.make (num_nodes g) 0 in
  iter_ands g (fun _ a b ->
      counts.(S.node a) <- counts.(S.node a) + 1;
      counts.(S.node b) <- counts.(S.node b) + 1);
  List.iter (fun (_, s) -> counts.(S.node s) <- counts.(S.node s) + 1) (pos g);
  counts

let levels g =
  let lv = Array.make (num_nodes g) 0 in
  iter_ands g (fun i a b ->
      lv.(i) <- 1 + max lv.(S.node a) lv.(S.node b));
  lv

let depth g =
  let lv = levels g in
  List.fold_left (fun acc (_, s) -> max acc lv.(S.node s)) 0 (pos g)

let cleanup g =
  Lsutil.San.read_access g.san;
  let fresh = create ~ctx:g.ctx () in
  let map = Array.make (num_nodes g) None in
  map.(0) <- Some (const0 fresh);
  List.iter (fun id -> map.(id) <- Some (add_pi fresh (pi_name g id))) (pis g);
  let lookup s =
    match map.(S.node s) with
    | Some s' -> S.xor_complement s' (S.is_complement s)
    | None -> assert false
  in
  let rec build id =
    match map.(id) with
    | Some _ -> ()
    | None ->
        let a = fanin0 g id and b = fanin1 g id in
        build (S.node a);
        build (S.node b);
        map.(id) <- Some (and_ fresh (lookup a) (lookup b))
  in
  List.iter
    (fun (name, s) ->
      build (S.node s);
      add_po fresh name (lookup s))
    (pos g);
  (* ids of [g] do not name nodes of [fresh]: a renumbering event *)
  Lsutil.San.bump ~reason:"Aig.Graph.cleanup" g.san;
  fresh

let pp_stats fmt g =
  Format.fprintf fmt "i/o = %d/%d, ands = %d, depth = %d" (num_pis g)
    (num_pos g) (size g) (depth g)

(* ----- checker support ----- *)

let strash_count g = Hashtbl.length g.strash
let raw_fanins g i = (Vec.get g.f0 i, Vec.get g.f1 i)
let san_tag g = g.san

module Unsafe = struct
  let push_node g a b =
    let id = Vec.push g.f0 (a : S.t :> int) in
    ignore (Vec.push g.f1 (b : S.t :> int));
    id

  let push_raw g f0 f1 =
    let id = Vec.push g.f0 f0 in
    ignore (Vec.push g.f1 f1);
    id

  let strash_add g (a, b) id =
    Lsutil.San.write_access g.san;
    Hashtbl.add g.strash ((a : S.t :> int), (b : S.t :> int)) id
end
