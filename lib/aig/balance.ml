module G = Graph
module S = Network.Signal

let run g =
  let fresh = G.create ~ctx:(G.ctx g) () in
  let map = Array.make (G.num_nodes g) None in
  map.(0) <- Some (G.const0 fresh);
  List.iter (fun id -> map.(id) <- Some (G.add_pi fresh (G.pi_name g id))) (G.pis g);
  let fanout = G.fanout_counts g in
  let new_levels = Hashtbl.create 1024 in
  let level_of s =
    Option.value ~default:0 (Hashtbl.find_opt new_levels (S.node s))
  in
  let rec build s : S.t =
    let id = S.node s in
    let mapped =
      match map.(id) with
      | Some m -> m
      | None ->
          (* Collect the maximal AND-tree rooted here.  Descend through
             regular edges into single-fanout AND nodes; everything else
             becomes a leaf. *)
          let leaves = ref [] in
          let rec collect s top =
            let id = S.node s in
            if
              (not (S.is_complement s))
              && G.is_and g id
              && (top || fanout.(id) = 1)
            then begin
              collect (G.fanin0 g id) false;
              collect (G.fanin1 g id) false
            end
            else leaves := build s :: !leaves
          in
          collect (S.make id false) true;
          (* Huffman-style combine: repeatedly AND the two shallowest. *)
          let cmp a b = compare (level_of a) (level_of b) in
          let rec combine = function
            | [] -> G.const1 fresh
            | [ x ] -> x
            | xs ->
                let sorted = List.sort cmp xs in
                (match sorted with
                | a :: b :: rest ->
                    let ab = G.and_ fresh a b in
                    Hashtbl.replace new_levels (S.node ab)
                      (1 + max (level_of a) (level_of b));
                    combine (ab :: rest)
                | _ -> assert false)
          in
          let m = combine !leaves in
          map.(id) <- Some m;
          m
    in
    S.xor_complement mapped (S.is_complement s)
  in
  List.iter (fun (name, s) -> G.add_po fresh name (build s)) (G.pos g);
  G.cleanup fresh
