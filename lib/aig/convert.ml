module N = Network.Graph
module S = Network.Signal

let of_network ?ctx net =
  let g = Graph.create ?ctx () in
  let map = Array.make (N.num_nodes net) (Graph.const0 g) in
  List.iter (fun id -> map.(id) <- Graph.add_pi g (N.pi_name net id)) (N.pis net);
  let value s = S.xor_complement map.(S.node s) (S.is_complement s) in
  N.iter_gates net (fun i fn fs ->
      let v k = value fs.(k) in
      map.(i) <-
        (match fn with
        | N.And -> Graph.and_ g (v 0) (v 1)
        | N.Or -> Graph.or_ g (v 0) (v 1)
        | N.Xor -> Graph.xor_ g (v 0) (v 1)
        | N.Maj -> Graph.maj g (v 0) (v 1) (v 2)
        | N.Mux -> Graph.mux g (v 0) (v 1) (v 2)));
  List.iter (fun (name, s) -> Graph.add_po g name (value s)) (N.pos net);
  g

let to_network g =
  let net = N.create () in
  let map = Array.make (Graph.num_nodes g) (N.const0 net) in
  List.iter (fun id -> map.(id) <- N.add_pi net (Graph.pi_name g id)) (Graph.pis g);
  let value s = S.xor_complement map.(S.node s) (S.is_complement s) in
  Graph.iter_ands g (fun i a b -> map.(i) <- N.and_ net (value a) (value b));
  List.iter (fun (name, s) -> N.add_po net name (value s)) (Graph.pos g);
  net
