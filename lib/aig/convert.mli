(** Conversions between the generic network IR and AIGs. *)

val of_network : ?ctx:Lsutil.Ctx.t -> Network.Graph.t -> Graph.t
(** Decompose every primitive into AND/INV structure.  XOR costs
    three ANDs, MAJ four, MUX three. *)

val to_network : Graph.t -> Network.Graph.t
(** One 2-input AND gate per AIG node. *)
