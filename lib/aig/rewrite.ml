module G = Graph
module S = Network.Signal
module F = Sop.Factor

type candidate = { root : int; leaves : Cut.t; form : F.form }

(* Number of 2-input gates needed by a factored form, assuming no
   sharing: one gate per binary combination. *)
let rec form_cost = function
  | F.Const _ -> 0
  | F.Lit _ -> 0
  | F.And fs | F.Or fs ->
      List.fold_left (fun acc f -> acc + form_cost f) (List.length fs - 1) fs

let build_form g leaf_sigs form =
  let rec go = function
    | F.Const b -> if b then G.const1 g else G.const0 g
    | F.Lit (i, pos) -> S.xor_complement leaf_sigs.(i) (not pos)
    | F.And fs -> G.and_n g (List.map go fs)
    | F.Or fs -> G.or_n g (List.map go fs)
  in
  go form

let rebuild g plan =
  let fresh = G.create ~ctx:(G.ctx g) () in
  let map = Array.make (G.num_nodes g) None in
  map.(0) <- Some (G.const0 fresh);
  List.iter (fun id -> map.(id) <- Some (G.add_pi fresh (G.pi_name g id))) (G.pis g);
  let rec build id =
    match map.(id) with
    | Some s -> s
    | None ->
        let s =
          match plan id with
          | Some cand ->
              let leaf_sigs = Array.map build cand.leaves in
              build_form fresh leaf_sigs cand.form
          | None ->
              let value s = S.xor_complement (build (S.node s)) (S.is_complement s) in
              G.and_ fresh (value (G.fanin0 g id)) (value (G.fanin1 g id))
        in
        map.(id) <- Some s;
        s
  in
  let value s = S.xor_complement (build (S.node s)) (S.is_complement s) in
  List.iter (fun (name, s) -> G.add_po fresh name (value s)) (G.pos g);
  G.cleanup fresh

let candidate_for g fanout cuts id =
  let best = ref None in
  List.iter
    (fun cut ->
      let nleaves = Array.length cut in
      if nleaves >= 2 && not (nleaves = 1 && cut.(0) = id) then begin
        let tt = Cut.cut_function g id cut in
        let form = F.factor (Sop.Isop.compute tt) in
        let cost = form_cost form in
        let freed = Cut.mffc_size g ~fanout id cut in
        let gain = freed - cost in
        match !best with
        | Some (bg, _) when bg >= gain -> ()
        | _ ->
            if gain > 0 then best := Some (gain, { root = id; leaves = cut; form })
      end)
    cuts;
  Option.map snd !best

let run ?(k = 4) ?(max_cuts = 8) g =
  let cuts = Cut.enumerate ~k ~max_cuts g in
  let fanout = G.fanout_counts g in
  let plan_tbl = Hashtbl.create 256 in
  for id = 0 to G.num_nodes g - 1 do
    if G.is_and g id then
      match candidate_for g fanout cuts.(id) id with
      | Some cand -> Hashtbl.replace plan_tbl id cand
      | None -> ()
  done;
  let result = rebuild g (Hashtbl.find_opt plan_tbl) in
  if G.size result <= G.size g then result else G.cleanup g
