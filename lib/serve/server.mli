(** The long-lived optimization daemon ([mighty serve]).

    Architecture (DESIGN.md §17): one accept loop feeding a {e bounded}
    admission queue of accepted connections, drained by a pool of
    worker domains.  Every request gets a {e fresh} [Lsutil.Ctx] — the
    reentrancy contract proven by [Flow.Batch] — and runs the
    fault-tolerant [Flow.Engine] under the request's own
    deadline/node-cap budget, so a slow or faulted request degrades to
    a verified best-so-far result ([degraded:true]) instead of a
    dropped connection.

    Robustness invariants the test-suite and the CI chaos leg pin:
    - malformed bytes, truncated frames and oversized lines produce
      structured protocol errors on the same connection, which stays
      usable;
    - a full queue is answered at accept time with a structured
      [overloaded] rejection carrying a [retry_after_ms] hint
      (admission control, never silent backpressure);
    - a client disconnect mid-request is absorbed (SIGPIPE ignored,
      writes fail cleanly, the worker moves on);
    - a drain ({!drain}, or SIGTERM/SIGINT under {!run}) stops
      accepting, answers everything already admitted, flushes the
      cache delta, and {!join}/{!run} return — the daemon exits 0;
    - no response ever carries an unverified graph: [blif] is emitted
      only when the engine's unconditional re-verification passed. *)

type addr = [ `Tcp of string * int | `Unix of string ]

type config = {
  addr : addr;
  queue_capacity : int;  (** admission queue bound (>= 1) *)
  workers : int;
      (** worker domains; [0] is a test hook — connections are
          admitted but never served until drain answers them *)
  default_timeout_s : float option;
      (** per-request deadline cap: requests without [timeout_s] get
          this; requests with one are clamped to it *)
  max_line_bytes : int;  (** request-line size limit *)
  idle_timeout_s : float;  (** per-connection socket read/write timeout *)
  cache : Flow.Cache.t option;
      (** shared read-mostly rewrite cache; per-request forks, deltas
          flushed (absorbed + saved) at drain *)
  check : bool;  (** run every request under the transform guard *)
  san : bool;  (** arm the domain-ownership sanitizer per request *)
  seed : int;
}

val default_config : ?env:Lsutil.Env.t -> addr -> config
(** Queue capacity 64 (or [MIG_SERVE_QUEUE]), workers
    [Domain.recommended_domain_count () - 1] (min 1), 30 s request
    cap, 8 MiB lines, 30 s idle timeout, check/san/seed from the
    environment record. *)

type t
(** A running server handle. *)

val launch : config -> t
(** Bind, spawn the worker pool and the accept loop on background
    domains, return immediately (the in-process form used by tests
    and the bench load section).
    @raise Unix.Unix_error when the address cannot be bound. *)

val run : ?handle_signals:bool -> config -> unit
(** Bind and serve on the {e calling} domain until drained: the
    blocking form behind [mighty serve].  With [handle_signals]
    (default [true]) SIGTERM and SIGINT trigger a graceful drain, and
    SIGPIPE is ignored for the process.  Returns after the drain
    completed and the cache delta was flushed. *)

val bound_addr : t -> addr
(** The actual address — resolves a requested TCP port [0] to the
    ephemeral port the kernel picked. *)

val drain : t -> unit
(** Request a graceful drain: stop accepting, finish everything
    admitted, then let {!join} return.  Idempotent, non-blocking,
    safe from a signal handler. *)

val draining : t -> bool

val join : t -> unit
(** Wait for the accept loop and every worker to finish (after
    {!drain}), answer any still-queued connections with a [draining]
    error, flush the cache delta, release the socket. *)

val served : t -> int
(** Requests answered with a terminal frame so far. *)

val rejected : t -> int
(** Connections refused by admission control so far. *)
