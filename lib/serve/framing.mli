(** Incremental newline-delimited framing with an oversize guard.

    A {!t} buffers raw bytes as they arrive from a socket and cuts
    them into lines at ['\n'] (a trailing ['\r'] is stripped, so CRLF
    peers work).  A line longer than [max_line_bytes] is {e not}
    buffered: the decoder switches to discard mode, swallows bytes
    until the next newline, and then emits a single {!event.Oversized}
    — so a hostile or buggy peer cannot balloon server memory, and the
    stream re-synchronizes on the very next line.

    Pure state machine over bytes: no I/O, no exceptions, no
    allocation proportional to anything but the accepted line — which
    is what lets the fuzz suite drive it with arbitrary chunkings of
    arbitrary byte soup and assert chunking-independence. *)

type t

val create : ?max_line_bytes:int -> unit -> t
(** Default limit: 8 MiB. *)

type event =
  | Line of string  (** a complete line (newline stripped, within limit) *)
  | Oversized of int
      (** a line exceeded the limit and was discarded; carries the
          total byte length of the discarded line *)

val feed : t -> bytes -> int -> int -> event list
(** [feed t buf pos len] consumes [len] bytes of [buf] at [pos] and
    returns the completed events, in order.  The chunking is
    irrelevant: any split of the same byte stream yields the same
    event sequence. *)

val feed_string : t -> string -> event list

val pending : t -> int
(** Bytes buffered (or being discarded) awaiting a newline. *)

val max_line_bytes : t -> int
