(* Load/chaos generator.  Each client domain owns its connection, its
   Rng and its latency array; the coordinator merges after joining —
   the same share-nothing shape as Flow.Batch. *)

module P = Protocol

type options = {
  clients : int;
  requests_per_client : int;
  circuits : P.circuit list;
  goal : [ `Size | `Depth | `Activity | `Search ];
  effort : int;
  timeout_s : float option;
  fault_every : int option;
  fault_spec : string;
  seed : int;
}

let default_options =
  {
    clients = 8;
    requests_per_client = 4;
    circuits = [ P.Bench "b9"; P.Bench "count"; P.Bench "cla" ];
    goal = `Size;
    effort = 1;
    timeout_s = Some 20.;
    fault_every = None;
    fault_spec = "seed=7:kind=any:sites=transform,strash";
    seed = 1;
  }

type stats = {
  sent : int;
  ok : int;
  degraded : int;
  server_errors : int;
  failures : string list;
  p50_ms : float;
  p99_ms : float;
  mean_ms : float;
  max_ms : float;
  wall_s : float;
}

type client_tally = {
  mutable c_sent : int;
  mutable c_ok : int;
  mutable c_degraded : int;
  mutable c_errors : int;
  mutable c_failures : string list;
  mutable c_lat_ms : float list;
}

let run_client addr opts idx =
  let tally =
    {
      c_sent = 0;
      c_ok = 0;
      c_degraded = 0;
      c_errors = 0;
      c_failures = [];
      c_lat_ms = [];
    }
  in
  let rng = Lsutil.Rng.create (opts.seed + idx) in
  (match Client.connect ~rng addr with
  | Error e -> tally.c_failures <- [ Printf.sprintf "client %d: %s" idx e ]
  | Ok conn ->
      let ncirc = List.length opts.circuits in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          for k = 0 to opts.requests_per_client - 1 do
            let circuit = List.nth opts.circuits ((idx + k) mod ncirc) in
            let fault =
              match opts.fault_every with
              | Some n when n > 0 && (k + 1) mod n = 0 -> Some opts.fault_spec
              | _ -> None
            in
            let req =
              match
                P.optimize
                  ~id:(Printf.sprintf "c%d-r%d" idx k)
                  ~goal:opts.goal ~effort:opts.effort ?timeout_s:opts.timeout_s
                  ?fault circuit
              with
              | P.Optimize r -> r
              | P.Ping -> assert false
            in
            tally.c_sent <- tally.c_sent + 1;
            let outcome, time_s =
              Lsutil.Telemetry.time (fun () -> Client.optimize conn req)
            in
            tally.c_lat_ms <- (time_s *. 1000.) :: tally.c_lat_ms;
            match outcome with
            | Ok rf ->
                tally.c_ok <- tally.c_ok + 1;
                if rf.P.degraded then tally.c_degraded <- tally.c_degraded + 1
            | Error msg ->
                (* a structured server-side error (the chaos leg's
                   expected currency) is not a failure; only transport
                   or schema trouble is *)
                let structured =
                  List.exists
                    (fun code ->
                      let prefix = P.error_code_name code ^ ":" in
                      String.length msg >= String.length prefix
                      && String.sub msg 0 (String.length prefix) = prefix)
                    [
                      P.Bad_request; P.Protocol; P.Oversized; P.Overloaded;
                      P.Draining; P.Internal;
                    ]
                in
                if structured then tally.c_errors <- tally.c_errors + 1
                else
                  tally.c_failures <-
                    Printf.sprintf "client %d req %d: %s" idx k msg
                    :: tally.c_failures
          done));
  tally

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int (n - 1) +. 0.5)))

let run addr opts =
  if opts.circuits = [] then invalid_arg "Serve.Load: circuits";
  if opts.clients < 1 then invalid_arg "Serve.Load: clients";
  let tallies, wall_s =
    Lsutil.Telemetry.time (fun () ->
        let domains =
          List.init opts.clients (fun i ->
              Domain.spawn (fun () -> run_client addr opts i))
        in
        List.map Domain.join domains)
  in
  let lat =
    Array.of_list (List.concat_map (fun t -> t.c_lat_ms) tallies)
  in
  Array.sort compare lat;
  let sum name f = List.fold_left (fun a t -> a + f t) 0 name in
  let mean_ms =
    if Array.length lat = 0 then 0.
    else Array.fold_left ( +. ) 0. lat /. float_of_int (Array.length lat)
  in
  {
    sent = sum tallies (fun t -> t.c_sent);
    ok = sum tallies (fun t -> t.c_ok);
    degraded = sum tallies (fun t -> t.c_degraded);
    server_errors = sum tallies (fun t -> t.c_errors);
    failures = List.concat_map (fun t -> List.rev t.c_failures) tallies;
    p50_ms = percentile lat 0.5;
    p99_ms = percentile lat 0.99;
    mean_ms;
    max_ms = (if Array.length lat = 0 then 0. else lat.(Array.length lat - 1));
    wall_s;
  }

let stats_to_json s =
  let module J = Lsutil.Json in
  J.Obj
    [
      ("sent", J.Int s.sent);
      ("ok", J.Int s.ok);
      ("degraded", J.Int s.degraded);
      ("server_errors", J.Int s.server_errors);
      ("failures", J.List (List.map (fun f -> J.String f) s.failures));
      ("p50_ms", J.Float s.p50_ms);
      ("p99_ms", J.Float s.p99_ms);
      ("mean_ms", J.Float s.mean_ms);
      ("max_ms", J.Float s.max_ms);
      ("wall_s", J.Float s.wall_s);
    ]
