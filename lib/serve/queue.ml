(* Bounded MPMC ring buffer under one mutex.  The queue is the only
   structure the serve layer shares across domains, and it shares
   nothing but the items themselves: a connection handed to a worker
   is owned by that worker from the pop onward (DESIGN.md §17). *)

type 'a t = {
  slots : 'a option array;
  mutable head : int;  (* next pop position *)
  mutable size : int;
  mutable is_closed : bool;
  lock : Mutex.t;
  nonempty : Condition.t;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Serve.Queue.create";
  {
    slots = Array.make capacity None;
    head = 0;
    size = 0;
    is_closed = false;
    lock = Mutex.create ();
    nonempty = Condition.create ();
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let capacity t = Array.length t.slots

let try_push t v =
  with_lock t (fun () ->
      if t.is_closed || t.size >= Array.length t.slots then false
      else begin
        let tail = (t.head + t.size) mod Array.length t.slots in
        t.slots.(tail) <- Some v;
        t.size <- t.size + 1;
        Condition.signal t.nonempty;
        true
      end)

let pop_locked t =
  match t.slots.(t.head) with
  | None -> assert false
  | Some v ->
      t.slots.(t.head) <- None;
      t.head <- (t.head + 1) mod Array.length t.slots;
      t.size <- t.size - 1;
      v

let pop t =
  with_lock t (fun () ->
      let rec wait () =
        if t.size > 0 then Some (pop_locked t)
        else if t.is_closed then None
        else begin
          Condition.wait t.nonempty t.lock;
          wait ()
        end
      in
      wait ())

let try_pop t =
  with_lock t (fun () -> if t.size > 0 then Some (pop_locked t) else None)

let close t =
  with_lock t (fun () ->
      t.is_closed <- true;
      Condition.broadcast t.nonempty)

let length t = with_lock t (fun () -> t.size)
let closed t = with_lock t (fun () -> t.is_closed)
