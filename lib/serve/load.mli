(** Concurrent load (and chaos) harness for a running daemon.

    Spawns [clients] domains, each holding one connection and pumping
    [requests_per_client] optimize requests round-robin over
    [circuits]; latencies are pooled and summarized as
    p50/p99/mean/max.  With [fault_every = Some n], every n-th request
    of each client carries [fault_spec] — the chaos leg: the daemon
    must keep answering structured frames while faults fire in-flight.

    Every frame each client receives is already schema-validated by
    {!Client}; any transport or validation failure lands in
    [failures], which CI asserts is empty. *)

type options = {
  clients : int;
  requests_per_client : int;
  circuits : Protocol.circuit list;  (** round-robin, must be non-empty *)
  goal : [ `Size | `Depth | `Activity | `Search ];
  effort : int;
  timeout_s : float option;  (** per-request budget sent with each request *)
  fault_every : int option;  (** chaos: arm [fault_spec] every n-th request *)
  fault_spec : string;
  seed : int;  (** client backoff jitter (client [i] uses [seed + i]) *)
}

val default_options : options
(** 8 clients x 4 requests over [b9]/[count]/[cla], goal [`Size],
    effort 1, 20 s budget, no chaos, seed 1. *)

type stats = {
  sent : int;
  ok : int;  (** result frames received *)
  degraded : int;  (** of which [degraded:true] *)
  server_errors : int;  (** structured terminal error frames *)
  failures : string list;  (** transport/validation failures: CI wants [] *)
  p50_ms : float;
  p99_ms : float;
  mean_ms : float;
  max_ms : float;
  wall_s : float;
}

val run : Server.addr -> options -> stats

val stats_to_json : stats -> Lsutil.Json.t
(** The [serve] section records of [BENCH_serve.json]
    ([bench/json_lint] checks this shape). *)
