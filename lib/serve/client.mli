(** The bundled [mighty-serve/1] client.

    A thin, blocking, single-connection client used by the [mighty]
    CLI, the load harness and the tests.  Connection establishment
    retries transient failures — refused/overloaded/draining — through
    {!Lsutil.Retry} with bounded exponential backoff and deterministic
    jitter; an [overloaded] rejection's [retry_after_ms] hint becomes
    the backoff floor for the next attempt.

    Every frame read off the wire is {!Protocol.validate_frame}d
    before it is handed to the caller, so a misbehaving server is a
    structured [Error], never a surprise. *)

type t
(** One open connection. *)

val connect :
  ?retry:Lsutil.Retry.policy ->
  ?rng:Lsutil.Rng.t ->
  ?timeout_s:float ->
  Server.addr ->
  (t, string) result
(** Connect, retrying refusals and [overloaded]/[draining] greetings
    under [retry] (default {!Lsutil.Retry.default_policy}).  [rng]
    drives the backoff jitter (default: seeded from the policy
    defaults, seed 1).  [timeout_s] is the per-socket read/write
    timeout (default 30 s). *)

val close : t -> unit

val request :
  ?on_telemetry:(Protocol.frame -> unit) ->
  t ->
  Protocol.req ->
  (Protocol.frame, string) result
(** Send one request and read frames until the terminal one —
    a result, pong, or error frame — which is returned.  Telemetry
    frames stream through [on_telemetry] (default: dropped).  [Error]
    covers transport failures and frames that fail
    {!Protocol.validate_frame}. *)

val ping : t -> (Lsutil.Json.t, string) result
(** {!request} with [Ping]; returns the pong body. *)

val optimize :
  ?on_telemetry:(Protocol.frame -> unit) ->
  t ->
  Protocol.request ->
  (Protocol.result_frame, string) result
(** {!request} with [Optimize]; unwraps the result frame.  A terminal
    error frame becomes [Error "code: message"]. *)
