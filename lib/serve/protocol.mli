(** The [mighty-serve/1] wire protocol: newline-delimited JSON.

    One request per line; the daemon answers each request with zero or
    more {e telemetry} frames followed by exactly one terminal frame —
    a {e result}, a {e pong}, or a structured {e error}.  Every frame
    is a single JSON line carrying [{"schema":"mighty-serve/1",
    "type":...}]; unknown request fields are ignored (forward
    compatibility), malformed or missing required fields are a
    [Bad_request]/[Protocol] error, never an exception (DESIGN.md
    §17 has the full schema).

    Decoding is total: {!parse_request} and {!decode_frame} return
    [Error] on every malformed input — raw byte soup, truncated JSON,
    unpaired surrogates — which is what the fuzz suite in
    [test_serve.ml] pins down. *)

val schema : string
(** ["mighty-serve/1"]. *)

type circuit =
  | Bench of string  (** a named Table-I benchmark ([Benchmarks.Suite]) *)
  | Blif of string  (** inline BLIF source *)
  | Verilog of string  (** inline structural Verilog source *)

type request = {
  id : string option;  (** echoed verbatim on every response frame *)
  circuit : circuit;
  goal : [ `Size | `Depth | `Activity | `Search ];
      (** [`Search]: orchestrated beam search ({!Flow.Orchestrate})
          instead of a fixed script *)
  effort : int;
  beam : int;  (** beam width, [`Search] goal only (default 2) *)
  timeout_s : float option;  (** per-request deadline (server may clamp) *)
  max_nodes : int option;
  fault : string option;  (** {!Lsutil.Fault} spec armed for this request *)
  emit : [ `None | `Blif ];  (** return the optimized circuit text *)
  stats : bool;  (** stream per-pass telemetry frames *)
}

type req = Optimize of request | Ping

type error_code =
  | Bad_request  (** well-formed frame, invalid content *)
  | Protocol  (** not a valid [mighty-serve/1] frame *)
  | Oversized  (** request line exceeded the server's byte limit *)
  | Overloaded  (** admission queue full; carries [retry_after_ms] *)
  | Draining  (** server is shutting down gracefully *)
  | Internal  (** isolated server-side failure *)

val error_code_name : error_code -> string
val error_code_of_name : string -> error_code option

(** {1 Requests} *)

val optimize :
  ?id:string ->
  ?goal:[ `Size | `Depth | `Activity | `Search ] ->
  ?effort:int ->
  ?beam:int ->
  ?timeout_s:float ->
  ?max_nodes:int ->
  ?fault:string ->
  ?emit:[ `None | `Blif ] ->
  ?stats:bool ->
  circuit ->
  req
(** Request builder with the protocol defaults (goal [`Size], effort
    2, beam 2, no budget, no fault, [`None] emit, stats off). *)

val request_to_json : req -> Lsutil.Json.t
val decode_request : Lsutil.Json.t -> (req, error_code * string) result

val parse_request : string -> (req, error_code * string) result
(** [decode_request] composed with the JSON parser; a parse failure is
    a [Protocol] error carrying the positioned diagnostic. *)

(** {1 Response frames} *)

type result_frame = {
  r_id : string option;
  size_in : int;
  depth_in : int;
  size_out : int;
  depth_out : int;
  degraded : bool;  (** budget/fault forced a best-so-far answer *)
  verified : bool;  (** final graph lint-clean and miter-equivalent *)
  rollbacks : int;
  time_s : float;
  blif : string option;  (** only when requested {e and} verified *)
  report : Lsutil.Json.t;  (** the full engine report *)
}

val result_to_json : result_frame -> Lsutil.Json.t

val telemetry_to_json :
  ?id:string -> event:string -> (string * Lsutil.Json.t) list -> Lsutil.Json.t

val error_to_json :
  ?id:string -> ?retry_after_ms:int -> error_code -> string -> Lsutil.Json.t

val pong_to_json :
  queue_depth:int ->
  queue_capacity:int ->
  workers:int ->
  served:int ->
  active:int ->
  draining:bool ->
  Lsutil.Json.t

(** {1 Client-side frame decoding} *)

type frame =
  | Telemetry of { f_id : string option; event : string; body : Lsutil.Json.t }
  | Result of result_frame
  | Error_frame of {
      e_id : string option;
      code : error_code;
      message : string;
      retry_after_ms : int option;
    }
  | Pong of Lsutil.Json.t

val decode_frame : Lsutil.Json.t -> (frame, string) result

val validate_frame : Lsutil.Json.t -> (unit, string) result
(** The response linter: checks the frame against the schema the
    daemon promises (schema tag, known type, required fields with the
    right JSON types).  The load harness and CI assert every received
    frame passes. *)
