(* The mighty-serve/1 wire protocol: total encode/decode over
   Lsutil.Json trees.  Decoding never raises — every malformed shape
   maps to a structured error — because the daemon feeds it raw
   network bytes. *)

module J = Lsutil.Json

let schema = "mighty-serve/1"

type circuit = Bench of string | Blif of string | Verilog of string

type request = {
  id : string option;
  circuit : circuit;
  goal : [ `Size | `Depth | `Activity | `Search ];
  effort : int;
  beam : int;
  timeout_s : float option;
  max_nodes : int option;
  fault : string option;
  emit : [ `None | `Blif ];
  stats : bool;
}

type req = Optimize of request | Ping

type error_code =
  | Bad_request
  | Protocol
  | Oversized
  | Overloaded
  | Draining
  | Internal

let error_code_name = function
  | Bad_request -> "bad_request"
  | Protocol -> "protocol"
  | Oversized -> "oversized"
  | Overloaded -> "overloaded"
  | Draining -> "draining"
  | Internal -> "internal"

let error_code_of_name = function
  | "bad_request" -> Some Bad_request
  | "protocol" -> Some Protocol
  | "oversized" -> Some Oversized
  | "overloaded" -> Some Overloaded
  | "draining" -> Some Draining
  | "internal" -> Some Internal
  | _ -> None

let goal_name = function
  | `Size -> "size"
  | `Depth -> "depth"
  | `Activity -> "activity"
  | `Search -> "search"

let goal_of_name = function
  | "size" -> Some `Size
  | "depth" -> Some `Depth
  | "activity" -> Some `Activity
  | "search" -> Some `Search
  | _ -> None

(* ----- requests ----- *)

let optimize ?id ?(goal = `Size) ?(effort = 2) ?(beam = 2) ?timeout_s
    ?max_nodes ?fault ?(emit = `None) ?(stats = false) circuit =
  Optimize
    { id; circuit; goal; effort; beam; timeout_s; max_nodes; fault; emit;
      stats }

let circuit_to_json = function
  | Bench n -> J.Obj [ ("bench", J.String n) ]
  | Blif s -> J.Obj [ ("blif", J.String s) ]
  | Verilog s -> J.Obj [ ("verilog", J.String s) ]

let request_to_json = function
  | Ping -> J.Obj [ ("schema", J.String schema); ("type", J.String "ping") ]
  | Optimize r ->
      J.Obj
        ([ ("schema", J.String schema); ("type", J.String "optimize") ]
        @ (match r.id with Some i -> [ ("id", J.String i) ] | None -> [])
        @ [
            ("circuit", circuit_to_json r.circuit);
            ("goal", J.String (goal_name r.goal));
            ("effort", J.Int r.effort);
          ]
        @ (match r.goal with
          | `Search -> [ ("beam", J.Int r.beam) ]
          | _ -> [])
        @ (match r.timeout_s with
          | Some t -> [ ("timeout_s", J.Float t) ]
          | None -> [])
        @ (match r.max_nodes with
          | Some n -> [ ("max_nodes", J.Int n) ]
          | None -> [])
        @ (match r.fault with
          | Some f -> [ ("fault", J.String f) ]
          | None -> [])
        @ (match r.emit with
          | `Blif -> [ ("emit", J.String "blif") ]
          | `None -> [])
        @ if r.stats then [ ("stats", J.Bool true) ] else [])

(* decoding helpers: every failure is a value, never an exception *)

let field_str j key =
  match J.member key j with Some (J.String s) -> Some s | _ -> None

let decode_circuit j =
  match J.member "circuit" j with
  | None -> Error (Bad_request, "missing field \"circuit\"")
  | Some c -> (
      match (field_str c "bench", field_str c "blif", field_str c "verilog") with
      | Some n, None, None -> Ok (Bench n)
      | None, Some s, None -> Ok (Blif s)
      | None, None, Some s -> Ok (Verilog s)
      | None, None, None ->
          Error
            ( Bad_request,
              "circuit must carry exactly one of \"bench\", \"blif\", \
               \"verilog\" (string)" )
      | _ -> Error (Bad_request, "circuit carries more than one source"))

let ( let* ) = Result.bind

let decode_optimize j =
  let* circuit = decode_circuit j in
  let* goal =
    match J.member "goal" j with
    | None -> Ok `Size
    | Some (J.String g) -> (
        match goal_of_name g with
        | Some g -> Ok g
        | None -> Error (Bad_request, "unknown goal " ^ g))
    | Some _ -> Error (Bad_request, "goal is not a string")
  in
  let* effort =
    match J.member "effort" j with
    | None -> Ok 2
    | Some (J.Int e) when e >= 1 && e <= 16 -> Ok e
    | Some _ -> Error (Bad_request, "effort must be an int in 1..16")
  in
  let* beam =
    match J.member "beam" j with
    | None -> Ok 2
    | Some (J.Int b) when b >= 1 && b <= 64 -> Ok b
    | Some _ -> Error (Bad_request, "beam must be an int in 1..64")
  in
  let* timeout_s =
    match J.member "timeout_s" j with
    | None | Some J.Null -> Ok None
    | Some (J.Int t) when t > 0 -> Ok (Some (float_of_int t))
    | Some (J.Float t) when t > 0.0 && Float.is_finite t -> Ok (Some t)
    | Some _ -> Error (Bad_request, "timeout_s must be a positive number")
  in
  let* max_nodes =
    match J.member "max_nodes" j with
    | None | Some J.Null -> Ok None
    | Some (J.Int n) when n > 0 -> Ok (Some n)
    | Some _ -> Error (Bad_request, "max_nodes must be a positive int")
  in
  let* fault =
    match J.member "fault" j with
    | None | Some J.Null -> Ok None
    | Some (J.String f) -> Ok (Some f)
    | Some _ -> Error (Bad_request, "fault must be a string")
  in
  let* emit =
    match J.member "emit" j with
    | None | Some J.Null -> Ok `None
    | Some (J.String "blif") -> Ok `Blif
    | Some (J.String e) -> Error (Bad_request, "unknown emit " ^ e)
    | Some _ -> Error (Bad_request, "emit must be a string")
  in
  let* stats =
    match J.member "stats" j with
    | None -> Ok false
    | Some (J.Bool b) -> Ok b
    | Some _ -> Error (Bad_request, "stats must be a bool")
  in
  Ok
    (Optimize
       {
         id = field_str j "id";
         circuit;
         goal;
         effort;
         beam;
         timeout_s;
         max_nodes;
         fault;
         emit;
         stats;
       })

let decode_request j =
  match j with
  | J.Obj _ ->
      let* () =
        match J.member "schema" j with
        | Some (J.String s) when s = schema -> Ok ()
        | Some (J.String s) -> Error (Protocol, "unknown schema " ^ s)
        | _ -> Error (Protocol, "missing \"schema\" field")
      in
      (match J.member "type" j with
      | Some (J.String "ping") -> Ok Ping
      | Some (J.String "optimize") | None -> decode_optimize j
      | Some (J.String t) -> Error (Bad_request, "unknown request type " ^ t)
      | Some _ -> Error (Protocol, "\"type\" is not a string"))
  | _ -> Error (Protocol, "request is not a JSON object")

let parse_request line =
  match J.of_string line with
  | Error e -> Error (Protocol, "invalid JSON: " ^ e)
  | Ok j -> decode_request j

(* ----- response frames ----- *)

type result_frame = {
  r_id : string option;
  size_in : int;
  depth_in : int;
  size_out : int;
  depth_out : int;
  degraded : bool;
  verified : bool;
  rollbacks : int;
  time_s : float;
  blif : string option;
  report : J.t;
}

let id_field = function Some i -> [ ("id", J.String i) ] | None -> []

let head ty = [ ("schema", J.String schema); ("type", J.String ty) ]

let result_to_json r =
  J.Obj
    (head "result" @ id_field r.r_id
    @ [
        ("size_in", J.Int r.size_in);
        ("depth_in", J.Int r.depth_in);
        ("size_out", J.Int r.size_out);
        ("depth_out", J.Int r.depth_out);
        ("degraded", J.Bool r.degraded);
        ("verified", J.Bool r.verified);
        ("rollbacks", J.Int r.rollbacks);
        ("time_s", J.Float r.time_s);
        ("report", r.report);
      ]
    @ match r.blif with Some b -> [ ("blif", J.String b) ] | None -> [])

let telemetry_to_json ?id ~event extra =
  J.Obj (head "telemetry" @ id_field id @ [ ("event", J.String event) ] @ extra)

let error_to_json ?id ?retry_after_ms code message =
  J.Obj
    (head "error" @ id_field id
    @ [
        ("code", J.String (error_code_name code));
        ("message", J.String message);
      ]
    @
    match retry_after_ms with
    | Some ms -> [ ("retry_after_ms", J.Int ms) ]
    | None -> [])

let pong_to_json ~queue_depth ~queue_capacity ~workers ~served ~active
    ~draining =
  J.Obj
    (head "pong"
    @ [
        ("queue_depth", J.Int queue_depth);
        ("queue_capacity", J.Int queue_capacity);
        ("workers", J.Int workers);
        ("served", J.Int served);
        ("active", J.Int active);
        ("draining", J.Bool draining);
      ])

(* ----- client-side decoding and the response linter ----- *)

type frame =
  | Telemetry of { f_id : string option; event : string; body : J.t }
  | Result of result_frame
  | Error_frame of {
      e_id : string option;
      code : error_code;
      message : string;
      retry_after_ms : int option;
    }
  | Pong of J.t

let int_of j key =
  match J.member key j with Some (J.Int i) -> Some i | _ -> None

let bool_of j key =
  match J.member key j with Some (J.Bool b) -> Some b | _ -> None

let float_of j key = Option.bind (J.member key j) J.to_float

let decode_frame j =
  match j with
  | J.Obj _ -> (
      match (J.member "schema" j, J.member "type" j) with
      | Some (J.String s), _ when s <> schema -> Error ("unknown schema " ^ s)
      | None, _ -> Error "missing \"schema\" field"
      | Some _, Some (J.String "telemetry") -> (
          match field_str j "event" with
          | Some event -> Ok (Telemetry { f_id = field_str j "id"; event; body = j })
          | None -> Error "telemetry frame without \"event\"")
      | Some _, Some (J.String "result") -> (
          match
            ( int_of j "size_in", int_of j "depth_in", int_of j "size_out",
              int_of j "depth_out", bool_of j "degraded", bool_of j "verified",
              int_of j "rollbacks", float_of j "time_s", J.member "report" j )
          with
          | Some size_in, Some depth_in, Some size_out, Some depth_out,
            Some degraded, Some verified, Some rollbacks, Some time_s,
            Some report ->
              Ok
                (Result
                   {
                     r_id = field_str j "id";
                     size_in;
                     depth_in;
                     size_out;
                     depth_out;
                     degraded;
                     verified;
                     rollbacks;
                     time_s;
                     blif = field_str j "blif";
                     report;
                   })
          | _ -> Error "result frame with missing or mistyped fields")
      | Some _, Some (J.String "error") -> (
          match (field_str j "code", field_str j "message") with
          | Some c, Some message -> (
              match error_code_of_name c with
              | Some code ->
                  Ok
                    (Error_frame
                       {
                         e_id = field_str j "id";
                         code;
                         message;
                         retry_after_ms = int_of j "retry_after_ms";
                       })
              | None -> Error ("unknown error code " ^ c))
          | _ -> Error "error frame without code/message")
      | Some _, Some (J.String "pong") -> Ok (Pong j)
      | Some _, Some (J.String t) -> Error ("unknown frame type " ^ t)
      | Some _, _ -> Error "missing \"type\" field"
      )
  | _ -> Error "frame is not a JSON object"

(* The linter re-checks what decode_frame accepts plus the
   per-type required fields the schema promises, so a frame that
   decodes but silently dropped a promised field still fails. *)
let validate_frame j =
  match decode_frame j with
  | Error e -> Error e
  | Ok (Telemetry _) -> Ok ()
  | Ok (Result r) ->
      if r.size_in < 0 || r.size_out < 0 || r.depth_in < 0 || r.depth_out < 0
      then Error "result frame with negative metrics"
      else if r.time_s < 0.0 then Error "result frame with negative time_s"
      else Ok ()
  | Ok (Error_frame { code = Overloaded; retry_after_ms = None; _ }) ->
      Error "overloaded error without retry_after_ms"
  | Ok (Error_frame { retry_after_ms = Some ms; _ }) when ms < 0 ->
      Error "negative retry_after_ms"
  | Ok (Error_frame _) -> Ok ()
  | Ok (Pong p) -> (
      match
        ( int_of p "queue_depth", int_of p "queue_capacity", int_of p "workers",
          int_of p "served", int_of p "active", bool_of p "draining" )
      with
      | Some _, Some _, Some _, Some _, Some _, Some _ -> Ok ()
      | _ -> Error "pong frame with missing or mistyped fields")
