(* Newline framing as a pure byte-stream state machine.  Two states:
   accumulating (bytes go into [buf]) and discarding (an oversized
   line; only the running length is kept).  Chunk boundaries carry no
   meaning, which the qcheck chunking-independence property pins. *)

type t = {
  limit : int;
  buf : Buffer.t;
  mutable discarding : bool;
  mutable discarded : int;  (* bytes of the oversized line seen so far *)
}

let create ?(max_line_bytes = 8 * 1024 * 1024) () =
  { limit = max_line_bytes; buf = Buffer.create 256; discarding = false;
    discarded = 0 }

type event = Line of string | Oversized of int

let close_line t =
  let s = Buffer.contents t.buf in
  Buffer.clear t.buf;
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

let feed t buf pos len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Framing.feed";
  let events = ref [] in
  for i = pos to pos + len - 1 do
    let c = Bytes.unsafe_get buf i in
    if t.discarding then
      if c = '\n' then begin
        events := Oversized t.discarded :: !events;
        t.discarding <- false;
        t.discarded <- 0
      end
      else t.discarded <- t.discarded + 1
    else if c = '\n' then events := Line (close_line t) :: !events
    else if Buffer.length t.buf >= t.limit then begin
      (* the line just crossed the limit: drop what we buffered and
         swallow the rest of it *)
      t.discarding <- true;
      t.discarded <- Buffer.length t.buf + 1;
      Buffer.clear t.buf
    end
    else Buffer.add_char t.buf c
  done;
  List.rev !events

let feed_string t s = feed t (Bytes.unsafe_of_string s) 0 (String.length s)

let pending t = if t.discarding then t.discarded else Buffer.length t.buf

let max_line_bytes t = t.limit
