(* The daemon core.  Threading model (DESIGN.md §17):

   - ONE accept loop (the caller's domain under [run], a spawned
     domain under [launch]) owns the listening socket.  It admits
     connections into the bounded {!Queue} or answers them with a
     structured rejection on the spot — admission control happens
     before any work is queued.
   - N worker domains pop connections and own them exclusively from
     the pop onward: socket fd, framing buffer, and the fresh
     [Lsutil.Ctx] of every request all live and die on one domain, so
     the only cross-domain state is the queue itself plus a few
     monotonic counters ([Atomic]) and the cache-delta list (one
     mutex, touched once per request).
   - Request isolation is [Flow.Engine]: budgets degrade to verified
     best-so-far results, injected faults roll back to checkpoints,
     and [Engine.protect] turns anything that still escapes into a
     structured [internal] error frame.  A worker never dies. *)

module P = Protocol
module J = Lsutil.Json

type addr = [ `Tcp of string * int | `Unix of string ]

type config = {
  addr : addr;
  queue_capacity : int;
  workers : int;
  default_timeout_s : float option;
  max_line_bytes : int;
  idle_timeout_s : float;
  cache : Flow.Cache.t option;
  check : bool;
  san : bool;
  seed : int;
}

let default_config ?env addr =
  let e = match env with Some e -> e | None -> Lsutil.Env.load () in
  {
    addr;
    queue_capacity =
      (match e.Lsutil.Env.serve_queue with Some n -> n | None -> 64);
    workers = max 1 (Domain.recommended_domain_count () - 1);
    default_timeout_s = Some 30.;
    max_line_bytes = 8 * 1024 * 1024;
    idle_timeout_s = 30.;
    cache = None;
    check = e.Lsutil.Env.check;
    san = e.Lsutil.Env.san;
    seed = e.Lsutil.Env.seed;
  }

type t = {
  cfg : config;
  lfd : Unix.file_descr;
  bound : addr;
  q : Unix.file_descr Queue.t;
  draining_flag : bool Atomic.t;
  served_n : int Atomic.t;
  rejected_n : int Atomic.t;
  active_n : int Atomic.t;
  avg_ms : int Atomic.t;  (* service-time EWMA feeding retry_after_ms *)
  deltas_lock : Mutex.t;
  mutable deltas : (string * Sop.Factor.form) list list;  (* newest first *)
  mutable workers_d : unit Domain.t list;
  mutable accept_d : unit Domain.t option;
}

let bound_addr t = t.bound
let draining t = Atomic.get t.draining_flag
let served t = Atomic.get t.served_n
let rejected t = Atomic.get t.rejected_n
let drain t = Atomic.set t.draining_flag true

(* {2 Socket plumbing} *)

let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Partial writes and peer resets are normal life for a daemon: [send]
   pushes the whole string or reports the connection dead, it never
   raises.  SIGPIPE is ignored process-wide (see [make]), so a closed
   peer surfaces as EPIPE here. *)
let send fd s =
  let len = String.length s in
  let rec go pos =
    if pos >= len then true
    else
      match Unix.write_substring fd s pos (len - pos) with
      | n -> go (pos + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
      | exception Unix.Unix_error (_, _, _) -> false
  in
  go 0

let send_json fd j = send fd (J.to_string j ^ "\n")

(* {2 Request processing} *)

let build_network = function
  | P.Bench name -> (
      try Ok ((Benchmarks.Suite.find name).Benchmarks.Suite.build ())
      with Not_found ->
        Error
          (Printf.sprintf "unknown benchmark %S (known: %s)" name
             (String.concat ", " Benchmarks.Suite.names)))
  | P.Blif src -> (
      try Ok (Logic_io.Blif.read src) with
      | Logic_io.Io_error.Parse_error { line; msg } ->
          Error (Printf.sprintf "blif line %d: %s" line msg)
      | Failure msg -> Error ("blif: " ^ msg))
  | P.Verilog src -> (
      try Ok (Logic_io.Verilog.read src) with
      | Logic_io.Io_error.Parse_error { line; msg } ->
          Error (Printf.sprintf "verilog line %d: %s" line msg)
      | Failure msg -> Error ("verilog: " ^ msg))

let note_time t time_s =
  let ms = max 1 (int_of_float (time_s *. 1000.)) in
  let old = Atomic.get t.avg_ms in
  Atomic.set t.avg_ms (if old = 0 then ms else ((7 * old) + ms) / 8)

(* A queue's worth of requests ahead of you, spread over the worker
   pool, each taking about the running average: the hint a rejected
   client should wait before retrying. *)
let retry_after_ms t =
  let per = max 20 (Atomic.get t.avg_ms) in
  let ahead = Queue.length t.q + 1 in
  min 60_000 (max 50 (per * ahead / max 1 t.cfg.workers))

let record_delta t rwh =
  Mutex.lock t.deltas_lock;
  t.deltas <- Mig.Rwcache.delta rwh :: t.deltas;
  Mutex.unlock t.deltas_lock

(* One optimize request, end to end, on the worker's domain.  The
   fresh ctx is the reentrancy unit; the fault plan (if any) is armed
   only around [Engine.run], so parsing/conversion and the response
   writer stay outside the blast radius — exactly the [mighty opt]
   policy.  Returns whether the connection is still usable. *)
let process_optimize t fd (r : P.request) =
  let cfg = t.cfg in
  let fault_plan =
    match r.fault with
    | None -> Ok None
    | Some s -> (
        match Lsutil.Fault.parse s with
        | Ok sp -> Ok (Some sp)
        | Error e -> Error ("fault: " ^ e))
  in
  match (fault_plan, build_network r.circuit) with
  | Error msg, _ | Ok _, Error msg ->
      send_json fd (P.error_to_json ?id:r.id P.Bad_request msg)
  | Ok plan, Ok net ->
      let ctx =
        Lsutil.Ctx.create ~stats:r.stats ~check:cfg.check ~san:cfg.san
          ~seed:cfg.seed ()
      in
      let tel = Lsutil.Ctx.stats ctx in
      let timeout_s =
        match (r.timeout_s, cfg.default_timeout_s) with
        | Some a, Some b -> Some (Float.min a b)
        | Some a, None -> Some a
        | None, d -> d
      in
      let trace =
        if r.stats then
          Some
            (fun pass ->
              ignore
                (send_json fd
                   (P.telemetry_to_json ?id:r.id ~event:"pass"
                      [ ("pass", J.String pass) ])))
        else None
      in
      let rwh =
        Option.map (fun c -> Mig.Rwcache.fork (Flow.Cache.rw c)) cfg.cache
      in
      let flt = Lsutil.Ctx.fault ctx in
      let outcome, time_s =
        Lsutil.Telemetry.time (fun () ->
            Flow.Engine.protect ~tel ~name:"serve" (fun () ->
                let m =
                  Mig.Convert.of_network ~ctx (Network.Graph.flatten_aoig net)
                in
                let size_in = Mig.Graph.size m in
                let depth_in = Mig.Graph.depth m in
                if r.stats then
                  ignore
                    (send_json fd
                       (P.telemetry_to_json ?id:r.id ~event:"started"
                          [
                            ("size_in", J.Int size_in);
                            ("depth_in", J.Int depth_in);
                          ]));
                (match plan with
                | Some sp -> Lsutil.Fault.arm flt sp
                | None -> ());
                let out, report =
                  Fun.protect
                    ~finally:(fun () -> Lsutil.Fault.disarm flt)
                    (fun () ->
                      match r.goal with
                      | (`Size | `Depth | `Activity) as goal ->
                          let passes =
                            Flow.Engine.of_goal ~effort:r.effort ?cache:rwh
                              goal
                          in
                          Flow.Engine.run ?timeout_s ?max_nodes:r.max_nodes
                            ?trace
                            ~cost:(Flow.Engine.cost_of_goal goal)
                            ~seed:0xda14 ~passes m
                      | `Search ->
                          (* orchestrated beam search under the same
                             clamped budget; the trajectory record is
                             server-side only (spans carry it when the
                             client asked for stats) *)
                          let spec =
                            {
                              Flow.Orchestrate.goal = `Size;
                              beam = r.beam;
                              rounds = 2 * r.effort;
                              seed = 0xda14;
                              timeout_s;
                              max_nodes = r.max_nodes;
                            }
                          in
                          let circuit =
                            match r.circuit with
                            | P.Bench n -> n
                            | P.Blif _ -> "blif"
                            | P.Verilog _ -> "verilog"
                          in
                          let out, report, _traj =
                            Flow.Orchestrate.run ?cache:rwh ~circuit ~spec m
                          in
                          (out, report))
                in
                (size_in, depth_in, out, report)))
      in
      Option.iter (record_delta t) rwh;
      Lsutil.San.drain (Lsutil.Ctx.san ctx);
      note_time t time_s;
      (match outcome with
      | Error oc ->
          send_json fd
            (P.error_to_json ?id:r.id P.Internal
               ("optimization " ^ Flow.Engine.outcome_name oc))
      | Ok (size_in, depth_in, out, report) ->
          let blif =
            match r.emit with
            | `Blif when report.Flow.Engine.verified ->
                Some
                  (Format.asprintf "%a"
                     (fun fmt n -> Logic_io.Blif.write fmt n)
                     (Mig.Convert.to_network out))
            | `Blif | `None -> None
          in
          send_json fd
            (P.result_to_json
               {
                 P.r_id = r.id;
                 size_in;
                 depth_in;
                 size_out = Mig.Graph.size out;
                 depth_out = Mig.Graph.depth out;
                 degraded = report.Flow.Engine.degraded;
                 verified = report.Flow.Engine.verified;
                 rollbacks = report.Flow.Engine.rollbacks;
                 time_s;
                 blif;
                 report = Flow.Engine.report_to_json report;
               }))

let handle_line t fd line =
  if String.trim line = "" then true
  else
    match P.parse_request line with
    | Error (code, msg) -> send_json fd (P.error_to_json code msg)
    | Ok P.Ping ->
        let ok =
          send_json fd
            (P.pong_to_json ~queue_depth:(Queue.length t.q)
               ~queue_capacity:(Queue.capacity t.q) ~workers:t.cfg.workers
               ~served:(Atomic.get t.served_n)
               ~active:(Atomic.get t.active_n)
               ~draining:(Atomic.get t.draining_flag))
        in
        Atomic.incr t.served_n;
        ok
    | Ok (P.Optimize r) ->
        Atomic.incr t.active_n;
        let ok =
          Fun.protect
            ~finally:(fun () -> Atomic.decr t.active_n)
            (fun () -> process_optimize t fd r)
        in
        Atomic.incr t.served_n;
        ok

let handle_event t fd = function
  | Framing.Line line -> handle_line t fd line
  | Framing.Oversized n ->
      send_json fd
        (P.error_to_json P.Oversized
           (Printf.sprintf "request line of %d bytes exceeds the %d-byte limit"
              n t.cfg.max_line_bytes))

(* One connection: read, frame, answer, until EOF / idle timeout /
   dead peer.  The fd is closed here no matter what. *)
let handle_conn t fd =
  Fun.protect
    ~finally:(fun () -> close_noerr fd)
    (fun () ->
      (try
         Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.idle_timeout_s;
         Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.cfg.idle_timeout_s
       with Unix.Unix_error _ | Invalid_argument _ -> ());
      let fr = Framing.create ~max_line_bytes:t.cfg.max_line_bytes () in
      let buf = Bytes.create 65536 in
      let rec loop () =
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> ()
        | n ->
            let alive =
              List.fold_left
                (fun ok ev -> ok && handle_event t fd ev)
                true (Framing.feed fr buf 0 n)
            in
            if alive then loop ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
        | exception Unix.Unix_error (_, _, _) -> ()
      in
      loop ())

let worker_loop t =
  let tel = Lsutil.Telemetry.create ~enabled:false () in
  let rec loop () =
    match Queue.pop t.q with
    | None -> ()
    | Some fd ->
        (* [handle_conn] already isolates request failures; the
           [protect] wrapper is the never-die backstop for connection
           plumbing itself (the fd is closed by handle_conn's finally
           either way) *)
        (match
           Flow.Engine.protect ~tel ~name:"serve-conn" (fun () ->
               handle_conn t fd)
         with
        | Ok () | Error _ -> ());
        loop ()
  in
  loop ()

(* {2 Accept loop and lifecycle} *)

let reject fd code msg retry =
  (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 1.0
   with Unix.Unix_error _ | Invalid_argument _ -> ());
  ignore (send_json fd (P.error_to_json ?retry_after_ms:retry code msg));
  close_noerr fd

let accept_loop t =
  let rec loop () =
    if Atomic.get t.draining_flag then ()
    else begin
      (match Unix.select [ t.lfd ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept ~cloexec:true t.lfd with
          | fd, _ ->
              if Atomic.get t.draining_flag then
                reject fd P.Draining "server is draining" None
              else if not (Queue.try_push t.q fd) then begin
                Atomic.incr t.rejected_n;
                reject fd P.Overloaded "admission queue full"
                  (Some (retry_after_ms t))
              end
          | exception Unix.Unix_error (_, _, _) -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ();
  close_noerr t.lfd;
  (* closing the queue is the worker-exit signal; already-admitted
     connections are still served first (Queue semantics) *)
  Queue.close t.q

let inet_addr host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> failwith ("serve: unknown host " ^ host))

let sockaddr_of = function
  | `Tcp (host, port) -> Unix.ADDR_INET (inet_addr host, port)
  | `Unix path -> Unix.ADDR_UNIX path

let bound_of lfd = function
  | `Unix path -> `Unix path
  | `Tcp (host, _) -> (
      match Unix.getsockname lfd with
      | Unix.ADDR_INET (_, port) -> `Tcp (host, port)
      | Unix.ADDR_UNIX path -> `Unix path)

let make cfg =
  if cfg.queue_capacity < 1 then invalid_arg "Serve.Server: queue_capacity";
  if cfg.workers < 0 then invalid_arg "Serve.Server: workers";
  (* a dead peer must be an EPIPE result, not a process kill *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let domain =
    match cfg.addr with `Tcp _ -> Unix.PF_INET | `Unix _ -> Unix.PF_UNIX
  in
  let lfd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (match cfg.addr with
  | `Tcp _ -> Unix.setsockopt lfd Unix.SO_REUSEADDR true
  | `Unix path -> ( try Unix.unlink path with Unix.Unix_error _ -> ()));
  (try
     Unix.bind lfd (sockaddr_of cfg.addr);
     Unix.listen lfd 64
   with e ->
     close_noerr lfd;
     raise e);
  let t =
    {
      cfg;
      lfd;
      bound = bound_of lfd cfg.addr;
      q = Queue.create ~capacity:cfg.queue_capacity;
      draining_flag = Atomic.make false;
      served_n = Atomic.make 0;
      rejected_n = Atomic.make 0;
      active_n = Atomic.make 0;
      avg_ms = Atomic.make 0;
      deltas_lock = Mutex.create ();
      deltas = [];
      workers_d = [];
      accept_d = None;
    }
  in
  (* force the library's only top-level lazy before spawning, same as
     Flow.Batch: no two domains may race its first Lazy.force *)
  Mig.Transform.prewarm ();
  t.workers_d <-
    List.init cfg.workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let join t =
  (match t.accept_d with
  | Some d ->
      Domain.join d;
      t.accept_d <- None
  | None -> ());
  List.iter Domain.join t.workers_d;
  t.workers_d <- [];
  (* with workers = 0 (the saturation test hook) admitted connections
     are still queued here: answer them, don't just drop the fds *)
  let rec flush_admitted () =
    match Queue.try_pop t.q with
    | Some fd ->
        reject fd P.Draining "server is draining" None;
        flush_admitted ()
    | None -> ()
  in
  flush_admitted ();
  (match t.cfg.cache with
  | None -> ()
  | Some c ->
      Mutex.lock t.deltas_lock;
      let ds = List.rev t.deltas in
      t.deltas <- [];
      Mutex.unlock t.deltas_lock;
      Flow.Cache.absorb_rw c ds;
      (match Flow.Cache.save c with
      | Ok () -> ()
      | Error msg -> Printf.eprintf "serve: cache save: %s\n%!" msg));
  match t.bound with
  | `Unix path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | `Tcp _ -> ()

let launch cfg =
  let t = make cfg in
  t.accept_d <- Some (Domain.spawn (fun () -> accept_loop t));
  t

let run ?(handle_signals = true) cfg =
  let t = make cfg in
  if handle_signals then begin
    (* the handler only flips an Atomic: async-signal-safe, and the
       0.2 s select tick in the accept loop notices it promptly *)
    let stop _ = Atomic.set t.draining_flag true in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop)
  end;
  accept_loop t;
  join t
