(* Blocking single-connection client.  All reads funnel through one
   Framing.t, so server responses are split exactly the way request
   lines are on the other side; every frame is schema-validated before
   the caller sees it. *)

module P = Protocol
module J = Lsutil.Json

type t = {
  fd : Unix.file_descr;
  fr : Framing.t;
  buf : Bytes.t;
  mutable pending : string list;  (* complete lines not yet consumed *)
}

let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()
let close t = close_noerr t.fd

let send fd s =
  let len = String.length s in
  let rec go pos =
    if pos >= len then true
    else
      match Unix.write_substring fd s pos (len - pos) with
      | n -> go (pos + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
      | exception Unix.Unix_error (_, _, _) -> false
  in
  go 0

let rec next_line t =
  match t.pending with
  | l :: rest ->
      t.pending <- rest;
      Ok l
  | [] -> (
      match Unix.read t.fd t.buf 0 (Bytes.length t.buf) with
      | 0 -> Error "connection closed by server"
      | n ->
          let rec collect acc = function
            | [] -> Ok (List.rev acc)
            | Framing.Line l :: rest -> collect (l :: acc) rest
            | Framing.Oversized bytes :: _ ->
                Error
                  (Printf.sprintf "server sent an oversized frame (%d bytes)"
                     bytes)
          in
          (match collect [] (Framing.feed t.fr t.buf 0 n) with
          | Error _ as e -> e
          | Ok lines ->
              t.pending <- t.pending @ lines;
              next_line t)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> next_line t
      | exception Unix.Unix_error (e, _, _) ->
          Error ("read: " ^ Unix.error_message e))

let read_frame t =
  match next_line t with
  | Error _ as e -> e
  | Ok line -> (
      match J.of_string line with
      | Error e -> Error ("malformed frame: " ^ e)
      | Ok j -> (
          match P.validate_frame j with
          | Error e -> Error ("invalid frame: " ^ e)
          | Ok () -> P.decode_frame j))

(* {2 Connecting} *)

let sockaddr_of = function
  | `Tcp (host, port) ->
      let addr =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found -> failwith ("client: unknown host " ^ host))
      in
      Unix.ADDR_INET (addr, port)
  | `Unix path -> Unix.ADDR_UNIX path

(* The server answers an admission rejection immediately at accept
   time and closes; an admitted connection stays silent.  A short
   probe window right after connect distinguishes the two, so
   overloaded/draining greetings become retry verdicts instead of
   failures on the first request. *)
let probe_greeting fd =
  match Unix.select [ fd ] [] [] 0.02 with
  | [], _, _ -> `Admitted
  | _ :: _, _, _ -> (
      let buf = Bytes.create 4096 in
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 -> `Rejected (`Retry "connection closed at accept")
      | n -> (
          let fr = Framing.create () in
          let line =
            List.find_map
              (function Framing.Line l -> Some l | Framing.Oversized _ -> None)
              (Framing.feed fr buf 0 n)
          in
          match Option.map J.of_string line with
          | Some (Ok j) -> (
              match P.decode_frame j with
              | Ok (P.Error_frame { code = P.Overloaded; retry_after_ms; _ })
                ->
                  let floor_s =
                    float_of_int (Option.value ~default:50 retry_after_ms)
                    /. 1000.
                  in
                  `Rejected (`Retry_after (floor_s, "server overloaded"))
              | Ok (P.Error_frame { code = P.Draining; _ }) ->
                  `Rejected (`Retry "server draining")
              | Ok _ | Error _ ->
                  (* an unsolicited non-rejection frame: not ours to
                     interpret here; treat the connection as broken *)
                  `Rejected (`Fail "unexpected greeting from server"))
          | Some (Error e) -> `Rejected (`Fail ("malformed greeting: " ^ e))
          | None -> `Rejected (`Fail "oversized greeting from server"))
      | exception Unix.Unix_error (_, _, _) ->
          `Rejected (`Retry "connection reset at accept"))
  | exception Unix.Unix_error (_, _, _) ->
      `Rejected (`Retry "connection reset at accept")

let try_connect addr timeout_s =
  let domain =
    match addr with `Tcp _ -> Unix.PF_INET | `Unix _ -> Unix.PF_UNIX
  in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  match Unix.connect fd (sockaddr_of addr) with
  | () -> (
      match probe_greeting fd with
      | `Admitted ->
          (try
             Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
             Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s
           with Unix.Unix_error _ | Invalid_argument _ -> ());
          Ok
            {
              fd;
              fr = Framing.create ~max_line_bytes:(64 * 1024 * 1024) ();
              buf = Bytes.create 65536;
              pending = [];
            }
      | `Rejected verdict ->
          close_noerr fd;
          Error verdict)
  | exception Unix.Unix_error (e, _, _) -> (
      close_noerr fd;
      match e with
      | Unix.ECONNREFUSED | Unix.ENOENT | Unix.EAGAIN | Unix.ECONNRESET
      | Unix.EINTR | Unix.ETIMEDOUT ->
          Error (`Retry ("connect: " ^ Unix.error_message e))
      | e -> Error (`Fail ("connect: " ^ Unix.error_message e)))

let connect ?retry ?rng ?(timeout_s = 30.) addr =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let rng = match rng with Some r -> r | None -> Lsutil.Rng.create 1 in
  match
    Lsutil.Retry.run ?policy:retry ~rng (fun ~attempt:_ ->
        try_connect addr timeout_s)
  with
  | Ok _ as ok -> ok
  | Error e -> Error (Format.asprintf "%a" Lsutil.Retry.pp_error e)

(* {2 Requests} *)

let request ?(on_telemetry = fun (_ : P.frame) -> ()) t req =
  let line = J.to_string (P.request_to_json req) ^ "\n" in
  if not (send t.fd line) then Error "send: connection lost"
  else
    let rec read_terminal () =
      match read_frame t with
      | Error _ as e -> e
      | Ok (P.Telemetry _ as f) ->
          on_telemetry f;
          read_terminal ()
      | Ok terminal -> Ok terminal
    in
    read_terminal ()

let ping t =
  match request t P.Ping with
  | Error _ as e -> e
  | Ok (P.Pong body) -> Ok body
  | Ok (P.Error_frame { code; message; _ }) ->
      Error (P.error_code_name code ^ ": " ^ message)
  | Ok (P.Result _ | P.Telemetry _) -> Error "unexpected frame type for ping"

let optimize ?on_telemetry t r =
  match request ?on_telemetry t (P.Optimize r) with
  | Error _ as e -> e
  | Ok (P.Result rf) -> Ok rf
  | Ok (P.Error_frame { code; message; _ }) ->
      Error (P.error_code_name code ^ ": " ^ message)
  | Ok (P.Pong _ | P.Telemetry _) ->
      Error "unexpected frame type for optimize"
