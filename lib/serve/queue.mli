(** Bounded multi-producer/multi-consumer work queue (the admission
    queue between the accept loop and the worker-domain pool).

    Capacity is fixed at creation: {!try_push} never blocks and never
    grows the queue — a full queue is the backpressure signal the
    server turns into a structured [overloaded] rejection.  {!pop}
    blocks (Mutex + Condition, domain-safe) until an item or until the
    queue is {!close}d; items already admitted are still handed out
    after close, so a graceful drain serves everything it accepted. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity >= 1]. *)

val try_push : 'a t -> 'a -> bool
(** [false] when the queue is full {e or} closed; never blocks. *)

val pop : 'a t -> 'a option
(** Blocks until an item is available ([Some]) or the queue is closed
    {e and} empty ([None], the worker-exit signal). *)

val try_pop : 'a t -> 'a option
(** Non-blocking; [None] when currently empty. *)

val close : 'a t -> unit
(** Refuse further pushes and wake every blocked {!pop}; idempotent.
    Pending items remain poppable. *)

val length : 'a t -> int
val capacity : 'a t -> int
val closed : 'a t -> bool
