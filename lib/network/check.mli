(** Structural linter for {!Network.Graph} — the NET0xx rules of
    {!Check_rules}.

    The network builders fold constants, deduplicate through the
    strash table and canonicalize symmetric operand lists; this module
    re-derives those invariants from the stored representation, so a
    network produced by any path (builders, readers, importers) can be
    audited after the fact. *)

val lint : ?subject:string -> Graph.t -> Check_report.t
(** Run every NET rule; the report is clean iff no [Error]-severity
    finding fired.  Dead (unreachable) gates are reported as
    [NET006] warnings and never fail the lint. *)
