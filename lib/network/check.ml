module S = Signal
module G = Graph
module R = Check_report

let fn_name = function
  | G.And -> "And"
  | G.Or -> "Or"
  | G.Xor -> "Xor"
  | G.Maj -> "Maj"
  | G.Mux -> "Mux"

let arity = function G.And | G.Or | G.Xor -> 2 | G.Maj | G.Mux -> 3

let is_const s = S.node s = 0

(* Would the matching constructor have folded or reordered these
   operands?  Mirrors the normalizations of [Graph.and_] .. [mux]. *)
let canonical_violation fn (fs : S.t array) =
  let sorted a b = S.compare a b <= 0 in
  match fn with
  | G.And | G.Or ->
      if is_const fs.(0) || is_const fs.(1) then Some "constant operand"
      else if S.equal fs.(0) fs.(1) then Some "equal operands"
      else if S.equal fs.(0) (S.not_ fs.(1)) then Some "complementary operands"
      else if not (sorted fs.(0) fs.(1)) then Some "operands not sorted"
      else None
  | G.Xor ->
      if is_const fs.(0) || is_const fs.(1) then Some "constant operand"
      else if S.is_complement fs.(0) || S.is_complement fs.(1) then
        Some "complement not pulled to the output"
      else if S.equal fs.(0) fs.(1) then Some "equal operands"
      else if not (sorted fs.(0) fs.(1)) then Some "operands not sorted"
      else None
  | G.Maj ->
      if Array.exists is_const fs then Some "constant operand"
      else if
        S.equal fs.(0) fs.(1) || S.equal fs.(0) fs.(2) || S.equal fs.(1) fs.(2)
      then Some "equal operands (Omega.M collapsible)"
      else if
        S.equal fs.(0) (S.not_ fs.(1))
        || S.equal fs.(0) (S.not_ fs.(2))
        || S.equal fs.(1) (S.not_ fs.(2))
      then Some "complementary operands (Omega.M collapsible)"
      else if not (sorted fs.(0) fs.(1) && sorted fs.(1) fs.(2)) then
        Some "operands not sorted"
      else None
  | G.Mux ->
      if Array.exists is_const fs then Some "constant operand"
      else if S.equal fs.(1) fs.(2) then Some "equal branches"
      else if S.equal fs.(1) (S.not_ fs.(2)) then
        Some "complementary branches (XOR form)"
      else None

let lint ?(subject = "network") n =
  let r = R.create ~subject in
  let nn = G.num_nodes n in
  let in_range id = id >= 0 && id < nn in
  (* node 0 is the constant *)
  if nn = 0 then R.error r ~rule:"NET005" "empty network: no constant node"
  else if G.node n 0 <> G.Const0 then
    R.error r ~node:0 ~rule:"NET005" "node 0 is not the constant";
  let gate_count = ref 0 in
  G.iter_nodes n (fun id nd ->
      match nd with
      | G.Const0 ->
          if id <> 0 then
            R.error r ~node:id ~rule:"NET005" "extra constant node"
      | G.Pi _ -> ()
      | G.Gate (fn, fs) ->
          incr gate_count;
          let name = fn_name fn in
          if Array.length fs <> arity fn then
            R.error r ~node:id ~rule:"NET004" "%s gate with %d fanins" name
              (Array.length fs)
          else begin
            let ok = ref true in
            Array.iter
              (fun s ->
                let f = S.node s in
                if not (in_range f) then begin
                  ok := false;
                  R.error r ~node:id ~rule:"NET002" "dangling fanin id %d" f
                end
                else if f >= id then begin
                  ok := false;
                  R.error r ~node:id ~rule:"NET001"
                    "fanin %d not topologically before the node" f
                end)
              fs;
            if !ok then begin
              (match canonical_violation fn fs with
              | Some why ->
                  R.error r ~node:id ~rule:"NET004" "%s gate: %s" name why
              | None -> ());
              match G.find_gate n fn fs with
              | Some id' when id' = id -> ()
              | Some id' ->
                  R.error r ~node:id ~rule:"NET003"
                    "strash key maps to node %d (structural duplicate)" id'
              | None ->
                  R.error r ~node:id ~rule:"NET003" "node missing from strash"
            end
          end);
  if G.strash_count n <> !gate_count then
    R.error r ~rule:"NET003" "strash has %d entries for %d gates (stale keys)"
      (G.strash_count n) !gate_count;
  (* PI integrity *)
  let seen_names = Hashtbl.create 16 in
  List.iter
    (fun id ->
      if not (in_range id) then
        R.error r ~node:id ~rule:"NET005" "PI list entry out of range"
      else
        match G.node n id with
        | G.Pi name ->
            if Hashtbl.mem seen_names name then
              R.error r ~node:id ~rule:"NET005" "duplicate PI name %S" name
            else Hashtbl.add seen_names name ()
        | _ -> R.error r ~node:id ~rule:"NET005" "PI list entry is not a PI")
    (G.pis n);
  let pi_list_size = G.num_pis n in
  let pi_nodes = ref 0 in
  G.iter_nodes n (fun _ nd -> match nd with G.Pi _ -> incr pi_nodes | _ -> ());
  if !pi_nodes <> pi_list_size then
    R.error r ~rule:"NET005" "%d PI nodes but %d PI list entries" !pi_nodes
      pi_list_size;
  (* PO integrity *)
  let seen_pos = Hashtbl.create 16 in
  List.iter
    (fun (name, s) ->
      if not (in_range (S.node s)) then
        R.error r ~rule:"NET002" "PO %S drives dangling id %d" name (S.node s);
      if Hashtbl.mem seen_pos name then
        R.error r ~rule:"NET005" "duplicate PO name %S" name
      else Hashtbl.add seen_pos name ())
    (G.pos n);
  (* dead-node accounting *)
  let reachable = Array.make (max nn 1) false in
  let rec visit id =
    if in_range id && not (reachable.(id)) then begin
      reachable.(id) <- true;
      match G.node n id with
      | G.Gate (_, fs) -> Array.iter (fun s -> visit (S.node s)) fs
      | _ -> ()
    end
  in
  List.iter (fun (_, s) -> visit (S.node s)) (G.pos n);
  let dead = ref 0 in
  G.iter_nodes n (fun id nd ->
      match nd with
      | G.Gate _ when not reachable.(id) -> incr dead
      | _ -> ());
  if !dead > 0 then
    R.warning r ~rule:"NET006" "%d dead gate(s); cleanup would remove them"
      !dead;
  r
