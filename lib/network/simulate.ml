module S = Signal
module G = Graph

let eval_gates_i64 n values =
  let value s =
    let v = values.(S.node s) in
    if S.is_complement s then Int64.lognot v else v
  in
  G.iter_gates n (fun i fn fs ->
      let v k = value fs.(k) in
      values.(i) <-
        (match fn with
        | G.And -> Int64.logand (v 0) (v 1)
        | G.Or -> Int64.logor (v 0) (v 1)
        | G.Xor -> Int64.logxor (v 0) (v 1)
        | G.Maj ->
            Int64.logor
              (Int64.logor
                 (Int64.logand (v 0) (v 1))
                 (Int64.logand (v 0) (v 2)))
              (Int64.logand (v 1) (v 2))
        | G.Mux ->
            Int64.logor
              (Int64.logand (v 0) (v 1))
              (Int64.logand (Int64.lognot (v 0)) (v 2))));
  value

let run n stim =
  let values = Array.make (G.num_nodes n) 0L in
  List.iter (fun id -> values.(id) <- stim (G.pi_name n id)) (G.pis n);
  let value = eval_gates_i64 n values in
  List.map (fun (name, s) -> (name, value s)) (G.pos n)

let truthtables n =
  let npis = G.num_pis n in
  if npis > 20 then invalid_arg "Simulate.truthtables: too many PIs";
  let module T = Truthtable in
  let values = Array.make (G.num_nodes n) (T.const0 npis) in
  List.iteri (fun k id -> values.(id) <- T.var npis k) (G.pis n);
  let value s =
    let v = values.(S.node s) in
    if S.is_complement s then T.not_ v else v
  in
  G.iter_gates n (fun i fn fs ->
      let v k = value fs.(k) in
      values.(i) <-
        (match fn with
        | G.And -> T.and_ (v 0) (v 1)
        | G.Or -> T.or_ (v 0) (v 1)
        | G.Xor -> T.xor_ (v 0) (v 1)
        | G.Maj -> T.maj (v 0) (v 1) (v 2)
        | G.Mux -> T.mux (v 0) (v 1) (v 2)));
  List.map (fun (name, s) -> (name, value s)) (G.pos n)

let same_interface a b =
  let names_pi g = List.map (G.pi_name g) (G.pis g) in
  let names_po g = List.map fst (G.pos g) in
  List.sort compare (names_pi a) = List.sort compare (names_pi b)
  && List.sort compare (names_po a) = List.sort compare (names_po b)

let equivalent_random ?(rounds = 64) ~seed a b =
  same_interface a b
  &&
  let rng = Lsutil.Rng.create seed in
  let ok = ref true in
  for _ = 1 to rounds do
    if !ok then begin
      let tbl = Hashtbl.create 64 in
      let stim name =
        match Hashtbl.find_opt tbl name with
        | Some v -> v
        | None ->
            let v =
              Int64.logor
                (Int64.of_int (Lsutil.Rng.int rng 0x40000000))
                (Int64.shift_left
                   (Int64.of_int (Lsutil.Rng.int rng 0x40000000))
                   34)
            in
            Hashtbl.add tbl name v;
            v
      in
      let ra = run a stim and rb = run b stim in
      let sort = List.sort compare in
      if sort ra <> sort rb then ok := false
    end
  done;
  !ok

(* ----- counterexample extraction ----- *)

type cex = Check_guard.cex = { po : string; inputs : (string * bool) list }

let pp_cex = Check_guard.pp_cex

(* Exact path: compare truth tables (PI orders must already agree) and
   decode the first differing minterm into an input assignment. *)
let cex_exact a b =
  let names = List.map (G.pi_name a) (G.pis a) in
  let nv = List.length names in
  let tb = truthtables b in
  List.find_map
    (fun (name, va) ->
      match List.assoc_opt name tb with
      | None -> None
      | Some vb ->
          let rec go m =
            if m >= 1 lsl nv then None
            else if Truthtable.get_bit va m <> Truthtable.get_bit vb m then
              Some
                {
                  po = name;
                  inputs =
                    List.mapi (fun k n -> (n, m land (1 lsl k) <> 0)) names;
                }
            else go (m + 1)
          in
          go 0)
    (truthtables a)

let bit_index diff =
  let rec go i =
    if i >= 64 then 0
    else if Int64.logand (Int64.shift_right_logical diff i) 1L = 1L then i
    else go (i + 1)
  in
  go 0

let cex_random ~rounds ~seed a b =
  let rng = Lsutil.Rng.create seed in
  let found = ref None in
  for _ = 1 to rounds do
    if !found = None then begin
      let tbl = Hashtbl.create 64 in
      let stim name =
        match Hashtbl.find_opt tbl name with
        | Some v -> v
        | None ->
            let v =
              Int64.logor
                (Int64.of_int (Lsutil.Rng.int rng 0x40000000))
                (Int64.shift_left
                   (Int64.of_int (Lsutil.Rng.int rng 0x40000000))
                   34)
            in
            Hashtbl.add tbl name v;
            v
      in
      let ra = run a stim and rb = run b stim in
      List.iter
        (fun (name, va) ->
          if !found = None then
            match List.assoc_opt name rb with
            | Some vb when not (Int64.equal va vb) ->
                let bit = bit_index (Int64.logxor va vb) in
                let inputs =
                  List.map
                    (fun id ->
                      let n = G.pi_name a id in
                      ( n,
                        Int64.logand
                          (Int64.shift_right_logical (stim n) bit)
                          1L
                        = 1L ))
                    (G.pis a)
                in
                found := Some { po = name; inputs }
            | _ -> ())
        ra
    end
  done;
  !found

let counterexample ?(rounds = 64) ?(max_exact_pis = 14) ~seed a b =
  if not (same_interface a b) then
    invalid_arg "Simulate.counterexample: interface mismatch";
  let exact =
    G.num_pis a <= max_exact_pis
    && List.map (G.pi_name a) (G.pis a) = List.map (G.pi_name b) (G.pis b)
  in
  if exact then cex_exact a b else cex_random ~rounds ~seed a b

let equivalent ?(max_exact_pis = 14) ~seed a b =
  if not (same_interface a b) then false
  else if G.num_pis a <= max_exact_pis then begin
    (* align PI order of [b] to [a]'s by name *)
    let order g = List.map (G.pi_name g) (G.pis g) in
    if order a <> order b then equivalent_random ~seed a b
    else
      let sort = List.sort compare in
      let ta = sort (truthtables a) and tb = sort (truthtables b) in
      List.for_all2
        (fun (na, va) (nb, vb) -> na = nb && Truthtable.equal va vb)
        ta tb
  end
  else equivalent_random ~seed a b
