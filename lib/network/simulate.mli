(** Bit-parallel simulation and exact truth tables for networks. *)

val run : Graph.t -> (string -> int64) -> (string * int64) list
(** [run n stim] evaluates the network on 64 parallel patterns.
    [stim] gives the 64 input bits per named PI; the result lists the
    64 output bits per named PO. *)

val truthtables : Graph.t -> (string * Truthtable.t) list
(** Exact truth table per PO, over the PIs in declaration order
    (PI [k] is truth-table variable [k]).  Only usable when the
    network has at most 20 PIs. *)

val equivalent_random : ?rounds:int -> seed:int -> Graph.t -> Graph.t -> bool
(** Probabilistic equivalence check: both networks must have the same
    PI and PO names; they are driven with the same random patterns and
    compared.  [rounds] batches of 64 patterns (default 64). *)

val equivalent : ?max_exact_pis:int -> seed:int -> Graph.t -> Graph.t -> bool
(** Exact truth-table comparison when the PI count is at most
    [max_exact_pis] (default 14), otherwise falls back to
    {!equivalent_random}. *)

val same_interface : Graph.t -> Graph.t -> bool
(** Same PI and PO name sets (order-insensitive). *)

(** {1 Counterexample extraction}

    Used by the transform guards ([Mig.Check.guarded],
    [Aig.Check.guarded]) to report not just that a pass broke
    equivalence but on which output and under which input
    assignment. *)

type cex = Check_guard.cex = { po : string; inputs : (string * bool) list }
(** A distinguishing input assignment: the named PO evaluates
    differently on the two networks under [inputs]. *)

val pp_cex : Format.formatter -> cex -> unit

val counterexample :
  ?rounds:int -> ?max_exact_pis:int -> seed:int -> Graph.t -> Graph.t -> cex option
(** A concrete input vector separating the two networks, or [None]
    when none was found (which is a proof of equivalence only on the
    exact truth-table path, taken when the PI count is at most
    [max_exact_pis] and the PI orders agree; otherwise [rounds]
    batches of 64 random patterns are tried).  Raises
    [Invalid_argument] when the interfaces differ. *)
