module S = Signal
module Vec = Lsutil.Vec

type fn = And | Or | Xor | Maj | Mux

type node =
  | Const0
  | Pi of string
  | Gate of fn * S.t array

type key = { kfn : fn; kfanins : int array }

type t = {
  nodes : node Vec.t;
  strash : (key, int) Hashtbl.t;
  mutable pi_ids : int list; (* reversed *)
  mutable po_list : (string * S.t) list; (* reversed *)
}

let create () =
  let nodes = Vec.create () in
  ignore (Vec.push nodes Const0);
  { nodes; strash = Hashtbl.create 1024; pi_ids = []; po_list = [] }

let const0 _n = S.make 0 false
let const1 _n = S.make 0 true

let add_pi n name =
  let id = Vec.push n.nodes (Pi name) in
  n.pi_ids <- id :: n.pi_ids;
  S.make id false

let add_po n name s = n.po_list <- (name, s) :: n.po_list

let not_ = S.not_

let new_gate n fn fanins =
  let key = { kfn = fn; kfanins = Array.map (fun s -> (s : S.t :> int)) fanins } in
  match Hashtbl.find_opt n.strash key with
  | Some id -> S.make id false
  | None ->
      let id = Vec.push n.nodes (Gate (fn, fanins)) in
      Hashtbl.add n.strash key id;
      S.make id false

let is_const0 s = S.equal s (S.make 0 false)
let is_const1 s = S.equal s (S.make 0 true)

let sort2 a b = if S.compare a b <= 0 then (a, b) else (b, a)

let and_ n a b =
  if is_const0 a || is_const0 b then const0 n
  else if is_const1 a then b
  else if is_const1 b then a
  else if S.equal a b then a
  else if S.equal a (S.not_ b) then const0 n
  else
    let a, b = sort2 a b in
    new_gate n And [| a; b |]

let or_ n a b =
  if is_const1 a || is_const1 b then const1 n
  else if is_const0 a then b
  else if is_const0 b then a
  else if S.equal a b then a
  else if S.equal a (S.not_ b) then const1 n
  else
    let a, b = sort2 a b in
    new_gate n Or [| a; b |]

let xor_ n a b =
  if is_const0 a then b
  else if is_const0 b then a
  else if is_const1 a then S.not_ b
  else if is_const1 b then S.not_ a
  else if S.equal a b then const0 n
  else if S.equal a (S.not_ b) then const1 n
  else begin
    (* Normalize: both fanins regular, complement pulled to output. *)
    let inv = S.is_complement a <> S.is_complement b in
    let a = S.regular a and b = S.regular b in
    let a, b = sort2 a b in
    S.xor_complement (new_gate n Xor [| a; b |]) inv
  end

let maj n a b c =
  (* Ω.M folding *)
  if S.equal a b then a
  else if S.equal a c then a
  else if S.equal b c then b
  else if S.equal a (S.not_ b) then c
  else if S.equal a (S.not_ c) then b
  else if S.equal b (S.not_ c) then a
  else if is_const0 a then and_ n b c
  else if is_const1 a then or_ n b c
  else if is_const0 b then and_ n a c
  else if is_const1 b then or_ n a c
  else if is_const0 c then and_ n a b
  else if is_const1 c then or_ n a b
  else begin
    let l = List.sort S.compare [ a; b; c ] in
    match l with
    | [ a; b; c ] -> new_gate n Maj [| a; b; c |]
    | _ -> assert false
  end

let mux n s t e =
  if is_const1 s then t
  else if is_const0 s then e
  else if S.equal t e then t
  else if S.equal t (S.not_ e) then xor_ n s e
  else if is_const0 t then and_ n (S.not_ s) e
  else if is_const1 t then or_ n s e
  else if is_const0 e then and_ n s t
  else if is_const1 e then or_ n (S.not_ s) t
  else new_gate n Mux [| s; t; e |]

let rec tree op n = function
  | [] -> invalid_arg "Graph: empty tree"
  | [ x ] -> x
  | xs ->
      let rec pair = function
        | a :: b :: rest -> op n a b :: pair rest
        | rest -> rest
      in
      tree op n (pair xs)

let and_n n = function [] -> const1 n | xs -> tree and_ n xs
let or_n n = function [] -> const0 n | xs -> tree or_ n xs
let xor_n n = function [] -> const0 n | xs -> tree xor_ n xs

let num_nodes n = Vec.length n.nodes
let node n i = Vec.get n.nodes i
let pis n = List.rev n.pi_ids
let num_pis n = List.length n.pi_ids
let pos n = List.rev n.po_list
let num_pos n = List.length n.po_list

let pi_name n i =
  match node n i with
  | Pi name -> name
  | _ -> invalid_arg "Graph.pi_name: not a PI"

let iter_nodes n f = Vec.iteri f n.nodes

let iter_gates n f =
  Vec.iteri
    (fun i nd -> match nd with Gate (fn, fanins) -> f i fn fanins | _ -> ())
    n.nodes

let size n =
  let c = ref 0 in
  iter_gates n (fun _ _ _ -> incr c);
  !c

let fanout_counts n =
  let counts = Array.make (num_nodes n) 0 in
  iter_gates n (fun _ _ fanins ->
      Array.iter (fun s -> counts.(S.node s) <- counts.(S.node s) + 1) fanins);
  List.iter (fun (_, s) -> counts.(S.node s) <- counts.(S.node s) + 1) (pos n);
  counts

let cleanup n =
  let fresh = create () in
  let map = Array.make (num_nodes n) None in
  map.(0) <- Some (const0 fresh);
  (* keep all PIs, in order, to preserve the interface *)
  List.iter (fun id -> map.(id) <- Some (add_pi fresh (pi_name n id))) (pis n);
  let lookup s =
    match map.(S.node s) with
    | Some s' -> S.xor_complement s' (S.is_complement s)
    | None -> assert false
  in
  let rec build id =
    match map.(id) with
    | Some _ -> ()
    | None -> (
        match node n id with
        | Const0 | Pi _ -> assert false
        | Gate (fn, fanins) ->
            Array.iter (fun s -> build (S.node s)) fanins;
            let fs = Array.map lookup fanins in
            let s =
              match (fn, fs) with
              | And, [| a; b |] -> and_ fresh a b
              | Or, [| a; b |] -> or_ fresh a b
              | Xor, [| a; b |] -> xor_ fresh a b
              | Maj, [| a; b; c |] -> maj fresh a b c
              | Mux, [| s; t; e |] -> mux fresh s t e
              | _ -> assert false
            in
            map.(id) <- Some s)
  in
  List.iter
    (fun (name, s) ->
      build (S.node s);
      add_po fresh name (lookup s))
    (pos n);
  fresh

let pp_stats fmt n =
  Format.fprintf fmt "i/o = %d/%d, gates = %d" (num_pis n) (num_pos n) (size n)

(* ----- checker support ----- *)

let strash_count n = Hashtbl.length n.strash

let find_gate n fn fanins =
  Hashtbl.find_opt n.strash
    { kfn = fn; kfanins = Array.map (fun s -> (s : S.t :> int)) fanins }

module Unsafe = struct
  let push_gate n fn fanins = Vec.push n.nodes (Gate (fn, fanins))

  let strash_add n fn fanins id =
    Hashtbl.add n.strash
      { kfn = fn; kfanins = Array.map (fun s -> (s : S.t :> int)) fanins }
      id
end

let flatten_aoig n =
  let fresh = create () in
  let map = Array.make (num_nodes n) (const0 fresh) in
  List.iter (fun id -> map.(id) <- add_pi fresh (pi_name n id)) (pis n);
  let value s = S.xor_complement map.(S.node s) (S.is_complement s) in
  iter_gates n (fun i fn fs ->
      let v k = value fs.(k) in
      map.(i) <-
        (match fn with
        | And -> and_ fresh (v 0) (v 1)
        | Or -> or_ fresh (v 0) (v 1)
        | Xor ->
            or_ fresh
              (and_ fresh (v 0) (S.not_ (v 1)))
              (and_ fresh (S.not_ (v 0)) (v 1))
        | Maj ->
            or_ fresh
              (and_ fresh (v 0) (v 1))
              (and_ fresh (v 2) (or_ fresh (v 0) (v 1)))
        | Mux ->
            or_ fresh
              (and_ fresh (v 0) (v 1))
              (and_ fresh (S.not_ (v 0)) (v 2))));
  List.iter (fun (name, s) -> add_po fresh name (value s)) (pos n);
  fresh
