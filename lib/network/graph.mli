(** Generic multi-level logic network.

    A network is a DAG of primitive gates (2-input AND/OR/XOR, 3-input
    MAJ and MUX) over complementable signals, with named primary
    inputs and outputs.  Node 0 is the constant 0.  Builders perform
    local constant folding and structural hashing, so the network is
    always reduced and shared.  Nodes are stored in topological
    order. *)

type fn = And | Or | Xor | Maj | Mux

type node =
  | Const0
  | Pi of string
  | Gate of fn * Signal.t array

type t

val create : unit -> t

(** {1 Construction} *)

val const0 : t -> Signal.t
val const1 : t -> Signal.t
val add_pi : t -> string -> Signal.t
val add_po : t -> string -> Signal.t -> unit

val not_ : Signal.t -> Signal.t
val and_ : t -> Signal.t -> Signal.t -> Signal.t
val or_ : t -> Signal.t -> Signal.t -> Signal.t
val xor_ : t -> Signal.t -> Signal.t -> Signal.t
val maj : t -> Signal.t -> Signal.t -> Signal.t -> Signal.t
val mux : t -> Signal.t -> Signal.t -> Signal.t -> Signal.t
(** [mux n s t e] is [if s then t else e]. *)

val and_n : t -> Signal.t list -> Signal.t
(** Balanced conjunction tree; [and_n n []] is constant 1. *)

val or_n : t -> Signal.t list -> Signal.t
val xor_n : t -> Signal.t list -> Signal.t

(** {1 Access} *)

val size : t -> int
(** Number of gate nodes (constants and PIs excluded). *)

val num_nodes : t -> int
(** Total node count including constant and PIs. *)

val node : t -> int -> node
val num_pis : t -> int
val num_pos : t -> int
val pis : t -> int list
(** PI node indices, in insertion order. *)

val pos : t -> (string * Signal.t) list
(** Named outputs, in insertion order. *)

val pi_name : t -> int -> string
(** Name of a PI node.  Raises if the node is not a PI. *)

val iter_nodes : t -> (int -> node -> unit) -> unit
(** Iterate all nodes in topological order. *)

val iter_gates : t -> (int -> fn -> Signal.t array -> unit) -> unit
(** Iterate only gate nodes, topological order. *)

val fanout_counts : t -> int array
(** Per-node fanout counts, counting PO references. *)

(** {1 Transformation} *)

val flatten_aoig : t -> t
(** Rewrite into AND/OR/INV primitives only (the "flattened into
    Boolean primitives" input form of the paper's §V.A.1): XOR, MAJ
    and MUX gates are expanded into their AOIG decompositions. *)

val cleanup : t -> t
(** Copy of the network containing only nodes reachable from its POs.
    All PIs are preserved (with their names) even when dangling, so
    I/O counts are stable. *)

val pp_stats : Format.formatter -> t -> unit

(** {1 Checker support} *)

val strash_count : t -> int
(** Number of strash entries; equal to {!size} on a well-formed
    network. *)

val find_gate : t -> fn -> Signal.t array -> int option
(** Exact structural-hash lookup (no operand normalization). *)

module Unsafe : sig
  (** Invariant-bypassing mutators for the checker's test-suite; see
      {!Mig.Graph.Unsafe} for the contract. *)

  val push_gate : t -> fn -> Signal.t array -> int
  val strash_add : t -> fn -> Signal.t array -> int -> unit
end
