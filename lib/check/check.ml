(* Umbrella module: [Check.Report], [Check.Rules], [Check.Env].  The
   per-graph rule implementations live with their graphs — see
   [Mig.Check], [Aig.Check] and [Network.Check]. *)

module Report = Check_report
module Rules = Check_rules
module Env = Check_env
module Guard = Check_guard
module San = Check_san
