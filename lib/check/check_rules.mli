(** The registry of structural lint rules.

    Each rule has a stable code used in {!Check_report.finding.rule};
    DESIGN.md ("Invariants and the checker") catalogues the paper
    justification per rule.  The registry is data only — the rule
    implementations live next to the graph they check
    ([Mig.Check], [Aig.Check], [Network.Check]). *)

val all : (string * string) list
(** [(code, one-line description)] for every known rule, in order. *)

val describe : string -> string option
(** Description of a rule code, [None] when unknown. *)

val mem : string -> bool

val pp_catalog : Format.formatter -> unit -> unit
(** The full rule catalog, one rule per line (for [mighty check
    --list-rules]). *)
