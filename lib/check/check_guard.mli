(** Shared vocabulary of the transform guards.

    [Mig.Check.guarded] and [Aig.Check.guarded] wrap a graph-to-graph
    pass with pre/post lint and an equivalence miter; when anything
    fires they raise {!Failed} carrying the stage, the lint report
    and/or the distinguishing input vector.  The types live here so
    that both guards (and {!Network.Simulate.counterexample}) agree on
    them. *)

type stage = Pre_lint | Post_lint | Equivalence | Bdd_crosscheck

type cex = { po : string; inputs : (string * bool) list }
(** A distinguishing input assignment: the named PO evaluates
    differently before and after the pass under [inputs]. *)

type failure = {
  name : string;  (** the [~name] of the guarded pass *)
  stage : stage;
  report : Check_report.t option;  (** present on lint failures *)
  cex : cex option;  (** present on equivalence failures, when found *)
}

exception Failed of failure

val fail : failure -> 'a
val stage_name : stage -> string
val pp_cex : Format.formatter -> cex -> unit
val pp_failure : Format.formatter -> failure -> unit
