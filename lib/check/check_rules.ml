let all =
  [
    (* MIG rules — invariants of Mig.Graph (paper §III.A, Ω.I/Ω.C
       normalization, structural hashing) *)
    ("MIG001", "majority fanins are topologically ordered (acyclicity)");
    ("MIG002", "no dangling signal ids in fanins, POs or node slots");
    ("MIG003", "strash table is consistent: every node's normalized key \
                maps back to itself, no structural duplicates, no stale \
                entries");
    ("MIG004", "nodes are normalized: fanins sorted by Signal.compare, at \
                most one complemented fanin, not collapsible by the \
                majority axiom Omega.M");
    ("MIG005", "PI/PO integrity: node 0 is the constant, PI slots and the \
                PI list agree, PI names are unique and present, PO names \
                are unique");
    ("MIG006", "dead-node accounting: nodes unreachable from the POs \
                (cleanup would remove them)");
    (* AIG rules — invariants of Aig.Graph *)
    ("AIG001", "AND fanins are topologically ordered (acyclicity)");
    ("AIG002", "no dangling signal ids in fanins, POs or node slots");
    ("AIG003", "strash table is consistent: every node's key maps back to \
                itself, no structural duplicates, no stale entries");
    ("AIG004", "nodes are normalized: fanins ordered, no constant, equal \
                or complementary fanin pairs");
    ("AIG005", "PI/PO integrity: node 0 is the constant, PI slots and the \
                PI list agree, PI names are unique and present, PO names \
                are unique");
    ("AIG006", "dead-node accounting: nodes unreachable from the POs");
    (* Network rules — invariants of Network.Graph *)
    ("NET001", "gate fanins are topologically ordered (acyclicity)");
    ("NET002", "no dangling signal ids in fanins or POs");
    ("NET003", "strash table is consistent: every gate's key maps back to \
                itself, no structural duplicates, no stale entries");
    ("NET004", "gates are in canonical constructor form: correct arity, \
                sorted symmetric operands, no constant-foldable or \
                collapsible gate");
    ("NET005", "PI/PO integrity: node 0 is the constant, PI names are \
                unique and present, PO names are unique");
    ("NET006", "dead-node accounting: gates unreachable from the POs");
    (* SAN rules — the Lsutil.San domain-ownership/lifetime sanitizer
       (MIG_SAN=1, DESIGN.md §14) *)
    ("SAN001", "cross-domain read of an owned structure (publish or \
                transfer before handing a graph to another domain)");
    ("SAN002", "cross-domain or published-structure mutation (only the \
                owning domain may write; published means read-only)");
    ("SAN003", "stale-generation access: node ids minted before a \
                compact/cleanup renumbering were validated after it");
    ("SAN004", "illegal ownership handoff: publish by a non-owner, or \
                transfer of a structure owned by another domain");
    ("SAN005", "double lease of a scratch buffer (caught at lease time)");
    ("SAN006", "leaked lease: a scratch buffer still out at San.drain");
    (* SRC rules — the AST source linter (tools/lint_src.exe); scopes
       and exemptions live in Lint_rules.applies *)
    ("SRC001", "top-level mutable singleton: structure-level binding to \
                ref/Hashtbl.create/Atomic.make in lib/");
    ("SRC002", "Domain.spawn outside Flow.Batch");
    ("SRC003", "raw wall-clock read outside Budget/Telemetry in lib/");
    ("SRC004", "Obj.magic anywhere");
    ("SRC005", "catch-all `with _ ->` exception handler in lib/");
    ("SRC006", "Sys.getenv outside Lsutil.Env in lib/");
    ("SRC007", "raw socket call outside lib/serve");
  ]

let describe code = List.assoc_opt code all
let mem code = List.mem_assoc code all

let pp_catalog fmt () =
  Format.fprintf fmt "@[<v>";
  List.iteri
    (fun i (code, descr) ->
      if i > 0 then Format.fprintf fmt "@,";
      Format.fprintf fmt "%s  %s" code descr)
    all;
  Format.fprintf fmt "@]"
