(* Bridge from the runtime sanitizer to the structured report
   vocabulary: San findings carry the same stable codes as the rest of
   the checker (SAN001..SAN006 live in Check_rules.all), so `mighty
   check --json` and CI diffing see one finding stream regardless of
   whether a rule fired statically or at runtime. *)

let report ?(subject = "san") san =
  let r = Check_report.create ~subject in
  List.iter
    (fun (f : Lsutil.San.finding) ->
      Check_report.error r ~rule:f.code "%s: %s" f.subject f.detail)
    (Lsutil.San.findings san);
  r
