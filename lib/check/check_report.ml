type severity = Error | Warning

type finding = {
  rule : string;
  severity : severity;
  node : int option;
  detail : string;
}

type t = { subj : string; mutable rev_findings : finding list }

let create ~subject = { subj = subject; rev_findings = [] }
let subject r = r.subj

let record r severity ?node ~rule fmt =
  Format.kasprintf
    (fun detail ->
      r.rev_findings <- { rule; severity; node; detail } :: r.rev_findings)
    fmt

let error r ?node ~rule fmt = record r Error ?node ~rule fmt
let warning r ?node ~rule fmt = record r Warning ?node ~rule fmt
let findings r = List.rev r.rev_findings
let errors r = List.filter (fun f -> f.severity = Error) (findings r)
let is_clean r = List.for_all (fun f -> f.severity <> Error) r.rev_findings
let has_rule r rule = List.exists (fun f -> f.rule = rule) r.rev_findings

let merge reports ~subject =
  {
    subj = subject;
    rev_findings = List.concat_map (fun r -> r.rev_findings) (List.rev reports);
  }

let pp_finding fmt f =
  Format.fprintf fmt "%s [%s]%t %s" f.rule
    (match f.severity with Error -> "error" | Warning -> "warning")
    (fun fmt ->
      match f.node with
      | Some id -> Format.fprintf fmt " node %d:" id
      | None -> Format.fprintf fmt ":")
    f.detail

let pp fmt r =
  match findings r with
  | [] -> Format.fprintf fmt "%s: clean" r.subj
  | fs ->
      Format.fprintf fmt "@[<v>%s: %d finding(s)" r.subj (List.length fs);
      List.iter (fun f -> Format.fprintf fmt "@,  %a" pp_finding f) fs;
      Format.fprintf fmt "@]"

let to_string r = Format.asprintf "%a" pp r

(* ----- mighty-check/1 ----- *)

module J = Lsutil.Json

let finding_to_json f =
  J.Obj
    ([
       ("rule", J.String f.rule);
       ( "severity",
         J.String
           (match f.severity with Error -> "error" | Warning -> "warning") );
     ]
    @ (match f.node with Some id -> [ ("node", J.Int id) ] | None -> [])
    @ [ ("message", J.String f.detail) ])

let to_json r =
  let fs = findings r in
  J.Obj
    [
      ("subject", J.String r.subj);
      ("clean", J.Bool (is_clean r));
      ("count", J.Int (List.length fs));
      ("findings", J.List (List.map finding_to_json fs));
    ]

let reports_to_json reports =
  J.Obj
    [
      ("schema", J.String "mighty-check/1");
      ("tool", J.String "mighty check");
      ( "clean",
        J.Bool (List.for_all is_clean reports) );
      ("reports", J.List (List.map to_json reports));
    ]
