(** Check-policy resolution.

    Every [?check] flag on an optimization pass resolves against the
    policy of the execution context the pass runs under
    ([Lsutil.Ctx.check]), so building a context with [~check:true] —
    or exporting [MIG_CHECK=1], which [Ctx.default] parses via
    [Lsutil.Env] — turns the whole code base into its self-verifying
    variant (pre/post lint plus a random-simulation miter around each
    pass) without touching call sites.  There is no hidden
    environment read here. *)

val resolve : default:bool -> bool option -> bool
(** [resolve ~default flag] is [flag] when given, [default] (the ctx
    policy) otherwise — the one-liner every [?check] parameter goes
    through. *)
