(** Environment-driven defaults for the checker.

    Every [?check] flag on an optimization pass defaults to
    [enabled ()], so exporting [MIG_CHECK=1] turns the whole code base
    into its self-verifying variant (pre/post lint plus a
    random-simulation miter around each pass) without touching call
    sites. *)

val enabled : unit -> bool
(** [true] iff [MIG_CHECK] is set to [1], [true], [on] or [yes]
    (case-insensitive).  Read afresh on every call, so tests can
    toggle it with [Unix.putenv]. *)

val resolve : bool option -> bool
(** [resolve flag] is [flag] when given, [enabled ()] otherwise — the
    one-liner every [?check] parameter goes through. *)
