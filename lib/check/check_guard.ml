type stage = Pre_lint | Post_lint | Equivalence | Bdd_crosscheck
type cex = { po : string; inputs : (string * bool) list }

type failure = {
  name : string;
  stage : stage;
  report : Check_report.t option;
  cex : cex option;
}

exception Failed of failure

let fail f = raise (Failed f)

let stage_name = function
  | Pre_lint -> "pre-lint"
  | Post_lint -> "post-lint"
  | Equivalence -> "equivalence"
  | Bdd_crosscheck -> "BDD crosscheck"

let pp_cex fmt c =
  Format.fprintf fmt "@[<hov 2>PO %s differs under" c.po;
  List.iter
    (fun (name, v) -> Format.fprintf fmt "@ %s=%d" name (if v then 1 else 0))
    c.inputs;
  Format.fprintf fmt "@]"

let pp_failure fmt f =
  Format.fprintf fmt "@[<v>check failed: pass %S, stage %s" f.name
    (stage_name f.stage);
  (match f.report with
  | Some r -> Format.fprintf fmt "@,%a" Check_report.pp r
  | None -> ());
  (match f.cex with
  | Some c -> Format.fprintf fmt "@,%a" pp_cex c
  | None -> ());
  Format.fprintf fmt "@]"

let () =
  Printexc.register_printer (function
    | Failed f -> Some (Format.asprintf "%a" pp_failure f)
    | _ -> None)
