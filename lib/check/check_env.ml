(* The checker's policy is carried by the execution context
   ([Lsutil.Ctx.check]); this module is just the resolution one-liner
   every [?check] parameter goes through.  The [MIG_CHECK] environment
   variable is parsed once, in [Lsutil.Env]. *)

let resolve ~default = function Some b -> b | None -> default
