let enabled () =
  match Sys.getenv_opt "MIG_CHECK" with
  | None -> false
  | Some v -> (
      match String.lowercase_ascii (String.trim v) with
      | "1" | "true" | "on" | "yes" -> true
      | _ -> false)

let resolve = function Some b -> b | None -> enabled ()
