(** Runtime-sanitizer findings as a structured report.

    [Lsutil.San] cannot depend on this library, so the translation
    into {!Check_report} lives here: each recorded sanitizer finding
    becomes an [Error]-severity report finding under its stable
    SAN00x code (registered in {!Check_rules.all}). *)

val report : ?subject:string -> Lsutil.San.t -> Check_report.t
(** [report san] — everything the handle has recorded, as one report
    (clean when the run was sanitizer-silent).  [subject] defaults to
    ["san"]. *)
