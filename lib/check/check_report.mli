(** Structured lint reports.

    Every structural rule (see {!Check_rules}) reports its findings
    through this module: a finding carries the stable rule code, a
    severity, the offending node id when there is one, and a
    human-readable detail line.  A report is clean when it contains no
    [Error]-severity finding; [Warning]s (e.g. dead-node accounting)
    never fail a check. *)

type severity = Error | Warning

type finding = {
  rule : string;  (** stable rule code, e.g. ["MIG003"] *)
  severity : severity;
  node : int option;  (** offending node id, when the rule is local *)
  detail : string;
}

type t

val create : subject:string -> t
(** [create ~subject] starts an empty report; [subject] names the
    checked object (e.g. ["mig"], ["aig:post opt_size"]). *)

val subject : t -> string

val error : t -> ?node:int -> rule:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Record an [Error]-severity finding, [Format]-style. *)

val warning : t -> ?node:int -> rule:string -> ('a, Format.formatter, unit, unit) format4 -> 'a

val findings : t -> finding list
(** All findings, in the order they were recorded. *)

val errors : t -> finding list
(** Only the [Error]-severity findings. *)

val is_clean : t -> bool
(** [true] iff the report has no [Error] finding. *)

val has_rule : t -> string -> bool
(** Did any finding (of either severity) fire for this rule code? *)

val merge : t list -> subject:string -> t
(** Concatenate several reports under one subject. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val to_json : t -> Lsutil.Json.t
(** One report as a JSON object: subject, clean flag, findings with
    their stable rule codes. *)

val reports_to_json : t list -> Lsutil.Json.t
(** The [mighty-check/1] document: a schema header plus one entry per
    report, so CI can diff rule findings across runs. *)
