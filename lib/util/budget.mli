(** Cooperative resource budgets: wall-clock deadlines and node-arena
    caps for long-running passes.

    A budget is installed with {!with_budget} and enforced
    cooperatively: hot loops call {!poll} (cheap, amortized clock
    check) and allocation sites call {!note_nodes}.  When the deadline
    passes or the node cap is exceeded, the next check raises
    {!Exhausted}; the pass unwinds and the caller (typically
    [Flow.Engine]) falls back to its last checkpoint.

    When no budget is installed every entry point is a single
    load-and-branch, so instrumented hot paths pay (close to) nothing.

    Budgets nest: an inner {!with_budget} never extends the ambient
    deadline (the effective deadline is the minimum) and its node cap
    is clamped to the ambient remaining allowance.  Nodes noted inside
    the inner extent are charged to the outer budget when the inner
    one exits. *)

type reason =
  | Deadline  (** the wall-clock deadline passed *)
  | Node_cap  (** more nodes were allocated than the cap allows *)

exception Exhausted of reason

val reason_name : reason -> string
(** ["deadline"] / ["node_cap"]. *)

val with_budget :
  ?deadline_s:float -> ?max_nodes:int -> (unit -> 'a) -> 'a
(** [with_budget ?deadline_s ?max_nodes f] runs [f] under a budget of
    [deadline_s] seconds of wall-clock time and [max_nodes] noted node
    allocations.  Omitted limits are unconstrained (but an ambient
    budget, if any, still applies).  The previous budget is restored
    on exit, normally or exceptionally. *)

val active : unit -> bool
(** [true] while some budget is installed. *)

val poll : unit -> unit
(** Deadline poll point.  Amortizes the clock read over
    {!poll_interval} calls; raises {!Exhausted} when the installed
    deadline has passed.  No-op without a budget. *)

val note_nodes : int -> unit
(** [note_nodes n] charges [n] node allocations to the installed
    budget and raises {!Exhausted} when the cap is exceeded.  Also
    counts toward the amortized deadline poll, so allocation-heavy
    loops are deadline-responsive without separate {!poll} calls.
    No-op without a budget. *)

val check : unit -> unit
(** Unamortized check of both limits right now.  Raises {!Exhausted}
    if either is blown.  Use at coarse boundaries (pass entry). *)

val expired : unit -> bool
(** [true] when the installed budget is already blown (a previous
    check raised, the deadline has passed, or the cap is exceeded).
    Never raises; [false] without a budget. *)

val remaining_nodes : unit -> int option
(** Remaining node allowance of the installed budget, when it has a
    node cap. *)

val suspended : (unit -> 'a) -> 'a
(** [suspended f] runs [f] with no budget installed (the ambient one,
    blown or not, is restored afterwards).  Allocations inside are
    charged to nobody.  Used by the engine for checkpoint
    verification, which must run even after the budget is blown. *)

val exhaust : unit -> 'a
(** Force-blow the installed budget (marking it expired, so
    {!expired} is [true] afterwards) and raise [Exhausted Deadline].
    With no budget installed it still raises.  Used by fault
    injection. *)

val poll_interval : int
(** Number of {!poll}/{!note_nodes} calls between clock reads. *)
