(** Cooperative resource budgets: wall-clock deadlines and node-arena
    caps for long-running passes.

    A {!t} is an explicit handle owned by an execution context
    ({!Ctx}); there is no process-global budget, so independent
    contexts meter concurrently without interference.  A handle must
    not be shared across domains (DESIGN.md §13).

    A budget is installed with {!with_budget} (or at handle creation)
    and enforced cooperatively: hot loops call {!poll} (cheap,
    amortized clock check) and allocation sites call {!note_nodes}.
    When the deadline passes or the node cap is exceeded, the next
    check raises {!Exhausted}; the pass unwinds and the caller
    (typically [Flow.Engine]) falls back to its last checkpoint.

    Budgets nest: an inner {!with_budget} never extends the outer one
    (its deadline is clamped to the minimum, its node cap to the
    parent's remainder) and on exit the inner extent's allocations are
    charged outward.  With no budget installed every probe costs one
    extra load and a branch, so probes stay in hot paths
    permanently. *)

type reason = Deadline | Node_cap

exception Exhausted of reason

val reason_name : reason -> string

type t
(** A budget handle: either idle or carrying the installed budget. *)

val create : ?deadline_s:float -> ?max_nodes:int -> unit -> t
(** A fresh handle.  With neither limit it is idle (every probe is a
    near-no-op) until {!with_budget} installs one; with a limit, a
    root budget is installed immediately and lasts the handle's
    lifetime. *)

val with_budget :
  t -> ?deadline_s:float -> ?max_nodes:int -> (unit -> 'a) -> 'a
(** [with_budget t ?deadline_s ?max_nodes f] runs [f] under a budget.
    Omitted limits are unlimited (modulo the enclosing budget's).
    Nested calls clamp to the enclosing budget and charge their node
    allocations outward on exit (even on exceptions). *)

val poll : t -> unit
(** Cheap cooperative check for hot loops; reads the clock once every
    256 calls.  Raises {!Exhausted} when the budget is blown. *)

val note_nodes : t -> int -> unit
(** Charge [n] node allocations (called at every arena allocation
    site: MIG [push_node], AIG [and_], BDD [mk]).  Raises
    {!Exhausted} on cap overflow; also performs a {!poll} step. *)

val check : t -> unit
(** Unamortized check: reads the clock unconditionally. *)

val active : t -> bool
(** A budget is currently installed. *)

val expired : t -> bool
(** The installed budget is blown (without raising); [false] when
    idle. *)

val remaining_nodes : t -> int option
(** Remaining node allowance; [None] when uncapped or idle. *)

val remaining_s : t -> float option
(** Wall-clock seconds left on the installed deadline, clamped at 0;
    [None] when no deadline is installed (idle handle or node-cap-only
    budget).  Reads the clock, so callers that need determinism must
    only consult it when a deadline genuinely exists — search drivers
    use it to skip moves predicted not to fit, and that gating is
    inert in deadline-free (fully deterministic) runs. *)

val exhaust : t -> 'a
(** Force the installed budget blown and raise {!Exhausted Deadline}
    (used by fault injection). *)

val interrupt : t -> unit
(** Asynchronously mark the handle exhausted: the next unmasked
    {!poll}/{!note_nodes}/{!check} raises [Exhausted Deadline] whether
    or not a budget is installed, so even an unbudgeted run unwinds to
    its checkpoint machinery.  Does not raise and does not allocate —
    safe to call from a signal handler ([mighty opt] maps SIGINT and
    SIGTERM to this, degrading to the engine's best-so-far instead of
    dying mid-pass).  {!suspended} extents mask the flag (it stays
    set): verification and fallback cleanup still complete after an
    interrupt.  The flag is sticky for the handle's lifetime. *)

val interrupted : t -> bool
(** {!interrupt} has been called on this handle. *)

val suspended : t -> (unit -> 'a) -> 'a
(** Run [f] with the budget uninstalled (verifiers must work after
    the deadline); restored on exit, even on exceptions. *)
