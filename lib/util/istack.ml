type t = { mutable a : int array; mutable n : int }

let create ?(capacity = 256) () = { a = Array.make (max capacity 1) 0; n = 0 }
let is_empty s = s.n = 0
let length s = s.n
let clear s = s.n <- 0

let[@inline] push s v =
  if s.n >= Array.length s.a then begin
    let a = Array.make (2 * Array.length s.a) 0 in
    Array.blit s.a 0 a 0 s.n;
    s.a <- a
  end;
  Array.unsafe_set s.a s.n v;
  s.n <- s.n + 1

let[@inline] top s = Array.unsafe_get s.a (s.n - 1)
let[@inline] pop s = s.n <- s.n - 1
