type kind = Raise | Exhaust | Corrupt

exception Injected of string

let sites = [ "transform"; "strash"; "bdd"; "mapper" ]

type spec = {
  seed : int;
  rate : float;
  kind : kind option;  (** [None] = any: drawn per fault *)
  site_filter : string list;  (** [[]] = all sites *)
  max_faults : int;
  after : int;  (** matching visits to skip before the plan is live *)
}

let default_spec =
  { seed = 0; rate = 1.0; kind = Some Raise; site_filter = [];
    max_faults = 1; after = 0 }

let kind_name = function
  | Some Raise -> "raise"
  | Some Exhaust -> "exhaust"
  | Some Corrupt -> "corrupt"
  | None -> "any"

let to_string s =
  let b = Buffer.create 64 in
  Buffer.add_string b (Printf.sprintf "seed=%d:rate=%g:kind=%s" s.seed s.rate
                         (kind_name s.kind));
  if s.site_filter <> [] then
    Buffer.add_string b (":sites=" ^ String.concat "," s.site_filter);
  Buffer.add_string b (Printf.sprintf ":max=%d" s.max_faults);
  if s.after > 0 then Buffer.add_string b (Printf.sprintf ":after=%d" s.after);
  Buffer.contents b

let parse str =
  let ( let* ) = Result.bind in
  let int_of key v =
    match int_of_string_opt v with
    | Some i when i >= 0 -> Ok i
    | _ -> Error (Printf.sprintf "fault spec: %s wants a non-negative int, got %S" key v)
  in
  let pair acc p =
    let* acc = acc in
    match String.index_opt p '=' with
    | None -> Error (Printf.sprintf "fault spec: %S is not key=value" p)
    | Some i -> (
        let key = String.sub p 0 i in
        let v = String.sub p (i + 1) (String.length p - i - 1) in
        match key with
        | "seed" ->
            let* s = int_of key v in
            Ok { acc with seed = s }
        | "rate" -> (
            match float_of_string_opt v with
            | Some r when r >= 0.0 && r <= 1.0 -> Ok { acc with rate = r }
            | _ -> Error (Printf.sprintf "fault spec: rate wants a float in [0,1], got %S" v))
        | "kind" -> (
            match v with
            | "raise" -> Ok { acc with kind = Some Raise }
            | "exhaust" -> Ok { acc with kind = Some Exhaust }
            | "corrupt" -> Ok { acc with kind = Some Corrupt }
            | "any" -> Ok { acc with kind = None }
            | _ -> Error (Printf.sprintf "fault spec: unknown kind %S" v))
        | "sites" ->
            let names = String.split_on_char ',' v in
            let bad = List.filter (fun n -> not (List.mem n sites)) names in
            if bad <> [] then
              Error (Printf.sprintf "fault spec: unknown site %S" (List.hd bad))
            else Ok { acc with site_filter = names }
        | "max" ->
            let* m = int_of key v in
            Ok { acc with max_faults = m }
        | "after" ->
            let* a = int_of key v in
            Ok { acc with after = a }
        | _ -> Error (Printf.sprintf "fault spec: unknown key %S" key))
  in
  let str = String.trim str in
  if str = "" then Error "fault spec: empty"
  else
    List.fold_left pair (Ok default_spec) (String.split_on_char ':' str)

type armed = {
  spec : spec;
  rng : Rng.t;
  mutable visits : int;
  mutable fired : int;
}

(* The handle owned by a [Ctx]: [None] when disarmed, so each
   injection point is one extra load and a branch.  There is no
   process-global plan — two contexts never share a handle. *)
type t = { mutable armed : armed option }

let create ?spec () =
  let t = { armed = None } in
  (match spec with
  | None -> ()
  | Some spec ->
      t.armed <- Some { spec; rng = Rng.create spec.seed; visits = 0; fired = 0 });
  t

let arm t spec =
  t.armed <- Some { spec; rng = Rng.create spec.seed; visits = 0; fired = 0 }

let arm_string t s = Result.map (arm t) (parse s)
let disarm t = t.armed <- None

let suspended t f =
  let saved = t.armed in
  t.armed <- None;
  Fun.protect ~finally:(fun () -> t.armed <- saved) f

let enabled t = t.armed <> None
let injected t = match t.armed with None -> 0 | Some st -> st.fired

let any_kinds = [| Raise; Exhaust; Corrupt |]

let fire t site =
  match t.armed with
  | None -> None
  | Some st ->
      let sp = st.spec in
      if sp.site_filter <> [] && not (List.mem site sp.site_filter) then None
      else begin
        st.visits <- st.visits + 1;
        if st.fired >= sp.max_faults || st.visits <= sp.after then None
          (* draw even at rate=1.0 so the stream position (and thus any
             later [kind=any] draw) depends only on the visit count *)
        else if Rng.float st.rng >= sp.rate then None
        else begin
          st.fired <- st.fired + 1;
          match sp.kind with
          | Some k -> Some k
          | None -> Some any_kinds.(Rng.int st.rng (Array.length any_kinds))
        end
      end
