(* Shadow-state concurrency/lifetime sanitizer for the arena-backed
   structures (DESIGN.md §14).

   Every sanitized structure registers a [tag] with the handle owned
   by its execution context.  A tag is [Off] (an immediate, so the
   disarmed check in every accessor is one load and one branch — the
   same discipline as [Budget.poll]) or a [cell] carrying the owning
   domain, a generation counter and a lease bit.  Accessors assert
   same-domain access unless ownership was explicitly handed off via
   {!publish}/{!transfer}; renumbering rebuilds bump the generation so
   node-id snapshots can be validated; scratch buffers are leased and
   a double lease or a leaked lease is a structured finding.

   Findings carry the stable codes SAN001–SAN006 and are always
   recorded in the handle (so a multi-domain run can assert
   cleanliness after joining); in [Raise] mode the violating access
   additionally raises {!Violation} at the call site. *)

type finding = {
  code : string;  (* stable rule code, SAN001..SAN006 *)
  subject : string;  (* the registered structure name *)
  detail : string;
}

exception Violation of finding

type mode = Raise | Collect

type t = {
  on : bool;
  mode : mode;
  mu : Mutex.t;  (* findings are recorded from the violating domain *)
  mutable rev_findings : finding list;
  mutable outstanding : cell list;  (* currently leased cells *)
}

and cell = {
  san : t;
  name : string;
  mutable owner : int;  (* domain id; -1 = published (shared read-only) *)
  mutable gen : int;
  mutable leased : bool;
}

(* [Off] is an immediate constructor: a disarmed tag costs nothing to
   carry and one compare to test. *)
type tag = Off | On of cell

let off = Off

let create ?(mode = Raise) ~enabled () =
  { on = enabled; mode; mu = Mutex.create (); rev_findings = [];
    outstanding = [] }

let enabled t = t.on
let findings t = List.rev t.rev_findings
let is_clean t = t.rev_findings = []

let self () = (Domain.self () :> int)

let violate c code fmt =
  Printf.ksprintf
    (fun detail ->
      let f = { code; subject = c.name; detail } in
      Mutex.protect c.san.mu (fun () ->
          c.san.rev_findings <- f :: c.san.rev_findings);
      match c.san.mode with Raise -> raise (Violation f) | Collect -> ())
    fmt

let register t ~name =
  if not t.on then Off
  else On { san = t; name; owner = self (); gen = 0; leased = false }

(* ----- access checks ----- *)

let read_access = function
  | Off -> ()
  | On c ->
      let d = self () in
      (* published (owner = -1) structures may be read from any
         domain: joined results are immutable by contract *)
      if c.owner <> d && c.owner <> -1 then
        violate c "SAN001"
          "read from domain %d but owned by domain %d (transfer or publish \
           first)"
          d c.owner

let write_access = function
  | Off -> ()
  | On c ->
      let d = self () in
      if c.owner = -1 then
        violate c "SAN002"
          "mutated from domain %d while published read-only (transfer to \
           reclaim ownership)"
          d
      else if c.owner <> d then
        violate c "SAN002" "mutated from domain %d but owned by domain %d" d
          c.owner

(* ----- generations (compact/cleanup renumbering) ----- *)

let snapshot = function Off -> 0 | On c -> c.gen

let bump ?(reason = "rebuild") tag =
  match tag with
  | Off -> ()
  | On c ->
      write_access tag;
      ignore reason;
      c.gen <- c.gen + 1

let validate tag ~snapshot:s =
  match tag with
  | Off -> ()
  | On c ->
      if c.gen <> s then
        violate c "SAN003"
          "stale access: node ids predate generation %d (snapshot %d was \
           invalidated by compact/cleanup renumbering)"
          c.gen s

(* ----- ownership handoff ----- *)

let publish = function
  | Off -> ()
  | On c ->
      let d = self () in
      if c.owner <> d && c.owner <> -1 then
        violate c "SAN004"
          "publish from domain %d but owned by domain %d (only the owner may \
           publish)"
          d c.owner
      else c.owner <- -1

let transfer = function
  | Off -> ()
  | On c ->
      let d = self () in
      if c.owner <> d && c.owner <> -1 then
        violate c "SAN004"
          "transfer to domain %d but still owned by domain %d (owner must \
           publish first)"
          d c.owner
      else c.owner <- d

let owner = function Off -> None | On c -> if c.owner = -1 then None else Some c.owner

(* ----- scratch-buffer leases ----- *)

let lease = function
  | Off -> ()
  | On c ->
      write_access (On c);
      if c.leased then
        violate c "SAN005" "double lease: buffer already leased out"
      else begin
        c.leased <- true;
        Mutex.protect c.san.mu (fun () ->
            c.san.outstanding <- c :: c.san.outstanding)
      end

let release = function
  | Off -> ()
  | On c ->
      c.leased <- false;
      Mutex.protect c.san.mu (fun () ->
          c.san.outstanding <- List.filter (fun x -> x != c) c.san.outstanding)

(* [drain t] closes an extent of work: every lease still outstanding
   is a leak.  Leaks are recorded for all outstanding cells before the
   first raise so the report is complete. *)
let drain t =
  if t.on then begin
    let leaked =
      Mutex.protect t.mu (fun () ->
          let l = t.outstanding in
          t.outstanding <- [];
          l)
    in
    let fs =
      List.rev_map
        (fun c ->
          c.leased <- false;
          { code = "SAN006"; subject = c.name;
            detail = "leaked lease: buffer never released to its pool" })
        leaked
    in
    Mutex.protect t.mu (fun () ->
        t.rev_findings <- List.rev_append (List.rev fs) t.rev_findings);
    match (fs, t.mode) with
    | f :: _, Raise -> raise (Violation f)
    | _ -> ()
  end

let pp_finding fmt f =
  Format.fprintf fmt "%s [%s]: %s" f.code f.subject f.detail
