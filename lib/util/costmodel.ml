type entry = {
  mutable flat_s : float;  (** EWMA of per-run flat seconds *)
  mutable per_node_s : float;  (** EWMA of seconds per input node *)
  mutable samples : int;
}

type t = (string, entry) Hashtbl.t

let create () : t = Hashtbl.create 16

(* Recent runs dominate: pass cost drifts as the graph shrinks over a
   search, so an equal-weight mean would systematically over-predict
   late moves. *)
let decay = 0.5

(* The split between flat and per-node cost is heuristic: we charge
   half of each observation to a size-independent term and half to a
   size-proportional one.  With observations at a single size the two
   parameterizations are indistinguishable; across sizes the blend
   tracks passes whose cost is dominated by either term without
   needing a regression. *)
let observe (t : t) key ~nodes ~time_s =
  let nodes_f = float_of_int (max 1 nodes) in
  match Hashtbl.find_opt t key with
  | None ->
      Hashtbl.add t key
        { flat_s = time_s /. 2.; per_node_s = time_s /. 2. /. nodes_f;
          samples = 1 }
  | Some e ->
      e.flat_s <- ((1. -. decay) *. e.flat_s) +. (decay *. time_s /. 2.);
      e.per_node_s <-
        ((1. -. decay) *. e.per_node_s)
        +. (decay *. time_s /. 2. /. nodes_f);
      e.samples <- e.samples + 1

let predict (t : t) key ~nodes =
  match Hashtbl.find_opt t key with
  | None -> None
  | Some e ->
      Some (e.flat_s +. (e.per_node_s *. float_of_int (max 1 nodes)))

let samples (t : t) key =
  match Hashtbl.find_opt t key with None -> 0 | Some e -> e.samples

let ingest (t : t) (root : Telemetry.node) =
  let rec walk (n : Telemetry.node) =
    (if String.length n.name >= 5 && String.sub n.name 0 5 = "move:" then
       match List.assoc_opt "nodes_in" n.meta with
       | Some (Telemetry.Int nodes) ->
           observe t n.name ~nodes ~time_s:n.elapsed
       | _ -> ());
    List.iter walk n.children
  in
  walk root
