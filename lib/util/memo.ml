(* Generic string-keyed memo store with a read-mostly sharing model:
   an immutable [base] snapshot that any number of domains may consult
   concurrently, plus a private [delta] per handle that collects new
   entries.  Deltas are extracted (sorted) and folded back into a new
   base between parallel regions, so no table is ever mutated while
   another domain can see it.  DESIGN.md §15. *)

type 'v base = { entries : (string, 'v) Hashtbl.t }

type 'v t = {
  base : 'v base;
  delta : (string, 'v) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let empty_base () = { entries = Hashtbl.create 64 }

let base_of_list kvs =
  let entries = Hashtbl.create (max 64 (List.length kvs)) in
  List.iter
    (fun (k, v) -> if not (Hashtbl.mem entries k) then Hashtbl.add entries k v)
    kvs;
  { entries }

let base_size b = Hashtbl.length b.entries

let base_to_list b =
  let l = Hashtbl.fold (fun k v acc -> (k, v) :: acc) b.entries [] in
  List.sort (fun (a, _) (b, _) -> String.compare a b) l

let fork base = { base; delta = Hashtbl.create 16; hits = 0; misses = 0 }

let find t k =
  match Hashtbl.find_opt t.delta k with
  | Some _ as r ->
      t.hits <- t.hits + 1;
      r
  | None -> (
      match Hashtbl.find_opt t.base.entries k with
      | Some _ as r ->
          t.hits <- t.hits + 1;
          r
      | None ->
          t.misses <- t.misses + 1;
          None)

let add t k v =
  if not (Hashtbl.mem t.base.entries k || Hashtbl.mem t.delta k) then
    Hashtbl.add t.delta k v

let delta t =
  let l = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.delta [] in
  List.sort (fun (a, _) (b, _) -> String.compare a b) l

let delta_size t = Hashtbl.length t.delta
let hits t = t.hits
let misses t = t.misses

(* First writer wins, and [deltas] are applied in list order, so a
   deterministic caller ordering (batch input order) yields a
   deterministic merged base regardless of domain scheduling. *)
let merge base deltas =
  let entries = Hashtbl.copy base.entries in
  List.iter
    (List.iter (fun (k, v) ->
         if not (Hashtbl.mem entries k) then Hashtbl.add entries k v))
    deltas;
  { entries }

(* ----- versioned on-disk envelope ----- *)

(* One JSON file holds every cache section (NPN rewrite entries, PO
   cone fingerprints, ...) under a single schema stamp:
     {"schema": "mighty-cache/1", "sections": {"npn": ..., "cones": ...}}
   A missing file or a file with a different stamp reads as cold — a
   version bump is the invalidation mechanism. *)

let schema = "mighty-cache/1"

let load_file path =
  match open_in_bin path with
  | exception Sys_error _ -> Ok []
  | ic ->
      let contents =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (match Json.of_string contents with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok doc -> (
          match Json.member "schema" doc with
          | Some (Json.String s) when s = schema -> (
              match Json.member "sections" doc with
              | Some (Json.Obj fields) -> Ok fields
              | _ -> Error (Printf.sprintf "%s: missing \"sections\" object" path))
          | _ ->
              (* stale or foreign stamp: treat as a cold store *)
              Ok []))

let save_file path sections =
  let doc =
    Json.Obj [ ("schema", Json.String schema); ("sections", Json.Obj sections) ]
  in
  let tmp = path ^ ".tmp" in
  match open_out_bin tmp with
  | exception Sys_error e -> Error e
  | oc ->
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (Json.to_string doc));
      (match Sys.rename tmp path with
      | () -> Ok ()
      | exception Sys_error e -> Error e)
