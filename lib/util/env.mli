(** The single place where environment knobs are read.

    Every [MIG_*] variable is parsed here, once, into a plain record
    that [Ctx.default] consumes; no other module in the code base
    calls [Sys.getenv_opt].  The recognized variables (see the README
    table):

    - [MIG_STATS] — telemetry sink on ([1]/[true]/[on]/[yes])
    - [MIG_CHECK] — transform guards on (same booleans)
    - [MIG_SAN]   — domain-ownership sanitizer on (same booleans;
      see {!San})
    - [MIG_FAULT] — fault-plan spec string ({!Fault.parse} grammar)
    - [MIG_SEED]  — default RNG seed (int; default 1)
    - [MIG_CACHE] — path of the persistent rewrite-cache store read
      and written by the optimization flows (empty/unset = no cache)
    - [MIG_PAR_JOBS] — default worker-domain count for region-parallel
      single-graph rewriting ([mighty opt --par-jobs]; int >= 1,
      anything else = unset)
    - [MIG_SERVE_PORT] — default TCP port for [mighty serve] and
      [mighty ping] (0..65535; 0 = ephemeral)
    - [MIG_SERVE_QUEUE] — default admission-queue capacity for
      [mighty serve] (int >= 1, anything else = unset) *)

type t = {
  stats : bool;
  check : bool;
  san : bool;
  fault : Fault.spec option;
  seed : int;
  cache : string option;
  par_jobs : int option;
  serve_port : int option;
  serve_queue : int option;
}

val defaults : t
(** Everything off: [{stats = false; check = false; san = false;
    fault = None; seed = 1; cache = None; par_jobs = None;
    serve_port = None; serve_queue = None}] — what {!load} returns in
    a clean environment. *)

val load : unit -> t
(** Parse the environment.  A malformed [MIG_FAULT] is dropped (no
    plan is armed silently); use {!load_result} to surface it. *)

val load_result : unit -> (t, string) result
(** Like {!load}, but a malformed [MIG_FAULT] is an [Error] carrying
    the parse diagnostic. *)

val flag : string -> bool
(** [flag v] is the boolean reading of an env value: [true] iff [v]
    is [1], [true], [on] or [yes] (case-insensitive, trimmed). *)
