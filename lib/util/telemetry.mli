(** Hierarchical pass-level telemetry: spans, counters and metadata.

    A {!t} is an explicit {e sink} owned by an execution context
    ({!Ctx}); there is no process-global recorder, so independent
    contexts (e.g. one per domain in a parallel batch run) record
    concurrently without interference.  A sink must not be shared
    across domains — see DESIGN.md §13 for the ownership contract.

    Recording is double-gated: the sink must be {!enabled} {e and} a
    {!capture} must be in progress.  Outside those conditions every
    probe ({!span}, {!count}, {!record}) is a no-op costing one or two
    loads and a branch, so probes can stay in hot paths permanently. *)

type value = Int of int | Float of float | Bool of bool | String of string

type node = {
  name : string;
  elapsed : float;  (** wall-clock seconds *)
  meta : (string * value) list;  (** sorted by key *)
  counters : (string * int) list;  (** sorted by key *)
  children : node list;  (** in creation order *)
}
(** A completed span: the immutable tree handed out by {!capture}. *)

type t
(** A telemetry sink: enabled flag plus the stack of live spans. *)

val create : ?enabled:bool -> unit -> t
(** A fresh sink, disabled unless [~enabled:true]. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result with the elapsed
    wall-clock seconds.  Pure convenience; no sink involved. *)

val span : t -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f] inside a child span of the innermost
    open span.  Just [f ()] when the sink is disabled or no
    {!capture} is in progress.  Exception-safe: the span is closed
    and attached even when [f] raises. *)

val count : t -> ?n:int -> string -> unit
(** Increment a counter ([n] defaults to 1) on the innermost open
    span. *)

val record : t -> string -> value -> unit
(** Set a metadata key on the innermost open span (last write wins). *)

val record_int : t -> string -> int -> unit
val record_float : t -> string -> float -> unit

val capture : t -> string -> (unit -> 'a) -> 'a * node option
(** [capture t name f] opens a root span, runs [f], and returns the
    completed tree.  [None] when the sink is disabled.  Captures
    nest: an inner capture's tree is also attached to the outer
    capture as a child. *)

(** {1 Reporting} *)

val pp : Format.formatter -> node -> unit
(** Indented human-readable tree. *)

val to_json : node -> Json.t
(** The span-tree JSON used by [bench --json] (see DESIGN.md §10). *)
