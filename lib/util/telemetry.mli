(** Pass-level telemetry: hierarchical wall-clock spans and counters.

    Every optimization pass wraps its work in {!span}; inside a span,
    {!count} accumulates event counters (rewrites applied, strash
    hits, …) and {!record} attaches metadata (nodes/depth in → out).
    Disabled by default: every entry point is a single load-and-branch
    no-op unless [MIG_STATS] is set in the environment ([1], [true],
    [on], [yes]) or {!set_enabled} was called — so instrumented hot
    paths cost nothing measurable in ordinary runs.

    Spans form a tree per {!capture} root; the completed tree is a
    pure {!node} value that can be pretty-printed ({!pp}) or emitted
    as JSON ({!to_json}, the [BENCH_*.json] span schema). *)

type value = Int of int | Float of float | Bool of bool | String of string

type node = {
  name : string;
  elapsed : float;  (** seconds *)
  meta : (string * value) list;  (** sorted by key *)
  counters : (string * int) list;  (** sorted by key *)
  children : node list;  (** in execution order *)
}

val enabled : unit -> bool
(** Current recording state (initially from [MIG_STATS]). *)

val set_enabled : bool -> unit

(** {1 Recording} *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] inside a child span of the current one.
    When recording is off, or no {!capture} is active, this is
    exactly [f ()].  Exceptions propagate; the span is closed with
    the time accumulated so far. *)

val count : ?n:int -> string -> unit
(** Add [n] (default 1) to a counter of the innermost open span. *)

val record : string -> value -> unit
(** Set a metadata field on the innermost open span (last write
    wins). *)

val record_int : string -> int -> unit
val record_float : string -> float -> unit

val capture : string -> (unit -> 'a) -> 'a * node option
(** [capture name f] runs [f] under a fresh root span and returns its
    completed tree — [None] when recording is off.  Captures nest: an
    inner capture's tree is also attached to the enclosing span. *)

(** {1 Reporting} *)

val pp : Format.formatter -> node -> unit
(** Human-readable indented tree: time, meta, counters per span. *)

val to_json : node -> Json.t
(** [{"name", "elapsed_s", "meta", "counters", "children"}]. *)

(** {1 Clock} *)

val time : (unit -> 'a) -> 'a * float
(** Wall-clock a thunk (always on; independent of {!enabled}). *)
