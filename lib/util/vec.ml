(* The backing array only ever holds values that were actually pushed:
   an empty vector is backed by [| |] (valid at every 'a), and the
   first push seeds [Array.make] with the pushed element, so the
   array's runtime representation (flat float array vs boxed) is
   always the right one.  No [Obj.magic] — a dummy forged from [0]
   breaks the flat float-array representation and lets immediates
   masquerade as pointers. *)
type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  mutable cap : int;
  san : San.tag;  (* immediate no-op when the sanitizer is off *)
}

let create ?(capacity = 16) ?(san = San.off) () =
  { data = [||]; len = 0; cap = max capacity 1; san }

let length v = v.len

let check v i =
  if i < 0 || i >= v.len then invalid_arg "Vec: index out of bounds"

let get v i =
  San.read_access v.san;
  check v i;
  v.data.(i)

let set v i x =
  San.write_access v.san;
  check v i;
  v.data.(i) <- x

(* Reallocate to [cap] slots, seeding with [x] (a value of the right
   representation: either the first push or an existing element). *)
let realloc v cap x =
  let data = Array.make cap x in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let push v x =
  San.write_access v.san;
  if v.len = Array.length v.data then
    realloc v (if v.len = 0 then v.cap else 2 * v.len) x;
  v.data.(v.len) <- x;
  v.len <- v.len + 1;
  v.len - 1

let iter f v =
  San.read_access v.san;
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  San.read_access v.san;
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold_left f acc v =
  San.read_access v.san;
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let to_array v =
  San.read_access v.san;
  Array.sub v.data 0 v.len

let of_array ?(san = San.off) a =
  { data = Array.copy a; len = Array.length a; cap = max (Array.length a) 1; san }

(* dropping every index invalidates outstanding ones: a renumbering
   event for the sanitizer's generation counter *)
let clear v =
  San.bump ~reason:"Vec.clear" v.san;
  v.len <- 0

let reserve v n =
  if n > Array.length v.data then
    if v.len = 0 then
      (* nothing pushed yet: no seed of the right representation
         exists, so just raise the initial capacity for the first
         realloc to honour *)
      v.cap <- max v.cap n
    else realloc v n v.data.(0)
