(** Growable int stack for explicit-stack DFS walks.

    The deep-recursion hot spots (PO-cone walks in [Mig.Graph] and
    [Mig.Transform]) use this instead of the OCaml call stack so that
    chain-shaped graphs of hundreds of thousands of nodes cannot hit
    [Stack_overflow]. *)

type t

val create : ?capacity:int -> unit -> t
val is_empty : t -> bool
val push : t -> int -> unit

val top : t -> int
(** Undefined on an empty stack. *)

val pop : t -> unit
(** Drops the top element; undefined on an empty stack. *)

val clear : t -> unit
val length : t -> int
