type value = Int of int | Float of float | Bool of bool | String of string

type node = {
  name : string;
  elapsed : float;
  meta : (string * value) list;
  counters : (string * int) list;
  children : node list;
}

(* ----- live spans ----- *)

(* Counters are [int ref]s so the hot path ([count] on an existing
   key, e.g. one strash probe per [maj] call) is a single lookup plus
   an in-place increment. *)
type live = {
  l_name : string;
  l_start : float;
  l_counters : (string, int ref) Hashtbl.t;
  mutable l_meta : (string * value) list;
  mutable l_children : node list; (* reversed *)
}

(* A sink is an explicit value: there is no process-global recorder.
   Every context owns its own sink, so two domains recording
   concurrently never touch the same stack.  The innermost open span
   is the head of [stack].  Recording only happens between [capture]
   and its return, so with the sink on but no capture in progress the
   stack stays empty and [span]/[count]/[record] are still no-ops. *)
type t = { mutable on : bool; mutable stack : live list }

let create ?(enabled = false) () = { on = enabled; stack = [] }
let enabled t = t.on
let set_enabled t b = t.on <- b

let now = Unix.gettimeofday

let time f =
  let t0 = now () in
  let x = f () in
  (x, now () -. t0)

let open_span t name =
  let l =
    {
      l_name = name;
      l_start = now ();
      l_counters = Hashtbl.create 8;
      l_meta = [];
      l_children = [];
    }
  in
  t.stack <- l :: t.stack;
  l

let close_span t l =
  (match t.stack with
  | x :: rest when x == l -> t.stack <- rest
  | _ ->
      (* a child span leaked past its parent (exception paths); drop
         everything down to and including [l] *)
      let rec pop = function
        | [] -> []
        | x :: rest -> if x == l then rest else pop rest
      in
      t.stack <- pop t.stack);
  let sorted_assoc l = List.sort (fun (a, _) (b, _) -> compare a b) l in
  {
    name = l.l_name;
    elapsed = now () -. l.l_start;
    meta = sorted_assoc l.l_meta;
    counters =
      sorted_assoc (Hashtbl.fold (fun k v acc -> (k, !v) :: acc) l.l_counters []);
    children = List.rev l.l_children;
  }

let attach t n =
  match t.stack with
  | parent :: _ -> parent.l_children <- n :: parent.l_children
  | [] -> ()

let span t name f =
  if (not t.on) || t.stack = [] then f ()
  else begin
    let l = open_span t name in
    match f () with
    | x ->
        attach t (close_span t l);
        x
    | exception e ->
        attach t (close_span t l);
        raise e
  end

let count t ?(n = 1) name =
  if t.on then
    match t.stack with
    | [] -> ()
    | l :: _ -> (
        match Hashtbl.find_opt l.l_counters name with
        | Some r -> r := !r + n
        | None -> Hashtbl.add l.l_counters name (ref n))

let record t name v =
  if t.on then
    match t.stack with
    | [] -> ()
    | l :: _ -> l.l_meta <- (name, v) :: List.remove_assoc name l.l_meta

let record_int t name i = record t name (Int i)
let record_float t name f = record t name (Float f)

let capture t name f =
  if not t.on then (f (), None)
  else begin
    let l = open_span t name in
    match f () with
    | x ->
        let n = close_span t l in
        attach t n;
        (x, Some n)
    | exception e ->
        attach t (close_span t l);
        raise e
  end

(* ----- reporting ----- *)

let pp_value fmt = function
  | Int i -> Format.pp_print_int fmt i
  | Float f -> Format.fprintf fmt "%.4g" f
  | Bool b -> Format.pp_print_bool fmt b
  | String s -> Format.pp_print_string fmt s

let pp fmt root =
  let rec go indent n =
    Format.fprintf fmt "%s%-*s %8.3f ms" indent
      (max 1 (32 - String.length indent))
      n.name (n.elapsed *. 1000.0);
    List.iter
      (fun (k, v) -> Format.fprintf fmt "  %s=%a" k pp_value v)
      n.meta;
    List.iter (fun (k, c) -> Format.fprintf fmt "  %s=%d" k c) n.counters;
    Format.pp_print_newline fmt ();
    List.iter (go (indent ^ "  ")) n.children
  in
  go "" root

let rec to_json n =
  let fields = [ ("name", Json.String n.name); ("elapsed_s", Json.Float n.elapsed) ] in
  let value_json = function
    | Int i -> Json.Int i
    | Float f -> Json.Float f
    | Bool b -> Json.Bool b
    | String s -> Json.String s
  in
  let fields =
    if n.meta = [] then fields
    else fields @ [ ("meta", Json.Obj (List.map (fun (k, v) -> (k, value_json v)) n.meta)) ]
  in
  let fields =
    if n.counters = [] then fields
    else
      fields
      @ [ ("counters", Json.Obj (List.map (fun (k, c) -> (k, Json.Int c)) n.counters)) ]
  in
  let fields =
    if n.children = [] then fields
    else fields @ [ ("children", Json.List (List.map to_json n.children)) ]
  in
  Json.Obj fields
