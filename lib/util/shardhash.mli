(** Sharded {!Inthash}: K independent segments keyed by hash prefix.

    Keys whose hashes differ in the selecting prefix live in disjoint
    flat arenas, so concurrent [find_or_add] on distinct segments
    shares no mutable word — safe and contention-free as long as each
    segment has at most one writer at a time.  [shards = 1] degrades
    to a single {!Inthash} with identical layout and growth schedule
    (the deterministic sequential fallback).

    Lookup results are a pure function of the inserted bindings: a
    key's segment depends only on the key, so changing the shard count
    never changes what [find] or [find_or_add] returns — only where
    the binding is stored. *)

type t

val create : ?capacity:int -> ?shards:int -> ?san:San.tag -> unit -> t
(** [shards] is rounded up to a power of two (min 1); [capacity] is
    the total expected entry count, split evenly across segments.
    Raises [Invalid_argument] when [shards < 1]. *)

val shards : t -> int
(** The (power-of-two) segment count. *)

val segment_index : t -> int -> int -> int -> int
(** The segment a key triple selects, in [0, shards-1]. *)

val segment : t -> int -> Inthash.t
(** Direct access to one segment, for per-segment writers. *)

val length : t -> int
val find : t -> int -> int -> int -> int
val mem : t -> int -> int -> int -> bool
val add : t -> int -> int -> int -> int -> unit
val find_or_add : t -> int -> int -> int -> int -> int

val reserve : t -> int -> unit
(** Pre-size every segment for its share of [n] additional entries. *)

val clear : t -> unit
val iter : (int -> int -> int -> int -> unit) -> t -> unit

val stats : t -> Inthash.stats
(** Aggregated occupancy over all segments. *)
