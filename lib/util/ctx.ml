(* The execution context: one record bundling every cross-cutting
   service that used to be a process-global singleton.  A ctx is
   single-owner state — create one per independent line of work (one
   per domain in a batch run) and never share it across domains.
   Under MIG_SAN=1 that contract is *checked*: the ctx's [San] handle
   tags every arena-backed structure created under it, and cross-
   domain access without an explicit handoff is a structured
   finding. *)

(* Each pooled buffer carries its sanitizer tag so a double lease or
   a leaked lease is caught ([San.lease]/[San.release]); with the
   sanitizer off the tag is the immediate no-op and the pair costs
   one extra word per *pooled buffer*, not per use. *)
type scratch = {
  mutable pool : (int array * San.tag) list;
      (** free buffers, most recent first *)
  mutable allocs : int;  (** fresh arrays ever made (regression hook) *)
}

type t = {
  stats : Telemetry.t;
  budget : Budget.t;
  fault : Fault.t;
  san : San.t;
  mutable check : bool;
  rng : Rng.t;
  scratch : scratch;
}

let create ?(stats = false) ?(check = false) ?budget ?fault ?(seed = 1)
    ?(san = false) ?(san_mode = San.Raise) () =
  let budget =
    match budget with
    | None -> Budget.create ()
    | Some (deadline_s, max_nodes) -> Budget.create ?deadline_s ?max_nodes ()
  in
  {
    stats = Telemetry.create ~enabled:stats ();
    budget;
    fault = Fault.create ?spec:fault ();
    san = San.create ~mode:san_mode ~enabled:san ();
    check;
    rng = Rng.create seed;
    scratch = { pool = []; allocs = 0 };
  }

let of_env (e : Env.t) =
  create ~stats:e.stats ~check:e.check ?fault:e.fault ~seed:e.seed ~san:e.san
    ()

let default () = of_env (Env.load ())

let stats t = t.stats
let budget t = t.budget
let fault t = t.fault
let san t = t.san
let check t = t.check
let set_check t b = t.check <- b
let rng t = t.rng

(* ----- scratch arenas ----- *)

(* [with_scratch] hands out a [-1]-filled int buffer of at least [n]
   slots and returns it to the pool afterwards.  Nested uses (e.g. a
   rebuild triggered from inside another rebuild's node constructor)
   simply pop the next buffer — correct by construction, where the old
   global [arena_busy] flag silently fell back to a fresh unpooled
   allocation.  Under the sanitizer each buffer is leased at checkout:
   a buffer that is somehow handed out twice (SAN005) or never
   returned (SAN006 at [San.drain]) is a structured finding. *)
let with_scratch t n k =
  let sc = t.scratch in
  let buf, tag =
    match sc.pool with
    | (b, tag) :: rest when Array.length b >= n ->
        sc.pool <- rest;
        Array.fill b 0 n (-1);
        (b, tag)
    | (b, tag) :: rest ->
        (* too small: replace it, keeping the pool from accumulating
           dead undersized buffers *)
        sc.pool <- rest;
        sc.allocs <- sc.allocs + 1;
        (Array.make (max n (2 * Array.length b)) (-1), tag)
    | [] ->
        sc.allocs <- sc.allocs + 1;
        ( Array.make (max n 1024) (-1),
          San.register t.san ~name:"ctx.scratch" )
  in
  San.lease tag;
  Fun.protect
    ~finally:(fun () ->
      San.release tag;
      sc.pool <- (buf, tag) :: sc.pool)
    (fun () -> k buf)

let scratch_allocs t = t.scratch.allocs
