type reason = Deadline | Node_cap

exception Exhausted of reason

let reason_name = function Deadline -> "deadline" | Node_cap -> "node_cap"

type state = {
  deadline : float;  (** absolute [Unix.gettimeofday] time; [infinity] = none *)
  max_nodes : int;  (** [max_int] = none *)
  mutable nodes : int;
  mutable countdown : int;  (** checks until the next clock read *)
  mutable blown : reason option;
}

(* The single mutable root: [None] when no budget is installed, so the
   disabled-path cost of [poll]/[note_nodes] is one load and branch. *)
let current : state option ref = ref None

let poll_interval = 256

let active () = !current <> None

let blow st r =
  st.blown <- Some r;
  raise (Exhausted r)

let clock_check st =
  st.countdown <- poll_interval;
  if Unix.gettimeofday () > st.deadline then blow st Deadline

let poll () =
  match !current with
  | None -> ()
  | Some st ->
      st.countdown <- st.countdown - 1;
      if st.countdown <= 0 then clock_check st

let note_nodes n =
  match !current with
  | None -> ()
  | Some st ->
      st.nodes <- st.nodes + n;
      if st.nodes > st.max_nodes then blow st Node_cap;
      st.countdown <- st.countdown - 1;
      if st.countdown <= 0 then clock_check st

let check () =
  match !current with
  | None -> ()
  | Some st ->
      (match st.blown with Some r -> raise (Exhausted r) | None -> ());
      if st.nodes > st.max_nodes then blow st Node_cap;
      if Unix.gettimeofday () > st.deadline then blow st Deadline

let expired () =
  match !current with
  | None -> false
  | Some st ->
      st.blown <> None || st.nodes > st.max_nodes
      || Unix.gettimeofday () > st.deadline

let remaining_nodes () =
  match !current with
  | None -> None
  | Some st ->
      if st.max_nodes = max_int then None
      else Some (max 0 (st.max_nodes - st.nodes))

let exhaust () =
  (match !current with
  | None -> ()
  | Some st -> st.blown <- Some Deadline);
  raise (Exhausted Deadline)

let suspended f =
  let saved = !current in
  current := None;
  Fun.protect ~finally:(fun () -> current := saved) f

let with_budget ?deadline_s ?max_nodes f =
  let parent = !current in
  let deadline =
    match deadline_s with
    | Some d -> Unix.gettimeofday () +. d
    | None -> infinity
  in
  let deadline =
    match parent with
    | Some p -> Float.min deadline p.deadline
    | None -> deadline
  in
  let cap = match max_nodes with Some n -> n | None -> max_int in
  let cap =
    match parent with
    | Some p when p.max_nodes <> max_int ->
        min cap (max 0 (p.max_nodes - p.nodes))
    | _ -> cap
  in
  let st =
    { deadline; max_nodes = cap; nodes = 0; countdown = poll_interval;
      blown = None }
  in
  current := Some st;
  Fun.protect
    ~finally:(fun () ->
      current := parent;
      (* charge the inner extent's allocations to the outer budget *)
      match parent with
      | Some p -> p.nodes <- p.nodes + st.nodes
      | None -> ())
    f
