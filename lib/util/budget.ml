type reason = Deadline | Node_cap

exception Exhausted of reason

let reason_name = function Deadline -> "deadline" | Node_cap -> "node_cap"

type state = {
  deadline : float;  (** absolute [Unix.gettimeofday] time; [infinity] = none *)
  max_nodes : int;  (** [max_int] = none *)
  mutable nodes : int;
  mutable countdown : int;  (** checks until the next clock read *)
  mutable blown : reason option;
}

(* The handle owned by a [Ctx]: [None] when no budget is installed, so
   the disabled-path cost of [poll]/[note_nodes] is one extra load and
   a branch.  There is no process-global budget — two contexts never
   share a handle.

   [interrupted] is the asynchronous kill switch ({!interrupt}, set
   from a signal handler): once raised, every unmasked probe raises
   [Exhausted Deadline] whether or not a budget is installed, so a
   run with no [--timeout] still unwinds to the engine's checkpoint
   machinery.  [masked] is the [suspended] scope flag: verification
   and fallback cleanup must keep working after an interrupt, exactly
   as they do after a deadline. *)
type t = {
  mutable current : state option;
  mutable interrupted : bool;
  mutable masked : bool;
}

let poll_interval = 256

let make_state ?deadline_s ?max_nodes () =
  let deadline =
    match deadline_s with
    | Some d -> Unix.gettimeofday () +. d
    | None -> infinity
  in
  let cap = match max_nodes with Some n -> n | None -> max_int in
  { deadline; max_nodes = cap; nodes = 0; countdown = poll_interval;
    blown = None }

let create ?deadline_s ?max_nodes () =
  let current =
    match (deadline_s, max_nodes) with
    | None, None -> None
    | _ -> Some (make_state ?deadline_s ?max_nodes ())
  in
  { current; interrupted = false; masked = false }

let active t = t.current <> None

let interrupt t = t.interrupted <- true
let interrupted t = t.interrupted

let tripped t = t.interrupted && not t.masked

let blow st r =
  st.blown <- Some r;
  raise (Exhausted r)

let clock_check st =
  st.countdown <- poll_interval;
  if Unix.gettimeofday () > st.deadline then blow st Deadline

let poll t =
  if tripped t then raise (Exhausted Deadline);
  match t.current with
  | None -> ()
  | Some st ->
      st.countdown <- st.countdown - 1;
      if st.countdown <= 0 then clock_check st

let note_nodes t n =
  if tripped t then raise (Exhausted Deadline);
  match t.current with
  | None -> ()
  | Some st ->
      st.nodes <- st.nodes + n;
      if st.nodes > st.max_nodes then blow st Node_cap;
      st.countdown <- st.countdown - 1;
      if st.countdown <= 0 then clock_check st

let check t =
  if tripped t then raise (Exhausted Deadline);
  match t.current with
  | None -> ()
  | Some st ->
      (match st.blown with Some r -> raise (Exhausted r) | None -> ());
      if st.nodes > st.max_nodes then blow st Node_cap;
      if Unix.gettimeofday () > st.deadline then blow st Deadline

let expired t =
  tripped t
  ||
  match t.current with
  | None -> false
  | Some st ->
      st.blown <> None || st.nodes > st.max_nodes
      || Unix.gettimeofday () > st.deadline

let remaining_s t =
  match t.current with
  | Some st when st.deadline < infinity ->
      Some (Float.max 0. (st.deadline -. Unix.gettimeofday ()))
  | _ -> None

let remaining_nodes t =
  match t.current with
  | None -> None
  | Some st ->
      if st.max_nodes = max_int then None
      else Some (max 0 (st.max_nodes - st.nodes))

let exhaust t =
  (match t.current with
  | None -> ()
  | Some st -> st.blown <- Some Deadline);
  raise (Exhausted Deadline)

(* masking (rather than clearing) [interrupted] keeps a signal that
   lands *during* the suspended extent: the flag stays set, probes
   ignore it until the extent exits, and the next unmasked poll
   raises. *)
let suspended t f =
  let saved = t.current and saved_mask = t.masked in
  t.current <- None;
  t.masked <- true;
  Fun.protect
    ~finally:(fun () ->
      t.current <- saved;
      t.masked <- saved_mask)
    f

let with_budget t ?deadline_s ?max_nodes f =
  let parent = t.current in
  let st = make_state ?deadline_s ?max_nodes () in
  let st =
    match parent with
    | None -> st
    | Some p ->
        let cap =
          if p.max_nodes = max_int then st.max_nodes
          else min st.max_nodes (max 0 (p.max_nodes - p.nodes))
        in
        { st with deadline = Float.min st.deadline p.deadline;
          max_nodes = cap }
  in
  t.current <- Some st;
  Fun.protect
    ~finally:(fun () ->
      t.current <- parent;
      (* charge the inner extent's allocations to the outer budget *)
      match parent with
      | Some p -> p.nodes <- p.nodes + st.nodes
      | None -> ())
    f
