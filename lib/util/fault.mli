(** Deterministic fault injection for robustness testing.

    A fault plan lives in an explicit handle ({!t}) owned by an
    execution context ({!Ctx}); there is no process-global plan, so
    independent contexts inject concurrently without interference.  A
    handle must not be shared across domains (DESIGN.md §13).

    The plan is armed from a compact spec string (CLI [--fault] or the
    [MIG_FAULT] environment variable, parsed by [Lsutil.Env]) and
    drives seeded, reproducible failures at named injection sites
    inside the hot layers (MIG transforms, strash, BDD builder, tech
    mapper).  The facility is off by default and each disarmed
    injection point costs one extra load and a branch.

    {2 Spec grammar}

    A spec is colon-separated [key=value] pairs:

    {v
    spec  ::= pair (":" pair)*
    pair  ::= "seed=" int        deterministic Rng seed      (default 0)
            | "rate=" float      fire probability per visit  (default 1.0)
            | "kind=" kind       raise | exhaust | corrupt | any
                                                             (default raise)
            | "sites=" name ("," name)*
                                 transform | strash | bdd | mapper
                                 (default: all sites)
            | "max=" int         total faults to inject      (default 1)
            | "after=" int       visits to skip first        (default 0)
    v}

    Example: [MIG_FAULT=seed=7:rate=0.05:sites=transform,strash:kind=any]. *)

type kind =
  | Raise  (** raise {!Injected} out of the site *)
  | Exhaust  (** force-blow the context's budget ([Budget.exhaust]) *)
  | Corrupt  (** return a silently wrong result (site-specific) *)

exception Injected of string
(** Raised by a firing [Raise] fault; the payload is the site name. *)

type spec

val parse : string -> (spec, string) result
val to_string : spec -> string

type t
(** A fault handle: disarmed, or carrying the armed plan. *)

val create : ?spec:spec -> unit -> t
(** A fresh handle; armed immediately when [spec] is given. *)

val arm : t -> spec -> unit
(** Install a plan: resets the visit/fired counters and seeds the Rng
    from the spec, so equal specs give bit-identical fault streams. *)

val arm_string : t -> string -> (unit, string) result
val disarm : t -> unit

val enabled : t -> bool

val suspended : t -> (unit -> 'a) -> 'a
(** [suspended t f] runs [f] with the fault plan temporarily disarmed
    (restored afterwards, normally or exceptionally) — the plan's
    counters and Rng position are untouched.  Used by the engine so
    checkpoint verification cannot itself be faulted. *)

val fire : t -> string -> kind option
(** [fire t site] is called at each injection point.  Returns [Some k]
    when a fault of kind [k] fires at this visit, [None] otherwise
    (always [None] when disarmed).  Sites without a meaningful
    corruption should map [Corrupt] to [Raise] themselves. *)

val injected : t -> int
(** Faults fired since the last {!arm}. *)

val sites : string list
(** The known site names, for validation: ["transform"; "strash";
    ["bdd"]; ["mapper"]]. *)
