(** The execution context: every cross-cutting service in one
    explicit record.

    A ctx bundles the {!Telemetry} sink, {!Budget} handle, {!Fault}
    handle, check policy, RNG, and per-context scratch arenas that the
    optimization layers consume.  Nothing in the library reaches for a
    process-global: a graph created under a ctx carries it, passes
    derive it from their graph, and entrypoints build one from the
    environment ({!default}).  That makes the whole package reentrant
    — [Flow.Batch] runs one ctx per domain.

    {2 Ownership and concurrency contract (DESIGN.md §13)}

    A ctx (and everything it owns) is single-owner mutable state: it
    must only ever be touched by one domain at a time.  Sharing a ctx
    — or two graphs carrying the same ctx — across concurrently
    running domains is a data race.  Create one ctx per worker;
    immutable results (graphs are safe to {e read} once their owning
    worker has joined, telemetry {!Telemetry.node} trees, reports) can
    cross domains freely.  Under [MIG_SAN=1] (or [~san:true]) the
    contract is enforced: every arena-backed structure created under
    the ctx registers with its {!San} handle, and a cross-domain
    access without {!San.publish}/{!San.transfer} is a structured
    [SAN00x] finding. *)

type t

val create :
  ?stats:bool ->
  ?check:bool ->
  ?budget:float option * int option ->
  ?fault:Fault.spec ->
  ?seed:int ->
  ?san:bool ->
  ?san_mode:San.mode ->
  unit ->
  t
(** [create ()] is a quiet context: telemetry off, no budget, no
    fault plan, checks off, sanitizer off, seed 1.  [~stats] enables
    the telemetry sink; [~check] makes guarded passes verify by
    default; [~budget: (deadline_s, max_nodes)] installs a root budget
    for the ctx's lifetime; [~fault] arms a fault plan; [~san:true]
    arms the domain-ownership sanitizer ([~san_mode] defaults to
    {!San.Raise}). *)

val default : unit -> t
(** A fresh context configured from the environment ({!Env.load}):
    what the CLI and benches use so [MIG_STATS]/[MIG_CHECK]/
    [MIG_FAULT] keep working. *)

val of_env : Env.t -> t
(** {!create} from an already-parsed environment record. *)

val stats : t -> Telemetry.t
val budget : t -> Budget.t
val fault : t -> Fault.t

val san : t -> San.t
(** The ctx's sanitizer handle.  Structures created under the ctx
    register here; [San.findings (Ctx.san ctx)] after a run is the
    cleanliness assertion the differential tests use. *)

val check : t -> bool
(** The default for the [?check] flag of guarded passes. *)

val set_check : t -> bool -> unit
val rng : t -> Rng.t

val with_scratch : t -> int -> (int array -> 'a) -> 'a
(** [with_scratch ctx n k] runs [k buf] with a pooled scratch buffer
    of at least [n] slots, filled with [-1] up to [n].  Buffers return
    to the ctx pool on exit (also on exceptions); nested calls get
    distinct buffers, so rebuilds may nest freely. *)

val scratch_allocs : t -> int
(** Fresh scratch arrays allocated so far — a steady-state rebuild
    loop should stop incrementing this once the pool is warm
    (regression hook for the arena-reuse tests). *)
