(* Bounded exponential backoff with deterministic Rng jitter.  No
   clock reads here (SRC003): the schedule is a pure function of the
   policy and the Rng stream, and sleeping is delegated to the
   injectable [sleep] so tests run instantly and deterministically. *)

type policy = {
  max_attempts : int;
  base_s : float;
  cap_s : float;
  multiplier : float;
  jitter : float;
}

let default_policy =
  { max_attempts = 5; base_s = 0.05; cap_s = 2.0; multiplier = 2.0;
    jitter = 0.5 }

type verdict =
  [ `Retry of string | `Retry_after of float * string | `Fail of string ]

type error = { attempts : int; permanent : bool; last : string }

(* "equal jitter": the envelope min(cap, base * m^(k-1)) is shaved by
   up to [jitter * u], never extended, so worst-case latency stays the
   deterministic sum of envelopes. *)
let delay_s policy ~rng ~attempt =
  let k = max 1 attempt in
  let envelope =
    Float.min policy.cap_s
      (policy.base_s *. (policy.multiplier ** float_of_int (k - 1)))
  in
  let u = Rng.float rng in
  Float.max 0.0 (envelope *. (1.0 -. (policy.jitter *. u)))

let run ?(policy = default_policy) ?(sleep = Unix.sleepf) ~rng f =
  let rec go attempt =
    match f ~attempt with
    | Ok v -> Ok v
    | Error (`Fail msg) -> Error { attempts = attempt; permanent = true; last = msg }
    | Error ((`Retry msg | `Retry_after (_, msg)) as v) ->
        if attempt >= policy.max_attempts then
          Error { attempts = attempt; permanent = false; last = msg }
        else begin
          let d = delay_s policy ~rng ~attempt in
          let d =
            match v with
            | `Retry_after (floor_s, _) -> Float.max d floor_s
            | `Retry _ -> d
          in
          if d > 0.0 then sleep d;
          go (attempt + 1)
        end
  in
  go 1

let pp_error fmt e =
  Format.fprintf fmt "%s after %d attempt%s%s" e.last e.attempts
    (if e.attempts = 1 then "" else "s")
    (if e.permanent then " (permanent)" else "")
