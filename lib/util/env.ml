type t = {
  stats : bool;
  check : bool;
  san : bool;
  fault : Fault.spec option;
  seed : int;
  cache : string option;
  par_jobs : int option;
  serve_port : int option;
  serve_queue : int option;
}

let defaults =
  {
    stats = false;
    check = false;
    san = false;
    fault = None;
    seed = 1;
    cache = None;
    par_jobs = None;
    serve_port = None;
    serve_queue = None;
  }

let flag s =
  match String.lowercase_ascii (String.trim s) with
  | "1" | "true" | "on" | "yes" -> true
  | _ -> false

let flag_var name =
  match Sys.getenv_opt name with None -> false | Some v -> flag v

let base () =
  let seed =
    match Sys.getenv_opt "MIG_SEED" with
    | None -> defaults.seed
    | Some v -> (
        match int_of_string_opt (String.trim v) with
        | Some s -> s
        | None -> defaults.seed)
  in
  let cache =
    match Sys.getenv_opt "MIG_CACHE" with
    | None -> None
    | Some v -> ( match String.trim v with "" -> None | p -> Some p)
  in
  let par_jobs =
    match Sys.getenv_opt "MIG_PAR_JOBS" with
    | None -> None
    | Some v -> (
        match int_of_string_opt (String.trim v) with
        | Some n when n >= 1 -> Some n
        | _ -> None)
  in
  let bounded_int name lo hi =
    match Sys.getenv_opt name with
    | None -> None
    | Some v -> (
        match int_of_string_opt (String.trim v) with
        | Some n when n >= lo && n <= hi -> Some n
        | _ -> None)
  in
  {
    stats = flag_var "MIG_STATS";
    check = flag_var "MIG_CHECK";
    san = flag_var "MIG_SAN";
    fault = None;
    seed;
    cache;
    par_jobs;
    serve_port = bounded_int "MIG_SERVE_PORT" 0 65535;
    serve_queue = bounded_int "MIG_SERVE_QUEUE" 1 1_000_000;
  }

let load_result () =
  let t = base () in
  match Sys.getenv_opt "MIG_FAULT" with
  | None | Some "" -> Ok t
  | Some s -> Result.map (fun spec -> { t with fault = Some spec }) (Fault.parse s)

(* a malformed MIG_FAULT never arms a plan silently; [mighty] surfaces
   the parse error via [load_result] instead *)
let load () = match load_result () with Ok t -> t | Error _ -> base ()
