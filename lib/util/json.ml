type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ----- printing ----- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    let s = Printf.sprintf "%.12g" f in
    (* keep the token a valid JSON number *)
    if String.contains s '.' || String.contains s 'e' || String.contains s 'E'
    then s
    else s ^ ".0"

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

let pp fmt j = Format.pp_print_string fmt (to_string j)

(* ----- parsing ----- *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let err msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> err (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else err (Printf.sprintf "expected %s" word)
  in
  let add_utf8 buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xf0 lor (code lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
    end
  in
  (* Strict 4-hex-digit decoder.  [int_of_string "0x…"] must not be
     used here: OCaml's integer literal syntax accepts underscores and
     sign characters, so it would silently admit garbage like
     [\u12_3]. *)
  let hex4 () =
    if !pos + 4 > n then err "truncated \\u escape";
    let nibble c =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> err "bad \\u escape: expected 4 hex digits"
    in
    let v = ref 0 in
    for k = 0 to 3 do
      v := (!v lsl 4) lor nibble s.[!pos + k]
    done;
    pos := !pos + 4;
    !v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then err "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then err "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'u' ->
                   advance ();
                   let c1 = hex4 () in
                   (* Surrogate halves are not scalar values: a high
                      surrogate must be immediately followed by a low
                      surrogate escape, and a low surrogate must never
                      appear on its own, or [add_utf8] would emit
                      invalid (CESU-style) byte sequences. *)
                   let code =
                     if c1 >= 0xdc00 && c1 <= 0xdfff then
                       err
                         (Printf.sprintf "lone low surrogate \\u%04x" c1)
                     else if c1 >= 0xd800 && c1 <= 0xdbff then begin
                       if not (!pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u')
                       then
                         err
                           (Printf.sprintf
                              "unpaired high surrogate \\u%04x: expected \
                               a \\u low-surrogate escape"
                              c1);
                       pos := !pos + 2;
                       let c2 = hex4 () in
                       if not (c2 >= 0xdc00 && c2 <= 0xdfff) then
                         err
                           (Printf.sprintf
                              "unpaired high surrogate \\u%04x: \\u%04x \
                               is not a low surrogate"
                              c1 c2);
                       0x10000 + ((c1 - 0xd800) lsl 10) + (c2 - 0xdc00)
                     end
                     else c1
                   in
                   add_utf8 buf code
               | c -> err (Printf.sprintf "bad escape \\%C" c));
            go ()
        | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do advance () done;
      if !pos = d0 then err "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let tok = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> Float (float_of_string tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> err "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let fields = ref [] in
          let rec fields_loop () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields_loop ()
            | Some '}' -> advance ()
            | _ -> err "expected ',' or '}'"
          in
          fields_loop ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items_loop ()
            | Some ']' -> advance ()
            | _ -> err "expected ',' or ']'"
          in
          items_loop ();
          List (List.rev !items)
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> err (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then err "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" at msg)

(* ----- accessors ----- *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_list = function List xs -> Some xs | _ -> None
let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function String s -> Some s | _ -> None
