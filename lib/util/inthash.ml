(* Open-addressing hash table from triples of non-negative ints to
   non-negative ints, with linear probing over one flat int array.

   Each slot is four consecutive ints [k0; k1; k2; v] so a probe
   touches one 32-byte block; an empty slot is marked by [v = -1].
   Keys and values are immediate ints throughout — no boxed tuples,
   no option allocation on lookup, no per-entry GC pressure.  There
   is no deletion (the MIG strash is append-only), so probing never
   needs tombstones.

   Duplicate keys may be inserted (mirroring [Hashtbl.add] shadowing
   for the checker's malformed-graph tests); [find] returns the
   earliest-probed binding and [length] counts every entry. *)

type t = {
  mutable data : int array; (* 4 * capacity; capacity is a power of 2 *)
  mutable mask : int; (* capacity - 1 *)
  mutable count : int;
  san : San.tag; (* immediate no-op when the sanitizer is off *)
}

(* Multiplicative mixing of the three key ints; the final shift folds
   high bits down so power-of-two masking sees them. *)
let hash k0 k1 k2 =
  let h = (k0 + 1) * 0x9e3779b1 in
  let h = (h lxor k1) * 0x85ebca77 in
  let h = (h lxor k2) * 0xc2b2ae3d in
  (h lxor (h lsr 17)) land max_int

let make_data cap =
  let data = Array.make (4 * cap) 0 in
  for i = 0 to cap - 1 do
    data.((4 * i) + 3) <- -1
  done;
  data

let rec pow2 n c = if c >= n then c else pow2 n (2 * c)

let create ?(capacity = 16) ?(san = San.off) () =
  let cap = pow2 (max capacity 16) 16 in
  { data = make_data cap; mask = cap - 1; count = 0; san }

let length t = t.count

(* Insert without growth checks; [data] must have a free slot. *)
let raw_add data mask k0 k1 k2 v =
  let i = ref (hash k0 k1 k2 land mask) in
  while data.((4 * !i) + 3) >= 0 do
    i := (!i + 1) land mask
  done;
  let b = 4 * !i in
  data.(b) <- k0;
  data.(b + 1) <- k1;
  data.(b + 2) <- k2;
  data.(b + 3) <- v

let grow t cap =
  let data = make_data cap in
  let mask = cap - 1 in
  let old = t.data in
  for i = 0 to (Array.length old / 4) - 1 do
    let b = 4 * i in
    if old.(b + 3) >= 0 then
      raw_add data mask old.(b) old.(b + 1) old.(b + 2) old.(b + 3)
  done;
  t.data <- data;
  t.mask <- mask

let reserve t n =
  (* capacity so that the entries already present plus [n] more stay
     under the 1/2 load factor, rounded up to a power of two — a
     pre-sized table must absorb its [n] insertions without a growth
     rehash even when it is not empty *)
  let needed = pow2 (max 16 (2 * (t.count + n))) 16 in
  if needed > t.mask + 1 then grow t needed

let add t k0 k1 k2 v =
  San.write_access t.san;
  if k0 < 0 || k1 < 0 || k2 < 0 || v < 0 then
    invalid_arg "Inthash.add: negative key or value";
  if 2 * (t.count + 1) > t.mask + 1 then grow t (2 * (t.mask + 1));
  raw_add t.data t.mask k0 k1 k2 v;
  t.count <- t.count + 1

(* One probe sequence for the find-then-insert pattern: returns the
   existing binding, or inserts [v] at the empty slot the probe ended
   on and returns [v].  Growth is checked up front so the probe's
   endpoint stays valid. *)
let find_or_add t k0 k1 k2 v =
  San.write_access t.san;
  if k0 < 0 || k1 < 0 || k2 < 0 || v < 0 then
    invalid_arg "Inthash.find_or_add: negative key or value";
  if 2 * (t.count + 1) > t.mask + 1 then grow t (2 * (t.mask + 1));
  let data = t.data and mask = t.mask in
  let i = ref (hash k0 k1 k2 land mask) in
  let r = ref (-1) in
  while !r < 0 do
    let b = 4 * !i in
    let v' = Array.unsafe_get data (b + 3) in
    if v' < 0 then begin
      data.(b) <- k0;
      data.(b + 1) <- k1;
      data.(b + 2) <- k2;
      data.(b + 3) <- v;
      t.count <- t.count + 1;
      r := v
    end
    else if
      Array.unsafe_get data b = k0
      && Array.unsafe_get data (b + 1) = k1
      && Array.unsafe_get data (b + 2) = k2
    then r := v'
    else i := (!i + 1) land mask
  done;
  !r

let find t k0 k1 k2 =
  San.read_access t.san;
  let data = t.data and mask = t.mask in
  let i = ref (hash k0 k1 k2 land mask) in
  let r = ref (-1) in
  let continue_ = ref true in
  while !continue_ do
    let b = 4 * !i in
    let v = Array.unsafe_get data (b + 3) in
    if v < 0 then continue_ := false
    else if
      Array.unsafe_get data b = k0
      && Array.unsafe_get data (b + 1) = k1
      && Array.unsafe_get data (b + 2) = k2
    then begin
      r := v;
      continue_ := false
    end
    else i := (!i + 1) land mask
  done;
  !r

let mem t k0 k1 k2 = find t k0 k1 k2 >= 0

(* dropping every binding invalidates outstanding ids: a renumbering
   event for the sanitizer's generation counter *)
let clear t =
  San.bump ~reason:"Inthash.clear" t.san;
  let cap = t.mask + 1 in
  for i = 0 to cap - 1 do
    t.data.((4 * i) + 3) <- -1
  done;
  t.count <- 0

let iter f t =
  for i = 0 to t.mask do
    let b = 4 * i in
    if t.data.(b + 3) >= 0 then
      f t.data.(b) t.data.(b + 1) t.data.(b + 2) t.data.(b + 3)
  done

(* ------------------------------------------------------------------ *)
(* Occupancy statistics                                                *)
(* ------------------------------------------------------------------ *)

type stats = {
  entries : int;
  capacity : int;
  load : float;
  probe_hist : int array;
  max_probe : int;
}

let probe_buckets = 9

let empty_stats =
  {
    entries = 0;
    capacity = 0;
    load = 0.0;
    probe_hist = Array.make probe_buckets 0;
    max_probe = 0;
  }

(* Probe length of an occupied slot is its displacement from the home
   slot its key hashes to; with linear probing that is exactly the
   number of extra slot visits a successful [find] pays. *)
let stats t =
  San.read_access t.san;
  let cap = t.mask + 1 in
  let hist = Array.make probe_buckets 0 in
  let max_probe = ref 0 in
  for i = 0 to t.mask do
    let b = 4 * i in
    if t.data.(b + 3) >= 0 then begin
      let home = hash t.data.(b) t.data.(b + 1) t.data.(b + 2) land t.mask in
      let d = (i - home) land t.mask in
      if d > !max_probe then max_probe := d;
      let bucket = if d >= probe_buckets - 1 then probe_buckets - 1 else d in
      hist.(bucket) <- hist.(bucket) + 1
    end
  done;
  {
    entries = t.count;
    capacity = cap;
    load = float_of_int t.count /. float_of_int cap;
    probe_hist = hist;
    max_probe = !max_probe;
  }

let merge_stats a b =
  let hist = Array.make probe_buckets 0 in
  for i = 0 to probe_buckets - 1 do
    hist.(i) <- a.probe_hist.(i) + b.probe_hist.(i)
  done;
  let entries = a.entries + b.entries and capacity = a.capacity + b.capacity in
  {
    entries;
    capacity;
    load =
      (if capacity = 0 then 0.0
       else float_of_int entries /. float_of_int capacity);
    probe_hist = hist;
    max_probe = max a.max_probe b.max_probe;
  }

let stats_counters s =
  let counters =
    ref
      [
        ("strash.max_probe", s.max_probe);
        ("strash.load_pct", int_of_float (s.load *. 100.0));
        ("strash.capacity", s.capacity);
        ("strash.entries", s.entries);
      ]
  in
  for i = probe_buckets - 1 downto 0 do
    if s.probe_hist.(i) > 0 then
      let key =
        if i = probe_buckets - 1 then
          Printf.sprintf "strash.probe_ge%d" (probe_buckets - 1)
        else Printf.sprintf "strash.probe_%d" i
      in
      counters := (key, s.probe_hist.(i)) :: !counters
  done;
  !counters
