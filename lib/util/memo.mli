(** String-keyed memo store with read-mostly cross-domain sharing.

    The store is split in two layers:

    - an immutable ['v base] snapshot, safe for any number of domains
      to read concurrently (it is never mutated after construction);
    - a per-handle private delta (created by {!fork}) that collects
      entries added during one optimization run.

    Between parallel regions the deltas are extracted with {!delta}
    (sorted by key) and folded into a fresh base with {!merge} in a
    deterministic order — first writer wins — so the merged snapshot
    does not depend on domain scheduling.  This is the sharing model
    required by the [Flow.Batch] sanitizer: no table is mutated while
    another domain can observe it.

    The module also owns the versioned on-disk envelope shared by all
    cache sections ({!load_file}/{!save_file}, schema
    ["mighty-cache/1"]). *)

type 'v base
(** Immutable snapshot; safe to share across domains. *)

type 'v t
(** A handle: a base plus a private delta and hit/miss counters.
    Not safe to share across domains — fork one per worker. *)

val empty_base : unit -> 'v base

val base_of_list : (string * 'v) list -> 'v base
(** Build a snapshot; on duplicate keys the first entry wins. *)

val base_size : 'v base -> int

val base_to_list : 'v base -> (string * 'v) list
(** All entries, sorted by key. *)

val fork : 'v base -> 'v t
(** New handle over [base] with an empty delta and zeroed counters. *)

val find : 'v t -> string -> 'v option
(** Delta first, then base; bumps the hit/miss counters. *)

val add : 'v t -> string -> 'v -> unit
(** Record a new entry in the private delta (no-op if the key is
    already present in either layer). *)

val delta : 'v t -> (string * 'v) list
(** Entries added through this handle, sorted by key. *)

val delta_size : 'v t -> int

val hits : 'v t -> int
val misses : 'v t -> int

val merge : 'v base -> (string * 'v) list list -> 'v base
(** [merge base deltas] is a fresh snapshot containing [base] plus the
    deltas applied in list order, first writer wins.  [base] itself is
    not mutated. *)

(** {1 Versioned on-disk envelope} *)

val schema : string
(** The current store stamp, ["mighty-cache/1"].  Bumping it
    invalidates every existing store file. *)

val load_file : string -> ((string * Json.t) list, string) result
(** Read a store file and return its named sections.  A missing file,
    or one carrying a different schema stamp, reads as [Ok []] (a cold
    store); only unreadable JSON is an [Error]. *)

val save_file : string -> (string * Json.t) list -> (unit, string) result
(** Write the sections under the current stamp, atomically (write to
    [path ^ ".tmp"], then rename). *)
