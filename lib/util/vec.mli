(** Growable arrays (OCaml 5.1 lacks [Dynarray]).

    An optional {!San.tag} makes every accessor assert domain
    ownership under the sanitizer ([MIG_SAN=1]); without one (or with
    the sanitizer off) the check is one branch on an immediate. *)

type 'a t

val create : ?capacity:int -> ?san:San.tag -> unit -> 'a t
val length : 'a t -> int
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> int
(** Append an element; returns its index. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val to_array : 'a t -> 'a array
val of_array : ?san:San.tag -> 'a array -> 'a t
val clear : 'a t -> unit
(** Forget every element; capacity is retained.  Counts as a
    renumbering event for the sanitizer (bumps the tag's
    generation). *)

val reserve : 'a t -> int -> unit
(** [reserve v n] ensures pushes up to length [n] will not
    reallocate.  On an empty vector the pre-size takes effect at the
    first push (the backing array needs a representative element). *)
