(** Growable arrays (OCaml 5.1 lacks [Dynarray]). *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val length : 'a t -> int
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> int
(** Append an element; returns its index. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val to_array : 'a t -> 'a array
val of_array : 'a array -> 'a t
val clear : 'a t -> unit
(** Forget every element; capacity is retained. *)

val reserve : 'a t -> int -> unit
(** [reserve v n] ensures pushes up to length [n] will not
    reallocate.  On an empty vector the pre-size takes effect at the
    first push (the backing array needs a representative element). *)
