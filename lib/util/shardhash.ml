(* Sharded structural-hash table: K independent Inthash segments
   selected by a prefix of the key hash.

   Each segment owns its flat int arena, its count and its growth
   policy, so two [find_or_add] calls whose keys land on distinct
   segments touch disjoint memory — no shared mutable word, hence no
   contention and no data race when callers arrange exclusive access
   per segment (one writer per segment at a time).  The segment index
   comes from the HIGH bits of the same multiplicative hash whose LOW
   bits pick the slot inside the segment, so sharding does not skew
   in-segment probing.

   Shard count is a power of two fixed at creation.  [shards = 1] is
   the deterministic sequential fallback: exactly one Inthash with the
   same layout, probe order and growth schedule as an unsharded table.

   Semantics match Inthash for strash use: the table maps key triples
   to values, [find]/[find_or_add] results depend only on the set of
   bindings inserted (never on segment count), because a key's segment
   is a pure function of the key. *)

type t = {
  segs : Inthash.t array; (* length is a power of two *)
  sel_shift : int; (* hash bits discarded before masking the index *)
  sel_mask : int; (* shard count - 1 *)
}

let rec pow2 n c = if c >= n then c else pow2 n (2 * c)

(* [Inthash.hash] returns a 62-bit non-negative mix; segments mask its
   low bits for slot selection, so we take the index just under the
   sign bit to keep the two selections independent. *)
let sel_shift_of k =
  let rec bits n acc = if n <= 1 then acc else bits (n / 2) (acc + 1) in
  62 - bits k 0

let create ?(capacity = 16) ?(shards = 1) ?(san = San.off) () =
  if shards < 1 then invalid_arg "Shardhash.create: shards < 1";
  let k = pow2 shards 1 in
  let per_seg = max 16 (capacity / k) in
  {
    segs = Array.init k (fun _ -> Inthash.create ~capacity:per_seg ~san ());
    sel_shift = sel_shift_of k;
    sel_mask = k - 1;
  }

let shards t = t.sel_mask + 1

(* [sel_mask = 0] (the sequential K=1 fallback) short-circuits before
   hashing: the segment hash would be recomputed inside Inthash, and
   paying the mix twice costs ~20% of maj-construction throughput on
   the unsharded default path. *)
let seg t k0 k1 k2 =
  if t.sel_mask = 0 then Array.unsafe_get t.segs 0
  else
    Array.unsafe_get t.segs
      (Inthash.hash k0 k1 k2 lsr t.sel_shift land t.sel_mask)

let segment_index t k0 k1 k2 =
  Inthash.hash k0 k1 k2 lsr t.sel_shift land t.sel_mask

let segment t i = t.segs.(i)

let length t = Array.fold_left (fun n s -> n + Inthash.length s) 0 t.segs

let find t k0 k1 k2 = Inthash.find (seg t k0 k1 k2) k0 k1 k2
let mem t k0 k1 k2 = Inthash.mem (seg t k0 k1 k2) k0 k1 k2
let add t k0 k1 k2 v = Inthash.add (seg t k0 k1 k2) k0 k1 k2 v
let find_or_add t k0 k1 k2 v = Inthash.find_or_add (seg t k0 k1 k2) k0 k1 k2 v

let reserve t n =
  (* keys spread uniformly across segments, so pre-size each for its
     expected share (rounded up) of the [n] additional entries *)
  let per_seg = (n + t.sel_mask) / (t.sel_mask + 1) in
  Array.iter (fun s -> Inthash.reserve s per_seg) t.segs

let clear t = Array.iter Inthash.clear t.segs

let iter f t = Array.iter (fun s -> Inthash.iter f s) t.segs

let stats t =
  Array.fold_left
    (fun acc s -> Inthash.merge_stats acc (Inthash.stats s))
    Inthash.empty_stats t.segs
