(** Open-addressing hash table from int triples to ints.

    Linear probing over a single flat [int array]; keys and values
    are immediate ints, so no lookup or insertion allocates.  Built
    for structural hashing, where the key is a node's three packed
    fanin signals and the value its id.

    Keys and values must be non-negative; there is no deletion.

    An optional {!San.tag} makes probes and insertions assert domain
    ownership under the sanitizer ([MIG_SAN=1]); without one the
    check is one branch on an immediate. *)

type t

val create : ?capacity:int -> ?san:San.tag -> unit -> t
(** [capacity] is rounded up to a power of two (min 16). *)

val length : t -> int
(** Number of entries (duplicate-key insertions each count). *)

val find : t -> int -> int -> int -> int
(** [find t k0 k1 k2] is the bound value, or [-1] when absent.  With
    duplicate bindings, the earliest-probed one wins. *)

val mem : t -> int -> int -> int -> bool

val add : t -> int -> int -> int -> int -> unit
(** [add t k0 k1 k2 v] inserts a binding (duplicates allowed, as with
    [Hashtbl.add]).  Raises [Invalid_argument] on negative inputs. *)

val find_or_add : t -> int -> int -> int -> int -> int
(** [find_or_add t k0 k1 k2 v] returns the existing binding for the
    key, or inserts [v] and returns it — one probe sequence for the
    find-then-insert pattern.  Raises [Invalid_argument] on negative
    inputs. *)

val reserve : t -> int -> unit
(** [reserve t n] pre-sizes so [n] entries fit without rehashing. *)

val clear : t -> unit
(** Drop every entry, keeping the allocated capacity.  Counts as a
    renumbering event for the sanitizer (bumps the tag's
    generation). *)

val iter : (int -> int -> int -> int -> unit) -> t -> unit
(** [iter f t] applies [f k0 k1 k2 v] to every entry, in slot order. *)
