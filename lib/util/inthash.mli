(** Open-addressing hash table from int triples to ints.

    Linear probing over a single flat [int array]; keys and values
    are immediate ints, so no lookup or insertion allocates.  Built
    for structural hashing, where the key is a node's three packed
    fanin signals and the value its id.

    Keys and values must be non-negative; there is no deletion.

    An optional {!San.tag} makes probes and insertions assert domain
    ownership under the sanitizer ([MIG_SAN=1]); without one the
    check is one branch on an immediate. *)

type t

val create : ?capacity:int -> ?san:San.tag -> unit -> t
(** [capacity] is rounded up to a power of two (min 16). *)

val hash : int -> int -> int -> int
(** The table's key-mixing function, exposed so {!Shardhash} selects
    segments from the same bit stream (high bits) the slot probe uses
    (low bits). *)

val length : t -> int
(** Number of entries (duplicate-key insertions each count). *)

val find : t -> int -> int -> int -> int
(** [find t k0 k1 k2] is the bound value, or [-1] when absent.  With
    duplicate bindings, the earliest-probed one wins. *)

val mem : t -> int -> int -> int -> bool

val add : t -> int -> int -> int -> int -> unit
(** [add t k0 k1 k2 v] inserts a binding (duplicates allowed, as with
    [Hashtbl.add]).  Raises [Invalid_argument] on negative inputs. *)

val find_or_add : t -> int -> int -> int -> int -> int
(** [find_or_add t k0 k1 k2 v] returns the existing binding for the
    key, or inserts [v] and returns it — one probe sequence for the
    find-then-insert pattern.  Raises [Invalid_argument] on negative
    inputs. *)

val reserve : t -> int -> unit
(** [reserve t n] pre-sizes so [n] {e additional} entries fit without
    rehashing: capacity is rounded up to the next power of two that
    keeps [length t + n] entries under the 1/2 load factor. *)

val clear : t -> unit
(** Drop every entry, keeping the allocated capacity.  Counts as a
    renumbering event for the sanitizer (bumps the tag's
    generation). *)

val iter : (int -> int -> int -> int -> unit) -> t -> unit
(** [iter f t] applies [f k0 k1 k2 v] to every entry, in slot order. *)

(** {1 Occupancy statistics}

    Observability for the strash hot path: load factor and the
    probe-length distribution (displacement of each occupied slot from
    its home slot, i.e. the extra slot visits a successful [find]
    pays).  [probe_hist.(i)] counts entries at probe length [i]; the
    last bucket aggregates everything at length [>= probe_buckets-1]. *)

type stats = {
  entries : int;
  capacity : int;
  load : float;  (** [entries / capacity], in [0, 1/2] steady-state *)
  probe_hist : int array;  (** length {!probe_buckets} *)
  max_probe : int;
}

val probe_buckets : int

val stats : t -> stats
(** One full scan of the table; O(capacity). *)

val empty_stats : stats

val merge_stats : stats -> stats -> stats
(** Pointwise sum (entries, capacity, histogram), recomputed load,
    max of max-probes — for aggregating sharded segments. *)

val stats_counters : stats -> (string * int) list
(** Flatten to [("strash.entries", n); ...] pairs ready for
    {!Telemetry.count}; zero histogram buckets are omitted. *)
