(** Shadow-state concurrency/lifetime sanitizer (DESIGN.md §14).

    Arena-backed structures ({!Vec}, {!Inthash}, [Mig.Graph],
    [Aig.Graph], the {!Ctx.with_scratch} buffers) register a {!tag}
    with the handle carried by their execution context.  Under
    [MIG_SAN=1] every mutating and reading accessor asserts
    same-domain access unless ownership was explicitly handed off
    ({!publish}/{!transfer}); {!bump} marks renumbering rebuilds so a
    {!snapshot} of node ids can be {!validate}d; scratch buffers are
    {!lease}d and double or leaked leases are findings.

    Stable finding codes:
    - [SAN001] — cross-domain read of an owned structure
    - [SAN002] — cross-domain (or published) mutation
    - [SAN003] — stale-generation access after compact/cleanup
    - [SAN004] — illegal ownership handoff
    - [SAN005] — double lease of a scratch buffer
    - [SAN006] — leaked lease at {!drain}

    When the sanitizer is off every check is one load and one branch
    on an immediate tag — the [Budget.poll] discipline, gated by the
    hotpath bench ([bench/main.exe hotpath], record [san]). *)

type finding = {
  code : string;  (** stable rule code, [SAN001]..[SAN006] *)
  subject : string;  (** the registered structure name *)
  detail : string;
}

exception Violation of finding

type mode =
  | Raise  (** record the finding, then raise {!Violation} at the site *)
  | Collect  (** record only — negative tests and post-mortem sweeps *)

type t
(** A sanitizer handle; one per execution context.  Findings are
    recorded under a mutex so they can arrive from the violating
    domain. *)

type tag
(** The shadow state of one registered structure.  A disabled handle
    hands out an immediate no-op tag. *)

val off : tag
(** The untracked tag: every check on it is a no-op.  The default for
    structures created outside any context ({!Vec.create},
    {!Inthash.create} with no [?san]). *)

val create : ?mode:mode -> enabled:bool -> unit -> t
(** [create ~enabled ()] — a disabled handle makes {!register} return
    the no-op tag, so downstream checks cost one branch. Default mode
    is [Raise]. *)

val enabled : t -> bool

val register : t -> name:string -> tag
(** Register a structure; the calling domain becomes its owner. *)

val read_access : tag -> unit
(** Assert the calling domain may read: it owns the structure, or the
    structure is published.  [SAN001] otherwise. *)

val write_access : tag -> unit
(** Assert the calling domain owns the structure ([SAN002] otherwise,
    including mutation of a published structure). *)

val snapshot : tag -> int
(** The current generation (0 for a no-op tag). *)

val bump : ?reason:string -> tag -> unit
(** Owner-only: advance the generation.  [Graph.compact]/[cleanup]
    call this on the source graph so node ids minted before the
    rebuild can be caught by {!validate}. *)

val validate : tag -> snapshot:int -> unit
(** [SAN003] iff the generation moved since [snapshot] was taken. *)

val publish : tag -> unit
(** Owner-only ([SAN004] otherwise): release the structure for shared
    read-only use — any domain may then read or {!transfer}. *)

val transfer : tag -> unit
(** Claim ownership for the calling domain.  Legal on a published (or
    already-owned) structure; claiming a structure owned by another
    domain is [SAN004]. *)

val owner : tag -> int option
(** Owning domain id; [None] when published or untracked. *)

val lease : tag -> unit
(** Owner-only checkout of a scratch buffer; leasing a buffer that is
    already out is [SAN005], caught at lease time. *)

val release : tag -> unit

val drain : t -> unit
(** Close an extent of work: every outstanding lease is recorded as a
    [SAN006] leak (all of them, before any raise). *)

val findings : t -> finding list
(** Everything recorded so far, in order. *)

val is_clean : t -> bool

val pp_finding : Format.formatter -> finding -> unit
