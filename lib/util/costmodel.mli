(** Telemetry-backed pass cost model: EWMA run-time predictor.

    A {!t} is an explicit table owned by whoever drives a search (one
    per orchestration run — never shared across domains, DESIGN.md
    §13).  It learns, per move key (e.g. ["move:size"]), an
    exponentially weighted estimate of the pass's flat overhead and
    its per-node cost, from observations fed either directly
    ({!observe}) or harvested from a {!Telemetry} span tree
    ({!ingest}).

    The predictor is deliberately crude — two EWMA terms, no variance
    — because its only consumer is budget gating: "does this move
    plausibly fit in the seconds remaining?"  An over-estimate wastes
    a little budget headroom; an under-estimate merely lets the
    {!Budget} deadline cut the move off, which the engine already
    survives.  Predictions are a pure function of the observation
    sequence, so a deterministic search stays deterministic. *)

type t

val create : unit -> t
(** An empty model: {!predict} answers [None] for every key. *)

val observe : t -> string -> nodes:int -> time_s:float -> unit
(** [observe t key ~nodes ~time_s] folds one completed run of move
    [key] on a [nodes]-node graph taking [time_s] seconds into the
    model (EWMA, decay 0.5 — recent runs dominate, matching how pass
    cost drifts as the graph shrinks). *)

val predict : t -> string -> nodes:int -> float option
(** Predicted wall-clock seconds for running [key] on a [nodes]-node
    graph; [None] until at least one observation for [key]. *)

val samples : t -> string -> int
(** Number of observations folded in for [key]. *)

val ingest : t -> Telemetry.node -> unit
(** Walk a captured span tree and {!observe} every span whose name
    starts with ["move:"] and that carries a ["nodes_in"] metadata
    key — the shape {!Flow.Orchestrate} emits.  Spans without the
    marker are skipped. *)
