(** Bounded exponential backoff with deterministic jitter.

    The retry helper used by the serve client ([Serve.Client]) for
    transient failures: connection refused while the daemon is still
    binding, and structured [overloaded] rejections carrying a
    [retry_after_ms] hint.  Delays are drawn from an explicit {!Rng},
    so a test (or a reproduction from a seed) sees the exact same
    backoff schedule; nothing here reads a clock — sleeping is
    delegated to the [sleep] callback (default [Unix.sleepf]).

    Schedule: attempt [k] (1-based) that fails retryably sleeps

    {v delay(k) = min cap_s (base_s * multiplier^(k-1)) * (1 - jitter * u) v}

    with [u] uniform in [0, 1) from the Rng — "equal jitter" backoff,
    never exceeding the deterministic envelope.  A [`Retry_after s]
    verdict raises the floor of that delay to [s] (the server's hint
    wins when it is larger). *)

type policy = {
  max_attempts : int;  (** total tries, including the first (>= 1) *)
  base_s : float;  (** first backoff delay *)
  cap_s : float;  (** per-delay ceiling *)
  multiplier : float;  (** exponential growth factor *)
  jitter : float;  (** fraction of the delay randomized away, in [0, 1] *)
}

val default_policy : policy
(** 5 attempts, 50 ms base, 2 s cap, x2 growth, 0.5 jitter. *)

type verdict =
  [ `Retry of string  (** transient: back off and try again *)
  | `Retry_after of float * string
    (** transient with a server-provided minimum delay (seconds) *)
  | `Fail of string  (** permanent: stop immediately *) ]

type error = {
  attempts : int;  (** tries actually made *)
  permanent : bool;  (** [true] when a [`Fail] verdict stopped the loop *)
  last : string;  (** message of the last verdict *)
}

val delay_s : policy -> rng:Rng.t -> attempt:int -> float
(** The jittered delay slept after failing [attempt] (1-based), drawn
    deterministically from [rng]; exposed for the schedule tests. *)

val run :
  ?policy:policy ->
  ?sleep:(float -> unit) ->
  rng:Rng.t ->
  (attempt:int -> ('a, verdict) result) ->
  ('a, error) result
(** [run ~rng f] calls [f ~attempt:1], [f ~attempt:2], ... until it
    returns [Ok], a [`Fail] verdict, or [policy.max_attempts] tries
    are spent; between retryable failures it sleeps the jittered
    backoff delay via [sleep].  [f] is never called after a [`Fail]
    or once the attempt budget is gone. *)

val pp_error : Format.formatter -> error -> unit
