(** Minimal JSON tree, printer and parser (no external deps).

    Just enough for the benchmark harness to emit schema-stable
    records ([BENCH_*.json]) and for the tooling to validate them.
    Printing escapes strings per RFC 8259; non-finite floats are
    emitted as [null].  The parser accepts the full JSON grammar,
    including [\uXXXX] escapes (exactly four hex digits, decoded to
    UTF-8; surrogate pairs supported, and lone or unpaired surrogate
    halves rejected with a positioned parse error). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val pp : Format.formatter -> t -> unit
(** Compact, single-line rendering. *)

val to_string : t -> string

val of_string : string -> (t, string) result
(** Parse a complete JSON document; trailing garbage is an error.
    The error string carries a character offset. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on absent field or non-object. *)

val to_list : t -> t list option
val to_int : t -> int option
val to_float : t -> float option
(** [to_float] also accepts [Int] values. *)

val to_str : t -> string option
