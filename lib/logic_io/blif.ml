module N = Network.Graph
module S = Network.Signal

(* ----- writing ----- *)

let gate_cover fn =
  (* cover rows over the gate's regular inputs *)
  match fn with
  | N.And -> [ "11" ]
  | N.Or -> [ "1-"; "-1" ]
  | N.Xor -> [ "10"; "01" ]
  | N.Maj -> [ "11-"; "1-1"; "-11" ]
  | N.Mux -> [ "11-"; "0-1" ]

let flip_row row fanins =
  String.mapi
    (fun i c ->
      if S.is_complement fanins.(i) then
        match c with '1' -> '0' | '0' -> '1' | c -> c
      else c)
    row

let write fmt ?(model = "network") net =
  let net = N.cleanup net in
  let name_of = Hashtbl.create 256 in
  Hashtbl.replace name_of 0 "$false";
  List.iter (fun id -> Hashtbl.replace name_of id (N.pi_name net id)) (N.pis net);
  N.iter_gates net (fun id _ _ ->
      Hashtbl.replace name_of id (Printf.sprintf "n%d" id));
  let node_name id = Hashtbl.find name_of id in
  Format.fprintf fmt ".model %s@." model;
  Format.fprintf fmt ".inputs%t@." (fun fmt ->
      List.iter (fun id -> Format.fprintf fmt " %s" (N.pi_name net id)) (N.pis net));
  Format.fprintf fmt ".outputs%t@." (fun fmt ->
      List.iter (fun (name, _) -> Format.fprintf fmt " %s" name) (N.pos net));
  (* constant node, in case it is referenced *)
  Format.fprintf fmt ".names $false@.";
  N.iter_gates net (fun id fn fanins ->
      Format.fprintf fmt ".names";
      Array.iter (fun s -> Format.fprintf fmt " %s" (node_name (S.node s))) fanins;
      Format.fprintf fmt " %s@." (node_name id);
      List.iter
        (fun row -> Format.fprintf fmt "%s 1@." (flip_row row fanins))
        (gate_cover fn));
  (* outputs: buffers/inverters from their drivers *)
  List.iter
    (fun (name, s) ->
      let src = node_name (S.node s) in
      if S.is_complement s then
        Format.fprintf fmt ".names %s %s@.0 1@." src name
      else Format.fprintf fmt ".names %s %s@.1 1@." src name)
    (N.pos net);
  Format.fprintf fmt ".end@."

let write_file path ?model net =
  let oc = open_out path in
  let fmt = Format.formatter_of_out_channel oc in
  write fmt ?model net;
  Format.pp_print_flush fmt ();
  close_out oc

(* ----- reading ----- *)

(* Every malformed input — lexical, syntactic or semantic — surfaces
   as [Io_error.Parse_error] with the 1-based source line; see the
   fuzz test in test_io.ml. *)
let err line fmt = Io_error.raise_at line fmt

type names_block = {
  inputs : string list;
  output : string;
  rows : (string * char) list;
  decl_line : int;  (** line of the [.names] directive *)
}

let tokenize_lines text =
  (* join continuation lines, strip comments; each logical line keeps
     the 1-based number of its first physical line *)
  let strip line =
    (match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line)
    |> String.trim
  in
  let lines = String.split_on_char '\n' text in
  let rec join acc lno = function
    | [] -> List.rev acc
    | line :: rest ->
        let start = lno in
        let buf = Buffer.create 64 in
        (* consume '\'-terminated physical lines into one logical line *)
        let rec consume lno line rest =
          let line = strip line in
          let n = String.length line in
          if n > 0 && line.[n - 1] = '\\' && rest <> [] then begin
            Buffer.add_string buf (String.sub line 0 (n - 1));
            Buffer.add_char buf ' ';
            match rest with
            | next :: rest' -> consume (lno + 1) next rest'
            | [] -> assert false
          end
          else begin
            Buffer.add_string buf line;
            (lno + 1, rest)
          end
        in
        let lno', rest' = consume lno line rest in
        join ((start, Buffer.contents buf) :: acc) lno' rest'
  in
  join [] 1 lines |> List.filter (fun (_, l) -> l <> "")

let words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let read text =
  let lines = tokenize_lines text in
  let inputs = ref [] and outputs = ref [] in
  let blocks = Hashtbl.create 256 in
  let rec parse = function
    | [] -> ()
    | (lno, line) :: rest when String.length line > 0 && line.[0] = '.' -> (
        match words line with
        | ".model" :: _ -> parse rest
        | ".inputs" :: ins ->
            inputs := !inputs @ List.map (fun n -> (lno, n)) ins;
            parse rest
        | ".outputs" :: outs ->
            outputs := !outputs @ List.map (fun n -> (lno, n)) outs;
            parse rest
        | ".end" :: _ -> ()
        | ".names" :: signals when signals <> [] ->
            let rec split_last = function
              | [ x ] -> ([], x)
              | x :: rest ->
                  let init, last = split_last rest in
                  (x :: init, last)
              | [] -> assert false
            in
            let ins, out = split_last signals in
            let rows, rest' = collect_rows [] rest in
            Hashtbl.replace blocks out
              { inputs = ins; output = out; rows; decl_line = lno };
            parse rest'
        | ".names" :: _ -> err lno ".names wants at least an output"
        | ".latch" :: _ -> err lno "latches not supported"
        | d :: _ -> err lno "unsupported directive %s" d
        | [] -> parse rest)
    | _ :: rest -> parse rest
  and collect_rows acc = function
    | (lno, line) :: rest when String.length line > 0 && line.[0] <> '.' -> (
        match words line with
        | [ plane; out ] when String.length out = 1 && (out = "0" || out = "1")
          ->
            collect_rows ((plane, out.[0]) :: acc) rest
        | [ out ] when out = "0" || out = "1" ->
            collect_rows (("", out.[0]) :: acc) rest
        | _ -> err lno "bad cover row: %s" line)
    | rest -> (List.rev acc, rest)
  in
  parse lines;
  (* duplicate declarations would create dangling twin PIs / ambiguous
     POs — exactly the NET005/MIG005 lint violations (see Check) *)
  let check_dups kind names =
    let seen = Hashtbl.create 64 in
    List.iter
      (fun (lno, n) ->
        if Hashtbl.mem seen n then err lno "duplicate %s %s" kind n
        else Hashtbl.add seen n ())
      names
  in
  check_dups ".inputs name" !inputs;
  check_dups ".outputs name" !outputs;
  let net = N.create () in
  let signals = Hashtbl.create 256 in
  List.iter
    (fun (_, name) -> Hashtbl.replace signals name (N.add_pi net name))
    !inputs;
  let resolving = Hashtbl.create 16 in
  let rec resolve ~line name =
    match Hashtbl.find_opt signals name with
    | Some s -> s
    | None -> (
        match Hashtbl.find_opt blocks name with
        | None -> err line "undriven signal %s" name
        | Some blk ->
            if Hashtbl.mem resolving name then
              err blk.decl_line "combinational cycle through %s" name;
            Hashtbl.replace resolving name ();
            let lno = blk.decl_line in
            let ins =
              List.map (resolve ~line:lno) blk.inputs |> Array.of_list
            in
            let value =
              match blk.rows with
              | [] -> N.const0 net (* .names with no rows = constant 0 *)
              | ("", '1') :: _ -> N.const1 net
              | ("", '0') :: _ -> N.const0 net
              | rows ->
                  let polarity = snd (List.hd rows) in
                  let cube plane =
                    if String.length plane <> Array.length ins then
                      err lno
                        "cover row %S has %d columns for %d inputs of %s"
                        plane (String.length plane) (Array.length ins) name;
                    let lits = ref [] in
                    String.iteri
                      (fun i c ->
                        let s = ins.(i) in
                        match c with
                        | '1' -> lits := s :: !lits
                        | '0' -> lits := S.not_ s :: !lits
                        | '-' -> ()
                        | c -> err lno "bad plane char %c" c)
                      plane;
                    N.and_n net !lits
                  in
                  let sum =
                    N.or_n net (List.map (fun (p, _) -> cube p) rows)
                  in
                  if polarity = '1' then sum else S.not_ sum
            in
            Hashtbl.remove resolving name;
            Hashtbl.replace signals name value;
            value)
  in
  (match
     List.iter
       (fun (lno, name) -> N.add_po net name (resolve ~line:lno name))
       !outputs
   with
  | () -> ()
  | exception Stack_overflow -> err 0 "nesting too deep");
  net

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  read text
