module N = Network.Graph
module S = Network.Signal

(* ----- writing ----- *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let write fmt ?(module_name = "circuit") net =
  let net = N.cleanup net in
  let name_of = Hashtbl.create 256 in
  List.iter
    (fun id -> Hashtbl.replace name_of id (sanitize (N.pi_name net id)))
    (N.pis net);
  N.iter_gates net (fun id _ _ ->
      Hashtbl.replace name_of id (Printf.sprintf "n%d" id));
  let ref_of s =
    if S.node s = 0 then if S.is_complement s then "1'b1" else "1'b0"
    else
      let base = Hashtbl.find name_of (S.node s) in
      if S.is_complement s then "~" ^ base else base
  in
  let pis = List.map (N.pi_name net) (N.pis net) in
  let pos = List.map fst (N.pos net) in
  Format.fprintf fmt "module %s(%s);@." module_name
    (String.concat ", " (List.map sanitize (pis @ pos)));
  List.iter (fun p -> Format.fprintf fmt "  input %s;@." (sanitize p)) pis;
  List.iter (fun p -> Format.fprintf fmt "  output %s;@." (sanitize p)) pos;
  N.iter_gates net (fun id _ _ ->
      Format.fprintf fmt "  wire n%d;@." id);
  N.iter_gates net (fun id fn fs ->
      let v k = ref_of fs.(k) in
      let rhs =
        match fn with
        | N.And -> Printf.sprintf "%s & %s" (v 0) (v 1)
        | N.Or -> Printf.sprintf "%s | %s" (v 0) (v 1)
        | N.Xor -> Printf.sprintf "%s ^ %s" (v 0) (v 1)
        | N.Maj ->
            Printf.sprintf "(%s & %s) | (%s & %s) | (%s & %s)" (v 0) (v 1)
              (v 0) (v 2) (v 1) (v 2)
        | N.Mux -> Printf.sprintf "%s ? %s : %s" (v 0) (v 1) (v 2)
      in
      Format.fprintf fmt "  assign n%d = %s;@." id rhs);
  List.iter
    (fun (name, s) ->
      Format.fprintf fmt "  assign %s = %s;@." (sanitize name) (ref_of s))
    (N.pos net);
  Format.fprintf fmt "endmodule@."

let write_file path ?module_name net =
  let oc = open_out path in
  let fmt = Format.formatter_of_out_channel oc in
  write fmt ?module_name net;
  Format.pp_print_flush fmt ();
  close_out oc

(* ----- reading ----- *)

(* As with [Blif], every malformed input raises
   [Io_error.Parse_error] with the 1-based source line. *)
let err line fmt = Io_error.raise_at line fmt

type token =
  | Ident of string
  | Const of bool
  | Kw of string
  | Sym of char

let token_name = function
  | Ident s -> Printf.sprintf "identifier %s" s
  | Const b -> if b then "1'b1" else "1'b0"
  | Kw k -> Printf.sprintf "keyword %s" k
  | Sym c -> Printf.sprintf "'%c'" c

let keywords = [ "module"; "endmodule"; "input"; "output"; "wire"; "assign" ]

(* Tokens carry the 1-based line they start on. *)
let lex text =
  let n = String.length text in
  let toks = ref [] in
  let i = ref 0 in
  let line = ref 1 in
  while !i < n do
    match text.[!i] with
    | '\n' ->
        incr line;
        incr i
    | ' ' | '\t' | '\r' -> incr i
    | '/' when !i + 1 < n && text.[!i + 1] = '/' ->
        while !i < n && text.[!i] <> '\n' do incr i done
    | 'a' .. 'z' | 'A' .. 'Z' | '_' ->
        let start = !i in
        while
          !i < n
          && match text.[!i] with
             | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '$' -> true
             | _ -> false
        do
          incr i
        done;
        let word = String.sub text start (!i - start) in
        toks :=
          ((if List.mem word keywords then Kw word else Ident word), !line)
          :: !toks
    | '1' when !i + 3 < n && String.sub text !i 4 = "1'b0" ->
        toks := (Const false, !line) :: !toks;
        i := !i + 4
    | '1' when !i + 3 < n && String.sub text !i 4 = "1'b1" ->
        toks := (Const true, !line) :: !toks;
        i := !i + 4
    | ('(' | ')' | ',' | ';' | '=' | '&' | '|' | '^' | '~' | '?' | ':') as c ->
        toks := (Sym c, !line) :: !toks;
        incr i
    | c -> err !line "unexpected character %C" c
  done;
  List.rev !toks

(* Recursive-descent expression parser.
   Precedence: ?: lowest, then |, ^, &, then unary ~ (Verilog order).
   Assign statements may appear in any order: each right-hand side is
   kept as a token slice and elaborated on demand, with combinational
   cycles detected. *)
let read text =
  let toks = ref (lex text) in
  let last_line = ref 1 in
  let peek () = match !toks with (t, _) :: _ -> Some t | [] -> None in
  let here () = match !toks with (_, l) :: _ -> l | [] -> !last_line in
  let next () =
    match !toks with
    | (t, l) :: rest ->
        last_line := l;
        toks := rest;
        t
    | [] -> err !last_line "unexpected end of input"
  in
  let expect t =
    let l = here () in
    let got = next () in
    if got <> t then err l "expected %s, got %s" (token_name t) (token_name got)
  in
  let ident () =
    let l = here () in
    match next () with
    | Ident s -> s
    | got -> err l "identifier expected, got %s" (token_name got)
  in
  let net = N.create () in
  let env : (string, S.t) Hashtbl.t = Hashtbl.create 256 in
  let pending : (string, (token * int) list) Hashtbl.t = Hashtbl.create 256 in
  let resolving = Hashtbl.create 16 in
  (* expression evaluation over an explicit token cursor *)
  let eval_expr cursor lookup =
    let peek () = match !cursor with (t, _) :: _ -> Some t | [] -> None in
    let here () = match !cursor with (_, l) :: _ -> l | [] -> !last_line in
    let next () =
      match !cursor with
      | (t, l) :: rest ->
          last_line := l;
          cursor := rest;
          t
      | [] -> err !last_line "truncated expression"
    in
    let expect t =
      let l = here () in
      let got = next () in
      if got <> t then
        err l "expected %s, got %s" (token_name t) (token_name got)
    in
    let rec expr () = ternary ()
    and ternary () =
      let c = or_expr () in
      match peek () with
      | Some (Sym '?') ->
          ignore (next ());
          let t = expr () in
          expect (Sym ':');
          let e = expr () in
          N.mux net c t e
      | _ -> c
    and or_expr () =
      let l = ref (xor_expr ()) in
      let rec loop () =
        match peek () with
        | Some (Sym '|') ->
            ignore (next ());
            l := N.or_ net !l (xor_expr ());
            loop ()
        | _ -> ()
      in
      loop ();
      !l
    and xor_expr () =
      let l = ref (and_expr ()) in
      let rec loop () =
        match peek () with
        | Some (Sym '^') ->
            ignore (next ());
            l := N.xor_ net !l (and_expr ());
            loop ()
        | _ -> ()
      in
      loop ();
      !l
    and and_expr () =
      let l = ref (unary ()) in
      let rec loop () =
        match peek () with
        | Some (Sym '&') ->
            ignore (next ());
            l := N.and_ net !l (unary ());
            loop ()
        | _ -> ()
      in
      loop ();
      !l
    and unary () =
      let l = here () in
      match next () with
      | Sym '~' -> S.not_ (unary ())
      | Sym '(' ->
          let e = expr () in
          expect (Sym ')');
          e
      | Const b -> if b then N.const1 net else N.const0 net
      | Ident name -> lookup name
      | got -> err l "expression syntax error at %s" (token_name got)
    in
    expr ()
  in
  let rec lookup name =
    match Hashtbl.find_opt env name with
    | Some s -> s
    | None -> (
        match Hashtbl.find_opt pending name with
        | Some slice ->
            let decl_line =
              match slice with (_, l) :: _ -> l | [] -> !last_line
            in
            if Hashtbl.mem resolving name then
              err decl_line "combinational cycle through %s" name;
            Hashtbl.replace resolving name ();
            let cursor = ref slice in
            let s = eval_expr cursor lookup in
            (match !cursor with
            | (t, l) :: _ -> err l "trailing %s after expression" (token_name t)
            | [] -> ());
            Hashtbl.remove resolving name;
            Hashtbl.replace env name s;
            s
        | None -> err !last_line "use of undefined signal %s" name)
  in
  (* module header *)
  expect (Kw "module");
  ignore (ident ());
  expect (Sym '(');
  let rec skip_ports () =
    match next () with Sym ')' -> () | _ -> skip_ports ()
  in
  skip_ports ();
  expect (Sym ';');
  let outputs = ref [] in
  let rec statements () =
    match peek () with
    | Some (Kw "endmodule") -> ()
    | Some (Kw "input") ->
        ignore (next ());
        let rec names () =
          let l = here () in
          let n = ident () in
          (* a second [input n] would add a dangling twin PI with a
             duplicated name (NET005/MIG005 lint violation) *)
          if Hashtbl.mem env n then err l "duplicate input %s" n;
          Hashtbl.replace env n (N.add_pi net n);
          let l = here () in
          match next () with
          | Sym ',' -> names ()
          | Sym ';' -> ()
          | got -> err l "declaration syntax at %s" (token_name got)
        in
        names ();
        statements ()
    | Some (Kw "output") ->
        ignore (next ());
        let rec names () =
          let l = here () in
          let n = ident () in
          if List.exists (fun (_, n') -> n' = n) !outputs then
            err l "duplicate output %s" n;
          outputs := (l, n) :: !outputs;
          let l = here () in
          match next () with
          | Sym ',' -> names ()
          | Sym ';' -> ()
          | got -> err l "declaration syntax at %s" (token_name got)
        in
        names ();
        statements ()
    | Some (Kw "wire") ->
        ignore (next ());
        let rec names () =
          ignore (ident ());
          let l = here () in
          match next () with
          | Sym ',' -> names ()
          | Sym ';' -> ()
          | got -> err l "declaration syntax at %s" (token_name got)
        in
        names ();
        statements ()
    | Some (Kw "assign") ->
        ignore (next ());
        let name = ident () in
        expect (Sym '=');
        (* capture the right-hand side tokens up to the ';' *)
        let slice = ref [] in
        let rec collect () =
          let l = here () in
          match next () with
          | Sym ';' -> ()
          | t ->
              slice := (t, l) :: !slice;
              collect ()
        in
        collect ();
        Hashtbl.replace pending name (List.rev !slice);
        statements ()
    | Some got -> err (here ()) "statement syntax error at %s" (token_name got)
    | None -> err !last_line "missing endmodule"
  in
  statements ();
  (match
     List.iter
       (fun (lno, name) ->
         last_line := lno;
         N.add_po net name (lookup name))
       (List.rev !outputs)
   with
  | () -> ()
  | exception Stack_overflow -> err 0 "nesting too deep");
  net

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  read text
