(** Structural Verilog for flattened combinational circuits.

    The paper's MIGhty "reads a Verilog description of a combinational
    logic circuit, flattened into Boolean primitives, and writes back
    a Verilog description of the optimized MIG".  The writer emits
    one [assign] per gate using [& | ^ ~ ?:] plus a [maj]-expansion;
    the reader accepts the same flattened subset: a single module,
    scalar [input]/[output]/[wire] declarations, and [assign]
    statements over identifiers, [1'b0]/[1'b1], parentheses and the
    operators [~ & | ^ ?:].  Assignments may appear in any order;
    combinational cycles are rejected. *)

val write : Format.formatter -> ?module_name:string -> Network.Graph.t -> unit
val write_file : string -> ?module_name:string -> Network.Graph.t -> unit

val read : string -> Network.Graph.t
(** @raise Io_error.Parse_error on anything outside the subset, with
    the offending source line.  No other exception escapes. *)

val read_file : string -> Network.Graph.t
