(** BLIF reader/writer for combinational networks.

    Supports the combinational subset: [.model], [.inputs],
    [.outputs], [.names] with 1/0/- cover rows (both on-set and
    off-set covers), and [.end].  Complemented edges are materialized
    by flipping cover columns, so written files round-trip. *)

val write : Format.formatter -> ?model:string -> Network.Graph.t -> unit
val write_file : string -> ?model:string -> Network.Graph.t -> unit

val read : string -> Network.Graph.t
(** Parse BLIF text.
    @raise Io_error.Parse_error on any malformed input — syntax
    errors, latches, bad cover rows or plane widths, undriven
    signals, combinational cycles — with the offending source
    line.  No other exception escapes. *)

val read_file : string -> Network.Graph.t
