exception Parse_error of { line : int; msg : string }

let raise_at line fmt =
  Printf.ksprintf (fun msg -> raise (Parse_error { line; msg })) fmt

let to_string ~filename line msg =
  if line > 0 then Printf.sprintf "%s:%d: %s" filename line msg
  else Printf.sprintf "%s: %s" filename msg

let () =
  Printexc.register_printer (function
    | Parse_error { line; msg } ->
        Some
          (if line > 0 then Printf.sprintf "Parse error, line %d: %s" line msg
           else Printf.sprintf "Parse error: %s" msg)
    | _ -> None)
