(** Structured reader errors.

    Both readers ({!Blif}, {!Verilog}) report every malformed input —
    syntax errors, unsupported constructs, semantic problems like
    undriven signals or combinational cycles — as {!Parse_error} with
    a 1-based source line ([0] when no position is known).  No other
    exception escapes a reader on any input. *)

exception Parse_error of { line : int; msg : string }

val raise_at : int -> ('a, unit, string, 'b) format4 -> 'a
(** [raise_at line fmt ...] raises {!Parse_error} at [line]. *)

val to_string : filename:string -> int -> string -> string
(** [to_string ~filename line msg] renders ["file:line: msg"]. *)
