(** Fault-tolerant pass engine: budgets, checkpoints, rollback.

    The engine runs a declarative list of MIG passes under a shared
    resource budget.  Each pass is isolated: any failure — deadline or
    node-cap exhaustion ({!Lsutil.Budget.Exhausted}), a stack
    overflow, a guard violation, an injected fault — is caught,
    recorded as a structured {!outcome}, and answered by rolling the
    working graph back to the last verified checkpoint.  The engine
    itself never raises (beyond [Out_of_memory]/[Sys.Break]): it
    always returns a valid, possibly degraded, best-so-far graph plus
    a {!report} of what happened.

    Checkpoint invariants (see DESIGN.md §12):
    - a pass result is checkpointed only if it lints clean, its size
      is within [size_cap], and — when verification is on — it is
      simulation-equivalent to the {e original} input;
    - the best checkpoint is monotone under [cost]: it only ever
      improves;
    - verification runs with the budget suspended and the fault plan
      disarmed, so it works after the deadline and cannot itself be
      faulted. *)

type outcome =
  | Completed
  | Timed_out of Lsutil.Budget.reason
  | Failed of string  (** exception description, or ["verification"] *)
  | Skipped  (** the budget was already blown when the pass came up *)

type pass_report = {
  pass : string;
  outcome : outcome;
  time_s : float;
  size : int;  (** of the working graph after this pass settled *)
  depth : int;
  rolled_back : bool;  (** result discarded, checkpoint restored *)
}

type report = {
  passes : pass_report list;
  rollbacks : int;
  degraded : bool;  (** some pass did not complete, or unverified *)
  verified : bool;  (** final graph lints clean and matches the input *)
}

type pass

val pass : string -> (Mig.Graph.t -> Mig.Graph.t) -> pass

val run :
  ?verify:bool ->
  ?timeout_s:float ->
  ?max_nodes:int ->
  ?cost:(Mig.Graph.t -> float * float) ->
  ?size_cap:int ->
  ?seed:int ->
  ?trace:(string -> unit) ->
  passes:pass list ->
  Mig.Graph.t ->
  Mig.Graph.t * report
(** [run ~passes g] pushes [g] through [passes] under a
    [Budget.with_budget ?deadline_s:timeout_s ?max_nodes] scope of the
    graph's context budget ([Lsutil.Ctx.budget (Mig.Graph.ctx g)]) —
    the engine owns no global state and is reentrant across domains as
    long as each domain works on graphs of its own context.

    [verify] adds the simulation miter against the input to every
    checkpoint decision; it defaults to the graph's context check
    policy ([Lsutil.Ctx.check]) or whenever the context's fault plan
    is armed.  [cost] ranks checkpoints
    (lexicographic on the float pair; default [(size, depth)]).
    Candidates larger than [size_cap] are never checkpointed (default:
    unlimited).  [seed] drives the miter simulation (default 1).
    [trace] is called with each pass name just before the pass runs
    (the serve daemon's streaming telemetry); it is isolated like a
    pass — an exception inside it cannot disturb the engine.

    The returned graph is re-verified unconditionally; if even the
    final checkpoint fails (possible only under injected corruption),
    the engine falls back to [cleanup] of the input. *)

val protect :
  tel:Lsutil.Telemetry.t -> name:string -> (unit -> 'a) -> ('a, outcome) result
(** The engine's exception isolation, exposed for callers that wrap
    non-MIG work (e.g. the technology mapper in the chaos harness):
    [Error] on budget exhaustion and non-fatal exceptions,
    [Out_of_memory]/[Sys.Break] propagate.  Outcome telemetry lands in
    [tel]. *)

val of_goal :
  ?effort:int ->
  ?cache:Mig.Rwcache.t ->
  [ `Size | `Depth | `Activity ] ->
  pass list
(** The optimization scripts of [Mig.Opt_size] / [Opt_depth] /
    [Opt_activity] unrolled into individually-checkpointed engine
    passes, [effort] (default 2) cycles plus the goal's recovery
    phase.  [cache] is handed to every refactoring pass (see
    {!Mig.Transform.refactor}).  Since the move refactor this is
    [Move.script_of_goal] wrapped into passes — same names, same
    order, bit-identical behavior. *)

val cost_of_goal :
  [ `Size | `Depth | `Activity ] -> Mig.Graph.t -> float * float
(** The checkpoint ranking matching each goal: (size, depth),
    (depth, size), (activity, size). *)

val outcome_name : outcome -> string
(** ["completed"] / ["timed_out"] / ["failed"] / ["skipped"]. *)

val report_to_json : report -> Lsutil.Json.t
val pp_report : Format.formatter -> report -> unit
