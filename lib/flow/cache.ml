(* The persistent-cache bundle: both sections of the [mighty-cache/1]
   store (the NPN rewrite entries of [Mig.Rwcache] and the PO-cone
   fingerprints of [Cutoff]) behind one load/absorb/save lifecycle.

   The bases inside are immutable snapshots; [absorb_*] swaps in a
   freshly merged snapshot and must only be called from the
   coordinating domain, between parallel regions (which is how
   [Batch.run] uses it). *)

type t = {
  path : string option;
  mutable rw : Mig.Rwcache.base;
  mutable cones : Cutoff.store;
}

let in_memory () =
  { path = None; rw = Mig.Rwcache.empty_base (); cones = Cutoff.empty_store () }

let of_sections path sections =
  let rw =
    match List.assoc_opt Mig.Rwcache.section sections with
    | Some j -> Mig.Rwcache.base_of_json j
    | None -> Mig.Rwcache.empty_base ()
  in
  let cones =
    match List.assoc_opt Cutoff.section sections with
    | Some j -> Cutoff.store_of_json j
    | None -> Cutoff.empty_store ()
  in
  { path; rw; cones }

let empty_at path = of_sections (Some path) []
let load path = Result.map (of_sections (Some path)) (Lsutil.Memo.load_file path)

let rw t = t.rw
let cones t = t.cones
let path t = t.path
let absorb_rw t deltas = if deltas <> [] then t.rw <- Mig.Rwcache.merge t.rw deltas

let absorb_cones t deltas =
  if deltas <> [] then t.cones <- Lsutil.Memo.merge t.cones deltas

let save t =
  match t.path with
  | None -> Ok ()
  | Some p ->
      Lsutil.Memo.save_file p
        [
          (Mig.Rwcache.section, Mig.Rwcache.base_to_json t.rw);
          (Cutoff.section, Cutoff.store_to_json t.cones);
        ]

let sizes t = (Mig.Rwcache.base_size t.rw, Cutoff.store_size t.cones)
