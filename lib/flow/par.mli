(** Region-parallel rewriting inside one graph.

    Partitions the PO-reachable cone into fanout-closed regions
    ({!Mig.Partition}), extracts each region as a standalone sub-MIG,
    optimizes the sub-MIGs on worker domains (one fresh
    {!Lsutil.Ctx} each), and commits the results sequentially in
    region index order — the same first-writer/input-order discipline
    [Flow.Batch] uses.  Every stage except the per-region optimize
    runs on the calling domain.

    {b Determinism}: partitioning, extraction, per-region optimization
    (own ctx, spec seed, no wall-clock budget) and the ordered commit
    are all pure functions of the input graph and the spec, so
    [run ~jobs:n] is bit-identical to [run ~jobs:1] for every [n] —
    the job count only decides which domain computes each region.
    Verified by the jobs-differential qcheck suite in [test_par.ml].

    Under [MIG_SAN=1] the cross-domain handoffs are sanitizer-checked:
    the parent graph is published for the read-only parallel phase and
    transferred back before the commit; workers publish their region
    results before joining. *)

type spec = {
  goal : [ `Size | `Depth ];
  effort : int;  (** optimization cycles per region *)
  target : int;  (** region size target, in majority nodes *)
  verify : bool option;
      (** per-region guarded passes + whole-region miter; [None]
          defers to the graph ctx's check policy *)
  seed : int;
}

val default_spec : spec
(** [`Size], effort 2, target 65536, verify from ctx, seed 1. *)

type region_outcome = {
  index : int;
  nodes_in : int;
  nodes_out : int;
  verified : bool;
  fell_back : bool;
      (** region committed unoptimized (optimizer raised or its miter
          failed) — the run is still correct, just not improved there *)
  time_s : float;
  telemetry : Lsutil.Telemetry.node option;
  san_findings : int;
}

type outcome = {
  jobs : int;
  live_majs : int;
  region_target : int;
  regions : region_outcome list;  (** region index order *)
  size_in : int;
  depth_in : int;
  size_out : int;
  depth_out : int;
  equivalent : bool;
      (** final whole-graph miter under the ctx check policy; [true]
          when the check was off *)
}

val run : ?jobs:int -> ?spec:spec -> Mig.Graph.t -> Mig.Graph.t * outcome
(** [run ~jobs ~spec g] optimizes [g] region-parallel on [jobs]
    domains (default 1; taken literally, clamped only to the region
    count — apply {!Domain.recommended_domain_count} yourself for a
    hardware cap).  Returns the rebuilt graph (compacted, POs in
    order, PI names preserved) and the per-region outcome report. *)

val passes : ?jobs:int -> ?spec:spec -> unit -> Engine.pass list
(** The whole region-parallel run wrapped as one {!Engine.pass}, so
    [Engine.run] supplies checkpointing, rollback and final
    re-verification around it — what [mighty opt --par-jobs] uses. *)

val outcome_to_json : outcome -> Lsutil.Json.t
val region_to_json : region_outcome -> Lsutil.Json.t
