(* Multi-domain batch driver: the reentrancy proof for the explicit
   execution context.  Each circuit gets its own fresh ctx and runs a
   full Engine pipeline; workers are plain domains pulling indices off
   an atomic counter and writing into disjoint result slots, so the
   merged output is in input order by construction and bit-identical
   for any job count. *)

module T = Lsutil.Telemetry
module Ctx = Lsutil.Ctx
module G = Mig.Graph

type spec = {
  goal : [ `Size | `Depth | `Activity ];
  effort : int;
  timeout_s : float option;
  max_nodes : int option;
  verify : bool option;
  seed : int;
}

let default_spec =
  {
    goal = `Size;
    effort = 2;
    timeout_s = None;
    max_nodes = None;
    verify = None;
    seed = 1;
  }

type item = { name : string; build : unit -> Network.Graph.t }

type cache_use = {
  rw_hits : int;
  rw_misses : int;
  reused_pos : int;
  reopt_pos : int;
}

type outcome = {
  name : string;
  size_in : int;
  depth_in : int;
  size_out : int;
  depth_out : int;
  report : Engine.report;
  time_s : float;
  telemetry : T.node option;
  cache : cache_use option;
}

(* [pmap ~jobs f arr] with a shared atomic work index and one result
   slot per item.  [Domain.join] provides the happens-before edge that
   publishes every slot written by a worker; no other synchronisation
   is needed because slots are disjoint.  [jobs] is taken literally
   (clamped only to the item count), so tests can force genuine
   multi-domain execution on any host; {!run} applies the hardware
   cap. *)
let pmap_opt ?stop ~jobs f arr =
  let stopped () = match stop with Some s -> Atomic.get s | None -> false in
  let n = Array.length arr in
  let jobs = max 1 (min jobs n) in
  let out = Array.make n None in
  if jobs <= 1 then begin
    let i = ref 0 in
    while !i < n && not (stopped ()) do
      out.(!i) <- Some (f !i arr.(!i));
      incr i
    done
  end
  else begin
    let next = Atomic.make 0 in
    let worker () =
      (* the stop flag is checked between claims, never mid-item: an
         interrupted batch still hands back only whole, verified
         outcomes *)
      let rec loop () =
        if not (stopped ()) then begin
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            out.(i) <- Some (f i arr.(i));
            loop ()
          end
        end
      in
      loop ()
    in
    let spawned = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned
  end;
  out

let pmap ~jobs f arr =
  Array.map
    (function Some v -> v | None -> assert false)
    (pmap_opt ~jobs f arr)

(* Everything that changes the optimizer's answer must land in the
   cone-fingerprint salt, or a store written under one recipe would be
   replayed under another. *)
let salt_of_spec spec =
  Printf.sprintf "%s:e%d:s%d:t%s:n%s:v%s"
    (match spec.goal with `Size -> "size" | `Depth -> "depth" | `Activity -> "act")
    spec.effort spec.seed
    (match spec.timeout_s with None -> "-" | Some t -> Printf.sprintf "%g" t)
    (match spec.max_nodes with None -> "-" | Some n -> string_of_int n)
    (match spec.verify with None -> "-" | Some b -> string_of_bool b)

(* The single construction point for "this spec's optimizer": the
   engine pipeline (via the move vocabulary behind [Engine.of_goal])
   and the matching checkpoint ranking, run under the spec's budget
   and verification policy.  Both [run_item] branches and the CLI's
   cache path build their optimizer here, so a recipe means the same
   thing everywhere it is replayed. *)
let optimizer_of_spec ?cache spec =
  let passes = Engine.of_goal ~effort:spec.effort ?cache spec.goal in
  fun g ->
    Engine.run ?verify:spec.verify ?timeout_s:spec.timeout_s
      ?max_nodes:spec.max_nodes
      ~cost:(Engine.cost_of_goal spec.goal)
      ~seed:spec.seed ~passes g

let run_item ~spec ~ctx ~shared item =
  let deltas = ref ([], []) in
  let work () =
    let net = Network.Graph.flatten_aoig (item.build ()) in
    let m = Mig.Convert.of_network ~ctx net in
    let size_in = G.size m and depth_in = G.depth m in
    match shared with
    | None ->
        let out, report = optimizer_of_spec spec m in
        (size_in, depth_in, G.size out, G.depth out, report, None)
    | Some (rw_base, cone_store, salt) ->
        (* the shared snapshots are immutable; this domain records its
           discoveries into private handles/deltas, merged by the
           coordinator in input order after every join *)
        let rwh = Mig.Rwcache.fork rw_base in
        let optimize = optimizer_of_spec ~cache:rwh spec in
        let r = Cutoff.run ~salt ~store:cone_store ~optimize ~seed:spec.seed m in
        deltas := (Mig.Rwcache.delta rwh, r.Cutoff.delta);
        let use =
          {
            rw_hits = Mig.Rwcache.hits rwh;
            rw_misses = Mig.Rwcache.misses rwh;
            reused_pos = r.Cutoff.reused;
            reopt_pos = r.Cutoff.reoptimized;
          }
        in
        ( size_in,
          depth_in,
          G.size r.Cutoff.graph,
          G.depth r.Cutoff.graph,
          r.Cutoff.report,
          Some use )
  in
  let ((size_in, depth_in, size_out, depth_out, report, cache), telemetry), time_s
      =
    T.time (fun () -> T.capture (Ctx.stats ctx) ("batch:" ^ item.name) work)
  in
  (* every scratch lease taken under this ctx must be back by now;
     leaks are SAN006 findings attributed to this item *)
  Lsutil.San.drain (Ctx.san ctx);
  ( {
      name = item.name;
      size_in;
      depth_in;
      size_out;
      depth_out;
      report;
      time_s;
      telemetry;
      cache;
    },
    !deltas )

let run ?(jobs = 1) ?(spec = default_spec) ?make_ctx ?cache ?stop items =
  let jobs = min jobs (max 1 (Domain.recommended_domain_count ())) in
  let make_ctx =
    match make_ctx with Some f -> f | None -> fun _ _ -> Ctx.create ()
  in
  (* the pattern table is the library's only top-level [lazy]; force
     it before spawning so no two domains race its first Lazy.force *)
  Mig.Transform.prewarm ();
  let shared =
    Option.map (fun c -> (Cache.rw c, Cache.cones c, salt_of_spec spec)) cache
  in
  let arr = Array.of_list items in
  let slots =
    pmap_opt ?stop ~jobs
      (fun i item -> run_item ~spec ~ctx:(make_ctx i item) ~shared item)
      arr
  in
  let results = List.filter_map Fun.id (Array.to_list slots) in
  (* deltas are merged in input order — first writer wins — so the
     absorbed cache is bit-identical for any [jobs] value; a stopped
     run merges only the deltas of items that actually completed *)
  (match cache with
  | Some c ->
      Cache.absorb_rw c (List.map (fun (_, (rw, _)) -> rw) results);
      Cache.absorb_cones c (List.map (fun (_, (_, cones)) -> cones) results)
  | None -> ());
  List.map fst results

(* ----- reporting ----- *)

module J = Lsutil.Json

let cache_use_to_json u =
  J.Obj
    [
      ("rw_hits", J.Int u.rw_hits);
      ("rw_misses", J.Int u.rw_misses);
      ("reused_pos", J.Int u.reused_pos);
      ("reopt_pos", J.Int u.reopt_pos);
    ]

let outcome_to_json o =
  J.Obj
    ([
       ("name", J.String o.name);
       ("size_in", J.Int o.size_in);
       ("depth_in", J.Int o.depth_in);
       ("size_out", J.Int o.size_out);
       ("depth_out", J.Int o.depth_out);
       ("time_s", J.Float o.time_s);
       ("verified", J.Bool o.report.Engine.verified);
       ("degraded", J.Bool o.report.Engine.degraded);
       ("rollbacks", J.Int o.report.Engine.rollbacks);
       ("report", Engine.report_to_json o.report);
     ]
    @ (match o.cache with
      | Some u -> [ ("cache", cache_use_to_json u) ]
      | None -> [])
    @
    match o.telemetry with
    | Some node -> [ ("telemetry", T.to_json node) ]
    | None -> [])

let to_json ?(interrupted = false) ~jobs outcomes =
  J.Obj
    ([ ("jobs", J.Int jobs) ]
    @ (if interrupted then [ ("interrupted", J.Bool true) ] else [])
    @ [ ("circuits", J.List (List.map outcome_to_json outcomes)) ])

let pp_outcome fmt o =
  Format.fprintf fmt "%-12s %6d -> %-6d depth %3d -> %-3d %8.3fs  %s%s"
    o.name o.size_in o.size_out o.depth_in o.depth_out o.time_s
    (if o.report.Engine.verified then "verified" else "UNVERIFIED")
    (if o.report.Engine.degraded then " [degraded]" else "")
