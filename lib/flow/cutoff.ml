(* Dune-style early cutoff for re-optimization (DESIGN.md §15).

   Each primary output's input cone is fingerprinted structurally
   (node shapes, complement bits, PI names, plus a salt encoding the
   optimization recipe).  A persistent store maps fingerprints to the
   serialized *optimized* cone from a previous run; on a re-run over
   an edited circuit, outputs whose fingerprints still match are
   stitched back from the store and only the changed outputs go
   through the engine, in a restricted sub-graph.  Structural hashing
   in the rebuilt graph re-deduplicates logic shared between reused
   and re-optimized cones.

   The store is one section of the [mighty-cache/1] envelope and
   follows the [Lsutil.Memo] read-mostly model: batch domains share an
   immutable snapshot and return private deltas. *)

module G = Mig.Graph
module S = Network.Signal
module J = Lsutil.Json
module Memo = Lsutil.Memo

type store = J.t Memo.base

let section = "cones"
let empty_store () : store = Memo.empty_base ()

let store_of_json = function
  | J.List entries ->
      Memo.base_of_list
        (List.filter_map
           (function
             | J.List [ J.String fp; (J.Obj _ as cone) ] -> Some (fp, cone)
             | _ -> None)
           entries)
  | _ -> Memo.empty_base ()

let store_to_json (s : store) =
  J.List (List.map (fun (fp, cone) -> J.List [ J.String fp; cone ]) (Memo.base_to_list s))

let store_size = Memo.base_size

(* ----- structural traversal ----- *)

(* Iterative post-order over a cone: every reachable node visited
   exactly once, fanins before fanouts.  Deterministic (fanin order),
   and heap-allocated so deep cones cannot blow the call stack. *)
let postorder g root_node visit =
  let seen = Hashtbl.create 256 in
  let stack = ref [ (root_node, false) ] in
  let continue_ = ref true in
  while !continue_ do
    match !stack with
    | [] -> continue_ := false
    | (id, processed) :: rest ->
        stack := rest;
        if processed then visit id
        else if not (Hashtbl.mem seen id) then begin
          Hashtbl.add seen id ();
          stack := (id, true) :: !stack;
          if G.is_maj g id then begin
            let fs = G.fanins g id in
            for i = Array.length fs - 1 downto 0 do
              let c = S.node fs.(i) in
              if not (Hashtbl.mem seen c) then stack := (c, false) :: !stack
            done
          end
        end
  done

(* ----- fingerprints ----- *)

(* splitmix64 finalizer; two independently-seeded lanes give a 128-bit
   fingerprint, printed as 32 hex digits.  Deterministic across runs
   and platforms (pure Int64 arithmetic, no addresses, no hashing of
   OCaml values). *)
let splitmix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let mix h x = splitmix (Int64.add h (Int64.mul 0x9E3779B97F4A7C15L x))

let fingerprint ~salt g root =
  let h1 = ref 0x6a09e667f3bcc908L and h2 = ref 0xbb67ae8584caa73bL in
  let feed x =
    h1 := mix !h1 x;
    h2 := mix !h2 (Int64.lognot x)
  in
  let feed_int i = feed (Int64.of_int i) in
  let feed_str s =
    feed_int (String.length s);
    String.iter (fun c -> feed_int (Char.code c)) s
  in
  let idx = Hashtbl.create 256 in
  postorder g (S.node root) (fun id ->
      Hashtbl.add idx id (Hashtbl.length idx);
      if G.is_maj g id then begin
        feed_int 3;
        Array.iter
          (fun f ->
            feed_int ((2 * Hashtbl.find idx (S.node f)) + Bool.to_int (S.is_complement f)))
          (G.fanins g id)
      end
      else if G.is_pi g id then begin
        feed_int 2;
        feed_str (G.pi_name g id)
      end
      else feed_int 1);
  feed_int (Bool.to_int (S.is_complement root));
  feed_str salt;
  Printf.sprintf "%016Lx%016Lx" !h1 !h2

(* ----- cone (de)serialization -----

   Portable reference encoding: slot 0 is the constant-false node,
   slots 1..np the cone's PIs (by name, listed in traversal order),
   then one slot per majority node in post-order.  A signal is
   [2*slot + complement]. *)

let sig_ref slot f =
  J.Int ((2 * Hashtbl.find slot (S.node f)) + Bool.to_int (S.is_complement f))

let serialize g root =
  let pis = ref [] and ms = ref [] in
  let slot = Hashtbl.create 256 in
  postorder g (S.node root) (fun id ->
      if G.is_maj g id then ms := id :: !ms
      else if G.is_pi g id then pis := id :: !pis
      else Hashtbl.replace slot id 0);
  let pis = List.rev !pis and ms = List.rev !ms in
  List.iteri (fun i id -> Hashtbl.replace slot id (i + 1)) pis;
  let np = List.length pis in
  List.iteri (fun i id -> Hashtbl.replace slot id (np + 1 + i)) ms;
  J.Obj
    [
      ("pis", J.List (List.map (fun id -> J.String (G.pi_name g id)) pis));
      ( "nodes",
        J.List
          (List.map
             (fun id ->
               J.List (Array.to_list (Array.map (sig_ref slot) (G.fanins g id))))
             ms) );
      ("out", sig_ref slot root);
    ]

(* Rebuild a serialized cone inside [tg]; [pi_sig] resolves PI names
   to [tg] signals.  Any malformed reference (unknown PI, slot not yet
   defined, bad shape) yields [None] — the entry is then treated as a
   miss, never trusted. *)
let deserialize tg ~pi_sig json =
  match (J.member "pis" json, J.member "nodes" json, J.member "out" json) with
  | Some (J.List pis), Some (J.List nodes), Some (J.Int out) ->
      let np = List.length pis and nn = List.length nodes in
      let refs = Array.make (1 + np + nn) (G.const0 tg) in
      let ok = ref true in
      List.iteri
        (fun i p ->
          match p with
          | J.String name -> (
              match pi_sig name with
              | Some s -> refs.(i + 1) <- s
              | None -> ok := false)
          | _ -> ok := false)
        pis;
      let decode ~filled r =
        if r < 0 || r / 2 > filled then begin
          ok := false;
          G.const0 tg
        end
        else S.xor_complement refs.(r / 2) (r land 1 = 1)
      in
      List.iteri
        (fun i n ->
          match n with
          | J.List [ J.Int a; J.Int b; J.Int c ] ->
              let filled = np + i in
              let da = decode ~filled a
              and db = decode ~filled b
              and dc = decode ~filled c in
              if !ok then refs.(1 + np + i) <- G.maj tg da db dc
          | _ -> ok := false)
        nodes;
      let result = decode ~filled:(np + nn) out in
      if !ok then Some result else None
  | _ -> None

(* Structural copy of one cone from [src] into [dst], mapping PIs by
   name. *)
let copy_cone src dst ~pi_sig root =
  let map = Hashtbl.create 256 in
  let ok = ref true in
  postorder src (S.node root) (fun id ->
      if G.is_maj src id then begin
        let fs = G.fanins src id in
        let v i =
          S.xor_complement (Hashtbl.find map (S.node fs.(i))) (S.is_complement fs.(i))
        in
        Hashtbl.replace map id (G.maj dst (v 0) (v 1) (v 2))
      end
      else if G.is_pi src id then
        match pi_sig (G.pi_name src id) with
        | Some s -> Hashtbl.replace map id s
        | None ->
            ok := false;
            Hashtbl.replace map id (G.const0 dst)
      else Hashtbl.replace map id (G.const0 dst));
  if !ok then
    Some (S.xor_complement (Hashtbl.find map (S.node root)) (S.is_complement root))
  else None

(* ----- the incremental driver ----- *)

type result = {
  graph : G.t;
  report : Engine.report;
  reused : int;  (** POs stitched from the store *)
  reoptimized : int;  (** POs pushed through the engine *)
  fallback : bool;  (** store answers rejected; full run used instead *)
  hits : int;
  misses : int;
  delta : (string * J.t) list;  (** new fingerprint → cone entries *)
}

let fresh_like g =
  let tg = G.create ~ctx:(G.ctx g) () in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun id -> Hashtbl.replace tbl (G.pi_name g id) (G.add_pi tg (G.pi_name g id)))
    (G.pis g);
  (tg, fun name -> Hashtbl.find_opt tbl name)

(* Optimize only the named POs of [g], as a restricted sub-graph over
   the full PI list. *)
let restrict g pos_subset =
  let rg, pi_sig = fresh_like g in
  let ok = ref true in
  List.iter
    (fun (name, s) ->
      match copy_cone g rg ~pi_sig s with
      | Some s' -> G.add_po rg name s'
      | None -> ok := false)
    pos_subset;
  if !ok then Some rg else None

let clean_report verified =
  { Engine.passes = []; rollbacks = 0; degraded = false; verified }

let run ~salt ~store ~optimize ?(seed = 1) g =
  let check = Lsutil.Ctx.check (G.ctx g) in
  let handle = Memo.fork store in
  let pos = G.pos g in
  let tagged =
    List.map
      (fun (name, s) ->
        let fp = fingerprint ~salt g s in
        (name, s, fp, Memo.find handle fp))
      pos
  in
  let changed = List.filter_map (function (n, s, _, None) -> Some (n, s) | _ -> None) tagged in
  let reused = List.length tagged - List.length changed in
  let record_cones out names =
    let outs = G.pos out in
    List.iter
      (fun (name, _, fp, _) ->
        if List.mem name names then
          match List.assoc_opt name outs with
          | Some s -> Memo.add handle fp (serialize out s)
          | None -> ())
      tagged
  in
  let full_run () =
    let out, report = optimize g in
    record_cones out (List.map fst pos);
    (out, report)
  in
  let finish ~fallback (out, report) ~reused ~reoptimized =
    {
      graph = out;
      report;
      reused;
      reoptimized;
      fallback;
      hits = Memo.hits handle;
      misses = Memo.misses handle;
      delta = Memo.delta handle;
    }
  in
  if reused = 0 then
    (* nothing to stitch: a plain (cold or fully-edited) run *)
    finish ~fallback:false (full_run ()) ~reused:0 ~reoptimized:(List.length pos)
  else begin
    let sub =
      if changed = [] then Some None
      else
        match restrict g changed with
        | None -> None
        | Some rg ->
            let rout, rreport = optimize rg in
            Some (Some (rout, rreport))
    in
    let stitched =
      match sub with
      | None -> None
      | Some sub_run -> (
          let sg, pi_sig = fresh_like g in
          let rout_pos =
            match sub_run with Some (rout, _) -> G.pos rout | None -> []
          in
          let ok = ref true in
          List.iter
            (fun (name, _, _, cached) ->
              let s' =
                match cached with
                | Some cone -> deserialize sg ~pi_sig cone
                | None -> (
                    match List.assoc_opt name rout_pos with
                    | Some rs -> (
                        match sub_run with
                        | Some (rout, _) -> copy_cone rout sg ~pi_sig rs
                        | None -> None)
                    | None -> None)
              in
              match s' with
              | Some s' -> G.add_po sg name s'
              | None -> ok := false)
            tagged;
          if not !ok then None
          else if
            check
            && not
                 (Lsutil.Budget.suspended
                    (Lsutil.Ctx.budget (G.ctx g))
                    (fun () -> Mig.Equiv.migs ~seed g sg))
          then None
          else Some sg)
    in
    match stitched with
    | Some sg ->
        record_cones sg (List.map fst changed);
        let report =
          match sub with
          | Some (Some (_, r)) -> r
          | _ ->
              clean_report
                (Check_report.is_clean (Mig.Check.lint ~subject:"cutoff" sg))
        in
        finish ~fallback:false (sg, report) ~reused ~reoptimized:(List.length changed)
    | None ->
        (* a stored cone failed to rebuild or to verify: never trust
           the store over the input — run the whole circuit *)
        finish ~fallback:true (full_run ()) ~reused:0 ~reoptimized:(List.length pos)
  end
