(** Searchable pass orchestration: greedy/beam search over
    {!Move} sequences, inside the {!Engine} degradation machinery.

    Instead of committing to one fixed script, the orchestrator grows
    move sequences round by round: every surviving candidate is
    expanded with every vocabulary move, each expansion running as a
    single-pass {!Engine.run} (so it is checkpointed, size-capped at
    the input size, verified, and rolled back on failure exactly like
    a fixed-script pass), and the [beam] best-scoring distinct
    candidates seed the next round.  Scoring is the size·depth
    product (times switching activity for the [`Activity] goal),
    tie-broken by the goal's own primary metric; the best candidate
    ever seen — including the untouched input — is the result, so
    search can only improve on doing nothing.

    Degradation: the whole search runs under one
    [Budget.with_budget] scope.  A blown deadline, node cap,
    interrupt or injected fault ends expansion early and returns the
    verified best-so-far; the returned graph is re-verified
    unconditionally (budget suspended, faults disarmed) with a
    cleanup-of-input fallback, mirroring {!Engine.run}.

    Determinism: for a fixed [(seed, beam, rounds)] with no deadline
    the search is a pure function of the input — moves are evaluated
    in a fixed order, ties break by that order, and the wall-clock
    cost model only gates moves when a deadline is installed.

    Every run also yields a {!Traj.record} of all evaluated
    expansions (the QoR trajectory dataset). *)

type spec = {
  goal : Move.goal;  (** scoring metric, and first move tried *)
  beam : int;  (** beam width; 1 = greedy (clamped to >= 1) *)
  rounds : int;  (** max move-sequence length (clamped to >= 1) *)
  seed : int;  (** miter simulation + BDS variable-order search *)
  timeout_s : float option;
  max_nodes : int option;
}

val default_spec : spec
(** [`Size], beam 2, 4 rounds, seed 1, no budget. *)

val run :
  ?verify:bool ->
  ?cache:Mig.Rwcache.t ->
  ?traj:string ->
  circuit:string ->
  spec:spec ->
  Mig.Graph.t ->
  Mig.Graph.t * Engine.report * Traj.record
(** [run ~circuit ~spec g] searches and returns the best verified
    graph, a synthetic {!Engine.report} whose passes are the winning
    move sequence (rollbacks = rejected expansions, [degraded] when
    the budget cut the search short or verification fell back), and
    the trajectory record.  [verify] as in {!Engine.run}.  [cache] is
    consulted by refactoring moves and its hit deltas land in the
    trajectory steps.  [?traj] appends the record to that NDJSON file
    (emission failures are recorded in telemetry, never raised).
    [circuit] only labels the trajectory. *)
