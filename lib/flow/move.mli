(** First-class optimization moves: the vocabulary the flow layer is
    built from.

    Two granularities share one construction point:

    {ul
    {- {b Atoms} — the individual transforms of the paper's Alg. 1/2
       scripts ([rewrite], [eliminate], [push_up], …).
       {!script_of_goal} unrolls a goal into its exact legacy
       atom-level pass list (same names, same order, same transform
       parameters), which is what {!Engine.of_goal} now returns — the
       fixed scripts are a special case of the move representation,
       bit-identical to the hard-coded pipelines they replace.}
    {- {b Macro moves} ({!t}) — whole optimization rounds (one goal
       cycle, an AIG-resyn round-trip, a BDS round-trip), the unit
       {!Orchestrate} searches over.  Each wraps an existing
       [Opt_size]/[Opt_depth]/[Opt_activity]/[Aig.Resyn]/
       [Bdd.Decompose] recipe with its effort parameters; its
       predicted cost comes from an {!Lsutil.Costmodel} keyed by
       {!cost_key}.}}

    Moves are pure graph-to-graph functions; budget polls, fault
    sites and verification all live in the transforms they wrap and
    in the {!Engine} machinery that runs them. *)

module G := Mig.Graph

type goal = [ `Size | `Depth | `Activity ]

val goal_name : goal -> string

(** {1 Atoms: the fixed-script decomposition} *)

type atom =
  | Rewrite of [ `Depth | `Size ]  (** pattern rewriting, by mode *)
  | Eliminate
  | Reshape_assoc
  | Relevance
  | Substitution of bool  (** [on_critical] *)
  | Refactor  (** Boolean resynthesis; consults the rewrite cache *)
  | Push_up_sat of int  (** depth push-up saturated, max iterations *)

val run_atom : ?cache:Mig.Rwcache.t -> atom -> G.t -> G.t

val cycle_atoms : goal -> (string * atom) list
(** One cycle of the goal's paper script, in order, with the legacy
    pass base-names (["rewrite"], ["eliminate'"], …). *)

val recovery_atoms : goal -> (string * atom) list
(** The script's size-recovery tail (non-empty only for [`Depth]),
    with the legacy ["recover:*"] names. *)

val script_of_goal :
  ?effort:int -> ?cache:Mig.Rwcache.t -> goal -> (string * (G.t -> G.t)) list
(** [effort] (default 2) cycles of {!cycle_atoms} — pass names
    suffixed ["#1"], ["#2"], … — followed by {!recovery_atoms}.
    Exactly the pipeline [Engine.of_goal] has always built. *)

val cost_of_goal : goal -> G.t -> float * float
(** The goal's lexicographic score: primary then tie-break metric
    ([`Size]: size then depth; [`Depth]: depth then size;
    [`Activity]: switching activity then size). *)

(** {1 Macro moves: the search vocabulary} *)

type kind =
  | Cycle of goal  (** one full cycle (+ recovery tail) of the goal *)
  | Resyn of int  (** MIG → AIG, [Aig.Resyn.run ~effort], → MIG *)
  | Bds of { node_limit : int; seed : int }
      (** MIG → network → {!Bdd.Decompose.run} → MIG; raises
          [Failure] when decomposition exceeds [node_limit] (the
          engine degrades that to a rolled-back pass) *)

type t = { name : string; kind : kind }

val opt_cycle : goal -> t
(** Named ["cycle:size"] etc. *)

val resyn : int -> t
(** Named ["resyn#<effort>"]. *)

val bds : ?node_limit:int -> seed:int -> unit -> t
(** Named ["bds"]; [node_limit] defaults to 200_000 — deliberately
    modest, a search probes BDS rather than committing to it. *)

val apply : ?cache:Mig.Rwcache.t -> t -> G.t -> G.t
(** Run the move.  May raise (budget exhaustion, injected faults, BDS
    blowup); callers run it under {!Engine.run}, which checkpoints
    and degrades. *)

val cost_key : t -> string
(** The {!Lsutil.Costmodel} key, ["move:<name>"]. *)

val vocabulary : ?seed:int -> goal -> t list
(** The search vocabulary for a goal: the goal's own cycle first
    (greedy search tries it before anything else), then the remaining
    goal cycles, then the AIG-resyn and BDS round-trips.  [seed]
    (default 1) parameterizes the BDS variable-order search, so a
    fixed seed gives a fixed vocabulary and a deterministic search. *)
