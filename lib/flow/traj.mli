(** QoR trajectory dataset: schema-stable records of orchestrated
    search runs ([mighty-traj/1], à la OpenABC-D).

    Every {!Orchestrate} run yields one {!record}: the circuit, the
    winning move sequence with per-move QoR deltas (size, depth,
    wall-clock, rewrite-cache hits), the search shape (beam, seed,
    budget), the final QoR and the budget verdict.  Records are
    appended to a file as NDJSON — one JSON object per line, each
    carrying its own ["schema"] field — so concurrent or repeated runs
    accumulate a dataset a learned policy can later train on.
    [bench/json_lint.exe] validates trajectory files the same way it
    validates [mighty-bench/1] documents. *)

type step = {
  move : string;  (** macro-move name, e.g. ["cycle:size"] *)
  outcome : string;  (** engine outcome: completed/timed_out/failed/skipped *)
  accepted : bool;  (** the move is on the winning sequence *)
  size : int;  (** QoR after the move settled (rolled back = unchanged) *)
  depth : int;
  time_s : float;
  cache_hits : int;  (** rewrite-cache hits during this move; 0 uncached *)
  cache_misses : int;
}

type record = {
  circuit : string;
  goal : string;  (** the search's scoring goal: size/depth/activity *)
  seed : int;
  beam : int;
  budget_s : float option;
  size_in : int;
  depth_in : int;
  size_out : int;
  depth_out : int;
  steps : step list;  (** every evaluated move, search order; the
                          winning sequence is the [accepted] subset *)
  explored : int;  (** candidates evaluated (= [List.length steps]) *)
  verdict : string;  (** see {!verdicts} *)
  time_s : float;  (** whole-search wall clock *)
}

val schema : string
(** ["mighty-traj/1"]. *)

val verdicts : string list
(** [["completed"; "budget_exhausted"; "interrupted"]] — how the
    search ended: ran its rounds to quiescence, was cut off by the
    deadline/node cap, or was asynchronously interrupted. *)

val to_json : record -> Lsutil.Json.t
(** One self-describing object (["schema"] field included). *)

val validate : Lsutil.Json.t -> (unit, string) result
(** Structural check of one record object — the exact rules
    [bench/json_lint.exe] applies per NDJSON line. *)

val append_file : string -> record -> (unit, string) result
(** Append one record as a single NDJSON line, creating the file if
    needed.  Errors are returned, not raised (trajectory emission
    must never take an optimization run down). *)
