(* Region-parallel rewriting inside ONE graph: the intra-graph
   counterpart of [Flow.Batch].

   The pipeline is
     partition -> extract -> optimize per region -> commit in order
   and only the optimize step runs on worker domains.  Determinism
   rests on every stage being a pure function of the input graph and
   the spec:

   - [Mig.Partition.split] is deterministic (ascending-id chunking);
   - extraction maps a region to a standalone sub-MIG through an
     injective, complement-preserving renumbering, which can neither
     fold (Ω.M needs equal-or-complement operands, preserved exactly)
     nor strash-merge (distinct normalized triples stay distinct) — so
     the sub-MIG is an isomorphic copy, independent of scheduling;
   - each region is optimized under its OWN fresh ctx (seeded from the
     spec, no wall-clock budget), so its result depends only on the
     extracted sub-MIG;
   - results are committed into the output graph sequentially in
     region index order — the same input-order discipline
     [Flow.Batch] and [Lsutil.Memo.merge] use.

   The job count therefore only changes which domain computes each
   region, never what is computed: [run ~jobs:n] is bit-identical to
   [run ~jobs:1] for any [n].

   Sanitizer protocol (armed under MIG_SAN=1): the parent graph is
   {!Lsutil.San.publish}ed for the read-only parallel phase and
   transferred back for the commit; each worker publishes its region
   result before joining, so the coordinator's commit-time reads are
   clean.  Worker-domain traffic on an unpublished structure is a
   structured SAN finding, not a silent race. *)

module T = Lsutil.Telemetry
module Ctx = Lsutil.Ctx
module San = Lsutil.San
module G = Mig.Graph
module S = Network.Signal
module P = Mig.Partition

type spec = {
  goal : [ `Size | `Depth ];
  effort : int;
  target : int; (* region node-count target *)
  verify : bool option; (* per-region guard; None = ctx check policy *)
  seed : int;
}

let default_spec =
  { goal = `Size; effort = 2; target = 65536; verify = None; seed = 1 }

type region_outcome = {
  index : int;
  nodes_in : int; (* majs extracted *)
  nodes_out : int; (* majs after optimization *)
  verified : bool;
  fell_back : bool; (* optimization rejected; committed as-is *)
  time_s : float;
  telemetry : T.node option;
  san_findings : int;
}

type outcome = {
  jobs : int;
  live_majs : int;
  region_target : int;
  regions : region_outcome list;
  size_in : int;
  depth_in : int;
  size_out : int;
  depth_out : int;
  equivalent : bool; (* final whole-graph miter; true when skipped *)
}

(* ------------------------------------------------------------------ *)
(* Extraction: region -> standalone sub-MIG                            *)
(* ------------------------------------------------------------------ *)

(* Region inputs become PIs (in ascending parent-id order, so the k-th
   PI of the sub is the k-th non-constant entry of [r.inputs]); the
   constant maps to the constant.  By induction every mapped node
   keeps its regular polarity: const and PIs map to regular signals,
   and a majority whose fanins map to regular signals carries the same
   complement count as its (normalized, hence <= 1 complement) parent
   triple — so Ω.I never fires and [G.maj] returns a regular signal.
   Extraction is an isomorphism: exactly [|r.nodes|] majs, all strash
   misses. *)
let extract ~shards rctx g (r : P.region) =
  let sub = G.create ~ctx:rctx ~shards () in
  G.reserve sub (Array.length r.nodes);
  let map =
    Hashtbl.create (2 * (Array.length r.nodes + Array.length r.inputs))
  in
  Hashtbl.replace map 0 (G.const0 sub : S.t :> int);
  Array.iter
    (fun id ->
      if id <> 0 then
        Hashtbl.replace map id
          (G.add_pi sub (Printf.sprintf "i%d" id) : S.t :> int))
    r.inputs;
  let mapped s =
    S.xor_complement
      (S.unsafe_of_int (Hashtbl.find map (S.node s)))
      (S.is_complement s)
  in
  Array.iter
    (fun id ->
      let fs = G.fanins g id in
      let s' = G.maj sub (mapped fs.(0)) (mapped fs.(1)) (mapped fs.(2)) in
      Hashtbl.replace map id (s' : S.t :> int))
    r.nodes;
  Array.iter
    (fun id ->
      G.add_po sub (Printf.sprintf "o%d" id)
        (S.unsafe_of_int (Hashtbl.find map id)))
    r.outputs;
  sub

(* ------------------------------------------------------------------ *)
(* Per-region optimization (worker side)                               *)
(* ------------------------------------------------------------------ *)

let optimize_region ~spec ~shards ~stats_on ~check_on ~san_on g index region =
  let rctx =
    Ctx.create ~stats:stats_on ~check:check_on ~seed:spec.seed ~san:san_on ()
  in
  let work () =
    let sub = extract ~shards rctx g region in
    let optimized, fell_back =
      match
        match spec.goal with
        | `Size ->
            Mig.Opt_size.run ?check:spec.verify ~effort:spec.effort sub
        | `Depth ->
            Mig.Opt_depth.run ?check:spec.verify ~effort:spec.effort sub
      with
      | o -> (o, false)
      | exception ((Out_of_memory | Sys.Break) as e) -> raise e
      | exception _ -> (sub, true)
    in
    (* independent whole-region miter (the in-pass guards above only
       run when [verify] resolves true); a failing region is committed
       unoptimized rather than wrong *)
    let do_verify =
      match spec.verify with Some b -> b | None -> Ctx.check rctx
    in
    let verified =
      (not do_verify) || Mig.Equiv.migs ~seed:spec.seed sub optimized
    in
    let result = if verified then optimized else sub in
    (result, fell_back || not verified, verified)
  in
  let ((result, fell_back, verified), telemetry), time_s =
    T.time (fun () ->
        T.capture (Ctx.stats rctx) (Printf.sprintf "par:region%d" index) work)
  in
  (* hand the result to the coordinator; everything else created under
     this region ctx stays domain-private and dies with it *)
  San.publish (G.san_tag result);
  San.drain (Ctx.san rctx);
  let oc =
    {
      index;
      nodes_in = Array.length region.P.nodes;
      nodes_out = G.size result;
      verified;
      fell_back;
      time_s;
      telemetry;
      san_findings = List.length (San.findings (Ctx.san rctx));
    }
  in
  (result, oc)

(* ------------------------------------------------------------------ *)
(* Worker pool                                                         *)
(* ------------------------------------------------------------------ *)

(* Same shape as [Batch.pmap]: a shared atomic next-region index and
   one result slot per region, so [Domain.join] publishes every slot
   and the merged order is the input order by construction.  [jobs] is
   taken literally (clamped only to the region count) so the
   differential tests can force genuine multi-domain execution on any
   host; callers apply the hardware cap. *)
let pool_map ~jobs f arr =
  let n = Array.length arr in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then Array.mapi f arr
  else begin
    let next = Atomic.make 0 in
    let out = Array.make n None in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          out.(i) <- Some (f i arr.(i));
          loop ()
        end
      in
      loop ()
    in
    let spawned = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    Array.map (function Some v -> v | None -> assert false) out
  end

(* ------------------------------------------------------------------ *)
(* Commit (coordinator side, region order)                             *)
(* ------------------------------------------------------------------ *)

(* Rebuild one region result into [out].  [gmap] maps parent node ids
   to committed packed signals; region inputs are resolved through it
   and region outputs update it for later regions and the POs.  Going
   through [G.maj] lets the output strash deduplicate across region
   boundaries — the same cross-region sharing a sequential whole-graph
   rebuild would find. *)
let commit_region out gmap (r : P.region) res =
  let rmap = Array.make (max (G.num_nodes res) 1) (-1) in
  rmap.(0) <- (G.const0 out : S.t :> int);
  let ext = Array.of_list (List.filter (fun id -> id <> 0) (Array.to_list r.inputs)) in
  List.iteri (fun k pid -> rmap.(pid) <- gmap.(ext.(k))) (G.pis res);
  let mapped s =
    S.xor_complement
      (S.unsafe_of_int rmap.(S.node s))
      (S.is_complement s)
  in
  G.iter_majs res (fun id fs ->
      rmap.(id) <- (G.maj out (mapped fs.(0)) (mapped fs.(1)) (mapped fs.(2)) : S.t :> int));
  List.iteri
    (fun k (_, s) -> gmap.(r.outputs.(k)) <- (mapped s : S.t :> int))
    (G.pos res)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let run ?(jobs = 1) ?(spec = default_spec) g =
  let pctx = G.ctx g in
  let tel = Ctx.stats pctx in
  let stats_on = T.enabled tel in
  let check_on = Ctx.check pctx in
  let san_on = San.enabled (Ctx.san pctx) in
  let shards = G.strash_shards g in
  (* the pattern table is the library's only top-level [lazy]; force
     it before spawning so no two domains race its first Lazy.force *)
  Mig.Transform.prewarm ();
  T.span tel "par" @@ fun () ->
  let size_in = G.size g and depth_in = G.depth g in
  let part = T.span tel "par:partition" (fun () -> P.split ~target:spec.target g) in
  T.count tel ~n:(P.num_regions part) "par.regions";
  T.count tel ~n:(Array.length part.P.frontier) "par.frontier";
  (* read-only parallel phase: workers walk the parent's fanin arrays *)
  San.publish (G.san_tag g);
  let results =
    T.span tel "par:regions" (fun () ->
        pool_map ~jobs
          (optimize_region ~spec ~shards ~stats_on ~check_on ~san_on g)
          part.P.regions)
  in
  San.transfer (G.san_tag g);
  let out =
    T.span tel "par:commit" @@ fun () ->
    let out = G.create ~ctx:pctx ~shards () in
    G.reserve out (G.num_nodes g);
    Ctx.with_scratch pctx (G.num_nodes g) @@ fun gmap ->
    gmap.(0) <- (G.const0 out : S.t :> int);
    List.iter
      (fun id -> gmap.(id) <- (G.add_pi out (G.pi_name g id) : S.t :> int))
      (G.pis g);
    Array.iteri
      (fun i (res, _) -> commit_region out gmap part.P.regions.(i) res)
      results;
    G.iter_pos g (fun name s ->
        G.add_po out name
          (S.xor_complement
             (S.unsafe_of_int gmap.(S.node s))
             (S.is_complement s)));
    (* region outputs a later region stopped depending on leave dead
       cones behind; compact drops them and renumbers densely *)
    G.compact out
  in
  G.note_strash_stats out;
  let equivalent =
    if check_on then
      T.span tel "par:verify" (fun () -> Mig.Equiv.migs ~seed:spec.seed g out)
    else true
  in
  let out = if equivalent then out else G.cleanup g in
  ( out,
    {
      jobs;
      live_majs = part.P.live_majs;
      region_target = spec.target;
      regions = Array.to_list (Array.map snd results);
      size_in;
      depth_in;
      size_out = G.size out;
      depth_out = G.depth out;
      equivalent;
    } )

(* ------------------------------------------------------------------ *)
(* Engine integration                                                  *)
(* ------------------------------------------------------------------ *)

let pass_name spec =
  Printf.sprintf "par-%s"
    (match spec.goal with `Size -> "size" | `Depth -> "depth")

(* One engine pass wrapping a full region-parallel run, so
   [Engine.run] supplies checkpointing, rollback and the final
   unconditional re-verification around it — [mighty opt --par-jobs]
   routes through this. *)
let passes ?(jobs = 1) ?(spec = default_spec) () =
  [ Engine.pass (pass_name spec) (fun g -> fst (run ~jobs ~spec g)) ]

(* ----- reporting ----- *)

module J = Lsutil.Json

let region_to_json r =
  J.Obj
    ([
       ("index", J.Int r.index);
       ("nodes_in", J.Int r.nodes_in);
       ("nodes_out", J.Int r.nodes_out);
       ("verified", J.Bool r.verified);
       ("fell_back", J.Bool r.fell_back);
       ("time_s", J.Float r.time_s);
       ("san_findings", J.Int r.san_findings);
     ]
    @
    match r.telemetry with
    | Some node -> [ ("telemetry", T.to_json node) ]
    | None -> [])

let outcome_to_json o =
  J.Obj
    [
      ("jobs", J.Int o.jobs);
      ("live_majs", J.Int o.live_majs);
      ("region_target", J.Int o.region_target);
      ("size_in", J.Int o.size_in);
      ("depth_in", J.Int o.depth_in);
      ("size_out", J.Int o.size_out);
      ("depth_out", J.Int o.depth_out);
      ("equivalent", J.Bool o.equivalent);
      ("regions", J.List (List.map region_to_json o.regions));
    ]
