module T = Lsutil.Telemetry
module Ctx = Lsutil.Ctx
module Engine = Engine
module Move = Move
module Orchestrate = Orchestrate
module Traj = Traj
module Batch = Batch
module Par = Par
module Cutoff = Cutoff
module Cache = Cache

type opt_result = {
  size : int;
  depth : int;
  activity : float;
  time : float;
  guard_time : float;
}

type syn_result = { area : float; delay : float; power : float; time : float }

let timed = T.time

(* All flows receive the same flattened AND/OR/INV input, as in the
   paper's methodology (§V.A.1). *)
let flatten ctx net =
  T.span (Ctx.stats ctx) "flow:flatten" (fun () ->
      Network.Graph.flatten_aoig net)

(* Run [pass] with the transform guard around — not inside — the
   timed region: the reported [time] is the transform alone, and the
   lint + simulation-miter overhead of a checking context lands in
   [guard_time] (and in the [guard:*] telemetry spans) instead of
   corrupting the Table-I runtime column. *)
let guarded_timed ~enabled ~verify_pre ~verify_post pass g =
  if not enabled then begin
    let out, t = timed (fun () -> pass g) in
    (out, t, 0.0)
  end
  else begin
    let (), t_pre = timed (fun () -> verify_pre g) in
    let out, t = timed (fun () -> pass g) in
    let (), t_post = timed (fun () -> verify_post g out) in
    (out, t, t_pre +. t_post)
  end

let mig_opt ?check ?(effort = 3) ?cache ctx net =
  T.span (Ctx.stats ctx) "flow:mig_opt" (fun () ->
      let net = flatten ctx net in
      let m =
        T.span (Ctx.stats ctx) "flow:of_network" (fun () ->
            Mig.Convert.of_network ~ctx net)
      in
      let opt, time, guard_time =
        guarded_timed
          ~enabled:(Check.Env.resolve ~default:(Ctx.check ctx) check)
          ~verify_pre:(Mig.Check.verify_pre ~name:"opt_depth")
          ~verify_post:(Mig.Check.verify_post ~name:"opt_depth")
          (Mig.Opt_depth.run ~check:false ~effort ?cache)
          m
      in
      ( opt,
        {
          size = Mig.Graph.size opt;
          depth = Mig.Graph.depth opt;
          activity = Mig.Activity.total opt;
          time;
          guard_time;
        } ))

let aig_opt ?check ?(effort = 2) ctx net =
  T.span (Ctx.stats ctx) "flow:aig_opt" (fun () ->
      let net = flatten ctx net in
      let a =
        T.span (Ctx.stats ctx) "flow:of_network" (fun () ->
            Aig.Convert.of_network ~ctx net)
      in
      let opt, time, guard_time =
        guarded_timed
          ~enabled:(Check.Env.resolve ~default:(Ctx.check ctx) check)
          ~verify_pre:(Aig.Check.verify_pre ~name:"resyn")
          ~verify_post:(Aig.Check.verify_post ~name:"resyn")
          (Aig.Resyn.run ~check:false ~effort)
          a
      in
      let as_net = Aig.Convert.to_network opt in
      ( opt,
        {
          size = Aig.Graph.size opt;
          depth = Aig.Graph.depth opt;
          activity = Network.Metrics.activity as_net;
          time;
          guard_time;
        } ))

let bds_opt ?(node_limit = 1_500_000) ~seed ctx net =
  let tel = Ctx.stats ctx in
  T.span tel "flow:bds_opt" (fun () ->
      let net = flatten ctx net in
      let result, time =
        timed (fun () ->
            (* [Decompose.run] already degrades blowups and budget
               exhaustion to [None]; injected faults out of the BDD
               builder get the same treatment here, so this flow never
               raises on its own behalf *)
            match Bdd.Decompose.run ~ctx ~node_limit ~seed net with
            | r -> r
            | exception Lsutil.Fault.Injected site ->
                T.count tel "bdd.blowup";
                T.record tel "outcome" (T.String "failed");
                T.record tel "fault" (T.String site);
                None
            | exception Lsutil.Budget.Exhausted reason ->
                T.count tel "bdd.blowup";
                T.record tel "outcome" (T.String "timed_out");
                T.record tel "budget"
                  (T.String (Lsutil.Budget.reason_name reason));
                None)
      in
      let result =
        match result with
        | Some d when Lsutil.Fault.enabled (Ctx.fault ctx) ->
            (* a [Corrupt] fault in the BDD builder yields a valid but
               functionally wrong BDD; only a miter can tell, so
               self-verify whenever a fault plan is armed *)
            let ok =
              Lsutil.Budget.suspended (Ctx.budget ctx) (fun () ->
                  Lsutil.Fault.suspended (Ctx.fault ctx) (fun () ->
                      Network.Simulate.equivalent ~seed net d))
            in
            if ok then Some d
            else begin
              T.count tel "bdd.corrupt";
              T.record tel "outcome" (T.String "failed");
              None
            end
        | r -> r
      in
      Option.map
        (fun d ->
          ( d,
            {
              size = Network.Graph.size d;
              depth = Network.Metrics.depth d;
              activity = Network.Metrics.activity d;
              time;
              guard_time = 0.0;
            } ))
        result)

(* Synthesis runtimes are optimization + mapping; guard overhead is
   excluded the same way as in the optimization flows. *)

let map_timed ?lib ctx net =
  T.span (Ctx.stats ctx) "flow:map" (fun () ->
      timed (fun () -> Tech.Mapper.map_network ~ctx ?lib net))

let mig_synth ?check ?effort ctx net =
  T.span (Ctx.stats ctx) "flow:mig_synth" (fun () ->
      let opt, r = mig_opt ?check ?effort ctx net in
      let mapped, t_map = map_timed ctx (Mig.Convert.to_network opt) in
      {
        area = mapped.Tech.Mapper.area;
        delay = mapped.Tech.Mapper.delay;
        power = mapped.Tech.Mapper.power;
        time = r.time +. t_map;
      })

let aig_synth ?check ?effort ctx net =
  T.span (Ctx.stats ctx) "flow:aig_synth" (fun () ->
      let opt, r = aig_opt ?check ?effort ctx net in
      let mapped, t_map = map_timed ctx (Aig.Convert.to_network opt) in
      {
        area = mapped.Tech.Mapper.area;
        delay = mapped.Tech.Mapper.delay;
        power = mapped.Tech.Mapper.power;
        time = r.time +. t_map;
      })

let cst_synth ?check ?(effort = 2) ctx net =
  T.span (Ctx.stats ctx) "flow:cst_synth" (fun () ->
      let a = Aig.Convert.of_network ~ctx (flatten ctx net) in
      let opt, t_opt, _guard =
        guarded_timed
          ~enabled:(Check.Env.resolve ~default:(Ctx.check ctx) check)
          ~verify_pre:(Aig.Check.verify_pre ~name:"resyn:size_only")
          ~verify_post:(Aig.Check.verify_post ~name:"resyn:size_only")
          (fun a -> Aig.Balance.run (Aig.Resyn.size_only ~check:false ~effort a))
          a
      in
      let mapped, t_map =
        map_timed ~lib:Tech.Cells.no_majority ctx (Aig.Convert.to_network opt)
      in
      {
        area = mapped.Tech.Mapper.area;
        delay = mapped.Tech.Mapper.delay;
        power = mapped.Tech.Mapper.power;
        time = t_opt +. t_map;
      })
