type opt_result = { size : int; depth : int; activity : float; time : float }
type syn_result = { area : float; delay : float; power : float; time : float }

let timed f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

(* All flows receive the same flattened AND/OR/INV input, as in the
   paper's methodology (§V.A.1). *)
let flatten = Network.Graph.flatten_aoig

let mig_opt ?check ?(effort = 3) net =
  let net = flatten net in
  let m = Mig.Convert.of_network net in
  let opt, time = timed (fun () -> Mig.Opt_depth.run ?check ~effort m) in
  ( opt,
    {
      size = Mig.Graph.size opt;
      depth = Mig.Graph.depth opt;
      activity = Mig.Activity.total opt;
      time;
    } )

let aig_opt ?check ?(effort = 2) net =
  let net = flatten net in
  let a = Aig.Convert.of_network net in
  let opt, time = timed (fun () -> Aig.Resyn.run ?check ~effort a) in
  let as_net = Aig.Convert.to_network opt in
  ( opt,
    {
      size = Aig.Graph.size opt;
      depth = Aig.Graph.depth opt;
      activity = Network.Metrics.activity as_net;
      time;
    } )

let bds_opt ?(node_limit = 1_500_000) ~seed net =
  let net = flatten net in
  let result, time = timed (fun () -> Bdd.Decompose.run ~node_limit ~seed net) in
  Option.map
    (fun d ->
      ( d,
        {
          size = Network.Graph.size d;
          depth = Network.Metrics.depth d;
          activity = Network.Metrics.activity d;
          time;
        } ))
    result

let mig_synth ?check ?effort net =
  let (opt, _), time =
    timed (fun () ->
        let opt, r = mig_opt ?check ?effort net in
        (opt, r))
  in
  let mapped = Tech.Mapper.map_network (Mig.Convert.to_network opt) in
  {
    area = mapped.Tech.Mapper.area;
    delay = mapped.Tech.Mapper.delay;
    power = mapped.Tech.Mapper.power;
    time;
  }

let aig_synth ?check ?effort net =
  let (opt, _), time =
    timed (fun () ->
        let opt, r = aig_opt ?check ?effort net in
        (opt, r))
  in
  let mapped = Tech.Mapper.map_network (Aig.Convert.to_network opt) in
  {
    area = mapped.Tech.Mapper.area;
    delay = mapped.Tech.Mapper.delay;
    power = mapped.Tech.Mapper.power;
    time;
  }

let cst_synth ?check ?(effort = 2) net =
  let mapped, time =
    timed (fun () ->
        let a = Aig.Convert.of_network (flatten net) in
        let a = Aig.Resyn.size_only ?check ~effort a in
        let a = Aig.Balance.run a in
        Tech.Mapper.map_network ~lib:Tech.Cells.no_majority
          (Aig.Convert.to_network a))
  in
  {
    area = mapped.Tech.Mapper.area;
    delay = mapped.Tech.Mapper.delay;
    power = mapped.Tech.Mapper.power;
    time;
  }
