(** The persistent optimization cache, as one load/absorb/save bundle.

    Wraps the two sections of the versioned [mighty-cache/1] store —
    the NPN-keyed rewrite entries of {!Mig.Rwcache} and the PO-cone
    fingerprint store of {!Cutoff} — around the [Lsutil.Memo] on-disk
    envelope.  The path usually comes from [MIG_CACHE]
    ([Lsutil.Env.t.cache]) or a [--cache] CLI flag.

    The snapshots inside are immutable; [absorb_*] replaces them with
    freshly merged ones and must only be called from the coordinating
    domain between parallel regions. *)

type t

val in_memory : unit -> t
(** An empty cache with no backing file; {!save} is a no-op. *)

val empty_at : string -> t
(** An empty (cold) cache bound to [path]; {!save} writes there.
    Useful to recover from an unreadable store file. *)

val load : string -> (t, string) result
(** Load a store file.  A missing file or a stale schema stamp loads
    as an empty (cold) cache bound to [path]; unreadable JSON is an
    [Error]. *)

val save : t -> (unit, string) result
(** Write both sections back atomically (no-op without a path). *)

val rw : t -> Mig.Rwcache.base
val cones : t -> Cutoff.store
val path : t -> string option

val absorb_rw : t -> (string * Sop.Factor.form) list list -> unit
(** Merge rewrite-cache deltas, in list order (first writer wins). *)

val absorb_cones : t -> (string * Lsutil.Json.t) list list -> unit
(** Merge cone-store deltas, in list order (first writer wins). *)

val sizes : t -> int * int
(** [(rewrite entries, cone entries)]. *)
