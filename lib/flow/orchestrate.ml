module G = Mig.Graph
module T = Lsutil.Telemetry

type spec = {
  goal : Move.goal;
  beam : int;
  rounds : int;
  seed : int;
  timeout_s : float option;
  max_nodes : int option;
}

let default_spec =
  { goal = `Size; beam = 2; rounds = 4; seed = 1; timeout_s = None;
    max_nodes = None }

(* A live search candidate: its graph, its score under the goal
   metric, and the trajectory-step indices that produced it (newest
   first). *)
type cand = { g : G.t; score : float * float; path : int list }

(* The search metric: size·depth product first (what orchestration is
   graded on, and what "better than the fixed script" means), the
   goal's own primary metric as the tie-break — activity search
   additionally folds switching activity into the product. *)
let score_of_goal : Move.goal -> G.t -> float * float = function
  | `Size ->
      fun g ->
        let s = float_of_int (G.size g) and d = float_of_int (G.depth g) in
        (s *. d, s)
  | `Depth ->
      fun g ->
        let s = float_of_int (G.size g) and d = float_of_int (G.depth g) in
        (s *. d, d)
  | `Activity ->
      fun g ->
        let s = float_of_int (G.size g) and d = float_of_int (G.depth g) in
        let a = Mig.Activity.total g in
        (s *. d *. a, a)

let take n l =
  let rec go n = function
    | x :: tl when n > 0 -> x :: go (n - 1) tl
    | _ -> []
  in
  go n l

let run ?verify ?cache ?traj ~circuit ~spec g =
  let spec = { spec with beam = max 1 spec.beam; rounds = max 1 spec.rounds } in
  let ctx = G.ctx g in
  let tel = Lsutil.Ctx.stats ctx in
  let bud = Lsutil.Ctx.budget ctx in
  let flt = Lsutil.Ctx.fault ctx in
  let cost = score_of_goal spec.goal in
  let cm = Lsutil.Costmodel.create () in
  let vocab = Move.vocabulary ~seed:spec.seed spec.goal in
  (* every evaluated expansion becomes one trajectory step; the
     winning path's [accepted] flags are patched in at the end *)
  let steps = ref [] in
  let nsteps = ref 0 in
  let record_step s =
    let i = !nsteps in
    incr nsteps;
    steps := (i, s) :: !steps;
    i
  in
  let rejected = ref 0 in
  let exhausted = ref false in
  let cache_stats () =
    match cache with
    | None -> (0, 0)
    | Some c -> (Mig.Rwcache.hits c, Mig.Rwcache.misses c)
  in
  let (out, report, size_in, depth_in, step_list, verdict), total_s =
    T.time (fun () ->
        T.span tel "orchestrate" (fun () ->
            (* the zeroth checkpoint: a pass-less engine run cleans and
               verifies the input exactly like a fixed-script run would *)
            let g0, _ = Engine.run ?verify ~cost ~seed:spec.seed ~passes:[] g in
            (* nothing larger than the input is ever checkpointed, so
               even a deep uphill excursion degrades to "no larger" *)
            let size_cap = G.size g0 in
            let init = { g = g0; score = cost g0; path = [] } in
            let seen = Hashtbl.create 64 in
            let key_of c = (G.size c.g, G.depth c.g, c.score) in
            Hashtbl.replace seen (key_of init) ();
            let best = ref init in
            let beam_set = ref [ init ] in
            let eval parent (mv : Move.t) =
              let nodes_in = G.size parent.g in
              let ckey = Move.cost_key mv in
              let skip =
                (* wall-clock gating exists only under a deadline, so a
                   deadline-free search stays a pure function of the
                   input *)
                match
                  ( Lsutil.Budget.remaining_s bud,
                    Lsutil.Costmodel.predict cm ckey ~nodes:nodes_in )
                with
                | Some rem, Some predicted -> predicted > rem
                | _ -> false
              in
              if skip then begin
                ignore
                  (record_step
                     {
                       Traj.move = mv.Move.name; outcome = "skipped";
                       accepted = false; size = nodes_in;
                       depth = G.depth parent.g; time_s = 0.0;
                       cache_hits = 0; cache_misses = 0;
                     });
                None
              end
              else
                T.span tel ckey (fun () ->
                    T.record_int tel "nodes_in" nodes_in;
                    let h0, m0 = cache_stats () in
                    let (g', rep), dt =
                      T.time (fun () ->
                          Engine.run ?verify ~cost ~size_cap ~seed:spec.seed
                            ~passes:
                              [
                                Engine.pass mv.Move.name (fun gg ->
                                    Move.apply ?cache mv gg);
                              ]
                            parent.g)
                    in
                    Lsutil.Costmodel.observe cm ckey ~nodes:nodes_in
                      ~time_s:dt;
                    let h1, m1 = cache_stats () in
                    let outcome, ok =
                      match rep.Engine.passes with
                      | [ p ]
                        when p.Engine.outcome = Engine.Completed
                             && not p.Engine.rolled_back ->
                          ("completed", true)
                      | [ p ] -> (Engine.outcome_name p.Engine.outcome, false)
                      | _ -> ("failed", false)
                    in
                    let i =
                      record_step
                        {
                          Traj.move = mv.Move.name; outcome;
                          accepted = false; size = G.size g';
                          depth = G.depth g'; time_s = dt;
                          cache_hits = h1 - h0; cache_misses = m1 - m0;
                        }
                    in
                    if not (ok && rep.Engine.verified) then begin
                      incr rejected;
                      None
                    end
                    else
                      let c =
                        { g = g'; score = cost g'; path = i :: parent.path }
                      in
                      let k = key_of c in
                      if Hashtbl.mem seen k then None
                      else begin
                        Hashtbl.replace seen k ();
                        Some c
                      end)
            in
            let round () =
              let fresh =
                List.concat_map
                  (fun parent ->
                    List.filter_map
                      (fun mv ->
                        if
                          Lsutil.Budget.interrupted bud
                          || Lsutil.Budget.expired bud
                        then None
                        else eval parent mv)
                      vocab)
                  !beam_set
              in
              let sorted =
                List.stable_sort (fun a b -> compare a.score b.score) fresh
              in
              let next = take spec.beam sorted in
              (match next with
              | c :: _ when c.score < !best.score -> best := c
              | _ -> ());
              beam_set := next;
              next <> []
            in
            let body () =
              let continue_ = ref true in
              let r = ref 0 in
              while !continue_ && !r < spec.rounds do
                incr r;
                continue_ := round ()
              done;
              if Lsutil.Budget.interrupted bud || Lsutil.Budget.expired bud
              then exhausted := true
            in
            (match (spec.timeout_s, spec.max_nodes) with
            | None, None -> body ()
            | _ -> (
                match
                  Lsutil.Budget.with_budget bud ?deadline_s:spec.timeout_s
                    ?max_nodes:spec.max_nodes body
                with
                | () -> ()
                | exception Lsutil.Budget.Exhausted _ -> exhausted := true));
            (* unconditional final re-verification against the original
               input, with the budget suspended and the fault plan
               disarmed — same contract as [Engine.run] *)
            let final_ok cand =
              Lsutil.Budget.suspended bud (fun () ->
                  Lsutil.Fault.suspended flt (fun () ->
                      match
                        Check_report.is_clean
                          (Mig.Check.lint ~subject:"orchestrate" cand)
                        && Mig.Equiv.migs ~seed:spec.seed g cand
                      with
                      | ok -> ok
                      | exception (Out_of_memory as e) -> raise e
                      | exception (Sys.Break as e) -> raise e
                      | exception _ -> false))
            in
            let out = !best.g in
            let verified = final_ok out in
            let out, verified, fell_back =
              if verified then (out, true, false)
              else
                let fb =
                  Lsutil.Budget.suspended bud (fun () ->
                      Lsutil.Fault.suspended flt (fun () -> G.cleanup g))
                in
                (fb, final_ok fb, true)
            in
            if fell_back then incr rejected;
            let accepted = if fell_back then [] else List.rev !best.path in
            let all_steps =
              List.rev_map
                (fun (i, s) ->
                  (i, { s with Traj.accepted = List.mem i accepted }))
                !steps
            in
            let step_list = List.map snd all_steps in
            let pass_reports =
              List.filter_map
                (fun (i, s) ->
                  if List.mem i accepted then
                    Some
                      {
                        Engine.pass = s.Traj.move; outcome = Engine.Completed;
                        time_s = s.Traj.time_s; size = s.Traj.size;
                        depth = s.Traj.depth; rolled_back = false;
                      }
                  else None)
                all_steps
            in
            let verdict =
              if Lsutil.Budget.interrupted bud then "interrupted"
              else if !exhausted then "budget_exhausted"
              else "completed"
            in
            let report =
              {
                Engine.passes = pass_reports;
                rollbacks = !rejected;
                degraded = verdict <> "completed" || fell_back || not verified;
                verified;
              }
            in
            if T.enabled tel then begin
              T.record_int tel "orchestrate.explored" !nsteps;
              T.record_int tel "orchestrate.rejected" !rejected;
              T.record tel "orchestrate.verdict" (T.String verdict)
            end;
            (out, report, G.size g0, G.depth g0, step_list, verdict)))
  in
  let traj_rec =
    {
      Traj.circuit;
      goal = Move.goal_name spec.goal;
      seed = spec.seed;
      beam = spec.beam;
      budget_s = spec.timeout_s;
      size_in;
      depth_in;
      size_out = G.size out;
      depth_out = G.depth out;
      steps = step_list;
      explored = List.length step_list;
      verdict;
      time_s = total_s;
    }
  in
  (match traj with
  | None -> ()
  | Some path -> (
      match Traj.append_file path traj_rec with
      | Ok () -> ()
      | Error e -> T.record tel "traj.error" (T.String e)));
  (out, report, traj_rec)
