(** Multi-domain parallel batch driver.

    Runs an independent {!Engine} pipeline on each input circuit,
    fanning the items over a pool of worker domains (capped at
    [Domain.recommended_domain_count ()]).  Every {e item} gets its
    own fresh execution context from [make_ctx], so nothing is shared
    between concurrently running pipelines — the library holds no
    process-global service state (DESIGN.md §13).

    Determinism: each item's result depends only on its own ctx and
    its own input, and results land in per-item slots merged in input
    order.  A batch run is therefore bit-identical in its structural
    fields (sizes, depths, outcomes, telemetry trees) for any [jobs]
    value, including [1]; only wall-clock fields vary. *)

type spec = {
  goal : [ `Size | `Depth | `Activity ];
  effort : int;
  timeout_s : float option;
  max_nodes : int option;
  verify : bool option;  (** [None]: each item's ctx policy decides *)
  seed : int;
}

val default_spec : spec
(** [`Size], effort 2, no budget, ctx-resolved verification, seed 1. *)

val optimizer_of_spec :
  ?cache:Mig.Rwcache.t -> spec -> Mig.Graph.t -> Mig.Graph.t * Engine.report
(** The spec's optimizer, built once: [Engine.of_goal] passes (the
    move vocabulary, with [cache] handed to every refactoring pass)
    plus the goal's checkpoint ranking, run under the spec's budget,
    seed and verification policy.  The single construction point the
    batch branches and the CLI share. *)

val salt_of_spec : spec -> string
(** The {!Cutoff} fingerprint salt for this recipe.  Everything that
    changes the optimizer's answer (goal, effort, seed, budgets,
    verification policy) is encoded, so stores written under one
    recipe are never replayed under another. *)

type item = { name : string; build : unit -> Network.Graph.t }
(** [build] runs {e inside} the worker domain, so each worker
    constructs its own private copy of the circuit; networks are never
    shared across domains. *)

type cache_use = {
  rw_hits : int;  (** rewrite-cache lookups answered from the store *)
  rw_misses : int;
  reused_pos : int;  (** POs stitched back from the cone store *)
  reopt_pos : int;  (** POs pushed through the engine *)
}

type outcome = {
  name : string;
  size_in : int;
  depth_in : int;
  size_out : int;
  depth_out : int;
  report : Engine.report;
  time_s : float;  (** wall-clock, the only non-deterministic field *)
  telemetry : Lsutil.Telemetry.node option;
      (** the item's captured span tree when its ctx had stats on *)
  cache : cache_use option;  (** [Some] iff the batch ran with a cache *)
}

val run :
  ?jobs:int ->
  ?spec:spec ->
  ?make_ctx:(int -> item -> Lsutil.Ctx.t) ->
  ?cache:Cache.t ->
  ?stop:bool Atomic.t ->
  item list ->
  outcome list
(** [run ~jobs items] processes all items on [jobs] worker domains
    (clamped to the item count and the hardware parallelism; default
    1) and returns outcomes in input order.  [make_ctx i item] builds
    the private context for item [i] — default a quiet
    [Lsutil.Ctx.create ()]; pass e.g.
    [fun _ _ -> Lsutil.Ctx.default ()] to honour the environment.
    The MIG pattern table is prewarmed before any domain spawns.

    With [?cache], every worker reads the cache's immutable snapshots
    (rewrite entries consulted by the refactoring passes, PO-cone
    fingerprints driving {!Cutoff} early cutoff) and records private
    deltas; the coordinator merges them back in input order after all
    domains join, so the absorbed cache — like the outcomes — is
    bit-identical for any [jobs] value.

    With [?stop] (the CLI's SIGTERM/SIGINT flag), workers stop
    claiming new items once the flag reads [true] — in-flight items
    still finish, so the returned list holds only whole, verified
    outcomes (a prefix-like subset in input order).  Only completed
    items' cache deltas are merged. *)

val pmap : jobs:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** The underlying pool: applies [f] to every element on [jobs]
    domains, results in input order.  Exposed for the differential
    tests. *)

val pmap_opt :
  ?stop:bool Atomic.t -> jobs:int -> (int -> 'a -> 'b) -> 'a array -> 'b option array
(** {!pmap} with an early-stop flag: slots of items never claimed
    (because [stop] was set) are [None]. *)

val outcome_to_json : outcome -> Lsutil.Json.t

(** [~interrupted:true] (a stopped batch) adds an ["interrupted"]
    marker to the report envelope. *)
val to_json : ?interrupted:bool -> jobs:int -> outcome list -> Lsutil.Json.t
val pp_outcome : Format.formatter -> outcome -> unit
