(** End-to-end flows reproduced from §V.

    Logic-optimization flows (Table I top) return the optimized
    object's native metrics; synthesis flows (Table I bottom) map the
    optimized logic onto the standard-cell library and return the
    estimated {delay, area, power}. *)

module Engine : module type of Engine
(** The fault-tolerant pass engine ({!Engine.run}): budgets,
    checkpoint/rollback, structured per-pass outcomes. *)

type opt_result = {
  size : int;
  depth : int;
  activity : float;
  time : float;
      (** Transform wall-clock in seconds — the guard (when enabled)
          runs and is timed outside this, so Table-I runtimes are
          comparable whether or not [MIG_CHECK=1] is set. *)
  guard_time : float;
      (** Seconds spent in [verify_pre]/[verify_post] around the
          transform; [0.] when the guard is disabled. *)
}

type syn_result = {
  area : float;
  delay : float;
  power : float;
  time : float;  (** seconds *)
}

(** {1 Logic optimization (Table I top)} *)

val mig_opt :
  ?check:bool -> ?effort:int -> Network.Graph.t -> Mig.Graph.t * opt_result
(** MIGhty: depth optimization interlaced with size and activity
    recovery (the flow of §V.A.1).  On every flow, [check] runs the
    underlying optimization under its transform guard
    ([Mig.Check.guarded] / [Aig.Check.guarded]); it defaults to the
    [MIG_CHECK] environment variable. *)

val aig_opt :
  ?check:bool -> ?effort:int -> Network.Graph.t -> Aig.Graph.t * opt_result
(** ABC stand-in: the resyn2-style script. *)

val bds_opt :
  ?node_limit:int ->
  seed:int ->
  Network.Graph.t ->
  (Network.Graph.t * opt_result) option
(** BDS stand-in: BDD construction with order search, then
    decomposition.  [None] models the "N.A." rows of Table I (BDD
    blow-up). *)

(** {1 Synthesis (Table I bottom)} *)

val mig_synth : ?check:bool -> ?effort:int -> Network.Graph.t -> syn_result
(** MIG optimization + technology mapping on the full library. *)

val aig_synth : ?check:bool -> ?effort:int -> Network.Graph.t -> syn_result
(** AIG optimization + the same mapper and library. *)

val cst_synth : ?check:bool -> ?effort:int -> Network.Graph.t -> syn_result
(** Commercial-synthesis-tool proxy: area-oriented AIG script and a
    library without MAJ-3/MIN-3 cells (see DESIGN.md §2). *)
