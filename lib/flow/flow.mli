(** End-to-end flows reproduced from §V.

    Logic-optimization flows (Table I top) return the optimized
    object's native metrics; synthesis flows (Table I bottom) map the
    optimized logic onto the standard-cell library and return the
    estimated {delay, area, power}.

    Every flow takes an explicit execution context ({!Lsutil.Ctx.t}):
    telemetry, budget, fault plan and check policy all come from it,
    never from process globals, so independent flows may run
    concurrently — one ctx per domain (see {!Batch}). *)

module Engine : module type of Engine
(** The fault-tolerant pass engine ({!Engine.run}): budgets,
    checkpoint/rollback, structured per-pass outcomes. *)

module Move : module type of Move
(** The optimization-move vocabulary: the atoms the fixed scripts are
    spelled in, and the macro moves ({!Move.t}) the orchestrator
    searches over. *)

module Orchestrate : module type of Orchestrate
(** Greedy/beam search over move sequences inside the {!Engine}
    degradation machinery; deterministic for a fixed (seed, beam)
    when no deadline is installed. *)

module Traj : module type of Traj
(** The [mighty-traj/1] QoR trajectory dataset appended by every
    orchestrated search run. *)

module Batch : module type of Batch
(** Multi-domain parallel batch driver: independent {!Engine}
    pipelines over N circuits, one worker domain and one ctx each,
    merged deterministically by input order. *)

module Par : module type of Par
(** Region-parallel rewriting inside one graph: sharded-strash
    sub-MIGs per fanout-closed region ({!Mig.Partition}), one worker
    domain and one ctx per region, committed deterministically in
    region order — bit-identical at any job count. *)

module Cutoff : module type of Cutoff
(** Early cutoff for incremental re-optimization: PO-cone
    fingerprints, stored optimized cones, restricted re-runs. *)

module Cache : module type of Cache
(** The persistent [mighty-cache/1] store bundle (rewrite entries +
    cone fingerprints): load, absorb deltas, save. *)

type opt_result = {
  size : int;
  depth : int;
  activity : float;
  time : float;
      (** Transform wall-clock in seconds — the guard (when enabled)
          runs and is timed outside this, so Table-I runtimes are
          comparable whether or not the ctx checks. *)
  guard_time : float;
      (** Seconds spent in [verify_pre]/[verify_post] around the
          transform; [0.] when the guard is disabled. *)
}

type syn_result = {
  area : float;
  delay : float;
  power : float;
  time : float;  (** seconds *)
}

(** {1 Logic optimization (Table I top)} *)

val mig_opt :
  ?check:bool ->
  ?effort:int ->
  ?cache:Mig.Rwcache.t ->
  Lsutil.Ctx.t ->
  Network.Graph.t ->
  Mig.Graph.t * opt_result
(** MIGhty: depth optimization interlaced with size and activity
    recovery (the flow of §V.A.1).  On every flow, [check] runs the
    underlying optimization under its transform guard
    ([Mig.Check.guarded] / [Aig.Check.guarded]); it defaults to the
    context's check policy ([Lsutil.Ctx.check]).  [cache] is an armed
    rewrite-cache handle for the refactoring steps (see
    {!Mig.Transform.refactor}). *)

val aig_opt :
  ?check:bool ->
  ?effort:int ->
  Lsutil.Ctx.t ->
  Network.Graph.t ->
  Aig.Graph.t * opt_result
(** ABC stand-in: the resyn2-style script. *)

val bds_opt :
  ?node_limit:int ->
  seed:int ->
  Lsutil.Ctx.t ->
  Network.Graph.t ->
  (Network.Graph.t * opt_result) option
(** BDS stand-in: BDD construction with order search, then
    decomposition.  [None] models the "N.A." rows of Table I (BDD
    blow-up). *)

(** {1 Synthesis (Table I bottom)} *)

val mig_synth :
  ?check:bool -> ?effort:int -> Lsutil.Ctx.t -> Network.Graph.t -> syn_result
(** MIG optimization + technology mapping on the full library. *)

val aig_synth :
  ?check:bool -> ?effort:int -> Lsutil.Ctx.t -> Network.Graph.t -> syn_result
(** AIG optimization + the same mapper and library. *)

val cst_synth :
  ?check:bool -> ?effort:int -> Lsutil.Ctx.t -> Network.Graph.t -> syn_result
(** Commercial-synthesis-tool proxy: area-oriented AIG script and a
    library without MAJ-3/MIN-3 cells (see DESIGN.md §2). *)
