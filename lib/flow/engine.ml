module G = Mig.Graph
module T = Lsutil.Telemetry

type outcome =
  | Completed
  | Timed_out of Lsutil.Budget.reason
  | Failed of string
  | Skipped

let outcome_name = function
  | Completed -> "completed"
  | Timed_out _ -> "timed_out"
  | Failed _ -> "failed"
  | Skipped -> "skipped"

let outcome_detail = function
  | Completed | Skipped -> None
  | Timed_out r -> Some (Lsutil.Budget.reason_name r)
  | Failed msg -> Some msg

type pass_report = {
  pass : string;
  outcome : outcome;
  time_s : float;
  size : int;
  depth : int;
  rolled_back : bool;
}

type report = {
  passes : pass_report list;
  rollbacks : int;
  degraded : bool;
  verified : bool;
}

type pass = { name : string; run : G.t -> G.t }

let pass name run = { name; run }

(* Exceptions that must propagate: the engine cannot meaningfully
   degrade past a broken runtime or a user interrupt. *)
let fatal = function
  | Out_of_memory | Sys.Break -> true
  | _ -> false

let describe = function
  | Stack_overflow -> "stack_overflow"
  | Lsutil.Fault.Injected site -> "fault:" ^ site
  | Check_guard.Failed f -> Format.asprintf "%a" Check_guard.pp_failure f
  | e -> Printexc.to_string e

let protect ~tel ~name f =
  match f () with
  | v -> Ok v
  | exception Lsutil.Budget.Exhausted r ->
      T.count tel "engine.timed_out";
      T.record tel ("engine." ^ name) (T.String (Lsutil.Budget.reason_name r));
      Error (Timed_out r)
  | exception e when not (fatal e) ->
      T.count tel "engine.failed";
      let msg = describe e in
      T.record tel ("engine." ^ name) (T.String msg);
      Error (Failed msg)

(* A candidate is only checkpointed if it survives the checker: lint
   always (cheap, catches structural corruption); a simulation miter
   against the ORIGINAL input when [verify] — comparing against the
   input rather than the previous checkpoint keeps errors from
   compounding across passes.  Runs with the budget suspended (it must
   work after the deadline blew) and the fault plan disarmed (the
   verifier itself must not be faulted). *)
let candidate_ok ~bud ~flt ~verify ~seed ~input cand =
  Lsutil.Budget.suspended bud (fun () ->
      Lsutil.Fault.suspended flt (fun () ->
          match
            Check_report.is_clean (Mig.Check.lint ~subject:"engine" cand)
            && ((not verify) || Mig.Equiv.migs ~seed input cand)
          with
          | ok -> ok
          | exception e when not (fatal e) -> false))

let run ?verify ?timeout_s ?max_nodes ?cost ?size_cap ?(seed = 1)
    ?(trace = fun (_ : string) -> ()) ~passes g =
  let ctx = G.ctx g in
  let tel = Lsutil.Ctx.stats ctx in
  let bud = Lsutil.Ctx.budget ctx in
  let flt = Lsutil.Ctx.fault ctx in
  let protect ~name f = protect ~tel ~name f in
  let candidate_ok ~verify ~seed ~input cand =
    candidate_ok ~bud ~flt ~verify ~seed ~input cand
  in
  let verify =
    match verify with
    | Some v -> v
    | None -> Lsutil.Ctx.check ctx || Lsutil.Fault.enabled flt
  in
  let cost =
    match cost with
    | Some c -> c
    | None -> fun g -> (float_of_int (G.size g), float_of_int (G.depth g))
  in
  let size_cap = match size_cap with Some c -> c | None -> max_int in
  T.span tel "engine" (fun () ->
      (* the input itself is the zeroth checkpoint: whatever happens
         downstream, the caller gets back something at least as good.
         The checkpoint must be trustworthy, so when a fault plan is
         armed the initial cleanup is verified — a corrupt checkpoint
         would doom every pass to rollback *)
      let input = g in
      let initial () =
        let pristine () =
          Lsutil.Budget.suspended bud (fun () ->
              Lsutil.Fault.suspended flt (fun () -> G.cleanup g))
        in
        if not (Lsutil.Fault.enabled flt || Lsutil.Budget.active bud) then
          G.cleanup g
        else
          match protect ~name:"init" (fun () -> G.cleanup g) with
          | Ok b
            when (not (Lsutil.Fault.enabled flt))
                 || candidate_ok ~verify:true ~seed ~input b ->
              b
          | _ -> pristine ()
      in
      let best = ref (initial ()) in
      let best_cost = ref (cost !best) in
      let cur = ref !best in
      let reports = ref [] in
      let rollbacks = ref 0 in
      let finished = ref 0 in
      let record name outcome time_s rolled_back =
        (match outcome_detail outcome with
        | Some d when outcome <> Completed ->
            T.record tel ("outcome:" ^ name) (T.String d)
        | _ -> ());
        reports :=
          { pass = name; outcome; time_s; size = G.size !cur;
            depth = G.depth !cur; rolled_back }
          :: !reports
      in
      let step p =
        if Lsutil.Budget.expired bud then record p.name Skipped 0.0 false
        else begin
          (* the trace hook is observation only: a failure inside it
             must not take the engine down with it *)
          (match protect ~name:"trace" (fun () -> trace p.name) with
          | Ok () | Error _ -> ());
          let res, dt =
            T.time (fun () -> protect ~name:p.name (fun () -> p.run !cur))
          in
          match res with
          | Ok cand
            when G.size cand <= size_cap
                 && candidate_ok ~verify ~seed ~input cand ->
              incr finished;
              cur := cand;
              let c = cost cand in
              if c < !best_cost then begin
                best := cand;
                best_cost := c
              end;
              record p.name Completed dt false
          | Ok _ ->
              (* the pass returned, but its result is oversized or
                 fails verification: discard it and restart the
                 pipeline from the last good checkpoint *)
              incr rollbacks;
              cur := !best;
              record p.name (Failed "verification") dt true
          | Error outcome ->
              incr rollbacks;
              cur := !best;
              record p.name outcome dt true
        end
      in
      let body () = List.iter step passes in
      (match timeout_s, max_nodes with
      | None, None -> body ()
      | _ ->
          (* the engine's own Exhausted (raised between passes by a
             poll inside [cost] etc.) still lands here *)
          match
            Lsutil.Budget.with_budget bud ?deadline_s:timeout_s ?max_nodes body
          with
          | () -> ()
          | exception Lsutil.Budget.Exhausted _ -> ());
      let out = !best in
      (* the returned graph is re-verified unconditionally so [report.
         verified] is meaningful even on all-Completed runs *)
      let verified = candidate_ok ~verify:true ~seed ~input out in
      let out, verified =
        if verified then (out, true)
        else begin
          (* last resort: the input, cleaned, with the budget and
             faults out of the picture *)
          incr rollbacks;
          let fallback =
            Lsutil.Budget.suspended bud (fun () ->
                Lsutil.Fault.suspended flt (fun () -> G.cleanup input))
          in
          (fallback, candidate_ok ~verify:true ~seed ~input fallback)
        end
      in
      let passes = List.rev !reports in
      let degraded =
        List.exists (fun r -> r.outcome <> Completed) passes
        || not verified
      in
      if T.enabled tel then begin
        T.record_int tel "engine.rollbacks" !rollbacks;
        T.record_int tel "engine.completed" !finished;
        T.record tel "engine.degraded" (T.Bool degraded)
      end;
      (out, { passes; rollbacks = !rollbacks; degraded; verified }))

(* Goal-directed pipelines: the paper's scripts spelled in the
   [Move] vocabulary — one engine pass per atom, so each transform is
   individually isolated and checkpointed.  [Move.script_of_goal]
   reproduces the historical pass names and order exactly, so these
   pipelines are bit-identical to the hard-coded ones they replace. *)

let of_goal ?effort ?cache goal =
  List.map (fun (name, f) -> pass name f)
    (Move.script_of_goal ?effort ?cache goal)

let cost_of_goal = Move.cost_of_goal

(* ----- reporting ----- *)

module J = Lsutil.Json

let pass_to_json r =
  J.Obj
    ([
       ("pass", J.String r.pass);
       ("outcome", J.String (outcome_name r.outcome));
     ]
    @ (match outcome_detail r.outcome with
      | Some d -> [ ("detail", J.String d) ]
      | None -> [])
    @ [
        ("time_s", J.Float r.time_s);
        ("size", J.Int r.size);
        ("depth", J.Int r.depth);
        ("rolled_back", J.Bool r.rolled_back);
      ])

let report_to_json r =
  J.Obj
    [
      ("passes", J.List (List.map pass_to_json r.passes));
      ("rollbacks", J.Int r.rollbacks);
      ("degraded", J.Bool r.degraded);
      ("verified", J.Bool r.verified);
    ]

let pp_report fmt r =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun p ->
      Format.fprintf fmt "%-24s %-10s %8.3fs  size %-6d depth %-4d%s@,"
        p.pass (outcome_name p.outcome) p.time_s p.size p.depth
        (if p.rolled_back then "  [rolled back]" else ""))
    r.passes;
  Format.fprintf fmt "rollbacks: %d, %s, %s@]" r.rollbacks
    (if r.degraded then "degraded" else "clean")
    (if r.verified then "verified" else "UNVERIFIED")
