module J = Lsutil.Json

type step = {
  move : string;
  outcome : string;
  accepted : bool;
  size : int;
  depth : int;
  time_s : float;
  cache_hits : int;
  cache_misses : int;
}

type record = {
  circuit : string;
  goal : string;
  seed : int;
  beam : int;
  budget_s : float option;
  size_in : int;
  depth_in : int;
  size_out : int;
  depth_out : int;
  steps : step list;
  explored : int;
  verdict : string;
  time_s : float;
}

let schema = "mighty-traj/1"
let verdicts = [ "completed"; "budget_exhausted"; "interrupted" ]

let step_to_json s =
  J.Obj
    [
      ("move", J.String s.move);
      ("outcome", J.String s.outcome);
      ("accepted", J.Bool s.accepted);
      ("size", J.Int s.size);
      ("depth", J.Int s.depth);
      ("time_s", J.Float s.time_s);
      ("cache_hits", J.Int s.cache_hits);
      ("cache_misses", J.Int s.cache_misses);
    ]

let to_json r =
  J.Obj
    [
      ("schema", J.String schema);
      ("circuit", J.String r.circuit);
      ("goal", J.String r.goal);
      ("seed", J.Int r.seed);
      ("beam", J.Int r.beam);
      ( "budget_s",
        match r.budget_s with None -> J.Null | Some s -> J.Float s );
      ("size_in", J.Int r.size_in);
      ("depth_in", J.Int r.depth_in);
      ("size_out", J.Int r.size_out);
      ("depth_out", J.Int r.depth_out);
      ("steps", J.List (List.map step_to_json r.steps));
      ("explored", J.Int r.explored);
      ("verdict", J.String r.verdict);
      ("time_s", J.Float r.time_s);
    ]

(* ----- validation (shared with bench/json_lint) ----- *)

let ( let* ) = Result.bind

let field name j =
  match J.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let want_string name j =
  match J.member name j with
  | Some (J.String s) -> Ok s
  | _ -> Error (Printf.sprintf "field %S is not a string" name)

let want_int name j =
  match J.member name j with
  | Some (J.Int _) -> Ok ()
  | _ -> Error (Printf.sprintf "field %S is not an int" name)

let want_num name j =
  match J.member name j with
  | Some (J.Int _ | J.Float _) -> Ok ()
  | _ -> Error (Printf.sprintf "field %S is not a number" name)

let want_bool name j =
  match J.member name j with
  | Some (J.Bool _) -> Ok ()
  | _ -> Error (Printf.sprintf "field %S is not a bool" name)

let iter_result f l =
  List.fold_left (fun acc x -> let* () = acc in f x) (Ok ()) l

let step_outcomes = [ "completed"; "timed_out"; "failed"; "skipped" ]

let validate_step j =
  let* _ = want_string "move" j in
  let* o = want_string "outcome" j in
  let* () =
    if List.mem o step_outcomes then Ok ()
    else Error (Printf.sprintf "step outcome %S unknown" o)
  in
  let* () = want_bool "accepted" j in
  let* () = want_int "size" j in
  let* () = want_int "depth" j in
  let* () = want_num "time_s" j in
  let* () = want_int "cache_hits" j in
  want_int "cache_misses" j

let validate j =
  let* s = want_string "schema" j in
  let* () =
    if s = schema then Ok ()
    else Error (Printf.sprintf "schema %S is not %S" s schema)
  in
  let* _ = want_string "circuit" j in
  let* g = want_string "goal" j in
  let* () =
    if List.mem g [ "size"; "depth"; "activity" ] then Ok ()
    else Error (Printf.sprintf "goal %S unknown" g)
  in
  let* () = want_int "seed" j in
  let* () = want_int "beam" j in
  let* () =
    match J.member "budget_s" j with
    | Some (J.Null | J.Int _ | J.Float _) -> Ok ()
    | _ -> Error "field \"budget_s\" is not a number or null"
  in
  let* () = want_int "size_in" j in
  let* () = want_int "depth_in" j in
  let* () = want_int "size_out" j in
  let* () = want_int "depth_out" j in
  let* () = want_int "explored" j in
  let* v = want_string "verdict" j in
  let* () =
    if List.mem v verdicts then Ok ()
    else Error (Printf.sprintf "verdict %S unknown" v)
  in
  let* () = want_num "time_s" j in
  let* steps = field "steps" j in
  match steps with
  | J.List l -> iter_result validate_step l
  | _ -> Error "field \"steps\" is not a list"

let append_file path r =
  let line = J.to_string (to_json r) in
  match
    open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path
  with
  | exception Sys_error e -> Error e
  | oc ->
      let res =
        match
          output_string oc line;
          output_char oc '\n'
        with
        | () -> Ok ()
        | exception Sys_error e -> Error e
      in
      (match close_out oc with () -> () | exception Sys_error _ -> ());
      res
