(** Early cutoff for incremental re-optimization (DESIGN.md §15).

    Every primary output's input cone is fingerprinted (structure,
    complement edges, PI names, plus a salt encoding the optimization
    recipe).  A persistent {!store} maps fingerprints to serialized
    optimized cones from previous runs; {!run} stitches matching
    outputs straight from the store and pushes only the changed
    outputs through the optimizer, restricted to their cones.  The
    rebuilt graph re-deduplicates shared logic through structural
    hashing.

    The store is shared read-mostly ({!Lsutil.Memo}): domains fork
    private handles and return {!result.delta}s for a deterministic
    merge.  Stored cones are never trusted blindly — a cone that fails
    to rebuild, or (with checking on) a stitched graph that fails the
    simulation miter against the input, causes a full fallback run. *)

type store = Lsutil.Json.t Lsutil.Memo.base

val empty_store : unit -> store
val store_of_json : Lsutil.Json.t -> store
val store_to_json : store -> Lsutil.Json.t
val store_size : store -> int

val section : string
(** Section name (["cones"]) inside the [mighty-cache/1] envelope. *)

val fingerprint : salt:string -> Mig.Graph.t -> Network.Signal.t -> string
(** 128-bit structural fingerprint (32 hex chars) of the signal's
    input cone: node shapes, fanin complement bits, PI names, root
    complement and [salt].  Node ids do not influence it, so it is
    stable across rebuilds of the same structure. *)

val serialize : Mig.Graph.t -> Network.Signal.t -> Lsutil.Json.t
(** Portable encoding of one cone (PIs by name, nodes in post-order,
    signals as [2*slot + complement]). *)

val deserialize :
  Mig.Graph.t ->
  pi_sig:(string -> Network.Signal.t option) ->
  Lsutil.Json.t ->
  Network.Signal.t option
(** Rebuild a serialized cone inside a target graph; [None] on any
    malformed reference or unknown PI name. *)

type result = {
  graph : Mig.Graph.t;
  report : Engine.report;
      (** the sub-run's report; a pass-less clean report when every
          output was stitched from the store *)
  reused : int;  (** POs stitched from the store *)
  reoptimized : int;  (** POs pushed through the optimizer *)
  fallback : bool;  (** store answers rejected; full run used instead *)
  hits : int;
  misses : int;
  delta : (string * Lsutil.Json.t) list;
      (** new fingerprint → cone entries recorded by this run *)
}

val run :
  salt:string ->
  store:store ->
  optimize:(Mig.Graph.t -> Mig.Graph.t * Engine.report) ->
  ?seed:int ->
  Mig.Graph.t ->
  result
(** [run ~salt ~store ~optimize g] optimizes [g] incrementally.
    [salt] must encode everything that changes the optimizer's answer
    (goal, effort, seed, budget); [optimize] is invoked on the whole
    graph (cold) or on a restricted sub-graph of the changed outputs.
    When the graph's context has checking on, the stitched result is
    miter-verified against [g] ([seed], default 1) and any failure
    falls back to a full run. *)
