module G = Mig.Graph
module Tr = Mig.Transform

type goal = [ `Size | `Depth | `Activity ]

let goal_name = function
  | `Size -> "size"
  | `Depth -> "depth"
  | `Activity -> "activity"

(* ----- atoms ----- *)

type atom =
  | Rewrite of [ `Depth | `Size ]
  | Eliminate
  | Reshape_assoc
  | Relevance
  | Substitution of bool
  | Refactor
  | Push_up_sat of int

(* Repeated depth push-up to a fixpoint: the pass is cheap and
   monotone, so saturating it inside one engine pass (rather than
   spending checkpoint slots per iteration) matches the paper's
   script. *)
let saturate_depth pass ~max_iter g =
  let bud = Lsutil.Ctx.budget (G.ctx g) in
  let cur = ref g in
  let continue_ = ref true in
  let iter = ref 0 in
  while !continue_ && !iter < max_iter do
    Lsutil.Budget.poll bud;
    incr iter;
    let next = pass !cur in
    if G.depth next < G.depth !cur then cur := next else continue_ := false
  done;
  !cur

let run_atom ?cache atom g =
  match atom with
  | Rewrite mode -> Tr.rewrite_patterns ~mode g
  | Eliminate -> Tr.eliminate g
  | Reshape_assoc -> Tr.reshape_assoc g
  | Relevance -> Tr.relevance g
  | Substitution on_critical -> Tr.substitution ~on_critical g
  | Refactor -> Tr.refactor ?cache g
  | Push_up_sat max_iter -> saturate_depth Tr.push_up ~max_iter g

(* The paper's Alg. 1/2 scripts, decomposed: base-names and transform
   parameters are exactly what [Engine.of_goal] has always built — the
   engine's pipelines are now spelled in this vocabulary, so default
   goals stay bit-identical. *)
let cycle_atoms : goal -> (string * atom) list = function
  | `Size ->
      [
        ("rewrite", Rewrite `Size);
        ("eliminate", Eliminate);
        ("reshape", Reshape_assoc);
        ("relevance", Relevance);
        ("substitution", Substitution false);
        ("eliminate'", Eliminate);
        ("refactor", Refactor);
        ("eliminate''", Eliminate);
      ]
  | `Depth ->
      [
        ("rewrite", Rewrite `Depth);
        ("push_up", Push_up_sat 8);
        ("relevance", Relevance);
        ("substitution", Substitution true);
        ("push_up'", Push_up_sat 8);
        ("eliminate", Eliminate);
      ]
  | `Activity ->
      [
        ("relevance", Relevance);
        ("eliminate", Eliminate);
        ("substitution", Substitution false);
        ("eliminate'", Eliminate);
      ]

let recovery_atoms : goal -> (string * atom) list = function
  | `Depth ->
      [
        ("recover:rewrite", Rewrite `Size);
        ("recover:eliminate", Eliminate);
        ("recover:refactor", Refactor);
      ]
  | `Size | `Activity -> []

let script_of_goal ?(effort = 2) ?cache goal =
  let atom_pass (name, a) = (name, fun g -> run_atom ?cache a g) in
  let cycle i =
    List.map
      (fun (name, a) ->
        atom_pass (Printf.sprintf "%s#%d" name i, a))
      (cycle_atoms goal)
  in
  List.concat_map cycle (List.init effort (fun i -> i + 1))
  @ List.map atom_pass (recovery_atoms goal)

let cost_of_goal : goal -> G.t -> float * float = function
  | `Size -> fun g -> (float_of_int (G.size g), float_of_int (G.depth g))
  | `Depth -> fun g -> (float_of_int (G.depth g), float_of_int (G.size g))
  | `Activity -> fun g -> (Mig.Activity.total g, float_of_int (G.size g))

(* ----- macro moves ----- *)

type kind =
  | Cycle of goal
  | Resyn of int
  | Bds of { node_limit : int; seed : int }

type t = { name : string; kind : kind }

let opt_cycle goal = { name = "cycle:" ^ goal_name goal; kind = Cycle goal }
let resyn effort = { name = Printf.sprintf "resyn#%d" effort; kind = Resyn effort }

let bds ?(node_limit = 200_000) ~seed () =
  { name = "bds"; kind = Bds { node_limit; seed } }

let apply ?cache t g =
  match t.kind with
  | Cycle goal ->
      List.fold_left
        (fun g (_, a) -> run_atom ?cache a g)
        g
        (cycle_atoms goal @ recovery_atoms goal)
  | Resyn effort ->
      let a = Mig.Convert.to_aig g in
      let a = Aig.Resyn.run ~check:false ~effort a in
      Mig.Convert.of_aig ~ctx:(G.ctx g) a
  | Bds { node_limit; seed } -> (
      let net = Mig.Convert.to_network g in
      match
        Bdd.Decompose.run ~ctx:(G.ctx g) ~node_limit ~seed net
      with
      | Some d -> Mig.Convert.of_network ~ctx:(G.ctx g) d
      | None -> failwith "bds: node limit exceeded")

let cost_key t = "move:" ^ t.name

let vocabulary ?(seed = 1) goal =
  let goals : goal list = [ `Size; `Depth; `Activity ] in
  let cycles =
    opt_cycle goal
    :: List.filter_map
         (fun g -> if g = goal then None else Some (opt_cycle g))
         goals
  in
  cycles @ [ resyn 1; bds ~seed () ]
