module G = Network.Graph
module S = Network.Signal

let to_network man ~pi_names outs =
  let net = G.create () in
  let levels =
    List.fold_left
      (fun acc (_, b) ->
        List.fold_left (fun acc v -> max acc (v + 1)) acc (Robdd.support man b))
      0 outs
  in
  let pi_sigs = Array.init levels (fun l -> G.add_pi net (pi_names l)) in
  let memo = Hashtbl.create 1024 in
  let rec build f =
    if f = Robdd.zero then G.const0 net
    else if f = Robdd.one then G.const1 net
    else
      match Hashtbl.find_opt memo f with
      | Some s -> s
      | None ->
          let v = pi_sigs.(Robdd.topvar man f) in
          let lo = Robdd.low man f and hi = Robdd.high man f in
          let s =
            if lo = Robdd.zero then G.and_ net v (build hi)
            else if hi = Robdd.zero then G.and_ net (S.not_ v) (build lo)
            else if lo = Robdd.one then G.or_ net (S.not_ v) (build hi)
            else if hi = Robdd.one then G.or_ net v (build lo)
            else if Robdd.not_ man lo = hi then G.xor_ net v (build lo)
            else G.mux net v (build hi) (build lo)
          in
          Hashtbl.replace memo f s;
          s
  in
  List.iter (fun (name, b) -> G.add_po net name (build b)) outs;
  net

let run ?ctx ?(node_limit = 2_000_000) ?(reorder = true) ~seed n =
  let module T = Lsutil.Telemetry in
  let ctx = match ctx with Some c -> c | None -> Lsutil.Ctx.create () in
  let tel = Lsutil.Ctx.stats ctx in
  T.span tel "bdd:decompose" (fun () ->
      (* unified budget API: the context's node cap tightens the
         manager's own limit, so one [Budget.with_budget] bounds MIG,
         AIG and BDD arenas alike *)
      let node_limit =
        match Lsutil.Budget.remaining_nodes (Lsutil.Ctx.budget ctx) with
        | Some r -> min node_limit r
        | None -> node_limit
      in
      if T.enabled tel then T.record_int tel "nodes_in" (G.size n);
      match
        let order =
          T.span tel "bdd:reorder" (fun () ->
              if reorder then Reorder.best_order ~ctx ~node_limit ~seed n
              else Builder.dfs_order n)
        in
        let man = Robdd.manager ~ctx ~node_limit () in
        let outs =
          T.span tel "bdd:build" (fun () -> Builder.of_network man ~order n)
        in
        let pi_names level = G.pi_name n order.(level) in
        (* Dangling PIs must survive so the interface stays intact. *)
        let net =
          T.span tel "bdd:to_network" (fun () -> to_network man ~pi_names outs)
        in
        let declared = G.num_pis net in
        Array.iteri
          (fun l id ->
            if l >= declared then ignore (G.add_pi net (G.pi_name n id)))
          order;
        net
      with
      | net ->
          let out = G.cleanup net in
          if T.enabled tel then begin
            T.record_int tel "nodes_out" (G.size out);
            T.record tel "outcome" (T.String "completed")
          end;
          Some out
      | exception Robdd.Node_limit_exceeded ->
          (* graceful blowup: the caller gets [None], never an
             exception; telemetry records a Timed_out-style outcome *)
          T.count tel "bdd.blowup";
          T.record tel "outcome" (T.String "timed_out");
          None
      | exception Lsutil.Budget.Exhausted reason ->
          (* the unified budget (deadline or cross-layer node cap) blew
             mid-build: same graceful degradation as a local blowup *)
          T.count tel "bdd.blowup";
          T.record tel "outcome" (T.String "timed_out");
          T.record tel "budget" (T.String (Lsutil.Budget.reason_name reason));
          None)
