module G = Network.Graph

let shuffle rng a =
  let a = Array.copy a in
  for i = Array.length a - 1 downto 1 do
    let j = Lsutil.Rng.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  a

let cost_of ?ctx ~node_limit n order =
  let man = Robdd.manager ?ctx ~node_limit () in
  match Builder.of_network man ~order n with
  | roots -> Some (Robdd.size man (List.map snd roots))
  | exception Robdd.Node_limit_exceeded -> None

let best_order ?ctx ?(tries = 2) ?(node_limit = 1_000_000) ~seed n =
  (* probing an order does not need the full budget: an order that
     exceeds a few hundred thousand nodes will not be chosen anyway *)
  let node_limit = min node_limit 300_000 in
  let dfs = Builder.dfs_order n in
  let rev =
    let a = Array.copy dfs in
    let len = Array.length a in
    Array.init len (fun i -> a.(len - 1 - i))
  in
  let decl = Array.of_list (G.pis n) in
  let rng = Lsutil.Rng.create seed in
  let candidates =
    dfs :: rev :: decl :: List.init tries (fun _ -> shuffle rng dfs)
  in
  let best =
    List.fold_left
      (fun acc order ->
        match cost_of ?ctx ~node_limit n order with
        | None -> acc
        | Some c -> (
            match acc with
            | Some (bc, _) when bc <= c -> acc
            | _ -> Some (c, order)))
      None candidates
  in
  match best with
  | Some (_, order) -> order
  | None -> dfs

let order_cost ?ctx ~node_limit n order =
  cost_of ?ctx ~node_limit n order

(* Sliding-window refinement: try all permutations of each window of
   [width] adjacent levels, keep the best, sweep until a full pass
   makes no improvement (classic window reordering, the practical
   little sibling of sifting). *)
let window_refine ?ctx ?(width = 3) ?(node_limit = 300_000) ?(max_sweeps = 3) n
    order =
  let permutations xs =
    let rec go = function
      | [] -> [ [] ]
      | xs ->
          List.concat_map
            (fun x ->
              List.map
                (fun rest -> x :: rest)
                (go (List.filter (fun y -> y <> x) xs)))
            xs
    in
    go xs
  in
  let best = ref (Array.copy order) in
  let best_cost = ref (order_cost ?ctx ~node_limit n !best) in
  if !best_cost = None then !best
  else begin
    let improved = ref true in
    let sweeps = ref 0 in
    while !improved && !sweeps < max_sweeps do
      improved := false;
      incr sweeps;
      for pos = 0 to Array.length !best - width do
        let window = Array.to_list (Array.sub !best pos width) in
        List.iter
          (fun perm ->
            if perm <> window then begin
              let cand = Array.copy !best in
              List.iteri (fun i v -> cand.(pos + i) <- v) perm;
              match (order_cost ?ctx ~node_limit n cand, !best_cost) with
              | Some c, Some bc when c < bc ->
                  best := cand;
                  best_cost := Some c;
                  improved := true
              | _ -> ()
            end)
          (permutations window)
      done
    done;
    !best
  end
