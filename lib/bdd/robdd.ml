module Vec = Lsutil.Vec

type man = {
  (* per node: variable, low child, high child.  Slots 0 and 1 are the
     constants and hold a sentinel variable larger than any real one. *)
  vars : int Vec.t;
  lows : int Vec.t;
  highs : int Vec.t;
  unique : (int * int * int, int) Hashtbl.t;
  ite_cache : (int * int * int, int) Hashtbl.t;
  node_limit : int;
  ctx : Lsutil.Ctx.t;
  bud : Lsutil.Budget.t; (* alias into [ctx] for the hot charge site *)
  flt : Lsutil.Fault.t;
}

type t = int

exception Node_limit_exceeded

let terminal_var = max_int

let manager ?ctx ?(node_limit = 8_000_000) () =
  let ctx = match ctx with Some c -> c | None -> Lsutil.Ctx.create () in
  let m =
    {
      vars = Vec.create ();
      lows = Vec.create ();
      highs = Vec.create ();
      unique = Hashtbl.create 4096;
      ite_cache = Hashtbl.create 4096;
      node_limit;
      ctx;
      bud = Lsutil.Ctx.budget ctx;
      flt = Lsutil.Ctx.fault ctx;
    }
  in
  (* constants *)
  ignore (Vec.push m.vars terminal_var);
  ignore (Vec.push m.lows 0);
  ignore (Vec.push m.highs 0);
  ignore (Vec.push m.vars terminal_var);
  ignore (Vec.push m.lows 1);
  ignore (Vec.push m.highs 1);
  m

let zero = 0
let one = 1
let is_const f = f < 2
let var_of m f = Vec.get m.vars f
let low m f = Vec.get m.lows f
let high m f = Vec.get m.highs f

let topvar m f =
  if is_const f then invalid_arg "Robdd.topvar: constant";
  var_of m f

let num_allocated m = Vec.length m.vars - 2

(* BDD-builder fault site.  [Corrupt] returns the low child instead of
   a fresh node: a structurally valid but functionally wrong BDD that
   only downstream verification can catch.  Returns [-1] (= no fault)
   on the hot path so [mk] stays allocation-free. *)
let fault_bdd m lo =
  match Lsutil.Fault.fire m.flt "bdd" with
  | None -> -1
  | Some Lsutil.Fault.Corrupt -> lo
  | Some Lsutil.Fault.Raise -> raise (Lsutil.Fault.Injected "bdd")
  | Some Lsutil.Fault.Exhaust -> Lsutil.Budget.exhaust m.bud

let mk m v lo hi =
  if lo = hi then lo
  else
    let key = (v, lo, hi) in
    match Hashtbl.find_opt m.unique key with
    | Some id -> id
    | None ->
        let injected = if Lsutil.Fault.enabled m.flt then fault_bdd m lo else -1 in
        if injected >= 0 then injected
        else begin
          if Vec.length m.vars - 2 >= m.node_limit then
            raise Node_limit_exceeded;
          (* BDD nodes count against the same context budget as MIG and
             AIG arena nodes; this also keeps long builds
             deadline-responsive (no-op when no budget is installed) *)
          Lsutil.Budget.note_nodes m.bud 1;
          let id = Vec.push m.vars v in
          ignore (Vec.push m.lows lo);
          ignore (Vec.push m.highs hi);
          Hashtbl.add m.unique key id;
          id
        end

let var m i =
  if i < 0 || i >= terminal_var then invalid_arg "Robdd.var";
  mk m i zero one

let rec ite m f g h =
  if f = one then g
  else if f = zero then h
  else if g = h then g
  else if g = one && h = zero then f
  else begin
    let key = (f, g, h) in
    match Hashtbl.find_opt m.ite_cache key with
    | Some r -> r
    | None ->
        let v =
          min (var_of m f) (min (var_of m g) (var_of m h))
        in
        let cof x = if is_const x || var_of m x <> v then (x, x) else (low m x, high m x) in
        let f0, f1 = cof f and g0, g1 = cof g and h0, h1 = cof h in
        let r0 = ite m f0 g0 h0 in
        let r1 = ite m f1 g1 h1 in
        let r = mk m v r0 r1 in
        Hashtbl.replace m.ite_cache key r;
        r
  end

let not_ m f = ite m f zero one
let and_ m f g = ite m f g zero
let or_ m f g = ite m f one g
let xor_ m f g = ite m f (not_ m g) g
let maj m a b c = ite m a (or_ m b c) (and_ m b c)

let size m roots =
  let seen = Hashtbl.create 64 in
  let count = ref 0 in
  let rec go f =
    if (not (is_const f)) && not (Hashtbl.mem seen f) then begin
      Hashtbl.add seen f ();
      incr count;
      go (low m f);
      go (high m f)
    end
  in
  List.iter go roots;
  !count

let support m f =
  let seen = Hashtbl.create 64 in
  let vars = Hashtbl.create 16 in
  let rec go f =
    if (not (is_const f)) && not (Hashtbl.mem seen f) then begin
      Hashtbl.add seen f ();
      Hashtbl.replace vars (var_of m f) ();
      go (low m f);
      go (high m f)
    end
  in
  go f;
  List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) vars [])

let rec eval m f env =
  if f = zero then false
  else if f = one then true
  else if env (var_of m f) then eval m (high m f) env
  else eval m (low m f) env

let to_truthtable m ~nvars f =
  let module T = Truthtable in
  let memo = Hashtbl.create 64 in
  let rec go f =
    if f = zero then T.const0 nvars
    else if f = one then T.const1 nvars
    else
      match Hashtbl.find_opt memo f with
      | Some t -> t
      | None ->
          let v = var_of m f in
          if v >= nvars then invalid_arg "Robdd.to_truthtable: variable out of range";
          let t = T.mux (T.var nvars v) (go (high m f)) (go (low m f)) in
          Hashtbl.replace memo f t;
          t
  in
  go f

let count_minterms m ~nvars f =
  let memo = Hashtbl.create 64 in
  (* fraction of the space where f holds *)
  let rec frac f =
    if f = zero then 0.0
    else if f = one then 1.0
    else
      match Hashtbl.find_opt memo f with
      | Some x -> x
      | None ->
          let x = 0.5 *. (frac (low m f) +. frac (high m f)) in
          Hashtbl.replace memo f x;
          x
  in
  frac f *. (2.0 ** float_of_int nvars)
