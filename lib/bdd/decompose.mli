(** BDS-style decomposition of BDDs into multi-level networks.

    Mirrors the role of the BDS tool in the paper's evaluation: each
    BDD node is turned into network logic, extracting simple AND/OR
    dominators (a child is a constant) and XOR dominators (the two
    children are complements) before falling back to a MUX.  Shared
    BDD nodes become shared network nodes. *)

val to_network :
  Robdd.man ->
  pi_names:(int -> string) ->
  (string * Robdd.t) list ->
  Network.Graph.t
(** [to_network man ~pi_names outs] builds a network computing every
    [(name, bdd)] output.  [pi_names level] is the PI name to use for
    the BDD variable at [level] (the inverse of the build order).
    PIs are declared in level order. *)

val run :
  ?ctx:Lsutil.Ctx.t ->
  ?node_limit:int ->
  ?reorder:bool ->
  seed:int ->
  Network.Graph.t ->
  Network.Graph.t option
(** Full BDS-like flow: pick a variable order (searched when
    [reorder], default true), build the BDDs, decompose back to a
    network and sweep it.  [None] when the node budget was exceeded —
    the situation the paper reports as "N.A.". *)
