(** Variable-order search.

    A lightweight stand-in for dynamic reordering (sifting): several
    candidate orders — the DFS order, its reverse, the declaration
    order and a few seeded shuffles — are evaluated by building the
    diagrams under a node budget, and the smallest result wins. *)

val best_order :
  ?ctx:Lsutil.Ctx.t ->
  ?tries:int ->
  ?node_limit:int ->
  seed:int ->
  Network.Graph.t ->
  int array
(** Best variable order found (element [i] = PI node id at level [i]).
    [tries] seeded shuffles are evaluated in addition to the three
    deterministic candidates (default 2). *)

val window_refine :
  ?ctx:Lsutil.Ctx.t ->
  ?width:int ->
  ?node_limit:int ->
  ?max_sweeps:int ->
  Network.Graph.t ->
  int array ->
  int array
(** Sliding-window reordering: every window of [width] adjacent levels
    (default 3) is tried in all permutations and the cheapest kept,
    sweeping until a pass yields no improvement (or [max_sweeps]).
    A practical refinement step on top of {!best_order}; the input
    order is returned unchanged if it already exceeds [node_limit]. *)
