(** Reduced Ordered Binary Decision Diagrams.

    A manager owns the unique table and operation caches.  BDD nodes
    are plain integers ([0] = constant false, [1] = constant true);
    variables are integers ordered by their index ([0] is the top of
    every diagram).  The manager enforces an optional node budget so
    that callers can detect blow-up (as the paper reports "N.A." when
    BDS failed on large circuits). *)

type man
type t = int
(** A BDD root handle, only meaningful together with its manager. *)

exception Node_limit_exceeded

val manager : ?ctx:Lsutil.Ctx.t -> ?node_limit:int -> unit -> man
(** Fresh manager.  [node_limit] bounds the total number of nodes ever
    allocated; exceeding it raises {!Node_limit_exceeded}. *)

val zero : t
val one : t
val var : man -> int -> t
(** [var m i] is the function of variable [i]. *)

val num_allocated : man -> int

(** {1 Operations} *)

val ite : man -> t -> t -> t -> t
val not_ : man -> t -> t
val and_ : man -> t -> t -> t
val or_ : man -> t -> t -> t
val xor_ : man -> t -> t -> t
val maj : man -> t -> t -> t -> t

(** {1 Structure} *)

val is_const : t -> bool
val topvar : man -> t -> int
(** Variable at the root.  Raises on constants. *)

val low : man -> t -> t
val high : man -> t -> t

val size : man -> t list -> int
(** Number of distinct internal nodes reachable from the given roots
    (shared nodes counted once; constants not counted). *)

val support : man -> t -> int list
(** Variables the function depends on, ascending. *)

val eval : man -> t -> (int -> bool) -> bool
val to_truthtable : man -> nvars:int -> t -> Truthtable.t
(** Expand to a truth table; BDD variable [i] becomes table variable
    [i].  Intended for small [nvars]. *)

val count_minterms : man -> nvars:int -> t -> float
