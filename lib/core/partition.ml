(* Fanout-closed region partitioning of the PO-reachable cone, for
   region-parallel rewriting (Flow.Par).

   Nodes are appended in topological order — every fanin id is
   strictly smaller than its node id — so chunking the live majority
   nodes by ascending id into node-count-targeted slices yields
   regions whose fanins only ever point to the constant, a PI, or an
   earlier region.  Region r can therefore be rebuilt as soon as
   regions 0..r-1 are committed, and any schedule that commits in
   region order reproduces the sequential result.

   Boundary vocabulary:
   - a region's [outputs] are its nodes referenced from outside it
     (by a later region's fanin or by a PO);
   - its [inputs] are the external nodes its fanins reference (the
     constant, PIs, and earlier regions' outputs);
   - the [frontier] is the union of all inputs and outputs — the only
     nodes shared between regions.

   The partition is fanout-closed by construction: a node that is not
   an output has every fanout inside its own region, so rewriting a
   region can restructure its interior freely as long as the functions
   at its outputs are preserved. *)

module G = Graph
module S = Network.Signal

type region = {
  nodes : int array; (* live maj ids, ascending *)
  inputs : int array; (* external fanin node ids, ascending *)
  outputs : int array; (* region nodes referenced outside, ascending *)
}

type t = {
  regions : region array;
  frontier : int array; (* ascending; every inter-region node *)
  live_majs : int; (* total live majority nodes covered *)
}

let num_regions t = Array.length t.regions

(* Live = PO-reachable majority nodes, in ascending id order. *)
let live_majs_of g =
  let reach = G.reachable g in
  let n = ref 0 in
  Array.iteri (fun id r -> if r && G.is_maj g id then incr n) reach;
  let live = Array.make !n 0 in
  let j = ref 0 in
  Array.iteri
    (fun id r ->
      if r && G.is_maj g id then begin
        live.(!j) <- id;
        incr j
      end)
    reach;
  live

let split ?(target = 65536) g =
  if target < 1 then invalid_arg "Partition.split: target < 1";
  Lsutil.San.read_access (G.san_tag g);
  let live = live_majs_of g in
  let nlive = Array.length live in
  let nregions = (nlive + target - 1) / target in
  let nn = G.num_nodes g in
  Lsutil.Ctx.with_scratch (G.ctx g) nn @@ fun region_of ->
  (* region_of.(id) = region index for live majs, -1 otherwise
     (scratch comes back -1-filled) *)
  Array.iteri (fun j id -> region_of.(id) <- j / target) live;
  (* A node is an output of its region when some live maj in a LATER
     region, or a PO, references it.  A single sweep over live fanins
     and POs marks them; external const/PI references are region
     inputs, not outputs. *)
  let is_output = Array.make (max nn 1) false in
  Array.iter
    (fun id ->
      let r = region_of.(id) in
      let fs = G.fanins g id in
      for k = 0 to 2 do
        let fn = S.node fs.(k) in
        if region_of.(fn) >= 0 && region_of.(fn) <> r then
          is_output.(fn) <- true
      done)
    live;
  G.iter_pos g (fun _ s ->
      let fn = S.node s in
      if region_of.(fn) >= 0 then is_output.(fn) <- true);
  (* Per-region membership is a contiguous slice of [live]. *)
  let regions =
    Array.init nregions (fun r ->
        let lo = r * target in
        let hi = min nlive (lo + target) in
        let nodes = Array.sub live lo (hi - lo) in
        (* distinct external fanins, via a mark array slot reused per
           region: mark with r, collect ascending afterwards *)
        let inputs = ref [] and outputs = ref [] in
        let seen = Hashtbl.create 64 in
        Array.iter
          (fun id ->
            let fs = G.fanins g id in
            for k = 0 to 2 do
              let fn = S.node fs.(k) in
              if region_of.(fn) <> r && not (Hashtbl.mem seen fn) then begin
                Hashtbl.add seen fn ();
                inputs := fn :: !inputs
              end
            done)
          nodes;
        Array.iter (fun id -> if is_output.(id) then outputs := id :: !outputs)
          nodes;
        let inputs = Array.of_list !inputs in
        Array.sort compare inputs;
        {
          nodes;
          inputs;
          (* [nodes] is ascending, so the filtered list is descending *)
          outputs = Array.of_list (List.rev !outputs);
        })
  in
  (* frontier = every node named by some region boundary *)
  let on_frontier = Array.make (max nn 1) false in
  Array.iter
    (fun r ->
      Array.iter (fun id -> on_frontier.(id) <- true) r.inputs;
      Array.iter (fun id -> on_frontier.(id) <- true) r.outputs)
    regions;
  let nf = ref 0 in
  Array.iter (fun b -> if b then incr nf) on_frontier;
  let frontier = Array.make !nf 0 in
  let j = ref 0 in
  Array.iteri
    (fun id b ->
      if b then begin
        frontier.(!j) <- id;
        incr j
      end)
    on_frontier;
  { regions; frontier; live_majs = nlive }
