(** Fanout-closed region partitioning for region-parallel rewriting.

    {!split} slices the PO-reachable majority nodes, in ascending id
    order, into regions of at most [target] nodes.  Because fanin ids
    are always smaller than their node id, every region's fanins point
    only to the constant, PIs, or strictly earlier regions — regions
    form a topological sequence, and committing rewritten regions in
    index order reproduces the sequential result.

    Invariants (property-tested in [test_par.ml]):
    - {b cover}: region [nodes] arrays are pairwise disjoint and their
      union is exactly the set of PO-reachable majority nodes;
    - {b fanout-closed}: a region node not in its [outputs] has every
      fanout (fanin reference or PO) inside its own region;
    - {b frontier}: the only node ids shared between region boundaries
      ([inputs]/[outputs]) are listed in [frontier]. *)

type region = {
  nodes : int array;  (** live majority ids, ascending *)
  inputs : int array;
      (** external nodes feeding the region (const, PIs, earlier
          regions' outputs), ascending *)
  outputs : int array;
      (** region nodes referenced from outside (later regions or POs),
          ascending *)
}

type t = {
  regions : region array;  (** topological order *)
  frontier : int array;  (** union of all boundary ids, ascending *)
  live_majs : int;  (** total PO-reachable majority nodes *)
}

val num_regions : t -> int

val split : ?target:int -> Graph.t -> t
(** [split ~target g] partitions [g]'s reachable cone into regions of
    at most [target] (default 65536) majority nodes.  Raises
    [Invalid_argument] when [target < 1].  O(nodes); allocates the
    region arrays plus one scratch pass. *)
