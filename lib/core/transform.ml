module S = Network.Signal
module G = Graph
module Tel = Lsutil.Telemetry

(* every pass derives its services from the graph's own context *)
let tel g = Lsutil.Ctx.stats (G.ctx g)
let bud g = Lsutil.Ctx.budget (G.ctx g)
let flt g = Lsutil.Ctx.fault (G.ctx g)

(* ----- shared helpers ----- *)

(* Memoized level function over a (growing) fresh graph: a flat int
   array indexed by node id, -1 for "not computed", doubled as the
   graph outgrows it.  No hashing, no boxing. *)
let make_level_fn fresh =
  let memo = ref (Array.make 1024 (-1)) in
  let ensure id =
    let m = !memo in
    let n = Array.length m in
    if id >= n then begin
      let m' = Array.make (max (2 * n) (id + 1)) (-1) in
      Array.blit m 0 m' 0 n;
      memo := m'
    end
  in
  (* explicit-stack post-order: level queries reach arbitrarily deep
     into the fresh graph, so the call stack is not an option *)
  let stack = Lsutil.Istack.create () in
  let node_level root =
    ensure root;
    if !memo.(root) >= 0 then !memo.(root)
    else begin
      Lsutil.Istack.push stack root;
      while not (Lsutil.Istack.is_empty stack) do
        let id = Lsutil.Istack.top stack in
        ensure id;
        if !memo.(id) >= 0 then Lsutil.Istack.pop stack
        else if not (G.is_maj fresh id) then begin
          !memo.(id) <- 0;
          Lsutil.Istack.pop stack
        end
        else begin
          let fs = G.fanins fresh id in
          let na = S.node fs.(0) and nb = S.node fs.(1) and nc = S.node fs.(2) in
          ensure na;
          ensure nb;
          ensure nc;
          let m = !memo in
          if m.(na) < 0 then Lsutil.Istack.push stack na
          else if m.(nb) < 0 then Lsutil.Istack.push stack nb
          else if m.(nc) < 0 then Lsutil.Istack.push stack nc
          else begin
            m.(id) <- 1 + max (max m.(na) m.(nb)) m.(nc);
            Lsutil.Istack.pop stack
          end
        end
      done;
      !memo.(root)
    end
  in
  fun s -> node_level (S.node s)

(* Multiset intersection of two 3-signal views.  Returns
   [Some (c1, c2, u, v)] when exactly two signals are common: [c1,c2]
   common, [u] left-over of [fa], [v] left-over of [fb]. *)
let common2 fa fb =
  let used = Array.make 3 false in
  let commons = ref [] and rest_a = ref [] in
  Array.iter
    (fun sa ->
      let matched = ref false in
      Array.iteri
        (fun j sb ->
          if (not !matched) && (not used.(j)) && S.equal sa sb then begin
            used.(j) <- true;
            matched := true;
            commons := sa :: !commons
          end)
        fb;
      if not !matched then rest_a := sa :: !rest_a)
    fa;
  match (!commons, !rest_a) with
  | [ c1; c2 ], [ u ] ->
      let v = ref None in
      Array.iteri (fun j sb -> if not used.(j) then v := Some sb) fb;
      Option.map (fun v -> (c1, c2, u, v)) !v
  | _ -> None

(* Rebuilds borrow their old-id -> fresh-signal scratch from the
   graph's context ([Ctx.with_scratch]): every pass needs a
   [num_nodes]-sized map, and allocating it afresh sixteen times per
   optimization script is pure GC churn.  The ctx pool hands nested
   rebuilds distinct buffers, so nesting is correct by construction
   (the old global arena had a [arena_busy] flag that silently fell
   back to a fresh unpooled array). *)

(* Demand-driven rebuild skeleton.  [init fresh] may set up
   per-rebuild state and returns the node constructor, which receives
   a [value] function resolving old signals to fresh ones, the old
   node id and its old fanins, and must return the fresh signal for
   the node's regular polarity.

   Speculative nodes a constructor built and then discarded stay
   allocated in [fresh] but dead; the trailing {!G.compact} drops them
   with a cheap renumbering pass instead of the full {!G.cleanup}
   rebuild (a second maj-by-maj reconstruction) each pass used to end
   with.  Compaction also keeps results bit-identical to the old
   cleanup pipeline: stored fanin triples sort by node id, so passes
   that pick the first profitable rotation are sensitive to the
   numbering, and skipping the renumbering entirely was observed to
   drift optimization results on big benchmarks. *)
(* Raised (no-trace) by [value] when a constructor demands a node that
   is not built yet; the driver pushes that node and retries.  See
   [rebuild_with]. *)
exception Need of int

let rebuild_with g init =
  let ctx = G.ctx g in
  let fresh = G.create ~ctx ~shards:(G.strash_shards g) () in
  (* the rebuilt graph rarely exceeds the source; pre-sizing its node
     arrays and strash avoids growth rehashes on every pass *)
  G.reserve fresh (G.num_nodes g);
  let construct = init fresh in
  let budget = Lsutil.Ctx.budget ctx in
  Lsutil.Ctx.with_scratch ctx (G.num_nodes g) @@ fun map ->
  map.(0) <- (G.const0 fresh : S.t :> int);
  List.iter
    (fun id -> map.(id) <- (G.add_pi fresh (G.pi_name g id) : S.t :> int))
    (G.pis g);
  let value s =
    let v = map.(S.node s) in
    if v >= 0 then S.xor_complement (S.unsafe_of_int v) (S.is_complement s)
    else raise_notrace (Need (S.node s))
  in
  (* Stack-safe retry driver.  The old version recursed through
     [build]/[value], so a chain-shaped graph overflowed the call
     stack.  Here [value] aborts the constructor with [Need n] when it
     hits an unbuilt node; the driver builds [n] (and, recursively,
     whatever it needs — ids only ever decrease, so this terminates)
     and re-runs the constructor.  Re-runs are observationally
     identical to the single recursive run: the constructor re-issues
     the same [G.maj] calls, which now strash-hit and return the very
     same signals, and its [value] demands fire in the same
     (compiler-fixed) evaluation order — so node-creation order, and
     with it every numbering-sensitive decision downstream, is
     unchanged.  Constructors must only keep side effects that are
     idempotent under retry (telemetry counts go after the last
     [value] call). *)
  let stack = Lsutil.Istack.create () in
  let build root =
    if map.(root) < 0 then begin
      Lsutil.Istack.push stack root;
      while not (Lsutil.Istack.is_empty stack) do
        Lsutil.Budget.poll budget;
        let id = Lsutil.Istack.top stack in
        if map.(id) >= 0 then Lsutil.Istack.pop stack
        else
          match construct value id (G.fanins g id) with
          | s ->
              map.(id) <- (s : S.t :> int);
              Lsutil.Istack.pop stack
          | exception Need n -> Lsutil.Istack.push stack n
      done
    end
  in
  G.iter_pos g (fun name s ->
      build (S.node s);
      G.add_po fresh name
        (S.xor_complement
           (S.unsafe_of_int map.(S.node s))
           (S.is_complement s)));
  G.compact fresh

(* All ways of singling out one element of a 3-array:
   (other1, other2, chosen). *)
let rotations (fs : S.t array) =
  [
    (fs.(0), fs.(1), fs.(2));
    (fs.(0), fs.(2), fs.(1));
    (fs.(1), fs.(2), fs.(0));
  ]

(* ----- eliminate: Ω.M (L→R) + Ω.D (R→L) ----- *)

let eliminate g =
  let fanout = G.fanout_counts g in
  rebuild_with g (fun fresh ->
      fun value _id old_fs ->
        let m = Array.map value old_fs in
        let dying s = fanout.(S.node s) <= 1 in
        (* old fanin behind each fresh one, computed once per node —
           the rotation loop below used to rebuild a Seq.filter chain
           over [old_fs] for every candidate *)
        let old_of fnew =
          if S.equal m.(0) fnew then Some old_fs.(0)
          else if S.equal m.(1) fnew then Some old_fs.(1)
          else if S.equal m.(2) fnew then Some old_fs.(2)
          else None
        in
        (* a fanin pair of majority nodes sharing two operands collapses:
           M(M(x,y,u),M(x,y,v),z) = M(x,y,M(u,v,z)) *)
        let candidate =
          List.find_map
            (fun (x, y, z) ->
              match (G.fanins_of fresh x, G.fanins_of fresh y) with
              | Some fx, Some fy -> (
                  match common2 fx fy with
                  | Some (c1, c2, u, v) ->
                      let both_dying =
                        match (old_of x, old_of y) with
                        | Some ox, Some oy -> dying ox && dying oy
                        | _ -> false
                      in
                      let inner_exists = G.find_maj fresh u v z <> None in
                      if both_dying || inner_exists then Some (c1, c2, u, v, z)
                      else None
                  | None -> None)
              | _ -> None)
            (rotations m)
        in
        match candidate with
        | Some (c1, c2, u, v, z) ->
            Tel.count (tel g) "rewrites";
            G.maj fresh c1 c2 (G.maj fresh u v z)
        | None -> G.maj fresh m.(0) m.(1) m.(2))

(* ----- push_up: depth-oriented Ω.D (L→R), Ω.A, Ψ.C ----- *)

(* Slack of every node in [g]: level minus required time.  Only
   zero-slack (critical) nodes are worth restructuring for depth; the
   rest would trade size for nothing (cf. the paper's "critical
   variables" wording in SIV.B). *)
let criticality g =
  let n = G.num_nodes g in
  let lv = G.levels g in
  let d = G.depth g in
  let req = Array.make n max_int in
  List.iter (fun (_, s) -> req.(S.node s) <- d) (G.pos g);
  for id = n - 1 downto 1 do
    if G.is_maj g id && req.(id) < max_int then
      Array.iter
        (fun s ->
          let f = S.node s in
          req.(f) <- min req.(f) (req.(id) - 1))
        (G.fanins g id)
  done;
  Array.init n (fun i -> req.(i) < max_int && lv.(i) >= req.(i))

let push_up g =
  let critical = criticality g in
  rebuild_with g (fun fresh ->
      let level = make_level_fn fresh in
      fun value _id old_fs ->
        let m = Array.map value old_fs in
        if not critical.(_id) then G.maj fresh m.(0) m.(1) m.(2)
        else begin
        let copy_level =
          1 + Array.fold_left (fun acc s -> max acc (level s)) 0 m
        in
        (* Enumerate restructurings that pull the critical grandchild
           up; each candidate is (resulting level, size penalty, build
           thunk). *)
        let candidates = ref [] in
        let add lvl pen thunk = candidates := (lvl, pen, thunk) :: !candidates in
        List.iter
          (fun (x, y, w) ->
            match G.fanins_of fresh w with
            | None -> ()
            | Some inner ->
                let lw = level w in
                if lw >= level x && lw >= level y then
                  List.iter
                    (fun (u, v, z) ->
                      let lx = level x and ly = level y in
                      let lu = level u and lv = level v and lz = level z in
                      (* Ω.D L→R: M(x,y,M(u,v,z)) =
                         M(M(x,y,u),M(x,y,v),z) *)
                      let d_lvl =
                        1 + max (max (1 + max (max lx ly) lu)
                                   (1 + max (max lx ly) lv))
                              lz
                      in
                      add d_lvl 1 (fun () ->
                          G.maj fresh
                            (G.maj fresh x y u)
                            (G.maj fresh x y v)
                            z);
                      (* Ω.A: M(x,u,M(y,u,z)) = M(z,u,M(y,u,x)) — needs
                         a shared operand between outer and inner. *)
                      List.iter
                        (fun (outer_other, shared) ->
                          List.iter
                            (fun (inner_other, inner_shared) ->
                              if S.equal shared inner_shared then begin
                                let a_lvl =
                                  1
                                  + max (max lz (level shared))
                                      (1
                                      + max
                                          (max (level inner_other)
                                             (level shared))
                                          (level outer_other))
                                in
                                add a_lvl 0 (fun () ->
                                    G.maj fresh z shared
                                      (G.maj fresh inner_other shared
                                         outer_other))
                              end;
                              (* Ψ.C: M(x,u,M(y,u',z)) = M(x,u,M(y,x,z)) *)
                              if S.equal shared (S.not_ inner_shared) then begin
                                let c_lvl =
                                  1
                                  + max
                                      (max (level outer_other) (level shared))
                                      (1
                                      + max
                                          (max (level inner_other)
                                             (level outer_other))
                                          lz)
                                in
                                add c_lvl 0 (fun () ->
                                    G.maj fresh outer_other shared
                                      (G.maj fresh inner_other outer_other z))
                              end)
                            [ (u, v); (v, u) ])
                        [ (x, y); (y, x) ])
                    (rotations inner))
          (rotations m);
        let best =
          List.fold_left
            (fun acc ((lvl, pen, _) as c) ->
              match acc with
              | Some (bl, bp, _) when (bl, bp) <= (lvl, pen) -> acc
              | _ -> Some c)
            None !candidates
        in
        match best with
        | Some (lvl, _, thunk) when lvl < copy_level ->
            Tel.count (tel g) "rewrites";
            thunk ()
        | _ -> G.maj fresh m.(0) m.(1) m.(2)
        end)

(* ----- relevance: Ψ.R ----- *)

(* Does the cone of [root] depend on node [target]?  Visits at most
   [limit] majority nodes; [None] when the budget is exceeded.

   Explicit frames (node id + next fanin index) replace the old
   recursion.  Although the memoized walk is depth-bounded by the
   budget in practice, the frame form also replicates the original
   visit order exactly: the budget decrements, memo writes and
   left-to-right short-circuit happen at the same points, so the
   (order-sensitive) budget cut-off cannot move and rewrite plans are
   unchanged. *)
let depends_within g ~limit root target =
  let memo = Hashtbl.create 32 in
  let budget = ref limit in
  let ids = Lsutil.Istack.create () in
  let ks = Lsutil.Istack.create () in
  let res = ref false in
  let overflow = ref false in
  (* evaluate [id]: sets [res], or pushes a frame for a fresh maj *)
  let eval id =
    if id = target then res := true
    else
      match Hashtbl.find_opt memo id with
      | Some d -> res := d
      | None ->
          if not (G.is_maj g id) then begin
            Hashtbl.replace memo id false;
            res := false
          end
          else begin
            decr budget;
            if !budget < 0 then overflow := true
            else begin
              Lsutil.Istack.push ids id;
              Lsutil.Istack.push ks 0;
              res := false
            end
          end
  in
  eval root;
  while (not !overflow) && not (Lsutil.Istack.is_empty ids) do
    let id = Lsutil.Istack.top ids in
    let k = Lsutil.Istack.top ks in
    if !res || k = 3 then begin
      (* short-circuit on the first dependent fanin, or all three seen *)
      Hashtbl.replace memo id !res;
      Lsutil.Istack.pop ids;
      Lsutil.Istack.pop ks
    end
    else begin
      Lsutil.Istack.pop ks;
      Lsutil.Istack.push ks (k + 1);
      eval (S.node (G.fanins g id).(k))
    end
  done;
  if !overflow then None else Some !res

(* Iterative cone rebuild with edge redirection, shared by Ψ.R and
   Ψ.S: rebuild the cone of old node [root] in [fresh], rewriting
   every edge onto node [target] through [redirect] and resolving all
   other non-maj leaves through [value].  Returns the fresh signal of
   [root]'s regular polarity.

   Stack discipline: a node stays on the stack until its first
   pending child — scanned fanin 2, 1, 0 — is done.  That completes
   child subtrees right-to-left, which is exactly the order the
   native-code compiler evaluated the [G.maj fresh (resolve fs.(0))
   (resolve fs.(1)) (resolve fs.(2))] arguments of the recursive
   version in, so node-creation order (and every numbering-sensitive
   decision downstream) is preserved.  When a node is finally built,
   all its children are memoized and [resolve] allocates nothing. *)
let subst_cone g fresh ~value ~target ~redirect root =
  let memo = Hashtbl.create 32 in
  let stack = Lsutil.Istack.create () in
  let resolve e =
    if S.node e = target then redirect e
    else S.xor_complement (Hashtbl.find memo (S.node e)) (S.is_complement e)
  in
  let pending e =
    let n = S.node e in
    if n = target || Hashtbl.mem memo n then -1 else n
  in
  Lsutil.Istack.push stack root;
  while not (Lsutil.Istack.is_empty stack) do
    Lsutil.Budget.poll (bud g);
    let nid = Lsutil.Istack.top stack in
    if Hashtbl.mem memo nid then Lsutil.Istack.pop stack
    else if not (G.is_maj g nid) then begin
      Hashtbl.replace memo nid (value (S.make nid false));
      Lsutil.Istack.pop stack
    end
    else begin
      let fs = G.fanins g nid in
      let p2 = pending fs.(2) in
      if p2 >= 0 then Lsutil.Istack.push stack p2
      else
        let p1 = pending fs.(1) in
        if p1 >= 0 then Lsutil.Istack.push stack p1
        else
          let p0 = pending fs.(0) in
          if p0 >= 0 then Lsutil.Istack.push stack p0
          else begin
            Hashtbl.replace memo nid
              (G.maj fresh (resolve fs.(0)) (resolve fs.(1)) (resolve fs.(2)));
            Lsutil.Istack.pop stack
          end
    end
  done;
  Hashtbl.find memo root

let relevance_rebuild g plan =
  rebuild_with g (fun fresh ->
      fun value id old_fs ->
        match Hashtbl.find_opt plan id with
        | None ->
            let m = Array.map value old_fs in
            G.maj fresh m.(0) m.(1) m.(2)
        | Some (x, y, z) ->
            let xv = value x and yv = value y in
            (* counted only after the [value] demands above: the
               retry-driver may re-run this constructor *)
            Tel.count (tel g) "rewrites";
            (* Rebuild the cone of z, replacing edges onto node(x):
               an edge equal to x becomes y', its complement becomes y. *)
            let redirect e =
              if S.is_complement e = S.is_complement x then S.not_ yv
              else yv
            in
            let zroot =
              subst_cone g fresh ~value ~target:(S.node x) ~redirect
                (S.node z)
            in
            let zv = S.xor_complement zroot (S.is_complement z) in
            G.maj fresh xv yv zv)

let relevance ?(cone_limit = 16) g =
  (* Plan on the old graph: node id -> (x, y, z) old fanin signals,
     meaning "rebuild the cone of z with x replaced by y'". *)
  let plan = Hashtbl.create 64 in
  (* live majs only: with fused rebuilds the input may carry dead
     speculative nodes, and planning on them would waste cone analyses
     (and, in passes that rank candidates, could change results) *)
  G.iter_live_majs g (fun id fs ->
      let found =
        List.find_map
          (fun (x, y, z) ->
            if G.is_maj g (S.node z) && S.node x <> 0 && S.node z <> S.node x
            then
              match
                depends_within g ~limit:cone_limit (S.node z) (S.node x)
              with
              | Some true -> Some (x, y, z)
              | _ -> None
            else None)
          (rotations fs)
      in
      match found with Some p -> Hashtbl.replace plan id p | None -> ());
  relevance_rebuild g plan

(* ----- substitution: Ψ.S ----- *)

(* Two most frequently referenced PIs in the bounded cone of [root];
   the first must re-converge (appear at least twice). *)
let reconvergent_pi_pair g ~limit root =
  let counts = Hashtbl.create 16 in
  let seen = Hashtbl.create 16 in
  let budget = ref limit in
  let rec go id =
    if (not (Hashtbl.mem seen id)) && G.is_maj g id && !budget >= 0 then begin
      Hashtbl.replace seen id ();
      decr budget;
      Array.iter
        (fun e ->
          let n = S.node e in
          if G.is_pi g n then
            Hashtbl.replace counts n
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts n))
          else go n)
        (G.fanins g id)
    end
  in
  go root;
  if !budget < 0 then None
  else
    let ranked =
      Hashtbl.fold (fun pi c acc -> (c, pi) :: acc) counts []
      |> List.sort (fun a b -> compare b a)
    in
    match ranked with
    | (c1, v) :: (_, u) :: _ when c1 >= 2 -> Some (v, u)
    | _ -> None

let substitution ?(max_candidates = 8) ~on_critical g =
  let lv = G.levels g in
  let d = G.depth g in
  let nodes = ref [] in
  G.iter_live_majs g (fun id _ -> nodes := id :: !nodes);
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  let chosen =
    !nodes
    |> List.filter (fun id -> (not on_critical) || lv.(id) >= d - 1)
    |> List.sort (fun a b -> compare (lv.(b), b) (lv.(a), a))
    |> take max_candidates
  in
  let plan = Hashtbl.create 8 in
  List.iter
    (fun id ->
      match reconvergent_pi_pair g ~limit:24 id with
      | Some (v, u) -> Hashtbl.replace plan id (v, u)
      | None -> ())
    chosen;
  rebuild_with g (fun fresh ->
      let level = make_level_fn fresh in
      fun value id old_fs ->
        let m = Array.map value old_fs in
        let copy = G.maj fresh m.(0) m.(1) m.(2) in
        match Hashtbl.find_opt plan id with
        | None -> copy
        | Some (v, u) ->
            let vv = value (S.make v false) and uv = value (S.make u false) in
            (* k with every edge onto v redirected to [repl] *)
            let subst_build repl =
              let redirect e = S.xor_complement repl (S.is_complement e) in
              subst_cone g fresh ~value ~target:v ~redirect id
            in
            let k_vu = subst_build uv in
            let k_vu' = subst_build (S.not_ uv) in
            (* Ψ.S: M(x,y,z) =
               M(v, M(v',k_{v/u},u), M(v',k_{v/u'},u')) *)
            let cand =
              G.maj fresh vv
                (G.maj fresh (S.not_ vv) k_vu uv)
                (G.maj fresh (S.not_ vv) k_vu' (S.not_ uv))
            in
            if level cand < level copy then begin
              Tel.count (tel g) "rewrites";
              cand
            end
            else copy)

(* ----- derived-identity rewriting: collapse AOIG patterns ----- *)

module T = Truthtable

type pattern = {
  cost : int;  (* majority nodes the replacement costs *)
  needs : int;  (* how many leaves the pattern touches *)
  build_p : G.t -> S.t array -> S.t;
}

let tt_int tt =
  let v = ref 0 in
  for m = 0 to 7 do
    if T.get_bit tt m then v := !v lor (1 lsl m)
  done;
  !v

(* Precomputed table: 3-variable function -> cheapest known MIG
   structure.  Everything here is derivable from Ω (Theorem 3.6); the
   table is how the package reaches those derivations in practice. *)
let pattern_table =
  lazy
    (let tbl : (int, pattern) Hashtbl.t = Hashtbl.create 128 in
     let v = Array.init 3 (fun i -> T.var 3 i) in
     let needs_of tt =
       let n = ref 0 in
       for i = 0 to 2 do
         if T.depends_on tt i then n := i + 1
       done;
       !n
     in
     let add tt p =
       let key = tt_int tt in
       match Hashtbl.find_opt tbl key with
       | Some old when old.cost <= p.cost -> ()
       | _ -> Hashtbl.replace tbl key { p with needs = needs_of tt }
     in
     let lit tt inv = if inv then T.not_ tt else tt in
     let sig_lit s inv = if inv then S.not_ s else s in
     (* majority of three literals *)
     for mask = 0 to 7 do
       for out = 0 to 1 do
         let l i = lit v.(i) (mask land (1 lsl i) <> 0) in
         let tt = lit (T.maj (l 0) (l 1) (l 2)) (out = 1) in
         add tt
           {
             cost = 1;
             needs = 3;
             build_p =
               (fun g leaves ->
                 let li i = sig_lit leaves.(i) (mask land (1 lsl i) <> 0) in
                 sig_lit (G.maj g (li 0) (li 1) (li 2)) (out = 1));
           }
       done
     done;
     (* three-input parity: two levels, three nodes (Fig. 2(b)) *)
     for out = 0 to 1 do
       let tt = lit (T.xor_ (T.xor_ v.(0) v.(1)) v.(2)) (out = 1) in
       add tt
         {
           cost = 3;
           needs = 3;
           build_p =
             (fun g leaves ->
               sig_lit (G.xor3 g leaves.(0) leaves.(1) leaves.(2)) (out = 1));
         }
     done;
     (* two-input parity over each leaf pair *)
     List.iter
       (fun (i, j) ->
         for out = 0 to 1 do
           let tt = lit (T.xor_ v.(i) v.(j)) (out = 1) in
           add tt
             {
               cost = 3;
               needs = max i j + 1;
               build_p =
                 (fun g leaves ->
                   sig_lit (G.xor_ g leaves.(i) leaves.(j)) (out = 1));
             }
         done)
       [ (0, 1); (0, 2); (1, 2) ];
     (* multiplexers *)
     List.iter
       (fun (s, t, e) ->
         for mask = 0 to 7 do
           for out = 0 to 1 do
             let l k inv_bit = lit v.(k) (mask land inv_bit <> 0) in
             let tt =
               lit (T.mux (l s 1) (l t 2) (l e 4)) (out = 1)
             in
             add tt
               {
                 cost = 3;
                 needs = 3;
                 build_p =
                   (fun g leaves ->
                     let li k inv_bit =
                       sig_lit leaves.(k) (mask land inv_bit <> 0)
                     in
                     sig_lit
                       (G.mux g (li s 1) (li t 2) (li e 4))
                       (out = 1));
               }
           done
         done)
       [ (0, 1, 2); (1, 0, 2); (2, 0, 1) ];
     tbl)

let rewrite_patterns ?(k = 3) ?(max_cuts = 8) ?(mode = `Depth) g =
  let tbl = Lazy.force pattern_table in
  let cuts = Cut.enumerate ~k ~max_cuts g in
  let fanout = G.fanout_counts g in
  rebuild_with g (fun fresh ->
      let level = make_level_fn fresh in
      fun value id old_fs ->
        let m = Array.map value old_fs in
        let copy = G.maj fresh m.(0) m.(1) m.(2) in
        let copy_level = level copy in
        let best = ref None in
        List.iter
          (fun cut ->
            let nleaves = Array.length cut in
            if nleaves >= 2 && not (nleaves = 1 && cut.(0) = id) then
              match Hashtbl.find_opt tbl (tt_int (Cut.cut_function g id cut)) with
              | Some p when p.needs <= nleaves ->
                  (* nodes freed by re-expressing the cone on the leaves *)
                  let freed = Cut.mffc_size g ~fanout id cut in
                  let accept lvl =
                    match mode with
                    | `Depth -> lvl < copy_level && p.cost <= freed + 1
                    | `Size ->
                        p.cost < freed
                        || (p.cost = freed && lvl < copy_level)
                  in
                  let leaves = Array.map (fun l -> value (S.make l false)) cut in
                  let s = p.build_p fresh leaves in
                  let key = (level s, p.cost) in
                  (match !best with
                  | Some (bk, _) when bk <= key -> ()
                  | _ -> if accept (level s) then best := Some (key, s))
              | _ -> ())
          cuts.(id);
        match !best with
        | Some (_, s) ->
            Tel.count (tel g) "rewrites";
            s
        | None -> copy)

(* ----- refactoring: cone resynthesis through ISOP + factoring ----- *)

(* Greedy reconvergence-driven cone, as in the AIG refactor pass:
   absorb single-fanout fanins first, stop at [max_leaves]. *)
(* Sorted-array set operations over at most [max_leaves + 3] node ids;
   the greedy selection (expand the leaf minimizing
   ((fanout = 1 ? 0 : 1), resulting cardinality), ties to the smallest
   leaf id) is exactly the one the original Set.Make-based version
   computed, without any per-candidate tree allocation. *)
let collect_cone g ~fanout ~max_leaves root =
  let slots = max_leaves + 4 in
  let leaves = Array.make slots 0 in
  let nl = ref 0 in
  let cand = Array.make slots 0 in
  let best = Array.make slots 0 in
  let ff = Array.make 3 0 in
  (* the (sorted, dedup'd, nonzero) fanin node ids of [id] into [ff] *)
  let fanin_ids id =
    let fs = G.fanins g id in
    let a = S.node fs.(0) and b = S.node fs.(1) and c = S.node fs.(2) in
    let a, b = if a <= b then (a, b) else (b, a) in
    let b, c = if b <= c then (b, c) else (c, b) in
    let a, b = if a <= b then (a, b) else (b, a) in
    let n = ref 0 in
    let push v =
      if v <> 0 && (!n = 0 || ff.(!n - 1) <> v) then begin
        ff.(!n) <- v;
        incr n
      end
    in
    push a;
    push b;
    push c;
    !n
  in
  let nf = fanin_ids root in
  Array.blit ff 0 leaves 0 nf;
  nl := nf;
  let continue_ = ref true in
  while !continue_ do
    (* score packed as (fanout flag) * 2^20 + cardinality, so an int
       compare is the lexicographic compare of the original pair *)
    let best_score = ref max_int and best_n = ref 0 in
    for li = 0 to !nl - 1 do
      let id = leaves.(li) in
      if G.is_maj g id then begin
        let nf = fanin_ids id in
        (* merge (leaves \ {id}) with ff into cand *)
        let n = ref 0 and j = ref 0 in
        let push v =
          cand.(!n) <- v;
          incr n
        in
        for i = 0 to !nl - 1 do
          if i <> li then begin
            let v = leaves.(i) in
            while !j < nf && ff.(!j) < v do
              push ff.(!j);
              incr j
            done;
            if !j < nf && ff.(!j) = v then incr j;
            push v
          end
        done;
        while !j < nf do
          push ff.(!j);
          incr j
        done;
        if !n <= max_leaves then begin
          let sc = ((if fanout.(id) = 1 then 0 else 1) lsl 20) + !n in
          if sc < !best_score then begin
            best_score := sc;
            best_n := !n;
            Array.blit cand 0 best 0 !n
          end
        end
      end
    done;
    if !best_score < max_int then begin
      Array.blit best 0 leaves 0 !best_n;
      nl := !best_n
    end
    else continue_ := false
  done;
  Array.sub leaves 0 !nl

let build_factored fresh leaves form =
  let module F = Sop.Factor in
  let rec go = function
    | F.Const b -> if b then G.const1 fresh else G.const0 fresh
    | F.Lit (i, pos) -> S.xor_complement leaves.(i) (not pos)
    | F.And fs -> (
        match List.map go fs with
        | [] -> G.const1 fresh
        | xs -> G.and_n fresh xs)
    | F.Or fs -> (
        match List.map go fs with
        | [] -> G.const0 fresh
        | xs -> G.or_n fresh xs)
  in
  go form

let refactor ?(max_leaves = 10) ?cache g =
  let fanout = G.fanout_counts g in
  let plan = Hashtbl.create 64 in
  (* ISOP + factoring + costing is a pure function of the cut's truth
     table, and cones repeat heavily across a big netlist — memoize on
     the table (forms refer to leaf indices, so a cached form is valid
     for any cut of the same function).  This exact-table memo is the
     first filter; behind it, an armed [Rwcache] handle answers by NPN
     class and persists across runs.  With no cache the pass computes
     exactly what it always did. *)
  let form_memo = Hashtbl.create 1024 in
  let compute tt = Sop.Factor.factor (Sop.Isop.compute tt) in
  let check = Lsutil.Ctx.check (G.ctx g) in
  let form_of tt =
    match Hashtbl.find_opt form_memo tt with
    | Some fc -> fc
    | None ->
        let form =
          match cache with
          | None -> compute tt
          | Some c ->
              let form, hit = Rwcache.lookup ~check c ~compute tt in
              Tel.count (tel g) (if hit then "rwcache_hits" else "rwcache_misses");
              form
        in
        let fc = (form, Aig.Rewrite.form_cost form) in
        Hashtbl.add form_memo tt fc;
        fc
  in
  G.iter_live_majs g (fun id _ ->
      let cut = collect_cone g ~fanout ~max_leaves id in
      let nleaves = Array.length cut in
      if nleaves >= 2 && nleaves <= max_leaves then begin
        let tt = Cut.cut_function g id cut in
        let freed = Cut.mffc_size g ~fanout id cut in
        (* a factored form has one 2-input gate per literal leaf
           minus one, so cost >= |support| - 1: when the MFFC
           cannot beat that bound, the expensive ISOP + factoring
           run cannot change the decision and is skipped *)
        let support = List.length (T.support tt) in
        if freed > support - 1 then begin
          let form, cost = form_of tt in
          if freed > cost then Hashtbl.replace plan id (cut, form)
        end
      end);
  let result =
    rebuild_with g (fun fresh ->
        fun value id old_fs ->
          match Hashtbl.find_opt plan id with
          | None ->
              let m = Array.map value old_fs in
              G.maj fresh m.(0) m.(1) m.(2)
          | Some (cut, form) ->
              let leaves = Array.map (fun l -> value (S.make l false)) cut in
              (* counted after the [value] demands: retry-idempotent *)
              Tel.count (tel g) "rewrites";
              build_factored fresh leaves form)
  in
  if G.size result <= G.size g then result else G.compact g

(* ----- associativity reshape: Ω.A / Ψ.C driven sharing ----- *)

(* The §IV.A reshape rationale: "locally increase the number of common
   inputs/variables to MIG nodes".  For each node of the shape
   M(x, u, M(y, u, z)) (or with u' inside, via Ψ.C) we try the swaps
   the axioms allow and keep one whose inner node *already exists* in
   the graph being built — turning a private node into a shared one
   for free. *)
let reshape_assoc g =
  rebuild_with g (fun fresh ->
      fun value _id old_fs ->
        let m = Array.map value old_fs in
        let copy () = G.maj fresh m.(0) m.(1) m.(2) in
        let candidate =
          List.find_map
            (fun (x, y, w) ->
              match G.fanins_of fresh w with
              | None -> None
              | Some inner ->
                  List.find_map
                    (fun (u, v, z) ->
                      (* treat z as the inner element to swap out *)
                      List.find_map
                        (fun (outer_other, shared) ->
                          List.find_map
                            (fun (inner_other, inner_shared) ->
                              if S.equal shared inner_shared then
                                (* Ω.A: M(x,u,M(y,u,z)) = M(z,u,M(y,u,x)) *)
                                match
                                  G.find_maj fresh inner_other shared
                                    outer_other
                                with
                                | Some existing ->
                                    Some
                                      (fun () ->
                                        G.maj fresh z shared existing)
                                | None -> None
                              else if S.equal shared (S.not_ inner_shared)
                              then
                                (* Ψ.C: M(x,u,M(y,u',z)) = M(x,u,M(y,x,z)) *)
                                match
                                  G.find_maj fresh inner_other outer_other z
                                with
                                | Some existing ->
                                    Some
                                      (fun () ->
                                        G.maj fresh outer_other shared
                                          existing)
                                | None -> None
                              else None)
                            [ (u, v); (v, u) ])
                        [ (x, y); (y, x) ])
                    (rotations inner))
            (rotations m)
        in
        match candidate with
        | Some build ->
            Tel.count (tel g) "rewrites";
            build ()
        | None -> copy ())

(* Shared immutable tables must be materialized before domains spawn:
   concurrent first [Lazy.force] of the same thunk from two domains
   raises [Lazy.Undefined] / races.  [Flow.Batch] calls this once from
   the spawning domain. *)
let prewarm () = ignore (Lazy.force pattern_table)

(* ----- telemetry wrappers -----

   Every pass reports wall-clock, nodes/depth in and out, and the
   number of rewrites it applied, as one span per invocation.  When
   [MIG_STATS] is off the wrappers reduce to a load-and-branch. *)

(* Pass-level fault injection (chaos testing).  [Corrupt] complements
   the first output in place — a structurally clean but functionally
   wrong graph that only the engine's miter can catch. *)
let fault_transform g out =
  match Lsutil.Fault.fire (flt g) "transform" with
  | None -> out
  | Some Lsutil.Fault.Corrupt ->
      if G.num_pos out > 0 then G.Unsafe.flip_po out 0;
      out
  | Some Lsutil.Fault.Raise -> raise (Lsutil.Fault.Injected "transform")
  | Some Lsutil.Fault.Exhaust -> Lsutil.Budget.exhaust (bud g)

let traced name pass g =
  let t = tel g in
  Tel.span t name (fun () ->
      Lsutil.Budget.poll (bud g);
      if Tel.enabled t then begin
        Tel.record_int t "nodes_in" (G.size g);
        Tel.record_int t "depth_in" (G.depth g)
      end;
      let out = pass g in
      let out = if Lsutil.Fault.enabled (flt g) then fault_transform g out else out in
      if Tel.enabled t then begin
        Tel.record_int t "nodes_out" (G.size out);
        Tel.record_int t "depth_out" (G.depth out)
      end;
      out)

let eliminate g = traced "transform:eliminate" eliminate g
let push_up g = traced "transform:push_up" push_up g
let relevance ?cone_limit g = traced "transform:relevance" (relevance ?cone_limit) g

let substitution ?max_candidates ~on_critical g =
  traced "transform:substitution" (substitution ?max_candidates ~on_critical) g

let rewrite_patterns ?k ?max_cuts ?mode g =
  traced "transform:rewrite_patterns" (rewrite_patterns ?k ?max_cuts ?mode) g

let refactor ?max_leaves ?cache g =
  traced "transform:refactor" (refactor ?max_leaves ?cache) g
let reshape_assoc g = traced "transform:reshape_assoc" reshape_assoc g
