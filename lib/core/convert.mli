(** Conversions between MIGs and the other representations. *)

type mig := Graph.t

val of_network : ?ctx:Lsutil.Ctx.t -> Network.Graph.t -> mig
(** Transpose a primitive network into an MIG: AND/OR become majority
    nodes with a constant third input (Theorem 3.1), XOR uses the
    two-level three-node form, MUX three nodes.  The MIG is created
    under [ctx] (default: a fresh quiet context). *)

val to_network : mig -> Network.Graph.t
(** One MAJ gate per node. *)

val of_aig : ?ctx:Lsutil.Ctx.t -> Aig.Graph.t -> mig
(** Corollary 3.2: every AIG transposes node-for-node. *)

val to_aig : mig -> Aig.Graph.t
(** Each majority node expands to four AND nodes; the AIG inherits
    the MIG's context. *)
