(** Static analysis and invariant verification for MIGs.

    The soundness story of the paper rests on every Ω/Ψ
    transformation preserving both the represented function and the
    structural invariants of {!Graph} (§III.A: normalized fanins,
    canonical strash, acyclicity).  This module re-derives those
    invariants from the stored representation — the MIG0xx rules of
    {!Check_rules} — and wraps whole passes in {!guarded}, the
    combinator every optimizer exposes behind its [?check] flag
    (default: the [MIG_CHECK] environment variable, see
    {!Check_env}). *)

val lint : ?subject:string -> Graph.t -> Check_report.t
(** Run every MIG rule:
    - [MIG001] fanins topologically ordered (acyclicity);
    - [MIG002] no dangling signal ids, consistent PI/constant slots;
    - [MIG003] strash consistency — every stored node's normalized key
      maps back to itself, no structural duplicates, no stale entries;
    - [MIG004] normalization — fanins sorted by [Signal.compare], at
      most one complemented fanin (Ω.I), not Ω.M-collapsible;
    - [MIG005] PI/PO integrity and unique names;
    - [MIG006] dead-node accounting vs {!Graph.cleanup} (warning).

    Clean iff no [Error]-severity finding. *)

val verify_pre : name:string -> Graph.t -> unit
(** The input-side half of {!guarded}: lint the graph a pass is about
    to transform, raising {!Check_guard.Failed} on violations.
    Exposed separately so callers that time the pass (e.g.
    [Flow]) can keep guard overhead out of the reported transform
    runtime. *)

val verify_post :
  ?bdd:bool ->
  ?bdd_pi_limit:int ->
  ?seed:int ->
  ?rounds:int ->
  name:string ->
  Graph.t ->
  Graph.t ->
  unit
(** The output-side half of {!guarded}: [verify_post ~name g out]
    lints [out] and miter-compares it against [g] (plus the optional
    BDD crosscheck), raising {!Check_guard.Failed} on violations. *)

val guarded :
  ?enabled:bool ->
  ?bdd:bool ->
  ?bdd_pi_limit:int ->
  ?seed:int ->
  ?rounds:int ->
  name:string ->
  (Graph.t -> Graph.t) ->
  Graph.t ->
  Graph.t
(** [guarded ~name pass g] runs [pass g] under the checker: input and
    output are linted, then miter-compared through {!Equiv} (exact
    truth tables on small PI counts, random bit-parallel simulation
    otherwise).  With [~bdd:true] an exact BDD equivalence crosscheck
    is added when the graph has at most [bdd_pi_limit] (default 24)
    PIs; a BDD blow-up silently skips the crosscheck rather than
    failing the pass.

    On any violation {!Check_guard.Failed} is raised, carrying the
    stage, the lint report and — for equivalence failures — the
    failing PO with a counterexample input vector.  [enabled] defaults
    to {!Check_env.enabled}; when false the pass runs bare. *)
