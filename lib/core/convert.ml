module N = Network.Graph
module S = Network.Signal
module G = Graph

let of_network ?ctx net =
  let g = G.create ?ctx () in
  G.reserve g (N.num_nodes net);
  let map = Array.make (N.num_nodes net) (G.const0 g) in
  List.iter (fun id -> map.(id) <- G.add_pi g (N.pi_name net id)) (N.pis net);
  let value s = S.xor_complement map.(S.node s) (S.is_complement s) in
  N.iter_gates net (fun i fn fs ->
      let v k = value fs.(k) in
      map.(i) <-
        (match fn with
        | N.And -> G.and_ g (v 0) (v 1)
        | N.Or -> G.or_ g (v 0) (v 1)
        | N.Xor -> G.xor_ g (v 0) (v 1)
        | N.Maj -> G.maj g (v 0) (v 1) (v 2)
        | N.Mux -> G.mux g (v 0) (v 1) (v 2)));
  List.iter (fun (name, s) -> G.add_po g name (value s)) (N.pos net);
  g

let to_network g =
  let net = N.create () in
  let map = Array.make (G.num_nodes g) (N.const0 net) in
  List.iter (fun id -> map.(id) <- N.add_pi net (G.pi_name g id)) (G.pis g);
  let value s = S.xor_complement map.(S.node s) (S.is_complement s) in
  (* export only the PO-reachable cone: dead majs are construction
     left-overs, not circuit *)
  G.iter_live_majs g (fun i fs ->
      map.(i) <- N.maj net (value fs.(0)) (value fs.(1)) (value fs.(2)));
  List.iter (fun (name, s) -> N.add_po net name (value s)) (G.pos g);
  net

let of_aig ?ctx a =
  let g = G.create ?ctx () in
  G.reserve g (Aig.Graph.num_nodes a);
  let map = Array.make (Aig.Graph.num_nodes a) (G.const0 g) in
  List.iter
    (fun id -> map.(id) <- G.add_pi g (Aig.Graph.pi_name a id))
    (Aig.Graph.pis a);
  let value s = S.xor_complement map.(S.node s) (S.is_complement s) in
  Aig.Graph.iter_ands a (fun i x y -> map.(i) <- G.and_ g (value x) (value y));
  List.iter (fun (name, s) -> G.add_po g name (value s)) (Aig.Graph.pos a);
  g

let to_aig g =
  let a = Aig.Graph.create ~ctx:(G.ctx g) () in
  let map = Array.make (G.num_nodes g) (Aig.Graph.const0 a) in
  List.iter (fun id -> map.(id) <- Aig.Graph.add_pi a (G.pi_name g id)) (G.pis g);
  let value s = S.xor_complement map.(S.node s) (S.is_complement s) in
  G.iter_live_majs g (fun i fs ->
      map.(i) <- Aig.Graph.maj a (value fs.(0)) (value fs.(1)) (value fs.(2)));
  List.iter (fun (name, s) -> Aig.Graph.add_po a name (value s)) (G.pos g);
  a
