module S = Network.Signal
module Vec = Lsutil.Vec
module Ih = Lsutil.Shardhash

(* Fanins live in one flat stride-3 [int array]: node [i]'s packed
   fanin signals are [fan.(3*i) .. 3*i+2].  A first slot of -1 marks a
   PI; -2 the constant node.  The statically-typed [int array] keeps
   every store a plain write (no caml_modify barrier) and one growth
   check covers all three fanins of a node. *)
type t = {
  ctx : Lsutil.Ctx.t;
  (* direct aliases into [ctx], so the hot paths pay one record load
     instead of an accessor call per probe *)
  tel : Lsutil.Telemetry.t;
  bud : Lsutil.Budget.t;
  flt : Lsutil.Fault.t;
  san : Lsutil.San.tag;
  (* the graph's sanitizer identity: an immediate no-op unless the
     ctx was created under MIG_SAN=1.  Shared with the strash and the
     PI/PO vectors, so every access path asserts the same owner. *)
  mutable fan : int array;
  mutable nn : int; (* number of nodes; 3 * nn ints of [fan] are live *)
  strash : Ih.t; (* packed (f0, f1, f2) -> id, no boxed keys; sharded
                    by hash prefix, 1 segment unless [create ~shards] *)
  names : (int, string) Hashtbl.t;
  pis_v : int Vec.t; (* PI ids, creation order *)
  po_names : string Vec.t; (* POs, creation order *)
  po_sigs : int Vec.t; (* packed signals, same indexing *)
  (* Derived-data caches, all keyed on (num_nodes, num_pos): nodes are
     append-only and fanins immutable once stored, so any derived view
     can only change when a node or PO is added.  Arrays are shared
     with callers and must not be mutated by them. *)
  mutable reach : (int * int * bool array) option;
  mutable size_nn : int;
  mutable size_np : int;
  mutable size_v : int;
  mutable levels_nn : int;
  mutable levels_np : int;
  mutable levels_v : int array;
  mutable depth_nn : int;
  mutable depth_np : int;
  mutable depth_v : int;
  mutable fanout_nn : int;
  mutable fanout_np : int;
  mutable fanout_v : int array;
}

(* Grow [fan] so at least [n] nodes fit. *)
let ensure_fan g n =
  if 3 * n > Array.length g.fan then begin
    let cap = max (3 * n) (2 * Array.length g.fan) in
    let fan = Array.make cap 0 in
    Array.blit g.fan 0 fan 0 (3 * g.nn);
    g.fan <- fan
  end

(* Append a node with fanin slots [x; y; z]; returns its id.  Charges
   one node to the owning context's [Lsutil.Budget] (a no-op
   load-and-branch when no budget is installed): the arena only ever
   grows here, so this single site enforces the max-node cap for every
   construction path. *)
let push_node g x y z =
  Lsutil.San.write_access g.san;
  Lsutil.Budget.note_nodes g.bud 1;
  let id = g.nn in
  if 3 * (id + 1) > Array.length g.fan then ensure_fan g (id + 1);
  let b = 3 * id in
  g.fan.(b) <- x;
  g.fan.(b + 1) <- y;
  g.fan.(b + 2) <- z;
  g.nn <- id + 1;
  id

let create ?ctx ?(shards = 1) () =
  let ctx = match ctx with Some c -> c | None -> Lsutil.Ctx.create () in
  let san = Lsutil.San.register (Lsutil.Ctx.san ctx) ~name:"mig.graph" in
  let g =
    {
      ctx;
      tel = Lsutil.Ctx.stats ctx;
      bud = Lsutil.Ctx.budget ctx;
      flt = Lsutil.Ctx.fault ctx;
      san;
      fan = Array.make 48 0;
      nn = 0;
      strash = Ih.create ~capacity:4096 ~shards ~san ();
      names = Hashtbl.create 64;
      pis_v = Vec.create ~san ();
      po_names = Vec.create ~san ();
      po_sigs = Vec.create ~san ();
      reach = None;
      size_nn = -1;
      size_np = -1;
      size_v = 0;
      levels_nn = -1;
      levels_np = -1;
      levels_v = [||];
      depth_nn = -1;
      depth_np = -1;
      depth_v = 0;
      fanout_nn = -1;
      fanout_np = -1;
      fanout_v = [||];
    }
  in
  ignore (push_node g (-2) (-2) (-2));
  g

let ctx g = g.ctx

let reserve g n =
  ensure_fan g n;
  Ih.reserve g.strash n

let const0 _ = S.make 0 false
let const1 _ = S.make 0 true

let add_pi g name =
  let id = push_node g (-1) (-1) (-1) in
  ignore (Vec.push g.pis_v id);
  Hashtbl.replace g.names id name;
  S.make id false

let add_po g name s =
  ignore (Vec.push g.po_names name);
  ignore (Vec.push g.po_sigs (s : S.t :> int))

(* Ω.M folding, allocation-free: the collapsed signal as an int, or
   [-1] when the majority does not collapse. *)
let fold_m_int a b c =
  if S.equal a b then (a : S.t :> int)
  else if S.equal a c then (a : S.t :> int)
  else if S.equal b c then (b : S.t :> int)
  else if S.equal a (S.not_ b) then (c : S.t :> int)
  else if S.equal a (S.not_ c) then (b : S.t :> int)
  else if S.equal b (S.not_ c) then (a : S.t :> int)
  else -1

let fold_m a b c =
  match fold_m_int a b c with -1 -> None | s -> Some (S.unsafe_of_int s)

(* Normalize fanins: Ω.I pulls the complement out when two or more
   fanins are complemented; Ω.C sorts by a branch-based 3-element
   sorting network (signal order = int order, no list, no closure).
   Continuation style so the hot path never boxes the result. *)
let[@inline] with_normalized a b c k =
  let ninv =
    (if S.is_complement a then 1 else 0)
    + (if S.is_complement b then 1 else 0)
    + if S.is_complement c then 1 else 0
  in
  let inv = ninv >= 2 in
  let a = if inv then S.not_ a else a in
  let b = if inv then S.not_ b else b in
  let c = if inv then S.not_ c else c in
  let x = (a : S.t :> int) and y = (b : S.t :> int) and z = (c : S.t :> int) in
  (* sort (x, y, z) with three compare-exchanges *)
  let x, y = if x <= y then (x, y) else (y, x) in
  let y, z = if y <= z then (y, z) else (z, y) in
  let x, y = if x <= y then (x, y) else (y, x) in
  k x y z inv

let normalize a b c =
  with_normalized a b c (fun x y z inv ->
      (S.unsafe_of_int x, S.unsafe_of_int y, S.unsafe_of_int z, inv))

let lookup g a b c =
  with_normalized a b c (fun x y z inv ->
      match Ih.find g.strash x y z with
      | -1 -> None
      | id -> Some (S.make id inv))

let find_maj g a b c =
  match fold_m_int a b c with
  | -1 -> lookup g a b c
  | s -> Some (S.unsafe_of_int s)

(* Strash-layer fault injection (chaos testing): complement the result
   (silent corruption, caught by the engine's miter), raise, or blow
   the ambient budget.  Out of line: the disarmed check in [maj] is a
   single load and branch. *)
let fault_strash g s =
  match Lsutil.Fault.fire g.flt "strash" with
  | None -> s
  | Some Lsutil.Fault.Corrupt -> S.not_ s
  | Some Lsutil.Fault.Raise -> raise (Lsutil.Fault.Injected "strash")
  | Some Lsutil.Fault.Exhaust -> Lsutil.Budget.exhaust g.bud

let maj_core g a b c =
  let folded = fold_m_int a b c in
  if folded >= 0 then begin
    Lsutil.Telemetry.count g.tel "maj.fold";
    S.unsafe_of_int folded
  end
  else begin
    (* normalization inlined: Ω.I complement extraction, then the
       branch-based Ω.C sort (signal order = int order) *)
    let ninv =
      (if S.is_complement a then 1 else 0)
      + (if S.is_complement b then 1 else 0)
      + if S.is_complement c then 1 else 0
    in
    let inv = ninv >= 2 in
    let a = if inv then S.not_ a else a in
    let b = if inv then S.not_ b else b in
    let c = if inv then S.not_ c else c in
    let x = (a : S.t :> int) and y = (b : S.t :> int) and z = (c : S.t :> int) in
    (* three compare-exchanges, written as scalar conditionals so no
       tuple is allocated on the hot path *)
    let c1 = x <= y in
    let x' = if c1 then x else y in
    let y' = if c1 then y else x in
    let c2 = y' <= z in
    let z' = if c2 then z else y' in
    let y' = if c2 then y' else z in
    let c3 = x' <= y' in
    let x = if c3 then x' else y' in
    let y = if c3 then y' else x' in
    let z = z' in
    let fresh_id = g.nn in
    let id = Ih.find_or_add g.strash x y z fresh_id in
    if id = fresh_id then begin
      Lsutil.Telemetry.count g.tel "strash.miss";
      ignore (push_node g x y z)
    end
    else Lsutil.Telemetry.count g.tel "strash.hit";
    S.make id inv
  end

let maj g a b c =
  if Lsutil.Fault.enabled g.flt then fault_strash g (maj_core g a b c)
  else maj_core g a b c

let and_ g a b = maj g a b (const0 g)
let or_ g a b = maj g a b (const1 g)

let xor_ g a b =
  (* (a+b) * !(a*b), two levels *)
  maj g (or_ g a b) (S.not_ (and_ g a b)) (const0 g)

let xor3 g x y z =
  let m = maj g x y z in
  let w = maj g x y (S.not_ z) in
  maj g (S.not_ m) w z

let mux g s t e = or_ g (and_ g s t) (and_ g (S.not_ s) e)

let rec tree op g = function
  | [] -> invalid_arg "Mig: empty tree"
  | [ x ] -> x
  | xs ->
      let rec pair = function
        | a :: b :: rest -> op g a b :: pair rest
        | rest -> rest
      in
      tree op g (pair xs)

let and_n g = function [] -> const1 g | xs -> tree and_ g xs
let or_n g = function [] -> const0 g | xs -> tree or_ g xs
let xor_n g = function [] -> const0 g | xs -> tree xor_ g xs

let num_nodes g = g.nn

let check_id g i =
  Lsutil.San.read_access g.san;
  if i < 0 || i >= g.nn then invalid_arg "Mig.Graph: node id out of bounds"

let is_pi g i =
  check_id g i;
  g.fan.(3 * i) = -1

let is_maj g i =
  check_id g i;
  g.fan.(3 * i) >= 0

let fanins g i =
  check_id g i;
  let b = 3 * i in
  [|
    S.unsafe_of_int g.fan.(b);
    S.unsafe_of_int g.fan.(b + 1);
    S.unsafe_of_int g.fan.(b + 2);
  |]

let fanins_of g s =
  let id = S.node s in
  if not (is_maj g id) then None
  else begin
    let fs = fanins g id in
    if S.is_complement s then Some (Array.map S.not_ fs) else Some fs
  end

let pis g = List.rev (Vec.fold_left (fun acc id -> id :: acc) [] g.pis_v)
let num_pis g = Vec.length g.pis_v
let num_pos g = Vec.length g.po_sigs

let pos g =
  let rec go i acc =
    if i < 0 then acc
    else
      go (i - 1)
        ((Vec.get g.po_names i, S.unsafe_of_int (Vec.get g.po_sigs i)) :: acc)
  in
  go (Vec.length g.po_names - 1) []

let iter_pos g f =
  Vec.iteri (fun i name -> f name (S.unsafe_of_int (Vec.get g.po_sigs i))) g.po_names

let pi_name g i =
  match Hashtbl.find_opt g.names i with
  | Some n when is_pi g i -> n
  | _ -> invalid_arg "Mig.pi_name: not a PI"

let iter_majs g f =
  for i = 0 to num_nodes g - 1 do
    if is_maj g i then f i (fanins g i)
  done

(* PO-reachable cone.  Dead nodes appear whenever an algebraic fold
   (Ω.M) collapses a parent after its operands were built, so metrics
   must not count allocated-but-unreachable majs — they would inflate
   size and switching activity (and skew the optimizers' cost
   comparisons mid-cycle). *)
let reachable g =
  let nn = num_nodes g in
  let np = num_pos g in
  match g.reach with
  | Some (n, p, r) when n = nn && p = np -> r
  | _ ->
      let r = Array.make (max nn 1) false in
      (* explicit-stack DFS: chain-shaped cones can be hundreds of
         thousands of nodes deep, far past the OCaml stack *)
      let stack = Lsutil.Istack.create () in
      let mark id =
        if id >= 0 && id < nn && not r.(id) then begin
          r.(id) <- true;
          Lsutil.Istack.push stack id
        end
      in
      iter_pos g (fun _ s -> mark (S.node s));
      while not (Lsutil.Istack.is_empty stack) do
        let id = Lsutil.Istack.top stack in
        Lsutil.Istack.pop stack;
        if is_maj g id then begin
          let b = 3 * id in
          mark (g.fan.(b) lsr 1);
          mark (g.fan.(b + 1) lsr 1);
          mark (g.fan.(b + 2) lsr 1)
        end
      done;
      g.reach <- Some (nn, np, r);
      r

let iter_live_majs g f =
  let r = reachable g in
  for i = 0 to num_nodes g - 1 do
    if r.(i) && is_maj g i then f i (fanins g i)
  done

let size g =
  let nn = num_nodes g and np = num_pos g in
  if g.size_nn = nn && g.size_np = np then g.size_v
  else begin
    let r = reachable g in
    let c = ref 0 in
    for i = 0 to nn - 1 do
      if r.(i) && is_maj g i then incr c
    done;
    g.size_nn <- nn;
    g.size_np <- np;
    g.size_v <- !c;
    !c
  end

let num_allocated_majs g =
  let c = ref 0 in
  iter_majs g (fun _ _ -> incr c);
  !c

let fanout_counts g =
  let nn = num_nodes g and np = num_pos g in
  if g.fanout_nn = nn && g.fanout_np = np then g.fanout_v
  else begin
    let counts = Array.make nn 0 in
    iter_live_majs g (fun _ fs ->
        Array.iter (fun s -> counts.(S.node s) <- counts.(S.node s) + 1) fs);
    iter_pos g (fun _ s -> counts.(S.node s) <- counts.(S.node s) + 1);
    g.fanout_nn <- nn;
    g.fanout_np <- np;
    g.fanout_v <- counts;
    counts
  end

let levels g =
  let nn = num_nodes g and np = num_pos g in
  if g.levels_nn = nn && g.levels_np = np then g.levels_v
  else begin
    let lv = Array.make nn 0 in
    iter_majs g (fun i fs ->
        lv.(i) <- 1 + Array.fold_left (fun acc s -> max acc lv.(S.node s)) 0 fs);
    g.levels_nn <- nn;
    g.levels_np <- np;
    g.levels_v <- lv;
    lv
  end

let depth g =
  let nn = num_nodes g and np = num_pos g in
  if g.depth_nn = nn && g.depth_np = np then g.depth_v
  else begin
    let lv = levels g in
    let d = ref 0 in
    iter_pos g (fun _ s -> if lv.(S.node s) > !d then d := lv.(S.node s));
    g.depth_nn <- nn;
    g.depth_np <- np;
    g.depth_v <- !d;
    !d
  end

(* Fast reachable-only copy for well-formed graphs (every node built
   through [maj]): the PO-DFS renumbering is then an isomorphism —
   mapped fanin triples can neither fold nor merge, and Ω.I is already
   settled (complement count is preserved) — so the whole maj/strash
   machinery reduces to a branch sort of three ints and one pre-sized
   strash insert per node.  Visits fanins in stored order, exactly
   like {!cleanup}, so the output is bit-identical to [cleanup g]. *)
let compact g =
  Lsutil.San.read_access g.san;
  let fresh = create ~ctx:g.ctx ~shards:(Ih.shards g.strash) () in
  let nn = num_nodes g in
  reserve fresh nn;
  (* the renumbering map comes from the ctx scratch pool ([-1]-filled
     up to [nn]): compact sits on the rebuild hot path, and for
     million-node graphs a fresh array per call is a majority of its
     allocation *)
  Lsutil.Ctx.with_scratch g.ctx (max nn 1) @@ fun map ->
  map.(0) <- 0;
  List.iter (fun id -> map.(id) <- S.node (add_pi fresh (pi_name g id))) (pis g);
  let fan = g.fan in
  (* Any unmapped node is a majority node: const and PIs are prefilled.
     Explicit-stack post-order (stack-safe on chain-shaped cones): a
     node stays on the stack until its first unmapped fanin is pushed
     and resolved, so subtrees complete left-to-right exactly as the
     recursive [build fa; build fb; build fc] did — node-creation
     order, and hence the output, is unchanged. *)
  let stack = Lsutil.Istack.create () in
  let build root =
    if Array.unsafe_get map root < 0 then begin
      Lsutil.Istack.push stack root;
      while not (Lsutil.Istack.is_empty stack) do
        let id = Lsutil.Istack.top stack in
        if Array.unsafe_get map id >= 0 then Lsutil.Istack.pop stack
        else begin
          let b = 3 * id in
          let fa = fan.(b) and fb = fan.(b + 1) and fc = fan.(b + 2) in
          let na = fa lsr 1 and nb = fb lsr 1 and nc = fc lsr 1 in
          if Array.unsafe_get map na < 0 then Lsutil.Istack.push stack na
          else if Array.unsafe_get map nb < 0 then Lsutil.Istack.push stack nb
          else if Array.unsafe_get map nc < 0 then Lsutil.Istack.push stack nc
          else begin
            let x = (Array.unsafe_get map na lsl 1) lor (fa land 1) in
            let y = (Array.unsafe_get map nb lsl 1) lor (fb land 1) in
            let z = (Array.unsafe_get map nc lsl 1) lor (fc land 1) in
            let c1 = x <= y in
            let x' = if c1 then x else y in
            let y' = if c1 then y else x in
            let c2 = y' <= z in
            let z' = if c2 then z else y' in
            let y' = if c2 then y' else z in
            let c3 = x' <= y' in
            let x = if c3 then x' else y' in
            let y = if c3 then y' else x' in
            let z = z' in
            let id' = push_node fresh x y z in
            Ih.add fresh.strash x y z id';
            Array.unsafe_set map id id';
            Lsutil.Istack.pop stack
          end
        end
      done
    end
  in
  iter_pos g (fun name s ->
      build (S.node s);
      add_po fresh name (S.make map.(S.node s) (S.is_complement s)));
  (* node ids of [g] do not name nodes of the renumbered result:
     generation snapshots taken before this rebuild go stale *)
  Lsutil.San.bump ~reason:"Mig.Graph.compact" g.san;
  fresh

let cleanup g =
  Lsutil.San.read_access g.san;
  let fresh = create ~ctx:g.ctx ~shards:(Ih.shards g.strash) () in
  let map = Array.make (num_nodes g) None in
  map.(0) <- Some (const0 fresh);
  List.iter (fun id -> map.(id) <- Some (add_pi fresh (pi_name g id))) (pis g);
  let lookup s =
    match map.(S.node s) with
    | Some s' -> S.xor_complement s' (S.is_complement s)
    | None -> assert false
  in
  (* explicit-stack post-order; same first-unmapped-fanin scheme as
     [compact], so the visit order matches the old recursion exactly *)
  let stack = Lsutil.Istack.create () in
  let build root =
    if map.(root) = None then begin
      Lsutil.Istack.push stack root;
      while not (Lsutil.Istack.is_empty stack) do
        let id = Lsutil.Istack.top stack in
        if map.(id) <> None then Lsutil.Istack.pop stack
        else begin
          let fs = fanins g id in
          let na = S.node fs.(0) and nb = S.node fs.(1) and nc = S.node fs.(2) in
          if map.(na) = None then Lsutil.Istack.push stack na
          else if map.(nb) = None then Lsutil.Istack.push stack nb
          else if map.(nc) = None then Lsutil.Istack.push stack nc
          else begin
            map.(id) <-
              Some (maj fresh (lookup fs.(0)) (lookup fs.(1)) (lookup fs.(2)));
            Lsutil.Istack.pop stack
          end
        end
      done
    end
  in
  iter_pos g (fun name s ->
      build (S.node s);
      add_po fresh name (lookup s));
  Lsutil.San.bump ~reason:"Mig.Graph.cleanup" g.san;
  fresh

let pp_stats fmt g =
  Format.fprintf fmt "i/o = %d/%d, majs = %d, depth = %d" (num_pis g)
    (num_pos g) (size g) (depth g)

(* ----- checker support ----- *)

let san_tag g = g.san
let strash_count g = Ih.length g.strash
let strash_shards g = Ih.shards g.strash
let strash_stats g = Ih.stats g.strash

(* Dump the strash occupancy profile (load factor, probe-length
   histogram) into the telemetry stream as counters, so any traced
   pass can expose table health without a schema change. *)
let note_strash_stats g =
  if Lsutil.Telemetry.enabled g.tel then
    List.iter
      (fun (key, n) -> Lsutil.Telemetry.count g.tel ~n key)
      (Lsutil.Inthash.stats_counters (Ih.stats g.strash))

let raw_fanins g i =
  check_id g i;
  let b = 3 * i in
  (g.fan.(b), g.fan.(b + 1), g.fan.(b + 2))

module Unsafe = struct
  let push_raw g f0 f1 f2 = push_node g f0 f1 f2

  let push_node g a b c =
    push_raw g (a : S.t :> int) (b : S.t :> int) (c : S.t :> int)

  let strash_add g (a, b, c) id =
    Ih.add g.strash (a : S.t :> int) (b : S.t :> int) (c : S.t :> int) id

  let flip_po g i =
    let v = Vec.get g.po_sigs i in
    Vec.set g.po_sigs i (v lxor 1)
end
