module S = Network.Signal
module Vec = Lsutil.Vec

(* f0 = -1 marks a PI; f0 = -2 the constant node. *)
type t = {
  f0 : int Vec.t;
  f1 : int Vec.t;
  f2 : int Vec.t;
  strash : (int * int * int, int) Hashtbl.t;
  names : (int, string) Hashtbl.t;
  mutable pi_ids : int list; (* reversed *)
  mutable po_list : (string * S.t) list; (* reversed *)
  (* PO-reachability cache, keyed on (num_nodes, num_pos): nodes are
     append-only and fanins immutable once stored, so the cone can
     only change when a node or PO is added. *)
  mutable reach : (int * int * bool array) option;
}

let create () =
  let g =
    {
      f0 = Vec.create ();
      f1 = Vec.create ();
      f2 = Vec.create ();
      strash = Hashtbl.create 4096;
      names = Hashtbl.create 64;
      pi_ids = [];
      po_list = [];
      reach = None;
    }
  in
  ignore (Vec.push g.f0 (-2));
  ignore (Vec.push g.f1 (-2));
  ignore (Vec.push g.f2 (-2));
  g

let const0 _ = S.make 0 false
let const1 _ = S.make 0 true

let add_pi g name =
  let id = Vec.push g.f0 (-1) in
  ignore (Vec.push g.f1 (-1));
  ignore (Vec.push g.f2 (-1));
  g.pi_ids <- id :: g.pi_ids;
  Hashtbl.replace g.names id name;
  S.make id false

let add_po g name s = g.po_list <- (name, s) :: g.po_list

(* Ω.M folding: returns [Some s] when the majority collapses. *)
let fold_m a b c =
  if S.equal a b then Some a
  else if S.equal a c then Some a
  else if S.equal b c then Some b
  else if S.equal a (S.not_ b) then Some c
  else if S.equal a (S.not_ c) then Some b
  else if S.equal b (S.not_ c) then Some a
  else None

(* Normalize fanins: Ω.I pulls the complement out when two or more
   fanins are complemented; Ω.C sorts.  Returns (fanins, output_inv). *)
let normalize a b c =
  let ninv =
    (if S.is_complement a then 1 else 0)
    + (if S.is_complement b then 1 else 0)
    + if S.is_complement c then 1 else 0
  in
  let a, b, c, inv =
    if ninv >= 2 then (S.not_ a, S.not_ b, S.not_ c, true) else (a, b, c, false)
  in
  let l = List.sort S.compare [ a; b; c ] in
  match l with [ a; b; c ] -> (a, b, c, inv) | _ -> assert false

let lookup g a b c =
  let a, b, c, inv = normalize a b c in
  let key = ((a : S.t :> int), (b : S.t :> int), (c : S.t :> int)) in
  match Hashtbl.find_opt g.strash key with
  | Some id -> Some (S.make id inv)
  | None -> None

let find_maj g a b c =
  match fold_m a b c with Some s -> Some s | None -> lookup g a b c

let maj g a b c =
  match fold_m a b c with
  | Some s ->
      Lsutil.Telemetry.count "maj.fold";
      s
  | None ->
      let a, b, c, inv = normalize a b c in
      let key = ((a : S.t :> int), (b : S.t :> int), (c : S.t :> int)) in
      let id =
        match Hashtbl.find_opt g.strash key with
        | Some id ->
            Lsutil.Telemetry.count "strash.hit";
            id
        | None ->
            Lsutil.Telemetry.count "strash.miss";
            let id = Vec.push g.f0 (a : S.t :> int) in
            ignore (Vec.push g.f1 (b : S.t :> int));
            ignore (Vec.push g.f2 (c : S.t :> int));
            Hashtbl.add g.strash key id;
            id
      in
      S.make id inv

let and_ g a b = maj g a b (const0 g)
let or_ g a b = maj g a b (const1 g)

let xor_ g a b =
  (* (a+b) * !(a*b), two levels *)
  maj g (or_ g a b) (S.not_ (and_ g a b)) (const0 g)

let xor3 g x y z =
  let m = maj g x y z in
  let w = maj g x y (S.not_ z) in
  maj g (S.not_ m) w z

let mux g s t e = or_ g (and_ g s t) (and_ g (S.not_ s) e)

let rec tree op g = function
  | [] -> invalid_arg "Mig: empty tree"
  | [ x ] -> x
  | xs ->
      let rec pair = function
        | a :: b :: rest -> op g a b :: pair rest
        | rest -> rest
      in
      tree op g (pair xs)

let and_n g = function [] -> const1 g | xs -> tree and_ g xs
let or_n g = function [] -> const0 g | xs -> tree or_ g xs
let xor_n g = function [] -> const0 g | xs -> tree xor_ g xs

let num_nodes g = Vec.length g.f0
let is_pi g i = Vec.get g.f0 i = -1
let is_maj g i = Vec.get g.f0 i >= 0

let fanins g i =
  [|
    S.unsafe_of_int (Vec.get g.f0 i);
    S.unsafe_of_int (Vec.get g.f1 i);
    S.unsafe_of_int (Vec.get g.f2 i);
  |]

let fanins_of g s =
  let id = S.node s in
  if not (is_maj g id) then None
  else begin
    let fs = fanins g id in
    if S.is_complement s then Some (Array.map S.not_ fs) else Some fs
  end

let pis g = List.rev g.pi_ids
let num_pis g = List.length g.pi_ids
let pos g = List.rev g.po_list
let num_pos g = List.length g.po_list

let pi_name g i =
  match Hashtbl.find_opt g.names i with
  | Some n when is_pi g i -> n
  | _ -> invalid_arg "Mig.pi_name: not a PI"

let iter_majs g f =
  for i = 0 to num_nodes g - 1 do
    if is_maj g i then f i (fanins g i)
  done

(* PO-reachable cone.  Dead nodes appear whenever an algebraic fold
   (Ω.M) collapses a parent after its operands were built, so metrics
   must not count allocated-but-unreachable majs — they would inflate
   size and switching activity (and skew the optimizers' cost
   comparisons mid-cycle). *)
let reachable g =
  let nn = num_nodes g in
  let np = List.length g.po_list in
  match g.reach with
  | Some (n, p, r) when n = nn && p = np -> r
  | _ ->
      let r = Array.make (max nn 1) false in
      let rec visit id =
        if id >= 0 && id < nn && not r.(id) then begin
          r.(id) <- true;
          if is_maj g id then
            Array.iter (fun s -> visit (S.node s)) (fanins g id)
        end
      in
      List.iter (fun (_, s) -> visit (S.node s)) g.po_list;
      g.reach <- Some (nn, np, r);
      r

let iter_live_majs g f =
  let r = reachable g in
  for i = 0 to num_nodes g - 1 do
    if r.(i) && is_maj g i then f i (fanins g i)
  done

let size g =
  let c = ref 0 in
  iter_live_majs g (fun _ _ -> incr c);
  !c

let num_allocated_majs g =
  let c = ref 0 in
  iter_majs g (fun _ _ -> incr c);
  !c

let fanout_counts g =
  let counts = Array.make (num_nodes g) 0 in
  iter_live_majs g (fun _ fs ->
      Array.iter (fun s -> counts.(S.node s) <- counts.(S.node s) + 1) fs);
  List.iter (fun (_, s) -> counts.(S.node s) <- counts.(S.node s) + 1) (pos g);
  counts

let levels g =
  let lv = Array.make (num_nodes g) 0 in
  iter_majs g (fun i fs ->
      lv.(i) <- 1 + Array.fold_left (fun acc s -> max acc lv.(S.node s)) 0 fs);
  lv

let depth g =
  let lv = levels g in
  List.fold_left (fun acc (_, s) -> max acc lv.(S.node s)) 0 (pos g)

let cleanup g =
  let fresh = create () in
  let map = Array.make (num_nodes g) None in
  map.(0) <- Some (const0 fresh);
  List.iter (fun id -> map.(id) <- Some (add_pi fresh (pi_name g id))) (pis g);
  let lookup s =
    match map.(S.node s) with
    | Some s' -> S.xor_complement s' (S.is_complement s)
    | None -> assert false
  in
  let rec build id =
    match map.(id) with
    | Some _ -> ()
    | None ->
        let fs = fanins g id in
        Array.iter (fun s -> build (S.node s)) fs;
        map.(id) <- Some (maj fresh (lookup fs.(0)) (lookup fs.(1)) (lookup fs.(2)))
  in
  List.iter
    (fun (name, s) ->
      build (S.node s);
      add_po fresh name (lookup s))
    (pos g);
  fresh

let pp_stats fmt g =
  Format.fprintf fmt "i/o = %d/%d, majs = %d, depth = %d" (num_pis g)
    (num_pos g) (size g) (depth g)

(* ----- checker support ----- *)

let strash_count g = Hashtbl.length g.strash
let raw_fanins g i = (Vec.get g.f0 i, Vec.get g.f1 i, Vec.get g.f2 i)

module Unsafe = struct
  let push_node g a b c =
    let id = Vec.push g.f0 (a : S.t :> int) in
    ignore (Vec.push g.f1 (b : S.t :> int));
    ignore (Vec.push g.f2 (c : S.t :> int));
    id

  let push_raw g f0 f1 f2 =
    let id = Vec.push g.f0 f0 in
    ignore (Vec.push g.f1 f1);
    ignore (Vec.push g.f2 f2);
    id

  let strash_add g (a, b, c) id =
    Hashtbl.add g.strash
      ((a : S.t :> int), (b : S.t :> int), (c : S.t :> int))
      id
end
