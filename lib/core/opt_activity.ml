module G = Graph

let optimize ~effort ~pi_prob g =
  Lsutil.Telemetry.record_int (Lsutil.Ctx.stats (G.ctx g)) "effort" effort;
  let act g = Activity.total ?pi_prob g in
  let cost g = (act g, G.size g) in
  (* size optimization is only a starting point: keep it only when it
     does not increase the activity being minimized *)
  let g0 = G.cleanup g in
  (* the outer guard (when on) already covers this nested run *)
  let sized = Opt_size.run ~check:false ~effort g0 in
  let best = ref (if cost sized < cost g0 then sized else g0) in
  let cur = ref !best in
  for _cycle = 1 to effort do
    Lsutil.Budget.poll (Lsutil.Ctx.budget (G.ctx g));
    cur := Transform.relevance !cur;
    cur := Transform.eliminate !cur;
    if cost !cur < cost !best then best := !cur else cur := !best;
    cur := Transform.substitution ~on_critical:false !cur;
    cur := Transform.eliminate !cur;
    if cost !cur < cost !best then best := !cur else cur := !best
  done;
  !best

let run ?check ?(effort = 2) ?pi_prob g =
  Check.guarded ?enabled:check ~name:"opt_activity"
    (Transform.traced "opt_activity" (optimize ~effort ~pi_prob))
    g
