(** MIG switching-activity optimization (§IV.C).

    Reduces (i) size, via Algorithm 1, and (ii) the switching
    probability of nodes, by accepting relevance/substitution
    reshapes only when the total activity decreases — the Fig. 2(d)
    move of trading a [p ≈ 0.5] variable for a reconvergent one with
    skewed probability. *)

val run :
  ?check:bool -> ?effort:int -> ?pi_prob:(string -> float) -> Graph.t -> Graph.t
(** [check] runs the pass under {!Check.guarded}; defaults to the
    [MIG_CHECK] environment variable. *)
