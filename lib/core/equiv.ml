let to_network_equiv ~seed g net =
  Network.Simulate.equivalent ~seed (Convert.to_network g) net

let migs ~seed a b =
  Network.Simulate.equivalent ~seed (Convert.to_network a)
    (Convert.to_network b)

let by_bdd ?(node_limit = 2_000_000) a b =
  let na = Convert.to_network a and nb = Convert.to_network b in
  let man = Bdd.Robdd.manager ~ctx:(Graph.ctx a) ~node_limit () in
  let order = Bdd.Builder.dfs_order na in
  (* align b's PIs by name to a's order *)
  let name_at = Array.map (Network.Graph.pi_name na) order in
  let order_b =
    let by_name = Hashtbl.create 64 in
    List.iter
      (fun id -> Hashtbl.replace by_name (Network.Graph.pi_name nb id) id)
      (Network.Graph.pis nb);
    Array.map
      (fun name ->
        match Hashtbl.find_opt by_name name with
        | Some id -> id
        | None -> invalid_arg "Equiv.by_bdd: PI mismatch")
      name_at
  in
  let roots_a = Bdd.Builder.of_network man ~order na in
  let roots_b = Bdd.Builder.of_network man ~order:order_b nb in
  let sort = List.sort compare in
  List.length roots_a = List.length roots_b
  && List.for_all2
       (fun (na, ba) (nb, bb) -> na = nb && ba = bb)
       (sort roots_a) (sort roots_b)
