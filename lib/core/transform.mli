(** Graph-level applications of the Ω/Ψ rules (§IV).

    Every pass rebuilds the MIG from its outputs, applying one family
    of transformations node by node; structural hashing and the Ω.M
    folding built into node creation act as the ever-running
    "majority" simplification.  Passes never change the function
    represented (each rule is an axiom or a derived theorem of the MIG
    algebra); the optimization loops measure metrics and keep or
    discard pass results. *)

type mig := Graph.t

val eliminate : mig -> mig
(** Node elimination (§IV.A): Ω.M left-to-right (via the builders)
    and distributivity Ω.D right-to-left — two fanins that are
    majority nodes sharing two operands collapse,
    [M(M(x,y,u),M(x,y,v),z) = M(x,y,M(u,v,z))].  Applied when it
    cannot increase size (children dying, or inner node shared). *)

val push_up : mig -> mig
(** Critical-variable push-up (§IV.B): per node, picks the
    depth-minimal construction among the plain copy, associativity
    Ω.A, complementary associativity Ψ.C (both free) and
    distributivity Ω.D left-to-right (one extra node), considering the
    deepest fanin as critical. *)

val relevance : ?cone_limit:int -> mig -> mig
(** Reshaping by the relevance rule Ψ.R (§IV.A):
    [M(x,y,z) = M(x,y,z_{x/y'})].  For each node and each fanin
    permutation, when the third fanin's cone re-converges onto [x]
    and the affected sub-cone is at most [cone_limit] nodes (default
    16), the cone is rebuilt with [x] replaced by [y'] — creating the
    shared-operand patterns that {!eliminate} then collapses. *)

val substitution :
  ?max_candidates:int -> on_critical:bool -> mig -> mig
(** Reshaping by the substitution rule Ψ.S (§IV.A/B): replaces a
    reconvergent pair of variables through
    [M(x,y,z) = M(v,M(v',k_{v/u},u),M(v',k_{v/u'},u'))], temporarily
    inflating the MIG.  Applied to at most [max_candidates] nodes
    (default 8), on critical-path nodes only when [on_critical]. *)

val rewrite_patterns :
  ?k:int -> ?max_cuts:int -> ?mode:[ `Depth | `Size ] -> mig -> mig
(** Derived-identity rewriting: small cuts whose function is a
    majority, parity or multiplexer of their leaves collapse to the
    known-optimal MIG structure (e.g. an AOIG carry
    [ab + c(a+b)] becomes the single node [M(a,b,c)], a cascaded
    parity becomes the two-level form of Fig. 2(b)).  Every rewrite is
    a theorem of the Ω system (Theorem 3.6); the pass is how the
    package reaches those derivations in practice, and is what makes
    the AOIG-to-MIG transposition of Fig. 1 automatic.  In [`Depth]
    mode (default) a rewrite must lower the node's level without
    costing more than one node beyond the logic it frees; in [`Size]
    mode it must strictly free nodes. *)

val refactor : ?max_leaves:int -> ?cache:Rwcache.t -> mig -> mig
(** Boolean resynthesis: collapse a reconvergence-driven cone (up to
    [max_leaves] leaves, default 10) to a truth table, re-factor it
    through ISOP + algebraic division, and rebuild it with AND/OR
    majority nodes when that frees more nodes than it costs.  This is
    the "interlacing with other optimization methods" the paper's
    SIV.A anticipates for size recovery; never returns a larger
    graph.

    With [?cache], the ISOP + factoring step consults the NPN-keyed
    {!Rwcache} handle first (and records misses into its delta);
    cached forms are localized through the class transform, so results
    are identical whether an entry was computed this run or served
    from a warm store.  When the graph's context has checking on,
    cache hits are re-validated against the cut function before
    use. *)

val reshape_assoc : mig -> mig
(** Sharing-driven reshaping with Ω.A and Ψ.C (the §IV.A rationale of
    "locally increasing the number of common inputs"): a swap is
    applied only when the rewritten inner node already exists, so a
    private node is replaced by a shared one.  Never increases size
    after sweeping. *)

val traced : string -> (mig -> mig) -> mig -> mig
(** [traced name pass g] runs [pass g] inside a telemetry span that
    records nodes/depth in → out (the instrumentation every pass
    above already carries; exposed for the optimization loops and
    external passes). *)

val prewarm : unit -> unit
(** Force the lazily-built shared pattern table.  Call once from the
    spawning domain before running transforms concurrently in several
    domains ([Flow.Batch] does): a first [Lazy.force] racing across
    domains is unsound in OCaml 5. *)
