(* Cross-run rewrite cache: cut function -> factored replacement,
   keyed by the full NPN-canonical truth table of the cut's
   support-shrunk function (DESIGN.md §15).

   Layering follows Lsutil.Memo's read-mostly model: an immutable
   [base] snapshot shared by every domain in a batch, plus a private
   delta per handle merged deterministically afterwards.  The stored
   value is the factored form of the *canonical* table; each lookup
   localizes it back through the NPN transform (variable map + input
   phases + output complement), so one entry serves the whole NPN
   class. *)

module Tt = Truthtable
module F = Sop.Factor
module J = Lsutil.Json

type base = F.form Lsutil.Memo.base

type t = {
  memo : F.form Lsutil.Memo.t;
  (* semiclass-representative -> canonical table + transform: the
     Gray-code semiclass is cheap, the n!-orbit canonizer is not, and
     every member of a negation class shares its canonical image. *)
  canon_memo : (string, Tt.t * Tt.npn) Hashtbl.t;
  mutable rejected : int;
}

let section = "npn"
let key_of tt = Printf.sprintf "%d:%s" (Tt.nvars tt) (Tt.to_hex tt)

let empty_base () : base = Lsutil.Memo.empty_base ()
let fork base = { memo = Lsutil.Memo.fork base; canon_memo = Hashtbl.create 64; rejected = 0 }
let delta t = Lsutil.Memo.delta t.memo
let merge = Lsutil.Memo.merge
let base_size = Lsutil.Memo.base_size
let hits t = Lsutil.Memo.hits t.memo
let misses t = Lsutil.Memo.misses t.memo
let rejected t = t.rejected
let delta_size t = Lsutil.Memo.delta_size t.memo

(* ----- forms as truth tables (validation) ----- *)

let form_tt ~nvars form =
  let rec go = function
    | F.Const b -> if b then Tt.const1 nvars else Tt.const0 nvars
    | F.Lit (i, pos) ->
        let v = Tt.var nvars i in
        if pos then v else Tt.not_ v
    | F.And fs -> List.fold_left (fun acc f -> Tt.and_ acc (go f)) (Tt.const1 nvars) fs
    | F.Or fs -> List.fold_left (fun acc f -> Tt.or_ acc (go f)) (Tt.const0 nvars) fs
  in
  go form

(* De Morgan negation: preserves the literal count, hence the MIG
   construction cost of the form. *)
let rec neg_form = function
  | F.Const b -> F.Const (not b)
  | F.Lit (i, pos) -> F.Lit (i, not pos)
  | F.And fs -> F.Or (List.map neg_form fs)
  | F.Or fs -> F.And (List.map neg_form fs)

(* ----- lookup ----- *)

(* tr1 : s -> rep (identity permutation), tr2 : rep -> canon.
   canon = (o1 xor o2)(permute (flips s (m1 lxor m2)) p2). *)
let compose_npn (tr1 : Tt.npn) (tr2 : Tt.npn) : Tt.npn =
  {
    perm = tr2.perm;
    phase = tr1.phase lxor tr2.phase;
    out_neg = tr1.out_neg <> tr2.out_neg;
    exact = tr2.exact;
  }

let canon_of t rep =
  let k = key_of rep in
  match Hashtbl.find_opt t.canon_memo k with
  | Some r -> r
  | None ->
      let r = Tt.npn_canon rep in
      Hashtbl.add t.canon_memo k r;
      r

(* Localize a form over canonical variables back to the original
   table's variable indices: canonical variable [perm.(j)] is support
   variable [j], i.e. original variable [vars.(j)], negated when phase
   bit [j] is set; the output is complemented last. *)
let localize ~vars (tr : Tt.npn) cform =
  let k = Array.length vars in
  let leaf_var = Array.make k 0 and leaf_neg = Array.make k false in
  for j = 0 to k - 1 do
    leaf_var.(tr.perm.(j)) <- vars.(j);
    leaf_neg.(tr.perm.(j)) <- tr.phase land (1 lsl j) <> 0
  done;
  let rec go = function
    | F.Const b -> F.Const b
    | F.Lit (y, pos) -> F.Lit (leaf_var.(y), if leaf_neg.(y) then not pos else pos)
    | F.And fs -> F.And (List.map go fs)
    | F.Or fs -> F.Or (List.map go fs)
  in
  let form = go cform in
  if tr.out_neg then neg_form form else form

let lookup ?(check = false) t ~compute tt =
  let s, vars = Tt.shrink tt in
  if Array.length vars = 0 then (F.Const (Tt.get_bit tt 0), false)
  else begin
    let rep, tr1 = Tt.npn_semiclass_t s in
    let canon, tr2 = canon_of t rep in
    let tr = compose_npn tr1 tr2 in
    let key = key_of canon in
    let cform, hit =
      match Lsutil.Memo.find t.memo key with
      | Some f -> (f, true)
      | None ->
          let f = compute canon in
          Lsutil.Memo.add t.memo key f;
          (f, false)
    in
    let form = localize ~vars tr cform in
    if check && hit && not (Tt.equal (form_tt ~nvars:(Tt.nvars tt) form) tt) then begin
      (* a poisoned entry must never reach the graph: fall back to a
         fresh ISOP + factoring run on the original table *)
      t.rejected <- t.rejected + 1;
      (compute tt, false)
    end
    else (form, hit)
  end

(* ----- JSON (de)serialization -----

   A form is encoded compactly: Bool for constants, a signed 1-based
   Int for literals (negative = complemented), and a tagged list
   ["&", ...] / ["|", ...] for gates.  The section is a list of
   [key, form] pairs sorted by key. *)

let rec form_to_json = function
  | F.Const b -> J.Bool b
  | F.Lit (i, pos) -> J.Int (if pos then i + 1 else -(i + 1))
  | F.And fs -> J.List (J.String "&" :: List.map form_to_json fs)
  | F.Or fs -> J.List (J.String "|" :: List.map form_to_json fs)

let rec form_of_json = function
  | J.Bool b -> Some (F.Const b)
  | J.Int i when i <> 0 -> Some (F.Lit (abs i - 1, i > 0))
  | J.List (J.String (("&" | "|") as tag) :: rest) ->
      let kids = List.filter_map form_of_json rest in
      if List.length kids <> List.length rest then None
      else Some (if tag = "&" then F.And kids else F.Or kids)
  | _ -> None

let parse_key k =
  match String.index_opt k ':' with
  | None -> None
  | Some i -> (
      let n = String.sub k 0 i and hex = String.sub k (i + 1) (String.length k - i - 1) in
      match int_of_string_opt n with
      | Some nv when nv >= 0 && nv <= 16 -> (
          match Tt.of_hex nv hex with
          | tt -> Some (nv, tt)
          | exception Invalid_argument _ -> None)
      | _ -> None)

(* An entry is kept only when its form provably evaluates back to the
   table its key names — the store is self-validating, so a stale or
   hand-edited file degrades to a (partial) cold cache instead of
   poisoning results. *)
let entry_of_json = function
  | J.List [ J.String key; fj ] -> (
      match (parse_key key, form_of_json fj) with
      | Some (nv, tt), Some form -> (
          match Tt.equal (form_tt ~nvars:nv form) tt with
          | true -> Some (key, form)
          | false -> None
          | exception Invalid_argument _ -> None)
      | _ -> None)
  | _ -> None

let base_to_json (b : base) =
  J.List
    (List.map
       (fun (k, f) -> J.List [ J.String k; form_to_json f ])
       (Lsutil.Memo.base_to_list b))

let base_of_json = function
  | J.List entries -> Lsutil.Memo.base_of_list (List.filter_map entry_of_json entries)
  | _ -> Lsutil.Memo.empty_base ()
