module S = Network.Signal
module G = Graph

let probabilities ?(pi_prob = fun _ -> 0.5) g =
  let p = Array.make (G.num_nodes g) 0.0 in
  let value s =
    let v = p.(S.node s) in
    if S.is_complement s then 1.0 -. v else v
  in
  for i = 0 to G.num_nodes g - 1 do
    if G.is_pi g i then p.(i) <- pi_prob (G.pi_name g i)
    else if G.is_maj g i then begin
      let fs = G.fanins g i in
      let a = value fs.(0) and b = value fs.(1) and c = value fs.(2) in
      p.(i) <- (a *. b) +. (a *. c) +. (b *. c) -. (2.0 *. a *. b *. c)
    end
  done;
  p

let node_activity p = p *. (1.0 -. p)

(* Sum over the PO-reachable cone only: dead majs left behind by
   construction-time folds never switch a real wire, and counting
   them skews the activity optimizer's cost comparisons. *)
let total ?pi_prob g =
  let p = probabilities ?pi_prob g in
  let acc = ref 0.0 in
  G.iter_live_majs g (fun i _ -> acc := !acc +. node_activity p.(i));
  !acc
