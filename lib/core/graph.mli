(** Majority-Inverter Graphs.

    The paper's data structure: a homogeneous DAG whose every node is
    the three-input majority function, with regular/complemented
    edges (§III.A).  Node 0 is the constant 0; AND and OR are majority
    nodes with one constant input (Theorem 3.1).

    Node creation is normalized:
    - the trivial cases of the majority axiom Ω.M fold away
      ([M(x,x,z) = x], [M(x,x',z) = z]);
    - inverter propagation Ω.I keeps at most one complemented fanin
      per node, pushing parity to the output edge;
    - fanins are sorted (Ω.C), and structural hashing shares equal
      nodes.

    Signals are {!Network.Signal.t} values. *)

type t

module S := Network.Signal

val create : ?ctx:Lsutil.Ctx.t -> ?shards:int -> unit -> t
(** A fresh empty graph.  The graph carries its execution context:
    telemetry counting, budget charging and strash-site fault
    injection all run against [ctx]'s services.  Defaults to a fresh
    quiet [Lsutil.Ctx.create ()] — no telemetry, no budget, no
    faults — so plain library use pays only the disabled-path
    load-and-branch per probe.

    [shards] (default 1, rounded up to a power of two) splits the
    structural-hash table into that many independent segments keyed by
    hash prefix ({!Lsutil.Shardhash}).  Lookup results are identical
    at any shard count — a key's segment is a pure function of the
    key — so sharding is purely a concurrency/locality knob.
    {!compact} and [Transform] rebuilds preserve the shard count. *)

val ctx : t -> Lsutil.Ctx.t
(** The context the graph was created under.  Derived graphs
    ({!cleanup}, {!compact}, [Transform] rebuilds) inherit it. *)

val reserve : t -> int -> unit
(** [reserve g n] pre-sizes the node arrays and structural-hash table
    for [n] nodes, so building up to that many triggers no growth or
    rehashing.  A hint only: the graph still grows past [n]. *)

(** {1 Construction} *)

val const0 : t -> S.t
val const1 : t -> S.t
val add_pi : t -> string -> S.t
val add_po : t -> string -> S.t -> unit

val maj : t -> S.t -> S.t -> S.t -> S.t
val and_ : t -> S.t -> S.t -> S.t
(** [and_ g a b = maj g a b 0] (Theorem 3.1). *)

val or_ : t -> S.t -> S.t -> S.t
(** [or_ g a b = maj g a b 1]. *)

val xor_ : t -> S.t -> S.t -> S.t
(** Three majority nodes, two levels. *)

val xor3 : t -> S.t -> S.t -> S.t -> S.t
(** [xor3 g x y z = M(M(x,y,z)', M(x,y,z'), z)]: three nodes, two
    levels — the optimized representation of Fig. 2(b). *)

val mux : t -> S.t -> S.t -> S.t -> S.t
val and_n : t -> S.t list -> S.t
val or_n : t -> S.t list -> S.t
val xor_n : t -> S.t list -> S.t

val find_maj : t -> S.t -> S.t -> S.t -> S.t option
(** Structural-hash lookup (after normalization) without insertion. *)

(** {1 Access} *)

val num_nodes : t -> int
val size : t -> int
(** Number of PO-reachable majority nodes.  Allocated-but-dead nodes
    (left behind by Ω.M folds during construction) are not counted —
    [size g = size (cleanup g)] always holds.  Cached, like every
    derived metric here: the graph is append-only, so caches key on
    [(num_nodes, num_pos)] and recompute only after a node or PO is
    added. *)

val num_allocated_majs : t -> int
(** Number of allocated majority nodes, dead ones included (what
    {!size} reported before reachability-aware metrics). *)

val reachable : t -> bool array
(** [reachable g] marks the PO-reachable cone, indexed by node id.
    Cached: recomputed only after a node or PO is added.  Callers must
    not mutate the returned array. *)

val is_pi : t -> int -> bool
val is_maj : t -> int -> bool
val fanins : t -> int -> S.t array
(** The three fanins of a majority node. *)

val fanins_of : t -> S.t -> S.t array option
(** Fanins seen through a signal: for a complemented signal onto a
    majority node, the fanins are returned complemented (Ω.I view:
    [M'(x,y,z) = M(x',y',z')]).  [None] on PIs and constants. *)

val pis : t -> int list
val num_pis : t -> int
(** O(1): counts are maintained on insertion, not recomputed. *)

val pos : t -> (string * S.t) list
val num_pos : t -> int
(** O(1). *)

val iter_pos : t -> (string -> S.t -> unit) -> unit
(** POs in creation order, without building a list. *)

val pi_name : t -> int -> string
val iter_majs : t -> (int -> S.t array -> unit) -> unit
(** Every allocated majority node, reachable or not. *)

val iter_live_majs : t -> (int -> S.t array -> unit) -> unit
(** Only the PO-reachable majority nodes. *)

val fanout_counts : t -> int array
(** Fanout per node, counting edges from PO-reachable majority nodes
    and the POs themselves; edges out of dead nodes do not count.
    Cached and shared — callers must not mutate the returned array. *)

(** {1 Metrics}

    All cached on the graph, invalidated by the append-only
    [(num_nodes, num_pos)] key (see {!size}). *)

val levels : t -> int array
(** Level per node id (0 for PIs/constant).  Shared — do not
    mutate. *)

val depth : t -> int

(** {1 Transformation} *)

val cleanup : t -> t
(** Reachable-only copy; all PIs preserved in order. *)

val compact : t -> t
(** Fast path for {!cleanup} on well-formed graphs (every node built
    through {!maj}): the copy is then a pure renumbering, so folding,
    Ω.I extraction and strash probing are all skipped.  Bit-identical
    to [cleanup g] on such graphs; on graphs touched by {!Unsafe} use
    {!cleanup}, which re-normalizes. *)

val pp_stats : Format.formatter -> t -> unit

(** {1 Checker support}

    Raw introspection for {!Check}: enough visibility to audit the
    representation without widening the ordinary construction API. *)

val fold_m : S.t -> S.t -> S.t -> S.t option
(** The trivial cases of the majority axiom Ω.M: [Some s] when
    [M(a,b,c)] collapses to an existing signal. *)

val normalize : S.t -> S.t -> S.t -> S.t * S.t * S.t * bool
(** The stored form of a fanin triple: Ω.I complement extraction then
    the branch-based Ω.C sort.  Exposed for differential testing
    against a reference implementation. *)

val strash_count : t -> int
(** Number of entries in the structural-hashing table.  Equal to
    {!num_allocated_majs} on a well-formed graph. *)

val strash_shards : t -> int
(** Segment count of the structural-hash table (1 unless the graph was
    built with [create ~shards]). *)

val strash_stats : t -> Lsutil.Inthash.stats
(** Aggregated occupancy of the strash (load factor, probe-length
    histogram) across all segments.  O(capacity). *)

val note_strash_stats : t -> unit
(** Record {!strash_stats} as telemetry counters
    ([strash.entries], [strash.load_pct], [strash.probe_<k>], ...) on
    the innermost open span; a no-op when telemetry is disabled. *)

val san_tag : t -> Lsutil.San.tag
(** The graph's sanitizer tag.  Snapshot/validate it to guard node
    ids across {!compact}/{!cleanup} renumbering, or publish/transfer
    it for cross-domain handoff; an immediate no-op when the
    sanitizer is off. *)

val raw_fanins : t -> int -> int * int * int
(** The three raw fanin slots of a node: signal integers for majority
    nodes, [-1] markers for PIs, [-2] for the constant node. *)

module Unsafe : sig
  (** Invariant-bypassing mutators, for the checker's test-suite (to
      inject deliberately malformed graphs) and low-level importers.
      None of them fold, normalize or hash — a graph touched by this
      module is only trustworthy again once {!Check.lint} passes. *)

  val push_node : t -> S.t -> S.t -> S.t -> int
  (** Append a majority node with exactly these fanins; no strash
      entry is created. *)

  val push_raw : t -> int -> int -> int -> int
  (** Append a node with raw slot values (e.g. inconsistent PI
      markers). *)

  val strash_add : t -> S.t * S.t * S.t -> int -> unit
  (** Add a strash binding for an arbitrary key/node pair. *)

  val flip_po : t -> int -> unit
  (** Complement the [i]-th output in place: a structurally legal but
      functionally wrong graph.  Used by [Lsutil.Fault]'s [Corrupt]
      kind — such silent corruption must be caught by the engine's
      miter check, never by structure-only lint. *)
end
