(** MIG depth optimization — Algorithm 2 of the paper.

    Each effort cycle pushes critical variables towards the outputs
    (Ω.M, Ω.D left-to-right, Ω.A, Ψ.C), reshapes away from local
    minima (Ψ.R, Ψ.S on critical nodes) and pushes up again.  The
    paper's §V flow interlaces size recovery; [run] does so with an
    {!Opt_size} elimination pass per cycle.  The best graph seen
    (smallest depth, size as tie-break) is returned. *)

val run :
  ?check:bool ->
  ?effort:int ->
  ?size_recovery:bool ->
  ?cache:Rwcache.t ->
  Graph.t ->
  Graph.t
(** [run ?effort g] (default effort 4, size recovery on).  [check]
    runs the pass under {!Check.guarded}; defaults to the [MIG_CHECK]
    environment variable.  [cache] is handed to the size-recovery
    refactoring steps (see {!Transform.refactor}). *)
