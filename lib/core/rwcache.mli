(** Cross-run rewrite cache: cut function → factored replacement.

    Entries are keyed by the full NPN-canonical truth table of the
    cut's support-shrunk function ({!Truthtable.npn_canon}), so one
    stored form serves every cut in the same NPN class; each {!lookup}
    localizes the canonical form back through the class transform
    (variable map, input phases, output complement).

    Sharing follows {!Lsutil.Memo}: an immutable {!base} snapshot that
    all [Flow.Batch] domains read concurrently, and a private handle
    ({!fork}) per optimization run whose {!delta} is merged back
    deterministically.  The on-disk representation is one section
    (named {!section}) of the [Lsutil.Memo] store envelope; entries
    are self-validating on load — a form that does not evaluate back
    to its key's table is dropped. *)

type base
(** Immutable snapshot, safe to share across domains. *)

type t
(** Private handle: snapshot + delta + counters.  One per run. *)

val empty_base : unit -> base
val fork : base -> t

val lookup :
  ?check:bool ->
  t ->
  compute:(Truthtable.t -> Sop.Factor.form) ->
  Truthtable.t ->
  Sop.Factor.form * bool
(** [lookup t ~compute tt] returns a factored form *over [tt]'s
    variable indices* equivalent to [tt], and whether it was served
    from the cache.  On miss, [compute] is called on the canonical
    table and the result is recorded in the handle's delta.  With
    [~check:true] a hit is re-evaluated as a truth table first; a
    mismatching (poisoned) entry is rejected and recomputed from [tt]
    directly. *)

val delta : t -> (string * Sop.Factor.form) list
(** New entries recorded through this handle, sorted by key. *)

val merge : base -> (string * Sop.Factor.form) list list -> base
(** Fold deltas into a fresh snapshot (first writer wins, list order —
    see {!Lsutil.Memo.merge}). *)

val base_size : base -> int
val delta_size : t -> int
val hits : t -> int
val misses : t -> int

val rejected : t -> int
(** Poisoned hits rejected by [~check:true] lookups. *)

(** {1 Persistence} *)

val section : string
(** Section name (["npn"]) inside the [mighty-cache/1] envelope. *)

val base_to_json : base -> Lsutil.Json.t
val base_of_json : Lsutil.Json.t -> base
(** Tolerant: entries that fail to parse or to evaluate back to their
    key's table are silently dropped. *)

(** {1 Forms as functions} *)

val form_tt : nvars:int -> Sop.Factor.form -> Truthtable.t
(** Evaluate a form over [nvars] variables.  Raises [Invalid_argument]
    if the form mentions a variable outside [0..nvars-1]. *)

val key_of : Truthtable.t -> string
(** ["<nvars>:<hex>"] — the store key of a (canonical) table. *)
