(** MIG size optimization — Algorithm 1 of the paper.

    Each effort cycle runs elimination (Ω.M left-to-right and Ω.D
    right-to-left), then reshaping (Ω.A/Ψ.C inside the push-up pass,
    relevance Ψ.R, substitution Ψ.S), then elimination again.  The
    best graph seen (fewest nodes, depth as tie-break) is returned, so
    the result is never worse than the input. *)

val run : ?check:bool -> ?effort:int -> ?cache:Rwcache.t -> Graph.t -> Graph.t
(** [run ?effort g] (default effort 2).  [check] runs the pass under
    {!Check.guarded} (pre/post lint + simulation miter); it defaults
    to the [MIG_CHECK] environment variable.  [cache] is handed to the
    Boolean-refactoring step (see {!Transform.refactor}). *)
