module G = Graph

let cost g = (G.depth g, G.size g)

let better a b = cost a < cost b

(* Iterate a pass to a fixpoint on depth, bounded. *)
let saturate pass g ~max_iter =
  let cur = ref g in
  let continue_ = ref true in
  let iter = ref 0 in
  while !continue_ && !iter < max_iter do
    Lsutil.Budget.poll (Lsutil.Ctx.budget (G.ctx g));
    incr iter;
    let next = pass !cur in
    if G.depth next < G.depth !cur then cur := next else continue_ := false
  done;
  !cur

let optimize ~effort ~size_recovery ?cache g =
  Lsutil.Telemetry.record_int (Lsutil.Ctx.stats (G.ctx g)) "effort" effort;
  let best = ref (G.cleanup g) in
  let original_depth = G.depth !best in
  let cur = ref !best in
  for _cycle = 1 to effort do
    Lsutil.Budget.poll (Lsutil.Ctx.budget (G.ctx g));
    (* derived-identity rewriting: transpose AOIG structures into
       native majority/parity forms before pushing up *)
    cur := Transform.rewrite_patterns !cur;
    cur := Transform.rewrite_patterns !cur;
    if better !cur !best then best := !cur;
    (* push-up *)
    cur := saturate Transform.push_up !cur ~max_iter:8;
    if better !cur !best then best := !cur;
    (* reshape *)
    cur := Transform.relevance !cur;
    cur := Transform.substitution ~on_critical:true !cur;
    (* push-up again *)
    cur := saturate Transform.push_up !cur ~max_iter:8;
    (* light size recovery every cycle: elimination keeps the depth
       gains and trims what push-up duplicated *)
    let trimmed = Transform.eliminate !cur in
    if G.depth trimmed <= G.depth !cur then cur := trimmed;
    if better !cur !best then best := !cur else cur := !best
  done;
  (* final size-recovery phase ("interlaced with size recovery",
     SV.A.1): Boolean refactoring may trade at most one level for a
     clearly smaller graph *)
  if size_recovery then begin
    let keep_depth pass g =
      let t = pass g in
      if G.depth t <= G.depth g then t else g
    in
    cur := keep_depth (Transform.rewrite_patterns ~mode:`Size) !best;
    cur := keep_depth Transform.eliminate !cur;
    let refactored = Transform.eliminate (Transform.refactor ?cache !cur) in
    if
      G.depth refactored <= G.depth !cur
      || (G.depth refactored <= G.depth !cur + 1
         && float_of_int (G.size refactored)
            <= 0.9 *. float_of_int (G.size !cur))
      || (G.depth refactored <= G.depth !cur + 2
         && float_of_int (G.size refactored)
            <= 0.75 *. float_of_int (G.size !cur))
    then cur := refactored;
    (* then keep compressing as long as depth holds *)
    for _i = 1 to 3 do
      cur := keep_depth (Transform.rewrite_patterns ~mode:`Size) !cur;
      cur := keep_depth (Transform.refactor ?cache) !cur;
      cur := keep_depth Transform.eliminate !cur
    done;
    if
      cost !cur < cost !best
      || (G.depth !cur <= min original_depth (G.depth !best + 1)
         && G.size !cur < G.size !best)
    then best := !cur
  end;
  !best

let run ?check ?(effort = 4) ?(size_recovery = true) ?cache g =
  Check.guarded ?enabled:check ~name:"opt_depth"
    (Transform.traced "opt_depth" (optimize ~effort ~size_recovery ?cache))
    g
