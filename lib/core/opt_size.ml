module G = Graph

let cost g = (G.size g, G.depth g)

let better a b = cost a < cost b

let optimize ~effort ?cache g =
  Lsutil.Telemetry.record_int (Lsutil.Ctx.stats (G.ctx g)) "effort" effort;
  let best = ref (G.cleanup g) in
  let cur = ref !best in
  for _cycle = 1 to effort do
    Lsutil.Budget.poll (Lsutil.Ctx.budget (G.ctx g));
    (* collapse AOIG patterns into majority nodes, then eliminate *)
    cur := Transform.rewrite_patterns ~mode:`Size !cur;
    if better !cur !best then best := !cur;
    (* eliminate *)
    cur := Transform.eliminate !cur;
    if better !cur !best then best := !cur;
    (* reshape *)
    cur := Transform.reshape_assoc !cur;
    cur := Transform.relevance !cur;
    cur := Transform.substitution ~on_critical:false !cur;
    (* eliminate *)
    cur := Transform.eliminate !cur;
    cur := Transform.eliminate !cur;
    if better !cur !best then best := !cur;
    (* Boolean size recovery *)
    cur := Transform.refactor ?cache !cur;
    cur := Transform.eliminate !cur;
    if better !cur !best then best := !cur
    else
      (* restart the next cycle from the best known point *)
      cur := !best
  done;
  !best

let run ?check ?(effort = 2) ?cache g =
  Check.guarded ?enabled:check ~name:"opt_size"
    (Transform.traced "opt_size" (optimize ~effort ?cache))
    g
