module G = Graph
module S = Network.Signal

type t = int array

(* Merge sorted duplicate-free arrays. *)
let merge2 a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (la + lb) 0 in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  let push v =
    out.(!k) <- v;
    incr k
  in
  while !i < la && !j < lb do
    if a.(!i) < b.(!j) then (push a.(!i); incr i)
    else if a.(!i) > b.(!j) then (push b.(!j); incr j)
    else (push a.(!i); incr i; incr j)
  done;
  while !i < la do push a.(!i); incr i done;
  while !j < lb do push b.(!j); incr j done;
  Array.sub out 0 !k

let enumerate ~k ~max_cuts g =
  let n = G.num_nodes g in
  let budget = Lsutil.Ctx.budget (G.ctx g) in
  let reach = G.reachable g in
  let cuts : t list array = Array.make n [] in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  for i = 0 to n - 1 do
    Lsutil.Budget.poll budget;
    if i = 0 then cuts.(i) <- [ [||] ]
    else if G.is_pi g i then cuts.(i) <- [ [| i |] ]
    else if not reach.(i) then
      (* dead majs (speculative left-overs of a fused rebuild) keep no
         cuts: nothing ever asks for them, and the k-feasible merge
         below is the expensive part of the pass *)
      cuts.(i) <- []
    else begin
      let fs = G.fanins g i in
      let merged =
        Array.fold_left
          (fun acc s ->
            List.concat_map
              (fun m ->
                List.filter_map
                  (fun c ->
                    let u = merge2 m c in
                    if Array.length u <= k then Some u else None)
                  cuts.(S.node s))
              acc)
          [ [||] ] fs
      in
      let dedup =
        List.sort_uniq compare merged
        |> List.sort (fun x y -> compare (Array.length x) (Array.length y))
      in
      cuts.(i) <- [| i |] :: take (max_cuts - 1) dedup
    end
  done;
  cuts

let cut_function g root cut =
  let module T = Truthtable in
  let nv = max 3 (Array.length cut) in
  let memo = Hashtbl.create 32 in
  Array.iteri (fun idx leaf -> Hashtbl.replace memo leaf (T.var nv idx)) cut;
  let rec go id =
    match Hashtbl.find_opt memo id with
    | Some tt -> tt
    | None ->
        if id = 0 then T.const0 nv
        else begin
          assert (G.is_maj g id);
          let fs = G.fanins g id in
          let value s =
            let tt = go (S.node s) in
            if S.is_complement s then T.not_ tt else tt
          in
          let tt = T.maj (value fs.(0)) (value fs.(1)) (value fs.(2)) in
          Hashtbl.replace memo id tt;
          tt
        end
  in
  go root

let cone g root cut =
  let in_cut = Hashtbl.create 8 in
  Array.iter (fun l -> Hashtbl.replace in_cut l ()) cut;
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let rec go id =
    if
      (not (Hashtbl.mem in_cut id))
      && (not (Hashtbl.mem seen id))
      && G.is_maj g id
    then begin
      Hashtbl.replace seen id ();
      acc := id :: !acc;
      Array.iter (fun s -> go (S.node s)) (G.fanins g id)
    end
  in
  go root;
  !acc

let mffc_size g ~fanout root cut =
  let nodes = cone g root cut in
  let nodes = List.sort (fun a b -> compare b a) nodes in
  let mffc = Hashtbl.create 16 in
  let refs = Hashtbl.create 16 in
  let bump id =
    Hashtbl.replace refs id (1 + Option.value ~default:0 (Hashtbl.find_opt refs id))
  in
  List.iter
    (fun id ->
      let inside =
        id = root
        || Option.value ~default:0 (Hashtbl.find_opt refs id) = fanout.(id)
      in
      if inside then begin
        Hashtbl.replace mffc id ();
        Array.iter (fun s -> bump (S.node s)) (G.fanins g id)
      end)
    nodes;
  Hashtbl.length mffc
