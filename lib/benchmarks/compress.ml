module N = Network.Graph
module S = Network.Signal

let clog2 n =
  let rec go acc v = if v >= n then acc else go (acc + 1) (v * 2) in
  go 0 1

let byte net name = Array.init 8 (fun b -> N.add_pi net (Printf.sprintf "%s_%d" name b))

let eq8 net a b =
  let diffs = Array.to_list (Array.map2 (fun x y -> N.xor_ net x y) a b) in
  S.not_ (N.or_n net diffs)

(* add a 1-bit condition into a small accumulator (ripple increment) *)
let add_bit net acc cond =
  let carry = ref cond in
  Array.map
    (fun a ->
      let s = N.xor_ net a !carry in
      carry := N.and_ net a !carry;
      s)
    acc

let create ~window =
  let net = N.create () in
  let syms = Array.init window (fun i -> byte net (Printf.sprintf "s%d" i)) in
  let dict = Array.init 16 (fun i -> N.add_pi net (Printf.sprintf "dk%d" i)) in
  let score_bits = clog2 (window + 1) in
  (* per offset: score = number of positions where the window matches
     itself shifted by the offset (run-length flavour) *)
  let scores =
    Array.init (window - 1) (fun off ->
        let off = off + 1 in
        let acc = ref (Array.make score_bits (N.const0 net)) in
        for i = 0 to window - 1 - off do
          let m = eq8 net syms.(i) syms.(i + off) in
          (* dictionary gating: offsets hash against the dictionary key *)
          let g = N.and_ net m (S.xor_complement dict.((i + off) mod 16) (off land 1 = 0)) in
          acc := add_bit net !acc g
        done;
        !acc)
  in
  (* best score: tournament of unsigned comparisons *)
  let greater_eq a b =
    (* a >= b, MSB-first ripple *)
    let ge = ref (N.const1 net) in
    for i = 0 to Array.length a - 1 do
      let agtb = N.and_ net a.(i) (S.not_ b.(i)) in
      let eq = S.not_ (N.xor_ net a.(i) b.(i)) in
      ge := N.or_ net agtb (N.and_ net eq !ge)
    done;
    !ge
  in
  let best = ref scores.(0) in
  let best_flags =
    Array.init (window - 1) (fun _ -> ref (N.const0 net))
  in
  best_flags.(0) := N.const1 net;
  for o = 1 to window - 2 do
    let better = greater_eq scores.(o) !best in
    best := Array.map2 (fun n o -> N.mux net better n o) scores.(o) !best;
    for p = 0 to o - 1 do
      best_flags.(p) := N.and_ net !(best_flags.(p)) (S.not_ better)
    done;
    best_flags.(o) := better
  done;
  (* outputs: best score, a literal mask, and the per-offset flags *)
  Array.iteri (fun i s -> N.add_po net (Printf.sprintf "score%d" i) s) !best;
  let mask =
    Array.init 8 (fun b ->
        let bits =
          Array.to_list (Array.init window (fun i -> syms.(i).(b)))
        in
        N.xor_n net bits)
  in
  Array.iteri (fun b s -> N.add_po net (Printf.sprintf "mask%d" b) s) mask;
  Array.iteri
    (fun o f -> N.add_po net (Printf.sprintf "off%d" o) !f)
    best_flags;
  N.cleanup net

let approx_nodes ~window =
  (* eq8 ~ 23 gates per pair; accumulator ~ 2*score_bits per pair *)
  let pairs = window * (window - 1) / 2 in
  pairs * (23 + (2 * clog2 (window + 1)))

(* ----- million-node stress instance, built straight into a MIG -----

   The network route above goes quadratic in [window] and then pays a
   full flatten + convert before any MIG exists; for region-parallel
   stress runs we want multi-million-node graphs in seconds, so this
   builder emits majority nodes directly.  A 48-bit LCG (no [Random]
   state) drives the op mix, so two builds of the same size are
   identical node for node. *)

module M = Mig.Graph

let lcg_mul = 25214903917
let lcg_inc = 11
let lcg_mask = (1 lsl 48) - 1

let mix st =
  st := ((!st * lcg_mul) + lcg_inc) land lcg_mask;
  !st lsr 16

let stress_width = 256

let stress ?ctx ?(shards = 1) ~nodes () =
  let g = M.create ?ctx ~shards () in
  M.reserve g nodes;
  let width = stress_width in
  let bus = Array.init width (fun i -> M.add_pi g (Printf.sprintf "x%d" i)) in
  let st = ref 0x5eed in
  let taps = ref [] in
  let layer = ref 0 in
  while M.num_nodes g < nodes do
    incr layer;
    let prev = Array.copy bus in
    for i = 0 to width - 1 do
      let a = prev.(i)
      and b = prev.((i + 1) mod width)
      and c = prev.((i + (!layer mod 7) + 2) mod width) in
      bus.(i) <-
        (match mix st mod 6 with
        | 0 -> M.maj g a b c
        | 1 -> M.xor_ g a b
        | 2 -> M.mux g a b c
        | 3 -> M.maj g a b (S.not_ c)
        | 4 ->
            (* redundant by absorption — a cone the Ω-axiom passes can
               collapse, so the per-region optimizers have real work *)
            M.and_ g a (M.or_ g a b)
        | _ -> M.xor3 g a b c)
    done;
    (* periodic taps keep interior cones live once the tail layers
       shadow them, so cleanup cannot shrink the graph under [nodes] *)
    if !layer mod 8 = 0 then taps := bus.(mix st mod width) :: !taps
  done;
  Array.iteri (fun i s -> M.add_po g (Printf.sprintf "y%d" i) s) bus;
  List.iteri (fun i s -> M.add_po g (Printf.sprintf "t%d" i) s) !taps;
  g
