(** The large "logic compression circuit" of §V.A.2.

    An LZ-style match-finding datapath: a window of 8-bit symbols is
    compared all-against-all, match runs are scored with small adders
    and the best offset is priority-encoded into the output mask.
    The node count grows quadratically with the window, so the
    paper's ~0.3 M-node instance is [create ~window:110] while the
    default benchmark run uses a scaled window. *)

val create : window:int -> Network.Graph.t
(** [create ~window] has [8*window + 16] inputs and [8 + clog2 window
    + window] outputs. *)

val approx_nodes : window:int -> int
(** Rough pre-optimization node-count estimate, to pick a window. *)

val stress :
  ?ctx:Lsutil.Ctx.t -> ?shards:int -> nodes:int -> unit -> Mig.Graph.t
(** [stress ~nodes ()] builds a majority graph of at least [nodes]
    nodes directly (no network flatten/convert step), deterministic
    node for node for a given [nodes].  A 256-wide bus of PIs is
    mixed layer by layer with an LCG-chosen blend of MAJ/XOR/MUX
    cones, including deliberately redundant absorption patterns so
    the Ω-axiom optimizers have genuine work in every region.
    [shards] is forwarded to {!Mig.Graph.create} for the sharded
    strash. *)
