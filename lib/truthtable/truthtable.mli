(** Bit-packed truth tables.

    A truth table over [n] variables stores [2^n] bits, packed into
    64-bit words.  Variable [0] is the fastest-toggling input column.
    Truth tables are immutable values; all operators return fresh
    tables.  Two tables can only be combined when they are declared
    over the same number of variables. *)

type t

(** {1 Construction} *)

val nvars : t -> int
(** Number of variables the table is declared over. *)

val const0 : int -> t
(** [const0 n] is the all-false function on [n] variables. *)

val const1 : int -> t
(** [const1 n] is the all-true function on [n] variables. *)

val var : int -> int -> t
(** [var n i] is the projection of variable [i] on [n] variables.
    Raises [Invalid_argument] unless [0 <= i < n]. *)

val of_bits : int -> (int -> bool) -> t
(** [of_bits n f] builds the table whose minterm [m] is [f m]. *)

val of_hex : int -> string -> t
(** [of_hex n s] parses a hexadecimal function encoding, most
    significant minterm first (as printed by {!to_hex}). *)

(** {1 Boolean operators} *)

val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val xor_ : t -> t -> t
val nand_ : t -> t -> t
val nor_ : t -> t -> t
val xnor_ : t -> t -> t
val maj : t -> t -> t -> t
(** [maj a b c] is the three-input majority [ab + ac + bc]. *)

val mux : t -> t -> t -> t
(** [mux s t e] is [if s then t else e]. *)

(** {1 Queries} *)

val equal : t -> t -> bool
val is_const0 : t -> bool
val is_const1 : t -> bool
val get_bit : t -> int -> bool
(** [get_bit tt m] is the value of minterm [m]. *)

val count_ones : t -> int
(** Number of true minterms. *)

val depends_on : t -> int -> bool
(** [depends_on tt i] is [true] iff variable [i] is in the true
    support of the function. *)

val support : t -> int list
(** Variables in the true support, ascending. *)

(** {1 Cofactors and decomposition} *)

val cofactor0 : t -> int -> t
(** [cofactor0 tt i] is the negative cofactor with respect to
    variable [i]; the result still ranges over [nvars tt] variables. *)

val cofactor1 : t -> int -> t

(** {1 Variable manipulation} *)

val swap_adjacent : t -> int -> t
(** [swap_adjacent t i] exchanges the roles of variables [i] and
    [i+1]. *)

val permute : t -> int array -> t
(** [permute t p] relabels variables: old variable [j] becomes new
    variable [p.(j)].  [p] must be a permutation of [0..n-1]. *)

val flip_var : t -> int -> t
(** [flip_var t i] composes with the negation of input [i].
    Implemented with word-level shifts/swaps, not a bit-by-bit
    rebuild. *)

(** {1 NPN canonization} *)

type npn = {
  perm : int array;  (** old variable [j] becomes variable [perm.(j)] *)
  phase : int;  (** bit [j] set = input [j] negated before permuting *)
  out_neg : bool;  (** output complemented last *)
  exact : bool;  (** [true] when the full NPN orbit was searched *)
}
(** A transform taking a table to its canonical representative:
    [canon = (out_neg ? not_ : id) (permute (flips t phase) perm)].
    Equivalently, for leaves [L] of the original function, building the
    canonical function over leaves [Y] with
    [Y.(perm.(j)) = (phase bit j ? not L.(j) : L.(j))] and negating the
    result when [out_neg] reproduces [t] applied to [L]. *)

val npn_apply : t -> npn -> t
(** Apply a transform (flip inputs, permute, complement output). *)

val npn_canon : t -> t * npn
(** Canonical representative of the table's NPN class: the
    hex-lexicographically smallest table reachable by input negations,
    input permutations and output negation.  Exact (full orbit) for up
    to 6 variables; beyond that it falls back to the negation-only
    semiclass ([exact = false] in the transform). *)

val npn_key : t -> string
(** [to_hex (fst (npn_canon t))] — the cache key. *)

val npn_semiclass : t -> string
(** Canonical hex key under input and output negations (identity
    permutation) — a lightweight NPN-style class identifier, computed
    with a Gray-code single-flip walk.  Useful as a fast pre-filter in
    front of {!npn_canon}. *)

val npn_semiclass_t : t -> t * npn
(** Like {!npn_semiclass} but returns the representative table and the
    transform reaching it (identity permutation). *)

val shrink : t -> t * int array
(** [shrink t] is [(s, vars)] where [s] ranges over exactly the true
    support of [t]: [vars] lists the original variable indices,
    ascending, and [s]'s variable [i] plays the role of [t]'s variable
    [vars.(i)]. *)

(** {1 Printing} *)

val to_hex : t -> string
(** Hexadecimal encoding, most significant minterm first. *)

val to_binary : t -> string
(** Binary encoding, minterm [2^n - 1] first. *)

val pp : Format.formatter -> t -> unit
