type t = { nvars : int; words : int64 array }

let nvars t = t.nvars

(* Number of 64-bit words needed for [n] variables. *)
let word_count n = if n <= 6 then 1 else 1 lsl (n - 6)

(* Mask for the valid bits of the (single) word when [n <= 6]. *)
let tail_mask n =
  if n >= 6 then -1L else Int64.sub (Int64.shift_left 1L (1 lsl n)) 1L

let normalize t =
  if t.nvars < 6 then begin
    let m = tail_mask t.nvars in
    { t with words = [| Int64.logand t.words.(0) m |] }
  end
  else t

let const0 n =
  assert (n >= 0 && n <= 24);
  { nvars = n; words = Array.make (word_count n) 0L }

let const1 n =
  assert (n >= 0 && n <= 24);
  normalize { nvars = n; words = Array.make (word_count n) (-1L) }

(* Periodic masks for variables living inside a single word. *)
let var_masks =
  [|
    0xAAAAAAAAAAAAAAAAL;
    0xCCCCCCCCCCCCCCCCL;
    0xF0F0F0F0F0F0F0F0L;
    0xFF00FF00FF00FF00L;
    0xFFFF0000FFFF0000L;
    0xFFFFFFFF00000000L;
  |]

let var n i =
  if i < 0 || i >= n then invalid_arg "Truthtable.var";
  let words = Array.make (word_count n) 0L in
  if i < 6 then Array.fill words 0 (Array.length words) var_masks.(i)
  else begin
    let period = 1 lsl (i - 6) in
    for w = 0 to Array.length words - 1 do
      if w land period <> 0 then words.(w) <- -1L
    done
  end;
  normalize { nvars = n; words }

let get_bit t m =
  let w = m lsr 6 and b = m land 63 in
  Int64.logand (Int64.shift_right_logical t.words.(w) b) 1L <> 0L

let of_bits n f =
  let words = Array.make (word_count n) 0L in
  for m = 0 to (1 lsl n) - 1 do
    if f m then
      words.(m lsr 6) <-
        Int64.logor words.(m lsr 6) (Int64.shift_left 1L (m land 63))
  done;
  { nvars = n; words }

let map2 op a b =
  if a.nvars <> b.nvars then invalid_arg "Truthtable: arity mismatch";
  { nvars = a.nvars; words = Array.map2 op a.words b.words }

let not_ t = normalize { t with words = Array.map Int64.lognot t.words }
let and_ = map2 Int64.logand
let or_ = map2 Int64.logor
let xor_ = map2 Int64.logxor
let nand_ a b = not_ (and_ a b)
let nor_ a b = not_ (or_ a b)
let xnor_ a b = not_ (xor_ a b)

let maj a b c = or_ (or_ (and_ a b) (and_ a c)) (and_ b c)
let mux s t e = or_ (and_ s t) (and_ (not_ s) e)

let equal a b = a.nvars = b.nvars && a.words = b.words
let is_const0 t = equal t (const0 t.nvars)
let is_const1 t = equal t (const1 t.nvars)

let popcount64 x =
  let x = Int64.sub x (Int64.logand (Int64.shift_right_logical x 1) 0x5555555555555555L) in
  let x =
    Int64.add
      (Int64.logand x 0x3333333333333333L)
      (Int64.logand (Int64.shift_right_logical x 2) 0x3333333333333333L)
  in
  let x = Int64.logand (Int64.add x (Int64.shift_right_logical x 4)) 0x0F0F0F0F0F0F0F0FL in
  Int64.to_int (Int64.shift_right_logical (Int64.mul x 0x0101010101010101L) 56)

let count_ones t = Array.fold_left (fun acc w -> acc + popcount64 w) 0 t.words

let cofactor_gen keep_hi t i =
  if i < 0 || i >= t.nvars then invalid_arg "Truthtable.cofactor";
  if i < 6 then begin
    let mask = var_masks.(i) and shift = 1 lsl i in
    let words =
      Array.map
        (fun w ->
          if keep_hi then
            let hi = Int64.logand w mask in
            Int64.logor hi (Int64.shift_right_logical hi shift)
          else
            let lo = Int64.logand w (Int64.lognot mask) in
            Int64.logor lo (Int64.shift_left lo shift))
        t.words
    in
    normalize { t with words }
  end
  else begin
    let period = 1 lsl (i - 6) in
    let words =
      Array.mapi
        (fun w _ ->
          let src = if keep_hi then w lor period else w land lnot period in
          t.words.(src))
        t.words
    in
    { t with words }
  end

let cofactor0 t i = cofactor_gen false t i
let cofactor1 t i = cofactor_gen true t i

let depends_on t i = not (equal (cofactor0 t i) (cofactor1 t i))

let support t =
  let rec go i = if i >= t.nvars then [] else if depends_on t i then i :: go (i + 1) else go (i + 1) in
  go 0

let to_binary t =
  let n = 1 lsl t.nvars in
  String.init n (fun k -> if get_bit t (n - 1 - k) then '1' else '0')

let to_hex t =
  let digits = max 1 ((1 lsl t.nvars) / 4) in
  let buf = Buffer.create digits in
  for d = digits - 1 downto 0 do
    let v = ref 0 in
    for b = 3 downto 0 do
      let m = (d * 4) + b in
      if m < 1 lsl t.nvars && get_bit t m then v := !v lor (1 lsl b)
    done;
    Buffer.add_char buf "0123456789abcdef".[!v]
  done;
  Buffer.contents buf

let of_hex n s =
  let digits = max 1 ((1 lsl n) / 4) in
  if String.length s <> digits then invalid_arg "Truthtable.of_hex: length";
  let nibble c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Truthtable.of_hex: digit"
  in
  of_bits n (fun m ->
      let d = m / 4 in
      let v = nibble s.[digits - 1 - d] in
      v land (1 lsl (m land 3)) <> 0)

let pp fmt t = Format.fprintf fmt "0x%s" (to_hex t)

let swap_adjacent t i =
  (* exchange variables i and i+1 *)
  if i < 0 || i + 1 >= t.nvars then invalid_arg "Truthtable.swap_adjacent";
  of_bits t.nvars (fun m ->
      let bi = (m lsr i) land 1 and bj = (m lsr (i + 1)) land 1 in
      let m' =
        m land lnot ((1 lsl i) lor (1 lsl (i + 1)))
        lor (bj lsl i) lor (bi lsl (i + 1))
      in
      get_bit t m')

let permute t perm =
  if Array.length perm <> t.nvars then invalid_arg "Truthtable.permute";
  of_bits t.nvars (fun m ->
      (* old variable j reads the new minterm's bit perm.(j) *)
      let src = ref 0 in
      for j = 0 to t.nvars - 1 do
        if (m lsr perm.(j)) land 1 = 1 then src := !src lor (1 lsl j)
      done;
      get_bit t !src)

let flip_var t i =
  if i < 0 || i >= t.nvars then invalid_arg "Truthtable.flip_var";
  if i < 6 then begin
    let mask = var_masks.(i) and shift = 1 lsl i in
    let words =
      Array.map
        (fun w ->
          Int64.logor
            (Int64.shift_right_logical (Int64.logand w mask) shift)
            (Int64.shift_left (Int64.logand w (Int64.lognot mask)) shift))
        t.words
    in
    normalize { t with words }
  end
  else begin
    let period = 1 lsl (i - 6) in
    { t with words = Array.mapi (fun w _ -> t.words.(w lxor period)) t.words }
  end

(* [to_hex] prints the most significant minterm first, so hex-string
   lexicographic order over equal-arity tables coincides with unsigned
   numeric order of the words, scanned from the last word down. *)
let word_lt a b =
  let rec go i =
    if i < 0 then false
    else
      let c = Int64.unsigned_compare a.words.(i) b.words.(i) in
      if c <> 0 then c < 0 else go (i - 1)
  in
  go (Array.length a.words - 1)

let ntz k =
  let rec go k i = if k land 1 = 1 then i else go (k lsr 1) (i + 1) in
  go k 0

type npn = { perm : int array; phase : int; out_neg : bool; exact : bool }

let npn_apply t tr =
  let flipped = ref t in
  for i = 0 to t.nvars - 1 do
    if tr.phase land (1 lsl i) <> 0 then flipped := flip_var !flipped i
  done;
  let p = permute !flipped tr.perm in
  if tr.out_neg then not_ p else p

(* Smallest table reachable from [t] by input/output negations, as a
   Gray-code walk: each step re-flips exactly one variable of the
   running table, so the whole scan costs O(2^n) single-flip passes
   instead of rebuilding every candidate from scratch. *)
let min_under_negations t =
  let bt = ref t and bm = ref 0 and bo = ref false in
  let consider c mask out =
    if word_lt c !bt then begin
      bt := c;
      bm := mask;
      bo := out
    end
  in
  consider (not_ t) 0 true;
  let cur = ref t and gray = ref 0 in
  for k = 1 to (1 lsl t.nvars) - 1 do
    let i = ntz k in
    cur := flip_var !cur i;
    gray := !gray lxor (1 lsl i);
    consider !cur !gray false;
    consider (not_ !cur) !gray true
  done;
  (!bt, !bm, !bo)

let identity_perm n = Array.init n (fun i -> i)

let npn_semiclass_t t =
  let rep, mask, out = min_under_negations t in
  (rep, { perm = identity_perm t.nvars; phase = mask; out_neg = out; exact = t.nvars <= 1 })

let npn_semiclass t =
  let rep, _ = npn_semiclass_t t in
  to_hex rep

(* All permutations of [0..n-1], generated in a deterministic order so
   canonical transforms are stable across runs. *)
let permutations n =
  let rec insert x = function
    | [] -> [ [ x ] ]
    | y :: ys as l -> (x :: l) :: List.map (fun r -> y :: r) (insert x ys)
  in
  let rec go i = if i >= n then [ [] ] else List.concat_map (insert i) (go (i + 1)) in
  List.map Array.of_list (go 0)

let npn_exact_max = 6

let npn_canon t =
  let n = t.nvars in
  if n > npn_exact_max then
    (* Exhaustive NPN needs n! * 2^(n+1) candidates; past 6 inputs fall
       back to the negation-only semiclass (identity permutation). *)
    npn_semiclass_t t
  else begin
    let best = ref None in
    List.iter
      (fun p ->
        let tp = permute t p in
        let rep, mask, out = min_under_negations tp in
        match !best with
        | Some (bt, _) when not (word_lt rep bt) -> ()
        | _ ->
            (* [mask] negates permuted variables; permuted variable
               [p.(j)] is original variable [j]. *)
            let phase = ref 0 in
            for j = 0 to n - 1 do
              if mask land (1 lsl p.(j)) <> 0 then phase := !phase lor (1 lsl j)
            done;
            best := Some (rep, { perm = p; phase = !phase; out_neg = out; exact = true }))
      (permutations n);
    match !best with
    | Some r -> r
    | None -> assert false
  end

let npn_key t = to_hex (fst (npn_canon t))

let shrink t =
  let vars = Array.of_list (support t) in
  let k = Array.length vars in
  let s =
    of_bits k (fun m ->
        let src = ref 0 in
        for i = 0 to k - 1 do
          if (m lsr i) land 1 = 1 then src := !src lor (1 lsl vars.(i))
        done;
        get_bit t !src)
  in
  (s, vars)
