module G = Network.Graph
module S = Network.Signal

type result = {
  area : float;
  delay : float;
  power : float;
  cell_counts : (string * int) list;
}

type entry = {
  cell : Cells.t;
  pins : int array;  (* leaf slot driving each cell pin *)
  phases : bool array;  (* pin polarity: true = inverted leaf *)
}

(* Key: the 8-bit truth table over three leaf slots. *)
let tt_to_int tt =
  let v = ref 0 in
  for m = 0 to 7 do
    if Truthtable.get_bit tt m then v := !v lor (1 lsl m)
  done;
  !v

(* All injective assignments of [arity] cell pins to the 3 leaf slots. *)
let pin_assignments arity =
  let slots = [ 0; 1; 2 ] in
  let rec pick n avail =
    if n = 0 then [ [] ]
    else
      List.concat_map
        (fun s ->
          List.map (fun rest -> s :: rest)
            (pick (n - 1) (List.filter (( <> ) s) avail)))
        avail
  in
  List.map Array.of_list (pick arity slots)

let match_table lib =
  let tbl : (int, entry list) Hashtbl.t = Hashtbl.create 256 in
  let add key e =
    let cur = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
    Hashtbl.replace tbl key (e :: cur)
  in
  List.iter
    (fun (cell : Cells.t) ->
      List.iter
        (fun pins ->
          for mask = 0 to (1 lsl cell.arity) - 1 do
            let phases =
              Array.init cell.arity (fun p -> mask land (1 lsl p) <> 0)
            in
            (* truth table over the 3 slots *)
            let key = ref 0 in
            for m = 0 to 7 do
              let pin_minterm = ref 0 in
              for p = 0 to cell.arity - 1 do
                let v = m land (1 lsl pins.(p)) <> 0 in
                let v = if phases.(p) then not v else v in
                if v then pin_minterm := !pin_minterm lor (1 lsl p)
              done;
              if Truthtable.get_bit cell.tt !pin_minterm then
                key := !key lor (1 lsl m)
            done;
            add !key { cell; pins; phases }
          done)
        (pin_assignments cell.arity))
    lib;
  tbl

type choice =
  | Source  (* PI or constant: free *)
  | Inverter  (* INV from the opposite phase *)
  | Match of Netcut.t * entry

let map_network_internal ?ctx ?(lib = Cells.full) ?pi_prob net =
  let ctx = match ctx with Some c -> c | None -> Lsutil.Ctx.create () in
  let bud = Lsutil.Ctx.budget ctx and flt = Lsutil.Ctx.fault ctx in
  (* decompose the subject graph into 2-input primitives: cut matching
     can then cover majority/parity structures with MAJ-3/XOR-2 cells
     when the library has them, and with NAND/NOR logic when not *)
  let net = G.cleanup (G.flatten_aoig net) in
  let inv = Cells.find lib "INV" in
  let tbl = match_table lib in
  let n = G.num_nodes net in
  let cuts = Netcut.enumerate ~k:3 ~max_cuts:10 net in
  let fanout = G.fanout_counts net in
  let arrival = Array.make_matrix n 2 infinity in
  (* area flow: estimated area of the cone divided among fanouts —
     the usual overlap-aware tie-breaker for DAG covering *)
  let aflow = Array.make_matrix n 2 infinity in
  let chosen = Array.make_matrix n 2 Source in
  let relax id ph arr af ch =
    if
      arr < arrival.(id).(ph) -. 1e-12
      || (arr < arrival.(id).(ph) +. 1e-12 && af < aflow.(id).(ph) -. 1e-12)
    then begin
      arrival.(id).(ph) <- arr;
      aflow.(id).(ph) <- af;
      chosen.(id).(ph) <- ch
    end
  in
  G.iter_nodes net (fun id nd ->
      Lsutil.Budget.poll bud;
      (* mapper fault site: matching has no meaningful silent
         corruption, so [Corrupt] degrades to a raise *)
      (if Lsutil.Fault.enabled flt then
         match Lsutil.Fault.fire flt "mapper" with
         | None -> ()
         | Some Lsutil.Fault.Exhaust -> Lsutil.Budget.exhaust bud
         | Some _ -> raise (Lsutil.Fault.Injected "mapper"));
      match nd with
      | G.Const0 | G.Pi _ ->
          relax id 0 0.0 0.0 Source;
          relax id 1 inv.delay inv.area Inverter
      | G.Gate (_, _) ->
          List.iter
            (fun cut ->
              if not (Array.length cut = 1 && cut.(0) = id) then begin
                let f = tt_to_int (Netcut.cut_function net id cut) in
                List.iter
                  (fun (ph, key) ->
                    List.iter
                      (fun e ->
                        (* all pins must address existing leaves *)
                        let ok =
                          Array.for_all
                            (fun slot -> slot < Array.length cut)
                            e.pins
                        in
                        if ok then begin
                          let arr = ref 0.0 and af = ref e.cell.Cells.area in
                          Array.iteri
                            (fun p slot ->
                              let leaf = cut.(slot) in
                              let lph = if e.phases.(p) then 1 else 0 in
                              arr := Float.max !arr arrival.(leaf).(lph);
                              af :=
                                !af
                                +. aflow.(leaf).(lph)
                                   /. float_of_int (max 1 fanout.(leaf)))
                            e.pins;
                          relax id ph (!arr +. e.cell.delay) !af
                            (Match (cut, e))
                        end)
                      (Option.value ~default:[] (Hashtbl.find_opt tbl key))
                  )
                  [ (0, f); (1, f lxor 0xff) ]
              end)
            cuts.(id);
          (* polarity fix-up through an inverter *)
          relax id 0 (arrival.(id).(1) +. inv.delay)
            (aflow.(id).(1) +. inv.area) Inverter;
          relax id 1 (arrival.(id).(0) +. inv.delay)
            (aflow.(id).(0) +. inv.area) Inverter);
  (* --- cover extraction --- *)
  let probs = Network.Metrics.probabilities ?pi_prob net in
  let needed = Hashtbl.create 256 in
  let area = ref 0.0 and power = ref 0.0 in
  let counts = Hashtbl.create 16 in
  let instantiate (cell : Cells.t) node_id =
    area := !area +. cell.area;
    let p = probs.(node_id) in
    power := !power +. (cell.energy *. p *. (1.0 -. p) *. 2.0);
    Hashtbl.replace counts cell.name
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts cell.name))
  in
  let rec require id ph =
    if not (Hashtbl.mem needed (id, ph)) then begin
      Hashtbl.replace needed (id, ph) ();
      match chosen.(id).(ph) with
      | Source -> ()
      | Inverter ->
          instantiate inv id;
          require id (1 - ph)
      | Match (cut, e) ->
          instantiate e.cell id;
          Array.iteri
            (fun p slot ->
              require cut.(slot) (if e.phases.(p) then 1 else 0))
            e.pins
    end
  in
  let delay = ref 0.0 in
  List.iter
    (fun (_, s) ->
      let id = S.node s and ph = if S.is_complement s then 1 else 0 in
      require id ph;
      if arrival.(id).(ph) > !delay && Float.is_finite arrival.(id).(ph) then
        delay := arrival.(id).(ph))
    (G.pos net);
  let result =
    {
      area = !area;
      delay = !delay;
      power = !power;
      cell_counts =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
        |> List.sort compare;
    }
  in
  (result, net, chosen)

(* Rebuild the mapped circuit as a primitive network (each cell
   instance becomes its defining logic), used to verify that the
   cover computes the original function. *)
let cover_to_network net chosen =
  let out = G.create () in
  let map = Hashtbl.create 256 in
  List.iter
    (fun id -> Hashtbl.replace map (id, 0) (G.add_pi out (G.pi_name net id)))
    (G.pis net);
  Hashtbl.replace map (0, 0) (G.const0 out);
  let rec value id ph =
    match Hashtbl.find_opt map (id, ph) with
    | Some s -> s
    | None ->
        let s =
          match chosen.(id).(ph) with
          | Source -> assert false (* PIs/constants pre-seeded *)
          | Inverter -> S.not_ (value id (1 - ph))
          | Match (cut, e) ->
              let pin p =
                let slot = e.pins.(p) in
                let leaf = cut.(slot) in
                let lph = if e.phases.(p) then 1 else 0 in
                value leaf lph
              in
              let cell = e.cell.Cells.name in
              (match cell with
              | "INV" -> S.not_ (pin 0)
              | "NAND2" -> S.not_ (G.and_ out (pin 0) (pin 1))
              | "NOR2" -> S.not_ (G.or_ out (pin 0) (pin 1))
              | "XOR2" -> G.xor_ out (pin 0) (pin 1)
              | "XNOR2" -> S.not_ (G.xor_ out (pin 0) (pin 1))
              | "MAJ3" -> G.maj out (pin 0) (pin 1) (pin 2)
              | "MIN3" -> S.not_ (G.maj out (pin 0) (pin 1) (pin 2))
              | _ -> invalid_arg ("Mapper: unknown cell " ^ cell))
        in
        Hashtbl.replace map (id, ph) s;
        s
  in
  List.iter
    (fun (name, s) ->
      let id = S.node s and ph = if S.is_complement s then 1 else 0 in
      G.add_po out name (value id ph))
    (G.pos net);
  out

let pp_result fmt r =
  Format.fprintf fmt "area = %.2f um2, delay = %.3f ns, power = %.2f uW"
    r.area r.delay r.power

let map_network ?ctx ?lib ?pi_prob net =
  let result, _, _ = map_network_internal ?ctx ?lib ?pi_prob net in
  result

let map_and_verify ?ctx ?lib ?pi_prob ~seed net =
  let result, cleaned, chosen = map_network_internal ?ctx ?lib ?pi_prob net in
  let mapped = cover_to_network cleaned chosen in
  (result, Network.Simulate.equivalent ~seed cleaned mapped)
