(** Cut-based technology mapping (the proprietary mapper of §V.B).

    The subject network is first decomposed into 2-input AND/OR
    primitives, so any library can cover it.
    Phase-aware delay-oriented DAG covering: every node is given a
    best implementation for both output polarities from matches of
    its 3-feasible cuts against the cell library (inverters are only
    inserted when a polarity has no native match).  Estimated
    {delay, area, power} are reported from the selected cover, power
    being cell energy weighted by the static switching activity of
    the driven signal — the paper's "estimated metrics before
    physical design". *)

type result = {
  area : float;  (** µm² *)
  delay : float;  (** ns, critical path *)
  power : float;  (** µW *)
  cell_counts : (string * int) list;  (** instances per cell type *)
}

val map_network :
  ?ctx:Lsutil.Ctx.t ->
  ?lib:Cells.library ->
  ?pi_prob:(string -> float) ->
  Network.Graph.t ->
  result

val map_and_verify :
  ?ctx:Lsutil.Ctx.t ->
  ?lib:Cells.library ->
  ?pi_prob:(string -> float) ->
  seed:int ->
  Network.Graph.t ->
  result * bool
(** Map, then rebuild the chosen cover as primitive logic and check it
    against the subject network by simulation.  The boolean is the
    verification verdict. *)

val pp_result : Format.formatter -> result -> unit
