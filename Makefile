.PHONY: all build test check lint bench bench-full examples clean

all: build

build:
	dune build @all

test:
	dune runtest

# full build + structural linter smoke run + test-suite (CI entry point)
check:
	dune build @check && dune runtest

# regenerate every table and figure of the paper
bench:
	dune exec bench/main.exe

# the compression benchmark at paper scale (~0.3M nodes)
bench-full:
	MIG_BENCH_FULL=1 dune exec bench/main.exe -- compress

examples:
	dune exec examples/quickstart.exe
	dune exec examples/datapath.exe
	dune exec examples/synthesis_flow.exe
	dune exec examples/emerging_tech.exe

clean:
	dune clean

# AST source lint (rules SRC001..SRC006) over every OCaml source dir;
# also runs as part of `dune build @check`
lint:
	dune exec tools/lint_src.exe -- lib bin bench tools test
