module M = Mig.Graph
module T = Mig.Transform
module N = Network.Graph

let vars = [ "a"; "b"; "c"; "d"; "e"; "f" ]

let gen_mig =
  QCheck2.Gen.(
    map
      (fun terms -> Helpers.network_of_terms ~vars terms)
      (list_size (int_range 1 4) (Helpers.gen_term ~vars ~depth:4)))

(* every pass must preserve the represented function *)
let pass_sound name pass =
  Helpers.qtest ~count:150 name gen_mig (fun net ->
      let m = Mig.Convert.of_network net in
      let m' = pass m in
      Mig.Equiv.to_network_equiv ~seed:0x50 m' net)

let prop_eliminate = pass_sound "qcheck: eliminate sound" T.eliminate
let prop_push_up = pass_sound "qcheck: push_up sound" T.push_up
let prop_relevance = pass_sound "qcheck: relevance sound" T.relevance

let prop_substitution =
  pass_sound "qcheck: substitution sound" (T.substitution ~on_critical:false)

let prop_patterns_depth =
  pass_sound "qcheck: pattern rewriting (depth) sound" T.rewrite_patterns

let prop_patterns_size =
  pass_sound "qcheck: pattern rewriting (size) sound"
    (T.rewrite_patterns ~mode:`Size)

let prop_refactor = pass_sound "qcheck: refactor sound" T.refactor
let prop_reshape_assoc = pass_sound "qcheck: reshape_assoc sound" T.reshape_assoc

let prop_reshape_no_bigger =
  Helpers.qtest ~count:100 "qcheck: reshape_assoc never grows" gen_mig
    (fun net ->
      let m = Mig.Convert.of_network net in
      M.size (T.reshape_assoc m) <= M.size m)

let prop_push_up_no_deeper =
  Helpers.qtest ~count:150 "qcheck: push_up never deepens" gen_mig (fun net ->
      let m = Mig.Convert.of_network net in
      M.depth (T.push_up m) <= M.depth m)

let prop_refactor_no_bigger =
  Helpers.qtest ~count:100 "qcheck: refactor never grows" gen_mig (fun net ->
      let m = Mig.Convert.of_network net in
      M.size (T.refactor m) <= M.size m)

(* targeted unit cases *)

let test_eliminate_distributivity () =
  (* M(M(x,y,u), M(x,y,v), z) collapses to M(x,y,M(u,v,z)) *)
  let g = M.create () in
  let x = M.add_pi g "x" and y = M.add_pi g "y" in
  let u = M.add_pi g "u" and v = M.add_pi g "v" in
  let z = M.add_pi g "z" in
  let a = M.maj g x y u and b = M.maj g x y v in
  M.add_po g "h" (M.maj g a b z);
  Alcotest.(check int) "three nodes before" 3 (M.size g);
  let g' = T.eliminate g in
  Alcotest.(check int) "two nodes after Ω.D R->L" 2 (M.size g');
  Alcotest.(check bool) "equivalent" true (Mig.Equiv.migs ~seed:61 g g')

let test_push_up_carry_chain () =
  (* a majority (carry) chain flattens towards log depth *)
  let g = M.create () in
  let c0 = M.add_pi g "c0" in
  let carry = ref c0 in
  for i = 0 to 15 do
    let a = M.add_pi g (Printf.sprintf "a%d" i) in
    let b = M.add_pi g (Printf.sprintf "b%d" i) in
    carry := M.maj g a b !carry
  done;
  M.add_po g "cout" !carry;
  Alcotest.(check int) "chain depth" 16 (M.depth g);
  let opt = Mig.Opt_depth.run ~size_recovery:false g in
  Alcotest.(check bool) "flattened below half" true (M.depth opt <= 8);
  Alcotest.(check bool) "equivalent" true (Mig.Equiv.migs ~seed:62 g opt)

let test_patterns_collapse_maj () =
  (* the AOIG carry ab + c(a+b) becomes a single majority node *)
  let net = N.create () in
  let a = N.add_pi net "a" and b = N.add_pi net "b" and c = N.add_pi net "c" in
  N.add_po net "carry"
    (N.or_ net (N.and_ net a b) (N.and_ net c (N.or_ net a b)));
  let m = Mig.Convert.of_network (N.flatten_aoig net) in
  Alcotest.(check int) "four transposed nodes" 4 (M.size m);
  let m' = T.rewrite_patterns ~mode:`Size m in
  Alcotest.(check int) "one majority node" 1 (M.size m');
  Alcotest.(check bool) "equivalent" true
    (Mig.Equiv.to_network_equiv ~seed:63 m' net)

let test_patterns_collapse_xor3 () =
  let net = N.create () in
  let a = N.add_pi net "a" and b = N.add_pi net "b" and c = N.add_pi net "c" in
  N.add_po net "p" (N.xor_ net (N.xor_ net a b) c);
  let flat = N.flatten_aoig net in
  let m = Mig.Convert.of_network flat in
  let m' = T.rewrite_patterns m in
  Alcotest.(check bool) "two levels" true (M.depth m' <= 2);
  Alcotest.(check bool) "equivalent" true
    (Mig.Equiv.to_network_equiv ~seed:64 m' flat)

let test_relevance_simplifies_reconvergence () =
  (* Fig. 2(a): h = M(x, M(x,z',w), M(x,y,z)) is just x *)
  let g = M.create () in
  let x = M.add_pi g "x" and y = M.add_pi g "y" in
  let z = M.add_pi g "z" and w = M.add_pi g "w" in
  let inner1 = M.maj g x (Network.Signal.not_ z) w in
  let inner2 = M.maj g x y z in
  M.add_po g "h" (M.maj g x inner1 inner2);
  let opt = Mig.Opt_size.run g in
  Alcotest.(check int) "reduced to zero nodes" 0 (M.size opt);
  Alcotest.(check bool) "equivalent" true (Mig.Equiv.migs ~seed:65 g opt)

let test_criticality_protects_size () =
  (* push_up must not restructure away from the critical path *)
  let net =
    N.flatten_aoig
      (Helpers.random_network ~seed:8 ~inputs:12 ~gates:150 ~outputs:6)
  in
  let m = Mig.Convert.of_network net in
  let m' = T.push_up m in
  Alcotest.(check bool) "bounded growth" true
    (float_of_int (M.size m') <= (1.25 *. float_of_int (M.size m)) +. 8.0)

(* Deep-recursion regression (robustness PR): a ~500k-node linear maj
   chain used to blow the OCaml stack in the recursive PO-DFS of
   cleanup/compact and the transform rebuilds.  With the explicit
   Istack-based traversals the whole pipeline must survive. *)
let test_deep_chain () =
  let n = 500_000 in
  let g = M.create () in
  let pis = Array.init 8 (fun i -> M.add_pi g (Printf.sprintf "x%d" i)) in
  let s = ref pis.(0) in
  for i = 1 to n do
    let a = pis.(i mod 8) in
    let b =
      let b = pis.((i * 3 + 1) mod 8) in
      if i land 1 = 0 then Network.Signal.not_ b else b
    in
    s := M.maj g a b !s
  done;
  M.add_po g "y" !s;
  let cleaned = M.cleanup g in
  let compacted = M.compact g in
  Alcotest.(check int) "compact agrees with cleanup" (M.size cleaned)
    (M.size compacted);
  let elim = T.eliminate cleaned in
  Alcotest.(check bool) "eliminate no bigger" true
    (M.size elim <= M.size cleaned);
  let pushed = T.push_up elim in
  Alcotest.(check bool) "push_up shallower or equal" true
    (M.depth pushed <= M.depth elim)

let () =
  Alcotest.run "transform"
    [
      ( "soundness",
        [
          prop_eliminate;
          prop_push_up;
          prop_relevance;
          prop_substitution;
          prop_patterns_depth;
          prop_patterns_size;
          prop_refactor;
          prop_reshape_assoc;
        ] );
      ( "guarantees",
        [
          prop_push_up_no_deeper;
          prop_refactor_no_bigger;
          prop_reshape_no_bigger;
          Alcotest.test_case "criticality bounds growth" `Quick
            test_criticality_protects_size;
        ] );
      ( "cases",
        [
          Alcotest.test_case "Ω.D R->L elimination" `Quick
            test_eliminate_distributivity;
          Alcotest.test_case "carry-chain push-up" `Quick test_push_up_carry_chain;
          Alcotest.test_case "majority pattern collapse" `Quick
            test_patterns_collapse_maj;
          Alcotest.test_case "parity pattern collapse" `Quick
            test_patterns_collapse_xor3;
          Alcotest.test_case "Fig. 2(a) reconvergence" `Quick
            test_relevance_simplifies_reconvergence;
        ] );
      ( "scale",
        [ Alcotest.test_case "500k-node chain" `Slow test_deep_chain ] );
    ]
