(* The reentrancy proofs for the explicit execution context:

   - ctx scratch arenas: nested acquisitions get distinct buffers and
     a steady-state rebuild loop stops allocating once the pool is
     warm (the arena-nesting regression);
   - multi-domain differential: K domains running guarded passes on
     independent random MIGs produce bit-identical graphs, telemetry
     trees and budget verdicts as the same work run sequentially;
   - [Flow.Batch.run]: outcomes merge in input order and are
     jobs-invariant. *)

module T = Lsutil.Telemetry
module Ctx = Lsutil.Ctx
module M = Mig.Graph
module S = Network.Signal
module B = Flow.Batch
module E = Flow.Engine

(* ----- satellite: arena nesting + steady-state reuse ----- *)

let test_scratch_nesting () =
  let ctx = Ctx.create () in
  Ctx.with_scratch ctx 16 (fun a ->
      a.(0) <- 42;
      Ctx.with_scratch ctx 16 (fun b ->
          Alcotest.(check bool) "nested buffers are distinct" true (a != b);
          Alcotest.(check bool)
            "inner buffer is -1-filled" true
            (Array.for_all (fun x -> x = -1) (Array.sub b 0 16)));
      Alcotest.(check int) "outer survives inner" 42 a.(0));
  (* the exception path must still return buffers to the pool *)
  let allocs0 = Ctx.scratch_allocs ctx in
  (try Ctx.with_scratch ctx 16 (fun _ -> failwith "boom") with
  | Failure _ -> ());
  Ctx.with_scratch ctx 16 ignore;
  Alcotest.(check int)
    "buffer recycled across an exception" allocs0 (Ctx.scratch_allocs ctx)

let test_scratch_steady_state () =
  let ctx = Ctx.create () in
  let net = Helpers.random_network ~seed:11 ~inputs:6 ~gates:60 ~outputs:4 in
  let m = Mig.Convert.of_network ~ctx net in
  (* every optimization pass rebuilds through [Ctx.with_scratch]; the
     first runs size the pool, after which repeated identical runs
     must not allocate fresh scratch *)
  let opt () =
    ignore (Mig.Opt_depth.run ~size_recovery:true (Mig.Opt_size.run m))
  in
  opt ();
  opt ();
  let warm = Ctx.scratch_allocs ctx in
  Alcotest.(check bool) "pool did allocate while cold" true (warm > 0);
  for _ = 1 to 5 do
    opt ()
  done;
  Alcotest.(check int)
    "no fresh scratch once the pool is warm" warm (Ctx.scratch_allocs ctx)

(* ----- satellite: K-domain differential vs sequential ----- *)

(* Strip the only nondeterministic telemetry field (wall-clock
   [elapsed]) so trees compare structurally. *)
type ntree =
  | N of string * (string * T.value) list * (string * int) list * ntree list

let rec normalize (n : T.node) =
  N (n.T.name, n.T.meta, n.T.counters, List.map normalize n.T.children)

(* A graph fingerprint that is sensitive to node numbering: live
   majority nodes with their exact fanin signals, PIs and POs. *)
let graph_fp g =
  let majs = ref [] in
  M.iter_live_majs g (fun id fis ->
      majs := (id, Array.to_list (Array.map (fun s -> (s : S.t :> int)) fis))
              :: !majs);
  ( M.size g,
    M.depth g,
    List.rev !majs,
    M.pis g,
    List.map (fun (n, s) -> (n, (s : S.t :> int))) (M.pos g) )

(* One fully independent unit of work: private ctx (stats + checks +
   a node budget), private random MIG, guarded size and depth passes
   under a telemetry capture.  Everything the unit touches hangs off
   its own ctx, so running K of these on K domains is a pure
   reentrancy question. *)
let run_unit i seed =
  let ctx =
    Ctx.create ~stats:true ~check:true ~budget:(None, Some 2_000_000) ()
  in
  let net = Helpers.random_network ~seed ~inputs:5 ~gates:30 ~outputs:3 in
  let m = Mig.Convert.of_network ~ctx net in
  let out, tree =
    T.capture (Ctx.stats ctx)
      (Printf.sprintf "unit%d" i)
      (fun () -> Mig.Opt_depth.run ~check:true (Mig.Opt_size.run ~check:true m))
  in
  ( graph_fp out,
    Option.map normalize tree,
    Lsutil.Budget.expired (Ctx.budget ctx) )

let test_domain_differential =
  Helpers.qtest ~count:8 "K domains == sequential (graphs, telemetry, budgets)"
    QCheck2.Gen.(int_bound 10_000)
    (fun base ->
      (* force the library's only top-level [lazy] before spawning *)
      Mig.Transform.prewarm ();
      let seeds = Array.init 6 (fun i -> (base * 131) + i) in
      let seq = Array.mapi run_unit seeds in
      (* [B.pmap] clamps to the item count only, so jobs=3 really
         spawns domains even on a single-core host *)
      let par = B.pmap ~jobs:3 run_unit seeds in
      if seq <> par then
        QCheck2.Test.fail_report
          "parallel run diverged from sequential with identical seeds";
      true)

(* ----- Batch.run: input-order merge, jobs-invariance ----- *)

let batch_items =
  List.map
    (fun (name, seed) ->
      {
        B.name;
        build =
          (fun () ->
            Helpers.random_network ~seed ~inputs:5 ~gates:25 ~outputs:2);
      })
    [ ("alpha", 3); ("bravo", 14); ("charlie", 15); ("delta", 92) ]

let outcome_fp (o : B.outcome) =
  ( o.B.name,
    o.B.size_in,
    o.B.depth_in,
    o.B.size_out,
    o.B.depth_out,
    o.B.report.E.verified,
    o.B.report.E.degraded,
    o.B.report.E.rollbacks,
    Option.map normalize o.B.telemetry )

let test_batch_run () =
  let spec = { B.default_spec with B.effort = 1 } in
  let make_ctx _ _ = Ctx.create ~stats:true () in
  let seq = B.run ~jobs:1 ~spec ~make_ctx batch_items in
  let par = B.run ~jobs:4 ~spec ~make_ctx batch_items in
  Alcotest.(check (list string))
    "outcomes in input order"
    [ "alpha"; "bravo"; "charlie"; "delta" ]
    (List.map (fun o -> o.B.name) seq);
  Alcotest.(check bool)
    "jobs=4 structurally identical to jobs=1" true
    (List.map outcome_fp seq = List.map outcome_fp par);
  List.iter
    (fun o ->
      Alcotest.(check bool)
        (o.B.name ^ " telemetry captured") true
        (o.B.telemetry <> None))
    seq

(* ----- Batch.run ?stop: cooperative interruption ----- *)

let test_batch_stop () =
  let spec = { B.default_spec with B.effort = 1 } in
  let make_ctx _ _ = Ctx.create () in
  (* a pre-set flag stops before anything is claimed *)
  let stop = Atomic.make true in
  Alcotest.(check int)
    "pre-set stop claims nothing" 0
    (List.length (B.run ~jobs:1 ~spec ~make_ctx ~stop batch_items));
  (* a flag flipped by the first item's build: the in-flight item
     still finishes (whole, verified), nothing further is claimed *)
  let stop = Atomic.make false in
  let items =
    List.mapi
      (fun i it ->
        {
          it with
          B.build =
            (fun () ->
              if i = 0 then Atomic.set stop true;
              it.B.build ());
        })
      batch_items
  in
  let got = B.run ~jobs:1 ~spec ~make_ctx ~stop items in
  Alcotest.(check (list string))
    "only the in-flight item completes" [ "alpha" ]
    (List.map (fun o -> o.B.name) got);
  List.iter
    (fun o ->
      Alcotest.(check bool)
        (o.B.name ^ " outcome is whole and verified") true
        o.B.report.E.verified)
    got;
  (* the report records the interruption *)
  let j = B.to_json ~interrupted:true ~jobs:1 got in
  match Lsutil.Json.member "interrupted" j with
  | Some (Lsutil.Json.Bool true) -> ()
  | _ -> Alcotest.fail "to_json ~interrupted must carry the marker"

let () =
  Alcotest.run "batch"
    [
      ( "scratch",
        [
          Alcotest.test_case "nesting" `Quick test_scratch_nesting;
          Alcotest.test_case "steady-state reuse" `Quick
            test_scratch_steady_state;
        ] );
      ("differential", [ test_domain_differential ]);
      ( "batch",
        [
          Alcotest.test_case "run" `Quick test_batch_run;
          Alcotest.test_case "stop flag" `Quick test_batch_stop;
        ] );
    ]
