(* The domain-ownership/lifetime sanitizer (Lsutil.San):

   - negative: each SAN001..SAN006 code fires exactly once from a
     deliberately violating access pattern (Collect mode, so the
     finding is inspected rather than raised);
   - positive: the publish/transfer handoff protocol, scratch arenas
     and whole optimization passes run sanitizer-clean;
   - differential: Flow.Batch under MIG_SAN semantics (san:true ctx
     per item) is finding-free and bit-identical across job counts. *)

(* this test proves cross-domain violations, so it must spawn raw
   domains itself rather than go through Flow.Batch *)
[@@@san.allow "SRC002"]

module San = Lsutil.San
module Ctx = Lsutil.Ctx
module M = Mig.Graph
module B = Flow.Batch
module E = Flow.Engine

let spawn_run f = Domain.join (Domain.spawn f)

let collecting () = San.create ~mode:San.Collect ~enabled:true ()

let check_codes what t expected =
  Alcotest.(check (list string))
    what expected
    (List.map (fun (f : San.finding) -> f.San.code) (San.findings t))

(* ----- negative: one violation, one finding, stable code ----- *)

let test_san001_cross_domain_read () =
  let t = collecting () in
  let tag = San.register t ~name:"g" in
  spawn_run (fun () -> San.read_access tag);
  check_codes "foreign read" t [ "SAN001" ]

let test_san002_cross_domain_write () =
  let t = collecting () in
  let tag = San.register t ~name:"g" in
  spawn_run (fun () -> San.write_access tag);
  check_codes "foreign write" t [ "SAN002" ]

let test_san002_published_write () =
  let t = collecting () in
  let tag = San.register t ~name:"g" in
  San.publish tag;
  San.write_access tag;
  check_codes "published structures are read-only" t [ "SAN002" ]

let test_san003_stale_generation () =
  let t = collecting () in
  let tag = San.register t ~name:"g" in
  let snap = San.snapshot tag in
  San.bump ~reason:"compact" tag;
  San.validate tag ~snapshot:snap;
  check_codes "ids minted before a renumbering" t [ "SAN003" ]

let test_san004_illegal_handoff () =
  let t = collecting () in
  let tag = San.register t ~name:"g" in
  spawn_run (fun () -> San.transfer tag);
  check_codes "claiming an owned structure" t [ "SAN004" ]

let test_san005_double_lease () =
  let t = collecting () in
  let tag = San.register t ~name:"buf" in
  San.lease tag;
  San.lease tag;
  check_codes "double lease" t [ "SAN005" ];
  San.release tag

let test_san006_leaked_lease () =
  let t = collecting () in
  let tag = San.register t ~name:"buf" in
  San.lease tag;
  San.drain t;
  check_codes "lease still out at drain" t [ "SAN006" ]

(* ----- positive: the handoff protocol and Raise mode ----- *)

let test_handoff_protocol () =
  let t = San.create ~enabled:true () in
  let tag = San.register t ~name:"g" in
  San.write_access tag;
  (* publish: any domain may read; the worker claims it, works, and
     publishes it back for the main domain to reclaim *)
  San.publish tag;
  spawn_run (fun () ->
      San.read_access tag;
      San.transfer tag;
      San.write_access tag;
      San.publish tag);
  San.read_access tag;
  San.transfer tag;
  San.write_access tag;
  Alcotest.(check bool) "clean handoff" true (San.is_clean t)

let test_raise_mode () =
  let t = San.create ~enabled:true () in
  let tag = San.register t ~name:"g" in
  let raised =
    spawn_run (fun () ->
        match San.write_access tag with
        | () -> false
        | exception San.Violation f -> f.San.code = "SAN002")
  in
  Alcotest.(check bool) "Violation raised at the site" true raised;
  (* the finding is recorded before the raise, so post-mortem sweeps
     see it even when the raise was swallowed downstream *)
  check_codes "recorded before raise" t [ "SAN002" ]

let test_disabled_is_silent () =
  let t = San.create ~enabled:false () in
  let tag = San.register t ~name:"g" in
  spawn_run (fun () ->
      San.write_access tag;
      San.lease tag;
      San.lease tag);
  San.drain t;
  Alcotest.(check bool) "disabled handle never records" true (San.is_clean t)

(* ----- positive: real structures under san:true ----- *)

let test_graph_clean_run () =
  let ctx = Ctx.create ~san:true () in
  let net = Helpers.random_network ~seed:7 ~inputs:5 ~gates:40 ~outputs:3 in
  let m = Mig.Convert.of_network ~ctx net in
  let m = Mig.Opt_depth.run ~size_recovery:true (Mig.Opt_size.run m) in
  Alcotest.(check bool) "optimized" true (M.size m > 0);
  Ctx.with_scratch ctx 32 (fun a ->
      a.(0) <- 1;
      Ctx.with_scratch ctx 32 (fun b -> b.(0) <- 2));
  San.drain (Ctx.san ctx);
  Alcotest.(check bool)
    "single-domain pipeline is sanitizer-clean" true
    (San.is_clean (Ctx.san ctx))

let test_graph_stale_id () =
  let ctx = Ctx.create ~san:true ~san_mode:San.Collect () in
  let net = Helpers.random_network ~seed:19 ~inputs:4 ~gates:20 ~outputs:2 in
  let m = Mig.Convert.of_network ~ctx net in
  let snap = San.snapshot (M.san_tag m) in
  let m2 = M.compact m in
  (* node ids taken before the compact do not name nodes of [m2]; the
     bumped generation catches the staleness *)
  San.validate (M.san_tag m) ~snapshot:snap;
  Alcotest.(check bool) "compacted" true (M.size m2 <= M.size m);
  let codes =
    List.map (fun (f : San.finding) -> f.San.code)
      (San.findings (Ctx.san ctx))
  in
  Alcotest.(check (list string)) "stale id is SAN003" [ "SAN003" ] codes

let test_aig_tag_registered () =
  let ctx = Ctx.create ~san:true () in
  let g = Aig.Graph.create ~ctx () in
  Alcotest.(check bool)
    "aig tag owned by creator" true
    (San.owner (Aig.Graph.san_tag g) = Some (Domain.self () :> int))

(* ----- differential: batch under the sanitizer ----- *)

let outcome_fp (o : B.outcome) =
  ( o.B.name,
    o.B.size_in,
    o.B.depth_in,
    o.B.size_out,
    o.B.depth_out,
    o.B.report.E.verified,
    o.B.report.E.degraded,
    o.B.report.E.rollbacks )

let test_batch_differential =
  Helpers.qtest ~count:4 "MIG_SAN batch: zero findings, jobs-invariant"
    QCheck2.Gen.(int_bound 10_000)
    (fun base ->
      Mig.Transform.prewarm ();
      let items =
        List.map
          (fun (name, k) ->
            {
              B.name;
              build =
                (fun () ->
                  Helpers.random_network
                    ~seed:((base * 37) + k)
                    ~inputs:5 ~gates:25 ~outputs:2);
            })
          [ ("x", 0); ("y", 1); ("z", 2) ]
      in
      let spec = { B.default_spec with B.effort = 1 } in
      let run jobs =
        let mu = Mutex.create () in
        let ctxs = ref [] in
        let make_ctx _ _ =
          (* created inside the worker domain, so the worker owns
             every structure registered under it — MIG_SAN=1 batch
             semantics *)
          let c = Ctx.create ~san:true () in
          Mutex.protect mu (fun () -> ctxs := c :: !ctxs);
          c
        in
        let out = B.run ~jobs ~spec ~make_ctx items in
        let clean =
          List.for_all (fun c -> San.is_clean (Ctx.san c)) !ctxs
        in
        (List.map outcome_fp out, clean, List.length !ctxs)
      in
      let seq, clean1, n1 = run 1 in
      let par, clean2, n2 = run 2 in
      if n1 <> 3 || n2 <> 3 then
        QCheck2.Test.fail_report "expected one ctx per item";
      if not (clean1 && clean2) then
        QCheck2.Test.fail_report "sanitizer findings in a clean batch";
      if seq <> par then
        QCheck2.Test.fail_report
          "jobs=2 diverged from sequential under the sanitizer";
      true)

let () =
  Alcotest.run "san"
    [
      ( "negative",
        [
          Alcotest.test_case "SAN001 cross-domain read" `Quick
            test_san001_cross_domain_read;
          Alcotest.test_case "SAN002 cross-domain write" `Quick
            test_san002_cross_domain_write;
          Alcotest.test_case "SAN002 published write" `Quick
            test_san002_published_write;
          Alcotest.test_case "SAN003 stale generation" `Quick
            test_san003_stale_generation;
          Alcotest.test_case "SAN004 illegal handoff" `Quick
            test_san004_illegal_handoff;
          Alcotest.test_case "SAN005 double lease" `Quick
            test_san005_double_lease;
          Alcotest.test_case "SAN006 leaked lease" `Quick
            test_san006_leaked_lease;
        ] );
      ( "positive",
        [
          Alcotest.test_case "handoff protocol" `Quick test_handoff_protocol;
          Alcotest.test_case "raise mode" `Quick test_raise_mode;
          Alcotest.test_case "disabled is silent" `Quick
            test_disabled_is_silent;
          Alcotest.test_case "clean optimization run" `Quick
            test_graph_clean_run;
          Alcotest.test_case "stale id after compact" `Quick
            test_graph_stale_id;
          Alcotest.test_case "aig registration" `Quick
            test_aig_tag_registered;
        ] );
      ("differential", [ test_batch_differential ]);
    ]
