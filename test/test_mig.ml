module M = Mig.Graph
module N = Network.Graph
module S = Network.Signal
module T = Truthtable

let test_constants_pis () =
  let g = M.create () in
  Alcotest.(check bool) "const1 = not const0" true
    (S.equal (M.const1 g) (S.not_ (M.const0 g)));
  let a = M.add_pi g "a" in
  Alcotest.(check string) "pi name" "a" (M.pi_name g (S.node a));
  Alcotest.(check int) "no majority nodes yet" 0 (M.size g)

let test_omega_m_folding () =
  let g = M.create () in
  let a = M.add_pi g "a" and b = M.add_pi g "b" and c = M.add_pi g "c" in
  (* the Ω.M cases fold at construction *)
  Alcotest.(check bool) "M(x,x,z) = x" true (S.equal a (M.maj g a a c));
  Alcotest.(check bool) "M(x,x',z) = z" true
    (S.equal c (M.maj g a (S.not_ a) c));
  Alcotest.(check bool) "M(0,x,1) = x" true
    (S.equal b (M.maj g (M.const0 g) b (M.const1 g)));
  Alcotest.(check int) "nothing allocated" 0 (M.num_allocated_majs g);
  ignore (M.maj g a b c);
  Alcotest.(check int) "one node" 1 (M.num_allocated_majs g)

let test_normal_form () =
  let g = M.create () in
  let a = M.add_pi g "a" and b = M.add_pi g "b" and c = M.add_pi g "c" in
  (* Ω.I: at most one complemented fanin after normalization *)
  let s = M.maj g (S.not_ a) (S.not_ b) c in
  Alcotest.(check bool) "two complements push to output" true
    (S.is_complement s);
  let fs = M.fanins g (S.node s) in
  let ninv =
    Array.fold_left (fun n f -> if S.is_complement f then n + 1 else n) 0 fs
  in
  Alcotest.(check bool) "at most one complemented fanin" true (ninv <= 1);
  (* Ω.C: orderings share the same node *)
  let t = M.maj g c (S.not_ b) (S.not_ a) in
  Alcotest.(check bool) "commutative strash" true (S.equal s t);
  Alcotest.(check int) "single node for all orderings" 1 (M.num_allocated_majs g)

let test_fanins_of_view () =
  let g = M.create () in
  let a = M.add_pi g "a" and b = M.add_pi g "b" and c = M.add_pi g "c" in
  let s = M.maj g a b c in
  (match M.fanins_of g (S.not_ s) with
  | Some fs ->
      Array.iter
        (fun f ->
          Alcotest.(check bool) "Ω.I view complements fanins" true
            (S.is_complement f))
        fs
  | None -> Alcotest.fail "expected fanins");
  Alcotest.(check bool) "PI has no fanins" true (M.fanins_of g a = None)

let test_and_or_as_maj () =
  let g = M.create () in
  let a = M.add_pi g "a" and b = M.add_pi g "b" in
  let conj = M.and_ g a b in
  (* Theorem 3.1: AND is a majority node with constant third input *)
  (match M.fanins_of g conj with
  | Some fs ->
      Alcotest.(check bool) "third input constant" true
        (Array.exists (fun f -> S.node f = 0) fs)
  | None -> Alcotest.fail "expected a node");
  N.iter_gates (Mig.Convert.to_network g) (fun _ _ _ -> ())

let test_xor_forms () =
  let g = M.create () in
  let a = M.add_pi g "a" and b = M.add_pi g "b" and c = M.add_pi g "c" in
  M.add_po g "x2" (M.xor_ g a b);
  M.add_po g "x3" (M.xor3 g a b c);
  Alcotest.(check int) "depth-2 parity forms" 2 (M.depth g);
  let tts = Network.Simulate.truthtables (Mig.Convert.to_network g) in
  let va = T.var 3 0 and vb = T.var 3 1 and vc = T.var 3 2 in
  Alcotest.check Helpers.check_tt "xor2 function" (T.xor_ va vb)
    (List.assoc "x2" tts);
  Alcotest.check Helpers.check_tt "xor3 function"
    (T.xor_ (T.xor_ va vb) vc)
    (List.assoc "x3" tts)

let test_cleanup_mig () =
  let g = M.create () in
  let a = M.add_pi g "a" and b = M.add_pi g "b" and c = M.add_pi g "c" in
  let keep = M.maj g a b c in
  let _dead = M.maj g a b (S.not_ c) in
  M.add_po g "y" keep;
  let g' = M.cleanup g in
  Alcotest.(check int) "dead removed" 1 (M.size g');
  Alcotest.(check bool) "equivalent" true (Mig.Equiv.migs ~seed:3 g g')

(* metrics must see through dead nodes: a graph with unreachable majs
   reports the same size/activity as its cleanup *)
let test_dead_node_metrics () =
  let g = M.create () in
  let a = M.add_pi g "a" and b = M.add_pi g "b" and c = M.add_pi g "c" in
  let keep = M.maj g a b c in
  (* two dead nodes, one feeding the other *)
  let d1 = M.maj g a b (S.not_ c) in
  let _d2 = M.maj g d1 (S.not_ a) c in
  M.add_po g "y" keep;
  Alcotest.(check int) "three allocated" 3 (M.num_allocated_majs g);
  let g' = M.cleanup g in
  Alcotest.(check int) "size ignores dead nodes" (M.size g') (M.size g);
  Alcotest.(check int) "depth ignores dead nodes" (M.depth g') (M.depth g);
  Alcotest.(check (float 1e-12)) "activity ignores dead nodes"
    (Mig.Activity.total g') (Mig.Activity.total g);
  (* fanout must not count edges out of dead nodes: only the kept node
     and the PO reference the PIs *)
  let fo = M.fanout_counts g in
  Alcotest.(check int) "fanout of a" 1 fo.(S.node a);
  Alcotest.(check int) "fanout of kept node" 1 fo.(S.node keep);
  (* the cache revalidates when the graph grows *)
  M.add_po g "z" d1;
  Alcotest.(check int) "size after reviving d1" 2 (M.size g)

let test_conversions () =
  let net = Helpers.random_network ~seed:99 ~inputs:9 ~gates:70 ~outputs:5 in
  let m = Mig.Convert.of_network net in
  Alcotest.(check bool) "network -> MIG" true
    (Mig.Equiv.to_network_equiv ~seed:4 m net);
  let a = Mig.Convert.to_aig m in
  Alcotest.(check bool) "MIG -> AIG" true
    (Network.Simulate.equivalent ~seed:5 net (Aig.Convert.to_network a));
  let m2 = Mig.Convert.of_aig a in
  Alcotest.(check bool) "AIG -> MIG" true (Mig.Equiv.migs ~seed:6 m m2)

let test_aig_transposition_size () =
  (* Corollary 3.2: AIG nodes transpose one-for-one *)
  let net =
    N.flatten_aoig (Helpers.random_network ~seed:7 ~inputs:8 ~gates:50 ~outputs:4)
  in
  let a = Aig.Convert.of_network net in
  let m = Mig.Convert.of_aig a in
  Alcotest.(check bool) "MIG size <= AIG size" true
    (M.size m <= Aig.Graph.size a)

let test_levels_mig () =
  let g = M.create () in
  let a = M.add_pi g "a" and b = M.add_pi g "b" and c = M.add_pi g "c" in
  let inner = M.maj g a b c in
  let outer = M.maj g inner a b in
  M.add_po g "y" outer;
  Alcotest.(check int) "depth" 2 (M.depth g);
  let lv = M.levels g in
  Alcotest.(check int) "inner level" 1 lv.(S.node inner)

let test_equiv_by_bdd () =
  let net = Helpers.random_network ~seed:12 ~inputs:8 ~gates:60 ~outputs:4 in
  let m = Mig.Convert.of_network net in
  let opt = Mig.Opt_size.run m in
  Alcotest.(check bool) "BDD equivalence" true (Mig.Equiv.by_bdd m opt)

let test_activity_formula () =
  let g = M.create () in
  let a = M.add_pi g "a" and b = M.add_pi g "b" and c = M.add_pi g "c" in
  M.add_po g "y" (M.maj g a b c);
  (* p(maj of three independent 0.5 inputs) = 0.5, SW = 0.25 *)
  Alcotest.(check (float 1e-9)) "balanced maj activity" 0.25
    (Mig.Activity.total g);
  let skew = Mig.Activity.total ~pi_prob:(fun _ -> 0.1) g in
  (* p = 3*0.01 - 2*0.001 = 0.028; SW = 0.028*0.972 *)
  Alcotest.(check (float 1e-9)) "skewed maj activity" (0.028 *. 0.972) skew

(* structural invariant: every node is in the Ω.I/Ω.C/Ω.M normal form *)
let normal_form_ok g =
  let ok = ref true in
  M.iter_majs g (fun _ fs ->
      let ninv =
        Array.fold_left (fun n f -> if S.is_complement f then n + 1 else n) 0 fs
      in
      if ninv > 1 then ok := false;
      (* sorted, and no foldable pair survived *)
      if not (S.compare fs.(0) fs.(1) <= 0 && S.compare fs.(1) fs.(2) <= 0)
      then ok := false;
      for i = 0 to 2 do
        for j = i + 1 to 2 do
          if S.equal fs.(i) fs.(j) || S.equal fs.(i) (S.not_ fs.(j)) then
            ok := false
        done
      done);
  !ok

let prop_normal_form_after_opt =
  Helpers.qtest ~count:80 "qcheck: optimizers preserve the normal form"
    QCheck2.Gen.(
      list_size (int_range 1 3)
        (Helpers.gen_term ~vars:[ "a"; "b"; "c"; "d"; "e" ] ~depth:4))
    (fun terms ->
      let net =
        Helpers.network_of_terms ~vars:[ "a"; "b"; "c"; "d"; "e" ] terms
      in
      let m = Mig.Convert.of_network net in
      normal_form_ok m
      && normal_form_ok (Mig.Opt_depth.run ~effort:1 m)
      && normal_form_ok (Mig.Opt_size.run ~effort:1 m))

(* ----- differential check of the packed construction core -----

   A deliberately naive reference implementation of the maj
   normalization and structural hashing: [List.sort] for Ω.C, boxed
   (int * int * int) Hashtbl keys for the strash.  Replaying the same
   random construction stream against both must produce bit-identical
   graphs — same returned signal at every call, same node count, same
   stored fanin triples. *)

type ref_strash = {
  rtbl : (int * int * int, int) Hashtbl.t;
  rfan : (int, int * int * int) Hashtbl.t;
  mutable rnext : int;
}

let ref_not s = s lxor 1

(* mirror of Graph.fold_m's case order *)
let ref_fold a b c =
  if a = b then a
  else if a = c then a
  else if b = c then b
  else if a = ref_not b then c
  else if a = ref_not c then b
  else if b = ref_not c then a
  else -1

let ref_maj st a b c =
  let folded = ref_fold a b c in
  if folded >= 0 then folded
  else begin
    let ninv = (a land 1) + (b land 1) + (c land 1) in
    let inv = ninv >= 2 in
    let a = if inv then ref_not a else a
    and b = if inv then ref_not b else b
    and c = if inv then ref_not c else c in
    let key =
      match List.sort compare [ a; b; c ] with
      | [ x; y; z ] -> (x, y, z)
      | _ -> assert false
    in
    let id =
      match Hashtbl.find_opt st.rtbl key with
      | Some id -> id
      | None ->
          let id = st.rnext in
          st.rnext <- id + 1;
          Hashtbl.add st.rtbl key id;
          Hashtbl.add st.rfan id key;
          id
    in
    (id lsl 1) lor if inv then 1 else 0
  end

let prop_strash_matches_reference =
  Helpers.qtest ~count:60 "qcheck: packed strash == sort+Hashtbl reference"
    QCheck2.Gen.(int_bound 0x3fffffff)
    (fun seed ->
      let g = M.create () in
      let n_pis = 6 in
      let pool = Array.make 256 ((M.const0 g : S.t :> int)) in
      for i = 0 to n_pis - 1 do
        pool.(i) <- (M.add_pi g (Printf.sprintf "x%d" i) : S.t :> int)
      done;
      let st =
        { rtbl = Hashtbl.create 64; rfan = Hashtbl.create 64; rnext = n_pis + 1 }
      in
      let rng = Lsutil.Rng.create seed in
      let filled = ref n_pis in
      let pick () =
        let s = pool.(Lsutil.Rng.int rng !filled) in
        if Lsutil.Rng.bool rng then ref_not s else s
      in
      let ok = ref true in
      for _ = 1 to 400 do
        let a = pick () and b = pick () and c = pick () in
        let got =
          (M.maj g (S.unsafe_of_int a) (S.unsafe_of_int b) (S.unsafe_of_int c)
            : S.t
            :> int)
        in
        let want = ref_maj st a b c in
        if got <> want then ok := false;
        if !filled < Array.length pool then begin
          pool.(!filled) <- got;
          incr filled
        end
      done;
      (* identical node count and identical stored triples *)
      if M.num_nodes g <> st.rnext then ok := false;
      Hashtbl.iter
        (fun id key -> if M.raw_fanins g id <> key then ok := false)
        st.rfan;
      !ok)

(* compact is documented to be bit-identical to cleanup on well-formed
   graphs, including in the presence of dead nodes *)
let migs_identical a b =
  M.num_nodes a = M.num_nodes b
  && M.pis a = M.pis b
  && List.for_all (fun id -> M.pi_name a id = M.pi_name b id) (M.pis a)
  && List.length (M.pos a) = List.length (M.pos b)
  && List.for_all2
       (fun (na, sa) (nb, sb) -> na = nb && S.equal sa sb)
       (M.pos a) (M.pos b)
  && List.for_all
       (* sentinel slots included: PI/const markers must line up too *)
       (fun id -> M.raw_fanins a id = M.raw_fanins b id)
       (List.init (M.num_nodes a) Fun.id)

let prop_compact_equals_cleanup =
  Helpers.qtest ~count:80 "qcheck: compact == cleanup bit-for-bit"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 3)
           (Helpers.gen_term ~vars:[ "a"; "b"; "c"; "d" ] ~depth:4))
        (int_bound 0x3fffffff))
    (fun (terms, seed) ->
      let net = Helpers.network_of_terms ~vars:[ "a"; "b"; "c"; "d" ] terms in
      let m = Mig.Convert.of_network net in
      (* grow some junk off the PIs so the PO cone is a strict subset *)
      let rng = Lsutil.Rng.create seed in
      let pis = Array.of_list (M.pis m) in
      let pick () =
        let s = S.make pis.(Lsutil.Rng.int rng (Array.length pis)) false in
        if Lsutil.Rng.bool rng then S.not_ s else s
      in
      for _ = 1 to 5 do
        ignore (M.maj m (pick ()) (pick ()) (pick ()))
      done;
      migs_identical (M.compact m) (M.cleanup m))

let prop_activity_matches_network =
  Helpers.qtest ~count:100 "qcheck: MIG activity equals converted-network activity"
    (Helpers.gen_term ~vars:[ "a"; "b"; "c"; "d" ] ~depth:4)
    (fun t ->
      let net = Helpers.network_of_terms ~vars:[ "a"; "b"; "c"; "d" ] [ t ] in
      let m = Mig.Convert.of_network net in
      (* the converted network has exactly one gate per majority node,
         so the two activity sums must agree *)
      let a_mig = Mig.Activity.total m in
      let a_net = Network.Metrics.activity (Mig.Convert.to_network m) in
      abs_float (a_mig -. a_net) < 1e-9)

let () =
  Alcotest.run "mig"
    [
      ( "graph",
        [
          Alcotest.test_case "constants and PIs" `Quick test_constants_pis;
          Alcotest.test_case "Ω.M folding" `Quick test_omega_m_folding;
          Alcotest.test_case "normal form (Ω.I, Ω.C)" `Quick test_normal_form;
          Alcotest.test_case "Ω.I fanin view" `Quick test_fanins_of_view;
          Alcotest.test_case "AND/OR are majorities" `Quick test_and_or_as_maj;
          Alcotest.test_case "parity forms" `Quick test_xor_forms;
          Alcotest.test_case "cleanup" `Quick test_cleanup_mig;
          Alcotest.test_case "dead-node metrics" `Quick test_dead_node_metrics;
          Alcotest.test_case "levels" `Quick test_levels_mig;
        ] );
      ( "convert",
        [
          Alcotest.test_case "roundtrips" `Quick test_conversions;
          Alcotest.test_case "AIG transposition (Cor. 3.2)" `Quick
            test_aig_transposition_size;
        ] );
      ( "equiv",
        [ Alcotest.test_case "BDD-based check" `Quick test_equiv_by_bdd ] );
      ( "activity",
        [ Alcotest.test_case "probability formula" `Quick test_activity_formula ] );
      ( "invariants",
        [
          prop_normal_form_after_opt;
          prop_activity_matches_network;
          prop_strash_matches_reference;
          prop_compact_equals_cleanup;
        ] );
    ]
