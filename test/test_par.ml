(* Intra-graph parallelism proofs:

   - Inthash stats + reserve: a pre-sized table absorbs its insertions
     with no growth rehash even when non-empty; occupancy stats are
     consistent;
   - Shardhash differential: any shard count answers exactly like the
     unsharded reference table, and concurrent insertions on distinct
     segments from worker domains are safe;
   - Partition properties: regions cover the live cone, are pairwise
     disjoint, fanout-closed outside their outputs, and their
     boundaries lie on the frontier;
   - Flow.Par jobs-differential: jobs in {1,2,4,8} produce
     bit-identical graphs and normalized telemetry on random MIGs and
     on Table I, with the sanitizer armed and clean;
   - Graph.compact scratch reuse: steady-state compaction stops
     allocating fresh scratch. *)

module T = Lsutil.Telemetry
module Ctx = Lsutil.Ctx
module San = Lsutil.San
module Ih = Lsutil.Inthash
module Sh = Lsutil.Shardhash
module M = Mig.Graph
module P = Mig.Partition
module S = Network.Signal
module Par = Flow.Par

(* ----- satellite: Inthash reserve + stats ----- *)

let test_inthash_reserve () =
  let t = Ih.create ~capacity:16 () in
  (* make the table non-empty first: reserve must account for what is
     already there, not just the increment *)
  for i = 0 to 99 do
    Ih.add t i (i + 1) (i + 2) i
  done;
  Ih.reserve t 1000;
  let cap_before = (Ih.stats t).Ih.capacity in
  for i = 100 to 1099 do
    Ih.add t i (i + 1) (i + 2) i
  done;
  Alcotest.(check int)
    "no growth rehash after reserve" cap_before (Ih.stats t).Ih.capacity;
  Alcotest.(check bool)
    "reserved capacity is a power of two" true
    (cap_before land (cap_before - 1) = 0)

let test_inthash_stats () =
  let t = Ih.create () in
  for i = 0 to 499 do
    Ih.add t (i * 7) (i * 13) (i * 29) i
  done;
  let s = Ih.stats t in
  Alcotest.(check int) "entries" 500 s.Ih.entries;
  Alcotest.(check int)
    "histogram covers every entry" 500
    (Array.fold_left ( + ) 0 s.Ih.probe_hist);
  Alcotest.(check bool) "steady-state load <= 1/2" true (s.Ih.load <= 0.5);
  Alcotest.(check bool)
    "counters exported" true
    (List.mem_assoc "strash.entries" (Ih.stats_counters s))

(* ----- Shardhash: differential vs the unsharded reference ----- *)

let test_shard_differential =
  Helpers.qtest ~count:40 "sharded table == reference at K in {1,2,4,8}"
    QCheck2.Gen.(pair (int_bound 10_000) (int_bound 3))
    (fun (base, kexp) ->
      let shards = 1 lsl kexp in
      let reference = Ih.create () in
      let sharded = Sh.create ~shards () in
      let rng = Lsutil.Rng.create base in
      for i = 0 to 400 do
        let k0 = Lsutil.Rng.int rng 64
        and k1 = Lsutil.Rng.int rng 64
        and k2 = Lsutil.Rng.int rng 64 in
        match Lsutil.Rng.int rng 3 with
        | 0 ->
            let a = Ih.find_or_add reference k0 k1 k2 i
            and b = Sh.find_or_add sharded k0 k1 k2 i in
            if a <> b then QCheck2.Test.fail_report "find_or_add diverged"
        | 1 ->
            if Ih.find reference k0 k1 k2 <> Sh.find sharded k0 k1 k2 then
              QCheck2.Test.fail_report "find diverged"
        | _ ->
            if Ih.mem reference k0 k1 k2 <> Sh.mem sharded k0 k1 k2 then
              QCheck2.Test.fail_report "mem diverged"
      done;
      if Ih.length reference <> Sh.length sharded then
        QCheck2.Test.fail_report "length diverged";
      let s = Sh.stats sharded in
      if s.Ih.entries <> Sh.length sharded then
        QCheck2.Test.fail_report "aggregated stats lost entries";
      true)

(* Concurrent insertion on DISTINCT segments: one worker domain per
   segment, each inserting only keys that hash into its segment.  The
   arenas are disjoint, so the merged table must hold every binding. *)
let test_shard_concurrent () =
  let shards = 4 in
  let sharded = Sh.create ~shards () in
  let keys = Array.init 4000 (fun i -> (i * 7, i * 13, i * 29)) in
  let for_segment s =
    Array.to_list keys
    |> List.filteri (fun i _ ->
           let k0, k1, k2 = keys.(i) in
           Sh.segment_index sharded k0 k1 k2 = s)
  in
  let per_seg = Array.init shards for_segment in
  let workers =
    Array.to_list
      (Array.init shards (fun s ->
           Domain.spawn (fun () ->
               List.iteri
                 (fun i (k0, k1, k2) ->
                   ignore (Sh.find_or_add sharded k0 k1 k2 ((s * 100_000) + i)))
                 per_seg.(s))))
  in
  List.iter Domain.join workers;
  Alcotest.(check int)
    "every segment-disjoint insertion landed"
    (Array.fold_left (fun n l -> n + List.length l) 0 per_seg)
    (Sh.length sharded);
  Array.iteri
    (fun s l ->
      List.iteri
        (fun i (k0, k1, k2) ->
          Alcotest.(check int)
            (Printf.sprintf "seg %d key %d readable" s i)
            ((s * 100_000) + i)
            (Sh.find sharded k0 k1 k2))
        l)
    per_seg

(* ----- Partition properties ----- *)

let random_mig seed =
  let net =
    Helpers.random_network ~seed ~inputs:6 ~gates:(40 + (seed mod 60))
      ~outputs:4
  in
  Mig.Convert.of_network net

let test_partition_properties =
  Helpers.qtest ~count:40 "regions cover, disjoint, fanout-closed"
    QCheck2.Gen.(pair (int_bound 10_000) (int_range 1 12))
    (fun (seed, target) ->
      let g = random_mig seed in
      let part = P.split ~target g in
      (* cover + disjoint: concatenated region nodes = live majs,
         each exactly once, ascending *)
      let live = ref [] in
      M.iter_live_majs g (fun id _ -> live := id :: !live);
      let live = List.rev !live in
      let covered =
        List.concat_map
          (fun r -> Array.to_list r.P.nodes)
          (Array.to_list part.P.regions)
      in
      if covered <> live then
        QCheck2.Test.fail_report "regions do not partition the live cone";
      if part.P.live_majs <> List.length live then
        QCheck2.Test.fail_report "live_majs miscounted";
      (* region index per node *)
      let nn = M.num_nodes g in
      let region_of = Array.make nn (-1) in
      Array.iteri
        (fun ri r -> Array.iter (fun id -> region_of.(id) <- ri) r.P.nodes)
        part.P.regions;
      let on_frontier = Array.make nn false in
      Array.iter (fun id -> on_frontier.(id) <- true) part.P.frontier;
      (* fanout-closed: a non-output region node is only ever
         referenced from its own region; outputs and inputs lie on
         the frontier *)
      let is_out = Array.make nn false in
      Array.iter
        (fun r -> Array.iter (fun id -> is_out.(id) <- true) r.P.outputs)
        part.P.regions;
      Array.iteri
        (fun ri r ->
          Array.iter
            (fun id ->
              if not (on_frontier.(id) || region_of.(id) >= 0) then
                QCheck2.Test.fail_report "region input neither frontier nor maj")
            r.P.inputs;
          Array.iter
            (fun id ->
              if not on_frontier.(id) then
                QCheck2.Test.fail_report "region output off the frontier")
            r.P.outputs;
          Array.iter
            (fun id ->
              let fs = M.fanins g id in
              Array.iter
                (fun s ->
                  let fn = S.node s in
                  if region_of.(fn) >= 0 && region_of.(fn) <> ri
                     && not is_out.(fn)
                  then
                    QCheck2.Test.fail_report
                      "cross-region reference to a non-output node")
                fs)
            r.P.nodes)
        part.P.regions;
      M.iter_pos g (fun _ s ->
          let fn = S.node s in
          if region_of.(fn) >= 0 then begin
            let r = part.P.regions.(region_of.(fn)) in
            if not (Array.exists (fun id -> id = fn) r.P.outputs) then
              QCheck2.Test.fail_report "PO-referenced node not a region output"
          end);
      true)

(* ----- Flow.Par: jobs-differential ----- *)

type ntree =
  | N of string * (string * T.value) list * (string * int) list * ntree list

let rec normalize (n : T.node) =
  N (n.T.name, n.T.meta, n.T.counters, List.map normalize n.T.children)

let graph_fp g =
  let majs = ref [] in
  M.iter_live_majs g (fun id fis ->
      majs :=
        (id, Array.to_list (Array.map (fun s -> (s : S.t :> int)) fis))
        :: !majs);
  ( M.size g,
    M.depth g,
    List.rev !majs,
    M.pis g,
    List.map (fun (n, s) -> (n, (s : S.t :> int))) (M.pos g) )

let region_fp (r : Par.region_outcome) =
  ( r.Par.index,
    r.Par.nodes_in,
    r.Par.nodes_out,
    r.Par.verified,
    r.Par.fell_back,
    r.Par.san_findings,
    Option.map normalize r.Par.telemetry )

let outcome_fp (o : Par.outcome) =
  ( o.Par.live_majs,
    List.map region_fp o.Par.regions,
    o.Par.size_in,
    o.Par.depth_in,
    o.Par.size_out,
    o.Par.depth_out,
    o.Par.equivalent )

(* One Par run under a fresh sanitizer-armed ctx; returns the bit-level
   fingerprint (graph + normalized telemetry + outcome) and the parent
   ctx cleanliness. *)
let par_run ~jobs ~spec seed =
  let ctx = Ctx.create ~stats:true ~check:true ~san:true () in
  let net =
    Helpers.random_network ~seed ~inputs:6 ~gates:(50 + (seed mod 50))
      ~outputs:4
  in
  let m = Mig.Convert.of_network ~ctx net in
  let (out, oc), tree =
    T.capture (Ctx.stats ctx) "diff" (fun () -> Par.run ~jobs ~spec m)
  in
  San.drain (Ctx.san ctx);
  ( graph_fp out,
    outcome_fp oc,
    Option.map normalize tree,
    San.is_clean (Ctx.san ctx),
    Mig.Equiv.migs ~seed:1 m out )

let test_par_differential =
  Helpers.qtest ~count:6 "Par jobs in {1,2,4,8} bit-identical, san-clean"
    QCheck2.Gen.(int_bound 10_000)
    (fun seed ->
      Mig.Transform.prewarm ();
      let spec = { Par.default_spec with Par.target = 12; effort = 1 } in
      let base = par_run ~jobs:1 ~spec seed in
      let fp (g, o, t, _, _) = (g, o, t) in
      let (_, _, _, clean1, equiv1) = base in
      if not clean1 then QCheck2.Test.fail_report "jobs=1 left SAN findings";
      if not equiv1 then QCheck2.Test.fail_report "jobs=1 not equivalent";
      List.iter
        (fun jobs ->
          let r = par_run ~jobs ~spec seed in
          let (_, _, _, clean, equiv) = r in
          if not clean then
            QCheck2.Test.fail_reportf "jobs=%d left SAN findings" jobs;
          if not equiv then
            QCheck2.Test.fail_reportf "jobs=%d not equivalent" jobs;
          if fp r <> fp base then
            QCheck2.Test.fail_reportf
              "jobs=%d diverged from the sequential run" jobs)
        [ 2; 4; 8 ];
      true)

(* Table I: every circuit, sequential vs 4 domains, guards off for
   speed (the qcheck suite above runs the guarded differential). *)
let test_par_table1 () =
  Mig.Transform.prewarm ();
  let spec =
    {
      Par.default_spec with
      Par.target = 96;
      effort = 1;
      verify = Some false;
    }
  in
  List.iter
    (fun (e : Benchmarks.Suite.entry) ->
      let build jobs =
        let ctx = Ctx.create () in
        let m =
          Mig.Convert.of_network ~ctx
            (Network.Graph.flatten_aoig (e.Benchmarks.Suite.build ()))
        in
        let out, oc = Par.run ~jobs ~spec m in
        (graph_fp out, outcome_fp oc, Mig.Equiv.migs ~seed:7 m out)
      in
      let g1, o1, eq1 = build 1 in
      let g4, o4, eq4 = build 4 in
      Alcotest.(check bool) (e.Benchmarks.Suite.name ^ " jobs=1 equivalent")
        true eq1;
      Alcotest.(check bool) (e.Benchmarks.Suite.name ^ " jobs=4 equivalent")
        true eq4;
      Alcotest.(check bool)
        (e.Benchmarks.Suite.name ^ " jobs=4 == jobs=1")
        true
        ((g1, o1) = (g4, o4)))
    Benchmarks.Suite.all

(* ----- satellite: compact reuses ctx scratch ----- *)

let test_compact_scratch () =
  let ctx = Ctx.create () in
  let net = Helpers.random_network ~seed:5 ~inputs:6 ~gates:80 ~outputs:4 in
  let m = Mig.Convert.of_network ~ctx net in
  ignore (M.compact m);
  ignore (M.compact m);
  let warm = Ctx.scratch_allocs ctx in
  for _ = 1 to 5 do
    ignore (M.compact m)
  done;
  Alcotest.(check int)
    "steady-state compact allocates no fresh scratch" warm
    (Ctx.scratch_allocs ctx)

let () =
  Alcotest.run "par"
    [
      ( "inthash",
        [
          Alcotest.test_case "reserve absorbs" `Quick test_inthash_reserve;
          Alcotest.test_case "stats" `Quick test_inthash_stats;
        ] );
      ( "shardhash",
        [
          test_shard_differential;
          Alcotest.test_case "concurrent segments" `Quick test_shard_concurrent;
        ] );
      ("partition", [ test_partition_properties ]);
      ( "par",
        [
          test_par_differential;
          Alcotest.test_case "table1" `Slow test_par_table1;
        ] );
      ("compact", [ Alcotest.test_case "scratch reuse" `Quick test_compact_scratch ]);
    ]
