module V = Lsutil.Vec
module R = Lsutil.Rng

let test_vec_push_get () =
  let v = V.create () in
  Alcotest.(check int) "empty" 0 (V.length v);
  for i = 0 to 99 do
    Alcotest.(check int) "push returns index" i (V.push v (i * 2))
  done;
  Alcotest.(check int) "length" 100 (V.length v);
  Alcotest.(check int) "get" 84 (V.get v 42);
  V.set v 42 7;
  Alcotest.(check int) "set" 7 (V.get v 42)

let test_vec_bounds () =
  let v = V.create () in
  ignore (V.push v 1);
  Alcotest.check_raises "get oob" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (V.get v 1));
  Alcotest.check_raises "negative" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (V.get v (-1)))

let test_vec_iter_fold () =
  let v = V.of_array [| 1; 2; 3; 4 |] in
  Alcotest.(check int) "fold sum" 10 (V.fold_left ( + ) 0 v);
  let acc = ref [] in
  V.iteri (fun i x -> acc := (i, x) :: !acc) v;
  Alcotest.(check int) "iteri count" 4 (List.length !acc);
  Alcotest.(check (array int)) "to_array" [| 1; 2; 3; 4 |] (V.to_array v);
  V.clear v;
  Alcotest.(check int) "clear" 0 (V.length v)

(* the backing store must be representation-sound: a float Vec goes
   through OCaml's flat float-array layout, so any [Obj.magic 0] dummy
   in the backing array corrupts reads/blits *)
let test_vec_float_payload () =
  let v = V.create ~capacity:4 () in
  for i = 0 to 99 do
    ignore (V.push v (float_of_int i +. 0.5))
  done;
  Alcotest.(check (float 0.0)) "get through growth" 42.5 (V.get v 42);
  Alcotest.(check (float 0.0)) "fold sum" 5000.0 (V.fold_left ( +. ) 0.0 v);
  V.set v 0 (-1.25);
  Alcotest.(check (float 0.0)) "set" (-1.25) (V.get v 0);
  let a = V.to_array v in
  Alcotest.(check (float 0.0)) "to_array flat access" 99.5 a.(99);
  let w = V.of_array [| 1.5; 2.5 |] in
  ignore (V.push w 3.5);
  Alcotest.(check (float 0.0)) "of_array then push" 3.5 (V.get w 2)

type rec_payload = { tag : string; weight : float }

let test_vec_record_payload () =
  let v = V.create () in
  for i = 0 to 49 do
    ignore (V.push v { tag = string_of_int i; weight = float_of_int i })
  done;
  let r = V.get v 17 in
  Alcotest.(check string) "field access" "17" r.tag;
  Alcotest.(check (float 0.0)) "float field" 17.0 r.weight;
  V.iteri (fun i x -> Alcotest.(check string) "iteri" (string_of_int i) x.tag) v;
  let a = V.to_array v in
  Alcotest.(check string) "to_array" "49" a.(49).tag

let test_rng_determinism () =
  let a = R.create 7 and b = R.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (R.int a 1000) (R.int b 1000)
  done;
  let c = R.create 8 in
  let diff = ref false in
  for _ = 1 to 20 do
    if R.int a 1000 <> R.int c 1000 then diff := true
  done;
  Alcotest.(check bool) "different seeds diverge" true !diff

let test_rng_bounds () =
  let r = R.create 3 in
  for _ = 1 to 1000 do
    let v = R.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Rng.int") (fun () ->
      ignore (R.int r 0))

let test_rng_float_uniform () =
  let r = R.create 11 in
  let n = 10_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let f = R.float r in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0);
    sum := !sum +. f
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (abs_float (mean -. 0.5) < 0.02)

let test_vec_reserve () =
  (* reserve on an empty vector takes effect at the first push *)
  let v = V.create () in
  V.reserve v 1000;
  for i = 0 to 999 do
    ignore (V.push v i)
  done;
  Alcotest.(check int) "length after reserved pushes" 1000 (V.length v);
  Alcotest.(check int) "content intact" 742 (V.get v 742);
  (* reserve on a non-empty vector preserves contents *)
  let w = V.of_array [| 10; 11; 12 |] in
  V.reserve w 500;
  Alcotest.(check (array int)) "contents survive realloc" [| 10; 11; 12 |]
    (V.to_array w);
  ignore (V.push w 13);
  Alcotest.(check int) "push after reserve" 13 (V.get w 3);
  (* a smaller reserve is a no-op *)
  V.reserve w 2;
  Alcotest.(check int) "shrinking reserve keeps elements" 4 (V.length w);
  (* clear keeps capacity but forgets elements *)
  V.clear w;
  Alcotest.(check int) "cleared" 0 (V.length w);
  ignore (V.push w 99);
  Alcotest.(check int) "reusable after clear" 99 (V.get w 0)

module Ih = Lsutil.Inthash

let test_inthash_basic () =
  let t = Ih.create () in
  Alcotest.(check int) "empty" 0 (Ih.length t);
  Alcotest.(check int) "miss" (-1) (Ih.find t 1 2 3);
  Ih.add t 1 2 3 42;
  Alcotest.(check int) "hit" 42 (Ih.find t 1 2 3);
  Alcotest.(check bool) "mem" true (Ih.mem t 1 2 3);
  Alcotest.(check bool) "not mem" false (Ih.mem t 3 2 1);
  Alcotest.(check int) "length" 1 (Ih.length t);
  (* duplicate insertion: the earliest-probed binding wins on find *)
  Ih.add t 1 2 3 7;
  Alcotest.(check int) "first binding wins" 42 (Ih.find t 1 2 3);
  Alcotest.(check int) "duplicates counted" 2 (Ih.length t);
  Ih.clear t;
  Alcotest.(check int) "cleared" 0 (Ih.length t);
  Alcotest.(check int) "miss after clear" (-1) (Ih.find t 1 2 3)

let test_inthash_find_or_add () =
  let t = Ih.create ~capacity:16 () in
  Alcotest.(check int) "inserts when absent" 5 (Ih.find_or_add t 9 8 7 5);
  Alcotest.(check int) "returns existing" 5 (Ih.find_or_add t 9 8 7 11);
  Alcotest.(check int) "single entry" 1 (Ih.length t);
  Alcotest.(check int) "find agrees" 5 (Ih.find t 9 8 7);
  Alcotest.check_raises "negative key"
    (Invalid_argument "Inthash.find_or_add: negative key or value") (fun () ->
      ignore (Ih.find_or_add t (-1) 0 0 1))

(* Differential check against Hashtbl through growth: random triples
   with many collisions, mixing add and find_or_add. *)
let test_inthash_vs_hashtbl () =
  let t = Ih.create ~capacity:16 () in
  let h : (int * int * int, int) Hashtbl.t = Hashtbl.create 16 in
  let r = R.create 0xd1ff in
  for v = 0 to 4999 do
    let k0 = R.int r 40 and k1 = R.int r 40 and k2 = R.int r 40 in
    match Hashtbl.find_opt h (k0, k1, k2) with
    | Some v' ->
        Alcotest.(check int) "existing binding" v' (Ih.find_or_add t k0 k1 k2 v)
    | None ->
        Alcotest.(check int) "fresh binding" v (Ih.find_or_add t k0 k1 k2 v);
        Hashtbl.add h (k0, k1, k2) v
  done;
  Alcotest.(check int) "same cardinality" (Hashtbl.length h) (Ih.length t);
  Hashtbl.iter
    (fun (k0, k1, k2) v ->
      Alcotest.(check int) "lookup agrees" v (Ih.find t k0 k1 k2))
    h;
  (* probes for absent keys agree too *)
  for _ = 1 to 1000 do
    let k0 = R.int r 60 and k1 = R.int r 60 and k2 = R.int r 60 in
    let expect =
      match Hashtbl.find_opt h (k0, k1, k2) with Some v -> v | None -> -1
    in
    Alcotest.(check int) "find" expect (Ih.find t k0 k1 k2)
  done

let test_inthash_reserve () =
  let t = Ih.create () in
  Ih.reserve t 10_000;
  for v = 0 to 9_999 do
    Ih.add t v (v * 3) (v * 7) v
  done;
  Alcotest.(check int) "all inserted" 10_000 (Ih.length t);
  Alcotest.(check int) "spot check" 1234 (Ih.find t 1234 3702 8638);
  let seen = ref 0 in
  Ih.iter (fun _ _ _ _ -> incr seen) t;
  Alcotest.(check int) "iter visits all" 10_000 !seen

let test_rng_split () =
  let r = R.create 5 in
  let s = R.split r in
  (* the split stream must differ from the parent's continuation *)
  let differs = ref false in
  for _ = 1 to 20 do
    if R.int r 1_000_000 <> R.int s 1_000_000 then differs := true
  done;
  Alcotest.(check bool) "split independent" true !differs

(* ----- JSON \u escapes: strict hex, surrogate pairing ----- *)

module J = Lsutil.Json

let parse_jstring body = J.of_string (Printf.sprintf "\"%s\"" body)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* minimal UTF-8 validator: well-formed sequences, shortest form,
   scalar values only (no surrogate code points) *)
let utf8_valid s =
  let n = String.length s in
  let rec go i =
    if i >= n then true
    else
      let c = Char.code s.[i] in
      if c < 0x80 then go (i + 1)
      else if c land 0xe0 = 0xc0 then cont i 1 (c land 0x1f) 0x80
      else if c land 0xf0 = 0xe0 then cont i 2 (c land 0x0f) 0x800
      else if c land 0xf8 = 0xf0 then cont i 3 (c land 0x07) 0x10000
      else false
  and cont i k first lo =
    if i + k >= n then false
    else
      let rec take j acc =
        if j > i + k then Some acc
        else
          let c = Char.code s.[j] in
          if c land 0xc0 = 0x80 then take (j + 1) ((acc lsl 6) lor (c land 0x3f))
          else None
      in
      match take (i + 1) first with
      | None -> false
      | Some cp ->
          cp >= lo && cp <= 0x10FFFF
          && not (cp >= 0xD800 && cp <= 0xDFFF)
          && go (i + k + 1)
  in
  go 0

let test_json_unicode_ok () =
  let ok body expect =
    match parse_jstring body with
    | Ok (J.String v) -> Alcotest.(check string) body expect v
    | Ok _ -> Alcotest.fail (body ^ ": parsed to a non-string")
    | Error e -> Alcotest.fail (body ^ ": " ^ e)
  in
  ok {|\u0041|} "A";
  ok {|\u007A|} "z";
  ok {|\u00e9|} "\xc3\xa9";
  ok {|\u20AC|} "\xe2\x82\xac";
  ok {|\uFFFD|} "\xef\xbf\xbd";
  (* surrogate pair U+1F600 *)
  ok {|\ud83d\ude00|} "\xf0\x9f\x98\x80";
  ok {|\uD83D\uDE00x|} "\xf0\x9f\x98\x80x";
  (* mixed-case hex, embedded in surrounding text *)
  ok {|a\u00E9b|} "a\xc3\xa9b"

let test_json_unicode_bad () =
  let bad body =
    match parse_jstring body with
    | Ok _ -> Alcotest.fail (body ^ ": accepted")
    | Error e ->
        (* errors must stay positioned (regression: a catch-all around
           the decoder used to replace them with an unpositioned one) *)
        Alcotest.(check bool)
          (body ^ ": positioned error") true (contains e "offset")
  in
  (* strict four-hex-digit decoding: [int_of_string "0x..."] lookalikes
     must all be rejected *)
  bad {|\u12_3|};
  bad {|\u_123|};
  bad {|\u123|};
  bad {|\u12|};
  bad {|\u|};
  bad {|\u123g|};
  bad {|\uxyzw|};
  bad {|\u 123|};
  bad {|\u-123|};
  bad {|\u+123|};
  bad {|\u0x12|};
  (* lone / unpaired surrogate halves *)
  bad {|\uD800|};
  bad {|\uDBFF|};
  bad {|\uDC00|};
  bad {|\uDFFF|};
  bad {|\uD800A|};
  bad {|\uD800\n|};
  bad {|\uD800\uD800|};
  bad {|x\uDE00y|}

(* fuzz: escape soup never crashes the parser, and anything it accepts
   is valid UTF-8 *)
let prop_json_escape_soup =
  let fragment =
    QCheck2.Gen.oneofl
      [
        {|\u|}; {|\ud8|}; {|\ud83d|}; {|\ude00|}; {|\uD800|}; {|\uDC01|};
        {|A|}; "0"; "1"; "9"; "a"; "f"; "g"; "A"; "F"; "_"; "-"; "+";
        "x"; " "; {|\\|}; {|\n|}; "e9"; "20AC"; "d800"; "dc00"; "ffff";
      ]
  in
  Helpers.qtest ~count:500 "qcheck: \\u escape soup is total and UTF-8-clean"
    QCheck2.Gen.(map (String.concat "") (list_size (int_bound 8) fragment))
    (fun soup ->
      match parse_jstring soup with
      | Ok (J.String v) -> utf8_valid v
      | Ok _ -> false
      | Error _ -> true)

(* roundtrip: every scalar value encoded as \uXXXX (or a surrogate
   pair above the BMP) decodes to its shortest-form UTF-8 bytes *)
let utf8_encode cp =
  let b = Buffer.create 4 in
  if cp < 0x80 then Buffer.add_char b (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char b (Char.chr (0xc0 lor (cp lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xe0 lor (cp lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xf0 lor (cp lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
  end;
  Buffer.contents b

let prop_json_scalar_roundtrip =
  let gen_scalar =
    QCheck2.Gen.(
      oneof
        [
          int_range 1 0xD7FF;
          int_range 0xE000 0xFFFF;
          int_range 0x10000 0x10FFFF;
        ])
  in
  Helpers.qtest ~count:300 "qcheck: \\u scalar-value roundtrip" gen_scalar
    (fun cp ->
      let body =
        if cp < 0x10000 then Printf.sprintf {|\u%04x|} cp
        else
          let u = cp - 0x10000 in
          Printf.sprintf {|\u%04x\u%04x|}
            (0xD800 lor (u lsr 10))
            (0xDC00 lor (u land 0x3FF))
      in
      match parse_jstring body with
      | Ok (J.String v) -> String.equal v (utf8_encode cp)
      | _ -> false)

let () =
  Alcotest.run "lsutil"
    [
      ( "vec",
        [
          Alcotest.test_case "push/get/set" `Quick test_vec_push_get;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "iterate/fold" `Quick test_vec_iter_fold;
          Alcotest.test_case "float payload" `Quick test_vec_float_payload;
          Alcotest.test_case "record payload" `Quick test_vec_record_payload;
          Alcotest.test_case "reserve/clear" `Quick test_vec_reserve;
        ] );
      ( "inthash",
        [
          Alcotest.test_case "basic" `Quick test_inthash_basic;
          Alcotest.test_case "find_or_add" `Quick test_inthash_find_or_add;
          Alcotest.test_case "differential vs Hashtbl" `Quick
            test_inthash_vs_hashtbl;
          Alcotest.test_case "reserve/iter" `Quick test_inthash_reserve;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "uniformity" `Quick test_rng_float_uniform;
          Alcotest.test_case "split" `Quick test_rng_split;
        ] );
      ( "json",
        [
          Alcotest.test_case "\\u escapes decode" `Quick test_json_unicode_ok;
          Alcotest.test_case "\\u escapes reject" `Quick test_json_unicode_bad;
          prop_json_escape_soup;
          prop_json_scalar_roundtrip;
        ] );
    ]
