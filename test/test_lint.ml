(* The AST source linter (tools/lint_rules.ml) over the fixtures in
   test/lint_fixtures/: each SRC code fires exactly once on its
   fixture, the two regex-miss regressions are caught, suppression
   attributes and path scoping behave. *)

module L = Lint_rules

let fixture name = Filename.concat "lint_fixtures" name

(* fixtures live outside lib/, so lib-scoped rules are exercised by
   pinning the scope path *)
let lint ?(scope = "lib/fixture/case.ml") name =
  match L.lint_file ~scope_path:scope (fixture name) with
  | Ok fs -> fs
  | Error e -> Alcotest.failf "lint_file %s: %s" name e

let codes fs = List.map (fun (f : L.finding) -> f.L.code) fs

let expect_one name code =
  let fs = lint name in
  Alcotest.(check (list string))
    (name ^ " fires " ^ code ^ " exactly once")
    [ code ] (codes fs)

(* ----- one fixture, one finding, stable code ----- *)

let test_each_code () =
  (* regression: `let counter=ref 0` (no spaces) slipped past the old
     regex linter's mandatory ` = ` *)
  expect_one "src001_nospace.ml" "SRC001";
  (* regression: the annotated form confused the regex's [^=]* type
     matcher; the AST rule peels the constraint *)
  expect_one "src001_annot.ml" "SRC001";
  expect_one "src002_spawn.ml" "SRC002";
  expect_one "src003_clock.ml" "SRC003";
  expect_one "src004_magic.ml" "SRC004";
  expect_one "src005_catchall.ml" "SRC005";
  expect_one "src006_getenv.ml" "SRC006";
  expect_one "src007_socket.ml" "SRC007"

let test_positions () =
  match lint "src004_magic.ml" with
  | [ f ] ->
      Alcotest.(check int) "line" 1 f.L.line;
      Alcotest.(check int) "col" 32 f.L.col;
      Alcotest.(check string) "file is the real path" (fixture "src004_magic.ml")
        f.L.file
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_clean_fixture () =
  (* function-local ref/Hashtbl, named exception handler, offending
     names only in comments: nothing may fire *)
  Alcotest.(check (list string)) "clean fixture" [] (codes (lint "clean.ml"))

let test_suppression () =
  (* same Obj.magic as src004_magic.ml, but under [@@@san.allow] *)
  Alcotest.(check (list string))
    "[@@@san.allow \"SRC004\"] silences the rule" []
    (codes (lint "suppressed.ml"));
  Alcotest.(check (list string))
    "[@@@san.allow \"SRC007\"] silences the socket rule" []
    (codes (lint "src007_suppressed.ml"))

(* ----- path scoping ----- *)

let test_scoping () =
  let t = Alcotest.(check bool) in
  (* lib-only rules are silent outside lib/ *)
  t "SRC001 binds in lib/" true (L.applies "SRC001" "lib/util/vec.ml");
  t "SRC001 silent in bench/" false (L.applies "SRC001" "bench/main.ml");
  t "SRC005 silent in bin/" false (L.applies "SRC005" "bin/mighty.ml");
  (* capability owners are exempt by path *)
  t "SRC006 exempts Lsutil.Env" false (L.applies "SRC006" "lib/util/env.ml");
  t "SRC006 binds elsewhere in lib/" true (L.applies "SRC006" "lib/util/vec.ml");
  t "SRC002 exempts Flow.Batch" false (L.applies "SRC002" "lib/flow/batch.ml");
  t "SRC002 binds outside lib/ too" true (L.applies "SRC002" "test/test_foo.ml");
  t "SRC003 exempts Budget" false (L.applies "SRC003" "lib/util/budget.ml");
  t "SRC003 exempts Telemetry" false
    (L.applies "SRC003" "lib/util/telemetry.ml");
  t "SRC003 silent outside lib/" false (L.applies "SRC003" "bench/main.ml");
  (* SRC004 is repo-wide *)
  t "SRC004 binds in bench/" true (L.applies "SRC004" "bench/main.ml");
  (* the serve layer owns the network surface *)
  t "SRC007 binds in lib/" true (L.applies "SRC007" "lib/util/vec.ml");
  t "SRC007 binds in bin/" true (L.applies "SRC007" "bin/mighty.ml");
  t "SRC007 exempts lib/serve/" false
    (L.applies "SRC007" "lib/serve/server.ml");
  t "SRC007 exempts test_serve" false
    (L.applies "SRC007" "test/test_serve.ml");
  t "SRC007 binds in other tests" true
    (L.applies "SRC007" "test/test_par.ml");
  t "SRC002 exempts the serve daemon" false
    (L.applies "SRC002" "lib/serve/server.ml");
  t "SRC002 exempts the load harness" false
    (L.applies "SRC002" "lib/serve/load.ml");
  (* a ./ prefix or absolute path scopes like the relative one *)
  t "./ prefix normalized" true (L.applies "SRC001" "./lib/util/vec.ml");
  t "absolute path normalized" false
    (L.applies "SRC006" "/root/repo/lib/util/env.ml")

(* ----- the scoped default: fixtures by their own path ----- *)

let test_own_path_scope () =
  (* linted at its real (non-lib) path, a lib-only rule stays silent
     while the repo-wide one still fires *)
  match L.lint_file (fixture "src001_nospace.ml") with
  | Ok fs -> Alcotest.(check (list string)) "SRC001 silent outside lib/" [] (codes fs)
  | Error e -> Alcotest.fail e

(* ----- registry coherence ----- *)

let test_catalog () =
  let lint_codes = List.map (fun r -> r.L.code) L.catalog in
  Alcotest.(check (list string))
    "stable codes, in order"
    [ "SRC001"; "SRC002"; "SRC003"; "SRC004"; "SRC005"; "SRC006"; "SRC007" ]
    lint_codes;
  (* every SRC and SAN code is registered in the Check rule registry
     alongside the structural MIG/AIG/NET rules *)
  List.iter
    (fun c ->
      Alcotest.(check bool) (c ^ " in Check.Rules.all") true (Check_rules.mem c))
    (lint_codes
    @ [ "SAN001"; "SAN002"; "SAN003"; "SAN004"; "SAN005"; "SAN006" ])

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "each code fires exactly once" `Quick
            test_each_code;
          Alcotest.test_case "finding positions" `Quick test_positions;
          Alcotest.test_case "clean fixture" `Quick test_clean_fixture;
          Alcotest.test_case "suppression attribute" `Quick test_suppression;
        ] );
      ( "scoping",
        [
          Alcotest.test_case "applies matrix" `Quick test_scoping;
          Alcotest.test_case "own-path default" `Quick test_own_path_scope;
        ] );
      ("registry", [ Alcotest.test_case "catalog" `Quick test_catalog ]);
    ]
