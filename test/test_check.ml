(* The static-analysis subsystem: every lint rule fired by a
   hand-built malformed graph, the transform guard on broken passes,
   the MIG_CHECK environment toggle, and the acceptance property that
   every optimizer's output lints clean. *)

module M = Mig.Graph
module A = Aig.Graph
module N = Network.Graph
module S = Network.Signal

let check_rule name code r =
  Alcotest.(check bool)
    (Printf.sprintf "%s fires %s" name code)
    true
    (Check.Report.has_rule r code)

let check_dirty name r =
  Alcotest.(check bool) (name ^ " is dirty") false (Check.Report.is_clean r)

let check_clean name r =
  Alcotest.(check bool)
    (Printf.sprintf "%s is clean: %s" name (Check.Report.to_string r))
    true
    (Check.Report.is_clean r)

(* a well-formed full adder, the clean baseline *)
let full_adder ?ctx () =
  let g = M.create ?ctx () in
  let a = M.add_pi g "a" and b = M.add_pi g "b" and c = M.add_pi g "cin" in
  M.add_po g "sum" (M.xor3 g a b c);
  M.add_po g "cout" (M.maj g a b c);
  g

(* ----- MIG rules ----- *)

let test_mig_clean () =
  check_clean "full adder" (Mig.Check.lint (full_adder ()))

let test_mig001_topological () =
  let g = M.create () in
  let a = M.add_pi g "a" and b = M.add_pi g "b" in
  (* self-referencing fanin: in range but not topologically earlier *)
  let id = M.num_nodes g in
  ignore (M.Unsafe.push_node g (S.make id false) a b);
  let r = Mig.Check.lint g in
  check_rule "self-loop" "MIG001" r;
  check_dirty "self-loop" r

let test_mig002_dangling () =
  let g = M.create () in
  let a = M.add_pi g "a" and b = M.add_pi g "b" in
  ignore (M.Unsafe.push_node g (S.make 999 false) a b);
  check_rule "dangling fanin" "MIG002" (Mig.Check.lint g);
  let g2 = M.create () in
  ignore (M.add_pi g2 "a");
  ignore (M.Unsafe.push_raw g2 (-1) 0 2);
  check_rule "inconsistent PI markers" "MIG002" (Mig.Check.lint g2);
  let g3 = full_adder () in
  M.add_po g3 "f" (S.make 999 false);
  check_rule "dangling PO" "MIG002" (Mig.Check.lint g3)

let test_mig003_strash () =
  (* a node bypassing the hash table: missing from strash *)
  let g = M.create () in
  let a = M.add_pi g "a" and b = M.add_pi g "b" and c = M.add_pi g "c" in
  ignore (M.Unsafe.push_node g a b c);
  check_rule "missing from strash" "MIG003" (Mig.Check.lint g);
  (* a structural duplicate of an existing node *)
  let g2 = M.create () in
  let a = M.add_pi g2 "a" and b = M.add_pi g2 "b" and c = M.add_pi g2 "c" in
  let s = M.maj g2 a b c in
  M.add_po g2 "f" s;
  ignore (M.Unsafe.push_node g2 a b c);
  check_rule "structural duplicate" "MIG003" (Mig.Check.lint g2);
  (* a stale extra entry in the table *)
  let g3 = full_adder () in
  ignore (M.Unsafe.strash_add g3 (S.make 1 false, S.make 1 false, S.make 1 false) 1);
  check_rule "stale strash entry" "MIG003" (Mig.Check.lint g3)

let test_mig004_normalization () =
  let g = M.create () in
  let a = M.add_pi g "a" and b = M.add_pi g "b" and c = M.add_pi g "c" in
  ignore (M.Unsafe.push_node g c b a);
  check_rule "unsorted fanins" "MIG004" (Mig.Check.lint g);
  let g2 = M.create () in
  let a = M.add_pi g2 "a" and b = M.add_pi g2 "b" and c = M.add_pi g2 "c" in
  ignore (M.Unsafe.push_node g2 (S.not_ a) (S.not_ b) c);
  check_rule "two complemented fanins" "MIG004" (Mig.Check.lint g2);
  let g3 = M.create () in
  let a = M.add_pi g3 "a" and c = M.add_pi g3 "c" in
  ignore (M.Unsafe.push_node g3 a a c);
  check_rule "Omega.M-collapsible node" "MIG004" (Mig.Check.lint g3)

let test_mig005_interface () =
  let g = M.create () in
  ignore (M.add_pi g "a");
  ignore (M.add_pi g "a");
  check_rule "duplicate PI name" "MIG005" (Mig.Check.lint g);
  let g2 = full_adder () in
  let a = List.hd (M.pis g2) in
  M.add_po g2 "sum" (S.make a false);
  check_rule "duplicate PO name" "MIG005" (Mig.Check.lint g2)

let test_mig006_dead_nodes () =
  let g = M.create () in
  let a = M.add_pi g "a" and b = M.add_pi g "b" and c = M.add_pi g "c" in
  M.add_po g "f" (M.maj g a b c);
  ignore (M.and_ g a b) (* dead: not reachable from the PO *);
  let r = Mig.Check.lint g in
  check_rule "dead node" "MIG006" r;
  (* a warning, not an error: the graph is still clean *)
  check_clean "dead node is only a warning" r

(* ----- AIG rules ----- *)

let aig_adder () =
  let g = A.create () in
  let a = A.add_pi g "a" and b = A.add_pi g "b" and c = A.add_pi g "cin" in
  A.add_po g "sum" (A.xor_ g (A.xor_ g a b) c);
  A.add_po g "cout" (A.maj g a b c);
  g

let test_aig_rules () =
  check_clean "aig adder" (Aig.Check.lint (aig_adder ()));
  let g = A.create () in
  let a = A.add_pi g "a" and b = A.add_pi g "b" in
  ignore (A.Unsafe.push_node g b a) (* key order violated *);
  check_rule "unordered AND" "AIG004" (Aig.Check.lint g);
  let g2 = A.create () in
  let a = A.add_pi g2 "a" in
  ignore (A.Unsafe.push_node g2 (S.make 999 false) a);
  check_rule "dangling fanin" "AIG002" (Aig.Check.lint g2);
  let g3 = A.create () in
  let a = A.add_pi g3 "a" and b = A.add_pi g3 "b" in
  let s = A.and_ g3 a b in
  A.add_po g3 "f" s;
  ignore (A.Unsafe.push_node g3 a b);
  check_rule "structural duplicate" "AIG003" (Aig.Check.lint g3);
  let g4 = A.create () in
  ignore (A.add_pi g4 "a");
  ignore (A.add_pi g4 "a");
  check_rule "duplicate PI name" "AIG005" (Aig.Check.lint g4)

(* ----- network rules ----- *)

let test_net_rules () =
  let mk () =
    let n = N.create () in
    let a = N.add_pi n "a" and b = N.add_pi n "b" in
    (n, a, b)
  in
  let n, a, b = mk () in
  N.add_po n "f" (N.and_ n a b);
  check_clean "network" (Network.Check.lint n);
  let n, a, b = mk () in
  ignore (N.Unsafe.push_gate n N.And [| b; a |]);
  check_rule "unsorted And" "NET004" (Network.Check.lint n);
  let n, a, _ = mk () in
  ignore (N.Unsafe.push_gate n N.And [| S.make 999 false; a |]);
  check_rule "dangling fanin" "NET002" (Network.Check.lint n);
  let n, a, b = mk () in
  N.add_po n "f" (N.and_ n a b);
  N.Unsafe.strash_add n N.Xor [| a; b |] 1;
  check_rule "stale strash entry" "NET003" (Network.Check.lint n);
  let n = N.create () in
  ignore (N.add_pi n "a");
  ignore (N.add_pi n "a");
  check_rule "duplicate PI name" "NET005" (Network.Check.lint n)

(* ----- the transform guard ----- *)

(* Rebuild a MIG node-for-node, optionally tampering with the first
   PO: flip its polarity or rename it. *)
let rebuild ?(flip_po = false) ?(rename_po = false) g =
  let h = M.create () in
  let map = Hashtbl.create 64 in
  Hashtbl.replace map 0 (M.const0 h);
  List.iter (fun id -> Hashtbl.replace map id (M.add_pi h (M.pi_name g id))) (M.pis g);
  let tr s =
    S.xor_complement (Hashtbl.find map (S.node s)) (S.is_complement s)
  in
  M.iter_majs g (fun id fs ->
      Hashtbl.replace map id (M.maj h (tr fs.(0)) (tr fs.(1)) (tr fs.(2))));
  List.iteri
    (fun i (name, s) ->
      let s = tr s in
      let s = if flip_po && i = 0 then S.not_ s else s in
      let name = if rename_po && i = 0 then name ^ "_x" else name in
      M.add_po h name s)
    (M.pos g);
  h

let test_guard_passes () =
  let g = full_adder () in
  let out = Mig.Check.guarded ~enabled:true ~name:"id" (fun g -> g) g in
  Alcotest.(check bool) "identity passes" true (out == g);
  let out = Mig.Check.guarded ~enabled:true ~bdd:true ~name:"copy" (fun g -> rebuild g) g in
  Alcotest.(check int) "copy preserved size" (M.size g) (M.size out)

let test_guard_catches_broken_transform () =
  let g = full_adder () in
  match Mig.Check.guarded ~enabled:true ~name:"flip" (rebuild ~flip_po:true) g with
  | _ -> Alcotest.fail "flipped-polarity pass was not caught"
  | exception Check.Guard.Failed f -> (
      Alcotest.(check string) "stage" "equivalence"
        (Check.Guard.stage_name f.stage);
      match f.cex with
      | None -> Alcotest.fail "no counterexample extracted"
      | Some cex ->
          (* the counterexample must actually distinguish the graphs *)
          let stim inputs name =
            match List.assoc_opt name inputs with
            | Some true -> -1L
            | _ -> 0L
          in
          let eval m =
            let out =
              Network.Simulate.run (Mig.Convert.to_network m) (stim cex.inputs)
            in
            Int64.logand (List.assoc cex.po out) 1L
          in
          Alcotest.(check bool)
            "cex distinguishes the two graphs" true
            (eval g <> eval (rebuild ~flip_po:true g)))

let test_guard_catches_malformed_output () =
  let g = full_adder () in
  let corrupting g =
    ignore (M.Unsafe.push_node g (S.make 999 false) (S.make 1 false) (S.make 2 false));
    g
  in
  (match Mig.Check.guarded ~enabled:true ~name:"corrupt" corrupting g with
  | _ -> Alcotest.fail "malformed output was not caught"
  | exception Check.Guard.Failed f ->
      Alcotest.(check string) "stage" "post-lint" (Check.Guard.stage_name f.stage);
      (match f.report with
      | Some r -> check_rule "post-lint report" "MIG002" r
      | None -> Alcotest.fail "no lint report attached"));
  (* interface tampering is an equivalence-stage failure *)
  let g = full_adder () in
  match Mig.Check.guarded ~enabled:true ~name:"rename" (rebuild ~rename_po:true) g with
  | _ -> Alcotest.fail "interface change was not caught"
  | exception Check.Guard.Failed f ->
      Alcotest.(check string) "stage" "equivalence"
        (Check.Guard.stage_name f.stage)

let test_guard_env_toggle () =
  (* the env booleans are parsed once, by Lsutil.Env *)
  Alcotest.(check bool) "flag 0" false (Lsutil.Env.flag "0");
  Alcotest.(check bool) "flag yes" true (Lsutil.Env.flag "yes");
  Alcotest.(check bool) "flag 1" true (Lsutil.Env.flag "1");
  Unix.putenv "MIG_CHECK" "1";
  Alcotest.(check bool) "MIG_CHECK=1 reaches Ctx.default" true
    (Lsutil.Ctx.check (Lsutil.Ctx.default ()));
  Unix.putenv "MIG_CHECK" "0";
  Alcotest.(check bool) "MIG_CHECK=0 reaches Ctx.default" false
    (Lsutil.Ctx.check (Lsutil.Ctx.default ()));
  (* under a checking ctx, a bare guarded call (no ?enabled) arms *)
  let checking = Lsutil.Ctx.create ~check:true () in
  let g = full_adder ~ctx:checking () in
  (match Mig.Check.guarded ~name:"flip" (rebuild ~flip_po:true) g with
  | _ -> Alcotest.fail "guard did not arm from the ctx policy"
  | exception Check.Guard.Failed _ -> ());
  (* quiet ctx: the same broken pass runs bare *)
  let g = full_adder () in
  let out = Mig.Check.guarded ~name:"flip" (rebuild ~flip_po:true) g in
  Alcotest.(check int) "bare run returns the broken output" (M.num_pos g)
    (M.num_pos out)

(* ----- optimizers stay clean and equivalent under the guard ----- *)

let vars = [ "a"; "b"; "c"; "d"; "e"; "f" ]

let mig_of_terms terms =
  Mig.Convert.of_network (Helpers.network_of_terms ~vars terms)

let optimizer_configs =
  [
    ("opt_size e1", fun m -> Mig.Opt_size.run ~check:true ~effort:1 m);
    ("opt_size e2", fun m -> Mig.Opt_size.run ~check:true ~effort:2 m);
    ("opt_size e3", fun m -> Mig.Opt_size.run ~check:true ~effort:3 m);
    ("opt_depth e1", fun m -> Mig.Opt_depth.run ~check:true ~effort:1 m);
    ("opt_depth e2", fun m -> Mig.Opt_depth.run ~check:true ~effort:2 m);
    ("opt_depth e3", fun m -> Mig.Opt_depth.run ~check:true ~effort:3 m);
    ("opt_activity e1", fun m -> Mig.Opt_activity.run ~check:true ~effort:1 m);
    ("opt_activity e2", fun m -> Mig.Opt_activity.run ~check:true ~effort:2 m);
  ]

let test_guarded_optimizers_random =
  Helpers.qtest ~count:50 "guarded optimizers on random MIGs"
    QCheck2.Gen.(list_repeat 3 (Helpers.gen_term ~vars ~depth:4))
    (fun terms ->
      let ok = ref true in
      List.iter
        (fun (name, opt) ->
          let m = mig_of_terms terms in
          match opt m with
          | out ->
              if not (Check.Report.is_clean (Mig.Check.lint out)) then begin
                Printf.eprintf "lint dirty after %s\n" name;
                ok := false
              end
          | exception Check.Guard.Failed f ->
              Format.eprintf "%a@." Check.Guard.pp_failure f;
              ok := false)
        optimizer_configs;
      !ok)

let test_benchmark_outputs_clean () =
  List.iter
    (fun bench ->
      let net = (Benchmarks.Suite.find bench).build () in
      check_clean (bench ^ " network") (Network.Check.lint net);
      let m = Mig.Convert.of_network net in
      check_clean (bench ^ " mig") (Mig.Check.lint m);
      List.iter
        (fun (name, opt) ->
          check_clean
            (Printf.sprintf "%s after %s" bench name)
            (Mig.Check.lint (opt m)))
        [
          ("opt_size", fun m -> Mig.Opt_size.run ~check:false m);
          ("opt_depth", fun m -> Mig.Opt_depth.run ~check:false ~effort:2 m);
          ("opt_activity", fun m -> Mig.Opt_activity.run ~check:false ~effort:1 m);
        ];
      let a = Aig.Convert.of_network net in
      check_clean (bench ^ " aig") (Aig.Check.lint a);
      check_clean
        (bench ^ " aig after resyn")
        (Aig.Check.lint (Aig.Resyn.run ~check:false ~effort:1 a)))
    [ "my_adder"; "count"; "b9" ]

(* ----- the reader fixes the linter motivated ----- *)

let test_blif_rejects_duplicate_names () =
  let dup_input =
    ".model bad\n.inputs a b a\n.outputs f\n.names a b f\n11 1\n.end\n"
  in
  (match Logic_io.Blif.read dup_input with
  | _ -> Alcotest.fail "duplicate .inputs name accepted"
  | exception Logic_io.Io_error.Parse_error _ -> ());
  let dup_output =
    ".model bad\n.inputs a b\n.outputs f f\n.names a b f\n11 1\n.end\n"
  in
  match Logic_io.Blif.read dup_output with
  | _ -> Alcotest.fail "duplicate .outputs name accepted"
  | exception Logic_io.Io_error.Parse_error _ -> ()

let test_verilog_rejects_duplicate_names () =
  let dup_input =
    "module bad(a, b, f);\n  input a;\n  input a, b;\n  output f;\n  assign f = a & b;\nendmodule\n"
  in
  (match Logic_io.Verilog.read dup_input with
  | _ -> Alcotest.fail "duplicate input accepted"
  | exception Logic_io.Io_error.Parse_error _ -> ());
  let dup_output =
    "module bad(a, b, f);\n  input a, b;\n  output f, f;\n  assign f = a & b;\nendmodule\n"
  in
  match Logic_io.Verilog.read dup_output with
  | _ -> Alcotest.fail "duplicate output accepted"
  | exception Logic_io.Io_error.Parse_error _ -> ()

(* ----- rule registry ----- *)

let test_rule_registry () =
  List.iter
    (fun code ->
      Alcotest.(check bool) (code ^ " registered") true (Check.Rules.mem code))
    [
      "MIG001"; "MIG002"; "MIG003"; "MIG004"; "MIG005"; "MIG006";
      "AIG001"; "AIG002"; "AIG003"; "AIG004"; "AIG005"; "AIG006";
      "NET001"; "NET002"; "NET003"; "NET004"; "NET005"; "NET006";
    ]

let () =
  Alcotest.run "check"
    [
      ( "mig-rules",
        [
          Alcotest.test_case "clean baseline" `Quick test_mig_clean;
          Alcotest.test_case "MIG001 topological order" `Quick test_mig001_topological;
          Alcotest.test_case "MIG002 dangling ids" `Quick test_mig002_dangling;
          Alcotest.test_case "MIG003 strash consistency" `Quick test_mig003_strash;
          Alcotest.test_case "MIG004 normalization" `Quick test_mig004_normalization;
          Alcotest.test_case "MIG005 interface" `Quick test_mig005_interface;
          Alcotest.test_case "MIG006 dead nodes" `Quick test_mig006_dead_nodes;
        ] );
      ( "aig-net-rules",
        [
          Alcotest.test_case "AIG rules" `Quick test_aig_rules;
          Alcotest.test_case "NET rules" `Quick test_net_rules;
          Alcotest.test_case "rule registry" `Quick test_rule_registry;
        ] );
      ( "guard",
        [
          Alcotest.test_case "sound passes go through" `Quick test_guard_passes;
          Alcotest.test_case "broken transform caught with cex" `Quick
            test_guard_catches_broken_transform;
          Alcotest.test_case "malformed output / interface caught" `Quick
            test_guard_catches_malformed_output;
          Alcotest.test_case "MIG_CHECK toggle" `Quick test_guard_env_toggle;
        ] );
      ( "optimizers",
        [
          test_guarded_optimizers_random;
          Alcotest.test_case "benchmark outputs lint clean" `Quick
            test_benchmark_outputs_clean;
        ] );
      ( "readers",
        [
          Alcotest.test_case "blif rejects duplicate names" `Quick
            test_blif_rejects_duplicate_names;
          Alcotest.test_case "verilog rejects duplicate names" `Quick
            test_verilog_rejects_duplicate_names;
        ] );
    ]
