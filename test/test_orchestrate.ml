(* Flow.Orchestrate: the searchable pass layer.

   - determinism: equal (seed, beam, rounds) with no deadline give a
     bit-identical graph, the same accepted move sequence and the same
     trajectory on random MIGs;
   - chaos: with a fault plan armed, or under an absurdly small
     budget, the search still returns a lint-clean, miter-equivalent,
     no-larger graph (the Engine degradation contract);
   - trajectory: every record round-trips through its own validator
     and the NDJSON file format;
   - Batch.optimizer_of_spec (the dedupe satellite) builds exactly the
     optimizer the engine branches used to assemble by hand. *)

module M = Mig.Graph
module S = Network.Signal
module O = Flow.Orchestrate
module E = Flow.Engine
module Tj = Flow.Traj
module F = Lsutil.Fault

let mig_of ?ctx name =
  let net = (Benchmarks.Suite.find name).Benchmarks.Suite.build () in
  Mig.Convert.of_network ?ctx (Network.Graph.flatten_aoig net)

(* structural identity, node by node (same idiom as the Par tests) *)
let graph_fp g =
  let majs = ref [] in
  M.iter_live_majs g (fun id fis ->
      majs :=
        (id, Array.to_list (Array.map (fun s -> (s : S.t :> int)) fis))
        :: !majs);
  ( M.size g,
    M.depth g,
    List.rev !majs,
    M.pis g,
    List.map (fun (n, s) -> (n, (s : S.t :> int))) (M.pos g) )

let step_fp (s : Tj.step) =
  (* everything but wall-clock *)
  (s.Tj.move, s.Tj.outcome, s.Tj.accepted, s.Tj.size, s.Tj.depth)

let search_run ~spec seed =
  let ctx = Lsutil.Ctx.create () in
  let net =
    Helpers.random_network ~seed ~inputs:6 ~gates:(40 + (seed mod 40))
      ~outputs:4
  in
  let m = Mig.Convert.of_network ~ctx net in
  let out, rep, tr = O.run ~circuit:"rand" ~spec m in
  ( graph_fp out,
    List.map (fun (p : E.pass_report) -> p.E.pass) rep.E.passes,
    List.map step_fp tr.Tj.steps,
    tr.Tj.verdict,
    Mig.Equiv.migs ~seed:1 m out,
    rep.E.verified )

let test_determinism =
  Helpers.qtest ~count:5 "equal (seed, beam, rounds) -> identical search"
    QCheck2.Gen.(int_bound 10_000)
    (fun seed ->
      Mig.Transform.prewarm ();
      let spec = { O.default_spec with O.beam = 2; rounds = 2; seed = 5 } in
      let a = search_run ~spec seed in
      let b = search_run ~spec seed in
      let _, _, _, _, equiv, verified = a in
      if not equiv then QCheck2.Test.fail_report "search lost equivalence";
      if not verified then QCheck2.Test.fail_report "search not verified";
      if a <> b then
        QCheck2.Test.fail_report "two equal-spec searches diverged";
      true)

(* ----- chaos: armed fault plan ----- *)

let degradation_invariants ~label m out =
  if not (Check_report.is_clean (Mig.Check.lint ~subject:label out)) then
    Alcotest.failf "%s: output fails lint" label;
  Alcotest.(check bool)
    (label ^ ": equivalent to input")
    true
    (Mig.Equiv.migs ~seed:9 m out);
  Alcotest.(check bool)
    (label ^ ": no larger than input")
    true
    (M.size out <= M.size m)

let test_chaos_fault () =
  let ctx = Lsutil.Ctx.create () in
  let m = mig_of ~ctx "count" in
  let flt = Lsutil.Ctx.fault ctx in
  (match F.arm_string flt "seed=11:rate=0.2:kind=any:sites=transform,strash" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "bad fault spec: %s" e);
  let out, rep, tr =
    Fun.protect
      ~finally:(fun () -> F.disarm flt)
      (fun () ->
        O.run ~circuit:"count"
          ~spec:{ O.default_spec with O.beam = 2; rounds = 2; seed = 3 }
          m)
  in
  degradation_invariants ~label:"orchestrate-fault" m out;
  Alcotest.(check bool) "verified" true rep.E.verified;
  match Tj.validate (Tj.to_json tr) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "faulted trajectory invalid: %s" e

let test_chaos_exhausted_budget () =
  let m = mig_of "count" in
  let out, rep, tr =
    O.run ~circuit:"count"
      ~spec:
        {
          O.default_spec with
          O.beam = 2;
          rounds = 4;
          seed = 3;
          timeout_s = Some 0.005;
        }
      m
  in
  degradation_invariants ~label:"orchestrate-budget" m out;
  Alcotest.(check bool) "verified" true rep.E.verified;
  Alcotest.(check bool)
    "verdict is a schema verdict" true
    (List.mem tr.Tj.verdict Tj.verdicts)

(* ----- trajectory schema ----- *)

let test_traj_roundtrip () =
  let m = mig_of "b9" in
  let _, _, tr =
    O.run ~circuit:"b9"
      ~spec:{ O.default_spec with O.beam = 1; rounds = 2; seed = 1 }
      m
  in
  (match Tj.validate (Tj.to_json tr) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "record rejected by its own schema: %s" e);
  Alcotest.(check string) "verdict" "completed" tr.Tj.verdict;
  Alcotest.(check int) "explored counts the steps"
    (List.length tr.Tj.steps) tr.Tj.explored;
  (* the NDJSON file: append twice, re-read, both lines validate *)
  let tmp = Filename.temp_file "mig_traj" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      (match Tj.append_file tmp tr with
      | Ok () -> ()
      | Error e -> Alcotest.failf "append: %s" e);
      (match Tj.append_file tmp tr with
      | Ok () -> ()
      | Error e -> Alcotest.failf "append: %s" e);
      let ic = open_in tmp in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      Alcotest.(check int) "two records" 2 (List.length !lines);
      List.iter
        (fun line ->
          match Lsutil.Json.of_string line with
          | Error e -> Alcotest.failf "unparseable line: %s" e
          | Ok j -> (
              match Tj.validate j with
              | Ok () -> ()
              | Error e -> Alcotest.failf "invalid line: %s" e))
        !lines)

let test_traj_rejects_garbage () =
  let reject label j =
    match Tj.validate j with
    | Ok () -> Alcotest.failf "%s: accepted" label
    | Error _ -> ()
  in
  reject "not an object" (Lsutil.Json.Int 3);
  reject "wrong schema"
    (Lsutil.Json.Obj [ ("schema", Lsutil.Json.String "mighty-bench/1") ]);
  let m = mig_of "b9" in
  let _, _, tr =
    O.run ~circuit:"b9"
      ~spec:{ O.default_spec with O.beam = 1; rounds = 1 }
      m
  in
  match Tj.to_json { tr with Tj.verdict = "exploded" } with
  | j -> reject "unknown verdict" j

(* ----- search finds at least the fixed script's QoR ----- *)

let test_search_no_worse_than_fixed () =
  let name = "my_adder" in
  let fixed, _ =
    E.run
      ~cost:(E.cost_of_goal `Size)
      ~seed:7
      ~passes:(E.of_goal ~effort:2 `Size)
      (mig_of name)
  in
  let out, _, _ =
    O.run ~circuit:name
      ~spec:{ O.default_spec with O.beam = 2; rounds = 4; seed = 7 }
      (mig_of name)
  in
  Alcotest.(check bool)
    "size*depth product no worse than the fixed script" true
    (M.size out * M.depth out <= M.size fixed * M.depth fixed)

(* ----- satellite: Batch.optimizer_of_spec = the hand-rolled engine ----- *)

let test_batch_optimizer_of_spec () =
  let spec = { Flow.Batch.default_spec with Flow.Batch.goal = `Size; effort = 1 } in
  let o1, r1 = Flow.Batch.optimizer_of_spec spec (mig_of "count") in
  let o2, r2 =
    E.run
      ~cost:(E.cost_of_goal `Size)
      ~seed:spec.Flow.Batch.seed
      ~passes:(E.of_goal ~effort:1 `Size)
      (mig_of "count")
  in
  Alcotest.(check bool) "bit-identical graphs" true (graph_fp o1 = graph_fp o2);
  let names r = List.map (fun (p : E.pass_report) -> p.E.pass) r.E.passes in
  Alcotest.(check (list string)) "same pass names" (names r2) (names r1);
  Alcotest.(check bool) "same rollup" true
    ( (r1.E.rollbacks, r1.E.degraded, r1.E.verified)
    = (r2.E.rollbacks, r2.E.degraded, r2.E.verified) )

let () =
  Alcotest.run "orchestrate"
    [
      ("determinism", [ test_determinism ]);
      ( "chaos",
        [
          Alcotest.test_case "armed faults degrade cleanly" `Quick
            test_chaos_fault;
          Alcotest.test_case "exhausted budget degrades cleanly" `Quick
            test_chaos_exhausted_budget;
        ] );
      ( "trajectory",
        [
          Alcotest.test_case "record round-trips its schema" `Quick
            test_traj_roundtrip;
          Alcotest.test_case "validator rejects garbage" `Quick
            test_traj_rejects_garbage;
        ] );
      ( "qor",
        [
          Alcotest.test_case "no worse than the fixed script" `Quick
            test_search_no_worse_than_fixed;
        ] );
      ( "batch",
        [
          Alcotest.test_case "optimizer_of_spec = hand-rolled engine" `Quick
            test_batch_optimizer_of_spec;
        ] );
    ]
