[@@@san.allow "SRC004"]

let coerce (x : int) : string = Obj.magic x
