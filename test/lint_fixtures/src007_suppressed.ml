[@@@san.allow "SRC007"]

let probe () = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0
