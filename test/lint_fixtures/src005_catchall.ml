let swallow f = try f () with _ -> 0
