(* regression: the old regex linter's `[^=]*` annotation matcher
   choked on arrow/comma types; the AST rule peels the constraint *)
let table : (int, string) Hashtbl.t = Hashtbl.create 7

let put k v = Hashtbl.replace table k v
