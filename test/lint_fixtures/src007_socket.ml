(* Unix.bind in a comment must not fire; the call below must. *)
let make_listener () = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0
