(* regression: the old regex linter required a space after `=`, so
   this binding slipped through; the AST rule sees the application *)
let counter=ref 0

let bump () = incr counter
