let run work =
  let d = Domain.spawn work in
  Domain.join d
