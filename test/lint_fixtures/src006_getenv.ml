let home () = match Sys.getenv_opt "HOME" with Some h -> h | None -> "/"
