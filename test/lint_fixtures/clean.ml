(* no findings expected: the ref and table live inside a function, so
   they are per-call state, not module state; the `with` names its
   exception; the clock read and getenv appear only in this comment:
   Unix.gettimeofday, Sys.getenv *)
let fresh_counter () =
  let c = ref 0 in
  let t = Hashtbl.create 4 in
  fun k ->
    incr c;
    Hashtbl.replace t k !c;
    !c

let safe f = try f () with Not_found -> 0
