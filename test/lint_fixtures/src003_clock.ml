let elapsed f =
  let t0 = Unix.gettimeofday () in
  f ();
  (* the matching read is via Telemetry.time, so only t0 counts *)
  t0
