let coerce (x : int) : string = Obj.magic x
