(* Telemetry spans/counters and the hand-rolled JSON layer. *)

module T = Lsutil.Telemetry
module J = Lsutil.Json
module M = Mig.Graph

let with_stats on f =
  let was = T.enabled () in
  T.set_enabled on;
  Fun.protect ~finally:(fun () -> T.set_enabled was) f

let meta_int node key =
  match List.assoc_opt key node.T.meta with
  | Some (T.Int i) -> i
  | _ -> Alcotest.failf "span %s: no int meta %s" node.T.name key

let counter node key =
  match List.assoc_opt key node.T.counters with Some n -> n | None -> 0

(* ----- enable/disable behaviour ----- *)

let test_disabled () =
  with_stats false (fun () ->
      let x, tree =
        T.capture "root" (fun () ->
            T.span "child" (fun () ->
                T.count "events";
                T.record_int "n" 3;
                41 + 1))
      in
      Alcotest.(check int) "value passes through" 42 x;
      Alcotest.(check bool) "no tree when disabled" true (tree = None))

let test_span_without_capture () =
  with_stats true (fun () ->
      (* No capture root: span must degrade to a plain call. *)
      let x = T.span "orphan" (fun () -> T.count "ignored"; 7) in
      Alcotest.(check int) "orphan span runs thunk" 7 x)

(* ----- tree shape ----- *)

let test_nesting () =
  with_stats true (fun () ->
      let x, tree =
        T.capture "root" (fun () ->
            T.record_int "width" 8;
            let a =
              T.span "a" (fun () ->
                  T.count "hits";
                  T.count ~n:2 "hits";
                  T.span "a.inner" (fun () -> 1))
            in
            let b = T.span "b" (fun () -> T.count "misses"; 2) in
            a + b)
      in
      Alcotest.(check int) "result" 3 x;
      match tree with
      | None -> Alcotest.fail "capture returned no tree while enabled"
      | Some root ->
          Alcotest.(check string) "root name" "root" root.T.name;
          Alcotest.(check int) "root meta" 8 (meta_int root "width");
          Alcotest.(check (list string))
            "children in execution order" [ "a"; "b" ]
            (List.map (fun n -> n.T.name) root.T.children);
          let a = List.hd root.T.children in
          Alcotest.(check int) "counter accumulates" 3 (counter a "hits");
          Alcotest.(check (list string))
            "grandchild" [ "a.inner" ]
            (List.map (fun n -> n.T.name) a.T.children);
          let b = List.nth root.T.children 1 in
          Alcotest.(check int) "sibling counter" 1 (counter b "misses");
          Alcotest.(check bool) "elapsed is non-negative" true
            (root.T.elapsed >= 0.0
            && List.for_all (fun c -> c.T.elapsed >= 0.0) root.T.children))

let test_exception_closes_spans () =
  with_stats true (fun () ->
      (match
         T.capture "root" (fun () ->
             T.span "boom" (fun () -> failwith "expected"))
       with
      | (_ : unit * T.node option) -> Alcotest.fail "exception swallowed"
      | exception Failure _ -> ());
      (* The stack must be clean again: a fresh capture still works. *)
      let x, tree = T.capture "after" (fun () -> T.span "ok" (fun () -> 5)) in
      Alcotest.(check int) "recovered" 5 x;
      match tree with
      | Some n ->
          Alcotest.(check (list string))
            "clean child list" [ "ok" ]
            (List.map (fun c -> c.T.name) n.T.children)
      | None -> Alcotest.fail "no tree after recovery")

(* ----- traced passes report reachable sizes ----- *)

let vars = [ "a"; "b"; "c"; "d" ]

let mig_of_terms terms =
  Mig.Convert.of_network (Helpers.network_of_terms ~vars terms)

let find_span tree name =
  let rec go n acc =
    let acc = if n.T.name = name then n :: acc else acc in
    List.fold_left (fun acc c -> go c acc) acc n.T.children
  in
  go tree []

let test_traced_sizes =
  Helpers.qtest ~count:60 "traced pass records reachable size in/out"
    QCheck2.Gen.(list_size (int_range 1 3) (Helpers.gen_term ~vars ~depth:3))
    (fun terms ->
      let m = mig_of_terms terms in
      with_stats true (fun () ->
          let out, tree =
            T.capture "root" (fun () -> Mig.Transform.eliminate m)
          in
          match tree with
          | None -> QCheck2.Test.fail_report "no tree captured"
          | Some root -> (
              match find_span root "transform:eliminate" with
              | [ sp ] ->
                  meta_int sp "nodes_in" = M.size m
                  && meta_int sp "nodes_out" = M.size out
                  && meta_int sp "nodes_out" = M.size (M.cleanup out)
                  && meta_int sp "depth_out" = M.depth out
              | l ->
                  QCheck2.Test.fail_reportf "%d eliminate spans" (List.length l)
              )))

(* ----- JSON ----- *)

let test_json_roundtrip () =
  with_stats true (fun () ->
      let (), tree =
        T.capture "r" (fun () ->
            T.span "s" (fun () ->
                T.count "k";
                T.record "label" (T.String "x\"y\n");
                T.record_float "ratio" 0.5))
      in
      let node = Option.get tree in
      let s = J.to_string (T.to_json node) in
      match J.of_string s with
      | Error e -> Alcotest.failf "reparse failed: %s" e
      | Ok doc ->
          Alcotest.(check (option string))
            "name survives" (Some "r")
            (Option.bind (J.member "name" doc) J.to_str);
          let child =
            match Option.bind (J.member "children" doc) J.to_list with
            | Some [ c ] -> c
            | _ -> Alcotest.fail "expected one child"
          in
          Alcotest.(check (option string))
            "escaped meta string" (Some "x\"y\n")
            (Option.bind
               (Option.bind (J.member "meta" child) (J.member "label"))
               J.to_str);
          Alcotest.(check (option int))
            "counter" (Some 1)
            (Option.bind
               (Option.bind (J.member "counters" child) (J.member "k"))
               J.to_int))

let test_json_parser () =
  let ok s expect =
    match J.of_string s with
    | Ok v -> Alcotest.(check string) s expect (J.to_string v)
    | Error e -> Alcotest.failf "%s: %s" s e
  in
  ok {|{"a":[1,-2.5,true,null],"b":"é\t"}|} {|{"a":[1,-2.5,true,null],"b":"é\t"}|};
  ok {|"😀"|} {|"😀"|};
  ok "  [ ]  " "[]";
  List.iter
    (fun s ->
      match J.of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed %s" s
      | Error _ -> ())
    [ "{"; "[1,]"; "\"unterminated"; "1 2"; "nul"; "{\"a\":}"; "" ]

let () =
  Alcotest.run "telemetry"
    [
      ( "telemetry",
        [
          Alcotest.test_case "disabled capture" `Quick test_disabled;
          Alcotest.test_case "span without capture" `Quick
            test_span_without_capture;
          Alcotest.test_case "nesting" `Quick test_nesting;
          Alcotest.test_case "exception safety" `Quick
            test_exception_closes_spans;
          test_traced_sizes;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parser" `Quick test_json_parser;
        ] );
    ]
