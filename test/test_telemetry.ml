(* Telemetry spans/counters and the hand-rolled JSON layer. *)

module T = Lsutil.Telemetry
module J = Lsutil.Json
module M = Mig.Graph

(* each test works against its own private sink *)
let with_stats on f =
  let t = T.create ~enabled:on () in
  f t

let meta_int node key =
  match List.assoc_opt key node.T.meta with
  | Some (T.Int i) -> i
  | _ -> Alcotest.failf "span %s: no int meta %s" node.T.name key

let counter node key =
  match List.assoc_opt key node.T.counters with Some n -> n | None -> 0

(* ----- enable/disable behaviour ----- *)

let test_disabled () =
  with_stats false (fun t ->
      let x, tree =
        T.capture t "root" (fun () ->
            T.span t "child" (fun () ->
                T.count t "events";
                T.record_int t "n" 3;
                41 + 1))
      in
      Alcotest.(check int) "value passes through" 42 x;
      Alcotest.(check bool) "no tree when disabled" true (tree = None))

let test_span_without_capture () =
  with_stats true (fun t ->
      (* No capture root: span must degrade to a plain call. *)
      let x = T.span t "orphan" (fun () -> T.count t "ignored"; 7) in
      Alcotest.(check int) "orphan span runs thunk" 7 x)

(* ----- tree shape ----- *)

let test_nesting () =
  with_stats true (fun t ->
      let x, tree =
        T.capture t "root" (fun () ->
            T.record_int t "width" 8;
            let a =
              T.span t "a" (fun () ->
                  T.count t "hits";
                  T.count t ~n:2 "hits";
                  T.span t "a.inner" (fun () -> 1))
            in
            let b = T.span t "b" (fun () -> T.count t "misses"; 2) in
            a + b)
      in
      Alcotest.(check int) "result" 3 x;
      match tree with
      | None -> Alcotest.fail "capture returned no tree while enabled"
      | Some root ->
          Alcotest.(check string) "root name" "root" root.T.name;
          Alcotest.(check int) "root meta" 8 (meta_int root "width");
          Alcotest.(check (list string))
            "children in execution order" [ "a"; "b" ]
            (List.map (fun n -> n.T.name) root.T.children);
          let a = List.hd root.T.children in
          Alcotest.(check int) "counter accumulates" 3 (counter a "hits");
          Alcotest.(check (list string))
            "grandchild" [ "a.inner" ]
            (List.map (fun n -> n.T.name) a.T.children);
          let b = List.nth root.T.children 1 in
          Alcotest.(check int) "sibling counter" 1 (counter b "misses");
          Alcotest.(check bool) "elapsed is non-negative" true
            (root.T.elapsed >= 0.0
            && List.for_all (fun c -> c.T.elapsed >= 0.0) root.T.children))

let test_exception_closes_spans () =
  with_stats true (fun t ->
      (match
         T.capture t "root" (fun () ->
             T.span t "boom" (fun () -> failwith "expected"))
       with
      | (_ : unit * T.node option) -> Alcotest.fail "exception swallowed"
      | exception Failure _ -> ());
      (* The stack must be clean again: a fresh capture still works. *)
      let x, tree =
        T.capture t "after" (fun () -> T.span t "ok" (fun () -> 5))
      in
      Alcotest.(check int) "recovered" 5 x;
      match tree with
      | Some n ->
          Alcotest.(check (list string))
            "clean child list" [ "ok" ]
            (List.map (fun c -> c.T.name) n.T.children)
      | None -> Alcotest.fail "no tree after recovery")

(* ----- traced passes report reachable sizes ----- *)

let vars = [ "a"; "b"; "c"; "d" ]

let mig_of_terms ~ctx terms =
  Mig.Convert.of_network ~ctx (Helpers.network_of_terms ~vars terms)

let find_span tree name =
  let rec go n acc =
    let acc = if n.T.name = name then n :: acc else acc in
    List.fold_left (fun acc c -> go c acc) acc n.T.children
  in
  go tree []

let test_traced_sizes =
  Helpers.qtest ~count:60 "traced pass records reachable size in/out"
    QCheck2.Gen.(list_size (int_range 1 3) (Helpers.gen_term ~vars ~depth:3))
    (fun terms ->
      (* the transform records into its graph's ctx sink, so the
         capture must run against that same sink *)
      let ctx = Lsutil.Ctx.create ~stats:true () in
      let m = mig_of_terms ~ctx terms in
      let t = Lsutil.Ctx.stats ctx in
      let out, tree = T.capture t "root" (fun () -> Mig.Transform.eliminate m) in
      (match tree with
          | None -> QCheck2.Test.fail_report "no tree captured"
          | Some root -> (
              match find_span root "transform:eliminate" with
              | [ sp ] ->
                  meta_int sp "nodes_in" = M.size m
                  && meta_int sp "nodes_out" = M.size out
                  && meta_int sp "nodes_out" = M.size (M.cleanup out)
                  && meta_int sp "depth_out" = M.depth out
              | l ->
                  QCheck2.Test.fail_reportf "%d eliminate spans" (List.length l)
              )))

(* ----- JSON ----- *)

let test_json_roundtrip () =
  with_stats true (fun t ->
      let (), tree =
        T.capture t "r" (fun () ->
            T.span t "s" (fun () ->
                T.count t "k";
                T.record t "label" (T.String "x\"y\n");
                T.record_float t "ratio" 0.5))
      in
      let node = Option.get tree in
      let s = J.to_string (T.to_json node) in
      match J.of_string s with
      | Error e -> Alcotest.failf "reparse failed: %s" e
      | Ok doc ->
          Alcotest.(check (option string))
            "name survives" (Some "r")
            (Option.bind (J.member "name" doc) J.to_str);
          let child =
            match Option.bind (J.member "children" doc) J.to_list with
            | Some [ c ] -> c
            | _ -> Alcotest.fail "expected one child"
          in
          Alcotest.(check (option string))
            "escaped meta string" (Some "x\"y\n")
            (Option.bind
               (Option.bind (J.member "meta" child) (J.member "label"))
               J.to_str);
          Alcotest.(check (option int))
            "counter" (Some 1)
            (Option.bind
               (Option.bind (J.member "counters" child) (J.member "k"))
               J.to_int))

let test_json_parser () =
  let ok s expect =
    match J.of_string s with
    | Ok v -> Alcotest.(check string) s expect (J.to_string v)
    | Error e -> Alcotest.failf "%s: %s" s e
  in
  ok {|{"a":[1,-2.5,true,null],"b":"é\t"}|} {|{"a":[1,-2.5,true,null],"b":"é\t"}|};
  ok {|"😀"|} {|"😀"|};
  ok "  [ ]  " "[]";
  List.iter
    (fun s ->
      match J.of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed %s" s
      | Error _ -> ())
    [ "{"; "[1,]"; "\"unterminated"; "1 2"; "nul"; "{\"a\":}"; "" ]

let () =
  Alcotest.run "telemetry"
    [
      ( "telemetry",
        [
          Alcotest.test_case "disabled capture" `Quick test_disabled;
          Alcotest.test_case "span without capture" `Quick
            test_span_without_capture;
          Alcotest.test_case "nesting" `Quick test_nesting;
          Alcotest.test_case "exception safety" `Quick
            test_exception_closes_spans;
          test_traced_sizes;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parser" `Quick test_json_parser;
        ] );
    ]
