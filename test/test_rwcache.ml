(* The persistent rewrite-cache stack, bottom up:

   - [Lsutil.Memo]: snapshot/delta/merge semantics and the versioned
     on-disk envelope;
   - [Mig.Rwcache]: NPN-keyed lookups localize their canonical form
     back to the querying table, share entries across a whole NPN
     class, and reject poisoned store entries under checking;
   - optimization bit-identity: [Opt_size.run] answers the same with a
     cold cache, a warm cache, and under [Check.guarded];
   - [Flow.Cutoff]: cone fingerprints are rebuild-stable and
     salt-sensitive; a one-output edit re-optimizes only its own cone
     and the stitched result stays equivalent;
   - [Flow.Batch] over a shared [Flow.Cache]: jobs-invariant, and a
     warm second run stitches every output. *)

module T = Truthtable
module Memo = Lsutil.Memo
module J = Lsutil.Json
module F = Sop.Factor
module RW = Mig.Rwcache
module M = Mig.Graph
module N = Network.Graph
module S = Network.Signal
module B = Flow.Batch

let factor tt = Sop.Factor.factor (Sop.Isop.compute tt)

(* ----- Lsutil.Memo ----- *)

let test_memo_basics () =
  let base = Memo.base_of_list [ ("a", 1); ("b", 2); ("a", 9) ] in
  Alcotest.(check int) "duplicate key: first wins" 2 (Memo.base_size base);
  let h = Memo.fork base in
  Alcotest.(check (option int)) "find in base" (Some 1) (Memo.find h "a");
  Alcotest.(check (option int)) "miss" None (Memo.find h "z");
  Memo.add h "z" 26;
  Memo.add h "a" 99;
  (* no-op: base already has it *)
  Alcotest.(check (option int)) "find in delta" (Some 26) (Memo.find h "z");
  Alcotest.(check int) "hits" 2 (Memo.hits h);
  Alcotest.(check int) "misses" 1 (Memo.misses h);
  Alcotest.(check (list (pair string int))) "delta" [ ("z", 26) ] (Memo.delta h);
  let merged = Memo.merge base [ Memo.delta h; [ ("z", 7); ("y", 0) ] ] in
  Alcotest.(check int) "base untouched by merge" 2 (Memo.base_size base);
  Alcotest.(check int) "merged size" 4 (Memo.base_size merged);
  Alcotest.(check (option int))
    "merge: first delta wins" (Some 26)
    (List.assoc_opt "z" (Memo.base_to_list merged))

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

let test_memo_envelope () =
  let path = Filename.temp_file "mighty_memo" ".json" in
  Alcotest.(check bool)
    "save" true
    (Memo.save_file path [ ("s1", J.Int 1) ] = Ok ());
  (match Memo.load_file path with
  | Ok [ ("s1", J.Int 1) ] -> ()
  | Ok _ -> Alcotest.fail "roundtrip lost the section"
  | Error e -> Alcotest.fail e);
  (* a missing file is a cold store, not an error *)
  Alcotest.(check bool)
    "missing file loads empty" true
    (Memo.load_file (path ^ ".does-not-exist") = Ok []);
  (* a stale schema stamp invalidates the whole store *)
  write_file path
    (J.to_string
       (J.Obj
          [
            ("schema", J.String "mighty-cache/0");
            ("sections", J.Obj [ ("s1", J.Int 1) ]);
          ]));
  Alcotest.(check bool)
    "stale schema loads empty" true
    (Memo.load_file path = Ok []);
  (* unreadable JSON is a hard error *)
  write_file path "{ not json";
  Alcotest.(check bool)
    "garbage is an error" true
    (match Memo.load_file path with Error _ -> true | Ok _ -> false);
  Sys.remove path

(* ----- Rwcache: localization + NPN sharing ----- *)

let prop_lookup_localizes =
  Helpers.qtest ~count:200 "qcheck: lookup form evaluates back to its table"
    (Helpers.gen_tt 4)
    (fun tt ->
      let h = RW.fork (RW.empty_base ()) in
      let form, hit = RW.lookup h ~compute:factor tt in
      (not hit) && T.equal (RW.form_tt ~nvars:4 form) tt)

let perturb n f perm phase out_neg =
  let g = ref f in
  for j = 0 to n - 1 do
    if phase land (1 lsl j) <> 0 then g := T.flip_var !g j
  done;
  let g = T.permute !g perm in
  if out_neg then T.not_ g else g

let prop_lookup_npn_share =
  Helpers.qtest ~count:200
    "qcheck: NPN-perturbed lookup hits the shared entry and localizes"
    QCheck2.Gen.(
      quad (Helpers.gen_tt 4) (shuffle_l [ 0; 1; 2; 3 ]) (int_bound 15) bool)
    (fun (f, perml, phase, neg) ->
      let g = perturb 4 f (Array.of_list perml) phase neg in
      let h = RW.fork (RW.empty_base ()) in
      let _ = RW.lookup h ~compute:factor f in
      let form, hit = RW.lookup h ~compute:factor g in
      (* constants shortcut the store entirely, so only demand a hit
         when the function has real support *)
      (hit || T.support f = []) && T.equal (RW.form_tt ~nvars:4 form) g)

(* ----- Rwcache: persistence + corrupted entries ----- *)

let some_tables =
  let a = T.var 3 0 and b = T.var 3 1 and c = T.var 3 2 in
  [ T.maj a b c; T.and_ a (T.or_ b c); T.xor_ a (T.xor_ b c); T.mux c a b ]

let populated_base () =
  let h = RW.fork (RW.empty_base ()) in
  List.iter (fun tt -> ignore (RW.lookup h ~compute:factor tt)) some_tables;
  RW.merge (RW.empty_base ()) [ RW.delta h ]

let test_rwcache_persist () =
  let base = populated_base () in
  let j = RW.base_to_json base in
  let back = RW.base_of_json j in
  Alcotest.(check int)
    "roundtrip size" (RW.base_size base) (RW.base_size back);
  (* poison one stored form (a constant cannot evaluate back to a
     non-degenerate key) and mangle another entry outright: both must
     be dropped on load, the rest kept *)
  (match j with
  | J.List (J.List [ key0; _form0 ] :: rest) ->
      let poisoned =
        J.List
          (J.List [ key0; J.Bool true ]
          :: J.String "junk"
          :: List.tl rest)
      in
      Alcotest.(check int)
        "poisoned + junk entries dropped"
        (RW.base_size base - 2)
        (RW.base_size (RW.base_of_json poisoned))
  | _ -> Alcotest.fail "unexpected base_to_json shape");
  Alcotest.(check int)
    "non-list JSON loads empty" 0
    (RW.base_size (RW.base_of_json (J.String "nope")))

let test_poisoned_hit_rejected () =
  (* discover the store key by doing a real cold lookup, then plant a
     wrong form under that key: a checking lookup must reject it and
     recompute, counting the rejection *)
  let tt = T.maj (T.var 3 0) (T.var 3 1) (T.var 3 2) in
  let cold = RW.fork (RW.empty_base ()) in
  ignore (RW.lookup cold ~compute:factor tt);
  let key =
    match RW.delta cold with
    | [ (k, _) ] -> k
    | _ -> Alcotest.fail "expected exactly one delta entry"
  in
  let poisoned = RW.merge (RW.empty_base ()) [ [ (key, F.Const true) ] ] in
  let h = RW.fork poisoned in
  let form, hit = RW.lookup ~check:true h ~compute:factor tt in
  Alcotest.(check bool) "poisoned hit rejected" false hit;
  Alcotest.(check int) "rejection counted" 1 (RW.rejected h);
  Alcotest.(check bool)
    "recomputed form is correct" true
    (T.equal (RW.form_tt ~nvars:3 form) tt)

(* ----- optimization bit-identity: cold cache = warm cache ----- *)

let mig_of ~ctx net = Mig.Convert.of_network ~ctx (N.flatten_aoig net)

(* structural fingerprint of a whole graph: the cutoff cone
   fingerprints of every PO (node ids cannot leak in) *)
let graph_fp g =
  List.map (fun (n, s) -> (n, Flow.Cutoff.fingerprint ~salt:"" g s)) (M.pos g)

let test_opt_cache_identity () =
  let ctx = Lsutil.Ctx.create () in
  let net = Helpers.random_network ~seed:7 ~inputs:6 ~gates:80 ~outputs:4 in
  let base = ref (RW.empty_base ()) in
  let run () =
    let h = RW.fork !base in
    let out = Mig.Opt_size.run ~cache:h (mig_of ~ctx net) in
    base := RW.merge !base [ RW.delta h ];
    (out, RW.hits h, RW.misses h)
  in
  let cold, h0, m0 = run () in
  let warm, h1, m1 = run () in
  Alcotest.(check bool)
    "cold run populated the store" true
    (RW.base_size !base > 0);
  (* cold hits, if any, come from intra-run NPN sharing via the
     handle's own delta; every cold miss must hit on the warm run *)
  Alcotest.(check bool) "warm run hits" true (h1 >= h0 + m0 && h1 > 0);
  Alcotest.(check int) "warm run misses nothing" 0 m1;
  Alcotest.(check bool)
    "warm result bit-identical to cold" true
    (graph_fp cold = graph_fp warm);
  ignore m0

let test_guarded_warm_cache () =
  let ctx = Lsutil.Ctx.create () in
  let net = Helpers.random_network ~seed:19 ~inputs:6 ~gates:70 ~outputs:3 in
  let base = ref (RW.empty_base ()) in
  (* both the cold (populating) and warm (hitting) cached runs must
     pass the full transform guard: pre/post lint + simulation miter *)
  List.iter
    (fun label ->
      let h = RW.fork !base in
      (match
         Mig.Check.guarded ~enabled:true ~name:("opt_size:" ^ label)
           (Mig.Opt_size.run ~check:false ~cache:h)
           (mig_of ~ctx net)
       with
      | _ -> ()
      | exception Check.Guard.Failed f ->
          Alcotest.failf "%s: guard failed: %a" label Check.Guard.pp_failure f);
      base := RW.merge !base [ RW.delta h ])
    [ "cold"; "warm" ]

(* ----- Cutoff: fingerprints + incremental stitch ----- *)

(* structurally identical copy of [net] with output [k] complemented *)
let complement_po k net =
  let fresh = N.create () in
  let map = Hashtbl.create 64 in
  Hashtbl.add map 0 (N.const0 fresh);
  let value s =
    S.xor_complement (Hashtbl.find map (S.node s)) (S.is_complement s)
  in
  N.iter_nodes net (fun id node ->
      match node with
      | N.Const0 -> ()
      | N.Pi name -> Hashtbl.add map id (N.add_pi fresh name)
      | N.Gate (fn, fs) ->
          let f = Array.map value fs in
          let s =
            match fn with
            | N.And -> N.and_ fresh f.(0) f.(1)
            | N.Or -> N.or_ fresh f.(0) f.(1)
            | N.Xor -> N.xor_ fresh f.(0) f.(1)
            | N.Maj -> N.maj fresh f.(0) f.(1) f.(2)
            | N.Mux -> N.mux fresh f.(0) f.(1) f.(2)
          in
          Hashtbl.add map id s);
  List.iteri
    (fun i (name, s) ->
      let s = value s in
      N.add_po fresh name (if i = k then S.not_ s else s))
    (N.pos net);
  fresh

let engine_optimize g =
  Flow.Engine.run
    ~cost:(Flow.Engine.cost_of_goal `Size)
    ~seed:1
    ~passes:(Flow.Engine.of_goal ~effort:1 `Size)
    g

let test_cutoff_incremental () =
  let ctx = Lsutil.Ctx.create () in
  let net = Helpers.random_network ~seed:21 ~inputs:6 ~gates:60 ~outputs:5 in
  let m = mig_of ~ctx net in
  (* fingerprints: stable across independent rebuilds of the same
     structure, changed by the salt *)
  let fps salt g =
    List.map (fun (_, s) -> Flow.Cutoff.fingerprint ~salt g s) (M.pos g)
  in
  Alcotest.(check (list string))
    "fingerprints rebuild-stable" (fps "r" m)
    (fps "r" (mig_of ~ctx net));
  Alcotest.(check bool)
    "salt changes fingerprints" false
    (fps "r" m = fps "r2" m);
  (* cold run optimizes everything and records every cone *)
  let salt = "test" in
  let r1 = Flow.Cutoff.run ~salt ~store:(Memo.empty_base ()) ~optimize:engine_optimize ~seed:1 m in
  Alcotest.(check int) "cold: nothing reused" 0 r1.Flow.Cutoff.reused;
  Alcotest.(check bool) "cold: recorded cones" true (r1.Flow.Cutoff.delta <> []);
  let store = Memo.merge (Memo.empty_base ()) [ r1.Flow.Cutoff.delta ] in
  (* warm run on the identical input stitches every output *)
  let r2 =
    Flow.Cutoff.run ~salt ~store ~optimize:engine_optimize ~seed:1 (mig_of ~ctx net)
  in
  Alcotest.(check int) "warm: all reused" (N.num_pos net) r2.Flow.Cutoff.reused;
  Alcotest.(check int) "warm: none re-optimized" 0 r2.Flow.Cutoff.reoptimized;
  Alcotest.(check bool)
    "warm result bit-identical to cold" true
    (graph_fp r1.Flow.Cutoff.graph = graph_fp r2.Flow.Cutoff.graph);
  (* a one-output edit re-optimizes exactly that cone, and the
     stitched result is equivalent to the edited input *)
  let edited = mig_of ~ctx (complement_po 0 net) in
  let r3 = Flow.Cutoff.run ~salt ~store ~optimize:engine_optimize ~seed:1 edited in
  Alcotest.(check int)
    "edit: one output re-optimized" 1 r3.Flow.Cutoff.reoptimized;
  Alcotest.(check int)
    "edit: the rest stitched"
    (N.num_pos net - 1)
    r3.Flow.Cutoff.reused;
  Alcotest.(check bool) "edit: no fallback" false r3.Flow.Cutoff.fallback;
  Alcotest.(check bool)
    "edit: stitched graph equivalent to edited input" true
    (Mig.Equiv.migs ~seed:3 edited r3.Flow.Cutoff.graph)

(* ----- Flow.Batch over a shared Flow.Cache ----- *)

let batch_items =
  List.map
    (fun (name, seed) ->
      {
        B.name;
        build =
          (fun () ->
            Helpers.random_network ~seed ~inputs:5 ~gates:30 ~outputs:3);
      })
    [ ("alpha", 3); ("bravo", 14); ("charlie", 15); ("delta", 92) ]

let outcome_fp (o : B.outcome) =
  ( o.B.name,
    o.B.size_in,
    o.B.depth_in,
    o.B.size_out,
    o.B.depth_out,
    o.B.report.Flow.Engine.verified,
    o.B.report.Flow.Engine.degraded,
    o.B.cache )

let test_batch_shared_cache () =
  let spec = { B.default_spec with B.effort = 1 } in
  (* every worker checks and sanitizes: a stitched answer that fails
     the miter, or a cross-domain access to the shared snapshot, fails
     the test *)
  let make_ctx _ _ = Lsutil.Ctx.create ~check:true ~san:true () in
  let run jobs =
    let cache = Flow.Cache.in_memory () in
    let out = B.run ~jobs ~spec ~make_ctx ~cache batch_items in
    (out, cache)
  in
  let seq, c_seq = run 1 in
  let par, c_par = run 2 in
  Alcotest.(check bool)
    "jobs=2 outcomes identical to jobs=1" true
    (List.map outcome_fp seq = List.map outcome_fp par);
  Alcotest.(check bool)
    "jobs=2 absorbed store identical to jobs=1" true
    (Flow.Cache.sizes c_seq = Flow.Cache.sizes c_par);
  List.iter
    (fun (o : B.outcome) ->
      Alcotest.(check bool)
        (o.B.name ^ " verified") true o.B.report.Flow.Engine.verified)
    par;
  (* a warm second pass over the same shared cache stitches every
     output, in parallel, still bit-identically *)
  let warm = B.run ~jobs:2 ~spec ~make_ctx ~cache:c_par batch_items in
  List.iter
    (fun (o : B.outcome) ->
      match o.B.cache with
      | Some u ->
          Alcotest.(check int) (o.B.name ^ " nothing re-optimized") 0
            u.B.reopt_pos;
          Alcotest.(check bool)
            (o.B.name ^ " outputs stitched") true (u.B.reused_pos > 0)
      | None -> Alcotest.fail (o.B.name ^ ": no cache counters"))
    warm;
  let strip (o : B.outcome) =
    (o.B.name, o.B.size_out, o.B.depth_out)
  in
  Alcotest.(check bool)
    "warm QoR identical to cold" true
    (List.map strip warm = List.map strip seq)

let () =
  Alcotest.run "rwcache"
    [
      ( "memo",
        [
          Alcotest.test_case "snapshot/delta/merge" `Quick test_memo_basics;
          Alcotest.test_case "on-disk envelope" `Quick test_memo_envelope;
        ] );
      ( "lookup",
        [
          prop_lookup_localizes;
          prop_lookup_npn_share;
          Alcotest.test_case "persistence" `Quick test_rwcache_persist;
          Alcotest.test_case "poisoned hit rejected" `Quick
            test_poisoned_hit_rejected;
        ] );
      ( "identity",
        [
          Alcotest.test_case "cold = warm" `Quick test_opt_cache_identity;
          Alcotest.test_case "guarded with warm cache" `Quick
            test_guarded_warm_cache;
        ] );
      ( "cutoff",
        [ Alcotest.test_case "incremental stitch" `Quick test_cutoff_incremental ] );
      ( "batch",
        [ Alcotest.test_case "shared cache" `Quick test_batch_shared_cache ] );
    ]
