(* The serve layer (lib/serve/, DESIGN.md §17): framing
   chunking-independence fuzz, protocol decode totality (byte soup,
   truncated frames, unpaired surrogates), admission-queue semantics,
   the Retry backoff schedule, Budget.interrupt, and in-process
   integration against a live Server.launch — including the robustness
   invariants the daemon promises (malformed input leaves the
   connection usable, saturation is a structured rejection, drain
   answers everything admitted and flushes the cache). *)

module P = Serve.Protocol
module F = Serve.Framing
module Q = Serve.Queue
module Server = Serve.Server
module Client = Serve.Client
module J = Lsutil.Json

(* ----- framing: the newline state machine ----- *)

let ev_str = function
  | F.Line l -> Printf.sprintf "Line %S" l
  | F.Oversized n -> Printf.sprintf "Oversized %d" n

let check_events msg expect got =
  Alcotest.(check (list string)) msg (List.map ev_str expect) (List.map ev_str got)

let test_framing_lines () =
  let fr = F.create () in
  check_events "lines cut at \\n, CRLF stripped"
    [ F.Line "a"; F.Line "b"; F.Line "" ]
    (F.feed_string fr "a\nb\r\n\nc");
  Alcotest.(check int) "tail buffered" 1 (F.pending fr);
  check_events "tail completes on the next newline" [ F.Line "c" ]
    (F.feed_string fr "\n")

let test_framing_oversize () =
  let fr = F.create ~max_line_bytes:8 () in
  let long = String.make 20 'x' in
  check_events "oversized line discarded, stream re-syncs"
    [ F.Oversized 20; F.Line "ok" ]
    (F.feed_string fr (long ^ "\nok\n"));
  (* the discard survives chunk boundaries and reports the total *)
  let fr = F.create ~max_line_bytes:8 () in
  check_events "discard spans chunks (no events yet)" []
    (F.feed_string fr (String.make 6 'y'));
  check_events "still discarding" [] (F.feed_string fr (String.make 6 'y'));
  check_events "oversize totals the whole discarded line"
    [ F.Oversized 12; F.Line "z" ]
    (F.feed_string fr "\nz\n");
  Alcotest.(check int) "nothing buffered while discarding" 0 (F.pending fr)

(* fuzz: any chunking of the same byte stream yields the same events *)
let gen_soup =
  QCheck2.Gen.(
    map (String.concat "")
      (list_size (int_bound 24)
         (oneofl
            [
              "\n"; "\r\n"; "a"; "abc"; "{\"k\":1}"; String.make 13 'q';
              "\x00\xff\x7f"; "\r";
            ])))

let fuzz_chunking =
  Helpers.qtest ~count:300 "qcheck: framing is chunking-independent"
    QCheck2.Gen.(pair gen_soup (int_range 1 7))
    (fun (soup, k) ->
      let whole = F.feed_string (F.create ~max_line_bytes:8 ()) soup in
      let fr = F.create ~max_line_bytes:8 () in
      let chunked = ref [] in
      let b = Bytes.of_string soup in
      let i = ref 0 in
      while !i < Bytes.length b do
        let len = min k (Bytes.length b - !i) in
        chunked := List.rev_append (F.feed fr b !i len) !chunked;
        i := !i + len
      done;
      List.map ev_str whole = List.map ev_str (List.rev !chunked))

(* ----- protocol: decoding is total ----- *)

let test_parse_request_errors () =
  let err s = match P.parse_request s with Error (c, _) -> Some c | Ok _ -> None in
  let chk msg want got =
    Alcotest.(check (option string))
      msg (Some want)
      (Option.map P.error_code_name got)
  in
  chk "byte soup" "protocol" (err "\x01\x02 not json");
  chk "non-object" "protocol" (err "[1,2,3]");
  chk "missing schema" "protocol" (err "{\"type\":\"ping\"}");
  chk "wrong schema" "protocol"
    (err "{\"schema\":\"mighty-serve/9\",\"type\":\"ping\"}");
  chk "unknown type" "bad_request"
    (err "{\"schema\":\"mighty-serve/1\",\"type\":\"explode\"}");
  chk "missing circuit" "bad_request" (err "{\"schema\":\"mighty-serve/1\"}");
  chk "two circuit sources" "bad_request"
    (err
       "{\"schema\":\"mighty-serve/1\",\"circuit\":{\"bench\":\"b9\",\"blif\":\"x\"}}");
  chk "bad effort" "bad_request"
    (err
       "{\"schema\":\"mighty-serve/1\",\"circuit\":{\"bench\":\"b9\"},\"effort\":99}");
  chk "unpaired surrogate in a string" "protocol"
    (err "{\"schema\":\"mighty-serve/1\",\"circuit\":{\"bench\":\"\\ud800\"}}")

let test_parse_request_truncated () =
  (* every proper prefix of a valid request is an Error, never a raise *)
  let full =
    J.to_string
      (P.request_to_json
         (P.optimize ~id:"t-1" ~goal:`Depth ~effort:3 ~timeout_s:1.5
            ~max_nodes:5000 ~fault:"seed=1:kind=raise" ~emit:`Blif ~stats:true
            (P.Bench "b9")))
  in
  (match P.parse_request full with
  | Ok (P.Optimize r) ->
      Alcotest.(check (option string)) "id round-trips" (Some "t-1") r.P.id
  | Ok P.Ping -> Alcotest.fail "decoded as ping"
  | Error (_, m) -> Alcotest.failf "full request rejected: %s" m);
  for len = 0 to String.length full - 1 do
    match P.parse_request (String.sub full 0 len) with
    | Ok _ -> Alcotest.failf "prefix of length %d decoded as Ok" len
    | Error _ -> ()
  done

let gen_request =
  QCheck2.Gen.(
    let circuit =
      oneof
        [
          map (fun n -> P.Bench n) (oneofl [ "b9"; "count"; "cla"; "no such" ]);
          map (fun s -> P.Blif s) (oneofl [ ""; ".model m\n.end\n" ]);
          map (fun s -> P.Verilog s) (oneofl [ "module m; endmodule" ]);
        ]
    in
    let opt g = oneof [ return None; map Option.some g ] in
    map (fun (((id, c), (goal, effort)), ((timeout, nodes), (fault, stats))) ->
        P.Optimize
          {
            P.id;
            circuit = c;
            goal;
            effort;
            beam = 2;
            timeout_s = timeout;
            max_nodes = nodes;
            fault;
            emit = (if stats then `Blif else `None);
            stats;
          })
      (pair
         (pair
            (pair (opt (oneofl [ "a"; "c1-r2"; "日本" ])) circuit)
            (pair (oneofl [ `Size; `Depth; `Activity; `Search ]) (int_range 1 16)))
         (pair
            (pair (opt (oneofl [ 0.5; 30.0 ])) (opt (int_range 1 100000)))
            (pair (opt (oneofl [ "seed=7:kind=any" ])) bool))))

let fuzz_request_roundtrip =
  Helpers.qtest ~count:300 "qcheck: request encode/decode round-trip"
    gen_request (fun req ->
      match P.parse_request (J.to_string (P.request_to_json req)) with
      | Ok got -> got = req
      | Error (_, m) -> QCheck2.Test.fail_reportf "rejected: %s" m)

let fuzz_parse_total =
  Helpers.qtest ~count:500 "qcheck: parse_request is total on byte soup"
    QCheck2.Gen.(
      map (String.concat "")
        (list_size (int_bound 12)
           (oneofl
              [
                "{"; "}"; "\""; "schema"; "mighty-serve/1"; ":"; ",";
                "\\u"; "d800"; "\x00"; "\xc3"; "[ ]"; "1e999"; "true";
              ])))
    (fun s ->
      match P.parse_request s with Ok _ -> true | Error _ -> true)

let test_validate_frame () =
  let ok msg j =
    match P.validate_frame j with
    | Ok () -> ()
    | Error e -> Alcotest.failf "%s: %s" msg e
  in
  let bad msg j =
    match P.validate_frame j with
    | Ok () -> Alcotest.failf "%s: accepted" msg
    | Error _ -> ()
  in
  ok "error frame" (P.error_to_json ~id:"x" P.Bad_request "nope");
  ok "overloaded with hint"
    (P.error_to_json ~retry_after_ms:120 P.Overloaded "queue full");
  bad "overloaded without retry_after_ms"
    (P.error_to_json P.Overloaded "queue full");
  ok "pong"
    (P.pong_to_json ~queue_depth:0 ~queue_capacity:64 ~workers:3 ~served:0
       ~active:0 ~draining:false);
  ok "telemetry" (P.telemetry_to_json ~event:"pass" [ ("pass", J.String "rw") ]);
  bad "alien frame type"
    (J.Obj [ ("schema", J.String P.schema); ("type", J.String "alien") ]);
  bad "result missing fields"
    (J.Obj [ ("schema", J.String P.schema); ("type", J.String "result") ])

(* ----- the admission queue ----- *)

let test_queue_basic () =
  let q = Q.create ~capacity:2 in
  Alcotest.(check bool) "push 1" true (Q.try_push q 1);
  Alcotest.(check bool) "push 2" true (Q.try_push q 2);
  Alcotest.(check bool) "push 3 refused (full)" false (Q.try_push q 3);
  Alcotest.(check int) "length" 2 (Q.length q);
  Alcotest.(check (option int)) "FIFO" (Some 1) (Q.try_pop q);
  Alcotest.(check bool) "room again" true (Q.try_push q 3);
  Q.close q;
  Alcotest.(check bool) "push after close refused" false (Q.try_push q 4);
  Alcotest.(check (option int)) "pending item survives close" (Some 2) (Q.pop q);
  Alcotest.(check (option int)) "second pending item" (Some 3) (Q.pop q);
  Alcotest.(check (option int)) "closed and empty: exit signal" None (Q.pop q);
  Alcotest.(check bool) "closed" true (Q.closed q)

let test_queue_mpmc () =
  (* two producers, two consumers, every item delivered exactly once *)
  let q = Q.create ~capacity:4 in
  let n = 500 in
  let produce lo =
    Domain.spawn (fun () ->
        for i = lo to lo + n - 1 do
          while not (Q.try_push q i) do
            Domain.cpu_relax ()
          done
        done)
  in
  let sum = Atomic.make 0 and count = Atomic.make 0 in
  let consume () =
    Domain.spawn (fun () ->
        let rec go () =
          match Q.pop q with
          | Some v ->
              ignore (Atomic.fetch_and_add sum v);
              ignore (Atomic.fetch_and_add count 1);
              go ()
          | None -> ()
        in
        go ())
  in
  let c1 = consume () and c2 = consume () in
  let p1 = produce 0 and p2 = produce n in
  Domain.join p1;
  Domain.join p2;
  Q.close q;
  Domain.join c1;
  Domain.join c2;
  Alcotest.(check int) "every item delivered once" (2 * n) (Atomic.get count);
  let expect = (2 * n * (2 * n - 1)) / 2 in
  Alcotest.(check int) "no item duplicated or lost" expect (Atomic.get sum)

(* ----- Retry: deterministic backoff ----- *)

let test_retry_schedule () =
  let policy =
    { Lsutil.Retry.max_attempts = 6; base_s = 0.05; cap_s = 2.0;
      multiplier = 2.0; jitter = 0.5 }
  in
  let sched seed =
    List.map
      (fun k ->
        Lsutil.Retry.delay_s policy ~rng:(Lsutil.Rng.create seed) ~attempt:k)
      [ 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check (list (float 1e-9)))
    "same seed, same schedule" (sched 42) (sched 42);
  List.iteri
    (fun i d ->
      let k = i + 1 in
      let envelope = min policy.cap_s (policy.base_s *. (2.0 ** float_of_int (k - 1))) in
      if d > envelope +. 1e-9 then
        Alcotest.failf "delay %g for attempt %d above envelope %g" d k envelope;
      if d < envelope *. (1.0 -. policy.jitter) -. 1e-9 then
        Alcotest.failf "delay %g for attempt %d below jitter floor" d k)
    (sched 7);
  (* jitter 0 is the exact deterministic envelope *)
  let flat = { policy with jitter = 0.0 } in
  Alcotest.(check (float 1e-9)) "jitter 0: exact envelope" 0.2
    (Lsutil.Retry.delay_s flat ~rng:(Lsutil.Rng.create 1) ~attempt:3)

let test_retry_run () =
  let rng () = Lsutil.Rng.create 3 in
  let sleeps = ref [] in
  let sleep d = sleeps := d :: !sleeps in
  (* succeeds on the third try *)
  let r =
    Lsutil.Retry.run ~sleep ~rng:(rng ()) (fun ~attempt ->
        if attempt < 3 then Error (`Retry "transient") else Ok attempt)
  in
  (match r with
  | Ok 3 -> ()
  | Ok n -> Alcotest.failf "succeeded on attempt %d" n
  | Error e -> Alcotest.failf "failed: %s" e.Lsutil.Retry.last);
  Alcotest.(check int) "slept between the three tries" 2 (List.length !sleeps);
  (* a `Fail verdict stops immediately and is marked permanent *)
  let calls = ref 0 in
  (match
     Lsutil.Retry.run ~sleep ~rng:(rng ()) (fun ~attempt:_ ->
         incr calls;
         Error (`Fail "permanent"))
   with
  | Ok () -> Alcotest.fail "unexpected success"
  | Error e ->
      Alcotest.(check bool) "permanent" true e.Lsutil.Retry.permanent;
      Alcotest.(check int) "one attempt" 1 e.Lsutil.Retry.attempts;
      Alcotest.(check int) "one call" 1 !calls);
  (* the server's retry_after hint floors the backoff delay *)
  sleeps := [];
  (match
     Lsutil.Retry.run ~sleep ~rng:(rng ())
       ~policy:
         { Lsutil.Retry.max_attempts = 2; base_s = 0.001; cap_s = 1.0;
           multiplier = 2.0; jitter = 0.0 }
       (fun ~attempt ->
         if attempt = 1 then Error (`Retry_after (0.5, "overloaded")) else Ok ())
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "failed: %s" e.Lsutil.Retry.last);
  match !sleeps with
  | [ d ] ->
      Alcotest.(check bool)
        (Printf.sprintf "hint floors the delay (slept %g)" d)
        true (d >= 0.5)
  | l -> Alcotest.failf "expected one sleep, got %d" (List.length l)

(* ----- Budget.interrupt: the signal-to-degrade path ----- *)

let test_budget_interrupt () =
  let b = Lsutil.Budget.create () in
  Lsutil.Budget.poll b;
  (* idle: no-op *)
  Lsutil.Budget.interrupt b;
  Alcotest.(check bool) "interrupted" true (Lsutil.Budget.interrupted b);
  (match Lsutil.Budget.poll b with
  | () -> Alcotest.fail "poll after interrupt must raise"
  | exception Lsutil.Budget.Exhausted Lsutil.Budget.Deadline -> ()
  | exception Lsutil.Budget.Exhausted r ->
      Alcotest.failf "wrong reason %s" (Lsutil.Budget.reason_name r));
  (* verification runs masked: suspended extents do not trip *)
  Lsutil.Budget.suspended b (fun () ->
      Lsutil.Budget.poll b;
      Lsutil.Budget.check b);
  (* ...but the flag is sticky, so the next unmasked probe trips again *)
  match Lsutil.Budget.check b with
  | () -> Alcotest.fail "flag must stay sticky after a suspended extent"
  | exception Lsutil.Budget.Exhausted _ -> ()

(* ----- integration: a live in-process daemon ----- *)

let with_server ?(queue = 8) ?(workers = 2) ?cache ?(max_line = 1 lsl 20) f =
  let cfg =
    {
      (Server.default_config (`Tcp ("127.0.0.1", 0))) with
      Server.queue_capacity = queue;
      workers;
      cache;
      max_line_bytes = max_line;
      default_timeout_s = Some 20.0;
      idle_timeout_s = 20.0;
    }
  in
  let t = Server.launch cfg in
  Fun.protect
    ~finally:(fun () ->
      Server.drain t;
      Server.join t)
    (fun () -> f t (Server.bound_addr t))

(* a raw connection speaking bytes, for the malformed-input tests the
   well-behaved Client cannot produce *)
type rawc = { fd : Unix.file_descr; fr : F.t; buf : Bytes.t; mutable pend : F.event list }

let raw_connect addr =
  let fd =
    match addr with
    | `Tcp (host, port) ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
        fd
    | `Unix path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        fd
  in
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 20.0;
  { fd; fr = F.create (); buf = Bytes.create 4096; pend = [] }

let raw_send c s =
  let rec go pos =
    if pos < String.length s then
      go (pos + Unix.write_substring c.fd s pos (String.length s - pos))
  in
  go 0

let rec raw_line c =
  match c.pend with
  | F.Line l :: rest ->
      c.pend <- rest;
      l
  | F.Oversized n :: _ -> Alcotest.failf "server sent an oversized line (%d)" n
  | [] ->
      let n = Unix.read c.fd c.buf 0 (Bytes.length c.buf) in
      if n = 0 then Alcotest.fail "connection closed mid-frame"
      else begin
        c.pend <- F.feed c.fr c.buf 0 n;
        raw_line c
      end

let raw_frame c =
  let line = raw_line c in
  match J.of_string line with
  | Error e -> Alcotest.failf "unparseable frame %S: %s" line e
  | Ok j -> (
      (match P.validate_frame j with
      | Ok () -> ()
      | Error e -> Alcotest.failf "frame fails the response linter: %s" e);
      match P.decode_frame j with
      | Ok f -> f
      | Error e -> Alcotest.failf "undecodable frame %S: %s" line e)

let raw_close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let expect_error ~msg want = function
  | P.Error_frame { code; _ } ->
      Alcotest.(check string) msg
        (P.error_code_name want) (P.error_code_name code)
  | P.Result _ -> Alcotest.failf "%s: got a result frame" msg
  | P.Pong _ -> Alcotest.failf "%s: got a pong" msg
  | P.Telemetry _ -> Alcotest.failf "%s: got telemetry" msg

let connect_exn addr =
  match Client.connect addr with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %s" e

let test_server_ping () =
  with_server ~queue:8 ~workers:2 (fun t addr ->
      let c = connect_exn addr in
      Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
          match Client.ping c with
          | Error e -> Alcotest.failf "ping: %s" e
          | Ok pong ->
              Alcotest.(check (option int))
                "pong reports the configured queue" (Some 8)
                (Option.bind (J.member "queue_capacity" pong) J.to_int);
              Alcotest.(check (option int))
                "pong reports the worker pool" (Some 2)
                (Option.bind (J.member "workers" pong) J.to_int));
      (* the counter increments after the reply is written, so give the
         worker a moment to settle *)
      let rec settled n =
        Server.served t >= 1 || (n > 0 && (Unix.sleepf 0.01; settled (n - 1)))
      in
      Alcotest.(check bool) "served counted" true (settled 200))

let test_server_optimize () =
  with_server (fun _t addr ->
      let c = connect_exn addr in
      Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
          let passes = ref 0 in
          let on_telemetry = function
            | P.Telemetry { event = "pass"; _ } -> incr passes
            | _ -> ()
          in
          match
            Client.optimize ~on_telemetry c
              {
                P.id = Some "t-opt";
                circuit = P.Bench "b9";
                goal = `Size;
                effort = 1;
                beam = 2;
                timeout_s = Some 15.0;
                max_nodes = None;
                fault = None;
                emit = `Blif;
                stats = true;
              }
          with
          | Error e -> Alcotest.failf "optimize: %s" e
          | Ok r ->
              Alcotest.(check (option string)) "id echoed" (Some "t-opt") r.P.r_id;
              Alcotest.(check bool) "verified" true r.P.verified;
              Alcotest.(check bool) "not degraded" false r.P.degraded;
              Alcotest.(check bool) "did not grow" true
                (r.P.size_out <= r.P.size_in);
              Alcotest.(check bool) "per-pass telemetry streamed" true
                (!passes > 0);
              (* the emitted BLIF is real: it parses back with the
                 benchmark's interface *)
              (match r.P.blif with
              | None -> Alcotest.fail "blif requested but absent"
              | Some src ->
                  let tmp = Filename.temp_file "mig_serve_blif" ".blif" in
                  Fun.protect ~finally:(fun () -> Sys.remove tmp) (fun () ->
                      let oc = open_out tmp in
                      output_string oc src;
                      close_out oc;
                      let net = Logic_io.Blif.read_file tmp in
                      let orig = (Benchmarks.Suite.find "b9").build () in
                      Alcotest.(check int) "round-tripped PI count"
                        (List.length (Network.Graph.pis orig))
                        (List.length (Network.Graph.pis net));
                      Alcotest.(check int) "round-tripped PO count"
                        (List.length (Network.Graph.pos orig))
                        (List.length (Network.Graph.pos net))))))

(* the "search" goal routes through Flow.Orchestrate: same response
   shape, verified, and never larger than the input *)
let test_server_search_goal () =
  with_server (fun _t addr ->
      let c = connect_exn addr in
      Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
          match
            Client.optimize c
              {
                P.id = Some "t-search";
                circuit = P.Bench "b9";
                goal = `Search;
                effort = 1;
                beam = 2;
                timeout_s = Some 15.0;
                max_nodes = None;
                fault = None;
                emit = `None;
                stats = false;
              }
          with
          | Error e -> Alcotest.failf "search optimize: %s" e
          | Ok r ->
              Alcotest.(check (option string)) "id echoed" (Some "t-search")
                r.P.r_id;
              Alcotest.(check bool) "verified" true r.P.verified;
              Alcotest.(check bool) "did not grow" true
                (r.P.size_out <= r.P.size_in)))

let test_server_fault_degrades () =
  with_server (fun _t addr ->
      let c = connect_exn addr in
      Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
          match
            Client.optimize c
              {
                P.id = None;
                circuit = P.Bench "b9";
                goal = `Size;
                effort = 1;
                beam = 2;
                timeout_s = Some 15.0;
                max_nodes = None;
                fault = Some "seed=7:kind=raise:sites=transform";
                emit = `None;
                stats = false;
              }
          with
          | Error e -> Alcotest.failf "faulted optimize must still answer: %s" e
          | Ok r ->
              Alcotest.(check bool) "degraded to best-so-far" true r.P.degraded;
              Alcotest.(check bool) "and still verified" true r.P.verified))

let test_server_bad_fault_spec () =
  with_server (fun _t addr ->
      let c = raw_connect addr in
      Fun.protect ~finally:(fun () -> raw_close c) (fun () ->
          raw_send c
            "{\"schema\":\"mighty-serve/1\",\"circuit\":{\"bench\":\"b9\"},\"fault\":\"kind=bogus\"}\n";
          expect_error ~msg:"unparseable fault spec" P.Bad_request (raw_frame c)))

let test_server_unknown_bench () =
  with_server (fun _t addr ->
      let c = raw_connect addr in
      Fun.protect ~finally:(fun () -> raw_close c) (fun () ->
          raw_send c
            "{\"schema\":\"mighty-serve/1\",\"circuit\":{\"bench\":\"nonesuch\"}}\n";
          match raw_frame c with
          | P.Error_frame { code = P.Bad_request; message; _ } ->
              let contains hay needle =
                let nh = String.length hay and nn = String.length needle in
                let rec go i =
                  i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
                in
                go 0
              in
              Alcotest.(check bool)
                "rejection names the available benchmarks" true
                (contains message "b9")
          | f -> expect_error ~msg:"unknown benchmark" P.Bad_request f))

let test_server_malformed_then_usable () =
  with_server (fun _t addr ->
      let c = raw_connect addr in
      Fun.protect ~finally:(fun () -> raw_close c) (fun () ->
          raw_send c "\x00\xffgarbage that is not json\n";
          expect_error ~msg:"byte soup is a protocol error" P.Protocol
            (raw_frame c);
          (* same connection, still usable *)
          raw_send c "{\"schema\":\"mighty-serve/1\",\"type\":\"ping\"}\n";
          match raw_frame c with
          | P.Pong _ -> ()
          | f -> expect_error ~msg:"ping after garbage" P.Protocol f))

let test_server_oversize_resync () =
  with_server ~max_line:4096 (fun _t addr ->
      let c = raw_connect addr in
      Fun.protect ~finally:(fun () -> raw_close c) (fun () ->
          raw_send c (String.make 10_000 'j' ^ "\n");
          expect_error ~msg:"oversized line" P.Oversized (raw_frame c);
          raw_send c "{\"schema\":\"mighty-serve/1\",\"type\":\"ping\"}\n";
          match raw_frame c with
          | P.Pong _ -> ()
          | f -> expect_error ~msg:"ping after oversize" P.Oversized f))

let test_server_disconnect_absorbed () =
  with_server (fun t addr ->
      let c = raw_connect addr in
      raw_send c
        "{\"schema\":\"mighty-serve/1\",\"circuit\":{\"bench\":\"count\"}}\n";
      (* hang up before the answer; the worker must absorb the broken
         pipe and the daemon must keep serving *)
      raw_close c;
      let c2 = connect_exn addr in
      Fun.protect ~finally:(fun () -> Client.close c2) (fun () ->
          match Client.ping c2 with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "daemon died after a disconnect: %s" e);
      ignore (Server.served t))

let test_server_saturation_and_drain () =
  (* workers = 0 is the deterministic saturation hook: admitted
     connections sit in the queue until drain answers them *)
  with_server ~queue:1 ~workers:0 (fun t addr ->
      let admitted = raw_connect addr in
      (* give the accept loop time to queue it *)
      Unix.sleepf 0.3;
      let rejected = raw_connect addr in
      (match raw_frame rejected with
      | P.Error_frame { code = P.Overloaded; retry_after_ms = Some ms; _ } ->
          Alcotest.(check bool) "retry hint is positive" true (ms > 0)
      | P.Error_frame { code = P.Overloaded; retry_after_ms = None; _ } ->
          Alcotest.fail "overloaded rejection without retry_after_ms"
      | f -> expect_error ~msg:"admission control" P.Overloaded f);
      raw_close rejected;
      Alcotest.(check bool) "rejection counted" true (Server.rejected t >= 1);
      (* the retrying client gives a structured failure, not a hang *)
      (match
         Client.connect
           ~retry:
             { Lsutil.Retry.max_attempts = 2; base_s = 0.01; cap_s = 0.05;
               multiplier = 2.0; jitter = 0.0 }
           ~rng:(Lsutil.Rng.create 9) addr
       with
      | Error _ -> ()
      | Ok c ->
          Client.close c;
          Alcotest.fail "connect must fail against a saturated server");
      (* drain answers the admitted-but-unserved connection *)
      Server.drain t;
      Server.join t;
      expect_error ~msg:"drain answers queued connections" P.Draining
        (raw_frame admitted);
      raw_close admitted)

let test_server_drain_flushes_cache () =
  let path = Filename.temp_file "mig_serve_cache" ".json" in
  Sys.remove path;
  let cache = Flow.Cache.empty_at path in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      with_server ~cache (fun t addr ->
          let c = connect_exn addr in
          Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
              match
                Client.optimize c
                  {
                    P.id = None;
                    circuit = P.Bench "b9";
                    goal = `Size;
                    effort = 1;
                    beam = 2;
                    timeout_s = Some 15.0;
                    max_nodes = None;
                    fault = None;
                    emit = `None;
                    stats = false;
                  }
              with
              | Ok r -> Alcotest.(check bool) "verified" true r.P.verified
              | Error e -> Alcotest.failf "optimize: %s" e);
          Server.drain t;
          Server.join t;
          (* all workers have joined, so the counter is settled *)
          Alcotest.(check int) "one request served" 1 (Server.served t));
      (* with_server's finally re-drains; both are idempotent *)
      Alcotest.(check bool) "drain wrote the cache file" true
        (Sys.file_exists path);
      match Flow.Cache.load path with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "flushed cache does not load: %s" e)

let test_server_unix_socket () =
  let path = Filename.temp_file "mig_serve" ".sock" in
  Sys.remove path;
  let cfg =
    {
      (Server.default_config (`Unix path)) with
      Server.workers = 1;
      default_timeout_s = Some 20.0;
    }
  in
  let t = Server.launch cfg in
  let served () =
    let c = connect_exn (`Unix path) in
    Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
        match Client.ping c with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "ping over unix socket: %s" e)
  in
  Fun.protect
    ~finally:(fun () ->
      Server.drain t;
      Server.join t)
    (fun () -> served ());
  Alcotest.(check bool) "socket path unlinked on join" false
    (Sys.file_exists path)

let () =
  Alcotest.run "serve"
    [
      ( "framing",
        [
          Alcotest.test_case "line cutting" `Quick test_framing_lines;
          Alcotest.test_case "oversize discard + re-sync" `Quick
            test_framing_oversize;
          fuzz_chunking;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "structured decode errors" `Quick
            test_parse_request_errors;
          Alcotest.test_case "truncated frames" `Quick
            test_parse_request_truncated;
          Alcotest.test_case "response linter" `Quick test_validate_frame;
          fuzz_request_roundtrip;
          fuzz_parse_total;
        ] );
      ( "queue",
        [
          Alcotest.test_case "bounded FIFO + close" `Quick test_queue_basic;
          Alcotest.test_case "mpmc across domains" `Quick test_queue_mpmc;
        ] );
      ( "retry",
        [
          Alcotest.test_case "deterministic schedule" `Quick test_retry_schedule;
          Alcotest.test_case "run semantics" `Quick test_retry_run;
        ] );
      ( "budget",
        [ Alcotest.test_case "interrupt" `Quick test_budget_interrupt ] );
      ( "server",
        [
          Alcotest.test_case "ping" `Quick test_server_ping;
          Alcotest.test_case "optimize + emit + telemetry" `Quick
            test_server_optimize;
          Alcotest.test_case "search goal routes to orchestrate" `Quick
            test_server_search_goal;
          Alcotest.test_case "in-flight fault degrades" `Quick
            test_server_fault_degrades;
          Alcotest.test_case "bad fault spec" `Quick test_server_bad_fault_spec;
          Alcotest.test_case "unknown benchmark" `Quick
            test_server_unknown_bench;
          Alcotest.test_case "malformed bytes, connection stays usable" `Quick
            test_server_malformed_then_usable;
          Alcotest.test_case "oversize line re-syncs" `Quick
            test_server_oversize_resync;
          Alcotest.test_case "client disconnect absorbed" `Quick
            test_server_disconnect_absorbed;
          Alcotest.test_case "saturation + graceful drain" `Quick
            test_server_saturation_and_drain;
          Alcotest.test_case "drain flushes the cache delta" `Quick
            test_server_drain_flushes_cache;
          Alcotest.test_case "unix socket transport" `Quick
            test_server_unix_socket;
        ] );
    ]
