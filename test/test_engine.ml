(* Flow.Engine and Lsutil.Budget: budgets fire, checkpoints hold, and
   the engine always hands back a valid best-so-far graph. *)

module M = Mig.Graph
module Tr = Mig.Transform
module E = Flow.Engine
module B = Lsutil.Budget
module F = Lsutil.Fault

let mig_of ?ctx name =
  let net = (Benchmarks.Suite.find name).Benchmarks.Suite.build () in
  Mig.Convert.of_network ?ctx (Network.Graph.flatten_aoig net)

(* ----- Budget primitives ----- *)

let test_budget_deadline () =
  let b = B.create () in
  match
    B.with_budget b ~deadline_s:0.02 (fun () ->
        while true do
          B.poll b
        done)
  with
  | () -> Alcotest.fail "unreachable"
  | exception B.Exhausted B.Deadline -> ()
  | exception B.Exhausted B.Node_cap -> Alcotest.fail "wrong reason"

let test_budget_node_cap () =
  let b = B.create () in
  match
    B.with_budget b ~max_nodes:1_000 (fun () ->
        for _ = 1 to 100_000 do
          B.note_nodes b 1
        done)
  with
  | () -> Alcotest.fail "unreachable"
  | exception B.Exhausted B.Node_cap -> ()
  | exception B.Exhausted B.Deadline -> Alcotest.fail "wrong reason"

let test_budget_nesting () =
  (* an inner budget cannot extend the ambient allowance: its cap is
     clamped to what the outer budget has left *)
  let b = B.create () in
  match
    B.with_budget b ~max_nodes:100 (fun () ->
        B.note_nodes b 50;
        B.with_budget b ~max_nodes:1_000_000 (fun () ->
            for _ = 1 to 10_000 do
              B.note_nodes b 1
            done))
  with
  | () -> Alcotest.fail "inner budget escaped the outer cap"
  | exception B.Exhausted B.Node_cap -> ()
  | exception B.Exhausted B.Deadline -> Alcotest.fail "wrong reason"

let test_budget_suspended () =
  let b = B.create () in
  B.with_budget b ~max_nodes:10 (fun () ->
      B.suspended b (fun () ->
          for _ = 1 to 1_000 do
            B.note_nodes b 1
          done);
      Alcotest.(check bool) "not expired" false (B.expired b))

let test_disabled_hooks_cheap () =
  (* the whole robustness layer must be (close to) free when disarmed:
     10M poll+fire pairs are single load-and-branch each, so even a
     noisy CI box finishes far under the bound *)
  let b = B.create () and f = F.create () in
  Alcotest.(check bool) "no ambient budget" false (B.active b);
  Alcotest.(check bool) "no fault plan" false (F.enabled f);
  let t0 = Unix.gettimeofday () in
  for _ = 1 to 10_000_000 do
    B.poll b;
    ignore (F.fire f "transform")
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "disarmed hooks cheap" true (dt < 0.5)

(* ----- engine checkpoint/rollback ----- *)

let test_checkpoint_best_so_far () =
  let m = mig_of "count" in
  let shrunk = ref (-1) in
  let passes =
    [
      E.pass "shrink" (fun g ->
          let g' = Tr.eliminate g in
          shrunk := M.size g';
          g');
      E.pass "bomb" (fun g -> B.exhaust (Lsutil.Ctx.budget (M.ctx g)));
      E.pass "tail" Tr.eliminate;
    ]
  in
  let out, rep = E.run ~verify:true ~timeout_s:60.0 ~seed:42 ~passes m in
  Alcotest.(check bool) "equivalent to input" true
    (Mig.Equiv.migs ~seed:9 m out);
  Alcotest.(check bool) "best-so-far no worse than shrink result" true
    (M.size out <= !shrunk);
  let outcomes =
    List.map (fun r -> E.outcome_name r.E.outcome) rep.E.passes
  in
  Alcotest.(check (list string)) "outcomes"
    [ "completed"; "timed_out"; "skipped" ]
    outcomes;
  Alcotest.(check bool) "degraded" true rep.E.degraded;
  Alcotest.(check bool) "verified" true rep.E.verified;
  Alcotest.(check bool) "rollback counted" true (rep.E.rollbacks >= 1)

let test_failed_pass_rolls_back () =
  let m = mig_of "count" in
  let passes =
    [
      E.pass "ok" Tr.eliminate;
      E.pass "boom" (fun _ -> failwith "synthetic");
      E.pass "after" Tr.eliminate;
    ]
  in
  let out, rep = E.run ~verify:true ~seed:3 ~passes m in
  Alcotest.(check bool) "equivalent to input" true
    (Mig.Equiv.migs ~seed:4 m out);
  let outcomes =
    List.map (fun r -> E.outcome_name r.E.outcome) rep.E.passes
  in
  Alcotest.(check (list string)) "outcomes"
    [ "completed"; "failed"; "completed" ]
    outcomes;
  Alcotest.(check bool) "degraded" true rep.E.degraded;
  Alcotest.(check int) "one rollback" 1 rep.E.rollbacks

(* ----- determinism: equal fault specs give equal runs ----- *)

let fingerprint (g, (rep : E.report)) =
  ( M.size g,
    M.depth g,
    rep.E.rollbacks,
    List.map
      (fun r -> (r.E.pass, E.outcome_name r.E.outcome, r.E.rolled_back))
      rep.E.passes )

let run_faulted spec m =
  let f = Lsutil.Ctx.fault (M.ctx m) in
  (match F.arm_string f spec with
  | Ok () -> ()
  | Error e -> Alcotest.failf "bad spec %S: %s" spec e);
  Fun.protect
    ~finally:(fun () -> F.disarm f)
    (fun () -> E.run ~verify:true ~seed:7 ~passes:(E.of_goal ~effort:1 `Size) m)

let test_same_seed_deterministic () =
  let spec = "seed=11:rate=0.01:kind=any:sites=transform,strash:max=6" in
  (* a fresh ctx per run: equal specs must give equal runs *)
  let once () = fingerprint (run_faulted spec (mig_of "cla")) in
  Alcotest.(check bool) "same fingerprint" true (once () = once ())

(* ----- unified budget in the BDD layer ----- *)

let test_bds_graceful_none () =
  (* C6288 is the canonical BDD blow-up; a tiny node limit must come
     back as None, never an exception *)
  let net = (Benchmarks.Suite.find "C6288").Benchmarks.Suite.build () in
  match Flow.bds_opt ~node_limit:500 ~seed:3 (Lsutil.Ctx.create ()) net with
  | None -> ()
  | Some _ -> Alcotest.fail "expected blow-up to return None"

(* ----- the acceptance scenario: bounded opt on C6288 ----- *)

let test_timeout_bounded_c6288 () =
  let m = mig_of "C6288" in
  let timeout = 0.2 in
  let t0 = Unix.gettimeofday () in
  let out, rep =
    E.run ~timeout_s:timeout
      ~cost:(E.cost_of_goal `Depth)
      ~seed:5
      ~passes:(E.of_goal ~effort:2 `Depth)
      m
  in
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "within 1.5x deadline (+verify slack)" true
    (dt <= (timeout *. 1.5) +. 0.6);
  Alcotest.(check bool) "verified" true rep.E.verified;
  Alcotest.(check bool) "some pass interrupted" true rep.E.degraded;
  Alcotest.(check bool) "valid graph" true (M.size out > 0);
  Alcotest.(check bool) "every pass reported" true
    (List.length rep.E.passes = List.length (E.of_goal ~effort:2 `Depth))

let () =
  Alcotest.run "engine"
    [
      ( "budget",
        [
          Alcotest.test_case "deadline fires" `Quick test_budget_deadline;
          Alcotest.test_case "node cap fires" `Quick test_budget_node_cap;
          Alcotest.test_case "nesting clamps" `Quick test_budget_nesting;
          Alcotest.test_case "suspension" `Quick test_budget_suspended;
          Alcotest.test_case "disarmed hooks cheap" `Slow
            test_disabled_hooks_cheap;
        ] );
      ( "engine",
        [
          Alcotest.test_case "checkpointed best-so-far" `Quick
            test_checkpoint_best_so_far;
          Alcotest.test_case "failed pass rolls back" `Quick
            test_failed_pass_rolls_back;
          Alcotest.test_case "same-seed determinism" `Quick
            test_same_seed_deterministic;
          Alcotest.test_case "bds blow-up is None" `Quick
            test_bds_graceful_none;
          Alcotest.test_case "C6288 bounded opt" `Slow
            test_timeout_bounded_c6288;
        ] );
    ]
