module T = Truthtable

let tt = Helpers.check_tt

let test_consts () =
  Alcotest.(check bool) "const0 is_const0" true (T.is_const0 (T.const0 4));
  Alcotest.(check bool) "const1 is_const1" true (T.is_const1 (T.const1 4));
  Alcotest.(check int) "const0 ones" 0 (T.count_ones (T.const0 5));
  Alcotest.(check int) "const1 ones" 32 (T.count_ones (T.const1 5));
  Alcotest.check tt "not const0 = const1" (T.const1 7) (T.not_ (T.const0 7));
  (* large tables spanning several words *)
  Alcotest.(check int) "const1 ones 8 vars" 256 (T.count_ones (T.const1 8));
  Alcotest.check tt "not involutive large" (T.const0 9) (T.not_ (T.not_ (T.const0 9)))

let test_vars () =
  for n = 1 to 8 do
    for i = 0 to n - 1 do
      let v = T.var n i in
      Alcotest.(check int)
        (Printf.sprintf "var %d/%d balanced" i n)
        (1 lsl (n - 1))
        (T.count_ones v);
      Alcotest.(check bool)
        "depends only on itself" true
        (List.for_all
           (fun j -> T.depends_on v j = (i = j))
           (List.init n (fun j -> j)))
    done
  done

let test_var_bits () =
  let v = T.var 3 1 in
  List.iteri
    (fun m expect ->
      Alcotest.(check bool) (Printf.sprintf "bit %d" m) expect (T.get_bit v m))
    [ false; false; true; true; false; false; true; true ]

let test_ops_small () =
  let a = T.var 2 0 and b = T.var 2 1 in
  Alcotest.check tt "and" (T.of_hex 2 "8") (T.and_ a b);
  Alcotest.check tt "or" (T.of_hex 2 "e") (T.or_ a b);
  Alcotest.check tt "xor" (T.of_hex 2 "6") (T.xor_ a b);
  Alcotest.check tt "nand" (T.of_hex 2 "7") (T.nand_ a b);
  Alcotest.check tt "nor" (T.of_hex 2 "1") (T.nor_ a b);
  Alcotest.check tt "xnor" (T.of_hex 2 "9") (T.xnor_ a b)

let test_maj_mux () =
  let a = T.var 3 0 and b = T.var 3 1 and c = T.var 3 2 in
  Alcotest.check tt "maj tt" (T.of_hex 3 "e8") (T.maj a b c);
  Alcotest.check tt "mux s=1 gives t"
    (T.maj a b c)
    (T.mux (T.const1 3) (T.maj a b c) (T.const0 3));
  Alcotest.check tt "mux decomposition"
    (T.mux c a b)
    (T.or_ (T.and_ c a) (T.and_ (T.not_ c) b))

let test_hex_roundtrip () =
  List.iter
    (fun (n, s) -> Alcotest.(check string) ("hex " ^ s) s (T.to_hex (T.of_hex n s)))
    [ (2, "6"); (3, "e8"); (4, "dead"); (5, "deadbeef"); (6, "0123456789abcdef") ]

let test_binary () =
  Alcotest.(check string) "maj binary" "11101000" (T.to_binary (T.of_hex 3 "e8"))

let test_cofactors () =
  let a = T.var 3 0 and b = T.var 3 1 and c = T.var 3 2 in
  let m = T.maj a b c in
  Alcotest.check tt "maj|c=0 = and" (T.and_ a b) (T.cofactor0 m 2);
  Alcotest.check tt "maj|c=1 = or" (T.or_ a b) (T.cofactor1 m 2);
  (* cofactors erase dependence *)
  Alcotest.(check bool) "cof0 independent" false (T.depends_on (T.cofactor0 m 2) 2);
  (* high-index variable (word-level cofactor) *)
  let x = T.var 7 6 and y = T.var 7 0 in
  let f = T.and_ x y in
  Alcotest.check tt "word cofactor1" y (T.cofactor1 f 6);
  Alcotest.check tt "word cofactor0" (T.const0 7) (T.cofactor0 f 6)

let test_support () =
  let a = T.var 5 0 and c = T.var 5 2 in
  Alcotest.(check (list int)) "support" [ 0; 2 ] (T.support (T.xor_ a c))

let prop_demorgan =
  Helpers.qtest "qcheck: De Morgan"
    QCheck2.Gen.(pair (Helpers.gen_tt 5) (Helpers.gen_tt 5))
    (fun (a, b) ->
      T.equal (T.not_ (T.and_ a b)) (T.or_ (T.not_ a) (T.not_ b)))

let prop_shannon =
  Helpers.qtest "qcheck: Shannon expansion"
    QCheck2.Gen.(pair (Helpers.gen_tt 6) (int_bound 5))
    (fun (f, i) ->
      T.equal f
        (T.mux (T.var 6 i) (T.cofactor1 f i) (T.cofactor0 f i)))

let prop_maj_selfdual =
  Helpers.qtest "qcheck: majority is self-dual"
    QCheck2.Gen.(triple (Helpers.gen_tt 4) (Helpers.gen_tt 4) (Helpers.gen_tt 4))
    (fun (a, b, c) ->
      T.equal
        (T.not_ (T.maj a b c))
        (T.maj (T.not_ a) (T.not_ b) (T.not_ c)))

let prop_xor_assoc =
  Helpers.qtest "qcheck: xor associativity"
    QCheck2.Gen.(triple (Helpers.gen_tt 5) (Helpers.gen_tt 5) (Helpers.gen_tt 5))
    (fun (a, b, c) ->
      T.equal (T.xor_ (T.xor_ a b) c) (T.xor_ a (T.xor_ b c)))

let prop_count_ones =
  Helpers.qtest "qcheck: count_ones of or"
    QCheck2.Gen.(pair (Helpers.gen_tt 6) (Helpers.gen_tt 6))
    (fun (a, b) ->
      T.count_ones (T.or_ a b) + T.count_ones (T.and_ a b)
      = T.count_ones a + T.count_ones b)

let prop_of_bits =
  Helpers.qtest "qcheck: of_bits/get_bit roundtrip" (Helpers.gen_tt 7)
    (fun f ->
      let g = T.of_bits 7 (fun m -> T.get_bit f m) in
      T.equal f g)

(* apply an explicit NPN perturbation: negate inputs by [phase], then
   [permute], then maybe complement the output — the same order the
   [npn] transform record documents *)
let perturb n f perm phase out_neg =
  let g = ref f in
  for j = 0 to n - 1 do
    if phase land (1 lsl j) <> 0 then g := T.flip_var !g j
  done;
  let g = T.permute !g perm in
  if out_neg then T.not_ g else g

let prop_npn_key_invariant =
  Helpers.qtest "qcheck: npn_key invariant over the NPN orbit"
    QCheck2.Gen.(
      quad (Helpers.gen_tt 4) (shuffle_l [ 0; 1; 2; 3 ]) (int_bound 15) bool)
    (fun (f, perml, phase, neg) ->
      let g = perturb 4 f (Array.of_list perml) phase neg in
      String.equal (T.npn_key f) (T.npn_key g))

let prop_npn_apply =
  Helpers.qtest "qcheck: npn_canon transform reproduces its representative"
    (Helpers.gen_tt 5)
    (fun f ->
      let rep, tr = T.npn_canon f in
      tr.T.exact && T.equal rep (T.npn_apply f tr))

let prop_semiclass_bruteforce =
  (* the Gray-code walk must agree with the 2^(n+1)-candidate brute
     force; hex strings compare numerically because [to_hex] is
     fixed-width, most-significant first *)
  Helpers.qtest "qcheck: Gray-walk semiclass matches brute force"
    (Helpers.gen_tt 4)
    (fun f ->
      let best = ref None in
      for mask = 0 to 15 do
        let g = ref f in
        for j = 0 to 3 do
          if mask land (1 lsl j) <> 0 then g := T.flip_var !g j
        done;
        List.iter
          (fun h ->
            let s = T.to_hex h in
            match !best with Some b when b <= s -> () | _ -> best := Some s)
          [ !g; T.not_ !g ]
      done;
      String.equal (T.npn_semiclass f) (Option.get !best))

let prop_semiclass_transform =
  Helpers.qtest "qcheck: npn_semiclass_t transform reproduces its rep"
    (Helpers.gen_tt 6)
    (fun f ->
      let rep, tr = T.npn_semiclass_t f in
      T.equal rep (T.npn_apply f tr)
      && Array.for_all2 ( = ) tr.T.perm (Array.init 6 (fun i -> i)))

let prop_flip_var_ref =
  Helpers.qtest "qcheck: flip_var matches the bit-level reference"
    QCheck2.Gen.(pair (Helpers.gen_tt 7) (int_bound 6))
    (fun (f, i) ->
      T.equal (T.flip_var f i)
        (T.of_bits 7 (fun m -> T.get_bit f (m lxor (1 lsl i)))))

let var_cases =
  let module T = Truthtable in
  let run name f = Alcotest.test_case name `Quick f in
  [
    run "swap_adjacent" (fun () ->
        let f = T.and_ (T.var 3 0) (T.not_ (T.var 3 1)) in
        let g = T.swap_adjacent f 0 in
        Alcotest.check tt "x0 x1' swapped"
          (T.and_ (T.var 3 1) (T.not_ (T.var 3 0)))
          g;
        Alcotest.check tt "involution" f (T.swap_adjacent g 0));
    run "permute" (fun () ->
        let f = T.maj (T.var 3 0) (T.var 3 1) (T.var 3 2) in
        Alcotest.check tt "maj symmetric" f (T.permute f [| 2; 0; 1 |]);
        let g = T.and_ (T.var 3 0) (T.var 3 2) in
        (* old 0 -> new 2, old 2 -> new 1 *)
        Alcotest.check tt "rotate and"
          (T.and_ (T.var 3 2) (T.var 3 1))
          (T.permute g [| 2; 0; 1 |]));
    run "flip_var" (fun () ->
        let f = T.var 4 2 in
        Alcotest.check tt "flip projection" (T.not_ f) (T.flip_var f 2);
        Alcotest.check tt "double flip" f (T.flip_var (T.flip_var f 2) 2));
    run "npn_semiclass" (fun () ->
        let a = T.and_ (T.var 2 0) (T.var 2 1) in
        let b = T.nor_ (T.var 2 0) (T.var 2 1) in
        Alcotest.(check string) "AND ~ NOR under negations"
          (T.npn_semiclass a) (T.npn_semiclass b));
    run "npn_key classes" (fun () ->
        let a = T.var 2 0 and b = T.var 2 1 in
        let key f = T.npn_key f in
        (* AND, OR, NAND and NOR are all one NPN class *)
        Alcotest.(check string) "AND ~ OR" (key (T.and_ a b)) (key (T.or_ a b));
        Alcotest.(check string) "AND ~ NAND"
          (key (T.and_ a b)) (key (T.nand_ a b));
        Alcotest.(check string) "AND ~ NOR" (key (T.and_ a b)) (key (T.nor_ a b));
        (* XOR needs three minterms flipped: a different class *)
        Alcotest.(check bool) "AND <> XOR" false
          (String.equal (key (T.and_ a b)) (key (T.xor_ a b)));
        (* permutation-only variants: semiclass alone cannot merge
           these, full canonization must *)
        let f = T.and_ (T.var 3 0) (T.or_ (T.var 3 1) (T.var 3 2)) in
        let g = T.and_ (T.var 3 2) (T.or_ (T.var 3 0) (T.var 3 1)) in
        Alcotest.(check string) "permuted cone, same key" (key f) (key g));
    run "shrink" (fun () ->
        (* a 5-var table that only depends on vars 1 and 3 *)
        let f = T.and_ (T.var 5 1) (T.var 5 3) in
        let s, vars = T.shrink f in
        Alcotest.(check (list int)) "support map" [ 1; 3 ] (Array.to_list vars);
        Alcotest.check tt "shrunk function" (T.and_ (T.var 2 0) (T.var 2 1)) s);
  ]

let () =
  Alcotest.run "truthtable"
    [
      ( "unit",
        [
          Alcotest.test_case "constants" `Quick test_consts;
          Alcotest.test_case "projections" `Quick test_vars;
          Alcotest.test_case "var bit pattern" `Quick test_var_bits;
          Alcotest.test_case "binary ops" `Quick test_ops_small;
          Alcotest.test_case "maj and mux" `Quick test_maj_mux;
          Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
          Alcotest.test_case "binary printing" `Quick test_binary;
          Alcotest.test_case "cofactors" `Quick test_cofactors;
          Alcotest.test_case "support" `Quick test_support;
        ] );
      ( "properties",
        [
          prop_demorgan;
          prop_shannon;
          prop_maj_selfdual;
          prop_xor_assoc;
          prop_count_ones;
          prop_of_bits;
          prop_npn_key_invariant;
          prop_npn_apply;
          prop_semiclass_bruteforce;
          prop_semiclass_transform;
          prop_flip_var_ref;
        ] );
      ("variable manipulation", var_cases);
    ]

