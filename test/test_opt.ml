module M = Mig.Graph

(* quiet shared context for the flow calls in this file *)
let ctx = Lsutil.Ctx.create ()
module N = Network.Graph

let vars = [ "a"; "b"; "c"; "d"; "e"; "f" ]

let gen_mig =
  QCheck2.Gen.(
    map
      (fun terms -> Helpers.network_of_terms ~vars terms)
      (list_size (int_range 1 4) (Helpers.gen_term ~vars ~depth:4)))

let prop_size_sound =
  Helpers.qtest ~count:100 "qcheck: Opt_size sound and monotone" gen_mig
    (fun net ->
      let m = Mig.Convert.of_network net in
      let o = Mig.Opt_size.run m in
      M.size o <= M.size m && Mig.Equiv.to_network_equiv ~seed:0x51 o net)

let prop_depth_sound =
  Helpers.qtest ~count:60 "qcheck: Opt_depth sound and monotone" gen_mig
    (fun net ->
      let m = Mig.Convert.of_network net in
      let o = Mig.Opt_depth.run ~effort:2 m in
      M.depth o <= M.depth m && Mig.Equiv.to_network_equiv ~seed:0x52 o net)

let prop_activity_sound =
  Helpers.qtest ~count:60 "qcheck: Opt_activity sound and monotone" gen_mig
    (fun net ->
      let m = Mig.Convert.of_network net in
      let o = Mig.Opt_activity.run m in
      Mig.Activity.total o <= Mig.Activity.total m +. 1e-9
      && Mig.Equiv.to_network_equiv ~seed:0x53 o net)

(* known results on named circuits *)

let flat name =
  N.flatten_aoig ((Benchmarks.Suite.find name).Benchmarks.Suite.build ())

let test_adder_depth () =
  let net = flat "my_adder" in
  let o = Mig.Opt_depth.run (Mig.Convert.of_network net) in
  Alcotest.(check bool) "16-bit adder below 9 levels" true (M.depth o <= 9);
  Alcotest.(check bool) "equivalent" true
    (Mig.Equiv.to_network_equiv ~seed:0x54 o net)

let test_counter_depth () =
  let net = flat "count" in
  let o = Mig.Opt_depth.run (Mig.Convert.of_network net) in
  Alcotest.(check bool) "counter below 10 levels" true (M.depth o <= 10);
  Alcotest.(check bool) "equivalent" true
    (Mig.Equiv.to_network_equiv ~seed:0x55 o net)

let test_mig_beats_aig_depth_on_datapath () =
  List.iter
    (fun name ->
      let net = (Benchmarks.Suite.find name).Benchmarks.Suite.build () in
      let _, mig = Flow.mig_opt ctx net in
      let _, aig = Flow.aig_opt ctx net in
      Alcotest.(check bool)
        (Printf.sprintf "MIG depth < AIG depth on %s" name)
        true
        (mig.Flow.depth < aig.Flow.depth))
    [ "my_adder"; "count"; "cla" ]

let test_size_opt_keeps_interface () =
  let net = flat "b9" in
  let m = Mig.Convert.of_network net in
  let o = Mig.Opt_size.run m in
  Alcotest.(check int) "pis kept" (M.num_pis m) (M.num_pis o);
  Alcotest.(check int) "pos kept" (M.num_pos m) (M.num_pos o)

let test_activity_example () =
  (* Fig. 2(d) quantities *)
  let probs = function "x" -> 0.5 | _ -> 0.1 in
  let g = M.create () in
  let x = M.add_pi g "x" and y = M.add_pi g "y" in
  let z = M.add_pi g "z" and w = M.add_pi g "w" in
  M.add_po g "k" (M.maj g x y (M.maj g (Network.Signal.not_ x) z w));
  Alcotest.(check (float 1e-3)) "initial SW" 0.18
    (Mig.Activity.total ~pi_prob:probs g);
  let o = Mig.Opt_activity.run ~pi_prob:probs g in
  Alcotest.(check bool) "halved as in the paper" true
    (Mig.Activity.total ~pi_prob:probs o < 0.1);
  Alcotest.(check bool) "equivalent" true (Mig.Equiv.migs ~seed:0x56 g o)

let test_effort_monotone_interface () =
  let net = flat "C1908" in
  let m = Mig.Convert.of_network net in
  let d1 = M.depth (Mig.Opt_depth.run ~effort:1 m) in
  let d4 = M.depth (Mig.Opt_depth.run ~effort:4 m) in
  Alcotest.(check bool) "more effort never hurts depth" true (d4 <= d1)

let () =
  Alcotest.run "opt"
    [
      ( "properties",
        [ prop_size_sound; prop_depth_sound; prop_activity_sound ] );
      ( "circuits",
        [
          Alcotest.test_case "adder depth" `Quick test_adder_depth;
          Alcotest.test_case "counter depth" `Quick test_counter_depth;
          Alcotest.test_case "MIG vs AIG on datapath" `Slow
            test_mig_beats_aig_depth_on_datapath;
          Alcotest.test_case "interface stability" `Quick
            test_size_opt_keeps_interface;
          Alcotest.test_case "Fig. 2(d) activity" `Quick test_activity_example;
          Alcotest.test_case "effort monotonicity" `Slow
            test_effort_monotone_interface;
        ] );
    ]
