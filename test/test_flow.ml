module N = Network.Graph

(* quiet shared context for the flow calls in this file *)
let ctx = Lsutil.Ctx.create ()

let flat name = N.flatten_aoig ((Benchmarks.Suite.find name).Benchmarks.Suite.build ())

let test_mig_flow () =
  let e = Benchmarks.Suite.find "my_adder" in
  let net = e.Benchmarks.Suite.build () in
  let g, r = Flow.mig_opt ctx net in
  Alcotest.(check int) "reported size matches" (Mig.Graph.size g) r.Flow.size;
  Alcotest.(check int) "reported depth matches" (Mig.Graph.depth g) r.Flow.depth;
  Alcotest.(check bool) "time recorded" true (r.Flow.time >= 0.0);
  Alcotest.(check bool) "equivalent to flattened input" true
    (Mig.Equiv.to_network_equiv ~seed:1 g (flat "my_adder"))

let test_aig_flow () =
  let net = (Benchmarks.Suite.find "count").Benchmarks.Suite.build () in
  let g, r = Flow.aig_opt ctx net in
  Alcotest.(check int) "size" (Aig.Graph.size g) r.Flow.size;
  Alcotest.(check bool) "equivalent" true
    (Network.Simulate.equivalent ~seed:2 (Aig.Convert.to_network g)
       (flat "count"))

let test_bds_flow () =
  let net = (Benchmarks.Suite.find "b9").Benchmarks.Suite.build () in
  match Flow.bds_opt ~seed:3 ctx net with
  | Some (d, r) ->
      Alcotest.(check int) "size" (N.size d) r.Flow.size;
      Alcotest.(check bool) "equivalent" true
        (Network.Simulate.equivalent ~seed:4 d (flat "b9"))
  | None -> Alcotest.fail "b9 should not blow up"

let test_bds_na () =
  (* the multiplier is the canonical BDD blow-up: a small budget must
     produce the paper's N.A. outcome *)
  let net = (Benchmarks.Suite.find "C6288").Benchmarks.Suite.build () in
  Alcotest.(check bool) "N.A. on multiplier" true
    (Flow.bds_opt ~node_limit:10_000 ~seed:5 ctx net = None)

let test_guard_time_split () =
  (* The transform guard (MIG_CHECK=1) must not leak into the
     reported pass time: [time] is the bare transform either way,
     guard overhead lands in [guard_time]. *)
  let net = (Benchmarks.Suite.find "count").Benchmarks.Suite.build () in
  let _, unguarded = Flow.mig_opt ~check:false ctx net in
  let g, guarded = Flow.mig_opt ~check:true ctx net in
  Alcotest.(check bool) "guard ran" true (guarded.Flow.guard_time > 0.0);
  Alcotest.(check (float 0.0)) "no guard, no guard_time" 0.0
    unguarded.Flow.guard_time;
  Alcotest.(check bool) "guarded run still equivalent" true
    (Mig.Equiv.to_network_equiv ~seed:6 g (flat "count"));
  (* Loose bound: the two bare-transform times must be comparable —
     before the split the guarded one also carried lint + miter. *)
  Alcotest.(check bool)
    (Printf.sprintf "pass time unpolluted (%.3fs vs %.3fs)" guarded.Flow.time
       unguarded.Flow.time)
    true
    (guarded.Flow.time < (unguarded.Flow.time *. 5.0) +. 0.1)

let test_synth_flows () =
  let net = (Benchmarks.Suite.find "my_adder").Benchmarks.Suite.build () in
  let mig = Flow.mig_synth ctx net in
  let aig = Flow.aig_synth ctx net in
  let cst = Flow.cst_synth ctx net in
  List.iter
    (fun (name, (r : Flow.syn_result)) ->
      Alcotest.(check bool) (name ^ " sane") true
        (r.Flow.area > 0.0 && r.Flow.delay > 0.0 && r.Flow.power > 0.0))
    [ ("mig", mig); ("aig", aig); ("cst", cst) ];
  (* headline direction on a datapath circuit *)
  Alcotest.(check bool) "MIG flow delay wins" true
    (mig.Flow.delay < aig.Flow.delay && mig.Flow.delay < cst.Flow.delay)

let () =
  Alcotest.run "flow"
    [
      ( "optimization",
        [
          Alcotest.test_case "mig" `Quick test_mig_flow;
          Alcotest.test_case "aig" `Quick test_aig_flow;
          Alcotest.test_case "bds" `Quick test_bds_flow;
          Alcotest.test_case "bds N.A." `Quick test_bds_na;
          Alcotest.test_case "guard time split" `Quick test_guard_time_split;
        ] );
      ( "synthesis",
        [ Alcotest.test_case "three flows" `Slow test_synth_flows ] );
    ]
