module N = Network.Graph

let roundtrip_blif net =
  let text = Format.asprintf "%a" (fun fmt n -> Logic_io.Blif.write fmt n) net in
  Logic_io.Blif.read text

let roundtrip_verilog net =
  let text =
    Format.asprintf "%a" (fun fmt n -> Logic_io.Verilog.write fmt n) net
  in
  Logic_io.Verilog.read text

let test_blif_roundtrip_simple () =
  let net = N.create () in
  let a = N.add_pi net "a" and b = N.add_pi net "b" and c = N.add_pi net "c" in
  N.add_po net "y" (N.maj net a (Network.Signal.not_ b) c);
  N.add_po net "z" (Network.Signal.not_ (N.xor_ net a c));
  let back = roundtrip_blif net in
  Alcotest.(check bool) "equivalent" true
    (Network.Simulate.equivalent ~seed:1 net back);
  Alcotest.(check int) "pis" 3 (N.num_pis back);
  Alcotest.(check int) "pos" 2 (N.num_pos back)

let test_blif_roundtrip_suite () =
  List.iter
    (fun name ->
      let net = (Benchmarks.Suite.find name).Benchmarks.Suite.build () in
      let back = roundtrip_blif net in
      Alcotest.(check bool) (name ^ " roundtrip") true
        (Network.Simulate.equivalent ~seed:2 net back))
    [ "my_adder"; "count"; "b9"; "C1908" ]

let test_blif_offset_cover () =
  let text =
    ".model t\n.inputs a b\n.outputs y\n.names a b y\n11 0\n.end\n"
  in
  let net = Logic_io.Blif.read text in
  (* y = NAND(a,b) *)
  let expect = N.create () in
  let a = N.add_pi expect "a" and b = N.add_pi expect "b" in
  N.add_po expect "y" (Network.Signal.not_ (N.and_ expect a b));
  Alcotest.(check bool) "offset semantics" true
    (Network.Simulate.equivalent ~seed:3 net expect)

let test_blif_constants () =
  let text = ".model t\n.inputs a\n.outputs one zero\n.names one\n1\n.names zero\n.end\n" in
  let net = Logic_io.Blif.read text in
  let tts = Network.Simulate.truthtables net in
  Alcotest.(check bool) "constant one" true
    (Truthtable.is_const1 (List.assoc "one" tts));
  Alcotest.(check bool) "constant zero" true
    (Truthtable.is_const0 (List.assoc "zero" tts))

let test_blif_rejects_latches () =
  match
    Logic_io.Blif.read ".model t\n.inputs a\n.outputs q\n.latch a q\n.end"
  with
  | _ -> Alcotest.fail "latch accepted"
  | exception Logic_io.Io_error.Parse_error { line; msg } ->
      Alcotest.(check int) "latch line" 4 line;
      Alcotest.(check bool) "latch message" true
        (msg = "latches not supported")

let test_verilog_roundtrip_simple () =
  let net = N.create () in
  let a = N.add_pi net "a" and b = N.add_pi net "b" and s = N.add_pi net "s" in
  N.add_po net "y" (N.mux net s a (Network.Signal.not_ b));
  N.add_po net "w" (N.xor_ net a b);
  let back = roundtrip_verilog net in
  Alcotest.(check bool) "equivalent" true
    (Network.Simulate.equivalent ~seed:4 net back)

let test_verilog_roundtrip_suite () =
  List.iter
    (fun name ->
      let net = (Benchmarks.Suite.find name).Benchmarks.Suite.build () in
      let back = roundtrip_verilog net in
      Alcotest.(check bool) (name ^ " roundtrip") true
        (Network.Simulate.equivalent ~seed:5 net back))
    [ "my_adder"; "count"; "C1355" ]

let test_verilog_expressions () =
  let text =
    "module t(a, b, c, y);\n\
    \  input a; input b; input c;\n\
    \  output y;\n\
    \  wire w;\n\
    \  assign w = (a & ~b) | (1'b1 & c) ^ a;\n\
    \  assign y = w ? a : ~c;\n\
     endmodule\n"
  in
  let net = Logic_io.Verilog.read text in
  Alcotest.(check int) "one output" 1 (N.num_pos net);
  (* compare against directly-built reference *)
  let r = N.create () in
  let a = N.add_pi r "a" and b = N.add_pi r "b" and c = N.add_pi r "c" in
  let w =
    N.or_ r
      (N.and_ r a (Network.Signal.not_ b))
      (N.xor_ r c a)
  in
  N.add_po r "y" (N.mux r w a (Network.Signal.not_ c));
  Alcotest.(check bool) "expression semantics" true
    (Network.Simulate.equivalent ~seed:6 net r)

let test_verilog_out_of_order () =
  (* assigns referencing later assigns must elaborate lazily *)
  let text =
    "module t(a, b, y);\n\
    \  input a; input b;\n\
    \  output y;\n\
    \  wire u; wire v;\n\
    \  assign y = u ^ v;\n\
    \  assign u = a & b;\n\
    \  assign v = a | b;\n\
     endmodule\n"
  in
  let net = Logic_io.Verilog.read text in
  let r = N.create () in
  let a = N.add_pi r "a" and b = N.add_pi r "b" in
  N.add_po r "y" (N.xor_ r (N.and_ r a b) (N.or_ r a b));
  Alcotest.(check bool) "out-of-order assigns" true
    (Network.Simulate.equivalent ~seed:8 net r)

let test_verilog_cycle_detected () =
  let text =
    "module t(a, y);\n  input a;\n  output y;\n  wire u;\n\
    \  assign y = u;\n  assign u = y & a;\nendmodule\n"
  in
  Alcotest.(check bool) "cycle rejected" true
    (try
       ignore (Logic_io.Verilog.read text);
       false
     with Logic_io.Io_error.Parse_error { msg; _ } ->
       String.length msg > 0
       && (let has_sub s sub =
             let n = String.length s and m = String.length sub in
             let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
             go 0
           in
           has_sub msg "cycle"))

let test_verilog_rejects_garbage () =
  Alcotest.(check bool) "bad input raises" true
    (try
       ignore (Logic_io.Verilog.read "module t(a); input a; banana; endmodule");
       false
     with Logic_io.Io_error.Parse_error _ -> true)

(* ----- fuzzing: the only exception a reader may raise is
   [Io_error.Parse_error] (satellite of the robustness PR).  Raw bytes
   exercise the lexers; fragment soups splice plausible keywords and
   operators so the generator reaches deep into the grammar. *)

let structured read text =
  match read text with
  | (_ : N.t) -> true
  | exception Logic_io.Io_error.Parse_error _ -> true
  | exception _ -> false

let gen_bytes =
  QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (int_range 0 160))

let gen_soup frags =
  QCheck2.Gen.(
    map (String.concat "") (list_size (int_range 0 14) (oneofl frags)))

let blif_frags =
  [
    ".model t\n"; ".inputs a b\n"; ".inputs a\n"; ".outputs f\n";
    ".names a b f\n"; "11 1\n"; "1- 1\n"; "0 1\n"; "-- 0\n"; " 1\n";
    ".names f\n"; ".names a a a a\n"; ".latch a q\n"; ".end\n";
    "0 banana\n"; "\\\n"; "# noise\n"; ".names f a\n"; "1 1\n";
  ]

let verilog_frags =
  [
    "module t(a, y);\n"; "input a;\n"; "input a, a;\n"; "output y;\n";
    "wire w;\n"; "assign y = a;\n"; "assign y = ~(a & w) | 1'b1;\n";
    "assign w = y;\n"; "assign y = a ? w : 1'b0;\n"; "endmodule\n";
    "assign = ;\n"; "banana\n"; "((("; "1'b"; "~~~a\n"; "assign y = a b;\n";
  ]

let fuzz_blif_bytes =
  Helpers.qtest ~count:400 "fuzz: blif raw bytes" gen_bytes
    (structured Logic_io.Blif.read)

let fuzz_blif_soup =
  Helpers.qtest ~count:400 "fuzz: blif fragment soup" (gen_soup blif_frags)
    (structured Logic_io.Blif.read)

let fuzz_verilog_bytes =
  Helpers.qtest ~count:400 "fuzz: verilog raw bytes" gen_bytes
    (structured Logic_io.Verilog.read)

let fuzz_verilog_soup =
  Helpers.qtest ~count:400 "fuzz: verilog fragment soup"
    (gen_soup verilog_frags)
    (structured Logic_io.Verilog.read)

let test_cross_format () =
  (* blif -> network -> verilog -> network stays equivalent *)
  let net = (Benchmarks.Suite.find "count").Benchmarks.Suite.build () in
  let through = roundtrip_verilog (roundtrip_blif net) in
  Alcotest.(check bool) "cross-format" true
    (Network.Simulate.equivalent ~seed:7 net through)

let () =
  Alcotest.run "logic_io"
    [
      ( "blif",
        [
          Alcotest.test_case "roundtrip" `Quick test_blif_roundtrip_simple;
          Alcotest.test_case "suite roundtrips" `Quick test_blif_roundtrip_suite;
          Alcotest.test_case "offset covers" `Quick test_blif_offset_cover;
          Alcotest.test_case "constants" `Quick test_blif_constants;
          Alcotest.test_case "latches rejected" `Quick test_blif_rejects_latches;
        ] );
      ( "verilog",
        [
          Alcotest.test_case "roundtrip" `Quick test_verilog_roundtrip_simple;
          Alcotest.test_case "suite roundtrips" `Quick
            test_verilog_roundtrip_suite;
          Alcotest.test_case "expression parsing" `Quick test_verilog_expressions;
          Alcotest.test_case "out-of-order assigns" `Quick
            test_verilog_out_of_order;
          Alcotest.test_case "cycle detection" `Quick test_verilog_cycle_detected;
          Alcotest.test_case "errors rejected" `Quick test_verilog_rejects_garbage;
        ] );
      ( "cross",
        [ Alcotest.test_case "blif to verilog" `Quick test_cross_format ] );
      ( "fuzz",
        [
          fuzz_blif_bytes; fuzz_blif_soup; fuzz_verilog_bytes;
          fuzz_verilog_soup;
        ] );
    ]
