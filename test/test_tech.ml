module N = Network.Graph

(* quiet shared context for the flow calls in this file *)
let ctx = Lsutil.Ctx.create ()
module C = Tech.Cells

let test_cell_functions () =
  let module T = Truthtable in
  Alcotest.check Helpers.check_tt "INV" (T.not_ (T.var 1 0)) C.inv.C.tt;
  Alcotest.check Helpers.check_tt "NAND2"
    (T.nand_ (T.var 2 0) (T.var 2 1))
    C.nand2.C.tt;
  Alcotest.check Helpers.check_tt "XOR2"
    (T.xor_ (T.var 2 0) (T.var 2 1))
    C.xor2.C.tt;
  Alcotest.check Helpers.check_tt "MAJ3"
    (T.maj (T.var 3 0) (T.var 3 1) (T.var 3 2))
    C.maj3.C.tt;
  Alcotest.check Helpers.check_tt "MIN3"
    (T.not_ (T.maj (T.var 3 0) (T.var 3 1) (T.var 3 2)))
    C.min3.C.tt

let test_library_contents () =
  Alcotest.(check int) "seven cells" 7 (List.length C.full);
  Alcotest.(check int) "five without majority" 5 (List.length C.no_majority);
  Alcotest.(check bool) "find works" true (C.find C.full "MAJ3" == C.maj3);
  Alcotest.check_raises "find unknown"
    (Invalid_argument "Cells.find: FOO") (fun () -> ignore (C.find C.full "FOO"))

let test_netcut () =
  let net = N.create () in
  let a = N.add_pi net "a" and b = N.add_pi net "b" and c = N.add_pi net "c" in
  let ab = N.and_ net a b in
  let y = N.xor_ net ab c in
  N.add_po net "y" y;
  let cuts = Tech.Netcut.enumerate ~k:3 ~max_cuts:8 net in
  let root = Network.Signal.node y in
  let full =
    List.find_opt
      (fun cut ->
        Array.to_list cut
        = List.sort compare
            [ Network.Signal.node a; Network.Signal.node b; Network.Signal.node c ])
      cuts.(root)
  in
  match full with
  | None -> Alcotest.fail "missing full cut"
  | Some cut ->
      let module T = Truthtable in
      Alcotest.check Helpers.check_tt "(a&b)^c over leaves"
        (T.xor_ (T.and_ (T.var 3 0) (T.var 3 1)) (T.var 3 2))
        (Tech.Netcut.cut_function net root cut)

let map_verified ?lib name =
  let net =
    N.flatten_aoig ((Benchmarks.Suite.find name).Benchmarks.Suite.build ())
  in
  Tech.Mapper.map_and_verify ?lib ~seed:0x71 net

let test_mapper_verifies () =
  List.iter
    (fun name ->
      let r, ok = map_verified name in
      Alcotest.(check bool) (name ^ " cover correct") true ok;
      Alcotest.(check bool) (name ^ " positive metrics") true
        (r.Tech.Mapper.area > 0.0 && r.Tech.Mapper.delay > 0.0
       && r.Tech.Mapper.power > 0.0))
    [ "my_adder"; "count"; "b9"; "C1908" ]

let test_mapper_no_majority_lib () =
  let r_full, ok1 = map_verified "my_adder" in
  let r_nomaj, ok2 = map_verified ~lib:C.no_majority "my_adder" in
  Alcotest.(check bool) "both covers correct" true (ok1 && ok2);
  (* without MAJ cells no MAJ instances may appear *)
  Alcotest.(check bool) "no MAJ3/MIN3 instances" true
    (List.for_all
       (fun (n, _) -> n <> "MAJ3" && n <> "MIN3")
       r_nomaj.Tech.Mapper.cell_counts);
  Alcotest.(check bool) "full library present somewhere" true
    (List.exists
       (fun (n, _) -> n = "MAJ3" || n = "MIN3")
       r_full.Tech.Mapper.cell_counts)

let test_mapped_mig_flow_beats_aig_on_adder () =
  let net = (Benchmarks.Suite.find "my_adder").Benchmarks.Suite.build () in
  let mig = Flow.mig_synth ctx net in
  let aig = Flow.aig_synth ctx net in
  Alcotest.(check bool) "MIG flow faster" true (mig.Flow.delay < aig.Flow.delay)

let test_pi_prob_affects_power () =
  let net =
    N.flatten_aoig ((Benchmarks.Suite.find "count").Benchmarks.Suite.build ())
  in
  let base = Tech.Mapper.map_network net in
  let skew = Tech.Mapper.map_network ~pi_prob:(fun _ -> 0.02) net in
  Alcotest.(check bool) "skewed inputs lower power" true
    (skew.Tech.Mapper.power < base.Tech.Mapper.power);
  Alcotest.(check (float 1e-9)) "area unchanged" base.Tech.Mapper.area
    skew.Tech.Mapper.area

let () =
  Alcotest.run "tech"
    [
      ( "cells",
        [
          Alcotest.test_case "functions" `Quick test_cell_functions;
          Alcotest.test_case "libraries" `Quick test_library_contents;
        ] );
      ( "cuts", [ Alcotest.test_case "enumeration" `Quick test_netcut ] );
      ( "mapper",
        [
          Alcotest.test_case "covers verified" `Quick test_mapper_verifies;
          Alcotest.test_case "restricted library" `Quick
            test_mapper_no_majority_lib;
          Alcotest.test_case "MIG flow wins delay" `Slow
            test_mapped_mig_flow_beats_aig_on_adder;
          Alcotest.test_case "power model" `Quick test_pi_prob_affects_power;
        ] );
    ]
