(* Degenerate inputs: constants, wires, empty logic — the cases that
   crash tools in the field. *)

module N = Network.Graph

(* quiet shared context for the flow calls in this file *)
let ctx = Lsutil.Ctx.create ()
module S = Network.Signal

let test_constant_po () =
  let net = N.create () in
  let _a = N.add_pi net "a" in
  N.add_po net "zero" (N.const0 net);
  N.add_po net "one" (N.const1 net);
  (* every flow must survive *)
  let m, r = Flow.mig_opt ctx net in
  Alcotest.(check int) "mig empty" 0 r.Flow.size;
  Alcotest.(check bool) "mig equivalent" true
    (Mig.Equiv.to_network_equiv ~seed:1 m (N.flatten_aoig net));
  let _, ar = Flow.aig_opt ctx net in
  Alcotest.(check int) "aig empty" 0 ar.Flow.size;
  let mapped = Tech.Mapper.map_network net in
  (* a constant-1 output costs at most a tie-high inverter *)
  Alcotest.(check bool) "at most one INV for constants" true
    (mapped.Tech.Mapper.area <= Tech.Cells.inv.Tech.Cells.area +. 1e-9)

let test_wire_po () =
  let net = N.create () in
  let a = N.add_pi net "a" in
  N.add_po net "y" a;
  N.add_po net "yn" (S.not_ a);
  let m, _ = Flow.mig_opt ctx net in
  Alcotest.(check int) "wire mig" 0 (Mig.Graph.size m);
  let mapped, ok = Tech.Mapper.map_and_verify ~seed:2 net in
  Alcotest.(check bool) "wire cover ok" true ok;
  (* the complemented output needs exactly one inverter *)
  Alcotest.(check (list (pair string int))) "one INV" [ ("INV", 1) ]
    mapped.Tech.Mapper.cell_counts

let test_blif_roundtrip_constants () =
  let net = N.create () in
  let a = N.add_pi net "a" in
  N.add_po net "k1" (N.const1 net);
  N.add_po net "w" a;
  let text = Format.asprintf "%a" (fun f n -> Logic_io.Blif.write f n) net in
  let back = Logic_io.Blif.read text in
  Alcotest.(check bool) "constant/wire blif" true
    (Network.Simulate.equivalent ~seed:3 net back)

let test_verilog_roundtrip_constants () =
  let net = N.create () in
  let a = N.add_pi net "a" in
  N.add_po net "k0" (N.const0 net);
  N.add_po net "w" (S.not_ a);
  let text = Format.asprintf "%a" (fun f n -> Logic_io.Verilog.write f n) net in
  let back = Logic_io.Verilog.read text in
  Alcotest.(check bool) "constant/wire verilog" true
    (Network.Simulate.equivalent ~seed:4 net back)

let test_duplicate_po_signal () =
  let net = N.create () in
  let a = N.add_pi net "a" and b = N.add_pi net "b" in
  let x = N.and_ net a b in
  N.add_po net "y1" x;
  N.add_po net "y2" x;
  N.add_po net "y3" (S.not_ x);
  let m, _ = Flow.mig_opt ctx net in
  Alcotest.(check int) "single shared node" 1 (Mig.Graph.size m);
  Alcotest.(check bool) "fanout to POs preserved" true
    (Mig.Equiv.to_network_equiv ~seed:5 m (N.flatten_aoig net))

let test_empty_network () =
  let net = N.create () in
  let _ = N.add_pi net "a" in
  (* no POs at all *)
  let m = Mig.Convert.of_network net in
  Alcotest.(check int) "no nodes" 0 (Mig.Graph.size m);
  Alcotest.(check int) "pis kept" 1 (Mig.Graph.num_pis m);
  let o = Mig.Opt_depth.run m in
  Alcotest.(check int) "opt of nothing" 0 (Mig.Graph.depth o)

let test_deep_chain_no_stack_overflow () =
  (* recursion in the rebuild passes must survive deep graphs *)
  let g = Mig.Graph.create () in
  let a = Mig.Graph.add_pi g "a" and b = Mig.Graph.add_pi g "b" in
  let acc = ref a in
  for _i = 1 to 30_000 do
    acc := Mig.Graph.maj g !acc b (Mig.Graph.const1 g)
  done;
  Mig.Graph.add_po g "y" !acc;
  (* or-chain folds: M(x,b,1) = x|b; strash keeps it linear *)
  let o = Mig.Transform.eliminate g in
  Alcotest.(check bool) "survives deep recursion" true (Mig.Graph.size o >= 0)

let () =
  Alcotest.run "edge_cases"
    [
      ( "degenerate circuits",
        [
          Alcotest.test_case "constant outputs" `Quick test_constant_po;
          Alcotest.test_case "wire outputs" `Quick test_wire_po;
          Alcotest.test_case "blif constants" `Quick test_blif_roundtrip_constants;
          Alcotest.test_case "verilog constants" `Quick
            test_verilog_roundtrip_constants;
          Alcotest.test_case "duplicated PO drivers" `Quick
            test_duplicate_po_signal;
          Alcotest.test_case "no outputs" `Quick test_empty_network;
          Alcotest.test_case "deep chains" `Slow
            test_deep_chain_no_stack_overflow;
        ] );
    ]
