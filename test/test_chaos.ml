(* Chaos harness: a seeded fault-injection sweep across the engine,
   the BDD layer and the tech mapper.  Every scenario is fully
   deterministic (the spec string embeds the seed), so any failure
   reported here reproduces with MIG_FAULT set to the printed spec.

   Invariants checked on every engine scenario:
   - no exception escapes [Flow.Engine.run];
   - the output lints clean;
   - the output is simulation-equivalent to the input;
   - the output is no larger than the input.

   When MIG_CHAOS_LOG is set, a JSON record of every scenario outcome
   is written there (the CI chaos job uploads it as an artifact). *)

module M = Mig.Graph
module E = Flow.Engine
module F = Lsutil.Fault
module J = Lsutil.Json

(* MIG_SAN=1 (the CI chaos job sets it) runs every scenario under the
   ownership sanitizer: a violation raises San.Violation, which the
   no-uncaught-exception invariant then reports as a failure *)
let san = (Lsutil.Env.load ()).Lsutil.Env.san

let mig_of ~ctx name =
  let net = (Benchmarks.Suite.find name).Benchmarks.Suite.build () in
  Mig.Convert.of_network ~ctx (Network.Graph.flatten_aoig net)

let scenarios = ref 0
let log_entries : J.t list ref = ref []

let log_entry ~group ~name ~spec fields =
  log_entries :=
    J.Obj
      ([
         ("group", J.String group);
         ("name", J.String name);
         ("spec", J.String spec);
       ]
      @ fields)
    :: !log_entries

let armed ctx spec f =
  let flt = Lsutil.Ctx.fault ctx in
  (match F.arm_string flt spec with
  | Ok () -> ()
  | Error e -> Alcotest.failf "bad fault spec %S: %s" spec e);
  Fun.protect ~finally:(fun () -> F.disarm flt) f

(* ----- engine sweep ----- *)

let engine_scenario ~bench ~goal ~spec =
  incr scenarios;
  let ctx = Lsutil.Ctx.create ~san () in
  let m = mig_of ~ctx bench in
  let out, rep =
    armed ctx spec (fun () ->
        try
          E.run ~verify:true ~seed:0xc0de ~size_cap:(M.size m)
            ~cost:(E.cost_of_goal goal)
            ~passes:(E.of_goal ~effort:1 goal)
            m
        with e ->
          Alcotest.failf "%s %s: uncaught %s" bench spec
            (Printexc.to_string e))
  in
  if not (Check_report.is_clean (Mig.Check.lint ~subject:"chaos" out)) then
    Alcotest.failf "%s %s: output fails lint" bench spec;
  if not (Mig.Equiv.migs ~seed:0x5ca1e m out) then
    Alcotest.failf "%s %s: output not equivalent" bench spec;
  if M.size out > M.size m then
    Alcotest.failf "%s %s: output larger than input (%d > %d)" bench spec
      (M.size out) (M.size m);
  log_entry ~group:"engine" ~name:bench ~spec
    [
      ("degraded", J.Bool rep.E.degraded);
      ("rollbacks", J.Int rep.E.rollbacks);
      ("size_in", J.Int (M.size m));
      ("size_out", J.Int (M.size out));
    ]

let test_engine_sweep () =
  let configs =
    [
      ("count", `Size); ("count", `Depth); ("b9", `Size);
      ("my_adder", `Depth); ("cla", `Size);
    ]
  in
  let kinds = [ "raise"; "exhaust"; "corrupt"; "any" ] in
  List.iter
    (fun (bench, goal) ->
      List.iter
        (fun kind ->
          for seed = 1 to 8 do
            let spec =
              Printf.sprintf
                "seed=%d:rate=0.05:kind=%s:sites=transform,strash:max=3:after=%d"
                seed kind
                (seed * 7 mod 50)
            in
            engine_scenario ~bench ~goal ~spec
          done)
        kinds)
    configs

(* ----- BDD sweep: bds_opt must degrade to None, never raise ----- *)

let bdd_scenario ~bench ~spec =
  incr scenarios;
  let ctx = Lsutil.Ctx.create ~san () in
  let net = (Benchmarks.Suite.find bench).Benchmarks.Suite.build () in
  let res =
    armed ctx spec (fun () ->
        try Flow.bds_opt ~node_limit:2000 ~seed:11 ctx net
        with e ->
          Alcotest.failf "%s %s: bds_opt raised %s" bench spec
            (Printexc.to_string e))
  in
  (match res with
  | None -> ()
  | Some (d, _) ->
      if not (Network.Simulate.equivalent ~seed:0xbdd net d) then
        Alcotest.failf "%s %s: corrupt BDD result escaped" bench spec);
  log_entry ~group:"bdd" ~name:bench ~spec
    [ ("produced", J.Bool (res <> None)) ]

let test_bdd_sweep () =
  List.iter
    (fun bench ->
      for seed = 1 to 15 do
        let spec =
          Printf.sprintf "seed=%d:rate=0.1:kind=any:sites=bdd:max=2:after=%d"
            seed
            (seed * 13 mod 100)
        in
        bdd_scenario ~bench ~spec
      done)
    [ "count"; "b9"; "my_adder" ]

(* ----- mapper sweep: faults contained by Engine.protect ----- *)

let mapper_scenario ~spec =
  incr scenarios;
  let net =
    Network.Graph.flatten_aoig
      ((Benchmarks.Suite.find "count").Benchmarks.Suite.build ())
  in
  let ctx = Lsutil.Ctx.create ~san () in
  let res =
    armed ctx spec (fun () ->
        E.protect
          ~tel:(Lsutil.Ctx.stats ctx)
          ~name:"mapper"
          (fun () -> Tech.Mapper.map_network ~ctx net))
  in
  let outcome =
    match res with
    | Ok (_ : Tech.Mapper.result) -> "completed"
    | Error o -> E.outcome_name o
  in
  log_entry ~group:"mapper" ~name:"count" ~spec
    [ ("outcome", J.String outcome) ]

let test_mapper_sweep () =
  List.iter
    (fun kind ->
      for seed = 1 to 10 do
        let spec =
          Printf.sprintf "seed=%d:rate=0.2:kind=%s:sites=mapper:max=1" seed
            kind
        in
        mapper_scenario ~spec
      done)
    [ "raise"; "exhaust" ]

(* ----- coverage gate + artifact ----- *)

let test_coverage () =
  Alcotest.(check bool)
    (Printf.sprintf "at least 200 scenarios (ran %d)" !scenarios)
    true (!scenarios >= 200);
  match Sys.getenv_opt "MIG_CHAOS_LOG" with
  | None | Some "" -> ()
  | Some path ->
      let doc =
        J.Obj
          [
            ("schema", J.String "mighty-chaos/1");
            ("scenarios", J.Int !scenarios);
            ("outcomes", J.List (List.rev !log_entries));
          ]
      in
      let oc = open_out path in
      output_string oc (J.to_string doc);
      output_char oc '\n';
      close_out oc

let () =
  Alcotest.run "chaos"
    [
      ( "sweep",
        [
          Alcotest.test_case "engine fault sweep" `Slow test_engine_sweep;
          Alcotest.test_case "bdd fault sweep" `Slow test_bdd_sweep;
          Alcotest.test_case "mapper fault sweep" `Slow test_mapper_sweep;
          Alcotest.test_case "coverage and artifact" `Slow test_coverage;
        ] );
    ]
