(** AST-accurate source lint (rules SRC001..SRC006).

    Parses an implementation file with compiler-libs and walks the
    Parsetree, so spacing, annotations and line breaks cannot hide an
    offender and comments cannot fake one.  Each rule has a stable
    code and a path scope (most bind only under [lib/]); a file opts
    out with a floating [@@@san.allow "SRC00x"] attribute. *)

type finding = {
  code : string;  (** stable rule code, ["SRC001"].."SRC006" *)
  file : string;  (** path as given to {!lint_file} *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as in compiler messages *)
  message : string;
}

type rule = { code : string; title : string; descr : string }

val catalog : rule list
(** Every rule, in code order. *)

val applies : string -> string -> bool
(** [applies code path] — whether a rule binds at a path.  The path
    is normalized first ([./] prefixes stripped, absolute paths
    anchored at their [lib/]/[bin/]/[bench/]/[test/]/[tools/]
    component).  Exposed for the test-suite's scope checks. *)

val lint_file : ?scope_path:string -> string -> (finding list, string) result
(** Parse and analyze one [.ml] file.  [scope_path] overrides the
    path used for rule scoping (defaults to the file's own path) so
    fixtures outside [lib/] can exercise lib-scoped rules.  [Error]
    carries an unreadable-file or parse-error description. *)

val pp_finding : Format.formatter -> finding -> unit
(** [file:line:col: CODE: message] — compiler-style, click-through. *)

val to_json : finding list -> Lsutil.Json.t
(** The [mighty-check/1] findings document. *)
