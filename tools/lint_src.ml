(* CLI driver for Lint_rules: lint_src [--json] [--list-rules] PATH...

   A PATH that is a directory is walked recursively for [.ml] files,
   skipping [_build], [.git] and [lint_fixtures] (the fixtures are
   deliberate offenders for the test-suite; they are only linted when
   named explicitly).  Exit 0 when clean, 1 on findings, 2 on usage
   or parse errors. *)

let usage = "usage: lint_src [--json] [--list-rules] PATH..."

let list_rules () =
  List.iter
    (fun r ->
      Printf.printf "%s  %-32s %s\n" r.Lint_rules.code r.Lint_rules.title
        r.Lint_rules.descr)
    Lint_rules.catalog

let skip_dir name =
  name = "_build" || name = ".git" || name = "lint_fixtures"

let rec walk path acc =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry ->
        if skip_dir entry then acc else walk (Filename.concat path entry) acc)
      acc
      (let entries = Sys.readdir path in
       Array.sort compare entries;
       entries)
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let () =
  let json = ref false and list_ = ref false and paths = ref [] in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--json" -> json := true
        | "--list-rules" -> list_ := true
        | "--help" | "-h" ->
            print_endline usage;
            exit 0
        | _ when String.length arg > 0 && arg.[0] = '-' ->
            prerr_endline ("lint_src: unknown option " ^ arg);
            prerr_endline usage;
            exit 2
        | p -> paths := p :: !paths)
    Sys.argv;
  if !list_ then begin
    list_rules ();
    exit 0
  end;
  if !paths = [] then begin
    prerr_endline usage;
    exit 2
  end;
  let files = List.concat_map (fun p -> List.rev (walk p [])) (List.rev !paths) in
  let errors = ref 0 in
  let findings =
    List.concat_map
      (fun f ->
        match Lint_rules.lint_file f with
        | Ok fs -> fs
        | Error msg ->
            incr errors;
            prerr_endline ("lint_src: " ^ msg);
            [])
      files
  in
  if !json then
    print_endline (Lsutil.Json.to_string (Lint_rules.to_json findings))
  else begin
    List.iter
      (fun f -> Format.printf "%a@." Lint_rules.pp_finding f)
      findings;
    if findings <> [] then
      Format.printf "lint_src: %d finding(s) in %d file(s)@."
        (List.length findings) (List.length files)
  end;
  if !errors > 0 then exit 2;
  if findings <> [] then exit 1
