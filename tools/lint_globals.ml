(* Source-level gate against reintroducing process-global service
   state.  The execution-context refactor deleted every top-level
   [ref]/[Hashtbl.create] singleton from the util services; this lint
   fails the @check alias if one creeps back into telemetry, budget or
   fault.  (Per-call handles created inside functions are fine — only
   column-0 bindings are module state.) *)

let offenders = ref 0

(* a top-level binding whose right-hand side starts with [ref] or
   [Hashtbl.create]: `let name = ref ...`, `let name : t = ref ...` *)
let bad_binding =
  Str.regexp
    {|^let +[a-z_][a-zA-Z0-9_']*\( *:[^=]*\)? *= *\(ref \|ref$\|Hashtbl\.create\)|}

let scan path =
  let ic = open_in path in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       if Str.string_match bad_binding line 0 then begin
         incr offenders;
         Printf.eprintf
           "%s:%d: top-level mutable singleton: %s\n  (services must live in \
            Lsutil.Ctx, not module state)\n"
           path !lineno (String.trim line)
       end
     done
   with End_of_file -> ());
  close_in ic

let () =
  let files =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as files) -> files
    | _ ->
        prerr_endline "usage: lint_globals FILE.ml ...";
        exit 2
  in
  List.iter scan files;
  if !offenders > 0 then begin
    Printf.eprintf "lint_globals: %d offender(s)\n" !offenders;
    exit 1
  end
