(* AST-accurate source lint over compiler-libs Parsetree.

   Replaces the regex linter (tools/lint_globals.ml): matching on the
   parsed AST instead of line shapes means `let x=ref 0` (no spaces),
   `let x : int ref = ref 0` (annotated) and multi-line bindings are
   all caught, while commented-out code and string literals never
   false-positive.

   Rules carry stable codes (SRC001..SRC006) so CI can diff findings
   across runs; a file opts out of a rule with a floating attribute
   [@@@san.allow "SRC00x"].  Each rule has a path scope — most only
   bind inside lib/ (executables and benches keep their freedom), and
   the module that legitimately owns a capability is exempted by
   path (Lsutil.Env for getenv, Flow.Batch for Domain.spawn, ...).

   Only the Parsetree constructors stable across 5.1/5.2 are matched
   (Pexp_ident, Pexp_apply, Pexp_try, Pstr_value, Pstr_attribute);
   the function-expression constructors that merged in 5.2 are
   deliberately avoided. *)

type finding = {
  code : string;
  file : string;
  line : int;
  col : int;
  message : string;
}

type rule = { code : string; title : string; descr : string }

let catalog =
  [
    {
      code = "SRC001";
      title = "top-level mutable singleton";
      descr =
        "structure-level binding to ref/Hashtbl.create/Atomic.make: \
         process-global service state must live in Lsutil.Ctx (DESIGN.md \
         \xc2\xa713); applies under lib/";
    };
    {
      code = "SRC002";
      title = "Domain.spawn outside Flow.Batch/Flow.Par";
      descr =
        "domains are spawned only by the parallel drivers so ownership \
         handoff stays auditable; exempt: lib/flow/batch.ml, \
         lib/flow/par.ml, and test/test_par.ml (concurrent strash-segment \
         hammering needs raw domains)";
    };
    {
      code = "SRC003";
      title = "raw wall-clock read";
      descr =
        "Unix.gettimeofday/Unix.time/Sys.time outside Budget/Telemetry: \
         library timing goes through Lsutil.Telemetry.time so spans nest \
         and deadlines stay centralized; applies under lib/";
    };
    {
      code = "SRC004";
      title = "Obj.magic";
      descr =
        "unsound coercion; the Vec representation history (lib/util/vec.ml) \
         is why this is banned repo-wide";
    };
    {
      code = "SRC005";
      title = "catch-all exception handler";
      descr =
        "`with _ ->` in lib/ swallows Budget.Exhausted, San.Violation and \
         asserts alike; match specific exceptions or use Fun.protect";
    };
    {
      code = "SRC006";
      title = "Sys.getenv outside Lsutil.Env";
      descr =
        "environment is read once at startup into Lsutil.Env.t and carried \
         in the ctx; applies under lib/, exempt: lib/util/env.ml";
    };
    {
      code = "SRC007";
      title = "raw socket call outside lib/serve";
      descr =
        "Unix.socket/bind/listen/accept/connect/... belong to the serve \
         layer, whose framing, admission control and fault isolation are \
         the audited network surface (DESIGN.md \xc2\xa717); applies \
         repo-wide, exempt: lib/serve/ and test/test_serve.ml (protocol \
         fuzzing needs raw sockets)";
    };
  ]

(* ----- path scoping ----- *)

let norm path =
  let path =
    if String.length path > 2 && String.sub path 0 2 = "./" then
      String.sub path 2 (String.length path - 2)
    else path
  in
  (* make absolute invocations scope like relative ones *)
  match String.index_opt path '/' with
  | Some _ when Filename.is_relative path -> path
  | _ -> (
      let rec find_anchor p acc =
        let base = Filename.basename p and dir = Filename.dirname p in
        if dir = p then acc
        else
          let acc = if acc = "" then base else base ^ "/" ^ acc in
          match base with
          | "lib" | "bin" | "bench" | "test" | "tools" -> acc
          | _ -> find_anchor dir acc
      in
      match find_anchor path "" with "" -> path | p -> p)

let in_lib p =
  String.length p >= 4 && String.sub p 0 4 = "lib/"

let applies code p =
  let p = norm p in
  match code with
  | "SRC001" | "SRC005" -> in_lib p
  | "SRC002" ->
      p <> "lib/flow/batch.ml" && p <> "lib/flow/par.ml"
      && p <> "lib/serve/server.ml" && p <> "lib/serve/load.ml"
      && p <> "test/test_par.ml" && p <> "test/test_serve.ml"
  | "SRC003" ->
      in_lib p && p <> "lib/util/budget.ml" && p <> "lib/util/telemetry.ml"
  | "SRC004" -> true
  | "SRC006" -> in_lib p && p <> "lib/util/env.ml"
  | "SRC007" ->
      (String.length p < 10 || String.sub p 0 10 <> "lib/serve/")
      && p <> "test/test_serve.ml"
  | _ -> false

(* ----- the analysis ----- *)

open Parsetree

let lid_name lid = String.concat "." (Longident.flatten lid)

(* fully-qualified idents that are findings wherever their rule binds *)
let banned_idents =
  [
    ("Obj.magic", "SRC004", "Obj.magic: unsound coercion");
    ( "Domain.spawn",
      "SRC002",
      "Domain.spawn outside Flow.Batch/Flow.Par: spawn workers via the \
       parallel drivers so sanitizer ownership handoff stays auditable" );
    ( "Unix.gettimeofday",
      "SRC003",
      "raw wall-clock read: use Lsutil.Telemetry.time (or Budget deadlines)" );
    ( "Unix.time",
      "SRC003",
      "raw wall-clock read: use Lsutil.Telemetry.time (or Budget deadlines)" );
    ( "Sys.time",
      "SRC003",
      "raw cpu-clock read: use Lsutil.Telemetry.time (or Budget deadlines)" );
    ( "Sys.getenv",
      "SRC006",
      "environment read outside Lsutil.Env: add the variable to Env.base" );
    ( "Sys.getenv_opt",
      "SRC006",
      "environment read outside Lsutil.Env: add the variable to Env.base" );
  ]
  @ List.map
      (fun fn ->
        ( "Unix." ^ fn,
          "SRC007",
          "raw socket call outside lib/serve: the serve layer owns the \
           network surface (framing, admission control, fault isolation)" ))
      [
        "socket"; "socketpair"; "bind"; "listen"; "accept"; "connect";
        "shutdown";
      ]

(* constructors of module-level mutable state for SRC001 *)
let singleton_makers = [ "ref"; "Hashtbl.create"; "Atomic.make" ]

let rec peel_constraint e =
  match e.pexp_desc with
  | Pexp_constraint (e', _) -> peel_constraint e'
  | _ -> e

let mk ~file ~allowed loc code message acc =
  if Hashtbl.mem allowed code then acc
  else
    let p = loc.Location.loc_start in
    {
      code;
      file;
      line = p.Lexing.pos_lnum;
      col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
      message;
    }
    :: acc

(* payload of [@@@san.allow "SRC001"] / [@@@san.allow ("SRC001", "SRC002")] *)
let allow_codes attr =
  if attr.attr_name.Location.txt <> "san.allow" then []
  else
    let rec of_expr e =
      match e.pexp_desc with
      | Pexp_constant (Pconst_string (s, _, _)) -> [ s ]
      | Pexp_tuple es -> List.concat_map of_expr es
      | _ -> []
    in
    match attr.attr_payload with
    | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] -> of_expr e
    | _ -> []

let analyze ~scope ~file str =
  let scope = norm scope in
  let allowed = Hashtbl.create 4 in
  (* suppression attributes apply file-wide, wherever they appear *)
  let rec collect_allows items =
    List.iter
      (fun it ->
        match it.pstr_desc with
        | Pstr_attribute a ->
            List.iter (fun c -> Hashtbl.replace allowed c ()) (allow_codes a)
        | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure s; _ }; _ } ->
            collect_allows s
        | _ -> ())
      items
  in
  collect_allows str;
  let findings = ref [] in
  let emit loc code message =
    if applies code scope then
      findings := mk ~file ~allowed loc code message !findings
  in
  let super = Ast_iterator.default_iterator in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> (
        let name = lid_name txt in
        match
          List.find_opt (fun (n, _, _) -> n = name) banned_idents
        with
        | Some (_, code, msg) -> emit loc code msg
        | None -> ())
    | Pexp_try (_, cases) ->
        List.iter
          (fun c ->
            match (c.pc_lhs.ppat_desc, c.pc_guard) with
            | Ppat_any, None ->
                emit c.pc_lhs.ppat_loc "SRC005"
                  "catch-all `with _ ->`: swallows Budget.Exhausted and \
                   San.Violation; match specific exceptions"
            | _ -> ())
          cases
    | _ -> ());
    super.expr it e
  in
  let structure_item it item =
    (match item.pstr_desc with
    | Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            match (peel_constraint vb.pvb_expr).pexp_desc with
            | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _)
              when List.mem (lid_name txt) singleton_makers ->
                emit vb.pvb_loc "SRC001"
                  (Printf.sprintf
                     "top-level mutable singleton (%s): services must live \
                      in Lsutil.Ctx, not module state"
                     (lid_name txt))
            | _ -> ())
          vbs
    | _ -> ());
    super.structure_item it item
  in
  let it = { super with expr; structure_item } in
  it.structure it str;
  List.rev !findings

let lint_file ?scope_path path =
  let scope = match scope_path with Some p -> p | None -> path in
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let lexbuf = Lexing.from_channel ic in
        Location.init lexbuf path;
        Parse.implementation lexbuf)
  with
  | str -> Ok (analyze ~scope ~file:path str)
  | exception Sys_error msg -> Error msg
  | exception exn ->
      Error
        (Printf.sprintf "%s: parse error (%s)" path
           (match Location.error_of_exn exn with
           | Some (`Ok e) ->
               Format.asprintf "%a" Location.print_report e
           | _ -> Printexc.to_string exn))

(* ----- reporting ----- *)

let pp_finding fmt (f : finding) =
  Format.fprintf fmt "%s:%d:%d: %s: %s" f.file f.line f.col f.code f.message

module J = Lsutil.Json

let finding_to_json (f : finding) =
  J.Obj
    [
      ("code", J.String f.code);
      ("file", J.String f.file);
      ("line", J.Int f.line);
      ("col", J.Int f.col);
      ("message", J.String f.message);
    ]

let to_json findings =
  J.Obj
    [
      ("schema", J.String "mighty-check/1");
      ("tool", J.String "lint_src");
      ("count", J.Int (List.length findings));
      ("findings", J.List (List.map finding_to_json findings));
    ]
