(* CI regression gate for the core-engine hot path.

   Usage: hotpath_gate BASELINE.json FRESH.json

   Compares the maj-construction throughput of a fresh
   [bench/main.exe --json FRESH.json hotpath] run against the
   committed baseline (BENCH_ci.json), and exits non-zero when the
   fresh run is more than 25% below it.

   The comparison uses [calls_per_op] — maj calls per calibration-loop
   operation — not raw calls/s: the hotpath section first measures a
   fixed int-array loop as a machine-speed proxy, so the normalized
   figure survives CI runners of different speeds.  The 25% tolerance
   absorbs the remaining noise (cache topology, memory bandwidth and
   co-tenancy still shift the normalized figure run-to-run); a real
   regression from reintroducing allocation or a slower probe loop
   costs well over 25%. *)

module J = Lsutil.Json

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("hotpath_gate: " ^ s);
      exit 1)
    fmt

let read_file path =
  let ic = try open_in_bin path with Sys_error e -> fail "%s" e in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let number = function
  | J.Int i -> float_of_int i
  | J.Float f -> f
  | _ -> nan

(* the hotpath record [name]'s [field], or [None] when the record is
   absent (pre-sanitizer baselines lack the "san" record) *)
let metric_opt path name field =
  match J.of_string (read_file path) with
  | Error e -> fail "%s: parse error: %s" path e
  | Ok doc -> (
      let records =
        match J.member "records" doc with
        | Some (J.List l) -> l
        | _ -> fail "%s: \"records\" is not a list" path
      in
      let is_wanted r =
        J.member "section" r = Some (J.String "hotpath")
        && J.member "name" r = Some (J.String name)
      in
      match List.find_opt is_wanted records with
      | None -> None
      | Some r -> (
          match J.member field r with
          | Some v ->
              let f = number v in
              if Float.is_nan f || f <= 0.0 then
                fail "%s: hotpath/%s %s is not a positive number" path name
                  field;
              Some f
          | None -> fail "%s: hotpath/%s record lacks %s" path name field))

let metric path name field =
  match metric_opt path name field with
  | Some f -> f
  | None -> fail "%s: no hotpath/%s record" path name

let tolerance = 0.25

let gate ~what ~base ~fresh =
  let ratio = fresh /. base in
  Printf.printf "hotpath_gate: %s %.4e calls/op vs baseline %.4e (%.0f%%)\n"
    what fresh base (100.0 *. ratio);
  if ratio < 1.0 -. tolerance then begin
    Printf.eprintf
      "hotpath_gate: FAIL - %s normalized throughput dropped more than \
       %.0f%%\n"
      what (100.0 *. tolerance);
    exit 1
  end

let () =
  let baseline_path, fresh_path =
    match Sys.argv with
    | [| _; b; f |] -> (b, f)
    | _ -> fail "usage: hotpath_gate BASELINE.json FRESH.json"
  in
  let base = metric baseline_path "maj_construction" "calls_per_op" in
  let fresh = metric fresh_path "maj_construction" "calls_per_op" in
  gate ~what:"maj construction" ~base ~fresh;
  (* sanitizer-off construction must stay as cheap as plain
     construction: gate it against the baseline's san record when one
     exists, else against the maj_construction baseline itself *)
  let san_base =
    match metric_opt baseline_path "san" "off_calls_per_op" with
    | Some f -> f
    | None -> base
  in
  let san_fresh = metric fresh_path "san" "off_calls_per_op" in
  gate ~what:"san-off construction" ~base:san_base ~fresh:san_fresh;
  print_endline "hotpath_gate: OK"
