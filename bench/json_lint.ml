(* Validator for the BENCH_*.json documents written by
   [bench/main.exe --json PATH] (schema "mighty-bench/1").  Exits
   non-zero with a diagnostic on the first violation, so CI can gate
   on the artifact staying machine-readable. *)

module J = Lsutil.Json

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("json_lint: " ^ s);
      exit 1)
    fmt

let read_file path =
  let ic = try open_in_bin path with Sys_error e -> fail "%s" e in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* field accessors over a record, with record index for diagnostics *)
let get i r key =
  match J.member key r with
  | Some v -> v
  | None -> fail "record %d: missing field %S" i key

let str i r key =
  match get i r key with
  | J.String s -> s
  | _ -> fail "record %d: field %S is not a string" i key

let num i r key ctx =
  match J.member key r with
  | Some (J.Int _ | J.Float _) -> ()
  | _ -> fail "record %d (%s): %s is not a number" i ctx key

let metrics_obj i r key ~ints ~floats =
  let o = get i r key in
  (match o with
  | J.Obj _ -> ()
  | _ -> fail "record %d: field %S is not an object" i key);
  List.iter
    (fun f ->
      match J.member f o with
      | Some (J.Int _) -> ()
      | _ -> fail "record %d: %s.%s is not an int" i key f)
    ints;
  List.iter (fun f -> num i o f key) floats

let opt_result i r key =
  metrics_obj i r key ~ints:[ "size"; "depth" ]
    ~floats:[ "activity"; "time_s"; "guard_time_s" ]

let syn_result i r key =
  metrics_obj i r key ~ints:[]
    ~floats:[ "area"; "delay_ns"; "power_uw"; "time_s" ]

(* A span tree is either Null (recording was off) or a telemetry
   node: name/elapsed_s plus recursively well-formed children. *)
let rec span_tree i ctx = function
  | J.Null -> ()
  | J.Obj _ as o ->
      (match J.member "name" o with
      | Some (J.String _) -> ()
      | _ -> fail "record %d (%s): span without a name" i ctx);
      (match J.member "elapsed_s" o with
      | Some (J.Int _ | J.Float _) -> ()
      | _ -> fail "record %d (%s): span without elapsed_s" i ctx);
      (match J.member "children" o with
      | Some (J.List l) -> List.iter (span_tree i ctx) l
      | None -> ()
      | Some _ -> fail "record %d (%s): span children not a list" i ctx)
  | _ -> fail "record %d (%s): span is neither null nor an object" i ctx

let spans i r =
  match J.member "spans" r with
  | None -> fail "record %d: missing field \"spans\"" i
  | Some (J.Obj fields) -> List.iter (fun (k, v) -> span_tree i k v) fields
  | Some _ -> fail "record %d: field \"spans\" is not an object" i

let int_field i r key =
  match J.member key r with
  | Some (J.Int _) -> ()
  | _ -> fail "record %d: %s is not an int" i key

(* hotpath records are flat name-dispatched metric objects *)
let check_hotpath i r name =
  match name with
  | "calibration" -> num i r "ops_per_sec" "hotpath"
  | "maj_construction" ->
      int_field i r "calls";
      int_field i r "majs";
      List.iter
        (fun f -> num i r f "hotpath")
        [ "time_s"; "calls_per_sec"; "calls_per_op" ]
  | "strash_probe" ->
      int_field i r "probes";
      List.iter
        (fun f -> num i r f "hotpath")
        [ "time_s"; "probes_per_sec"; "probes_per_op" ]
  | "san" ->
      int_field i r "calls";
      List.iter
        (fun f -> num i r f "hotpath")
        [
          "off_calls_per_sec"; "off_calls_per_op"; "on_calls_per_sec";
          "on_calls_per_op"; "on_over_off"; "rebuild_off_s"; "rebuild_on_s";
        ]
  | "summary" ->
      List.iter
        (fun f -> num i r f "hotpath")
        [ "opt_size_total_s"; "opt_depth_total_s" ]
  | _ when String.length name > 8 && String.sub name 0 8 = "rebuild:" ->
      List.iter (fun f -> num i r f "hotpath") [ "cleanup_s"; "eliminate_s" ]
  | _ when String.length name > 4 && String.sub name 0 4 = "opt:" ->
      metrics_obj i r "opt_size" ~ints:[ "size"; "depth" ] ~floats:[ "time_s" ];
      metrics_obj i r "opt_depth" ~ints:[ "size"; "depth" ] ~floats:[ "time_s" ]
  | _ -> fail "record %d: unknown hotpath record %S" i name

let bool_field i r key =
  match J.member key r with
  | Some (J.Bool _) -> ()
  | _ -> fail "record %d: %s is not a bool" i key

let engine_outcomes = [ "completed"; "timed_out"; "failed"; "skipped" ]

(* engine records embed a full Flow.Engine report: a passes array of
   {pass; outcome; time_s; size; depth; rolled_back} plus the rollup *)
let check_report i rep =
  int_field i rep "rollbacks";
  bool_field i rep "degraded";
  bool_field i rep "verified";
  match J.member "passes" rep with
  | Some (J.List ps) ->
      List.iter
        (fun p ->
          (match J.member "pass" p with
          | Some (J.String _) -> ()
          | _ -> fail "record %d: engine pass without a name" i);
          (match J.member "outcome" p with
          | Some (J.String o) when List.mem o engine_outcomes -> ()
          | _ -> fail "record %d: engine pass with a bad outcome" i);
          num i p "time_s" "engine.passes";
          int_field i p "size";
          int_field i p "depth";
          bool_field i p "rolled_back")
        ps
  | _ -> fail "record %d: report.passes is not a list" i

let check_engine i r =
  (match get i r "mode" with
  | J.String ("clean" | "budgeted" | "faulted") -> ()
  | _ -> fail "record %d: engine mode is not clean/budgeted/faulted" i);
  (match get i r "timeout_s" with
  | J.Null | J.Int _ | J.Float _ -> ()
  | _ -> fail "record %d: timeout_s is not a number or null" i);
  int_field i r "rollbacks";
  bool_field i r "degraded";
  bool_field i r "equivalent";
  num i r "time_s" "engine";
  metrics_obj i r "result" ~ints:[ "size"; "depth" ] ~floats:[];
  check_report i (get i r "report")

(* memo records carry the cold-vs-warm cache rollup plus the
   edit-one-output incremental sub-record *)
let check_memo i r =
  List.iter
    (fun f -> num i r f "memo")
    [ "time_cold_s"; "time_warm_s"; "speedup" ];
  bool_field i r "identical";
  List.iter (int_field i r) [ "rw_entries"; "cone_entries" ];
  List.iter
    (fun key ->
      metrics_obj i r key
        ~ints:[ "rw_hits"; "rw_misses"; "reused_pos"; "reopt_pos" ]
        ~floats:[])
    [ "cold"; "warm" ];
  let inc = get i r "incremental" in
  (match J.member "name" inc with
  | Some (J.String _) -> ()
  | _ -> fail "record %d: memo incremental without a name" i);
  List.iter
    (fun f -> num i inc f "memo.incremental")
    [ "time_full_s"; "time_incr_s"; "fraction" ];
  List.iter (int_field i inc) [ "reused_pos"; "reopt_pos" ];
  bool_field i inc "identical"

(* batch records carry the parallel-vs-sequential rollup plus one
   embedded outcome (with a full engine report) per circuit *)
let check_batch i r =
  List.iter (int_field i r) [ "jobs"; "jobs_effective"; "recommended_domains" ];
  List.iter (fun f -> num i r f "batch") [ "time_seq_s"; "time_par_s"; "speedup" ];
  bool_field i r "identical";
  match J.member "circuits" r with
  | Some (J.List cs) ->
      List.iter
        (fun c ->
          (match J.member "name" c with
          | Some (J.String _) -> ()
          | _ -> fail "record %d: batch circuit without a name" i);
          List.iter (int_field i c)
            [ "size_in"; "depth_in"; "size_out"; "depth_out"; "rollbacks" ];
          num i c "time_s" "batch.circuits";
          bool_field i c "verified";
          bool_field i c "degraded";
          check_report i (get i c "report");
          match J.member "telemetry" c with
          | None | Some J.Null -> ()
          | Some t -> span_tree i "batch.telemetry" t)
        cs
  | _ -> fail "record %d: batch circuits is not a list" i

(* parmig records carry the seq-vs-par rollup for one stress graph
   plus two embedded Flow.Par outcomes with per-region entries *)
let check_parmig i r =
  List.iter (int_field i r)
    [ "nodes_requested"; "jobs"; "jobs_effective"; "recommended_domains" ];
  List.iter
    (fun f -> num i r f "parmig")
    [ "time_seq_s"; "time_par_s"; "speedup" ];
  bool_field i r "identical";
  bool_field i r "equivalent";
  List.iter
    (fun leg ->
      let o = get i r leg in
      List.iter (int_field i o)
        [
          "jobs";
          "live_majs";
          "region_target";
          "size_in";
          "depth_in";
          "size_out";
          "depth_out";
        ];
      bool_field i o "equivalent";
      match J.member "regions" o with
      | Some (J.List rs) ->
          List.iter
            (fun reg ->
              List.iter (int_field i reg)
                [ "index"; "nodes_in"; "nodes_out"; "san_findings" ];
              bool_field i reg "verified";
              bool_field i reg "fell_back";
              num i reg "time_s" "parmig.regions";
              match J.member "telemetry" reg with
              | None | Some J.Null -> ()
              | Some t -> span_tree i "parmig.telemetry" t)
            rs
      | _ -> fail "record %d: parmig %s.regions is not a list" i leg)
    [ "seq"; "par" ]

(* serve records carry the daemon-under-load rollup: the fleet shape
   plus pooled latency percentiles; a non-empty failures list means a
   client saw a transport error or an invalid frame, which fails the
   artifact outright (the chaos leg's whole point) *)
let check_serve i r =
  List.iter (int_field i r)
    [
      "clients"; "requests_per_client"; "workers"; "queue_capacity";
      "served"; "rejected";
    ];
  let s = get i r "stats" in
  List.iter (int_field i s) [ "sent"; "ok"; "degraded"; "server_errors" ];
  List.iter
    (fun f -> num i s f "serve.stats")
    [ "p50_ms"; "p99_ms"; "mean_ms"; "max_ms"; "wall_s" ];
  match J.member "failures" s with
  | Some (J.List []) -> ()
  | Some (J.List fs) ->
      fail "record %d: serve leg reports %d client failures" i (List.length fs)
  | _ -> fail "record %d: serve stats.failures is not a list" i

(* orchestrate records compare beam search against the fixed script:
   both contenders' size/depth/product plus the who-won verdicts the
   CI gate greps for; the trailing summary record carries the rollup *)
let check_orchestrate i r name =
  if name = "summary" then begin
    List.iter (int_field i r) [ "wins"; "total"; "regressions" ];
    bool_field i r "majority"
  end
  else begin
    metrics_obj i r "fixed"
      ~ints:[ "size"; "depth"; "product" ]
      ~floats:[ "time_s" ];
    metrics_obj i r "search"
      ~ints:[ "size"; "depth"; "product"; "explored" ]
      ~floats:[ "time_s" ];
    (match J.member "verdict" (get i r "search") with
    | Some (J.String ("completed" | "budget_exhausted" | "interrupted")) -> ()
    | _ -> fail "record %d: orchestrate search verdict is invalid" i);
    num i r "budget_s" "orchestrate";
    int_field i r "beam";
    bool_field i r "better";
    bool_field i r "regressed";
    bool_field i r "equivalent"
  end

let check_record i r =
  let sec = str i r "section" in
  let name = str i r "name" in
  (match sec with
  | "table1-top" ->
      opt_result i r "mig";
      opt_result i r "aig";
      (match get i r "bdd" with
      | J.Null -> ()
      | J.Obj _ -> opt_result i r "bdd"
      | _ -> fail "record %d: bdd is neither null nor an object" i);
      spans i r
  | "table1-bottom" ->
      syn_result i r "mig";
      syn_result i r "aig";
      syn_result i r "cst"
  | "compress" ->
      metrics_obj i r "mig" ~ints:[ "size"; "depth" ] ~floats:[ "time_s" ];
      metrics_obj i r "aig" ~ints:[ "size"; "depth" ] ~floats:[ "time_s" ];
      spans i r
  | "bechamel" -> (
      match get i r "ms_per_run" with
      | J.Null | J.Int _ | J.Float _ -> ()
      | _ -> fail "record %d: ms_per_run is not a number or null" i)
  | "smoke" ->
      opt_result i r "mig";
      opt_result i r "aig";
      spans i r
  | "hotpath" -> check_hotpath i r name
  | "engine" -> check_engine i r
  | "batch" -> check_batch i r
  | "parmig" -> check_parmig i r
  | "memo" -> check_memo i r
  | "serve" -> check_serve i r
  | "orchestrate" -> check_orchestrate i r name
  | s -> fail "record %d: unknown section %S" i s);
  sec

(* Trajectory files ([mighty opt --goal search --traj PATH], or the
   bench orchestrate section under MIG_TRAJ) are NDJSON: one
   self-describing "mighty-traj/1" object per line, each validated by
   the schema's own checker ({!Flow.Traj.validate}) so the CLI, the
   daemon and this gate can never drift apart. *)
let lint_traj path content =
  let lines =
    String.split_on_char '\n' content
    |> List.filter (fun l -> String.trim l <> "")
  in
  if lines = [] then fail "%s: no trajectory records" path;
  List.iteri
    (fun i line ->
      match J.of_string line with
      | Error e -> fail "%s:%d: parse error: %s" path (i + 1) e
      | Ok doc -> (
          match Flow.Traj.validate doc with
          | Ok () -> ()
          | Error e -> fail "%s:%d: %s" path (i + 1) e))
    lines;
  Printf.printf "json_lint: %s OK (%d trajectory records)\n" path
    (List.length lines)

(* the first non-blank line decides the flavour: a "mighty-traj/1"
   object means an NDJSON trajectory file, anything else the whole-doc
   "mighty-bench/1" report *)
let is_traj content =
  match
    List.find_opt
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' content)
  with
  | None -> false
  | Some line -> (
      match J.of_string line with
      | Ok doc -> J.member "schema" doc = Some (J.String "mighty-traj/1")
      | Error _ -> false)

let () =
  let path =
    match Sys.argv with
    | [| _; p |] -> p
    | _ -> fail "usage: json_lint BENCH_file.json|traj.jsonl"
  in
  let content = read_file path in
  if is_traj content then lint_traj path content
  else
    match J.of_string content with
    | Error e -> fail "%s: parse error: %s" path e
    | Ok doc ->
      (match J.member "schema" doc with
      | Some (J.String "mighty-bench/1") -> ()
      | Some (J.String s) -> fail "%s: unknown schema %S" path s
      | _ -> fail "%s: missing \"schema\" field" path);
      let records =
        match J.member "records" doc with
        | Some (J.List l) -> l
        | _ -> fail "%s: \"records\" is not a list" path
      in
      if records = [] then fail "%s: no records" path;
      let sections = List.mapi check_record records in
      let uniq = List.sort_uniq compare sections in
      Printf.printf "json_lint: %s OK (%d records: %s)\n" path
        (List.length records)
        (String.concat ", " uniq)
